// Ablation benches for the design choices DESIGN.md calls out:
//   1. Lustre stripe count (the paper fixes stripe count 1 — what if not?)
//   2. Filesystem shard count vs node count (the paper scales shards
//      linearly with nodes)
//   3. Dragon many-to-one penalty exponent (the latency mechanism behind
//      Fig 6's crossover)
//   4. Payload-cap sensitivity: virtualized payloads must not change the
//      modelled timings (only real memory use)
//   5. MDS contention exponent: how sharp the Fig-3b collapse is
#include <cstdio>

#include "bench/bench_util.hpp"
#include <chrono>

#include "core/experiment.hpp"
#include "kv/redis_client.hpp"
#include "kv/redis_server.hpp"
#include "kv/dir_store.hpp"
#include "util/fsutil.hpp"

using namespace simai;
using namespace simai::bench;

namespace {

bool ablate_stripe_count() {
  banner("Ablation 1: Lustre stripe count (32 MB write, 8 nodes)");
  Table t({"stripes", "write(ms)", "tput(GB/s)"}, 12);
  platform::TransportModel model;
  double t1 = 0, t8 = 0;
  for (int stripes : {1, 2, 4, 8, 16}) {
    model.lustre.stripe_count = stripes;
    platform::TransportContext ctx;
    ctx.concurrent_clients = 96;
    const double cost = model.cost(platform::BackendKind::Filesystem,
                                   platform::StoreOp::Write, 32 * MiB, ctx);
    if (stripes == 1) t1 = cost;
    if (stripes == 8) t8 = cost;
    t.row({std::to_string(stripes), ms(cost), gbps(32.0 * MiB / cost)});
  }
  t.print();
  return bench::check("striping accelerates large writes (8 stripes >2x faster)",
               t1 > 2.0 * t8);
}

bool ablate_shard_count() {
  banner("Ablation 2: DirStore shard count vs key distribution");
  Table t({"shards", "keys", "max/shard", "min/shard"}, 12);
  bool ok = true;
  for (int shards : {1, 4, 16, 64}) {
    util::TempDir dir("ablate");
    kv::DirStore store(dir.path() / "s", shards);
    std::vector<int> counts(static_cast<std::size_t>(shards), 0);
    constexpr int kKeys = 512;
    for (int i = 0; i < kKeys; ++i)
      counts[static_cast<std::size_t>(
          store.shard_of("sim_rank" + std::to_string(i) + "_step100"))]++;
    const int mx = *std::max_element(counts.begin(), counts.end());
    const int mn = *std::min_element(counts.begin(), counts.end());
    t.row({std::to_string(shards), std::to_string(kKeys), std::to_string(mx),
           std::to_string(mn)});
    if (shards == 64) {
      // Linear shard scaling keeps per-shard load balanced: with 512 keys
      // over 64 shards, no shard should see more than ~4x the mean.
      ok &= (mx <= 4 * (kKeys / shards));
    }
  }
  t.print();
  return bench::check("CRC32 sharding stays balanced at high shard counts", ok);
}

bool ablate_dragon_m21() {
  banner("Ablation 3: Dragon many-to-one penalty exponent (1 MB @ 127 sims)");
  Table t({"m21_power", "dragon(ms)", "fs(ms)", "dragon/fs"}, 12);
  bool crossover_seen = false;
  for (double power : {0.5, 0.75, 1.0}) {
    platform::TransportModel model;
    model.dragon.m21_power = power;
    platform::TransportContext ctx;
    ctx.remote = true;
    ctx.fanin = 127;
    ctx.concurrent_streams = 12;
    ctx.concurrent_clients = 127 * 12 + 12;
    const double dragon = model.cost(platform::BackendKind::Dragon,
                                     platform::StoreOp::Read, 1 * MiB, ctx);
    const double fs = model.cost(platform::BackendKind::Filesystem,
                                 platform::StoreOp::Read, 1 * MiB, ctx);
    t.row({fixed(power, 2), ms(dragon), ms(fs), fixed(dragon / fs, 2)});
    if (power >= 1.0) crossover_seen |= dragon > fs;
  }
  t.print();
  return bench::check("linear penalty is required for the Fig 6b crossover",
               crossover_seen);
}

bool ablate_payload_cap() {
  banner("Ablation 4: payload virtualization does not change timings");
  core::Pattern1Config base;
  base.backend = platform::BackendKind::Dragon;
  base.nodes = 8;
  base.representative_pairs = 1;
  base.payload_bytes = 8 * MiB;
  base.train_iters = 150;
  base.sim_init_time = 0.5;
  base.train_init_time = 1.0;

  core::Pattern1Config full = base;
  full.payload_cap = 0;  // real 8 MiB payloads
  core::Pattern1Config capped = base;
  capped.payload_cap = 1 * KiB;

  const auto rf = core::run_pattern1(full);
  const auto rc = core::run_pattern1(capped);
  Table t({"mode", "makespan(s)", "write(ms)", "read(ms)"}, 14);
  t.row({"full", fixed(rf.makespan, 3), ms(rf.sim.write_time.mean()),
         ms(rf.train.read_time.mean())});
  t.row({"capped-1KiB", fixed(rc.makespan, 3), ms(rc.sim.write_time.mean()),
         ms(rc.train.read_time.mean())});
  t.print();
  const bool same =
      std::abs(rf.makespan - rc.makespan) < 1e-9 &&
      std::abs(rf.sim.write_time.mean() - rc.sim.write_time.mean()) < 1e-12;
  return bench::check("virtual timings identical with and without the cap", same);
}

bool ablate_redis_pipelining() {
  banner("Ablation 6: Redis pipelining vs per-command round trips (real)");
  // Real wall-clock through the real MiniRedis server: N SETs issued one
  // round-trip at a time vs one pipelined batch.
  util::TempDir dir("ablate-redis");
  kv::RedisServer server((dir.path() / "a.sock").string());
  kv::RedisClient client(server.socket_path());
  constexpr int kOps = 400;

  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < kOps; ++i) {
    client.put_string("rt" + std::to_string(i), "v");
  }
  const auto t1 = std::chrono::steady_clock::now();
  std::vector<std::vector<std::string>> batch;
  batch.reserve(kOps);
  for (int i = 0; i < kOps; ++i)
    batch.push_back({"SET", "pl" + std::to_string(i), "v"});
  const auto replies = client.pipeline(batch);
  const auto t2 = std::chrono::steady_clock::now();

  const double rt_us =
      std::chrono::duration<double, std::micro>(t1 - t0).count() / kOps;
  const double pl_us =
      std::chrono::duration<double, std::micro>(t2 - t1).count() / kOps;
  Table t({"mode", "us/op", "speedup"}, 14);
  t.row({"round-trip", fixed(rt_us, 2), "1.0"});
  t.row({"pipelined", fixed(pl_us, 2), fixed(rt_us / pl_us, 1)});
  t.print();

  bool ok = replies.size() == kOps;
  for (const auto& r : replies) ok &= !r.is_error();
  ok &= client.size() == 2 * kOps;
  const bool faster = pl_us < rt_us;
  return bench::check("pipelining completes correctly and beats round-trips",
               ok && faster);
}

bool ablate_mds_exponent() {
  banner("Ablation 5: MDS contention exponent vs the Fig 3b collapse");
  Table t({"exponent", "tput@8(GB/s)", "tput@512", "ratio"}, 14);
  bool ok = true;
  for (double exp : {0.8, 1.25, 1.6}) {
    platform::TransportModel model;
    model.lustre.meta_exponent = exp;
    platform::TransportContext c8, c512;
    c8.concurrent_clients = 96;
    c512.concurrent_clients = 6144;
    const double t8 = model.throughput(platform::BackendKind::Filesystem,
                                       platform::StoreOp::Write, 1258291, c8);
    const double t512 = model.throughput(platform::BackendKind::Filesystem,
                                         platform::StoreOp::Write, 1258291,
                                         c512);
    t.row({fixed(exp, 2), gbps(t8), gbps(t512), fixed(t8 / t512, 1)});
    if (exp == 1.25) ok &= (t8 / t512 > 5.0 && t8 / t512 < 100.0);
  }
  t.print();
  return bench::check("default exponent lands in the paper's ~10x band", ok);
}

}  // namespace

int main() {
  bool ok = true;
  ok &= ablate_stripe_count();
  ok &= ablate_shard_count();
  ok &= ablate_dragon_m21();
  ok &= ablate_payload_cap();
  ok &= ablate_mds_exponent();
  ok &= ablate_redis_pipelining();
  return ok ? 0 : 1;
}
