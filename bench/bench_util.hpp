// Shared helpers for the paper-figure benchmark binaries: the message-size
// sweep used throughout §4, aligned table printing, and backend lists.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "platform/transport_model.hpp"
#include "util/stats.hpp"
#include "util/types.hpp"

namespace simai::bench {

/// The paper's array-size sweep: 0.4 MB up to 32 MB (§4.1.2).
inline std::vector<std::uint64_t> size_sweep() {
  return {static_cast<std::uint64_t>(0.4 * 1024 * 1024),
          1 * MiB, 2 * MiB, 4 * MiB, 8 * MiB, 16 * MiB, 32 * MiB};
}

inline std::vector<platform::BackendKind> all_backends() {
  return {platform::BackendKind::NodeLocal, platform::BackendKind::Dragon,
          platform::BackendKind::Redis, platform::BackendKind::Filesystem};
}

/// Backends available for Pattern 2's non-local access (no tmpfs — §4.2).
inline std::vector<platform::BackendKind> nonlocal_backends() {
  return {platform::BackendKind::Dragon, platform::BackendKind::Redis,
          platform::BackendKind::Filesystem};
}

inline std::string mb_label(std::uint64_t bytes) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.1f", static_cast<double>(bytes) / MiB);
  return buf;
}

/// Simple fixed-width table printer.
class Table {
 public:
  explicit Table(std::vector<std::string> headers, int col_width = 12)
      : headers_(std::move(headers)), width_(col_width) {}

  void row(const std::vector<std::string>& cells) { rows_.push_back(cells); }

  void print(FILE* out = stdout) const {
    auto print_row = [&](const std::vector<std::string>& cells) {
      for (const auto& c : cells) std::fprintf(out, "%-*s", width_, c.c_str());
      std::fprintf(out, "\n");
    };
    print_row(headers_);
    std::string rule(headers_.size() * static_cast<std::size_t>(width_), '-');
    std::fprintf(out, "%s\n", rule.c_str());
    for (const auto& r : rows_) print_row(r);
    std::fprintf(out, "\n");
  }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
  int width_;
};

inline std::string gbps(double bytes_per_s) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.3f", bytes_per_s / 1e9);
  return buf;
}

inline std::string ms(double seconds) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.3f", seconds * 1e3);
  return buf;
}

inline std::string fixed(double v, int prec = 4) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.*f", prec, v);
  return buf;
}

inline void banner(const char* title) {
  std::printf("\n=== %s ===\n\n", title);
}

/// PASS/FAIL line for the expected-shape assertions each bench prints.
inline bool check(const char* what, bool ok) {
  std::printf("  [%s] %s\n", ok ? "PASS" : "FAIL", what);
  return ok;
}

}  // namespace simai::bench
