// Real wall-clock microbenchmarks (google-benchmark) over the actual
// backend implementations on THIS machine: MemoryStore, DirStore (real
// files + atomic rename), MiniRedis (real RESP over real sockets), and the
// DragonDictionary (real shard-manager threads). These complement the
// virtual-time figure benches: the paper measures Aurora, these measure
// the substrate code itself.
#include <benchmark/benchmark.h>

#include "kv/dir_store.hpp"
#include "kv/dragon.hpp"
#include "kv/memory_store.hpp"
#include "kv/redis_client.hpp"
#include "kv/redis_server.hpp"
#include "util/fsutil.hpp"

namespace {

using namespace simai;

Bytes payload_of(std::size_t n) {
  Bytes p(n);
  for (std::size_t i = 0; i < n; ++i)
    p[i] = static_cast<std::byte>(i * 2654435761u >> 24);
  return p;
}

template <typename MakeStore>
void bench_put_get(benchmark::State& state, MakeStore make) {
  util::TempDir dir("micro");
  auto store = make(dir);
  const Bytes value = payload_of(static_cast<std::size_t>(state.range(0)));
  std::size_t i = 0;
  for (auto _ : state) {
    const std::string key = "k" + std::to_string(i++ % 64);
    store->put(key, ByteView(value));
    Bytes out;
    benchmark::DoNotOptimize(store->get(key, out));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * 2 *
                          state.range(0));
}

void BM_MemoryStore(benchmark::State& state) {
  bench_put_get(state, [](util::TempDir&) {
    return std::make_shared<kv::MemoryStore>();
  });
}
BENCHMARK(BM_MemoryStore)->Arg(4 << 10)->Arg(256 << 10)->Arg(4 << 20);

void BM_DirStore(benchmark::State& state) {
  bench_put_get(state, [](util::TempDir& dir) {
    return std::make_shared<kv::DirStore>(dir.path() / "s", 16);
  });
}
BENCHMARK(BM_DirStore)->Arg(4 << 10)->Arg(256 << 10)->Arg(4 << 20);

void BM_MiniRedis(benchmark::State& state) {
  util::TempDir dir("micro");
  kv::RedisServer server((dir.path() / "bench.sock").string());
  kv::RedisClient client(server.socket_path());
  const Bytes value = payload_of(static_cast<std::size_t>(state.range(0)));
  std::size_t i = 0;
  for (auto _ : state) {
    const std::string key = "k" + std::to_string(i++ % 64);
    client.put(key, ByteView(value));
    Bytes out;
    benchmark::DoNotOptimize(client.get(key, out));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * 2 *
                          state.range(0));
}
BENCHMARK(BM_MiniRedis)->Arg(4 << 10)->Arg(256 << 10)->Arg(4 << 20);

void BM_DragonDict(benchmark::State& state) {
  kv::DragonDictionary dict(4);
  const Bytes value = payload_of(static_cast<std::size_t>(state.range(0)));
  std::size_t i = 0;
  for (auto _ : state) {
    const std::string key = "k" + std::to_string(i++ % 64);
    dict.put(key, ByteView(value));
    Bytes out;
    benchmark::DoNotOptimize(dict.get(key, out));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * 2 *
                          state.range(0));
}
BENCHMARK(BM_DragonDict)->Arg(4 << 10)->Arg(256 << 10)->Arg(4 << 20);

void BM_DirStoreAtomicOverwrite(benchmark::State& state) {
  util::TempDir dir("micro");
  kv::DirStore store(dir.path() / "s", 4);
  const Bytes value = payload_of(64 << 10);
  for (auto _ : state) {
    store.put("hot-key", ByteView(value));  // tmp write + rename every time
  }
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations() * value.size()));
}
BENCHMARK(BM_DirStoreAtomicOverwrite);

void BM_RedisPing(benchmark::State& state) {
  util::TempDir dir("micro");
  kv::RedisServer server((dir.path() / "ping.sock").string());
  kv::RedisClient client(server.socket_path());
  for (auto _ : state) {
    benchmark::DoNotOptimize(client.ping());
  }
}
BENCHMARK(BM_RedisPing);

void BM_KeysGlobScan(benchmark::State& state) {
  kv::MemoryStore store;
  for (int i = 0; i < 1000; ++i)
    store.put_string("sim_rank" + std::to_string(i % 16) + "_step" +
                         std::to_string(i),
                     "v");
  for (auto _ : state) {
    benchmark::DoNotOptimize(store.keys("sim_rank3_*"));
  }
}
BENCHMARK(BM_KeysGlobScan);

}  // namespace

BENCHMARK_MAIN();
