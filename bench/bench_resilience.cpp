// bench_resilience: which transport degrades gracefully?
//
// The paper benchmarks the four backends under healthy conditions; this
// harness sweeps a fault level across all of them and prints a degradation
// table — the new experiment axis the simai::fault subsystem opens.
//
// Per cell: a deterministic FaultSchedule (store-outage windows, slow-node
// latency spikes, per-op transfer failures and payload corruption) is
// injected below a resilient DataStore (retry + CRC32 integrity) while a
// small many-producer/one-consumer workflow runs to completion. Reported
// per backend x fault level: makespan, retries, failed ops, detected
// corruptions, virtual recovery time, and snapshots lost to the deadline.
//
// A final check reruns one faulted cell and asserts the fault timeline and
// the results are byte-identical — the subsystem's determinism guarantee.
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "bench/bench_util.hpp"
#include "core/datastore.hpp"
#include "core/workflow.hpp"
#include "fault/fault.hpp"
#include "fault/faulty_store.hpp"
#include "kv/memory_store.hpp"
#include "sim/engine.hpp"

using namespace simai;

namespace {

constexpr int kProducers = 4;
constexpr int kRounds = 30;
constexpr double kWritePeriod = 0.05;   // virtual s between snapshots
constexpr std::uint64_t kPayload = 1 * MiB;
constexpr std::size_t kPayloadCap = 16 * KiB;
constexpr double kPollInterval = 0.005;
constexpr double kDeadlineSlack = 30.0;  // consumer gives up after this

struct CellResult {
  SimTime makespan = 0.0;
  std::uint64_t retries = 0;
  std::uint64_t failed_ops = 0;
  std::uint64_t corrupt = 0;
  SimTime recovery_time = 0.0;
  std::uint64_t lost = 0;       // snapshots the consumer gave up on
  std::uint64_t delivered = 0;  // snapshots read end to end
  std::string schedule;         // canonical fault timeline
};

fault::FaultSpec make_spec(double level, std::uint64_t seed) {
  fault::FaultSpec spec;
  spec.seed = seed;
  spec.horizon = 20.0;
  spec.nodes = kProducers + 1;
  if (level > 0.0) {
    spec.outage_rate = 3.0;
    spec.outage_mean_duration = 0.1;
    spec.spike_rate = 0.4;
    spec.spike_mean_duration = 0.3;
    spec.spike_multiplier = 6.0;
    spec.transfer_failure_prob = level;
    spec.corruption_prob = 0.5 * level;
  }
  return spec;
}

CellResult run_cell(platform::BackendKind backend, double level,
                    std::uint64_t seed, sim::TraceRecorder* trace = nullptr) {
  const fault::FaultSpec spec = make_spec(level, seed);
  fault::FaultSchedule schedule(spec);

  sim::Engine engine;
  if (trace != nullptr) schedule.install(engine, trace);
  platform::TransportModel model;
  auto backing = std::make_shared<kv::MemoryStore>();
  auto faulty =
      std::make_shared<fault::FaultyStore>(backing, &schedule, &engine);

  core::DataStoreConfig base;
  base.backend = backend;
  base.payload_cap = kPayloadCap;
  base.transport.concurrent_clients = kProducers + 1;
  base.faults = &schedule;
  base.verify_integrity = true;
  base.retry.max_attempts = 8;
  base.retry.timeout = 0.01;
  base.retry.backoff_base = 0.005;
  base.retry.backoff_max = 0.5;

  std::vector<std::unique_ptr<core::DataStore>> stores;
  for (int p = 0; p < kProducers; ++p) {
    core::DataStoreConfig cfg = base;
    cfg.node = p;
    stores.push_back(std::make_unique<core::DataStore>(
        "prod" + std::to_string(p), faulty, &model, cfg));
  }
  core::DataStoreConfig consumer_cfg = base;
  consumer_cfg.node = kProducers;
  consumer_cfg.transport.remote =
      backend != platform::BackendKind::NodeLocal &&
      backend != platform::BackendKind::Filesystem;
  consumer_cfg.transport.fanin = kProducers;
  auto consumer_store = std::make_unique<core::DataStore>(
      "consumer", faulty, &model, consumer_cfg);

  const Bytes payload = make_bytes(kPayloadCap, 0x5A);

  CellResult out;
  core::Workflow w;
  for (int p = 0; p < kProducers; ++p) {
    core::DataStore* store = stores[static_cast<std::size_t>(p)].get();
    w.component("prod" + std::to_string(p), "remote", {},
                [store, &payload](sim::Context& ctx, const core::ComponentInfo&) {
                  for (int r = 1; r <= kRounds; ++r) {
                    ctx.delay(kWritePeriod);
                    store->stage_write(
                        &ctx, "snap_" + store->name() + "_" + std::to_string(r),
                        ByteView(payload), kPayload);
                  }
                });
  }
  w.component(
      "consumer", "remote", {},
      [&](sim::Context& ctx, const core::ComponentInfo&) {
        for (int r = 1; r <= kRounds; ++r) {
          for (int p = 0; p < kProducers; ++p) {
            const std::string key =
                "snap_prod" + std::to_string(p) + "_" + std::to_string(r);
            // The writer publishes round r at r * period; give it that plus
            // generous recovery slack before declaring the snapshot lost —
            // the degraded-mode alternative to blocking forever.
            const SimTime deadline = r * kWritePeriod + kDeadlineSlack;
            bool found = false;
            while (ctx.now() < deadline) {
              if (consumer_store->poll_staged_data(&ctx, key)) {
                found = true;
                break;
              }
              ctx.delay(kPollInterval);
            }
            Bytes data;
            if (found && consumer_store->stage_read(&ctx, key, data))
              ++out.delivered;
            else
              ++out.lost;
          }
        }
      });

  w.launch(engine);

  out.makespan = w.makespan();
  out.schedule = schedule.to_string();
  const auto absorb = [&out](const core::DataStore& s) {
    out.retries += s.recovery().retries;
    out.failed_ops += s.recovery().failed_ops;
    out.corrupt += s.recovery().corrupt_payloads;
    out.recovery_time += s.recovery().recovery_time;
  };
  for (const auto& s : stores) absorb(*s);
  absorb(*consumer_store);
  return out;
}

}  // namespace

int main() {
  bench::banner("Resilience: backend degradation under injected faults");

  const std::uint64_t seed = 7;
  const std::vector<double> levels = {0.0, 0.02, 0.05};
  bench::Table table({"backend", "p_fail", "makespan_s", "retries",
                      "failed_ops", "corrupt", "recovery_s", "lost"},
                     12);

  bool all_ok = true;
  bool faults_seen = false;
  for (platform::BackendKind backend : bench::all_backends()) {
    for (double level : levels) {
      const CellResult r = run_cell(backend, level, seed);
      table.row({std::string(platform::backend_name(backend)),
                 bench::fixed(level, 2), bench::fixed(r.makespan, 3),
                 std::to_string(r.retries), std::to_string(r.failed_ops),
                 std::to_string(r.corrupt), bench::fixed(r.recovery_time, 3),
                 std::to_string(r.lost)});
      // Completion through retries: every snapshot delivered, none lost.
      all_ok &= r.delivered == static_cast<std::uint64_t>(kProducers) * kRounds &&
                r.lost == 0;
      if (level > 0.0) faults_seen |= r.retries > 0;
    }
  }
  table.print();

  bool ok = true;
  ok &= bench::check("all workflows completed with zero lost snapshots",
                     all_ok);
  ok &= bench::check("faulted cells exercised the retry path", faults_seen);

  // Determinism: the same seed must reproduce the identical fault timeline
  // and the identical end-to-end result.
  const CellResult a = run_cell(platform::BackendKind::Redis, 0.05, seed);
  const CellResult b = run_cell(platform::BackendKind::Redis, 0.05, seed);
  ok &= bench::check("same seed => byte-identical fault schedule",
                     a.schedule == b.schedule && !a.schedule.empty());
  ok &= bench::check("same seed => identical makespan and recovery stats",
                     a.makespan == b.makespan && a.retries == b.retries &&
                         a.recovery_time == b.recovery_time);
  const CellResult c = run_cell(platform::BackendKind::Redis, 0.05, seed + 1);
  ok &= bench::check("different seed => different fault schedule",
                     c.schedule != a.schedule);

  // Chrome trace of one faulted cell, fault windows overlaid as async spans
  // (kept out of the bench binary directory, like bench_fig2_timeline).
  const char* out_dir = std::getenv("SIMAI_RESILIENCE_DIR");
  const std::string dir = out_dir ? out_dir : "/tmp";
  sim::TraceRecorder trace;
  run_cell(platform::BackendKind::Redis, 0.05, seed, &trace);
  std::size_t fault_spans = 0;
  for (const sim::TraceSpan& s : trace.spans())
    if (s.async && s.track == "fault") ++fault_spans;
  ok &= bench::check("trace overlays fault windows as async spans",
                     fault_spans > 0);
  const std::string trace_path = dir + "/resilience_redis.trace.json";
  std::ofstream(trace_path) << trace.to_chrome_json();
  std::printf("\nfault-window trace written to %s (chrome://tracing)\n",
              trace_path.c_str());

  return ok ? 0 : 1;
}
