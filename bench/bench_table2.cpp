// Reproduces Table 2: number of time steps and data-transport events for
// the original nekRS-ML workflow vs. the SimAI-Bench mini-app.
//
// "Original" here is the stochastic emulation of the production workflow
// (iteration times drawn from the Table-3 distributions); "Mini-app" is the
// deterministic configuration from Listing 2. Both run the full 5000
// training iterations with the production 1.2 MB payload on the Redis
// backend (the production deployment used SmartSim/Redis).
#include <cstdio>

#include "bench/bench_util.hpp"
#include "core/experiment.hpp"

using namespace simai;
using namespace simai::bench;

namespace {

core::Pattern1Config base_config() {
  core::Pattern1Config c;
  c.backend = platform::BackendKind::Redis;
  c.nodes = 1;  // the validation ran a single co-located pair per tile
  c.pairs_per_node = 6;
  c.representative_pairs = 1;  // Table 2 counts are per component
  c.payload_bytes = 1258291;   // 1.2 MB per write (paper §4.1.2)
  c.payload_cap = 16 * KiB;
  c.train_iters = 5000;
  c.write_every = 100;
  c.read_every = 10;
  return c;
}

struct Row {
  std::uint64_t sim_steps, sim_events, train_steps, train_events;
};

Row run(const core::Pattern1Config& c) {
  const core::Pattern1Result r = core::run_pattern1(c);
  return {r.sim.steps, r.sim.transport_events, r.train.steps,
          r.train.transport_events};
}

}  // namespace

int main() {
  banner("Table 2: time steps and data transport events (original vs mini-app)");

  // Original: stochastic iteration times as profiled from production
  // (Table 3: sim 0.0312 +- 0.0273 s, train 0.0611 +- 0.1 s).
  core::Pattern1Config original = base_config();
  original.sim_iter_time = 0.0312;
  original.sim_iter_std = 0.0273;
  original.train_iter_time = 0.0611;
  original.train_iter_std = 0.1;
  original.sim_init_time = 3.0;
  original.train_init_time = 15.0;
  original.seed = 7;

  // Mini-app: the deterministic Listing-2 configuration.
  core::Pattern1Config miniapp = base_config();
  miniapp.sim_iter_time = 0.03147;
  miniapp.train_iter_time = 0.0611;
  miniapp.sim_init_time = 3.0;
  miniapp.train_init_time = 27.6;

  const Row orig = run(original);
  const Row mini = run(miniapp);

  Table t({"", "sim steps", "sim xport", "train steps", "train xport"}, 14);
  t.row({"Original", std::to_string(orig.sim_steps),
         std::to_string(orig.sim_events), std::to_string(orig.train_steps),
         std::to_string(orig.train_events)});
  t.row({"Mini-app", std::to_string(mini.sim_steps),
         std::to_string(mini.sim_events), std::to_string(mini.train_steps),
         std::to_string(mini.train_events)});
  t.row({"Paper-orig", "10108", "203", "5000", "208"});
  t.row({"Paper-mini", "10507", "211", "5000", "208"});
  t.print();

  std::printf("Shape checks vs the paper:\n");
  bool ok = true;
  ok &= bench::check("both runs complete exactly 5000 training iterations",
              orig.train_steps == 5000 && mini.train_steps == 5000);
  ok &= bench::check("sim step counts in the paper's band (9.5k..11.5k)",
              orig.sim_steps > 9500 && orig.sim_steps < 11500 &&
                  mini.sim_steps > 9500 && mini.sim_steps < 11500);
  ok &= bench::check("sim transport events ~200 (paper: 203/211)",
              orig.sim_events >= 180 && orig.sim_events <= 240 &&
                  mini.sim_events >= 180 && mini.sim_events <= 240);
  ok &= bench::check("train transport events ~208 (paper: 208)",
              orig.train_events >= 180 && orig.train_events <= 240 &&
                  mini.train_events >= 180 && mini.train_events <= 240);
  ok &= bench::check("original vs mini-app event counts agree closely",
              std::llabs(static_cast<long long>(orig.train_events) -
                         static_cast<long long>(mini.train_events)) <= 15);
  return ok ? 0 : 1;
}
