// bench_payload: copies-per-hop and throughput of the zero-copy payload
// plane, measured on the Fig. 3 staging path (DataStore -> FaultyStore ->
// MemoryStore, node-local backend).
//
// Two chains run the same put/get round trip:
//
//  * payload — the shipped data plane: stage_write wraps the value once
//    (header + bytes, the single copy), the store takes ownership by move,
//    stage_read returns a refcounted slice of the stored buffer;
//  * legacy  — the pre-payload value semantics, reconstructed with a
//    CopyingStore decorator (fresh buffer on every put and get) plus the
//    Bytes compatibility adapter on read: wrap + put + get + read-out,
//    four payload-sized copies per round trip.
//
// Copies are counted with a global allocation hook: any heap allocation of
// at least half the payload size during the timed loop is a payload copy —
// headers ride along with the value, so every hop that materializes bytes
// shows up exactly once. Emits BENCH_payload.json (cwd, or
// $SIMAI_BENCH_DIR); `--smoke` runs a reduced sweep and `--check FILE`
// fails if copies-per-round-trip regressed >25% vs the committed numbers.
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <new>
#include <string>

// The hook below pairs a malloc-backed operator new with a free-backed
// operator delete; GCC cannot see they are replacements of each other and
// flags container code as mismatched.
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"

#include "bench/bench_util.hpp"
#include "core/datastore.hpp"
#include "fault/faulty_store.hpp"
#include "kv/memory_store.hpp"
#include "util/json.hpp"

using namespace simai;

namespace {

// -- allocation hook --------------------------------------------------------

std::atomic<std::size_t> g_threshold{SIZE_MAX};  // count allocs >= this
std::atomic<std::uint64_t> g_large_allocs{0};

struct CountScope {
  explicit CountScope(std::size_t payload_size) {
    g_large_allocs.store(0, std::memory_order_relaxed);
    g_threshold.store(std::max<std::size_t>(payload_size / 2, 512),
                      std::memory_order_relaxed);
  }
  ~CountScope() { g_threshold.store(SIZE_MAX, std::memory_order_relaxed); }
  std::uint64_t count() const {
    return g_large_allocs.load(std::memory_order_relaxed);
  }
};

}  // namespace

void* operator new(std::size_t n) {
  if (n >= g_threshold.load(std::memory_order_relaxed))
    g_large_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n) { return ::operator new(n); }
void* operator new(std::size_t n, const std::nothrow_t&) noexcept {
  if (n >= g_threshold.load(std::memory_order_relaxed))
    g_large_allocs.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(n);
}
void* operator new[](std::size_t n, const std::nothrow_t& t) noexcept {
  return ::operator new(n, t);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}

namespace {

// -- the legacy chain -------------------------------------------------------

/// Pre-payload kv value semantics: every hop materializes a fresh buffer.
class CopyingStore final : public kv::IKeyValueStore {
 public:
  explicit CopyingStore(kv::StorePtr inner) : inner_(std::move(inner)) {}

  using kv::IKeyValueStore::get;
  void put(std::string_view key, util::Payload value) override {
    inner_->put(key, util::Payload::copy(value.view()));
  }
  std::optional<util::Payload> get(std::string_view key) override {
    std::optional<util::Payload> p = inner_->get(key);
    if (!p) return std::nullopt;
    return util::Payload::copy(p->view());
  }
  bool exists(std::string_view key) override { return inner_->exists(key); }
  std::size_t erase(std::string_view key) override {
    return inner_->erase(key);
  }
  std::vector<std::string> keys(std::string_view pattern) override {
    return inner_->keys(pattern);
  }
  std::size_t size() override { return inner_->size(); }
  void clear() override { inner_->clear(); }

 private:
  kv::StorePtr inner_;
};

// -- measurement ------------------------------------------------------------

struct PathStats {
  double copies_per_rt = 0.0;  // payload-sized allocations per round trip
  double gbps = 0.0;           // application bytes moved per wall second
};

PathStats measure(bool zero_copy, std::size_t payload_size, int trips) {
  kv::StorePtr backing = std::make_shared<kv::MemoryStore>();
  if (!zero_copy) backing = std::make_shared<CopyingStore>(backing);
  auto faulty =
      std::make_shared<fault::FaultyStore>(backing, nullptr, nullptr);
  core::DataStore store("bench", faulty, nullptr, core::DataStoreConfig{});

  const util::Payload payload =
      util::Payload::from_bytes(make_bytes(payload_size, 0xA5));
  std::byte sink{};

  const auto round_trip = [&] {
    store.stage_write(nullptr, "snap", payload.view());
    if (zero_copy) {
      util::Payload out;
      store.stage_read(nullptr, "snap", out);
      sink ^= out.view().front();
    } else {
      Bytes out;
      store.stage_read(nullptr, "snap", out);
      sink ^= out.front();
    }
  };

  for (int i = 0; i < 3; ++i) round_trip();  // warm caches and containers

  CountScope copies(payload_size);
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < trips; ++i) round_trip();
  const auto t1 = std::chrono::steady_clock::now();

  PathStats out;
  out.copies_per_rt =
      static_cast<double>(copies.count()) / static_cast<double>(trips);
  const double seconds = std::chrono::duration<double>(t1 - t0).count();
  // One write + one read of the payload per trip.
  out.gbps = 2.0 * static_cast<double>(payload_size) * trips / seconds / 1e9;
  if (sink == std::byte{0xFF}) std::printf(" ");  // defeat dead-code elim
  return out;
}

std::string size_tag(std::size_t bytes) {
  if (bytes >= MiB) return std::to_string(bytes / MiB) + "MiB";
  return std::to_string(bytes / 1024) + "KiB";
}

int trips_for(std::size_t bytes, bool smoke) {
  if (bytes >= 64 * MiB) return smoke ? 2 : 6;
  if (bytes >= MiB) return smoke ? 16 : 64;
  return smoke ? 64 : 512;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string check_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") smoke = true;
    else if (arg == "--check" && i + 1 < argc) check_path = argv[++i];
    else {
      std::fprintf(stderr, "usage: %s [--smoke] [--check BENCH.json]\n",
                   argv[0]);
      return 2;
    }
  }

  bench::banner("Payload plane: copies per round trip and throughput");

  std::vector<std::size_t> sizes = {1024, 1 * MiB, 64 * MiB};
  if (smoke) sizes.pop_back();  // keep the gate fast; 64 MiB is full-run only

  util::Json::Object doc;
  bench::Table table({"size", "chain", "copies/rt", "GB/s"}, 14);
  bool ok = true;
  double speedup_64 = 0.0;

  for (std::size_t bytes : sizes) {
    const int trips = trips_for(bytes, smoke);
    const PathStats legacy = measure(false, bytes, trips);
    const PathStats payload = measure(true, bytes, trips);
    const std::string tag = size_tag(bytes);
    table.row({tag, "legacy", bench::fixed(legacy.copies_per_rt, 2),
               bench::fixed(legacy.gbps, 2)});
    table.row({tag, "payload", bench::fixed(payload.copies_per_rt, 2),
               bench::fixed(payload.gbps, 2)});
    doc["legacy_copies_per_rt_" + tag] = legacy.copies_per_rt;
    doc["payload_copies_per_rt_" + tag] = payload.copies_per_rt;
    doc["legacy_gbps_" + tag] = legacy.gbps;
    doc["payload_gbps_" + tag] = payload.gbps;

    ok &= bench::check(
        ("payload chain: <= 1 copy per round trip at " + tag).c_str(),
        payload.copies_per_rt <= 1.0);
    ok &= bench::check(
        ("legacy chain: >= 4 copies per round trip at " + tag).c_str(),
        legacy.copies_per_rt >= 4.0);
    if (bytes == 64 * MiB) speedup_64 = payload.gbps / legacy.gbps;
  }
  table.print();

  if (!smoke) {
    doc["speedup_64MiB"] = speedup_64;
    ok &= bench::check("payload chain >= 3x legacy throughput at 64 MiB",
                       speedup_64 >= 3.0);
  }

  if (!check_path.empty()) {
    // Regression gate: copies-per-round-trip must stay within 25% of the
    // committed numbers (throughput is machine-dependent; copies are not).
    const util::Json committed = util::Json::parse_file(check_path);
    for (const auto& [key, value] : doc) {
      if (key.find("copies_per_rt") == std::string::npos) continue;
      if (!committed.contains(key)) continue;
      const double base = committed.at(key).as_double();
      const double now = value.as_double();
      ok &= bench::check(
          (key + ": " + bench::fixed(now, 2) + " within 25% of committed " +
           bench::fixed(base, 2))
              .c_str(),
          now <= base * 1.25);
    }
  }

  if (!smoke) {
    const char* out_dir = std::getenv("SIMAI_BENCH_DIR");
    const std::string path =
        (out_dir ? std::string(out_dir) : std::string(".")) +
        "/BENCH_payload.json";
    std::ofstream(path) << util::Json(doc).dump(2) << "\n";
    std::printf("wrote %s\n\n", path.c_str());
  }

  return ok ? 0 : 1;
}
