// bench_serve: offered load vs latency tails and goodput for the serving
// plane, per transport backend (DESIGN.md §4.9).
//
// Part 1 — load sweep. The same continuous-batching cluster (4 open-loop
// clients, 2 replicas, batch <= 8) is driven at increasing offered load
// over each of the paper's four backends. Reported per cell: goodput,
// p50/p95/p99 request latency, and shed requests. The sweep crosses the
// cluster's capacity, so the table shows the whole story: flat latency
// while underloaded, growing queues near saturation, then admission
// control bounding the tail by shedding.
//
// Part 2 — outage scenario. A slow accelerator (20 ms per dispatch) under
// a seeded ReplicaOutage schedule: batches die mid-flight and fail over to
// the surviving replica. Goodput per 0.2 s window dips while a replica is
// down and recovers after; every admitted request completes (shedding is
// disabled, so nothing can hide a lost request). A rerun of the same cell
// must reproduce the canonical fingerprint byte for byte.
//
// All numbers are virtual-time and therefore machine-independent. Emits
// BENCH_serve.json (cwd, or $SIMAI_BENCH_DIR); `--smoke` runs a reduced
// sweep; `--check FILE` fails if goodput or latency moved > 5% vs the
// committed numbers.
#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "bench/bench_util.hpp"
#include "serve/serve.hpp"

using namespace simai;

namespace {

constexpr platform::BackendKind kBackends[] = {
    platform::BackendKind::NodeLocal, platform::BackendKind::Dragon,
    platform::BackendKind::Redis, platform::BackendKind::Filesystem};

serve::ServeConfig sweep_config(platform::BackendKind backend, double rate,
                                int requests_per_client) {
  serve::ServeConfig cfg;
  cfg.arrivals.clients = 4;
  cfg.arrivals.requests_per_client = requests_per_client;
  cfg.arrivals.rate = rate;
  cfg.arrivals.seed = 5;
  cfg.policy.max_batch_size = 8;
  cfg.policy.max_queue_delay = 0.002;
  cfg.policy.max_queue_depth = 64;
  cfg.replicas = 2;
  cfg.backend = backend;
  return cfg;
}

serve::ServeConfig outage_config(const fault::FaultSchedule* faults) {
  serve::ServeConfig cfg;
  cfg.arrivals.clients = 4;
  // 600 req/s offered against ~800 req/s capacity (batch 8 / 20 ms, two
  // replicas): one replica down means a 200 req/s deficit, so outage
  // windows build real backlog instead of vanishing into headroom. 960
  // requests keep arrivals flowing through the schedule's first cluster of
  // outage windows (~0.54 s to 0.93 s with seed 77).
  cfg.arrivals.requests_per_client = 240;
  cfg.arrivals.rate = 600.0;
  cfg.arrivals.seed = 5;
  cfg.policy.max_batch_size = 8;
  cfg.policy.max_queue_delay = 0.002;
  cfg.policy.max_queue_depth = 0;  // no shedding: lost requests can't hide
  cfg.replicas = 2;
  cfg.batch_overhead = 0.02;  // slow accelerator: outages straddle batches
  cfg.faults = faults;
  return cfg;
}

fault::FaultSpec outage_spec() {
  fault::FaultSpec spec;
  spec.seed = 77;
  spec.horizon = 30.0;
  spec.replicas = 2;
  spec.replica_outage_rate = 5.0;
  spec.replica_outage_mean_duration = 0.1;
  return spec;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string check_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") smoke = true;
    else if (arg == "--check" && i + 1 < argc) check_path = argv[++i];
    else {
      std::fprintf(stderr, "usage: %s [--smoke] [--check BENCH.json]\n",
                   argv[0]);
      return 2;
    }
  }

  bench::banner("Serving plane: offered load vs latency tails and goodput");

  std::vector<double> rates = {500.0, 2000.0, 4000.0, 8000.0, 16000.0};
  if (smoke) rates = {1000.0, 8000.0};
  const int per_client = smoke ? 30 : 100;

  util::Json::Object doc;
  bool ok = true;

  bench::Table table({"backend", "offered", "goodput", "p50 ms", "p95 ms",
                      "p99 ms", "shed"},
                     11);
  for (platform::BackendKind backend : kBackends) {
    const std::string name(platform::backend_name(backend));
    for (double rate : rates) {
      const serve::ServeResult r =
          serve::run_cluster(sweep_config(backend, rate, per_client));
      const double p50 = 1e3 * r.latency.percentile(50.0);
      const double p95 = 1e3 * r.latency.percentile(95.0);
      const double p99 = 1e3 * r.latency.percentile(99.0);
      table.row({name, bench::fixed(rate, 0), bench::fixed(r.goodput(), 0),
                 bench::fixed(p50, 3), bench::fixed(p95, 3),
                 bench::fixed(p99, 3),
                 std::to_string(static_cast<unsigned long long>(r.rejected))});
      const std::string tag = name + "_r" + bench::fixed(rate, 0);
      doc[tag + "_goodput"] = r.goodput();
      doc[tag + "_p50_ms"] = p50;
      doc[tag + "_p99_ms"] = p99;
      doc[tag + "_shed"] = static_cast<std::int64_t>(r.rejected);

      ok &= bench::check(
          (tag + ": every request resolved").c_str(),
          r.completed + r.rejected ==
              static_cast<std::uint64_t>(4 * per_client));
      if (rate == rates.front())
        ok &= bench::check((tag + ": no shedding while underloaded").c_str(),
                           r.rejected == 0);
    }
  }
  table.print();

  // The local backend must beat the remote ones on the latency tail at the
  // lightest load — that ordering is the paper's core observation carried
  // over to the serving path.
  {
    const double rate = rates.front();
    const auto p99_of = [&](platform::BackendKind b) {
      return serve::run_cluster(sweep_config(b, rate, per_client))
          .latency.percentile(99.0);
    };
    ok &= bench::check(
        "node-local p99 <= redis p99 at light load",
        p99_of(platform::BackendKind::NodeLocal) <=
            p99_of(platform::BackendKind::Redis) + 1e-12);
  }

  // -- Part 2: replica outages — goodput dips, recovers, loses nothing ------
  bench::banner("Replica outages: failover under a seeded schedule");
  const fault::FaultSpec spec = outage_spec();
  const fault::FaultSchedule schedule(spec);
  const serve::ServeResult out = serve::run_cluster(outage_config(&schedule));

  // Fault-free baseline of the same cluster: the dip/recovery statement is
  // about where the outage run falls behind it and whether it catches up.
  const serve::ServeResult healthy = serve::run_cluster(outage_config(nullptr));

  constexpr double kBucket = 0.2;
  const auto bucketize = [](const serve::ServeResult& r) {
    std::vector<int> buckets;
    for (const serve::RequestRecord& q : r.requests) {
      if (q.completed < 0.0) continue;
      const auto b = static_cast<std::size_t>(q.completed / kBucket);
      if (buckets.size() <= b) buckets.resize(b + 1, 0);
      ++buckets[b];
    }
    return buckets;
  };
  std::vector<int> buckets = bucketize(out);
  std::vector<int> base_buckets = bucketize(healthy);
  base_buckets.resize(std::max(buckets.size(), base_buckets.size()), 0);
  buckets.resize(base_buckets.size(), 0);

  // Cumulative lag: how many completions the outage run is behind the
  // healthy run at time t. Degradation = the lag spikes while a replica is
  // down; recovery = it drains back to zero by the end. A 0.1 s outage
  // builds and drains its backlog within one 0.2 s display window, so the
  // maximum is taken on a fine (2 ms) grid, not at window boundaries.
  const auto completions = [](const serve::ServeResult& r) {
    std::vector<double> times;
    for (const serve::RequestRecord& q : r.requests)
      if (q.completed >= 0.0) times.push_back(q.completed);
    std::sort(times.begin(), times.end());
    return times;
  };
  const std::vector<double> done_outage = completions(out);
  const std::vector<double> done_healthy = completions(healthy);
  int max_lag = 0;
  {
    const double end = std::max(out.makespan, healthy.makespan);
    std::size_t ih = 0, io = 0;
    for (double t = 0.0; t <= end; t += 0.002) {
      while (ih < done_healthy.size() && done_healthy[ih] <= t) ++ih;
      while (io < done_outage.size() && done_outage[io] <= t) ++io;
      max_lag = std::max(max_lag, static_cast<int>(ih) - static_cast<int>(io));
    }
  }

  bench::Table otable({"window", "healthy/s", "outage/s", "lag"}, 12);
  int cum_healthy = 0, cum_outage = 0;
  for (std::size_t b = 0; b < buckets.size(); ++b) {
    cum_healthy += base_buckets[b];
    cum_outage += buckets[b];
    otable.row({bench::fixed(b * kBucket, 1) + "s",
                bench::fixed(base_buckets[b] / kBucket, 0),
                bench::fixed(buckets[b] / kBucket, 0),
                std::to_string(cum_healthy - cum_outage)});
    doc["outage_goodput_t" + std::to_string(b)] = buckets[b] / kBucket;
  }
  doc["outage_max_lag"] = max_lag;
  otable.print();
  std::printf("max lag (2 ms grid): %d requests\n", max_lag);
  std::printf("failovers %llu  retried requests %d  makespan %.3f s\n\n",
              static_cast<unsigned long long>(out.failovers), [&] {
                int n = 0;
                for (const auto& r : out.requests) n += r.attempts > 1;
                return n;
              }(), out.makespan);
  doc["outage_failovers"] = static_cast<std::int64_t>(out.failovers);
  doc["outage_completed"] = static_cast<std::int64_t>(out.completed);

  ok &= bench::check("outage: every admitted request completed",
                     out.completed == 960 && out.rejected == 0);
  ok &= bench::check("outage: batches failed over (outage mid-batch)",
                     out.failovers >= 1);
  // Degrades: the outage run falls visibly behind the healthy run at some
  // point. Recovers: the backlog fully drains — the final cumulative counts
  // match, just later (and nothing was lost along the way).
  ok &= bench::check("outage: goodput degrades (lag >= 16 requests)",
                     max_lag >= 16);
  ok &= bench::check("outage: goodput recovers (backlog fully drains)",
                     cum_outage == cum_healthy &&
                         out.makespan > healthy.makespan);

  // Determinism: the same cell reruns to the byte-identical fingerprint.
  {
    const fault::FaultSchedule again(spec);
    const serve::ServeResult rerun =
        serve::run_cluster(outage_config(&again));
    ok &= bench::check("outage: rerun reproduces the fingerprint",
                       rerun.fingerprint() == out.fingerprint());
  }

  if (!check_path.empty()) {
    // Regression gate: virtual-time results are machine-independent, so a
    // 5% drift on any goodput/latency series is a real behaviour change.
    const util::Json committed = util::Json::parse_file(check_path);
    for (const auto& [key, value] : doc) {
      // Smoke sweeps fewer requests per cell, so only the outage scenario
      // (whose config ignores --smoke) is comparable to committed numbers.
      if (smoke && key.rfind("outage_", 0) != 0) continue;
      if (!committed.contains(key)) continue;
      if (key.find("_goodput") == std::string::npos &&
          key.find("_p99_ms") == std::string::npos)
        continue;
      const double base = committed.at(key).as_double();
      const double now = value.as_double();
      const double tol = std::max(0.05 * std::abs(base), 1e-9);
      ok &= bench::check((key + ": " + bench::fixed(now, 2) +
                          " within 5% of committed " + bench::fixed(base, 2))
                             .c_str(),
                         std::abs(now - base) <= tol);
    }
  }

  if (!smoke) {
    const char* out_dir = std::getenv("SIMAI_BENCH_DIR");
    const std::string path =
        (out_dir ? std::string(out_dir) : std::string(".")) +
        "/BENCH_serve.json";
    std::ofstream(path) << util::Json(doc).dump(2) << "\n";
    std::printf("wrote %s\n\n", path.c_str());
  }

  return ok ? 0 : 1;
}
