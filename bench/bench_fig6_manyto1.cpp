// Reproduces Fig. 6: Pattern-2 training runtime per iteration (compute +
// transport) vs data size, at 8 nodes (7 simulations) and 128 nodes (127
// simulations), for dragon / redis / filesystem.
#include <cstdio>
#include <map>

#include "bench/bench_util.hpp"
#include "core/experiment.hpp"

using namespace simai;
using namespace simai::bench;

namespace {

double measure(platform::BackendKind backend, std::uint64_t bytes,
               int num_sims) {
  core::Pattern2Config c;
  c.backend = backend;
  c.num_sims = num_sims;
  c.payload_bytes = bytes;
  c.payload_cap = 2 * KiB;
  c.train_iters = 100;
  return core::run_pattern2(c).train_runtime_per_iter;
}

}  // namespace

int main() {
  banner("Fig 6: Pattern 2 training runtime per iteration [ms]");

  std::map<int, std::map<platform::BackendKind, std::map<std::uint64_t, double>>>
      results;
  for (int sims : {7, 127}) {
    for (auto backend : nonlocal_backends())
      for (auto bytes : size_sweep())
        results[sims][backend][bytes] = measure(backend, bytes, sims);
  }

  for (int sims : {7, 127}) {
    std::printf("(%s) %d nodes (%d simulations + 1 trainer)\n",
                sims == 7 ? "a" : "b", sims + 1, sims);
    Table t({"size(MB)", "dragon", "redis", "filesystem"}, 12);
    for (auto bytes : size_sweep()) {
      std::vector<std::string> row{mb_label(bytes)};
      for (auto backend : nonlocal_backends())
        row.push_back(ms(results[sims][backend][bytes]));
      t.row(row);
    }
    t.print();
  }

  std::printf("Shape checks vs the paper:\n");
  bool ok = true;
  using BK = platform::BackendKind;

  // All backends grow with size at 8 nodes; redis grows most.
  for (auto b : nonlocal_backends()) {
    const std::string name(platform::backend_name(b));
    ok &= bench::check((name + ": runtime grows with data size (8 nodes)").c_str(),
                results[7][b][32 * MiB] > results[7][b][1 * MiB]);
  }
  ok &= bench::check("redis runtime grows most significantly (8 nodes, 32 MB)",
              results[7][BK::Redis][32 * MiB] >
                      results[7][BK::Dragon][32 * MiB] &&
                  results[7][BK::Redis][32 * MiB] >
                      results[7][BK::Filesystem][32 * MiB]);
  ok &= bench::check("dragon ~ filesystem at 8 nodes (4 MB)",
              results[7][BK::Dragon][4 * MiB] <
                      2.5 * results[7][BK::Filesystem][4 * MiB] &&
                  results[7][BK::Filesystem][4 * MiB] <
                      2.5 * results[7][BK::Dragon][4 * MiB]);
  ok &= bench::check("redis remains slowest at 128 nodes",
              results[127][BK::Redis][4 * MiB] >
                      results[127][BK::Dragon][4 * MiB] * 0.9 &&
                  results[127][BK::Redis][4 * MiB] >
                      results[127][BK::Filesystem][4 * MiB]);
  ok &= bench::check("dragon significantly slower than filesystem <10 MB @128",
              results[127][BK::Dragon][1 * MiB] >
                  1.5 * results[127][BK::Filesystem][1 * MiB]);
  ok &= bench::check("dragon ~ filesystem at the largest sizes @128",
              results[127][BK::Dragon][32 * MiB] <
                      3.0 * results[127][BK::Filesystem][32 * MiB] &&
                  results[127][BK::Filesystem][32 * MiB] <
                      3.0 * results[127][BK::Dragon][32 * MiB]);
  ok &= bench::check("filesystem is the best overall backend at 128 nodes (1 MB)",
              results[127][BK::Filesystem][1 * MiB] <=
                      results[127][BK::Dragon][1 * MiB] &&
                  results[127][BK::Filesystem][1 * MiB] <=
                      results[127][BK::Redis][1 * MiB]);
  return ok ? 0 : 1;
}
