// Engine scale benchmark: events/sec as a function of live-process count,
// 64 up to one million logical processes, plus full-width (512-node)
// replays of the paper's Pattern-1 and Pattern-2 workflows.
//
// The paper's target machine is Aurora at 10,624 nodes; modelling it
// rank-for-rank (6 sim + 6 AI ranks per node, §4.1) needs ~127k live
// processes, and headroom beyond that lets ensembles and serving fleets
// ride along. This bench pins the three mechanisms that make that feasible
// — the calendar ready queue, pooled fiber stacks, and the reclaiming
// process arena — to numbers:
//
//  * ping curve: P processes x K empty delays (the dispatch-rate worst
//    case, same workload as bench_engine) at geometrically spaced P. The
//    fiber curve runs to P = 1,048,576; the thread curve stops at 4,096
//    (beyond that the OS, not the engine, is the experiment).
//  * fig3/fig6 replays: Pattern 1 with ALL 512x6 rank pairs instantiated
//    (representative_pairs = 0 — no statistical collapsing) and Pattern 2
//    with a 511-member ensemble, each at reduced iteration counts.
//
// Emits BENCH_scale.json (cwd or $SIMAI_BENCH_DIR). `--smoke` runs a
// two-point fiber curve for the CI gate; `--check FILE` compares the
// 4,096-process smoke point against the committed file and fails on a
// >20% events/sec regression.
#include <sys/resource.h>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "bench/bench_util.hpp"
#include "core/experiment.hpp"
#include "sim/engine.hpp"
#include "util/json.hpp"

using namespace simai;
using namespace simai::bench;

namespace {

double now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

double max_rss_mib() {
  struct rusage ru{};
  ::getrusage(RUSAGE_SELF, &ru);
  return double(ru.ru_maxrss) / 1024.0;  // Linux: ru_maxrss is in KiB
}

struct CurvePoint {
  std::string substrate;
  std::uint64_t processes = 0;
  std::uint64_t events = 0;
  double spawn_seconds = 0.0;  // building P processes (arena + name alloc)
  double run_seconds = 0.0;    // dispatching all events
  double events_per_sec() const { return double(events) / run_seconds; }
};

// P processes x K empty delays. Spawn and run are timed separately: spawn
// cost is arena/bookkeeping, run cost is pure dispatch + ready-queue churn
// (fiber stacks and OS threads are created lazily inside the run).
CurvePoint ping(sim::Substrate substrate, std::uint64_t processes,
                std::uint64_t total_events) {
  const std::uint64_t steps =
      std::max<std::uint64_t>(1, total_events / processes);
  CurvePoint pt;
  pt.substrate =
      substrate == sim::Substrate::Fiber ? "fiber" : "thread";
  pt.processes = processes;
  pt.events = processes * steps;

  sim::Engine engine(substrate);
  const double t0 = now_s();
  for (std::uint64_t p = 0; p < processes; ++p) {
    engine.spawn("p" + std::to_string(p), [steps](sim::Context& ctx) {
      for (std::uint64_t k = 0; k < steps; ++k) ctx.delay(0.0);
    });
  }
  const double t1 = now_s();
  engine.run();
  const double t2 = now_s();
  pt.spawn_seconds = t1 - t0;
  pt.run_seconds = t2 - t1;

  if (engine.live_process_count() != 0) {
    std::fprintf(stderr, "FATAL: %zu processes leaked\n",
                 engine.live_process_count());
    std::exit(2);
  }
  return pt;
}

struct ReplayResult {
  double makespan = 0.0;
  double wall_seconds = 0.0;
  std::uint64_t sim_steps = 0;
  std::uint64_t train_steps = 0;
};

// Fig-3 workload at full width: every one of 512 x 6 = 3,072 rank pairs is
// a real pair of DES processes (the figure benches collapse them to 2
// representative pairs; here the POINT is the process count).
ReplayResult replay_fig3_512() {
  core::Pattern1Config c;
  c.backend = platform::BackendKind::NodeLocal;
  c.nodes = 512;
  c.representative_pairs = 0;  // all 3,072 pairs -> 6,144 rank processes
  c.payload_cap = 4 * KiB;
  c.train_iters = 60;  // reduced; the scale is the experiment, not the stats
  c.sim_init_time = 0.5;
  c.train_init_time = 1.0;
  const double t0 = now_s();
  const core::Pattern1Result r = core::run_pattern1(c);
  ReplayResult out;
  out.wall_seconds = now_s() - t0;
  out.makespan = r.makespan;
  out.sim_steps = r.sim.steps;
  out.train_steps = r.train.steps;
  return out;
}

// Fig-6 workload at 512 nodes: a 511-member ensemble (one sim per node)
// plus the single trainer node reading all members non-locally.
ReplayResult replay_fig6_512() {
  core::Pattern2Config c;
  c.backend = platform::BackendKind::Dragon;
  c.num_sims = 511;  // nodes() == 512
  c.payload_cap = 4 * KiB;
  c.train_iters = 40;
  const double t0 = now_s();
  const core::Pattern2Result r = core::run_pattern2(c);
  ReplayResult out;
  out.wall_seconds = now_s() - t0;
  out.makespan = r.makespan;
  out.sim_steps = r.sim.steps;
  out.train_steps = r.train.steps;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string check_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      smoke = true;
    } else if (arg == "--check" && i + 1 < argc) {
      check_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--smoke] [--check BENCH.json]\n",
                   argv[0]);
      return 2;
    }
  }

  banner("Engine scale: events/sec vs live-process count");

  // Geometric process-count sweep. Event totals are sized so each point
  // takes O(1s): enough dispatches to amortize clocks, small enough that
  // the full curve stays a few minutes.
  struct Sweep {
    sim::Substrate substrate;
    std::uint64_t processes;
    std::uint64_t events;
  };
  std::vector<Sweep> sweeps;
  if (smoke) {
    sweeps = {{sim::Substrate::Fiber, 64, 400'000},
              {sim::Substrate::Fiber, 4'096, 400'000}};
  } else {
    for (std::uint64_t p : {64ull, 1'024ull, 16'384ull, 131'072ull,
                            1'048'576ull})
      sweeps.push_back({sim::Substrate::Fiber, p,
                        std::max<std::uint64_t>(2'000'000, 2 * p)});
    // Thread substrate: one OS thread per live process; past a few
    // thousand the kernel is the bottleneck being measured, so stop there.
    for (std::uint64_t p : {64ull, 1'024ull, 4'096ull})
      sweeps.push_back({sim::Substrate::Thread, p, 100'000});
  }

  // Warm-up faults in allocator paths outside the timed region.
  (void)ping(sim::Substrate::Fiber, 16, 10'000);

  util::Json::Array curve;
  Table table({"substrate", "processes", "events", "spawn s", "run s",
               "events/s"},
              12);
  std::vector<CurvePoint> points;
  for (const Sweep& s : sweeps) {
    const CurvePoint pt = ping(s.substrate, s.processes, s.events);
    points.push_back(pt);
    table.row({pt.substrate, std::to_string(pt.processes),
               std::to_string(pt.events), fixed(pt.spawn_seconds, 3),
               fixed(pt.run_seconds, 3), fixed(pt.events_per_sec(), 0)});
    util::Json::Object o;
    o["substrate"] = pt.substrate;
    o["processes"] = pt.processes;
    o["events"] = pt.events;
    o["spawn_seconds"] = pt.spawn_seconds;
    o["run_seconds"] = pt.run_seconds;
    o["events_per_sec"] = pt.events_per_sec();
    curve.push_back(util::Json(o));
  }
  table.print();

  auto find_point = [&](const char* substrate,
                        std::uint64_t procs) -> const CurvePoint* {
    for (const CurvePoint& pt : points)
      if (pt.substrate == substrate && pt.processes == procs) return &pt;
    return nullptr;
  };

  bool ok = true;

  if (!check_path.empty()) {
    // CI regression gate: the committed full-run curve also contains a
    // 4,096-neighborhood... but smoke measures exactly 4,096, so the
    // committed file stores a dedicated smoke baseline for it.
    const util::Json committed = util::Json::parse_file(check_path);
    const CurvePoint* now_pt = find_point("fiber", 4'096);
    if (now_pt && committed.contains("smoke_fiber_4096_events_per_sec")) {
      const double base =
          committed.at("smoke_fiber_4096_events_per_sec").as_double();
      ok &= bench::check(
          ("fiber @4096 procs: " + fixed(now_pt->events_per_sec(), 0) +
           " ev/s within 20% of committed " + fixed(base, 0))
              .c_str(),
          now_pt->events_per_sec() >= 0.8 * base);
    }
  }

  if (smoke) {
    // Gate mode: no file output, no multi-minute replays.
    const CurvePoint* p64 = find_point("fiber", 64);
    ok &= bench::check("fiber @64 procs sustains >= 1M events/s",
                       p64 && p64->events_per_sec() >= 1e6);
    return ok ? 0 : 1;
  }

  util::Json::Object doc;
  doc["workload"] = "empty-delay ping, geometric process sweep";
  doc["curve"] = util::Json(curve);

  // Smoke baseline for the tools/check.sh gate (measured here with the
  // same event count the smoke sweep uses, so the gate compares apples).
  {
    const CurvePoint pt = ping(sim::Substrate::Fiber, 4'096, 400'000);
    doc["smoke_fiber_4096_events_per_sec"] = pt.events_per_sec();
    std::printf("smoke baseline: fiber @4096 procs = %.0f ev/s\n\n",
                pt.events_per_sec());
  }

  // Full-width paper-workflow replays.
  banner("512-node workflow replays (all ranks instantiated)");
  const ReplayResult f3 = replay_fig3_512();
  const ReplayResult f6 = replay_fig6_512();
  Table rt({"replay", "ranks", "makespan vs", "wall s", "sim steps"}, 13);
  rt.row({"fig3 p1 512n", "6144", fixed(f3.makespan, 1),
          fixed(f3.wall_seconds, 2), std::to_string(f3.sim_steps)});
  rt.row({"fig6 p2 512n", "512", fixed(f6.makespan, 1),
          fixed(f6.wall_seconds, 2), std::to_string(f6.sim_steps)});
  rt.print();

  util::Json::Object j3;
  j3["nodes"] = 512;
  j3["rank_processes"] = 6144;
  j3["makespan_virtual_s"] = f3.makespan;
  j3["wall_seconds"] = f3.wall_seconds;
  j3["sim_steps"] = f3.sim_steps;
  j3["train_steps"] = f3.train_steps;
  doc["fig3_replay_512_nodes"] = util::Json(j3);
  util::Json::Object j6;
  j6["nodes"] = 512;
  j6["ensemble_sims"] = 511;
  j6["makespan_virtual_s"] = f6.makespan;
  j6["wall_seconds"] = f6.wall_seconds;
  j6["sim_steps"] = f6.sim_steps;
  j6["train_steps"] = f6.train_steps;
  doc["fig6_replay_512_nodes"] = util::Json(j6);

  // Extrapolation toward the full machine: Aurora is 10,624 nodes; the
  // paper's Pattern-1 mapping (6 sim + 6 AI ranks per node) needs
  // 10,624 * 12 = 127,488 live processes — bracketed by the measured
  // 131,072-process point, with the 1M point giving ~8x headroom for
  // ensembles/serving on top.
  {
    const CurvePoint* p131k = find_point("fiber", 131'072);
    const CurvePoint* p1m = find_point("fiber", 1'048'576);
    util::Json::Object ex;
    ex["aurora_nodes"] = 10'624;
    ex["ranks_per_node"] = 12;
    ex["aurora_rank_processes"] = 127'488;
    if (p131k) ex["events_per_sec_at_131072"] = p131k->events_per_sec();
    if (p1m) ex["events_per_sec_at_1048576"] = p1m->events_per_sec();
    ex["note"] =
        "full-Aurora Pattern 1 (10,624 nodes x 12 ranks = 127,488 "
        "processes) sits just below the measured 131,072-process point; "
        "the 1,048,576-process point shows ~8x headroom beyond that";
    doc["aurora_extrapolation"] = util::Json(ex);
  }

  doc["max_rss_mib"] = max_rss_mib();
  std::printf("peak RSS: %.0f MiB\n\n", max_rss_mib());

  const char* out_dir = std::getenv("SIMAI_BENCH_DIR");
  const std::string path = (out_dir ? std::string(out_dir) : std::string(".")) +
                           "/BENCH_scale.json";
  std::ofstream(path) << util::Json(doc).dump(2) << "\n";
  std::printf("wrote %s\n\n", path.c_str());

  std::printf("Shape checks vs the paper's scaling needs:\n");
  const CurvePoint* p64 = find_point("fiber", 64);
  const CurvePoint* p1m = find_point("fiber", 1'048'576);
  ok &= bench::check("fiber @64 procs sustains >= 1M events/s",
                     p64 && p64->events_per_sec() >= 1e6);
  ok &= bench::check("1,048,576 processes complete the ping workload",
                     p1m != nullptr);
  ok &= bench::check("fiber @1M procs sustains >= 100k events/s",
                     p1m && p1m->events_per_sec() >= 1e5);
  ok &= bench::check("fig3 replay (512 nodes, all pairs) completes",
                     f3.makespan > 0.0 && f3.sim_steps > 0);
  ok &= bench::check("fig6 replay (512 nodes, full ensemble) completes",
                     f6.makespan > 0.0 && f6.sim_steps > 0);
  return ok ? 0 : 1;
}
