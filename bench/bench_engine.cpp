// DES dispatch-throughput microbenchmark: fiber vs thread substrate.
//
// Every paper figure is millions of replayed events, so raw dispatch rate
// bounds how large a machine we can simulate. The workload is the
// scheduler's worst case — an empty-delay "ping": P processes each execute
// K zero-work delay() steps, so wall time is pure context-switch +
// event-heap cost. The thread substrate pays two kernel semaphore handoffs
// per event; the fiber substrate pays two user-space register swaps.
//
// Emits BENCH_engine.json (cwd, or $SIMAI_BENCH_DIR) with both rates so
// the speedup is tracked across PRs. Target: fiber >= 10x thread.
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <string>

#include "bench/bench_util.hpp"
#include "sim/engine.hpp"
#include "util/json.hpp"

using namespace simai;
using namespace simai::bench;

namespace {

struct Rate {
  std::uint64_t events = 0;
  double seconds = 0.0;
  double per_sec() const { return events / seconds; }
};

// P processes x K empty delays; every delay is one scheduled event.
Rate ping_workload(sim::Substrate substrate, int processes,
                   std::uint64_t steps_per_process) {
  sim::Engine engine(substrate);
  for (int p = 0; p < processes; ++p) {
    engine.spawn("p" + std::to_string(p),
                 [steps_per_process](sim::Context& ctx) {
                   for (std::uint64_t k = 0; k < steps_per_process; ++k)
                     ctx.delay(0.0);
                 });
  }
  const auto t0 = std::chrono::steady_clock::now();
  engine.run();
  const auto t1 = std::chrono::steady_clock::now();
  Rate r;
  r.events = static_cast<std::uint64_t>(processes) * steps_per_process;
  r.seconds = std::chrono::duration<double>(t1 - t0).count();
  return r;
}

std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  const char* v = std::getenv(name);
  return v && *v ? std::strtoull(v, nullptr, 10) : fallback;
}

}  // namespace

int main() {
  banner("Engine substrate: dispatch throughput, fiber vs thread");

  const int processes = static_cast<int>(env_u64("SIMAI_BENCH_PROCS", 64));
  // Sized so the slow (thread) side takes O(1s); override via env.
  const std::uint64_t thread_events =
      env_u64("SIMAI_BENCH_THREAD_EVENTS", 200'000);
  const std::uint64_t fiber_events =
      env_u64("SIMAI_BENCH_FIBER_EVENTS", 2'000'000);

  // Warm-up: fault in thread/fiber creation paths outside the timed run.
  (void)ping_workload(sim::Substrate::Fiber, 4, 1000);
  (void)ping_workload(sim::Substrate::Thread, 4, 1000);

  const Rate thread_rate = ping_workload(
      sim::Substrate::Thread, processes,
      thread_events / static_cast<std::uint64_t>(processes));
  const Rate fiber_rate = ping_workload(
      sim::Substrate::Fiber, processes,
      fiber_events / static_cast<std::uint64_t>(processes));
  const double speedup = fiber_rate.per_sec() / thread_rate.per_sec();

  Table table({"substrate", "events", "wall s", "events/s"}, 14);
  table.row({"thread", std::to_string(thread_rate.events),
             fixed(thread_rate.seconds, 3), fixed(thread_rate.per_sec(), 0)});
  table.row({"fiber", std::to_string(fiber_rate.events),
             fixed(fiber_rate.seconds, 3), fixed(fiber_rate.per_sec(), 0)});
  table.print();
  std::printf("speedup: %.1fx\n\n", speedup);

  util::Json::Object doc;
  doc["workload"] = "empty-delay ping";
  doc["processes"] = processes;
  doc["thread_events"] = thread_rate.events;
  doc["thread_seconds"] = thread_rate.seconds;
  doc["thread_events_per_sec"] = thread_rate.per_sec();
  doc["fiber_events"] = fiber_rate.events;
  doc["fiber_seconds"] = fiber_rate.seconds;
  doc["fiber_events_per_sec"] = fiber_rate.per_sec();
  doc["speedup"] = speedup;
  const char* out_dir = std::getenv("SIMAI_BENCH_DIR");
  const std::string path =
      (out_dir ? std::string(out_dir) : std::string(".")) +
      "/BENCH_engine.json";
  std::ofstream(path) << util::Json(doc).dump(2) << "\n";
  std::printf("wrote %s\n\n", path.c_str());

  std::printf("Shape checks vs the paper's scaling needs:\n");
  bool ok = true;
  ok &= bench::check("fiber substrate sustains >= 1M events/s",
              fiber_rate.per_sec() >= 1e6);
  ok &= bench::check("fiber dispatch >= 10x thread dispatch", speedup >= 10.0);
  return ok ? 0 : 1;
}
