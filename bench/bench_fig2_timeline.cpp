// Reproduces Fig. 2: the execution timeline of the one-to-one workflow —
// compute spans for the simulation and trainer, data-transfer marks, and
// initialization — rendered as ASCII art and dumped as CSV for plotting.
#include <cstdlib>
#include <cstdio>
#include <fstream>

#include "bench/bench_util.hpp"
#include "core/experiment.hpp"

using namespace simai;
using namespace simai::bench;

namespace {

core::Pattern1Result run_with_trace(double sim_std, double train_std,
                                    std::uint64_t seed) {
  core::Pattern1Config c;
  c.backend = platform::BackendKind::Redis;
  c.nodes = 1;
  c.representative_pairs = 1;
  c.payload_bytes = 1258291;
  c.payload_cap = 16 * KiB;
  c.train_iters = 600;  // a segment of the run, as the figure shows
  c.sim_iter_time = sim_std > 0 ? 0.0312 : 0.03147;
  c.sim_iter_std = sim_std;
  c.train_iter_time = 0.0611;
  c.train_iter_std = train_std;
  c.sim_init_time = 3.0;
  c.train_init_time = 8.0;
  c.record_trace = true;
  c.seed = seed;
  return core::run_pattern1(c);
}

}  // namespace

int main() {
  banner("Fig 2: execution timeline, original workflow vs mini-app replica");

  const core::Pattern1Result orig = run_with_trace(0.0273, 0.1, 3);
  const core::Pattern1Result mini = run_with_trace(0.0, 0.0, 4);

  // Show a segment well past initialization (as in the figure).
  const SimTime t0 = 10.0, t1 = 30.0;
  std::printf("Original (stochastic emulation), t = %.0f..%.0f s\n", t0, t1);
  std::printf("%s\n", orig.trace.render_ascii(100, t0, t1).c_str());
  std::printf("Mini-app (deterministic), t = %.0f..%.0f s\n", t0, t1);
  std::printf("%s\n", mini.trace.render_ascii(100, t0, t1).c_str());

  // CSV artifacts for plotting (kept out of the bench binary directory so
  // `for b in build/bench/*; do $b; done` loops only hit executables).
  const char* out_dir = std::getenv("SIMAI_FIG2_DIR");
  const std::string dir = out_dir ? out_dir : "/tmp";
  std::ofstream(dir + "/fig2_original.csv") << orig.trace.to_csv();
  std::ofstream(dir + "/fig2_miniapp.csv") << mini.trace.to_csv();
  std::ofstream(dir + "/fig2_original.trace.json")
      << orig.trace.to_chrome_json();
  std::printf(
      "traces written to %s/fig2_{original,miniapp}.csv and "
      "%s/fig2_original.trace.json (chrome://tracing / Perfetto)\n\n",
      dir.c_str(), dir.c_str());

  auto transfers_in = [](const core::Pattern1Result& r, SimTime a, SimTime b) {
    int n = 0;
    for (const auto& i : r.trace.instants())
      if (i.time >= a && i.time <= b) ++n;
    return n;
  };

  std::printf("Shape checks vs the paper:\n");
  bool ok = true;
  ok &= bench::check("both timelines contain compute spans and transfer marks",
              !orig.trace.spans().empty() && !orig.trace.instants().empty() &&
                  !mini.trace.spans().empty() && !mini.trace.instants().empty());
  const int orig_n = transfers_in(orig, t0, t1);
  const int mini_n = transfers_in(mini, t0, t1);
  ok &= bench::check("transfer counts in the segment agree within 50%",
              orig_n > 0 && mini_n > 0 &&
                  std::abs(orig_n - mini_n) <= (orig_n + mini_n) / 2);
  // Transfers are non-uniformly spaced in the original (asynchronous
  // pattern): inter-arrival CV should be clearly nonzero.
  std::vector<double> gaps;
  SimTime prev = -1;
  for (const auto& i : orig.trace.instants()) {
    if (i.track != "sim0") continue;
    if (prev >= 0) gaps.push_back(i.time - prev);
    prev = i.time;
  }
  util::RunningStats gap_stats;
  for (double g : gaps) gap_stats.add(g);
  ok &= bench::check("original transfer spacing is non-uniform (async pattern)",
              gap_stats.count() > 3 &&
                  gap_stats.stddev() / gap_stats.mean() > 0.05);
  return ok ? 0 : 1;
}
