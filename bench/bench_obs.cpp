// Observability-plane benchmark: the two portable claims of src/obs,
// measured instead of asserted.
//
//  * Parity — arming the plane, including windowed mode (SIMAI_OBS_WINDOW
//    semantics via obs::set_window) and the flight ring, never changes a
//    canonical fingerprint: fig2- (Pattern 1 / Redis), fig3- (Pattern 1 /
//    NodeLocal, all pairs) and fig6-style (Pattern 2 / Dragon) replays run
//    at workers = 1, 2, 4, 8 on BOTH process substrates (fiber and thread,
//    via SIMAI_SIM_THREADS), armed and disarmed, and every fingerprint
//    must be byte-identical to the first disarmed run of that workload.
//    A telemetry plane that shifts virtual time is a broken one; this gate
//    runs in --smoke too, so CI holds it.
//
//  * Cost — disarmed, the plane is one relaxed atomic load per hook; a
//    binary with telemetry *configured* (window width set, flight ring
//    sized) but disarmed must run the fig2 workload within 1% of one with
//    no telemetry configured at all. Minimum wall time over interleaved
//    trials on both sides (minima are robust against scheduler noise; a
//    1 ms absolute allowance absorbs timer granularity on the smoke-sized
//    replay). The armed and armed+windowed costs are reported alongside
//    for scale, not gated — arming is opt-in.
//
// Emits BENCH_obs.json (cwd or $SIMAI_BENCH_DIR). `--smoke` shrinks the
// replays for the CI gate; `--check FILE` additionally compares the smoke
// fig2 events/sec against the committed file (50% tolerance — the gate is
// for cliffs, not noise).
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <sstream>
#include <string>
#include <vector>

#include "bench/bench_util.hpp"
#include "core/experiment.hpp"
#include "obs/flight.hpp"
#include "obs/obs.hpp"
#include "obs/window.hpp"
#include "util/json.hpp"

using namespace simai;
using namespace simai::bench;

namespace {

double now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct Replay {
  std::string fingerprint;
  double wall_seconds = 0.0;
  std::uint64_t events = 0;
};

core::Pattern1Config fig2_config(bool smoke) {
  core::Pattern1Config c;
  c.backend = platform::BackendKind::Redis;
  c.nodes = smoke ? 2 : 16;
  c.payload_cap = 4 * KiB;
  c.train_iters = smoke ? 40 : 300;
  c.sim_init_time = 0.5;
  c.train_init_time = 1.0;
  return c;
}

core::Pattern1Config fig3_config(bool smoke) {
  core::Pattern1Config c;
  c.backend = platform::BackendKind::NodeLocal;
  c.nodes = smoke ? 4 : 64;
  c.representative_pairs = 0;  // every pair is a real LP
  c.payload_cap = 4 * KiB;
  c.train_iters = smoke ? 20 : 60;
  c.sim_init_time = 0.5;
  c.train_init_time = 1.0;
  return c;
}

core::Pattern2Config fig6_config(bool smoke) {
  core::Pattern2Config c;
  c.backend = platform::BackendKind::Dragon;
  c.num_sims = smoke ? 7 : 63;
  c.payload_cap = 4 * KiB;
  c.train_iters = smoke ? 20 : 40;
  return c;
}

Replay run_p1(core::Pattern1Config c, unsigned workers) {
  c.workers = workers;
  const double t0 = now_s();
  const core::Pattern1Result r = core::run_pattern1(c);
  Replay out;
  out.wall_seconds = now_s() - t0;
  out.events = r.sim.steps + r.train.steps + r.sim.transport_events +
               r.train.transport_events;
  std::ostringstream fp;
  fp.precision(17);
  fp << "makespan=" << r.makespan << " sim.steps=" << r.sim.steps
     << " train.steps=" << r.train.steps
     << " sim.events=" << r.sim.transport_events
     << " train.events=" << r.train.transport_events
     << " sim.iter=" << r.sim.iter_time.mean()
     << " train.iter=" << r.train.iter_time.mean();
  out.fingerprint = fp.str();
  return out;
}

Replay run_p2(core::Pattern2Config c, unsigned workers) {
  c.workers = workers;
  const double t0 = now_s();
  const core::Pattern2Result r = core::run_pattern2(c);
  Replay out;
  out.wall_seconds = now_s() - t0;
  out.events = r.sim.steps + r.train.steps + r.sim.transport_events +
               r.train.transport_events;
  std::ostringstream fp;
  fp.precision(17);
  fp << "makespan=" << r.makespan << " sim.steps=" << r.sim.steps
     << " train.steps=" << r.train.steps
     << " sim.events=" << r.sim.transport_events
     << " train.events=" << r.train.transport_events
     << " runtime_per_iter=" << r.train_runtime_per_iter;
  out.fingerprint = fp.str();
  return out;
}

/// Arm/disarm + telemetry configuration around one replay. reset() drops
/// the accumulated registry/flight state afterwards so runs don't feed
/// each other (fingerprints never read the registry, but hygiene is free).
struct ObsMode {
  const char* name;
  bool armed;
  double window;       // 0 = windowing off
  std::size_t flight;  // ring capacity (0 = keep default)
};

Replay run_mode(const ObsMode& mode, const std::function<Replay()>& body) {
  obs::reset();
  obs::set_enabled(mode.armed);
  if (mode.window > 0.0) obs::set_window(mode.window);
  if (mode.flight > 0) obs::flight().set_capacity(mode.flight);
  Replay r = body();
  obs::set_enabled(false);
  obs::reset();
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string check_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      smoke = true;
    } else if (arg == "--check" && i + 1 < argc) {
      check_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--smoke] [--check BENCH.json]\n",
                   argv[0]);
      return 2;
    }
  }

  banner("Observability plane: fingerprint parity and disarmed cost");

  bool ok = true;

  // -- parity matrix --------------------------------------------------------
  // workload x substrate x workers x {disarmed, armed+windowed+flight}.
  // One fingerprint per workload, set by the first (disarmed, fiber, 1w)
  // run; everything else must match it byte for byte.
  struct Workload {
    const char* name;
    std::function<Replay(unsigned)> run;
  };
  const std::vector<Workload> workloads = {
      {"fig2 p1/redis", [&](unsigned w) { return run_p1(fig2_config(smoke), w); }},
      {"fig3 p1/local", [&](unsigned w) { return run_p1(fig3_config(smoke), w); }},
      {"fig6 p2/dragon", [&](unsigned w) { return run_p2(fig6_config(smoke), w); }},
  };
  const ObsMode modes[] = {
      {"disarmed", false, 0.0, 0},
      {"armed+window", true, 0.25, 512},
  };
  const struct {
    const char* name;
    const char* env;
  } substrates[] = {{"fiber", "0"}, {"thread", "1"}};
  const unsigned worker_counts[] = {1, 2, 4, 8};

  std::size_t parity_runs = 0;
  for (const Workload& wl : workloads) {
    std::string base;
    for (const auto& sub : substrates) {
      ::setenv("SIMAI_SIM_THREADS", sub.env, 1);
      for (const unsigned w : worker_counts) {
        for (const ObsMode& mode : modes) {
          const Replay r =
              run_mode(mode, [&] { return wl.run(w); });
          ++parity_runs;
          if (base.empty()) {
            base = r.fingerprint;
            continue;
          }
          const std::string what = std::string(wl.name) + " @" + sub.name +
                                   " " + std::to_string(w) + "w " + mode.name +
                                   " fingerprint identical";
          ok &= bench::check(what.c_str(), r.fingerprint == base);
        }
      }
    }
  }
  ::unsetenv("SIMAI_SIM_THREADS");
  std::printf("\nparity matrix: %zu replays, one fingerprint per workload\n\n",
              parity_runs);

  // -- disarmed cost --------------------------------------------------------
  // fig2 workload, interleaved min-of-N. "configured" = window width set +
  // flight ring sized, plane still disarmed — the code path every
  // non-observability user runs after this feature landed.
  const int trials = smoke ? 9 : 7;
  const ObsMode plain = {"disarmed-plain", false, 0.0, 0};
  const ObsMode configured = {"disarmed-configured", false, 0.25, 512};
  const ObsMode armed = {"armed", true, 0.0, 0};
  const ObsMode armed_windowed = {"armed+window", true, 0.25, 512};
  auto fig2 = [&] { return run_p1(fig2_config(smoke), 1); };
  double min_plain = 1e9, min_configured = 1e9, min_armed = 1e9,
         min_windowed = 1e9;
  std::uint64_t fig2_events = 0;
  (void)run_mode(plain, fig2);  // warm-up
  for (int i = 0; i < trials; ++i) {
    const Replay a = run_mode(plain, fig2);
    const Replay b = run_mode(configured, fig2);
    const Replay c = run_mode(armed, fig2);
    const Replay d = run_mode(armed_windowed, fig2);
    min_plain = std::min(min_plain, a.wall_seconds);
    min_configured = std::min(min_configured, b.wall_seconds);
    min_armed = std::min(min_armed, c.wall_seconds);
    min_windowed = std::min(min_windowed, d.wall_seconds);
    fig2_events = a.events;
  }
  const double overhead =
      (min_configured - min_plain) / std::max(min_plain, 1e-12);

  Table table({"mode", "min wall s", "vs plain"}, 22);
  table.row({"disarmed-plain", fixed(min_plain, 4), "1.000"});
  table.row({"disarmed-configured", fixed(min_configured, 4),
             fixed(min_configured / min_plain, 3)});
  table.row({"armed", fixed(min_armed, 4), fixed(min_armed / min_plain, 3)});
  table.row({"armed+window", fixed(min_windowed, 4),
             fixed(min_windowed / min_plain, 3)});
  table.print();

  ok &= bench::check(
      ("disarmed overhead " + fixed(overhead * 100.0, 2) +
       "% < 1% (+1ms timer allowance)")
          .c_str(),
      min_configured <= min_plain * 1.01 + 1e-3);

  const double fig2_rate = double(fig2_events) / min_plain;

  if (!check_path.empty()) {
    const util::Json committed = util::Json::parse_file(check_path);
    if (committed.contains("smoke_fig2_events_per_sec") && smoke) {
      const double base = committed.at("smoke_fig2_events_per_sec").as_double();
      ok &= bench::check(("fig2 disarmed: " + fixed(fig2_rate, 0) +
                          " ev/s within 50% of committed " + fixed(base, 0))
                             .c_str(),
                         fig2_rate >= 0.5 * base);
    }
  }

  if (smoke) return ok ? 0 : 1;

  util::Json::Object doc;
  doc["workload"] =
      "fig2/fig3/fig6-style replays x {fiber,thread} x workers {1,2,4,8} x "
      "{disarmed, armed+window}; disarmed cost on fig2 @1w";
  doc["parity_runs"] = static_cast<std::uint64_t>(parity_runs);
  doc["disarmed_plain_wall_s"] = min_plain;
  doc["disarmed_configured_wall_s"] = min_configured;
  doc["disarmed_overhead_pct"] = overhead * 100.0;
  doc["armed_vs_plain_ratio"] = min_armed / min_plain;
  doc["armed_windowed_vs_plain_ratio"] = min_windowed / min_plain;
  doc["fig2_events"] = fig2_events;
  doc["fig2_events_per_sec"] = fig2_rate;
  // Smoke baseline for the tools/check.sh gate, measured the way the gate
  // re-measures it: smoke-sized fig2, disarmed, min wall over trials.
  {
    double best = 1e9;
    std::uint64_t ev = 0;
    for (int i = 0; i < 9; ++i) {
      const Replay r = run_mode(plain, [&] { return run_p1(fig2_config(true), 1); });
      best = std::min(best, r.wall_seconds);
      ev = r.events;
    }
    doc["smoke_fig2_events_per_sec"] = double(ev) / best;
  }
  const char* out_dir = std::getenv("SIMAI_BENCH_DIR");
  const std::string path =
      (out_dir ? std::string(out_dir) : std::string(".")) + "/BENCH_obs.json";
  std::ofstream(path) << util::Json(doc).dump(2) << "\n";
  std::printf("wrote %s\n\n", path.c_str());

  return ok ? 0 : 1;
}
