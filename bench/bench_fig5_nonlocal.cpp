// Reproduces Fig. 5: the 2-node Pattern-2 experiment — the simulation
// stages data to its local backend, the AI component on the other node
// reads it non-locally. (a) non-local read and (b) local write throughput
// as a function of array size, for dragon / redis / filesystem (node-local
// tmpfs is impossible non-locally and is excluded, as in the paper).
#include <cstdio>
#include <map>

#include "bench/bench_util.hpp"
#include "core/experiment.hpp"

using namespace simai;
using namespace simai::bench;

namespace {

struct Sample {
  double read_tput, write_tput;
};

Sample measure(platform::BackendKind backend, std::uint64_t bytes) {
  core::Pattern2Config c;
  c.backend = backend;
  c.num_sims = 1;  // 2 nodes: one producer, one consumer
  c.payload_bytes = bytes;
  // 2-node runs move REAL payloads at full size (no virtualization).
  c.payload_cap = 0;
  c.train_iters = 150;
  const core::Pattern2Result r = core::run_pattern2(c);
  return {r.train.read_throughput.mean(), r.sim.write_throughput.mean()};
}

}  // namespace

int main() {
  banner("Fig 5: 2-node Pattern 2, non-local read / local write throughput");

  std::map<platform::BackendKind, std::map<std::uint64_t, Sample>> results;
  for (auto backend : nonlocal_backends())
    for (auto bytes : size_sweep())
      results[backend][bytes] = measure(backend, bytes);

  for (const char* dir : {"non-local read", "local write"}) {
    std::printf("(%s) %s throughput [GB/s]\n",
                dir[0] == 'n' ? "a" : "b", dir);
    Table t({"size(MB)", "dragon", "redis", "filesystem"}, 12);
    for (auto bytes : size_sweep()) {
      std::vector<std::string> row{mb_label(bytes)};
      for (auto backend : nonlocal_backends()) {
        const Sample& s = results[backend][bytes];
        row.push_back(gbps(dir[0] == 'n' ? s.read_tput : s.write_tput));
      }
      t.row(row);
    }
    t.print();
  }

  std::printf("Shape checks vs the paper:\n");
  bool ok = true;
  using BK = platform::BackendKind;
  const std::uint64_t small = 1 * MiB, peak = 8 * MiB, big = 32 * MiB;

  ok &= bench::check("redis non-local read far below dragon",
              results[BK::Dragon][peak].read_tput >
                  3.0 * results[BK::Redis][peak].read_tput);
  ok &= bench::check("redis local write is reasonable (>= its read side)",
              results[BK::Redis][peak].write_tput >
                  results[BK::Redis][peak].read_tput);
  ok &= bench::check("dragon non-local read peaks near ~10 MB then declines",
              results[BK::Dragon][peak].read_tput >
                      results[BK::Dragon][small].read_tput &&
                  results[BK::Dragon][peak].read_tput >
                      results[BK::Dragon][big].read_tput);
  {
    bool monotonic = true;
    double prev = 0;
    for (auto bytes : size_sweep()) {
      monotonic &= results[BK::Filesystem][bytes].read_tput > prev;
      prev = results[BK::Filesystem][bytes].read_tput;
    }
    ok &= bench::check("filesystem read throughput increases continuously",
                monotonic);
  }
  ok &= bench::check("filesystem comparable to dragon at the largest sizes",
              results[BK::Filesystem][big].read_tput >
                  0.33 * results[BK::Dragon][big].read_tput);
  return ok ? 0 : 1;
}
