// Reproduces Fig. 3: Pattern-1 read and write throughput per process as a
// function of array size (0.4..32 MB), for all four backends, at 8 and 512
// nodes of the modelled Aurora.
//
// Methodology follows §4.1.2: co-located one-to-one exchange, >= "2500
// training iterations" scaled down to keep the sweep fast (the per-op
// statistics converge long before that), default backend configurations,
// all statistics averaged over every process and event.
#include <cstdio>
#include <map>

#include "bench/bench_util.hpp"
#include "core/experiment.hpp"

using namespace simai;
using namespace simai::bench;

namespace {

struct Sample {
  double read_tput = 0.0;
  double write_tput = 0.0;
};

Sample measure(platform::BackendKind backend, std::uint64_t bytes,
               int nodes) {
  core::Pattern1Config c;
  c.backend = backend;
  c.nodes = nodes;
  c.representative_pairs = 2;
  c.payload_bytes = bytes;
  c.payload_cap = 4 * KiB;
  c.train_iters = 400;  // enough transfer events for stable means
  c.sim_init_time = 0.5;
  c.train_init_time = 1.0;
  const core::Pattern1Result r = core::run_pattern1(c);
  return {r.train.read_throughput.mean(), r.sim.write_throughput.mean()};
}

}  // namespace

int main() {
  banner("Fig 3: Pattern 1 throughput vs array size, 8 and 512 nodes");

  std::map<int, std::map<platform::BackendKind, std::map<std::uint64_t, Sample>>>
      results;
  for (int nodes : {8, 512}) {
    for (auto backend : all_backends()) {
      for (auto bytes : size_sweep()) {
        results[nodes][backend][bytes] = measure(backend, bytes, nodes);
      }
    }
  }

  for (int nodes : {8, 512}) {
    for (const char* dir : {"read", "write"}) {
      std::printf("(%s) %d nodes — %s throughput per process [GB/s]\n",
                  nodes == 8 ? "a" : "b", nodes, dir);
      Table t({"size(MB)", "node-local", "dragon", "redis", "filesystem"},
              12);
      for (auto bytes : size_sweep()) {
        std::vector<std::string> row{mb_label(bytes)};
        for (auto backend : all_backends()) {
          const Sample& s = results[nodes][backend][bytes];
          row.push_back(gbps(dir[0] == 'r' ? s.read_tput : s.write_tput));
        }
        t.row(row);
      }
      t.print();
    }
  }

  std::printf("Shape checks vs the paper:\n");
  bool ok = true;
  auto& r8 = results[8];
  auto& r512 = results[512];
  const std::uint64_t small = size_sweep().front();
  const std::uint64_t mid = 4 * MiB;
  const std::uint64_t big = 32 * MiB;

  // In-memory stores: non-monotonic (rise then dip past the L3 share).
  for (auto b : {platform::BackendKind::NodeLocal,
                 platform::BackendKind::Dragon, platform::BackendKind::Redis}) {
    const std::string name(platform::backend_name(b));
    ok &= bench::check((name + ": throughput rises from 0.4 to 4 MB").c_str(),
                r8[b][mid].write_tput > r8[b][small].write_tput);
    ok &= bench::check((name + ": throughput dips at 32 MB (cache spill)").c_str(),
                r8[b][big].write_tput < r8[b][mid].write_tput);
  }
  // Filesystem: monotonic growth with size at 8 nodes.
  {
    bool monotonic = true;
    double prev = 0;
    for (auto bytes : size_sweep()) {
      const double v = r8[platform::BackendKind::Filesystem][bytes].read_tput;
      monotonic &= v > prev;
      prev = v;
    }
    ok &= bench::check("filesystem: throughput monotonic in size (8 nodes)",
                monotonic);
  }
  // Ordering at 8 nodes: node-local ~ dragon > redis.
  ok &= bench::check("node-local and dragon beat redis (8 nodes, 4 MB)",
              r8[platform::BackendKind::NodeLocal][mid].write_tput >
                      r8[platform::BackendKind::Redis][mid].write_tput &&
                  r8[platform::BackendKind::Dragon][mid].write_tput >
                      r8[platform::BackendKind::Redis][mid].write_tput);
  // Scaling: in-memory backends flat from 8 to 512 nodes.
  for (auto b : {platform::BackendKind::NodeLocal,
                 platform::BackendKind::Dragon, platform::BackendKind::Redis}) {
    const std::string name(platform::backend_name(b));
    const double ratio = r512[b][mid].write_tput / r8[b][mid].write_tput;
    ok &= bench::check((name + ": unchanged at 512 nodes (local exchange)").c_str(),
                ratio > 0.9 && ratio < 1.1);
  }
  // Filesystem collapses at 512 nodes.
  {
    const double ratio =
        r8[platform::BackendKind::Filesystem][mid].write_tput /
        r512[platform::BackendKind::Filesystem][mid].write_tput;
    ok &= bench::check("filesystem: ~order-of-magnitude collapse at 512 nodes",
                ratio > 5.0);
  }
  // At 8 nodes and large sizes the filesystem becomes competitive (§4.1.2).
  {
    const double fs = r8[platform::BackendKind::Filesystem][big].write_tput;
    const double rd = r8[platform::BackendKind::Redis][big].write_tput;
    ok &= bench::check("filesystem competitive at >=8 MB on 8 nodes (vs redis)",
                fs > 0.8 * rd);
  }
  return ok ? 0 : 1;
}
