// Real wall-clock microbenchmarks for the kernel library's actual math on
// this machine (the virtual-time figures use the device model; these
// measure the real implementations).
#include <benchmark/benchmark.h>

#include "kernels/kernel.hpp"

namespace {

using namespace simai;

util::Json sized(std::initializer_list<int> dims) {
  util::Json ds = util::Json::array();
  for (int d : dims) ds.push_back(d);
  util::Json j;
  j["data_size"] = ds;
  return j;
}

void run_kernel(benchmark::State& state, const char* name,
                const util::Json& cfg) {
  auto kernel = kernels::make_kernel(name, cfg);
  kernels::KernelContext ctx;
  double sink = 0.0;
  for (auto _ : state) {
    sink += kernel->run(ctx).checksum;
  }
  benchmark::DoNotOptimize(sink);
}

void BM_MatMulSimple2D(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  run_kernel(state, "MatMulSimple2D", sized({n, n}));
  state.SetItemsProcessed(state.iterations() * 2ll * n * n * n);
}
BENCHMARK(BM_MatMulSimple2D)->Arg(64)->Arg(128)->Arg(256);

void BM_MatMulGeneral(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  run_kernel(state, "MatMulGeneral", sized({n, n, n}));
  state.SetItemsProcessed(state.iterations() * 2ll * n * n * n);
}
BENCHMARK(BM_MatMulGeneral)->Arg(64)->Arg(128)->Arg(256);

void BM_FFT(benchmark::State& state) {
  run_kernel(state, "FFT", sized({static_cast<int>(state.range(0))}));
}
BENCHMARK(BM_FFT)->Arg(1 << 12)->Arg(1 << 16);

void BM_AXPY(benchmark::State& state) {
  run_kernel(state, "AXPY", sized({static_cast<int>(state.range(0))}));
  state.SetBytesProcessed(state.iterations() * state.range(0) * 8 * 3);
}
BENCHMARK(BM_AXPY)->Arg(1 << 16)->Arg(1 << 20);

void BM_InplaceCompute(benchmark::State& state) {
  run_kernel(state, "InplaceCompute", sized({1 << 16}));
}
BENCHMARK(BM_InplaceCompute);

void BM_GenerateRandomNumber(benchmark::State& state) {
  run_kernel(state, "GenerateRandomNumber", sized({1 << 18}));
}
BENCHMARK(BM_GenerateRandomNumber);

void BM_ScatterAdd(benchmark::State& state) {
  run_kernel(state, "ScatterAdd", sized({1 << 16, 1 << 14}));
}
BENCHMARK(BM_ScatterAdd);

}  // namespace

BENCHMARK_MAIN();
