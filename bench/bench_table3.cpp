// Reproduces Table 3: mean and standard deviation of per-iteration times
// for the original workflow (stochastic emulation) and the mini-app
// (deterministic configuration).
#include <cstdio>

#include "bench/bench_util.hpp"
#include "core/experiment.hpp"

using namespace simai;
using namespace simai::bench;

int main() {
  banner("Table 3: iteration time statistics (original vs mini-app)");

  core::Pattern1Config base;
  base.backend = platform::BackendKind::Redis;
  base.nodes = 1;
  base.representative_pairs = 1;
  base.payload_bytes = 1258291;
  base.payload_cap = 16 * KiB;
  base.train_iters = 5000;

  core::Pattern1Config original = base;
  original.sim_iter_time = 0.0312;
  original.sim_iter_std = 0.0273;
  original.train_iter_time = 0.0611;
  original.train_iter_std = 0.1;
  original.seed = 11;

  core::Pattern1Config miniapp = base;
  miniapp.sim_iter_time = 0.03147;
  miniapp.train_iter_time = 0.0611;

  const core::Pattern1Result orig = core::run_pattern1(original);
  const core::Pattern1Result mini = core::run_pattern1(miniapp);

  Table t({"", "sim mean(s)", "sim std(s)", "train mean(s)", "train std(s)"},
          15);
  t.row({"Original", fixed(orig.sim.iter_time.mean()),
         fixed(orig.sim.iter_time.stddev()),
         fixed(orig.train.iter_time.mean()),
         fixed(orig.train.iter_time.stddev())});
  t.row({"Mini-app", fixed(mini.sim.iter_time.mean()),
         fixed(mini.sim.iter_time.stddev()),
         fixed(mini.train.iter_time.mean()),
         fixed(mini.train.iter_time.stddev())});
  t.row({"Paper-orig", "0.0312", "0.0273", "0.0611", "0.1"});
  t.row({"Paper-mini", "0.0325", "0.0011", "0.0633", "0.0017"});
  t.print();

  std::printf("Shape checks vs the paper:\n");
  bool ok = true;
  ok &= bench::check("original sim mean ~0.031 s",
              std::abs(orig.sim.iter_time.mean() - 0.0312) < 0.004);
  ok &= bench::check("original train mean ~0.061 s",
              std::abs(orig.train.iter_time.mean() - 0.0611) < 0.02);
  ok &= bench::check("original std is large (stochastic workload)",
              orig.sim.iter_time.stddev() > 0.015 &&
                  orig.train.iter_time.stddev() > 0.05);
  ok &= bench::check("mini-app means match the configured values within 5%",
              std::abs(mini.sim.iter_time.mean() - 0.03147) <
                      0.05 * 0.03147 &&
                  std::abs(mini.train.iter_time.mean() - 0.0611) <
                      0.05 * 0.0611);
  ok &= bench::check("mini-app std is tiny (deterministic mini-app)",
              mini.sim.iter_time.stddev() < 0.005 &&
                  mini.train.iter_time.stddev() < 0.005);
  ok &= bench::check("mini-app std far below the original's",
              mini.sim.iter_time.stddev() < 0.2 * orig.sim.iter_time.stddev());
  return ok ? 0 : 1;
}
