// Microbenchmarks for the DES engine and the in-process message layer:
// event throughput (how many virtual events per wall second the simulator
// sustains) and collective costs across rank counts.
#include <benchmark/benchmark.h>

#include "net/communicator.hpp"
#include "sim/engine.hpp"

namespace {

using namespace simai;

void BM_DesEventThroughput(benchmark::State& state) {
  // One process doing N delays: measures the raw context hand-off cost.
  const int events = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Engine engine;
    engine.spawn("p", [&](sim::Context& ctx) {
      for (int i = 0; i < events; ++i) ctx.delay(0.001);
    });
    engine.run();
  }
  state.SetItemsProcessed(state.iterations() * events);
}
BENCHMARK(BM_DesEventThroughput)->Arg(1000)->Arg(10000);

void BM_DesManyProcesses(benchmark::State& state) {
  const int procs = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Engine engine;
    for (int p = 0; p < procs; ++p) {
      engine.spawn("p" + std::to_string(p), [](sim::Context& ctx) {
        for (int i = 0; i < 20; ++i) ctx.delay(0.01);
      });
    }
    engine.run();
  }
  state.SetItemsProcessed(state.iterations() * procs * 20);
}
BENCHMARK(BM_DesManyProcesses)->Arg(16)->Arg(128)->Arg(512);

void BM_AllReduce(benchmark::State& state) {
  const int ranks = static_cast<int>(state.range(0));
  const std::size_t elems = 4096;
  for (auto _ : state) {
    sim::Engine engine;
    net::Communicator comm(engine, ranks);
    for (int r = 0; r < ranks; ++r) {
      engine.spawn("r" + std::to_string(r), [&, r](sim::Context& ctx) {
        std::vector<double> data(elems, static_cast<double>(r));
        benchmark::DoNotOptimize(
            comm.allreduce(ctx, r, data, net::ReduceOp::Sum));
      });
    }
    engine.run();
  }
  state.SetBytesProcessed(state.iterations() * ranks *
                          static_cast<std::int64_t>(elems) * 8);
}
BENCHMARK(BM_AllReduce)->Arg(2)->Arg(6)->Arg(12);

void BM_P2pMessageRate(benchmark::State& state) {
  const int messages = 1000;
  for (auto _ : state) {
    sim::Engine engine;
    net::Communicator comm(engine, 2);
    engine.spawn("sender", [&](sim::Context& ctx) {
      for (int i = 0; i < messages; ++i)
        comm.send(ctx, 0, 1, 0, Bytes(64));
    });
    engine.spawn("receiver", [&](sim::Context& ctx) {
      for (int i = 0; i < messages; ++i)
        benchmark::DoNotOptimize(comm.recv(ctx, 1, 0, 0));
    });
    engine.run();
  }
  state.SetItemsProcessed(state.iterations() * messages);
}
BENCHMARK(BM_P2pMessageRate);

}  // namespace

BENCHMARK_MAIN();
