// Parallel conservative-DES benchmark: events/sec vs worker count on the
// paper's full-width workflow replays, plus the fingerprint-parity gate
// that certifies the parallel scheduler as a pure performance substitution.
//
// Two replays (the same full-width workloads bench_scale runs
// sequentially):
//
//  * fig3 512n: Pattern 1 with ALL 512x6 rank pairs instantiated — one LP
//    per pair, no cross-LP edges (pairs are independent), the embarrassing
//    end of the partitioning spectrum.
//  * fig6 512n: Pattern 2 with a 511-member ensemble plus the trainer —
//    512 LPs with lookahead-0 edges member -> trainer and the mirrored
//    store view, the synchronization-heavy end.
//
// Each replay runs at workers = 1, 2, 4, 8. The 1-worker run IS the
// sequential engine — Engine(Parallel{1}) collapses to the PR-7 code path
// by construction (no worker threads, no mailboxes), which the JSON
// records as seq_vs_1worker_ratio from a separate default-Engine dispatch
// probe.
//
// Determinism is asserted in-process at every worker count: canonical
// fingerprints (virtual makespan, step and transport-event counts at full
// precision) must be byte-identical to the 1-worker run before any timing
// is reported. A fast parity failure is a wrong benchmark, not a slow one.
//
// Emits BENCH_parallel.json (cwd or $SIMAI_BENCH_DIR) with host_cpus
// recorded: wall-clock speedup is bounded by physical cores, and a
// single-core container legitimately reports ~1.0x at every worker count.
// `--smoke` runs reduced-scale replays for the CI gate; `--check FILE`
// compares the smoke 1-worker events/sec against the committed file and
// fails on a >20% regression.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.hpp"
#include "core/experiment.hpp"
#include "sim/engine.hpp"
#include "util/json.hpp"

using namespace simai;
using namespace simai::bench;

namespace {

double now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct Replay {
  std::string fingerprint;      // full-precision canonical results
  double wall_seconds = 0.0;
  std::uint64_t events = 0;     // steps + transport events, both components
};

core::Pattern1Config fig3_config(bool smoke) {
  core::Pattern1Config c;
  c.backend = platform::BackendKind::NodeLocal;
  c.nodes = smoke ? 4 : 512;
  c.representative_pairs = 0;  // every pair is a real LP
  c.payload_cap = 4 * KiB;
  c.train_iters = smoke ? 25 : 60;
  c.sim_init_time = 0.5;
  c.train_init_time = 1.0;
  return c;
}

core::Pattern2Config fig6_config(bool smoke) {
  core::Pattern2Config c;
  c.backend = platform::BackendKind::Dragon;
  c.num_sims = smoke ? 15 : 511;
  c.payload_cap = 4 * KiB;
  c.train_iters = smoke ? 20 : 40;
  return c;
}

Replay run_fig3(core::Pattern1Config c, unsigned workers) {
  c.workers = workers;
  const double t0 = now_s();
  const core::Pattern1Result r = core::run_pattern1(c);
  Replay out;
  out.wall_seconds = now_s() - t0;
  out.events = r.sim.steps + r.train.steps + r.sim.transport_events +
               r.train.transport_events;
  std::ostringstream fp;
  fp.precision(17);
  fp << "makespan=" << r.makespan << " sim.steps=" << r.sim.steps
     << " train.steps=" << r.train.steps
     << " sim.events=" << r.sim.transport_events
     << " train.events=" << r.train.transport_events
     << " sim.iter=" << r.sim.iter_time.mean()
     << " train.iter=" << r.train.iter_time.mean();
  out.fingerprint = fp.str();
  return out;
}

Replay run_fig6(core::Pattern2Config c, unsigned workers) {
  c.workers = workers;
  const double t0 = now_s();
  const core::Pattern2Result r = core::run_pattern2(c);
  Replay out;
  out.wall_seconds = now_s() - t0;
  out.events = r.sim.steps + r.train.steps + r.sim.transport_events +
               r.train.transport_events;
  std::ostringstream fp;
  fp.precision(17);
  fp << "makespan=" << r.makespan << " sim.steps=" << r.sim.steps
     << " train.steps=" << r.train.steps
     << " sim.events=" << r.sim.transport_events
     << " train.events=" << r.train.transport_events
     << " runtime_per_iter=" << r.train_runtime_per_iter;
  out.fingerprint = fp.str();
  return out;
}

// The events/sec figure both sides of the check.sh gate use: the smoke
// fig6 replay at 1 worker, minimum wall time over five runs — the replay
// itself is ~10ms, so a single sample is scheduler noise, but its minimum
// is stable run-to-run.
double smoke_fig6_1worker_rate() {
  double best_wall = 1e9;
  std::uint64_t events = 0;
  for (int i = 0; i < 5; ++i) {
    const Replay r = run_fig6(fig6_config(/*smoke=*/true), 1);
    best_wall = std::min(best_wall, r.wall_seconds);
    events = r.events;
  }
  return double(events) / best_wall;
}

// Sequential-degradation probe: Engine() vs Engine(Parallel{1}) on the
// empty-delay ping workload. Both must take the identical code path; the
// ratio quantifies it (committed criterion: within 5%).
double seq_vs_1worker_ratio() {
  auto ping = [](sim::Engine engine) {
    for (int p = 0; p < 64; ++p) {
      engine.spawn("p" + std::to_string(p), [](sim::Context& ctx) {
        for (int k = 0; k < 12'000; ++k) ctx.delay(0.0);
      });
    }
    const double t0 = now_s();
    engine.run();
    return now_s() - t0;
  };
  // Warm-up, then interleave trials and take the minimum of each side —
  // minima are robust against scheduler noise on shared machines.
  (void)ping(sim::Engine());
  (void)ping(sim::Engine(sim::Parallel{.workers = 1}));
  double seq = 1e9, par1 = 1e9;
  for (int i = 0; i < 5; ++i) {
    seq = std::min(seq, ping(sim::Engine()));
    par1 = std::min(par1, ping(sim::Engine(sim::Parallel{.workers = 1})));
  }
  return par1 / seq;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string check_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      smoke = true;
    } else if (arg == "--check" && i + 1 < argc) {
      check_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--smoke] [--check BENCH.json]\n",
                   argv[0]);
      return 2;
    }
  }

  banner("Parallel DES dispatch: events/sec vs worker count");

  const unsigned host_cpus = std::thread::hardware_concurrency();
  std::printf("host_cpus: %u%s\n\n", host_cpus,
              host_cpus < 4 ? "  (speedup is core-bound; parity is the "
                              "portable claim)"
                            : "");

  const std::vector<unsigned> worker_counts = {1, 2, 4, 8};
  bool ok = true;

  struct Row {
    std::string replay;
    unsigned workers;
    Replay r;
  };
  std::vector<Row> rows;
  std::string fp3_base, fp6_base;
  for (const unsigned w : worker_counts) {
    const Replay r3 = run_fig3(fig3_config(smoke), w);
    const Replay r6 = run_fig6(fig6_config(smoke), w);
    rows.push_back({"fig3 p1", w, r3});
    rows.push_back({"fig6 p2", w, r6});
    if (w == 1) {
      fp3_base = r3.fingerprint;
      fp6_base = r6.fingerprint;
    } else {
      // Parity gate FIRST: a diverging run's timing is meaningless.
      ok &= bench::check(
          ("fig3 fingerprint @" + std::to_string(w) + "w identical").c_str(),
          r3.fingerprint == fp3_base);
      ok &= bench::check(
          ("fig6 fingerprint @" + std::to_string(w) + "w identical").c_str(),
          r6.fingerprint == fp6_base);
    }
  }

  auto wall = [&](const char* replay, unsigned w) {
    for (const Row& r : rows)
      if (r.replay == replay && r.workers == w) return r.r.wall_seconds;
    return 0.0;
  };

  Table table({"replay", "workers", "events", "wall s", "events/s",
               "speedup"},
              11);
  for (const Row& r : rows) {
    const double base = wall(r.replay.c_str(), 1);
    table.row({r.replay, std::to_string(r.workers),
               std::to_string(r.r.events), fixed(r.r.wall_seconds, 3),
               fixed(double(r.r.events) / r.r.wall_seconds, 0),
               fixed(base / r.r.wall_seconds, 2)});
  }
  table.print();

  const double ratio = seq_vs_1worker_ratio();
  std::printf("Engine(Parallel{1}) / Engine() dispatch-time ratio: %.3f\n\n",
              ratio);

  if (!check_path.empty()) {
    const util::Json committed = util::Json::parse_file(check_path);
    if (committed.contains("smoke_fig6_1worker_events_per_sec")) {
      const double base =
          committed.at("smoke_fig6_1worker_events_per_sec").as_double();
      const double now_rate = smoke_fig6_1worker_rate();
      ok &= bench::check(
          ("fig6 @1 worker: " + fixed(now_rate, 0) +
           " ev/s within 50% of committed " + fixed(base, 0))
              .c_str(),
          now_rate >= 0.5 * base);
    }
  }

  ok &= bench::check("Engine(Parallel{1}) within 5% of sequential Engine()",
                     ratio <= 1.05);

  if (smoke) return ok ? 0 : 1;

  util::Json::Object doc;
  doc["workload"] =
      "fig3 (512n Pattern 1, all pairs) + fig6 (512n Pattern 2) replays "
      "at workers = 1, 2, 4, 8";
  doc["host_cpus"] = host_cpus;
  doc["seq_vs_1worker_ratio"] = ratio;
  util::Json::Array curve;
  for (const Row& r : rows) {
    util::Json::Object o;
    o["replay"] = r.replay;
    o["workers"] = r.workers;
    o["events"] = r.r.events;
    o["wall_seconds"] = r.r.wall_seconds;
    o["events_per_sec"] = double(r.r.events) / r.r.wall_seconds;
    o["speedup_vs_1w"] = wall(r.replay.c_str(), 1) / r.r.wall_seconds;
    curve.push_back(util::Json(o));
  }
  doc["curve"] = util::Json(curve);
  doc["fig6_speedup_4w"] = wall("fig6 p2", 1) / wall("fig6 p2", 4);
  doc["fig3_speedup_4w"] = wall("fig3 p1", 1) / wall("fig3 p1", 4);
  // Smoke baseline for the tools/check.sh gate, measured exactly the way
  // the gate will re-measure it.
  doc["smoke_fig6_1worker_events_per_sec"] = smoke_fig6_1worker_rate();
  if (host_cpus < 4) {
    doc["note"] =
        "measured on a " + std::to_string(host_cpus) +
        "-core host: worker threads time-share the core, so true parallel "
        "speedup is unmeasurable here. Any fig3 gain above 1x is the "
        "partitioning itself (3,072 two-process calendar queues beat one "
        "6,144-process queue on locality), and the fig6 slowdown is "
        "barrier overhead with no cores to amortize it. Determinism "
        "(byte-identical fingerprints at every worker count) is the "
        "hardware-independent claim; re-run on a multi-core host for the "
        "throughput curve.";
  }
  const char* out_dir = std::getenv("SIMAI_BENCH_DIR");
  const std::string path = (out_dir ? std::string(out_dir) : std::string(".")) +
                           "/BENCH_parallel.json";
  std::ofstream(path) << util::Json(doc).dump(2) << "\n";
  std::printf("wrote %s\n\n", path.c_str());

  std::printf("Shape checks:\n");
  if (host_cpus >= 4) {
    ok &= bench::check("fig6 replay >= 2.5x at 4 workers",
                       wall("fig6 p2", 1) / wall("fig6 p2", 4) >= 2.5);
  } else {
    std::printf("  [SKIP] fig6 >= 2.5x at 4 workers (host has %u core%s; "
                "speedup requires >= 4)\n",
                host_cpus, host_cpus == 1 ? "" : "s");
  }
  return ok ? 0 : 1;
}
