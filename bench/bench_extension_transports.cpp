// Extension bench (the paper's §5 future work, built here): compares the
// two added transports against the paper's four backends.
//
//  (a) ADIOS2-SST-style streaming vs staging for the one-to-one exchange:
//      per-message latency across sizes — streaming removes the per-key
//      metadata machinery, so it should win small/medium messages and
//      converge with the best staging backend at large ones.
//  (b) DAOS-style object store vs Lustre at scale: write throughput at 8
//      and 512 nodes — distributed metadata should erase the Fig-3b
//      collapse.
//  (c) An end-to-end DES run of a streaming producer/consumer pair,
//      validating the queue/back-pressure machinery under load.
#include <cstdio>

#include "bench/bench_util.hpp"
#include "core/experiment.hpp"
#include "core/stream.hpp"
#include "platform/transport_model.hpp"

using namespace simai;
using namespace simai::bench;
using namespace simai::core;

namespace {

bool part_a_latency() {
  banner("Extension (a): per-message one-way latency, staging vs streaming [ms]");
  platform::TransportModel model;
  platform::TransportContext remote;
  remote.remote = true;
  remote.concurrent_clients = 96;

  Table t({"size(MB)", "stream", "dragon", "redis", "filesystem", "daos"},
          12);
  bool stream_wins_small = true;
  for (auto bytes : size_sweep()) {
    auto lat = [&](platform::BackendKind b) {
      return model.cost(b, platform::StoreOp::Write, bytes, remote) +
             model.cost(b, platform::StoreOp::Read, bytes, remote);
    };
    t.row({mb_label(bytes), ms(lat(platform::BackendKind::Stream)),
           ms(lat(platform::BackendKind::Dragon)),
           ms(lat(platform::BackendKind::Redis)),
           ms(lat(platform::BackendKind::Filesystem)),
           ms(lat(platform::BackendKind::Daos))});
    if (bytes <= 4 * MiB) {
      stream_wins_small &=
          lat(platform::BackendKind::Stream) <
          std::min({lat(platform::BackendKind::Dragon),
                    lat(platform::BackendKind::Redis),
                    lat(platform::BackendKind::Filesystem)});
    }
  }
  t.print();
  return bench::check("streaming beats all staging backends at <= 4 MB",
               stream_wins_small);
}

bool part_b_daos_scaling() {
  banner("Extension (b): DAOS vs Lustre write throughput at scale [GB/s]");
  platform::TransportModel model;
  Table t({"nodes", "lustre", "daos", "daos/lustre"}, 14);
  double lustre8 = 0, lustre512 = 0, daos8 = 0, daos512 = 0;
  for (int nodes : {8, 64, 512}) {
    platform::TransportContext ctx;
    ctx.concurrent_clients = nodes * 12;
    const double lustre = model.throughput(
        platform::BackendKind::Filesystem, platform::StoreOp::Write,
        1258291, ctx);
    const double daos = model.throughput(platform::BackendKind::Daos,
                                         platform::StoreOp::Write, 1258291,
                                         ctx);
    t.row({std::to_string(nodes), gbps(lustre), gbps(daos),
           fixed(daos / lustre, 1)});
    if (nodes == 8) {
      lustre8 = lustre;
      daos8 = daos;
    }
    if (nodes == 512) {
      lustre512 = lustre;
      daos512 = daos;
    }
  }
  t.print();
  bool ok = true;
  ok &= bench::check("lustre collapses ~10x from 8 to 512 nodes",
              lustre8 / lustre512 > 5.0);
  ok &= bench::check("daos stays within 2x across the same range",
              daos8 / daos512 < 2.0);
  return ok;
}

bool part_c_streaming_pipeline() {
  banner("Extension (c): end-to-end streaming pipeline (DES)");
  sim::Engine engine;
  platform::TransportModel model;
  platform::TransportContext remote;
  remote.remote = true;
  StreamBroker broker(engine, &model, remote, /*queue_limit=*/2);
  auto writer = broker.open_writer("pipeline");
  auto reader = broker.open_reader("pipeline");

  constexpr int kSteps = 200;
  constexpr std::uint64_t kNominal = 2 * MiB;
  SimTime producer_done = 0, consumer_done = 0;
  engine.spawn("producer", [&](sim::Context& ctx) {
    for (int s = 0; s < kSteps; ++s) {
      ctx.delay(0.002);  // produce
      writer.begin_step(ctx);
      writer.put("field", Bytes(1024), kNominal);
      writer.end_step(ctx);
    }
    writer.close(ctx);
    producer_done = ctx.now();
  });
  engine.spawn("consumer", [&](sim::Context& ctx) {
    while (reader.begin_step(ctx) == StepStatus::Ok) {
      (void)reader.get(ctx, "field");
      reader.end_step();
      ctx.delay(0.001);  // consume
    }
    consumer_done = ctx.now();
  });
  engine.run();

  const auto& stats = broker.stats();
  std::printf("  steps: %llu written / %llu consumed\n",
              static_cast<unsigned long long>(writer.steps_written()),
              static_cast<unsigned long long>(reader.steps_consumed()));
  std::printf("  producer finished at %.3f s, consumer at %.3f s\n",
              producer_done, consumer_done);
  std::printf("  mean step write %.3f ms, mean step read %.3f ms\n\n",
              stats.all().at("step_write_time").mean() * 1e3,
              stats.all().at("step_read_time").mean() * 1e3);

  bool ok = true;
  ok &= bench::check("all steps delivered exactly once",
              writer.steps_written() == kSteps &&
                  reader.steps_consumed() == kSteps);
  ok &= bench::check("consumer finishes after producer (pipelined, bounded lag)",
              consumer_done >= producer_done &&
                  consumer_done - producer_done < 0.1);
  return ok;
}

bool part_d_pattern1_streaming() {
  banner("Extension (d): Pattern 1 end-to-end, staging vs streaming");
  core::Pattern1Config cfg;
  cfg.nodes = 8;
  cfg.representative_pairs = 2;
  cfg.train_iters = 400;
  cfg.payload_cap = 4 * KiB;
  cfg.sim_init_time = 0.5;
  cfg.train_init_time = 1.0;

  Table t({"transport", "write(ms)", "read(ms)", "wtput(GB/s)"}, 14);
  double stream_write = 0, best_staged_write = 1e99;
  for (auto bytes : {std::uint64_t{1 * MiB}, std::uint64_t{8 * MiB}}) {
    cfg.payload_bytes = bytes;
    const auto streamed = core::run_pattern1_streaming(cfg);
    t.row({"stream-" + mb_label(bytes) + "MB",
           ms(streamed.sim.write_time.mean() / 2.0),  // 2 vars per step
           ms(streamed.train.read_time.mean() / 2.0),
           gbps(streamed.sim.write_throughput.mean())});
    if (bytes == 1 * MiB) stream_write = streamed.sim.write_time.mean() / 2;
    for (auto backend :
         {platform::BackendKind::NodeLocal, platform::BackendKind::Dragon,
          platform::BackendKind::Redis, platform::BackendKind::Filesystem}) {
      cfg.backend = backend;
      const auto staged = core::run_pattern1(cfg);
      t.row({std::string(platform::backend_name(backend)) + "-" +
                 mb_label(bytes) + "MB",
             ms(staged.sim.write_time.mean()),
             ms(staged.train.read_time.mean()),
             gbps(staged.sim.write_throughput.mean())});
      if (bytes == 1 * MiB)
        best_staged_write =
            std::min(best_staged_write, staged.sim.write_time.mean());
    }
  }
  t.print();
  return bench::check("streaming per-message cost <= best staging backend at 1 MB",
               stream_write <= best_staged_write * 1.05);
}

}  // namespace

int main() {
  bool ok = true;
  ok &= part_a_latency();
  ok &= part_b_daos_scaling();
  ok &= part_c_streaming_pipeline();
  ok &= part_d_pattern1_streaming();
  return ok ? 0 : 1;
}
