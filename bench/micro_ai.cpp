// Microbenchmarks for the AI substrate: tensor GEMM, MLP forward/backward,
// optimizer steps, and sample (de)serialization for staging.
#include <benchmark/benchmark.h>

#include "ai/dataloader.hpp"
#include "ai/mlp.hpp"
#include "ai/optim.hpp"

namespace {

using namespace simai;
using namespace simai::ai;

void BM_TensorMatmul(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  util::Xoshiro256 rng(1);
  const Tensor a = Tensor::randn(n, n, rng);
  const Tensor b = Tensor::randn(n, n, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(matmul(a, b));
  }
  state.SetItemsProcessed(state.iterations() * 2ll * state.range(0) *
                          state.range(0) * state.range(0));
}
BENCHMARK(BM_TensorMatmul)->Arg(32)->Arg(128);

void BM_MlpForward(benchmark::State& state) {
  Mlp net({64, 128, 128, 64}, Activation::ReLU, 1);
  util::Xoshiro256 rng(2);
  const Tensor x = Tensor::randn(static_cast<std::size_t>(state.range(0)),
                                 64, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(net.forward(x));
  }
}
BENCHMARK(BM_MlpForward)->Arg(1)->Arg(32);

void BM_MlpTrainStep(benchmark::State& state) {
  Mlp net({64, 128, 64}, Activation::ReLU, 1);
  Adam opt(1e-3);
  util::Xoshiro256 rng(3);
  const Tensor x = Tensor::randn(32, 64, rng);
  const Tensor y = Tensor::randn(32, 64, rng);
  for (auto _ : state) {
    net.zero_grad();
    Tensor dloss;
    benchmark::DoNotOptimize(mse_loss(net.forward(x), y, dloss));
    net.backward(dloss);
    opt.step(net);
  }
}
BENCHMARK(BM_MlpTrainStep);

void BM_PackSample(benchmark::State& state) {
  util::Xoshiro256 rng(4);
  const Tensor x = Tensor::randn(256, 64, rng);
  const Tensor y = Tensor::randn(256, 8, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(pack_sample(x, y));
  }
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations() *
                                (x.size() + y.size()) * sizeof(double)));
}
BENCHMARK(BM_PackSample);

void BM_DataLoaderBatch(benchmark::State& state) {
  DataLoader loader(64, 8);
  util::Xoshiro256 rng(5);
  loader.add_samples(Tensor::randn(2048, 64, rng),
                     Tensor::randn(2048, 8, rng));
  for (auto _ : state) {
    benchmark::DoNotOptimize(loader.sample_batch(32));
  }
}
BENCHMARK(BM_DataLoaderBatch);

}  // namespace

BENCHMARK_MAIN();
