// Reproduces Fig. 4: mean computation time per iteration (Sim iter, AI
// iter) compared against the data-transport time per message (read, write)
// for the node-local and filesystem backends at 8 and 512 nodes.
#include <cstdio>

#include "bench/bench_util.hpp"
#include "core/experiment.hpp"

using namespace simai;
using namespace simai::bench;

namespace {

struct Cell {
  double sim_iter, ai_iter, read, write;
};

Cell measure(platform::BackendKind backend, std::uint64_t bytes, int nodes) {
  core::Pattern1Config c;
  c.backend = backend;
  c.nodes = nodes;
  c.representative_pairs = 2;
  c.payload_bytes = bytes;
  c.payload_cap = 4 * KiB;
  c.train_iters = 300;
  c.sim_init_time = 0.5;
  c.train_init_time = 1.0;
  const core::Pattern1Result r = core::run_pattern1(c);
  return {r.sim.iter_time.mean(), r.train.iter_time.mean(),
          r.train.read_time.mean(), r.sim.write_time.mean()};
}

}  // namespace

int main() {
  banner("Fig 4: computation vs data transport time per message [ms]");

  bool ok = true;
  Cell anchor8{}, anchor512{};
  for (auto backend : {platform::BackendKind::NodeLocal,
                       platform::BackendKind::Filesystem}) {
    for (int nodes : {8, 512}) {
      std::printf("%s backend, %d nodes\n",
                  std::string(platform::backend_name(backend)).c_str(),
                  nodes);
      Table t({"size(MB)", "sim iter", "AI iter", "read", "write"}, 12);
      for (auto bytes : size_sweep()) {
        const Cell c = measure(backend, bytes, nodes);
        t.row({mb_label(bytes), ms(c.sim_iter), ms(c.ai_iter), ms(c.read),
               ms(c.write)});
        if (bytes == 32 * MiB && backend == platform::BackendKind::NodeLocal &&
            nodes == 8)
          anchor8 = c;
        if (bytes == 32 * MiB &&
            backend == platform::BackendKind::Filesystem && nodes == 512)
          anchor512 = c;
      }
      t.print();
    }
  }

  // Re-measure the filesystem anchors needed for the checks.
  const Cell nl512 = measure(platform::BackendKind::NodeLocal, 32 * MiB, 512);
  const Cell fs8 = measure(platform::BackendKind::Filesystem, 32 * MiB, 8);

  std::printf("Shape checks vs the paper:\n");
  ok &= bench::check("node-local 32 MB transfer ~ one sim iteration (8 nodes)",
              anchor8.write > 0.3 * anchor8.sim_iter &&
                  anchor8.write < 3.0 * anchor8.sim_iter);
  ok &= bench::check("node-local transport unchanged from 8 to 512 nodes",
              std::abs(nl512.write - anchor8.write) <
                  0.1 * anchor8.write);
  ok &= bench::check("filesystem 32 MB ~ one iteration at 8 nodes",
              fs8.write > 0.3 * fs8.sim_iter && fs8.write < 3.0 * fs8.sim_iter);
  ok &= bench::check("filesystem 32 MB ~ order of magnitude above iter at 512 nodes",
              anchor512.write > 5.0 * anchor512.sim_iter);
  return ok ? 0 : 1;
}
