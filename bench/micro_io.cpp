// Real wall-clock microbenchmarks for the H5Lite hierarchical file.
#include <benchmark/benchmark.h>

#include "io/h5lite.hpp"
#include "util/fsutil.hpp"

namespace {

using namespace simai;

void BM_H5WriteDataset(benchmark::State& state) {
  util::TempDir dir("microh5");
  const std::vector<double> data(static_cast<std::size_t>(state.range(0)),
                                 1.5);
  std::size_t i = 0;
  io::H5File file(dir.path() / "bench.h5", io::H5File::Mode::Create);
  for (auto _ : state) {
    file.write("/d" + std::to_string(i++ % 32),
               std::span<const double>(data));
  }
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations()) * state.range(0) * 8);
}
BENCHMARK(BM_H5WriteDataset)->Arg(1 << 10)->Arg(1 << 16);

void BM_H5ReadDataset(benchmark::State& state) {
  util::TempDir dir("microh5");
  const std::vector<double> data(static_cast<std::size_t>(state.range(0)),
                                 2.5);
  io::H5File file(dir.path() / "bench.h5", io::H5File::Mode::Create);
  file.write("/data", std::span<const double>(data));
  file.flush();
  for (auto _ : state) {
    benchmark::DoNotOptimize(file.read_f64("/data"));
  }
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations()) * state.range(0) * 8);
}
BENCHMARK(BM_H5ReadDataset)->Arg(1 << 10)->Arg(1 << 16);

void BM_H5ReopenWithManyObjects(benchmark::State& state) {
  util::TempDir dir("microh5");
  const auto path = dir.path() / "many.h5";
  {
    io::H5File file(path, io::H5File::Mode::Create);
    const std::vector<double> v{1.0};
    for (int i = 0; i < 256; ++i) {
      file.write("/group" + std::to_string(i % 16) + "/ds" +
                     std::to_string(i),
                 std::span<const double>(v));
    }
    file.close();
  }
  for (auto _ : state) {
    io::H5File file(path, io::H5File::Mode::ReadOnly);
    benchmark::DoNotOptimize(file.dataset_paths());
  }
}
BENCHMARK(BM_H5ReopenWithManyObjects);

void BM_H5Flush(benchmark::State& state) {
  util::TempDir dir("microh5");
  io::H5File file(dir.path() / "flush.h5", io::H5File::Mode::Create);
  const std::vector<double> v{1.0, 2.0};
  std::size_t i = 0;
  for (auto _ : state) {
    file.write("/d" + std::to_string(i++ % 8), std::span<const double>(v));
    file.flush();
  }
}
BENCHMARK(BM_H5Flush);

}  // namespace

BENCHMARK_MAIN();
