// Machine topology model: nodes, CPUs, GPU tiles, and rank placement.
//
// Mirrors the Aurora description in the paper's §4: each node has 2 Xeon Max
// CPUs and 6 Data Center GPU Max 1550s, each GPU split into 2 tiles — 12
// tiles per node. Pattern 1 splits the 12 tiles evenly between the
// simulation (6) and the AI trainer (6); Pattern 2 gives each component a
// whole node. Placement math (which node/tile a rank lands on, whether two
// ranks are co-located) lives here so the transport model can decide
// local-vs-remote pricing.
#pragma once

#include <cstdint>
#include <string>

#include "util/error.hpp"
#include "util/json.hpp"
#include "util/types.hpp"

namespace simai::platform {

/// Static description of one compute node.
struct NodeSpec {
  int cpus = 2;
  int cores_per_cpu = 52;
  int gpus = 6;
  int tiles_per_gpu = 2;
  std::uint64_t ddr_bytes_per_cpu = 512ull * 1024 * MiB;  // 512 GiB
  std::uint64_t hbm_bytes_per_cpu = 64ull * 1024 * MiB;   // 64 GiB
  std::uint64_t l3_bytes_per_cpu = 105 * MiB;  // paper §4.1.2: 105 MB L3

  int tiles() const { return gpus * tiles_per_gpu; }
};

/// Whole-machine description.
struct MachineSpec {
  std::string name = "aurora";
  int nodes = 8;
  NodeSpec node;

  /// Aurora preset (10,624 nodes available; experiments subset this).
  static MachineSpec aurora(int nodes);

  /// Parse {"name":..., "nodes":..., "node":{...}} with defaults.
  static MachineSpec from_json(const util::Json& spec);
  util::Json to_json() const;
};

/// Location of one process rank on the machine.
struct Placement {
  int node = 0;
  int tile = 0;  // GPU tile index within the node (0..11 on Aurora)

  bool same_node(const Placement& other) const { return node == other.node; }
};

/// Deterministic block placement of `rank` out of `nranks` over `nodes`
/// nodes with `ranks_per_node` slots each, starting at tile `tile_offset`.
/// Throws ConfigError if the ranks do not fit.
Placement place_rank(int rank, int nranks, int nodes, int ranks_per_node,
                     int tile_offset = 0);

/// The per-process share of L3 the paper uses to explain the cache-spill
/// throughput dip: total L3 on the node's CPUs divided by the co-resident
/// process count (105 MB / 12 ≈ 8.75 MB in the Pattern 1 configuration).
std::uint64_t l3_share_bytes(const NodeSpec& node, int processes_per_node);

}  // namespace simai::platform
