#include "platform/topology.hpp"

namespace simai::platform {

MachineSpec MachineSpec::aurora(int nodes) {
  MachineSpec m;
  m.name = "aurora";
  m.nodes = nodes;
  return m;  // NodeSpec defaults are the Aurora values
}

MachineSpec MachineSpec::from_json(const util::Json& spec) {
  MachineSpec m;
  m.name = spec.get("name", m.name);
  m.nodes = static_cast<int>(spec.get("nodes", m.nodes));
  if (m.nodes <= 0) throw ConfigError("machine: nodes must be positive");
  if (const util::Json* node = spec.find("node")) {
    m.node.cpus = static_cast<int>(node->get("cpus", m.node.cpus));
    m.node.cores_per_cpu =
        static_cast<int>(node->get("cores_per_cpu", m.node.cores_per_cpu));
    m.node.gpus = static_cast<int>(node->get("gpus", m.node.gpus));
    m.node.tiles_per_gpu =
        static_cast<int>(node->get("tiles_per_gpu", m.node.tiles_per_gpu));
    m.node.l3_bytes_per_cpu = static_cast<std::uint64_t>(
        node->get("l3_mb_per_cpu",
                  static_cast<std::int64_t>(m.node.l3_bytes_per_cpu / MiB)) *
        static_cast<std::int64_t>(MiB));
  }
  return m;
}

util::Json MachineSpec::to_json() const {
  util::Json j;
  j["name"] = name;
  j["nodes"] = nodes;
  util::Json n;
  n["cpus"] = node.cpus;
  n["cores_per_cpu"] = node.cores_per_cpu;
  n["gpus"] = node.gpus;
  n["tiles_per_gpu"] = node.tiles_per_gpu;
  n["l3_mb_per_cpu"] = static_cast<std::int64_t>(node.l3_bytes_per_cpu / MiB);
  j["node"] = n;
  return j;
}

Placement place_rank(int rank, int nranks, int nodes, int ranks_per_node,
                     int tile_offset) {
  if (rank < 0 || rank >= nranks)
    throw ConfigError("placement: rank " + std::to_string(rank) +
                      " out of range [0," + std::to_string(nranks) + ")");
  if (ranks_per_node <= 0)
    throw ConfigError("placement: ranks_per_node must be positive");
  if (nranks > nodes * ranks_per_node)
    throw ConfigError("placement: " + std::to_string(nranks) +
                      " ranks do not fit on " + std::to_string(nodes) +
                      " nodes x " + std::to_string(ranks_per_node));
  Placement p;
  p.node = rank / ranks_per_node;
  p.tile = tile_offset + rank % ranks_per_node;
  return p;
}

std::uint64_t l3_share_bytes(const NodeSpec& node, int processes_per_node) {
  if (processes_per_node <= 0)
    throw ConfigError("l3_share: processes_per_node must be positive");
  return node.l3_bytes_per_cpu * static_cast<std::uint64_t>(node.cpus) /
         static_cast<std::uint64_t>(processes_per_node);
}

}  // namespace simai::platform
