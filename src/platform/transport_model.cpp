#include "platform/transport_model.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/string_util.hpp"

namespace simai::platform {

BackendKind parse_backend(std::string_view name) {
  const std::string n = util::to_lower(name);
  if (n == "node-local" || n == "node_local" || n == "nodelocal" ||
      n == "tmpfs")
    return BackendKind::NodeLocal;
  if (n == "dragon" || n == "dragonhpc") return BackendKind::Dragon;
  if (n == "redis" || n == "smartsim") return BackendKind::Redis;
  if (n == "filesystem" || n == "file-system" || n == "file_system" ||
      n == "lustre" || n == "fs")
    return BackendKind::Filesystem;
  if (n == "stream" || n == "adios2" || n == "sst")
    return BackendKind::Stream;
  if (n == "daos" || n == "object-store") return BackendKind::Daos;
  throw ConfigError("unknown backend '" + std::string(name) + "'");
}

std::string_view backend_name(BackendKind kind) {
  switch (kind) {
    case BackendKind::NodeLocal: return "node-local";
    case BackendKind::Dragon: return "dragon";
    case BackendKind::Redis: return "redis";
    case BackendKind::Filesystem: return "filesystem";
    case BackendKind::Stream: return "stream";
    case BackendKind::Daos: return "daos";
  }
  return "?";
}

std::string_view store_op_name(StoreOp op) {
  switch (op) {
    case StoreOp::Write: return "write";
    case StoreOp::Read: return "read";
    case StoreOp::Poll: return "poll";
    case StoreOp::Clean: return "clean";
  }
  return "?";
}

DragonParams::DragonParams() {
  // Dragon's channel path buffers on both sides, so its local transfer is
  // close to node-local with slightly higher constant costs.
  local.sw_overhead_s = 0.0;  // folded into sw_overhead_s below
  local.bw_cached = 2.4e9;
  local.bw_spilled = 1.1e9;
}

RedisParams::RedisParams() {
  client.sw_overhead_s = 0.0;
  client.bw_cached = 3.0e9;  // client-side buffer assembly
  client.bw_spilled = 1.6e9;
  server.sw_overhead_s = 0.0;
  server.bw_cached = 1.8e9;  // single-threaded RESP parse + store copy
  server.bw_spilled = 0.8e9;
}

namespace {

/// Per-message many-to-one management penalty: fanin-1 extra producers each
/// add `per` seconds (power-law so superlinear regimes are expressible).
double m21_penalty(double per, double power, int fanin) {
  if (fanin <= 1) return 0.0;
  return per * std::pow(static_cast<double>(fanin - 1), power);
}

int effective_streams(const TransportContext& ctx) {
  const int streams =
      ctx.concurrent_streams > 0 ? ctx.concurrent_streams : ctx.fanin;
  return std::max(1, streams);
}

}  // namespace

SimTime TransportModel::node_local_cost(StoreOp op,
                                        std::uint64_t bytes) const {
  switch (op) {
    case StoreOp::Write:
      return memory.transfer_time(bytes);
    case StoreOp::Read:
      // Reads skip the allocation/publication step of the write path.
      return 0.9 * memory.transfer_time(bytes);
    case StoreOp::Poll:
    case StoreOp::Clean:
      return 0.3 * memory.sw_overhead_s;
  }
  return 0.0;
}

SimTime TransportModel::dragon_cost(StoreOp op, std::uint64_t bytes,
                                    const TransportContext& ctx) const {
  if (op == StoreOp::Poll || op == StoreOp::Clean) {
    // Manager round-trip, no payload.
    return dragon.sw_overhead_s +
           (ctx.remote ? net.latency_s : 0.5 * net.latency_s);
  }
  double t = dragon.sw_overhead_s;
  t += m21_penalty(dragon.m21_overhead_s, dragon.m21_power, ctx.fanin);
  if (!ctx.remote) {
    t += dragon.local.transfer_time(bytes);
  } else {
    // P2p stream whose efficiency declines beyond peak_bytes (the >10 MB
    // falloff in Fig 5a), sharing the consumer NIC among in-flight streams.
    const double shape =
        1.0 + std::pow(static_cast<double>(bytes) /
                           static_cast<double>(dragon.peak_bytes),
                       dragon.decline_power);
    const double stream_bw =
        std::min(dragon.remote_bandwidth / shape,
                 net.shared_bandwidth(effective_streams(ctx)));
    t += net.latency_s + static_cast<double>(bytes) / stream_bw;
  }
  if (op == StoreOp::Read) t *= 0.95;
  return t;
}

SimTime TransportModel::redis_cost(StoreOp op, std::uint64_t bytes,
                                   const TransportContext& ctx) const {
  if (op == StoreOp::Poll || op == StoreOp::Clean) {
    return 0.5 * redis.sw_overhead_s +
           (ctx.remote ? net.latency_s : redis.ipc_latency_s);
  }
  double t = redis.sw_overhead_s;
  t += m21_penalty(redis.m21_overhead_s, redis.m21_power, ctx.fanin);
  // The value crosses the client copy path and the single-threaded server.
  t += redis.client.transfer_time(bytes);
  t += redis.server.transfer_time(bytes);
  if (!ctx.remote) {
    t += redis.ipc_latency_s;
  } else {
    const double factor = (op == StoreOp::Write) ? redis.remote_write_factor
                                                 : redis.remote_read_factor;
    const double stream_bw =
        net.shared_bandwidth(effective_streams(ctx)) * factor;
    t += net.latency_s + static_cast<double>(bytes) / stream_bw;
  }
  return t;
}

SimTime TransportModel::filesystem_cost(StoreOp op, std::uint64_t bytes,
                                        const TransportContext& ctx) const {
  const int clients = std::max(1, ctx.concurrent_clients);
  switch (op) {
    case StoreOp::Write:
      // The real store creates a temp file then atomically renames it:
      // two MDS operations per write.
      return lustre.io_time(bytes, /*meta_ops=*/2, clients);
    case StoreOp::Read:
      return lustre.io_time(bytes, /*meta_ops=*/1, clients);
    case StoreOp::Poll:   // stat
    case StoreOp::Clean:  // unlink
      return lustre.meta_time(clients);
  }
  return 0.0;
}

SimTime TransportModel::stream_cost(StoreOp op, std::uint64_t bytes,
                                    const TransportContext& ctx) const {
  if (op == StoreOp::Poll || op == StoreOp::Clean) {
    // Step-availability check on an established stream: no metadata server.
    return 0.5 * stream.step_overhead_s;
  }
  double t = stream.step_overhead_s;
  t += m21_penalty(stream.m21_overhead_s, stream.m21_power, ctx.fanin);
  if (!ctx.remote) {
    t += static_cast<double>(bytes) / stream.local_bandwidth;
  } else {
    const double bw = std::min(stream.bandwidth,
                               net.shared_bandwidth(effective_streams(ctx)));
    t += net.latency_s + static_cast<double>(bytes) / bw;
  }
  return t;
}

SimTime TransportModel::daos_cost(StoreOp op, std::uint64_t bytes,
                                  const TransportContext& ctx) const {
  const int clients = std::max(1, ctx.concurrent_clients);
  // Distributed metadata: contention grows only past thousands of clients.
  const double load =
      static_cast<double>(clients) / daos.contention_capacity;
  const double contention = 1.0 + std::pow(load, daos.contention_exponent);
  if (op == StoreOp::Poll || op == StoreOp::Clean) {
    return daos.op_latency_s * contention;
  }
  const double fair =
      daos.aggregate_bandwidth / static_cast<double>(clients);
  const double bw = std::min(daos.target_bandwidth, fair);
  double t = daos.op_latency_s * contention +
             static_cast<double>(bytes) / bw;
  // Writes are replicated/committed: a second ack round-trip.
  if (op == StoreOp::Write) t += daos.op_latency_s;
  return t;
}

SimTime TransportModel::cost(BackendKind backend, StoreOp op,
                             std::uint64_t bytes,
                             const TransportContext& ctx) const {
  SimTime base = 0.0;
  switch (backend) {
    case BackendKind::NodeLocal: base = node_local_cost(op, bytes); break;
    case BackendKind::Dragon: base = dragon_cost(op, bytes, ctx); break;
    case BackendKind::Redis: base = redis_cost(op, bytes, ctx); break;
    case BackendKind::Filesystem:
      base = filesystem_cost(op, bytes, ctx);
      break;
    case BackendKind::Stream: base = stream_cost(op, bytes, ctx); break;
    case BackendKind::Daos: base = daos_cost(op, bytes, ctx); break;
  }
  return ctx.latency_multiplier == 1.0
             ? base
             : base * std::max(ctx.latency_multiplier, 0.0);
}

double TransportModel::throughput(BackendKind backend, StoreOp op,
                                  std::uint64_t bytes,
                                  const TransportContext& ctx) const {
  const SimTime t = cost(backend, op, bytes, ctx);
  return t > 0.0 ? static_cast<double>(bytes) / t : 0.0;
}

SimTime TransportModel::min_link_latency() const {
  // NodeLocal never crosses a node boundary, so it does not bound cross-LP
  // lookahead; every other backend is probed at its cheapest remote access.
  static constexpr BackendKind kRemote[] = {
      BackendKind::Dragon, BackendKind::Redis, BackendKind::Filesystem,
      BackendKind::Stream, BackendKind::Daos};
  static constexpr StoreOp kOps[] = {StoreOp::Write, StoreOp::Read,
                                     StoreOp::Poll, StoreOp::Clean};
  TransportContext ctx;
  ctx.remote = true;
  SimTime lo = std::numeric_limits<SimTime>::infinity();
  for (BackendKind backend : kRemote)
    for (StoreOp op : kOps) lo = std::min(lo, cost(backend, op, 1, ctx));
  return lo;
}

TransportModel TransportModel::from_json(const util::Json& spec) {
  TransportModel m;
  if (const util::Json* j = spec.find("memory"))
    m.memory = MemoryModel::from_json(*j);
  if (const util::Json* j = spec.find("net"))
    m.net = InterconnectModel::from_json(*j);
  if (const util::Json* j = spec.find("lustre"))
    m.lustre = LustreModel::from_json(*j);
  if (const util::Json* j = spec.find("dragon")) {
    m.dragon.sw_overhead_s = j->get("sw_overhead_s", m.dragon.sw_overhead_s);
    if (const util::Json* l = j->find("local"))
      m.dragon.local = MemoryModel::from_json(*l);
    m.dragon.remote_bandwidth =
        j->get("remote_bandwidth", m.dragon.remote_bandwidth);
    m.dragon.peak_bytes = static_cast<std::uint64_t>(j->get(
        "peak_bytes", static_cast<std::int64_t>(m.dragon.peak_bytes)));
    m.dragon.decline_power = j->get("decline_power", m.dragon.decline_power);
    m.dragon.m21_overhead_s =
        j->get("m21_overhead_s", m.dragon.m21_overhead_s);
    m.dragon.m21_power = j->get("m21_power", m.dragon.m21_power);
  }
  if (const util::Json* j = spec.find("redis")) {
    m.redis.sw_overhead_s = j->get("sw_overhead_s", m.redis.sw_overhead_s);
    m.redis.ipc_latency_s = j->get("ipc_latency_s", m.redis.ipc_latency_s);
    if (const util::Json* c = j->find("client"))
      m.redis.client = MemoryModel::from_json(*c);
    if (const util::Json* s = j->find("server"))
      m.redis.server = MemoryModel::from_json(*s);
    m.redis.remote_write_factor =
        j->get("remote_write_factor", m.redis.remote_write_factor);
    m.redis.remote_read_factor =
        j->get("remote_read_factor", m.redis.remote_read_factor);
    m.redis.m21_overhead_s = j->get("m21_overhead_s", m.redis.m21_overhead_s);
    m.redis.m21_power = j->get("m21_power", m.redis.m21_power);
  }
  if (const util::Json* j = spec.find("stream")) {
    m.stream.step_overhead_s =
        j->get("step_overhead_s", m.stream.step_overhead_s);
    m.stream.bandwidth = j->get("bandwidth", m.stream.bandwidth);
    m.stream.local_bandwidth =
        j->get("local_bandwidth", m.stream.local_bandwidth);
    m.stream.m21_overhead_s =
        j->get("m21_overhead_s", m.stream.m21_overhead_s);
    m.stream.m21_power = j->get("m21_power", m.stream.m21_power);
  }
  if (const util::Json* j = spec.find("daos")) {
    m.daos.op_latency_s = j->get("op_latency_s", m.daos.op_latency_s);
    m.daos.target_bandwidth =
        j->get("target_bandwidth", m.daos.target_bandwidth);
    m.daos.target_count =
        static_cast<int>(j->get("target_count", m.daos.target_count));
    m.daos.aggregate_bandwidth =
        j->get("aggregate_bandwidth", m.daos.aggregate_bandwidth);
    m.daos.contention_capacity =
        j->get("contention_capacity", m.daos.contention_capacity);
    m.daos.contention_exponent =
        j->get("contention_exponent", m.daos.contention_exponent);
  }
  return m;
}

}  // namespace simai::platform
