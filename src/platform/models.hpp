// Mechanistic performance models for the three transport substrates the
// four backends are built from: node memory (DRAM/tmpfs + L3 cache), the
// Slingshot-class interconnect, and the Lustre parallel file system.
//
// Each model is a smooth analytic function of message size and concurrency
// whose parameters have physical meaning (software overhead per op, copy
// bandwidth, metadata latency, contention capacity). The paper's figures
// are reproduced by *composition* of these terms, not by lookup tables —
// the curves bend where the mechanism says they must (L3 spill near the
// 8 MB per-process cache share, MDS contention past a few hundred clients,
// incast latency amplification in many-to-one fan-in).
#pragma once

#include <cstdint>

#include "util/json.hpp"
#include "util/types.hpp"

namespace simai::platform {

/// Node-memory copy cost: a fixed per-operation software overhead plus a
/// bandwidth term whose effective rate degrades once the transfer footprint
/// spills the process's L3 share (paper §4.1.2's explanation of the
/// throughput dip at the largest sizes).
struct MemoryModel {
  double sw_overhead_s = 100e-6;   // client bookkeeping per operation
  double bw_cached = 2.2e9;        // B/s while footprint fits in L3 share
  double bw_spilled = 1.0e9;       // B/s once the copy streams from DRAM
  double footprint_factor = 2.0;   // source + destination buffers
  std::uint64_t l3_share_bytes = 105 * MiB / 12;  // Pattern-1 default share

  /// Effective bandwidth for one transfer of `bytes`. Smooth transition
  /// between the cached and spilled regimes, proportional to the fraction
  /// of the footprint that fits in cache.
  double bandwidth(std::uint64_t bytes) const;

  /// Time for one put/get of `bytes` through node memory.
  SimTime transfer_time(std::uint64_t bytes) const;

  static MemoryModel from_json(const util::Json& spec);
};

/// Point-to-point network cost with incast amplification. The per-message
/// latency grows with the number of concurrent senders targeting the same
/// endpoint — the mechanism behind Fig 6's many-to-one penalty, where a
/// backend with excellent p2p throughput still loses at small messages.
struct InterconnectModel {
  double latency_s = 10e-6;        // base one-way software+wire latency
  double bandwidth = 12.0e9;       // B/s one stream across the fabric
  double incast_alpha = 0.35;      // latency multiplier growth per extra
                                   // concurrent sender into one endpoint
  double bw_share_floor = 0.05;    // fraction of bandwidth a stream keeps
                                   // under worst-case sharing

  /// Latency amplification for `fanin` concurrent senders (>=1).
  double incast_factor(int fanin) const;

  /// Per-stream bandwidth when `fanin` streams share the endpoint NIC.
  double shared_bandwidth(int fanin) const;

  /// Time to move `bytes` to a remote node with `fanin` concurrent senders.
  SimTime transfer_time(std::uint64_t bytes, int fanin = 1) const;

  static InterconnectModel from_json(const util::Json& spec);
};

/// Lustre cost: per-operation metadata latency that grows superlinearly
/// with the number of concurrent clients hammering the MDS (Fig 3b's
/// collapse at 512 nodes), plus a data term over striped OSTs whose
/// aggregate bandwidth is shared among active clients.
struct LustreModel {
  double meta_latency_s = 0.6e-3;  // one metadata op (open/rename/stat)
  double meta_capacity = 700.0;    // clients the MDS absorbs before queuing
  double meta_exponent = 1.25;     // contention growth power
  double ost_bandwidth = 1.2e9;    // B/s one client to one OST, stripe 1
  int stripe_count = 1;            // paper: stripe size 1 MiB, count 1
  int ost_count = 160;
  double aggregate_bandwidth = 640e9;  // total OST bandwidth ceiling

  /// Metadata contention multiplier for `clients` concurrent clients.
  double contention(int clients) const;

  /// Time for one metadata operation under contention.
  SimTime meta_time(int clients) const;

  /// Effective per-client data bandwidth with `clients` active.
  double client_bandwidth(int clients) const;

  /// Full cost of an I/O of `bytes` involving `meta_ops` metadata
  /// operations with `clients` concurrent clients.
  SimTime io_time(std::uint64_t bytes, int meta_ops, int clients) const;

  static LustreModel from_json(const util::Json& spec);
};

}  // namespace simai::platform
