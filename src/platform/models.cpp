#include "platform/models.hpp"

#include <algorithm>
#include <cmath>

namespace simai::platform {

// ---------------------------------------------------------------------------
// MemoryModel
// ---------------------------------------------------------------------------

double MemoryModel::bandwidth(std::uint64_t bytes) const {
  const double footprint = footprint_factor * static_cast<double>(bytes);
  const double share = static_cast<double>(l3_share_bytes);
  if (footprint <= share) return bw_cached;
  // Fraction of the working set that still fits in cache; the rest streams
  // at DRAM rate. Harmonic blend = time-weighted average of the two rates.
  const double cached_frac = share / footprint;
  const double t_per_byte =
      cached_frac / bw_cached + (1.0 - cached_frac) / bw_spilled;
  return 1.0 / t_per_byte;
}

SimTime MemoryModel::transfer_time(std::uint64_t bytes) const {
  return sw_overhead_s + static_cast<double>(bytes) / bandwidth(bytes);
}

MemoryModel MemoryModel::from_json(const util::Json& spec) {
  MemoryModel m;
  m.sw_overhead_s = spec.get("sw_overhead_s", m.sw_overhead_s);
  m.bw_cached = spec.get("bw_cached", m.bw_cached);
  m.bw_spilled = spec.get("bw_spilled", m.bw_spilled);
  m.footprint_factor = spec.get("footprint_factor", m.footprint_factor);
  m.l3_share_bytes = static_cast<std::uint64_t>(spec.get(
      "l3_share_bytes", static_cast<std::int64_t>(m.l3_share_bytes)));
  return m;
}

// ---------------------------------------------------------------------------
// InterconnectModel
// ---------------------------------------------------------------------------

double InterconnectModel::incast_factor(int fanin) const {
  fanin = std::max(1, fanin);
  return 1.0 + incast_alpha * static_cast<double>(fanin - 1);
}

double InterconnectModel::shared_bandwidth(int fanin) const {
  fanin = std::max(1, fanin);
  const double share = bandwidth / static_cast<double>(fanin);
  return std::max(share, bandwidth * bw_share_floor);
}

SimTime InterconnectModel::transfer_time(std::uint64_t bytes,
                                         int fanin) const {
  return latency_s * incast_factor(fanin) +
         static_cast<double>(bytes) / shared_bandwidth(fanin);
}

InterconnectModel InterconnectModel::from_json(const util::Json& spec) {
  InterconnectModel m;
  m.latency_s = spec.get("latency_s", m.latency_s);
  m.bandwidth = spec.get("bandwidth", m.bandwidth);
  m.incast_alpha = spec.get("incast_alpha", m.incast_alpha);
  m.bw_share_floor = spec.get("bw_share_floor", m.bw_share_floor);
  return m;
}

// ---------------------------------------------------------------------------
// LustreModel
// ---------------------------------------------------------------------------

double LustreModel::contention(int clients) const {
  clients = std::max(1, clients);
  const double load = static_cast<double>(clients) / meta_capacity;
  // Below capacity the MDS keeps up (factor ~1); beyond it, queueing delay
  // grows as a power of the overload ratio.
  return 1.0 + std::pow(load, meta_exponent);
}

SimTime LustreModel::meta_time(int clients) const {
  return meta_latency_s * contention(clients);
}

double LustreModel::client_bandwidth(int clients) const {
  clients = std::max(1, clients);
  const double striped =
      ost_bandwidth * std::min(stripe_count, ost_count);
  const double fair_share =
      aggregate_bandwidth / static_cast<double>(clients);
  return std::min(striped, fair_share);
}

SimTime LustreModel::io_time(std::uint64_t bytes, int meta_ops,
                             int clients) const {
  return static_cast<double>(meta_ops) * meta_time(clients) +
         static_cast<double>(bytes) / client_bandwidth(clients);
}

LustreModel LustreModel::from_json(const util::Json& spec) {
  LustreModel m;
  m.meta_latency_s = spec.get("meta_latency_s", m.meta_latency_s);
  m.meta_capacity = spec.get("meta_capacity", m.meta_capacity);
  m.meta_exponent = spec.get("meta_exponent", m.meta_exponent);
  m.ost_bandwidth = spec.get("ost_bandwidth", m.ost_bandwidth);
  m.stripe_count = static_cast<int>(spec.get("stripe_count", m.stripe_count));
  m.ost_count = static_cast<int>(spec.get("ost_count", m.ost_count));
  m.aggregate_bandwidth =
      spec.get("aggregate_bandwidth", m.aggregate_bandwidth);
  return m;
}

}  // namespace simai::platform
