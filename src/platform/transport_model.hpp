// Per-backend pricing of data-transport operations in virtual time.
//
// Every throughput/runtime number in the paper's Figs. 3-6 flows through
// TransportModel::cost(): the workflow layer performs the *real* store
// operation (bytes actually move through the real backend implementation)
// and then charges the virtual clock with the modelled Aurora-scale cost of
// that operation.
//
// Backend composition:
//   node-local  = MemoryModel (tmpfs on the same node)
//   dragon      = client overhead + MemoryModel (local) or interconnect
//                 with a p2p curve that peaks near 10 MB (remote), plus a
//                 many-to-one per-message management penalty
//   redis       = client overhead + socket hop + single-threaded server
//                 copy (local), or a low-efficiency TCP stream (remote)
//   filesystem  = LustreModel; write = 2 metadata ops (tmp create + atomic
//                 rename, matching the real store), read = 1 (open),
//                 poll = 1 (stat), clean = 1 (unlink)
#pragma once

#include <string>
#include <string_view>

#include "platform/models.hpp"
#include "platform/topology.hpp"

namespace simai::platform {

/// The paper's four backends plus the two §5 future-work transports built
/// in this reproduction: Stream (ADIOS2-SST-style point-to-point streaming)
/// and Daos (DAOS-style distributed object store — no central MDS).
enum class BackendKind { NodeLocal, Dragon, Redis, Filesystem, Stream, Daos };

/// Parse "node-local" / "dragon" / "redis" / "filesystem" (a few aliases
/// accepted); throws ConfigError on unknown names.
BackendKind parse_backend(std::string_view name);
std::string_view backend_name(BackendKind kind);

enum class StoreOp { Write, Read, Poll, Clean };
std::string_view store_op_name(StoreOp op);

/// Workload context a store operation executes in.
struct TransportContext {
  /// Client and the data's home node differ (Pattern 2 non-local access).
  bool remote = false;
  /// Number of concurrent producers feeding this consumer endpoint
  /// (ensemble size in many-to-one; 1 for one-to-one).
  int fanin = 1;
  /// Concurrent streams actually in flight into the consumer node (bounded
  /// by its reader ranks; defaults to fanin when 0).
  int concurrent_streams = 0;
  /// Machine-wide concurrent clients of the backend (drives Lustre MDS
  /// contention: 12 x nodes in Pattern 1).
  int concurrent_clients = 1;
  /// Degraded-operation factor applied to the final cost (slow-node /
  /// latency-spike windows injected by simai::fault; 1.0 = healthy).
  double latency_multiplier = 1.0;
};

/// Dragon distributed-dictionary parameters.
struct DragonParams {
  double sw_overhead_s = 140e-6;  // client serialization + manager lookup
  MemoryModel local;              // same-node channel transfer
  double remote_bandwidth = 3.0e9;   // p2p stream over the fabric
  std::uint64_t peak_bytes = 20 * MiB;  // throughput declines past here
  double decline_power = 1.0;
  double m21_overhead_s = 150e-6;  // per-message penalty per extra producer
  double m21_power = 1.0;

  DragonParams();
};

/// ADIOS2-SST-style streaming parameters: an established point-to-point
/// stream with pipelined steps — per-step handshake latency but no
/// per-operation key/metadata machinery, and RDMA-class bandwidth.
struct StreamParams {
  double step_overhead_s = 40e-6;  // begin/end-step handshake
  double bandwidth = 9.0e9;        // pipelined stream over the fabric
  double local_bandwidth = 4.0e9;  // same-node shared-memory data plane
  double m21_overhead_s = 20e-6;   // reader-side per-producer step cost
  double m21_power = 1.0;
};

/// DAOS-style object-store parameters: client-direct access to striped
/// storage targets with *distributed* (per-target) metadata — the central-
/// MDS contention term of Lustre is replaced by a mild per-target one.
struct DaosParams {
  double op_latency_s = 25e-6;     // client->target RPC
  double target_bandwidth = 2.5e9; // one client to one target
  int target_count = 1024;
  double aggregate_bandwidth = 2.0e13;  // Aurora DAOS: ~1024 nodes x ~20 GB/s
  double contention_capacity = 8000.0;  // clients before queuing appears
  double contention_exponent = 1.0;
};

/// Redis parameters (single-threaded RESP server).
struct RedisParams {
  double sw_overhead_s = 250e-6;  // RESP encode + syscalls per request
  double ipc_latency_s = 25e-6;   // loopback socket round-trip
  MemoryModel client;             // client-side copy path
  MemoryModel server;             // server-side parse + copy (the 1 thread)
  double remote_write_factor = 0.45;  // TCP stream efficiency, writes
  double remote_read_factor = 0.10;   // ... reads (poor, per Fig 5a)
  double m21_overhead_s = 170e-6;  // connection handling per extra producer
  double m21_power = 1.0;

  RedisParams();
};

/// The full pricing model. Defaults are tuned to reproduce the paper's
/// Aurora measurements; every parameter can be overridden from JSON:
///   {"memory": {...}, "net": {...}, "lustre": {...},
///    "dragon": {...}, "redis": {...}}
class TransportModel {
 public:
  TransportModel() = default;

  /// Virtual-time cost of one store operation.
  SimTime cost(BackendKind backend, StoreOp op, std::uint64_t bytes,
               const TransportContext& ctx = {}) const;

  /// bytes / cost(...) — convenience for throughput tables.
  double throughput(BackendKind backend, StoreOp op, std::uint64_t bytes,
                    const TransportContext& ctx = {}) const;

  /// Minimum virtual-time cost of any cross-node store operation: the min
  /// over every remote-capable backend and every StoreOp of the cost of a
  /// 1-byte remote access under an otherwise-unloaded context. This is the
  /// safe lookahead for inter-node LP edges in the parallel engine
  /// (DESIGN.md §4.12): no interaction between distinct nodes can take
  /// effect sooner than this, so an LP granted a dispatch window of
  /// min(neighbor LVT + min_link_latency()) never receives an event in its
  /// past. Strictly positive by construction — every remote path pays at
  /// least one fixed software/RPC overhead.
  SimTime min_link_latency() const;

  static TransportModel from_json(const util::Json& spec);

  // Sub-models are public so tests and ablation benches can probe and
  // perturb individual mechanisms.
  MemoryModel memory;        // node-local backend
  InterconnectModel net;
  LustreModel lustre;
  DragonParams dragon;
  RedisParams redis;
  StreamParams stream;
  DaosParams daos;

 private:
  SimTime node_local_cost(StoreOp op, std::uint64_t bytes) const;
  SimTime dragon_cost(StoreOp op, std::uint64_t bytes,
                      const TransportContext& ctx) const;
  SimTime redis_cost(StoreOp op, std::uint64_t bytes,
                     const TransportContext& ctx) const;
  SimTime filesystem_cost(StoreOp op, std::uint64_t bytes,
                          const TransportContext& ctx) const;
  SimTime stream_cost(StoreOp op, std::uint64_t bytes,
                      const TransportContext& ctx) const;
  SimTime daos_cost(StoreOp op, std::uint64_t bytes,
                    const TransportContext& ctx) const;
};

}  // namespace simai::platform
