// Open-loop request generation for the serving plane.
//
// Open-loop means the arrival process never reacts to the system: client k
// submits at its predrawn times whether or not earlier requests have been
// answered — the load model that exposes queueing collapse, which a
// closed-loop (wait-for-response) generator structurally cannot (it
// self-throttles exactly when the system saturates).
//
// Two arrival sources, both deterministic:
//  * seeded Poisson — per-client exponential interarrivals drawn up front
//    from util::Xoshiro256::next_exponential on an independent stream per
//    client (mix64(seed) + client), so adding clients never perturbs the
//    arrivals of existing ones;
//  * trace — an explicit list of arrival times (e.g. replayed from a
//    production log), distributed round-robin across the clients.
//
// The whole arrival table and every input tensor are functions of the
// config alone — never of the DES schedule — so the request stream is
// byte-identical across runs, substrates, and spawn orders.
#pragma once

#include <cstdint>
#include <vector>

#include "serve/request.hpp"
#include "util/types.hpp"

namespace simai::serve {

struct ArrivalConfig {
  int clients = 4;
  /// Poisson mode: requests per client (total = clients * requests_per_client).
  int requests_per_client = 50;
  /// Aggregate offered load, requests per virtual second (Poisson mode).
  double rate = 50.0;
  /// Non-empty => trace mode: these arrival times (virtual seconds) replace
  /// the Poisson draws; requests are dealt round-robin across clients.
  std::vector<SimTime> trace;
  /// Rows per request's input tensor.
  std::size_t input_rows = 1;
  std::uint64_t seed = 1;
};

class RequestGenerator {
 public:
  /// `in_features` is the served model's input width (request tensors are
  /// input_rows x in_features).
  RequestGenerator(ArrivalConfig config, std::size_t in_features);

  int clients() const { return static_cast<int>(arrivals_.size()); }
  int total_requests() const { return total_; }
  const ArrivalConfig& config() const { return config_; }

  /// Per-client arrival times, each stream sorted ascending.
  const std::vector<std::vector<SimTime>>& arrivals() const {
    return arrivals_;
  }

  /// Materialize request `k` of `client` (0-based within the client's
  /// stream): deterministic id plus an input tensor whose values are keyed
  /// by (seed, id) — independent of every other draw.
  Request make_request(int client, int k) const;

 private:
  ArrivalConfig config_;
  std::size_t in_features_;
  std::vector<std::vector<SimTime>> arrivals_;   // [client][k]
  std::vector<std::vector<std::uint64_t>> ids_;  // [client][k] request ids
  int total_ = 0;
};

}  // namespace simai::serve
