// Request vocabulary of the serving plane (simai::serve, DESIGN.md §4.9).
//
// A Request is one client inference call moving through the cluster:
//
//   arrival ──queue──> batched ──batch──> compute_start ──compute──>
//   compute_end ──transport──> completed
//
// The four named phases are the SLO breakdown the tentpole asks for: queue
// is admission-to-dispatch wait, batch is dispatch + input transport into
// the replica, compute is the stacked forward pass, transport is the
// response leg back to the frontend. Every timestamp is virtual time from
// the DES clock; a request that is shed by admission control ends life as
// Rejected with only `arrival` set (the HTTP-429 path — the client is told
// immediately and no payload ever touches the transport).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "ai/tensor.hpp"
#include "util/types.hpp"

namespace simai::serve {

enum class RequestStatus { Pending, Rejected, Completed };

std::string_view request_status_name(RequestStatus status);

struct Request {
  std::uint64_t id = 0;  // deterministic: client * requests_per_client + k
  int client = 0;
  std::size_t rows = 1;  // input rows this request carries
  ai::Tensor input;      // rows x in_features
  ai::Tensor output;     // rows x out_features, filled on completion

  RequestStatus status = RequestStatus::Pending;
  int replica = -1;  // replica that served it (completed requests)
  int attempts = 0;  // dispatch attempts; > 1 means failover re-queues

  // -- phase timestamps (virtual seconds; -1 = never reached) --------------
  SimTime arrival = -1.0;        // client submitted (and was admitted)
  SimTime batched = -1.0;        // left the queue into an in-flight batch
  SimTime compute_start = -1.0;  // replica began the stacked forward
  SimTime compute_end = -1.0;    // forward finished
  SimTime completed = -1.0;      // response delivered at the frontend

  SimTime latency() const { return completed - arrival; }
  SimTime queue_time() const { return batched - arrival; }
  SimTime batch_time() const { return compute_start - batched; }
  SimTime compute_time() const { return compute_end - compute_start; }
  SimTime transport_time() const { return completed - compute_end; }

  /// Staging keys the request's payloads travel under.
  std::string input_key() const {
    return "serve/req_" + std::to_string(id);
  }
  std::string response_key() const {
    return "serve/resp_" + std::to_string(id);
  }
};

/// One in-flight unit of replica work: up to max_batch_size requests
/// dispatched together and answered by one stacked forward pass.
struct Batch {
  std::uint64_t id = 0;
  std::vector<Request*> requests;

  std::size_t total_rows() const {
    std::size_t n = 0;
    for (const Request* r : requests) n += r->rows;
    return n;
  }
};

}  // namespace simai::serve
