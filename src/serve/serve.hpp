// simai::serve — the serving-plane cluster (DESIGN.md §4.9).
//
// The paper's transport benchmarks drive simulation->training traffic; this
// subsystem turns the same stack around and serves a trained model back:
// open-loop clients (request_gen.hpp) submit inference requests through a
// continuous-batching scheduler (scheduler.hpp) to replica processes
// (replica.hpp) that pull published weights and execute stacked forward
// passes, with every payload — weights, inputs, responses — priced by the
// configured transport backend. run_cluster() wires the whole thing onto
// one deterministic DES engine:
//
//   clients (open-loop arrivals)             weights publisher
//        │ admit / reject (429)                    │ stage_write
//        ▼                                        ▼
//   Scheduler ──batch──> ReplicaServer ──pull──> DataStore (shared store)
//        ▲                    │ stacked forward + response stage_write
//        └──completions── frontend collector ──stage_read── responses
//
// Everything is a function of ServeConfig alone: the same config produces a
// byte-identical request timeline (ServeResult::fingerprint()) on every
// run, on both engine substrates, armed or disarmed — the contract
// tests/serve_test.cpp holds.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fault/fault.hpp"
#include "fault/retry.hpp"
#include "platform/transport_model.hpp"
#include "serve/replica.hpp"
#include "serve/request_gen.hpp"
#include "serve/scheduler.hpp"
#include "sim/trace.hpp"
#include "util/json.hpp"
#include "util/stats.hpp"
#include "util/types.hpp"

namespace simai::serve {

struct ServeConfig {
  ArrivalConfig arrivals;
  SchedulerPolicy policy;
  int replicas = 2;

  /// Served model (ai::Mlp JSON spec). Null => a small default MLP. The
  /// spec's "seed" is overridden by weight_seed so the publisher owns the
  /// parameter stream.
  util::Json model;
  std::string device = "cpu";
  std::uint64_t weight_seed = 21;
  /// Poisson rate (events per virtual second) of publisher weight
  /// refreshes; replicas re-pull before the next batch. 0 = publish once.
  double weight_refresh_rate = 0.0;

  /// Transport: backend prices every weight/input/response movement.
  platform::BackendKind backend = platform::BackendKind::NodeLocal;
  std::size_t payload_cap = 0;  // DataStore payload virtualization cap
  fault::RetryPolicy retry;
  bool verify_integrity = true;
  /// Store faults + per-replica outage windows. May be null. The spec's
  /// `replicas` field must cover ServeConfig::replicas for outages to hit.
  const fault::FaultSchedule* faults = nullptr;

  SimTime batch_overhead = 2e-4;  // per-dispatch replica cost (s)
  SimTime poll_interval = 5e-4;   // weight/response poll spacing (s)

  /// Record the run's timeline (spans + instants; labeled spans too when
  /// the obs plane is armed) into ServeResult::trace.
  bool record_trace = false;

  /// End-to-end latency SLO in virtual seconds (0 = no SLO). Purely
  /// observational: a completed request over the bound trips the obs
  /// flight recorder once per run ("slo_breach" dump) while the plane is
  /// armed; scheduling and results are unaffected.
  SimTime slo_latency = 0.0;
};

/// Flat per-request outcome — what the fingerprint and the SLO accounting
/// are computed from. Timestamps are virtual seconds, -1 = never reached.
struct RequestRecord {
  std::uint64_t id = 0;
  int client = 0;
  int replica = -1;
  RequestStatus status = RequestStatus::Pending;
  int attempts = 0;
  SimTime arrival = -1.0;
  SimTime batched = -1.0;
  SimTime compute_start = -1.0;
  SimTime compute_end = -1.0;
  SimTime completed = -1.0;
};

struct ServeResult {
  std::vector<RequestRecord> requests;  // sorted by id

  std::uint64_t completed = 0;
  std::uint64_t rejected = 0;
  std::uint64_t batches = 0;
  std::uint64_t failovers = 0;
  std::uint64_t weight_refreshes = 0;
  std::size_t peak_queue_depth = 0;

  SimTime makespan = 0.0;         // engine drain time
  SimTime last_completion = 0.0;  // final response delivery

  /// SLO accounting over completed requests (virtual seconds). These are
  /// always-on util::Histograms — percentiles work with obs disarmed; the
  /// labeled obs::Registry series exist additionally when armed.
  util::Histogram latency;
  util::Histogram queue_phase;
  util::Histogram batch_phase;
  util::Histogram compute_phase;
  util::Histogram transport_phase;

  /// Completed requests per virtual second up to the last completion
  /// (admitted-and-answered work only — shed requests don't count).
  double goodput() const {
    return last_completion > 0.0
               ? static_cast<double>(completed) / last_completion
               : 0.0;
  }

  /// Canonical request/response timeline: one CSV row per request, sorted
  /// by id. Byte-identical across runs/substrates/obs arming is the
  /// serving plane's determinism contract.
  std::string fingerprint() const;

  sim::TraceRecorder trace;  // populated when ServeConfig::record_trace
};

/// Build the cluster on a fresh engine, run to completion, return the
/// accounting. Substrate follows SIMAI_SIM_THREADS like every engine.
ServeResult run_cluster(const ServeConfig& config);

}  // namespace simai::serve
