#include "serve/replica.hpp"

#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "serve/scheduler.hpp"
#include "sim/trace.hpp"
#include "util/buffer.hpp"
#include "util/error.hpp"

namespace simai::serve {

util::Payload pack_weights(std::uint64_t version,
                           const std::vector<double>& flat) {
  util::ByteWriter w(2 * sizeof(std::uint64_t) + flat.size() * sizeof(double));
  w.u64(version);
  w.u64(flat.size());
  for (double v : flat) w.f64(v);
  return w.take_payload();
}

std::uint64_t unpack_weights(const util::Payload& payload,
                             std::vector<double>& flat) {
  util::ByteReader r(payload);
  const std::uint64_t version = r.u64();
  const std::uint64_t count = r.u64();
  if (count * sizeof(double) != r.remaining())
    throw util::SerializationError("weights payload: bad parameter count");
  flat.resize(count);
  for (std::uint64_t i = 0; i < count; ++i) flat[i] = r.f64();
  return version;
}

ReplicaServer::ReplicaServer(sim::Engine& engine, ReplicaConfig config,
                             core::DataStore* store, Scheduler* scheduler,
                             sim::TraceRecorder* trace)
    : config_(std::move(config)),
      store_(store),
      scheduler_(scheduler),
      trace_(trace),
      ai_(config_.name, config_.model, config_.seed),
      mail_(engine) {
  if (store_ == nullptr || scheduler_ == nullptr)
    throw ConfigError("ReplicaServer: store and scheduler are required");
  ai_.set_datastore(store_);
}

void ReplicaServer::enqueue(sim::Context& ctx, Batch batch) {
  (void)ctx;
  if (busy_) throw Error("ReplicaServer: dispatched to a busy replica");
  busy_ = true;
  mailbox_.push_back(std::move(batch));
  mail_.notify_all();
}

void ReplicaServer::shutdown(sim::Context& ctx) {
  (void)ctx;
  stop_ = true;
  mail_.notify_all();
}

bool ReplicaServer::pull_weights(sim::Context& ctx) {
  util::Payload payload;
  if (!store_->stage_read(&ctx, config_.weights_key, payload)) return false;
  std::vector<double> flat;
  std::uint64_t version = 0;
  try {
    version = unpack_weights(payload, flat);
    ai_.load_weights(flat);
  } catch (const util::SerializationError&) {
    return false;  // corrupted in transit: treat like a degraded read
  }
  if (weight_version_ != 0 && version != weight_version_) {
    ++weight_refreshes_;
    if (obs::enabled())
      obs::registry().counter(obs::keys::kServeWeightRefreshesTotal).inc();
  }
  weight_version_ = version;
  return true;
}

bool ReplicaServer::died_within(SimTime t0, SimTime t1) const {
  return config_.faults != nullptr &&
         config_.faults->replica_down_within(config_.index, t0, t1);
}

void ReplicaServer::run(sim::Context& ctx) {
  // Startup: the model is served only after the published weights arrive
  // through the transport (the paper's weight-distribution leg).
  while (!stop_) {
    if (store_->poll_staged_data(&ctx, config_.weights_key) &&
        pull_weights(ctx))
      break;
    ctx.delay(config_.poll_interval);
  }
  if (stop_) return;
  busy_ = false;
  scheduler_->notify_idle(ctx);

  while (true) {
    while (mailbox_.empty() && !stop_) ctx.wait(mail_);
    if (mailbox_.empty()) return;  // stop requested and drained
    Batch batch = std::move(mailbox_.front());
    mailbox_.pop_front();
    serve_batch(ctx, batch);
  }
}

void ReplicaServer::serve_batch(sim::Context& ctx, Batch& batch) {
  const SimTime t0 = ctx.now();
  bool ok = true;

  // Weight refresh: the publisher bumped the version since our last pull.
  if (published_version_ != nullptr && *published_version_ > weight_version_)
    ok = pull_weights(ctx);

  // Input transport: zero-copy reads of every request payload.
  std::vector<ai::Tensor> inputs;
  if (ok) {
    inputs.reserve(batch.requests.size());
    for (const Request* r : batch.requests) {
      util::Payload payload;
      if (!store_->stage_read(&ctx, r->input_key(), payload)) {
        ok = false;
        break;
      }
      try {
        inputs.push_back(ai::unpack_tensor(payload.view()));
      } catch (const util::SerializationError&) {
        ok = false;
        break;
      }
    }
  }

  if (ok) {
    const SimTime tc = ctx.now();
    for (Request* r : batch.requests) r->compute_start = tc;
    ctx.delay(config_.batch_overhead);  // dispatch/stacking glue, charged once
    std::vector<const ai::Tensor*> views;
    views.reserve(inputs.size());
    for (const ai::Tensor& t : inputs) views.push_back(&t);
    const ai::Tensor stacked = ai_.infer_batch(ctx, views);
    const SimTime te = ctx.now();
    std::size_t row = 0;
    for (Request* r : batch.requests) {
      r->compute_end = te;
      r->output = ai::Tensor(r->rows, stacked.cols());
      for (std::size_t i = 0; i < r->rows; ++i)
        for (std::size_t j = 0; j < stacked.cols(); ++j)
          r->output.at(i, j) = stacked.at(row + i, j);
      row += r->rows;
    }
  }

  // Response staging (replica-side transport leg).
  if (ok && !died_within(t0, ctx.now())) {
    for (Request* r : batch.requests) {
      const Bytes packed = ai::pack_tensor(r->output);
      if (!store_->stage_write(&ctx, r->response_key(), ByteView(packed))) {
        ok = false;  // response lost in degraded mode: re-run elsewhere
        break;
      }
      r->replica = config_.index;
    }
  }
  // One overlap check covering the whole batch span: a replica that died at
  // any point between dispatch and the last staged response fails the batch,
  // even if the outage window opened and closed entirely inside it.
  if (ok && died_within(t0, ctx.now())) ok = false;

  if (!ok) {
    scheduler_->requeue_failover(ctx, std::move(batch));
    // Sleep out our own outage (if any) so the loop never spins while down.
    const SimTime up = down_until(ctx.now());
    if (up > ctx.now()) ctx.delay(up - ctx.now());
    busy_ = false;
    scheduler_->notify_idle(ctx);
    return;
  }

  ++batches_served_;
  if (trace_ != nullptr) {
    trace_->record_span(config_.name, "batch", t0, ctx.now());
    if (obs::enabled()) {
      sim::LabeledSpan span;
      span.track = config_.name;
      span.category = "serve_batch";
      span.start = t0;
      span.end = ctx.now();
      if (obs::TraceContext* oc = obs::context(ctx.obs_id()))
        span.span_id = obs::next_span_id(*oc);
      span.labels = {{"batch", std::to_string(batch.id)},
                     {"requests", std::to_string(batch.requests.size())},
                     {"rows", std::to_string(batch.total_rows())},
                     {"weights_version", std::to_string(weight_version_)}};
      trace_->record_labeled_span(std::move(span));
    }
  }
  if (on_complete_) on_complete_(ctx, batch);
  busy_ = false;
  scheduler_->notify_idle(ctx);
}

}  // namespace simai::serve
