// Continuous-batching scheduler with admission control (DESIGN.md §4.9).
//
// Continuous batching means batches form *when a replica is free*, not on a
// fixed clock: a full batch dispatches immediately; a partial batch waits at
// most max_queue_delay from the head request's enqueue before flushing. The
// queue never drains into a busy or down replica — completions and outage
// ends re-wake the scheduler, so capacity freed anywhere is used at once.
//
// Admission control is the HTTP-429 path: a request arriving while
// queued + in-staging depth is at max_queue_depth is Rejected on the spot,
// before its payload touches the transport. Under open-loop overload this
// converts unbounded queueing collapse into bounded latency plus measured
// shed load (the goodput curves in BENCH_serve.json).
//
// Failover: a replica that dies mid-batch hands the whole batch back via
// requeue_failover(); the requests re-enter at the *front* of the queue
// (they have already waited) and re-dispatch to a surviving replica. No
// request is ever dropped after admission.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "serve/request.hpp"
#include "sim/engine.hpp"
#include "util/types.hpp"

namespace simai::serve {

class ReplicaServer;

struct SchedulerPolicy {
  /// Max requests stacked into one forward pass.
  std::size_t max_batch_size = 8;
  /// Max virtual seconds the queue head waits before a partial batch flushes.
  SimTime max_queue_delay = 0.002;
  /// Admission bound: requests arriving while queued + in-staging depth is
  /// at this value are shed (Rejected). 0 disables shedding.
  std::size_t max_queue_depth = 64;
};

class Scheduler {
 public:
  Scheduler(sim::Engine& engine, SchedulerPolicy policy, int total_requests);

  /// Registration order defines the round-robin order; call before run().
  void add_replica(ReplicaServer* replica);

  /// The event poked whenever a request leaves the system (completed or
  /// rejected); the frontend collector waits on it alongside its own queue.
  void set_resolve_event(sim::Event* event) { resolve_event_ = event; }

  // -- client path ------------------------------------------------------------
  /// Admission decision at arrival time. False => the request was shed:
  /// status set to Rejected and accounted immediately; the caller must not
  /// stage its payload. True reserves a queue slot until enqueue().
  bool admit(sim::Context& ctx, Request& r);
  /// Hand an admitted request (input already staged) to the queue.
  void enqueue(sim::Context& ctx, Request& r);

  // -- replica path -----------------------------------------------------------
  /// Return a failed batch for re-dispatch; requests keep their ids and
  /// attempt counts and rejoin at the queue front.
  void requeue_failover(sim::Context& ctx, Batch batch);
  /// A replica became free (batch finished or outage slept off).
  void notify_idle(sim::Context& ctx);

  // -- frontend path ----------------------------------------------------------
  /// A request completed its response leg and left the system.
  void on_resolved(sim::Context& ctx);

  /// Scheduler process body: forms and dispatches batches until every
  /// request has resolved, then shuts the replicas down.
  void run(sim::Context& ctx);

  bool finished() const { return remaining_ == 0; }
  std::uint64_t rejected() const { return rejected_; }
  std::uint64_t batches_dispatched() const { return batches_; }
  std::uint64_t failovers() const { return failovers_; }
  std::size_t peak_queue_depth() const { return peak_depth_; }

 private:
  struct QueueEntry {
    Request* request = nullptr;
    SimTime enqueued = 0.0;  // feeds the max_queue_delay flush deadline
  };

  /// Round-robin pick of an up, idle replica; nullptr when none. `all_down`
  /// reports whether every replica is in an outage window (vs merely busy),
  /// and `next_up` the earliest time one returns.
  ReplicaServer* pick_replica(SimTime now, bool& all_down, SimTime& next_up);
  std::size_t depth() const { return queue_.size() + reserved_; }
  void note_depth(sim::Context& ctx);

  sim::Engine& engine_;
  SchedulerPolicy policy_;
  std::vector<ReplicaServer*> replicas_;
  std::deque<QueueEntry> queue_;
  sim::Event wake_;                     // arrivals, completions, requeues
  sim::Event* resolve_event_ = nullptr;  // frontend's, poked on rejection

  int remaining_ = 0;        // requests not yet Completed/Rejected
  std::size_t reserved_ = 0;  // admitted, input still staging
  std::size_t next_rr_ = 0;
  std::uint64_t batch_seq_ = 0;
  std::uint64_t rejected_ = 0;
  std::uint64_t batches_ = 0;
  std::uint64_t failovers_ = 0;
  std::size_t peak_depth_ = 0;
};

}  // namespace simai::serve
