#include "serve/serve.hpp"

#include <algorithm>
#include <cstdio>
#include <deque>
#include <memory>

#include "ai/mlp.hpp"
#include "core/datastore.hpp"
#include "fault/faulty_store.hpp"
#include "kv/memory_store.hpp"
#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "sim/engine.hpp"
#include "util/error.hpp"

namespace simai::serve {

namespace {

constexpr const char* kWeightsKey = "serve/weights";
/// Publisher refresh draws are an independent stream under weight_seed.
constexpr std::uint64_t kRefreshSalt = 0x3efe5ull;
/// Refresh-loop wake spacing: bounds how long the publisher can hold the
/// engine open past the last resolved request.
constexpr SimTime kPublisherHeartbeat = 0.05;

util::Json default_model_spec() {
  util::Json spec = util::Json::object();
  spec["layers"] = util::Json::array({16, 64, 32, 8});
  spec["activation"] = "tanh";
  return spec;
}

}  // namespace

std::string ServeResult::fingerprint() const {
  std::string out =
      "id,client,replica,status,attempts,arrival,batched,compute_end,"
      "completed\n";
  char line[224];
  for (const RequestRecord& r : requests) {
    std::snprintf(line, sizeof line,
                  "%llu,%d,%d,%s,%d,%.9g,%.9g,%.9g,%.9g\n",
                  static_cast<unsigned long long>(r.id), r.client, r.replica,
                  std::string(request_status_name(r.status)).c_str(),
                  r.attempts, r.arrival, r.batched, r.compute_end,
                  r.completed);
    out += line;
  }
  return out;
}

ServeResult run_cluster(const ServeConfig& config) {
  if (config.replicas <= 0)
    throw ConfigError("run_cluster: replicas must be positive");

  util::Json model_spec =
      config.model.is_null() ? default_model_spec() : config.model;
  model_spec["seed"] = config.weight_seed;  // the publisher owns the stream
  const util::Json* layers = model_spec.find("layers");
  if (layers == nullptr || !layers->is_array() || layers->size() < 2)
    throw ConfigError("run_cluster: model needs a layers array (>= 2)");
  const auto in_features =
      static_cast<std::size_t>(layers->at(std::size_t{0}).as_int());

  RequestGenerator gen(config.arrivals, in_features);
  const int clients = gen.clients();
  const int total = gen.total_requests();

  ServeResult result;
  sim::TraceRecorder* trace = config.record_trace ? &result.trace : nullptr;

  sim::Engine engine;
  if (trace != nullptr && config.faults != nullptr)
    config.faults->install(engine, trace);
  if (obs::enabled() && trace != nullptr) {
    engine.set_metric_sampler(obs::sample_interval(), [trace](SimTime t) {
      for (const auto& [series, value] : obs::registry().scalar_values())
        trace->record_counter_sample(series, t, value);
    });
  }

  // One backing store shared by every actor — the in-transit staging area —
  // wrapped with the fault injector when a schedule is present. Each actor
  // gets its own DataStore client (node id + pricing context) over it.
  platform::TransportModel model;
  auto backing = std::make_shared<kv::MemoryStore>();
  kv::StorePtr store = backing;
  if (config.faults != nullptr)
    store = std::make_shared<fault::FaultyStore>(backing, config.faults,
                                                 &engine);

  core::DataStoreConfig base;
  base.backend = config.backend;
  base.payload_cap = config.payload_cap;
  base.faults = config.faults;
  base.verify_integrity = config.verify_integrity;
  base.retry = config.retry;
  base.transport.concurrent_clients = clients + config.replicas + 2;
  const bool remote = config.backend == platform::BackendKind::Redis ||
                      config.backend == platform::BackendKind::Dragon;

  std::vector<std::unique_ptr<core::DataStore>> client_stores;
  for (int c = 0; c < clients; ++c) {
    core::DataStoreConfig cfg = base;
    cfg.node = c;
    client_stores.push_back(std::make_unique<core::DataStore>(
        "client" + std::to_string(c), store, &model, cfg, trace));
  }
  std::vector<std::unique_ptr<core::DataStore>> replica_stores;
  for (int r = 0; r < config.replicas; ++r) {
    core::DataStoreConfig cfg = base;
    cfg.node = clients + r;
    cfg.transport.remote = remote;
    replica_stores.push_back(std::make_unique<core::DataStore>(
        "replica" + std::to_string(r) + "_store", store, &model, cfg, trace));
  }
  core::DataStoreConfig frontend_cfg = base;
  frontend_cfg.node = clients + config.replicas;
  frontend_cfg.transport.remote = remote;
  frontend_cfg.transport.fanin = config.replicas;
  core::DataStore frontend_store("frontend", store, &model, frontend_cfg,
                                 trace);
  core::DataStoreConfig pub_cfg = base;
  pub_cfg.node = clients + config.replicas + 1;
  pub_cfg.transport.remote = remote;
  core::DataStore publisher_store("publisher", store, &model, pub_cfg, trace);

  Scheduler scheduler(engine, config.policy, total);
  std::deque<Request*> done;
  sim::Event done_event(engine);
  scheduler.set_resolve_event(&done_event);

  std::uint64_t published_version = 0;
  std::vector<std::unique_ptr<ReplicaServer>> replicas;
  for (int r = 0; r < config.replicas; ++r) {
    ReplicaConfig rc;
    rc.index = r;
    rc.name = "replica" + std::to_string(r);
    rc.model = util::Json::object();
    rc.model["model"] = model_spec;
    rc.model["device"] = config.device;
    rc.batch_overhead = config.batch_overhead;
    rc.poll_interval = config.poll_interval;
    rc.weights_key = kWeightsKey;
    rc.faults = config.faults;
    rc.seed = config.weight_seed;
    auto replica = std::make_unique<ReplicaServer>(
        engine, std::move(rc),
        replica_stores[static_cast<std::size_t>(r)].get(), &scheduler, trace);
    replica->set_published_version(&published_version);
    replica->set_on_complete([&done, &done_event](sim::Context&, Batch& b) {
      for (Request* req : b.requests) done.push_back(req);
      done_event.notify_all();
    });
    scheduler.add_replica(replica.get());
    replicas.push_back(std::move(replica));
  }

  // Requests live here from materialization to accounting; pointers are
  // stable (unique_ptr) while clients append in arrival order.
  std::vector<std::unique_ptr<Request>> pool;
  pool.reserve(static_cast<std::size_t>(total));

  // -- processes (spawn order is part of the deterministic schedule) --------

  engine.spawn("publisher", [&](sim::Context& ctx) {
    ai::Mlp mlp = ai::Mlp::from_json(model_spec);
    {
      const util::Payload w = pack_weights(1, mlp.flatten_parameters());
      publisher_store.stage_write(&ctx, kWeightsKey, w.view());
      published_version = 1;
    }
    if (config.weight_refresh_rate <= 0.0) return;
    util::Xoshiro256 rng(util::mix64(config.weight_seed ^ kRefreshSalt));
    SimTime next = ctx.now() + rng.next_exponential(config.weight_refresh_rate);
    while (!scheduler.finished()) {
      const SimTime gap = next - ctx.now();
      ctx.delay(gap > 0.0 ? std::min(gap, kPublisherHeartbeat)
                          : kPublisherHeartbeat);
      if (scheduler.finished()) return;
      if (ctx.now() < next) continue;
      // New parameter version: a fresh deterministic draw per version.
      util::Json spec = model_spec;
      spec["seed"] = config.weight_seed + published_version;
      ai::Mlp fresh = ai::Mlp::from_json(spec);
      const util::Payload w =
          pack_weights(published_version + 1, fresh.flatten_parameters());
      if (publisher_store.stage_write(&ctx, kWeightsKey, w.view()))
        ++published_version;
      next = ctx.now() + rng.next_exponential(config.weight_refresh_rate);
    }
  });

  for (auto& replica : replicas) {
    ReplicaServer* rp = replica.get();
    engine.spawn(rp->name(),
                 [rp](sim::Context& ctx) { rp->run(ctx); });
  }

  engine.spawn("scheduler",
               [&scheduler](sim::Context& ctx) { scheduler.run(ctx); });

  engine.spawn("frontend", [&](sim::Context& ctx) {
    const std::string backend(platform::backend_name(config.backend));
    while (!scheduler.finished() || !done.empty()) {
      if (done.empty()) {
        ctx.wait(done_event);
        continue;
      }
      Request* r = done.front();
      done.pop_front();
      // Response leg: the frontend pulls the staged response. Degraded
      // reads (outage windows) poll-retry — the value is at rest, so a
      // later attempt succeeds once the window closes.
      util::Payload resp;
      while (!frontend_store.stage_read(&ctx, r->response_key(), resp))
        ctx.delay(config.poll_interval);
      try {
        r->output = ai::unpack_tensor(resp.view());
      } catch (const util::SerializationError&) {
        // Undetected in-transit corruption (verify_integrity off): deliver
        // the replica-computed output; the request still completed.
      }
      r->completed = ctx.now();
      r->status = RequestStatus::Completed;
      frontend_store.clean_staged_data(&ctx, r->input_key());
      frontend_store.clean_staged_data(&ctx, r->response_key());
      if (trace != nullptr)
        trace->record_instant("frontend", "respond", ctx.now(),
                              static_cast<std::uint64_t>(resp.size()));
      if (obs::enabled()) {
        auto& reg = obs::registry();
        const SimTime now = ctx.now();
        reg.counter(obs::keys::kServeRequestsTotal, {{"status", "completed"}})
            .inc_at(1.0, now);
        reg.histogram(obs::keys::kServeRequestLatency, {{"backend", backend}},
                      obs::serve_latency_bounds())
            .observe_at(r->latency(), now);
        reg.histogram(obs::keys::kServePhaseSeconds, {{"phase", "queue"}},
                      obs::serve_latency_bounds())
            .observe_at(r->queue_time(), now);
        reg.histogram(obs::keys::kServePhaseSeconds, {{"phase", "batch"}},
                      obs::serve_latency_bounds())
            .observe_at(r->batch_time(), now);
        reg.histogram(obs::keys::kServePhaseSeconds, {{"phase", "compute"}},
                      obs::serve_latency_bounds())
            .observe_at(r->compute_time(), now);
        reg.histogram(obs::keys::kServePhaseSeconds, {{"phase", "transport"}},
                      obs::serve_latency_bounds())
            .observe_at(r->transport_time(), now);
        // SLO breach: snapshot the flight ring the first time a completed
        // request blows the configured latency bound.
        if (config.slo_latency > 0.0 && r->latency() > config.slo_latency)
          obs::flight().trigger("slo_breach");
        if (trace != nullptr) {
          sim::LabeledSpan span;
          span.track = "frontend";
          span.category = "serve_request";
          span.start = r->arrival;
          span.end = r->completed;
          if (obs::TraceContext* oc = obs::context(ctx.obs_id()))
            span.span_id = obs::next_span_id(*oc);
          span.labels = {{"id", std::to_string(r->id)},
                         {"client", std::to_string(r->client)},
                         {"replica", std::to_string(r->replica)},
                         {"attempts", std::to_string(r->attempts)}};
          obs::flight().record(sim::to_flight(span));
          trace->record_labeled_span(std::move(span));
        }
      }
      scheduler.on_resolved(ctx);
    }
  });

  const auto& arrivals = gen.arrivals();
  for (int c = 0; c < clients; ++c) {
    core::DataStore* cstore = client_stores[static_cast<std::size_t>(c)].get();
    engine.spawn("client" + std::to_string(c), [&, cstore,
                                                c](sim::Context& ctx) {
      const auto& times = arrivals[static_cast<std::size_t>(c)];
      for (std::size_t k = 0; k < times.size(); ++k) {
        if (times[k] > ctx.now()) ctx.delay(times[k] - ctx.now());
        pool.push_back(
            std::make_unique<Request>(gen.make_request(c, static_cast<int>(k))));
        Request* r = pool.back().get();
        if (!scheduler.admit(ctx, *r)) continue;  // shed: the 429 path
        // Request leg: stage the input through this client's store. The
        // replica's stage_read of the same key closes the client->replica
        // flow arrow when the obs plane is armed.
        const Bytes packed = ai::pack_tensor(r->input);
        cstore->stage_write(&ctx, r->input_key(), ByteView(packed));
        scheduler.enqueue(ctx, *r);
      }
    });
  }

  engine.run();
  result.makespan = engine.now();

  // -- accounting -----------------------------------------------------------
  if (pool.size() != static_cast<std::size_t>(total))
    throw Error("run_cluster: request pool diverged from the arrival table");
  std::sort(pool.begin(), pool.end(),
            [](const auto& a, const auto& b) { return a->id < b->id; });
  result.requests.reserve(pool.size());
  for (const auto& rp : pool) {
    const Request& r = *rp;
    if (r.status == RequestStatus::Pending)
      throw Error("run_cluster: request " + std::to_string(r.id) +
                  " never resolved");
    result.requests.push_back({r.id, r.client, r.replica, r.status,
                               r.attempts, r.arrival, r.batched,
                               r.compute_start, r.compute_end, r.completed});
    if (r.status != RequestStatus::Completed) {
      ++result.rejected;
      continue;
    }
    ++result.completed;
    result.last_completion = std::max(result.last_completion, r.completed);
    result.latency.add(r.latency());
    result.queue_phase.add(r.queue_time());
    result.batch_phase.add(r.batch_time());
    result.compute_phase.add(r.compute_time());
    result.transport_phase.add(r.transport_time());
  }
  result.batches = scheduler.batches_dispatched();
  result.failovers = scheduler.failovers();
  result.peak_queue_depth = scheduler.peak_queue_depth();
  for (const auto& replica : replicas)
    result.weight_refreshes += replica->weight_refreshes();
  if (result.rejected != scheduler.rejected())
    throw Error("run_cluster: rejection accounting diverged");
  return result;
}

}  // namespace simai::serve
