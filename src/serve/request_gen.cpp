#include "serve/request_gen.hpp"

#include <algorithm>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace simai::serve {

std::string_view request_status_name(RequestStatus status) {
  switch (status) {
    case RequestStatus::Pending: return "pending";
    case RequestStatus::Rejected: return "rejected";
    case RequestStatus::Completed: return "completed";
  }
  return "?";
}

namespace {
// Domain separation: the arrival streams and the input-value draws are
// independent families under one seed (the fault module's construction).
constexpr std::uint64_t kArrivalSalt = 0xa771fa1ull;
constexpr std::uint64_t kInputSalt = 0x17e4507ull;
}  // namespace

RequestGenerator::RequestGenerator(ArrivalConfig config,
                                   std::size_t in_features)
    : config_(std::move(config)), in_features_(in_features) {
  if (config_.clients <= 0)
    throw Error("RequestGenerator: clients must be positive");
  if (in_features_ == 0)
    throw Error("RequestGenerator: in_features must be positive");
  if (config_.input_rows == 0)
    throw Error("RequestGenerator: input_rows must be positive");

  const auto n_clients = static_cast<std::size_t>(config_.clients);
  arrivals_.assign(n_clients, {});
  ids_.assign(n_clients, {});

  if (!config_.trace.empty()) {
    // Trace mode: ids follow the global time order of the trace, requests
    // are dealt round-robin so every client carries its share of the load.
    std::vector<SimTime> sorted = config_.trace;
    std::stable_sort(sorted.begin(), sorted.end());
    for (std::size_t i = 0; i < sorted.size(); ++i) {
      if (sorted[i] < 0.0)
        throw Error("RequestGenerator: trace arrival times must be >= 0");
      const std::size_t c = i % n_clients;
      arrivals_[c].push_back(sorted[i]);
      ids_[c].push_back(static_cast<std::uint64_t>(i));
    }
    total_ = static_cast<int>(sorted.size());
    return;
  }

  if (config_.rate <= 0.0)
    throw Error("RequestGenerator: Poisson mode needs a positive rate");
  if (config_.requests_per_client <= 0)
    throw Error("RequestGenerator: requests_per_client must be positive");
  const double client_rate = config_.rate / config_.clients;
  for (int c = 0; c < config_.clients; ++c) {
    // Independent per-client stream: the same construction the fault
    // injector uses for per-node windows.
    util::Xoshiro256 rng(util::mix64(config_.seed ^ kArrivalSalt) +
                         static_cast<std::uint64_t>(c));
    SimTime t = 0.0;
    const auto ci = static_cast<std::size_t>(c);
    for (int k = 0; k < config_.requests_per_client; ++k) {
      t += rng.next_exponential(client_rate);
      arrivals_[ci].push_back(t);
      ids_[ci].push_back(static_cast<std::uint64_t>(c) *
                             static_cast<std::uint64_t>(
                                 config_.requests_per_client) +
                         static_cast<std::uint64_t>(k));
    }
  }
  total_ = config_.clients * config_.requests_per_client;
}

Request RequestGenerator::make_request(int client, int k) const {
  const auto ci = static_cast<std::size_t>(client);
  const auto ki = static_cast<std::size_t>(k);
  if (ci >= arrivals_.size() || ki >= arrivals_[ci].size())
    throw Error("RequestGenerator: request index out of range");
  Request r;
  r.id = ids_[ci][ki];
  r.client = client;
  r.rows = config_.input_rows;
  r.arrival = arrivals_[ci][ki];
  r.input = ai::Tensor(config_.input_rows, in_features_);
  // Keyed draws: the tensor depends only on (seed, id, cell), never on how
  // many requests were materialized before it.
  const std::uint64_t base = r.id * (config_.input_rows * in_features_);
  for (std::size_t row = 0; row < config_.input_rows; ++row)
    for (std::size_t col = 0; col < in_features_; ++col)
      r.input.at(row, col) =
          2.0 * util::keyed_uniform(config_.seed ^ kInputSalt,
                                    base + row * in_features_ + col) -
          1.0;
  return r;
}

}  // namespace simai::serve
