// One model-serving replica process (DESIGN.md §4.9).
//
// Lifecycle: at startup the replica polls the weights key until the
// publisher's first version lands, pulls the flat parameter vector through
// its DataStore (the weight transport is charged to the virtual clock at
// the configured backend's prices), and only then reports idle. Per batch
// it re-pulls weights when the published version moved (the seeded
// weight-refresh path), reads every request's input payload, runs ONE
// stacked forward through AiComponent::infer_batch, stages the per-request
// responses, and hands the batch to the frontend collector.
//
// Fault hook: the replica consults fault::FaultSchedule's ReplicaOutage
// stream. A batch whose [dispatch, responses-staged) span intersects an
// outage window is failed over — returned whole to the scheduler for
// re-dispatch to a survivor — and the dead replica sleeps until its window
// closes. Requests are never lost: ids, inputs, and attempt counts ride
// along and the re-run is deterministic.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <string>

#include "core/ai_component.hpp"
#include "fault/fault.hpp"
#include "serve/request.hpp"
#include "sim/engine.hpp"
#include "util/json.hpp"
#include "util/payload.hpp"
#include "util/types.hpp"

namespace simai::serve {

class Scheduler;

/// Published-weights wire format: u64 version, u64 count, count f64 values.
util::Payload pack_weights(std::uint64_t version,
                           const std::vector<double>& flat);
/// Returns the version; fills `flat` with the parameter vector.
std::uint64_t unpack_weights(const util::Payload& payload,
                             std::vector<double>& flat);

struct ReplicaConfig {
  int index = 0;
  std::string name = "replica0";     // process/track name
  util::Json model;                  // inference-only AiComponent config
  SimTime batch_overhead = 2e-4;     // fixed per-dispatch cost (s)
  SimTime poll_interval = 5e-4;      // startup weight-poll spacing (s)
  std::string weights_key = "serve/weights";
  const fault::FaultSchedule* faults = nullptr;  // may be null (no outages)
  std::uint64_t seed = 7;
};

class ReplicaServer {
 public:
  /// `store` is this replica's DataStore (its own node id / pricing
  /// context over the cluster's shared backing store); `scheduler`
  /// receives failover requeues and idle notifications.
  ReplicaServer(sim::Engine& engine, ReplicaConfig config,
                core::DataStore* store, Scheduler* scheduler,
                sim::TraceRecorder* trace = nullptr);

  /// Invoked after a batch's responses are staged (the frontend collector
  /// hooks this to start the response legs).
  void set_on_complete(std::function<void(sim::Context&, Batch&)> fn) {
    on_complete_ = std::move(fn);
  }
  /// The publisher's version counter; a batch observing a newer version
  /// than the loaded one triggers a weight re-pull before computing.
  void set_published_version(const std::uint64_t* version) {
    published_version_ = version;
  }

  /// Scheduler dispatch: marks the replica busy immediately so it is never
  /// double-booked before its process runs.
  void enqueue(sim::Context& ctx, Batch batch);
  /// Ask the process to exit once its mailbox drains.
  void shutdown(sim::Context& ctx);

  bool busy() const { return busy_; }
  bool down(SimTime t) const {
    return config_.faults != nullptr &&
           config_.faults->replica_down(config_.index, t);
  }
  SimTime down_until(SimTime t) const {
    return config_.faults == nullptr
               ? t
               : config_.faults->replica_outage_end_after(config_.index, t);
  }

  /// Process body (spawn under config().name).
  void run(sim::Context& ctx);

  int index() const { return config_.index; }
  const std::string& name() const { return config_.name; }
  const ReplicaConfig& config() const { return config_; }
  std::uint64_t batches_served() const { return batches_served_; }
  std::uint64_t weight_refreshes() const { return weight_refreshes_; }
  std::uint64_t loaded_weight_version() const { return weight_version_; }
  core::AiComponent& ai() { return ai_; }

 private:
  /// Read + load the published weights; false when the read degraded.
  bool pull_weights(sim::Context& ctx);
  /// True when an outage intersects [t0, t1) for this replica.
  bool died_within(SimTime t0, SimTime t1) const;
  void serve_batch(sim::Context& ctx, Batch& batch);

  ReplicaConfig config_;
  core::DataStore* store_;
  Scheduler* scheduler_;
  sim::TraceRecorder* trace_;
  core::AiComponent ai_;
  std::function<void(sim::Context&, Batch&)> on_complete_;
  const std::uint64_t* published_version_ = nullptr;

  std::deque<Batch> mailbox_;
  sim::Event mail_;
  bool busy_ = true;  // not ready until the startup weight pull completes
  bool stop_ = false;
  std::uint64_t weight_version_ = 0;  // 0 = nothing loaded yet
  std::uint64_t batches_served_ = 0;
  std::uint64_t weight_refreshes_ = 0;
};

}  // namespace simai::serve
