#include "serve/scheduler.hpp"

#include <algorithm>

#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "serve/replica.hpp"
#include "util/error.hpp"

namespace simai::serve {

Scheduler::Scheduler(sim::Engine& engine, SchedulerPolicy policy,
                     int total_requests)
    : engine_(engine),
      policy_(policy),
      wake_(engine),
      remaining_(total_requests) {
  if (policy_.max_batch_size == 0)
    throw ConfigError("Scheduler: max_batch_size must be positive");
  if (policy_.max_queue_delay < 0.0)
    throw ConfigError("Scheduler: max_queue_delay must be >= 0");
  if (total_requests <= 0)
    throw ConfigError("Scheduler: total_requests must be positive");
}

void Scheduler::add_replica(ReplicaServer* replica) {
  replicas_.push_back(replica);
}

void Scheduler::note_depth(sim::Context& ctx) {
  peak_depth_ = std::max(peak_depth_, depth());
  if (obs::enabled())
    obs::registry()
        .gauge(obs::keys::kServeQueueDepth)
        .set(static_cast<double>(depth()));
  (void)ctx;
}

bool Scheduler::admit(sim::Context& ctx, Request& r) {
  if (policy_.max_queue_depth != 0 && depth() >= policy_.max_queue_depth) {
    // Shed: the client learns immediately and the payload never stages.
    r.status = RequestStatus::Rejected;
    ++rejected_;
    --remaining_;
    if (obs::enabled())
      obs::registry()
          .counter(obs::keys::kServeRequestsTotal, {{"status", "rejected"}})
          .inc();
    // A shed request resolves here, not at the frontend: wake both loops so
    // a run whose *last* request is shed still terminates.
    wake_.notify_all();
    if (resolve_event_) resolve_event_->notify_all();
    (void)ctx;
    return false;
  }
  ++reserved_;  // slot held while the client stages the input payload
  note_depth(ctx);
  return true;
}

void Scheduler::enqueue(sim::Context& ctx, Request& r) {
  if (reserved_ == 0) throw Error("Scheduler: enqueue without admission");
  --reserved_;
  queue_.push_back({&r, ctx.now()});
  note_depth(ctx);
  wake_.notify_all();
}

void Scheduler::requeue_failover(sim::Context& ctx, Batch batch) {
  ++failovers_;
  if (obs::enabled())
    obs::registry().counter(obs::keys::kServeFailoversTotal).inc();
  // Front of the queue, original order preserved: these requests have
  // already waited once and must not starve behind fresh arrivals.
  for (auto it = batch.requests.rbegin(); it != batch.requests.rend(); ++it)
    queue_.push_front({*it, ctx.now()});
  note_depth(ctx);
  wake_.notify_all();
}

void Scheduler::notify_idle(sim::Context& ctx) {
  (void)ctx;
  wake_.notify_all();
}

void Scheduler::on_resolved(sim::Context& ctx) {
  (void)ctx;
  --remaining_;
  wake_.notify_all();
}

ReplicaServer* Scheduler::pick_replica(SimTime now, bool& all_down,
                                       SimTime& next_up) {
  all_down = true;
  next_up = now;
  for (std::size_t i = 0; i < replicas_.size(); ++i) {
    ReplicaServer* r = replicas_[(next_rr_ + i) % replicas_.size()];
    if (r->down(now)) {
      const SimTime up = r->down_until(now);
      if (all_down) next_up = next_up == now ? up : std::min(next_up, up);
      continue;
    }
    all_down = false;
    if (r->busy()) continue;
    next_rr_ = (next_rr_ + i + 1) % replicas_.size();
    return r;
  }
  return nullptr;
}

void Scheduler::run(sim::Context& ctx) {
  if (replicas_.empty()) throw ConfigError("Scheduler: no replicas");
  while (remaining_ > 0) {
    if (queue_.empty()) {
      ctx.wait(wake_);
      continue;
    }
    // Continuous batching: flush immediately when full, otherwise give the
    // head at most max_queue_delay to accumulate company.
    const SimTime deadline = queue_.front().enqueued + policy_.max_queue_delay;
    if (queue_.size() < policy_.max_batch_size && ctx.now() < deadline) {
      ctx.wait_for(wake_, deadline - ctx.now());
      continue;  // re-evaluate: queue may have grown or been flushed
    }
    bool all_down = false;
    SimTime next_up = ctx.now();
    ReplicaServer* replica = pick_replica(ctx.now(), all_down, next_up);
    if (replica == nullptr) {
      if (all_down && next_up > ctx.now()) {
        // Every replica is in an outage window: sleep exactly until the
        // first one returns (the fault timeline is known and seeded).
        ctx.delay(next_up - ctx.now());
      } else {
        ctx.wait(wake_);  // all merely busy: a completion will wake us
      }
      continue;
    }
    Batch batch;
    batch.id = ++batch_seq_;
    while (!queue_.empty() && batch.requests.size() < policy_.max_batch_size) {
      Request* r = queue_.front().request;
      queue_.pop_front();
      r->batched = ctx.now();
      ++r->attempts;
      batch.requests.push_back(r);
    }
    ++batches_;
    note_depth(ctx);
    if (obs::enabled())
      obs::registry()
          .histogram(obs::keys::kServeBatchRows)
          .observe(static_cast<double>(batch.total_rows()));
    replica->enqueue(ctx, std::move(batch));
  }
  for (ReplicaServer* r : replicas_) r->shutdown(ctx);
}

}  // namespace simai::serve
