#include "io/h5lite.hpp"

#include <cstring>

#include "util/buffer.hpp"
#include "util/string_util.hpp"

namespace simai::io {

namespace {
constexpr char kMagic[8] = {'S', 'A', 'I', 'H', '5', 'L', 'T', 'E'};
constexpr char kEndMagic[8] = {'S', 'A', 'I', 'H', '5', 'E', 'N', 'D'};
constexpr std::uint32_t kVersion = 1;
constexpr std::uint64_t kHeaderSize = 12;  // magic + version
constexpr std::uint64_t kTrailerSize = 24;  // offset + size + magic
}  // namespace

std::string_view dtype_name(DType t) {
  switch (t) {
    case DType::F64: return "f64";
    case DType::I64: return "i64";
    case DType::U8: return "u8";
  }
  return "?";
}

std::size_t dtype_size(DType t) {
  switch (t) {
    case DType::F64: return 8;
    case DType::I64: return 8;
    case DType::U8: return 1;
  }
  return 1;
}

std::uint64_t DatasetInfo::element_count() const {
  std::uint64_t n = 1;
  for (std::uint64_t d : shape) n *= d;
  return shape.empty() ? 0 : n;
}

std::string H5File::normalize(const std::string& path) {
  if (path.empty() || path[0] != '/')
    throw H5Error("h5: path must start with '/': '" + path + "'");
  if (path == "/") return "/";
  std::string out;
  for (const std::string& part : util::split(path.substr(1), '/')) {
    if (part.empty())
      throw H5Error("h5: empty path component in '" + path + "'");
    out += '/';
    out += part;
  }
  return out.empty() ? "/" : out;
}

H5File::H5File(const std::filesystem::path& path, Mode mode)
    : path_(path), mode_(mode) {
  namespace fs = std::filesystem;
  if (mode == Mode::Create) {
    file_.open(path, std::ios::binary | std::ios::in | std::ios::out |
                         std::ios::trunc);
    if (!file_) throw H5Error("h5: cannot create '" + path.string() + "'");
    file_.write(kMagic, sizeof kMagic);
    const std::uint32_t v = kVersion;
    file_.write(reinterpret_cast<const char*>(&v), sizeof v);
    payload_end_ = kHeaderSize;
    objects_["/"] = Object{true, DType::F64, {}, 0, 0, util::Json::object()};
    dirty_ = true;
    flush();
    return;
  }
  if (!fs::exists(path))
    throw H5Error("h5: file does not exist: '" + path.string() + "'");
  file_.open(path, mode == Mode::ReadOnly
                       ? (std::ios::binary | std::ios::in)
                       : (std::ios::binary | std::ios::in | std::ios::out));
  if (!file_) throw H5Error("h5: cannot open '" + path.string() + "'");
  load_table();
}

H5File::~H5File() {
  try {
    close();
  } catch (...) {
    // Destructors must not throw; an unflushed table is detectable on
    // reopen (trailer magic mismatch).
  }
}

void H5File::ensure_open() const {
  if (closed_) throw H5Error("h5: file is closed");
}

void H5File::ensure_writable() const {
  ensure_open();
  if (mode_ == Mode::ReadOnly)
    throw H5Error("h5: file opened read-only: '" + path_.string() + "'");
}

void H5File::ensure_parents(const std::string& path) {
  // Create every ancestor group of `path` (excluding path itself).
  std::string prefix;
  const std::string body = path.substr(1);
  const auto parts = util::split(body, '/');
  for (std::size_t i = 0; i + 1 < parts.size(); ++i) {
    prefix += '/';
    prefix += parts[i];
    auto it = objects_.find(prefix);
    if (it == objects_.end()) {
      objects_[prefix] =
          Object{true, DType::F64, {}, 0, 0, util::Json::object()};
      dirty_ = true;
    } else if (!it->second.is_group) {
      throw H5Error("h5: '" + prefix + "' is a dataset, not a group");
    }
  }
}

void H5File::create_group(const std::string& raw) {
  ensure_writable();
  const std::string path = normalize(raw);
  if (path == "/") return;
  ensure_parents(path + "/x");  // ancestors of path
  auto it = objects_.find(path);
  if (it != objects_.end()) {
    if (!it->second.is_group)
      throw H5Error("h5: '" + path + "' already exists as a dataset");
    return;
  }
  objects_[path] = Object{true, DType::F64, {}, 0, 0, util::Json::object()};
  dirty_ = true;
}

bool H5File::has_group(const std::string& raw) const {
  const auto it = objects_.find(normalize(raw));
  return it != objects_.end() && it->second.is_group;
}

bool H5File::has_dataset(const std::string& raw) const {
  const auto it = objects_.find(normalize(raw));
  return it != objects_.end() && !it->second.is_group;
}

std::vector<std::string> H5File::list(const std::string& raw) const {
  ensure_open();
  const std::string path = normalize(raw);
  const std::string prefix = path == "/" ? "/" : path + "/";
  std::vector<std::string> out;
  for (const auto& [obj_path, obj] : objects_) {
    if (obj_path == "/" || !util::starts_with(obj_path, prefix)) continue;
    const std::string rest = obj_path.substr(prefix.size());
    if (rest.find('/') == std::string::npos) out.push_back(rest);
  }
  return out;
}

std::vector<std::string> H5File::dataset_paths() const {
  std::vector<std::string> out;
  for (const auto& [path, obj] : objects_)
    if (!obj.is_group) out.push_back(path);
  return out;
}

void H5File::write_raw(const std::string& raw, DType dtype, ByteView bytes,
                       std::vector<std::uint64_t> shape) {
  ensure_writable();
  const std::string path = normalize(raw);
  if (path == "/") throw H5Error("h5: cannot write a dataset at '/'");
  ensure_parents(path);
  if (shape.empty())
    shape = {static_cast<std::uint64_t>(bytes.size() / dtype_size(dtype))};
  std::uint64_t elems = 1;
  for (std::uint64_t d : shape) elems *= d;
  if (elems * dtype_size(dtype) != bytes.size())
    throw H5Error("h5: shape does not match data size for '" + path + "'");

  auto it = objects_.find(path);
  if (it != objects_.end() && it->second.is_group)
    throw H5Error("h5: '" + path + "' already exists as a group");

  // Append payload (overwrites leave the old extent dead; see compact()).
  file_.seekp(static_cast<std::streamoff>(payload_end_));
  file_.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
  if (!file_) throw H5Error("h5: payload write failed for '" + path + "'");

  Object obj;
  obj.is_group = false;
  obj.dtype = dtype;
  obj.shape = std::move(shape);
  obj.offset = payload_end_;
  obj.bytes = bytes.size();
  obj.attributes = it != objects_.end() ? it->second.attributes
                                        : util::Json::object();
  objects_[path] = std::move(obj);
  payload_end_ += bytes.size();
  dirty_ = true;
}

void H5File::write(const std::string& path, std::span<const double> data,
                   std::vector<std::uint64_t> shape) {
  write_raw(path, DType::F64,
            ByteView(reinterpret_cast<const std::byte*>(data.data()),
                     data.size() * sizeof(double)),
            std::move(shape));
}

void H5File::write(const std::string& path,
                   std::span<const std::int64_t> data,
                   std::vector<std::uint64_t> shape) {
  write_raw(path, DType::I64,
            ByteView(reinterpret_cast<const std::byte*>(data.data()),
                     data.size() * sizeof(std::int64_t)),
            std::move(shape));
}

void H5File::write(const std::string& path, ByteView data,
                   std::vector<std::uint64_t> shape) {
  write_raw(path, DType::U8, data, std::move(shape));
}

DatasetInfo H5File::info(const std::string& raw) const {
  ensure_open();
  const std::string path = normalize(raw);
  const auto it = objects_.find(path);
  if (it == objects_.end() || it->second.is_group)
    throw H5Error("h5: no dataset at '" + path + "'");
  DatasetInfo d;
  d.path = path;
  d.dtype = it->second.dtype;
  d.shape = it->second.shape;
  return d;
}

Bytes H5File::read_raw(const std::string& raw, DType expected) const {
  ensure_open();
  const std::string path = normalize(raw);
  const auto it = objects_.find(path);
  if (it == objects_.end() || it->second.is_group)
    throw H5Error("h5: no dataset at '" + path + "'");
  if (it->second.dtype != expected)
    throw H5Error("h5: dataset '" + path + "' is " +
                  std::string(dtype_name(it->second.dtype)) + ", not " +
                  std::string(dtype_name(expected)));
  Bytes out(static_cast<std::size_t>(it->second.bytes));
  file_.seekg(static_cast<std::streamoff>(it->second.offset));
  file_.read(reinterpret_cast<char*>(out.data()),
             static_cast<std::streamsize>(out.size()));
  if (!file_) throw H5Error("h5: payload read failed for '" + path + "'");
  return out;
}

std::vector<double> H5File::read_f64(const std::string& path) const {
  const Bytes raw = read_raw(path, DType::F64);
  std::vector<double> out(raw.size() / sizeof(double));
  std::memcpy(out.data(), raw.data(), raw.size());
  return out;
}

std::vector<std::int64_t> H5File::read_i64(const std::string& path) const {
  const Bytes raw = read_raw(path, DType::I64);
  std::vector<std::int64_t> out(raw.size() / sizeof(std::int64_t));
  std::memcpy(out.data(), raw.data(), raw.size());
  return out;
}

Bytes H5File::read_u8(const std::string& path) const {
  return read_raw(path, DType::U8);
}

void H5File::set_attribute(const std::string& raw, const std::string& name,
                           util::Json value) {
  ensure_writable();
  const std::string path = normalize(raw);
  const auto it = objects_.find(path);
  if (it == objects_.end())
    throw H5Error("h5: no object at '" + path + "' for attribute");
  it->second.attributes[name] = std::move(value);
  dirty_ = true;
}

std::optional<util::Json> H5File::attribute(const std::string& raw,
                                            const std::string& name) const {
  ensure_open();
  const auto it = objects_.find(normalize(raw));
  if (it == objects_.end()) return std::nullopt;
  const util::Json* v = it->second.attributes.find(name);
  if (!v) return std::nullopt;
  return *v;
}

std::vector<std::string> H5File::attribute_names(
    const std::string& raw) const {
  ensure_open();
  const auto it = objects_.find(normalize(raw));
  std::vector<std::string> out;
  if (it != objects_.end() && it->second.attributes.is_object()) {
    for (const auto& [k, v] : it->second.attributes.as_object())
      out.push_back(k);
  }
  return out;
}

void H5File::store_table() {
  util::ByteWriter table;
  table.u64(objects_.size());
  for (const auto& [path, obj] : objects_) {
    table.str(path);
    table.u8(obj.is_group ? 1 : 0);
    table.u8(static_cast<std::uint8_t>(obj.dtype));
    table.u32(static_cast<std::uint32_t>(obj.shape.size()));
    for (std::uint64_t d : obj.shape) table.u64(d);
    table.u64(obj.offset);
    table.u64(obj.bytes);
    table.str(obj.attributes.dump());
  }
  file_.seekp(static_cast<std::streamoff>(payload_end_));
  file_.write(reinterpret_cast<const char*>(table.data().data()),
              static_cast<std::streamsize>(table.size()));
  util::ByteWriter trailer;
  trailer.u64(payload_end_);
  trailer.u64(table.size());
  trailer.raw(ByteView(reinterpret_cast<const std::byte*>(kEndMagic), 8));
  file_.write(reinterpret_cast<const char*>(trailer.data().data()),
              static_cast<std::streamsize>(trailer.size()));
  file_.flush();
  if (!file_) throw H5Error("h5: table write failed");
  // Truncate any stale bytes beyond the new trailer (shrinking rewrites).
  std::error_code ec;
  std::filesystem::resize_file(
      path_, payload_end_ + table.size() + kTrailerSize, ec);
}

void H5File::load_table() {
  file_.seekg(0, std::ios::end);
  const std::uint64_t file_size =
      static_cast<std::uint64_t>(file_.tellg());
  if (file_size < kHeaderSize + kTrailerSize)
    throw H5Error("h5: file too small: '" + path_.string() + "'");
  char magic[8];
  file_.seekg(0);
  file_.read(magic, 8);
  if (std::memcmp(magic, kMagic, 8) != 0)
    throw H5Error("h5: bad magic in '" + path_.string() + "'");

  file_.seekg(static_cast<std::streamoff>(file_size - kTrailerSize));
  Bytes trailer(kTrailerSize);
  file_.read(reinterpret_cast<char*>(trailer.data()), kTrailerSize);
  util::ByteReader tr((ByteView(trailer)));
  const std::uint64_t table_offset = tr.u64();
  const std::uint64_t table_size = tr.u64();
  if (std::memcmp(trailer.data() + 16, kEndMagic, 8) != 0)
    throw H5Error("h5: missing end trailer (unflushed file?): '" +
                  path_.string() + "'");
  if (table_offset + table_size + kTrailerSize != file_size)
    throw H5Error("h5: corrupt trailer in '" + path_.string() + "'");

  Bytes table(static_cast<std::size_t>(table_size));
  file_.seekg(static_cast<std::streamoff>(table_offset));
  file_.read(reinterpret_cast<char*>(table.data()),
             static_cast<std::streamsize>(table.size()));
  util::ByteReader r((ByteView(table)));
  const std::uint64_t count = r.u64();
  for (std::uint64_t i = 0; i < count; ++i) {
    const std::string path = r.str();
    Object obj;
    obj.is_group = r.u8() != 0;
    obj.dtype = static_cast<DType>(r.u8());
    const std::uint32_t ndims = r.u32();
    for (std::uint32_t d = 0; d < ndims; ++d) obj.shape.push_back(r.u64());
    obj.offset = r.u64();
    obj.bytes = r.u64();
    obj.attributes = util::Json::parse(r.str());
    objects_[path] = std::move(obj);
  }
  payload_end_ = table_offset;
}

void H5File::flush() {
  ensure_open();
  if (!dirty_ || mode_ == Mode::ReadOnly) return;
  store_table();
  dirty_ = false;
}

void H5File::close() {
  if (closed_) return;
  if (dirty_ && mode_ != Mode::ReadOnly) flush();
  file_.close();
  closed_ = true;
}

std::uint64_t H5File::compact() {
  ensure_writable();
  // Rewrite payloads back to back into a fresh file, then swap tables.
  const std::uint64_t before = payload_end_;
  const std::filesystem::path tmp = path_.string() + ".compact";
  {
    H5File out(tmp, Mode::Create);
    for (const auto& [path, obj] : objects_) {
      if (obj.is_group) {
        if (path != "/") out.create_group(path);
      } else {
        Bytes data = read_raw(path, obj.dtype);
        out.write_raw(path, obj.dtype, ByteView(data), obj.shape);
      }
      for (const auto& name : attribute_names(path)) {
        out.set_attribute(path, name, *attribute(path, name));
      }
    }
    out.close();
  }
  file_.close();
  std::filesystem::rename(tmp, path_);
  file_.open(path_, std::ios::binary | std::ios::in | std::ios::out);
  objects_.clear();
  load_table();
  dirty_ = false;
  return before - payload_end_;
}

}  // namespace simai::io
