// H5Lite: a miniature hierarchical scientific data file — the HDF5
// stand-in for the IO kernels (the paper's Kernels module does its I/O
// through HDF5; §3.1).
//
// One file holds a tree of groups and datasets addressed by POSIX-style
// paths ("/fields/velocity"). Datasets are typed (f64 / i64 / u8),
// n-dimensional, and carry JSON attributes; groups carry attributes too.
//
// On-disk layout (little-endian):
//   [magic "SAIH5LTE"][u32 version]
//   ... dataset payloads, appended sequentially ...
//   [object table: count + records (path, type, shape, attrs, offset, size)]
//   [trailer: u64 table offset, u64 table size, magic "SAIH5END"]
// The object table is rewritten on every flush/close; reopening reads the
// trailer first — the same index-at-end design HDF5 and BP files use so
// writers never seek backwards into payload data.
#pragma once

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <map>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "util/error.hpp"
#include "util/json.hpp"
#include "util/types.hpp"

namespace simai::io {

class H5Error : public Error {
 public:
  using Error::Error;
};

enum class DType { F64, I64, U8 };
std::string_view dtype_name(DType t);
std::size_t dtype_size(DType t);

/// Metadata for one dataset.
struct DatasetInfo {
  std::string path;
  DType dtype = DType::F64;
  std::vector<std::uint64_t> shape;
  std::uint64_t element_count() const;
  std::uint64_t byte_count() const {
    return element_count() * dtype_size(dtype);
  }
};

class H5File {
 public:
  enum class Mode { Create, ReadOnly, ReadWrite };

  H5File(const std::filesystem::path& path, Mode mode);
  ~H5File();
  H5File(const H5File&) = delete;
  H5File& operator=(const H5File&) = delete;

  // -- structure -------------------------------------------------------

  /// Create a group (parents created implicitly); no-op if it exists.
  void create_group(const std::string& path);
  bool has_group(const std::string& path) const;
  bool has_dataset(const std::string& path) const;
  /// Immediate children (group and dataset names) under a group path.
  std::vector<std::string> list(const std::string& path) const;
  /// All dataset paths, sorted.
  std::vector<std::string> dataset_paths() const;

  // -- datasets ----------------------------------------------------------

  void write(const std::string& path, std::span<const double> data,
             std::vector<std::uint64_t> shape = {});
  void write(const std::string& path, std::span<const std::int64_t> data,
             std::vector<std::uint64_t> shape = {});
  void write(const std::string& path, ByteView data,
             std::vector<std::uint64_t> shape = {});

  DatasetInfo info(const std::string& path) const;
  std::vector<double> read_f64(const std::string& path) const;
  std::vector<std::int64_t> read_i64(const std::string& path) const;
  Bytes read_u8(const std::string& path) const;

  // -- attributes ----------------------------------------------------------

  /// Attach a JSON value as an attribute of a group or dataset.
  void set_attribute(const std::string& object_path, const std::string& name,
                     util::Json value);
  std::optional<util::Json> attribute(const std::string& object_path,
                                      const std::string& name) const;
  std::vector<std::string> attribute_names(
      const std::string& object_path) const;

  // -- lifecycle -----------------------------------------------------------

  /// Persist the object table; the file is valid on disk afterwards.
  void flush();
  /// Flush and close; further operations throw.
  void close();

  /// Rewrite the file without dead payload space (overwritten datasets
  /// leave holes, like HDF5 without h5repack). Returns bytes reclaimed.
  std::uint64_t compact();

  const std::filesystem::path& path() const { return path_; }
  bool writable() const { return mode_ != Mode::ReadOnly; }

 private:
  struct Object {
    bool is_group = false;
    DType dtype = DType::F64;
    std::vector<std::uint64_t> shape;
    std::uint64_t offset = 0;  // payload offset (datasets)
    std::uint64_t bytes = 0;
    util::Json attributes;  // object
  };

  static std::string normalize(const std::string& path);
  void ensure_open() const;
  void ensure_writable() const;
  void ensure_parents(const std::string& path);
  void write_raw(const std::string& path, DType dtype, ByteView bytes,
                 std::vector<std::uint64_t> shape);
  Bytes read_raw(const std::string& path, DType expected) const;
  void load_table();
  void store_table();

  std::filesystem::path path_;
  Mode mode_;
  mutable std::fstream file_;
  std::map<std::string, Object> objects_;
  std::uint64_t payload_end_ = 0;  // next payload append offset
  bool dirty_ = false;
  bool closed_ = false;
};

}  // namespace simai::io
