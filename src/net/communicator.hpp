// In-process message-passing layer with MPI semantics, over the DES.
//
// This substrate replaces mpi4py/oneCCL in the reference implementation:
// a Communicator groups N ranks (each a DES logical process), provides
// tagged point-to-point send/recv with per-(source,tag) FIFO ordering, and
// the collectives the Kernels and AI modules need (barrier, bcast, reduce,
// allreduce, gather, allgather, scatter, alltoall). Collectives are built
// from p2p messages with the classic binomial-tree / linear algorithms, so
// their virtual-time cost scales with log(P) or P exactly as a real MPI
// run's would when a LinkCost function is installed.
#pragma once

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "sim/engine.hpp"
#include "util/error.hpp"
#include "util/types.hpp"

namespace simai::net {

class NetError : public Error {
 public:
  using Error::Error;
};

/// Reduction operators for reduce/allreduce.
enum class ReduceOp { Sum, Max, Min, Prod };

/// Virtual-time cost of moving `bytes` across one link hop. Installed by the
/// platform layer; nullptr means communication is free (pure coordination).
using LinkCost = std::function<SimTime(std::uint64_t bytes)>;

class Communicator {
 public:
  /// Create a communicator for `nranks` ranks inside `engine`.
  Communicator(sim::Engine& engine, int nranks);

  int size() const { return nranks_; }

  /// Install the per-hop cost model (applies to subsequent operations).
  void set_link_cost(LinkCost cost) { link_cost_ = std::move(cost); }

  // -- point-to-point (call only from the owning rank's process) ----------

  /// Blocking tagged send. With the default infinite buffering this only
  /// charges the link cost and returns; ordering per (src,dst,tag) is FIFO.
  void send(sim::Context& ctx, int from, int to, int tag, Bytes data);

  /// Blocking receive matching (from, tag).
  Bytes recv(sim::Context& ctx, int at, int from, int tag);

  /// Non-blocking probe: true if a matching message is queued.
  bool probe(int at, int from, int tag) const;

  // -- collectives (every rank of the communicator must call) -------------

  void barrier(sim::Context& ctx, int rank);

  /// Broadcast `data` from `root`; on non-roots the return value is the
  /// received buffer (the argument is ignored).
  std::vector<double> bcast(sim::Context& ctx, int rank, int root,
                            std::vector<double> data);

  /// Element-wise reduction to `root` (others receive an empty vector).
  std::vector<double> reduce(sim::Context& ctx, int rank, int root,
                             const std::vector<double>& data, ReduceOp op);

  /// Reduction delivered to every rank.
  std::vector<double> allreduce(sim::Context& ctx, int rank,
                                const std::vector<double>& data, ReduceOp op);

  /// Concatenation of every rank's buffer at `root`, in rank order.
  std::vector<double> gather(sim::Context& ctx, int rank, int root,
                             const std::vector<double>& data);

  /// Concatenation delivered to every rank.
  std::vector<double> allgather(sim::Context& ctx, int rank,
                                const std::vector<double>& data);

  /// Root splits `data` into equal chunks; rank i receives chunk i.
  std::vector<double> scatter(sim::Context& ctx, int rank, int root,
                              const std::vector<double>& data);

  /// Rank i's chunk j goes to rank j's slot i. `data` holds size() equal
  /// chunks back to back.
  std::vector<double> alltoall(sim::Context& ctx, int rank,
                               const std::vector<double>& data);

 private:
  struct Message {
    int tag;
    Bytes data;
  };
  struct Mailbox {
    // (src, tag) -> FIFO of payloads.
    std::map<std::pair<int, int>, std::deque<Bytes>> queues;
    std::unique_ptr<sim::Event> arrival;
  };

  void check_rank(int rank, const char* what) const;
  void charge(sim::Context& ctx, std::uint64_t bytes);
  static void apply_op(std::vector<double>& acc,
                       const std::vector<double>& other, ReduceOp op);

  // Typed helpers layered on the byte p2p.
  void send_doubles(sim::Context& ctx, int from, int to, int tag,
                    const std::vector<double>& v);
  std::vector<double> recv_doubles(sim::Context& ctx, int at, int from,
                                   int tag);

  sim::Engine& engine_;
  int nranks_;
  std::vector<Mailbox> mailboxes_;
  LinkCost link_cost_;
  // Collective-internal tags live in a reserved negative range so they can
  // never collide with user tags (which must be >= 0).
  static constexpr int kBarrierTag = -1;
  static constexpr int kBcastTag = -2;
  static constexpr int kReduceTag = -3;
  static constexpr int kGatherTag = -4;
  static constexpr int kScatterTag = -5;
  static constexpr int kAlltoallTag = -6;
};

/// Serialize/deserialize doubles for transport (little-endian, length-free:
/// the byte count determines the element count).
Bytes pack_doubles(const std::vector<double>& v);
std::vector<double> unpack_doubles(ByteView data);

}  // namespace simai::net
