// Thin RAII wrappers over POSIX stream sockets (Unix-domain).
//
// The MiniRedis backend speaks real RESP2 over real sockets so its data path
// has genuine serialization and kernel round-trips, exactly like the Redis
// deployments the paper benchmarks. Unix-domain sockets are used because the
// whole simulated machine lives in one OS process; the protocol layer above
// is transport-agnostic.
#pragma once

#include <atomic>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "util/error.hpp"
#include "util/payload.hpp"
#include "util/types.hpp"

namespace simai::net {

class SocketError : public Error {
 public:
  using Error::Error;
};

/// Owning file-descriptor wrapper with blocking full-buffer I/O helpers.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { close(); }
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;
  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept;

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }
  void close();

  /// Write the entire buffer; throws SocketError on failure/EOF.
  void send_all(ByteView data);
  void send_all(std::string_view text) { send_all(as_bytes_view(text)); }

  /// Scatter-gather write: send every frame, in order, without
  /// concatenating them first (::writev under the hood). The frame list is
  /// what resp::encode_frames produces — large payloads go straight from
  /// their owning buffer to the kernel.
  void send_frames(const std::vector<util::Payload>& frames);

  /// Read exactly n bytes; throws SocketError on failure or premature EOF.
  Bytes recv_exact(std::size_t n);

  /// Read at most n bytes (one recv call); empty result means orderly EOF.
  Bytes recv_some(std::size_t n);

  /// Read at most out.size() bytes into caller-provided storage (one recv
  /// call); returns the byte count, 0 on orderly EOF. The zero-copy
  /// receive path — pairs with resp::Decoder::prepare/commit.
  std::size_t recv_into(std::span<std::byte> out);

 private:
  int fd_ = -1;
};

/// Listening Unix-domain socket bound to a filesystem path.
class UnixListener {
 public:
  explicit UnixListener(const std::string& path, int backlog = 64);
  ~UnixListener();
  UnixListener(const UnixListener&) = delete;
  UnixListener& operator=(const UnixListener&) = delete;

  /// Block until a client connects; nullopt if the listener was shut down.
  std::optional<Socket> accept();

  /// Unblock any accept() in progress and stop accepting (idempotent,
  /// thread-safe). Half-closes the socket but does NOT close the fd — a
  /// concurrently blocked accept() still dereferences it; the fd is closed
  /// in the destructor, which the owner runs after joining acceptors.
  void shutdown();

  const std::string& path() const { return path_; }

 private:
  std::string path_;
  // Written by the constructor, read by the acceptor thread and shutdown():
  // atomic so the cross-thread handoff is well-defined under TSan. The fd
  // value itself never changes between construction and destruction.
  std::atomic<int> fd_{-1};
  std::atomic<bool> shutdown_{false};
};

/// Connect to a Unix-domain listener; throws SocketError on failure.
Socket unix_connect(const std::string& path);

}  // namespace simai::net
