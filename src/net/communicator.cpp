#include "net/communicator.hpp"

#include <algorithm>
#include <cstring>

namespace simai::net {

Bytes pack_doubles(const std::vector<double>& v) {
  Bytes out(v.size() * sizeof(double));
  if (!v.empty()) std::memcpy(out.data(), v.data(), out.size());
  return out;
}

std::vector<double> unpack_doubles(ByteView data) {
  if (data.size() % sizeof(double) != 0)
    throw NetError("unpack_doubles: byte count not a multiple of 8");
  std::vector<double> out(data.size() / sizeof(double));
  if (!out.empty()) std::memcpy(out.data(), data.data(), data.size());
  return out;
}

Communicator::Communicator(sim::Engine& engine, int nranks)
    : engine_(engine), nranks_(nranks) {
  if (nranks <= 0) throw NetError("communicator: nranks must be positive");
  mailboxes_.resize(static_cast<std::size_t>(nranks));
  for (auto& mb : mailboxes_) {
    mb.arrival = std::make_unique<sim::Event>(engine_);
  }
}

void Communicator::check_rank(int rank, const char* what) const {
  if (rank < 0 || rank >= nranks_)
    throw NetError(std::string(what) + ": rank " + std::to_string(rank) +
                   " out of range [0," + std::to_string(nranks_) + ")");
}

void Communicator::charge(sim::Context& ctx, std::uint64_t bytes) {
  if (link_cost_) ctx.delay(link_cost_(bytes));
}

void Communicator::send(sim::Context& ctx, int from, int to, int tag,
                        Bytes data) {
  check_rank(from, "send");
  check_rank(to, "send");
  charge(ctx, data.size());
  Mailbox& mb = mailboxes_[static_cast<std::size_t>(to)];
  mb.queues[{from, tag}].push_back(std::move(data));
  mb.arrival->notify_all();
}

Bytes Communicator::recv(sim::Context& ctx, int at, int from, int tag) {
  check_rank(at, "recv");
  check_rank(from, "recv");
  Mailbox& mb = mailboxes_[static_cast<std::size_t>(at)];
  const auto key = std::make_pair(from, tag);
  while (true) {
    auto it = mb.queues.find(key);
    if (it != mb.queues.end() && !it->second.empty()) {
      Bytes data = std::move(it->second.front());
      it->second.pop_front();
      if (it->second.empty()) mb.queues.erase(it);
      return data;
    }
    ctx.wait(*mb.arrival);
  }
}

bool Communicator::probe(int at, int from, int tag) const {
  check_rank(at, "probe");
  const Mailbox& mb = mailboxes_[static_cast<std::size_t>(at)];
  const auto it = mb.queues.find({from, tag});
  return it != mb.queues.end() && !it->second.empty();
}

void Communicator::send_doubles(sim::Context& ctx, int from, int to, int tag,
                                const std::vector<double>& v) {
  send(ctx, from, to, tag, pack_doubles(v));
}

std::vector<double> Communicator::recv_doubles(sim::Context& ctx, int at,
                                               int from, int tag) {
  return unpack_doubles(recv(ctx, at, from, tag));
}

void Communicator::apply_op(std::vector<double>& acc,
                            const std::vector<double>& other, ReduceOp op) {
  if (acc.size() != other.size())
    throw NetError("reduce: mismatched buffer lengths across ranks");
  for (std::size_t i = 0; i < acc.size(); ++i) {
    switch (op) {
      case ReduceOp::Sum: acc[i] += other[i]; break;
      case ReduceOp::Max: acc[i] = std::max(acc[i], other[i]); break;
      case ReduceOp::Min: acc[i] = std::min(acc[i], other[i]); break;
      case ReduceOp::Prod: acc[i] *= other[i]; break;
    }
  }
}

// ---------------------------------------------------------------------------
// Collectives. All use binomial trees rooted at `root` (rank numbering is
// rotated so any root works): reduce climbs the tree, bcast descends it.
// ---------------------------------------------------------------------------

void Communicator::barrier(sim::Context& ctx, int rank) {
  // Empty reduce-to-0 followed by empty bcast-from-0.
  reduce(ctx, rank, 0, {}, ReduceOp::Sum);
  bcast(ctx, rank, 0, {});
}

std::vector<double> Communicator::bcast(sim::Context& ctx, int rank, int root,
                                        std::vector<double> data) {
  check_rank(rank, "bcast");
  check_rank(root, "bcast");
  const int vrank = (rank - root + nranks_) % nranks_;  // root becomes 0
  if (vrank != 0) {
    const int parent = ((vrank - 1) / 2 + root) % nranks_;
    data = recv_doubles(ctx, rank, parent, kBcastTag);
  }
  for (int child_v : {2 * vrank + 1, 2 * vrank + 2}) {
    if (child_v < nranks_) {
      send_doubles(ctx, rank, (child_v + root) % nranks_, kBcastTag, data);
    }
  }
  return data;
}

std::vector<double> Communicator::reduce(sim::Context& ctx, int rank,
                                         int root,
                                         const std::vector<double>& data,
                                         ReduceOp op) {
  check_rank(rank, "reduce");
  check_rank(root, "reduce");
  const int vrank = (rank - root + nranks_) % nranks_;
  std::vector<double> acc = data;
  for (int child_v : {2 * vrank + 1, 2 * vrank + 2}) {
    if (child_v < nranks_) {
      const std::vector<double> part =
          recv_doubles(ctx, rank, (child_v + root) % nranks_, kReduceTag);
      apply_op(acc, part, op);
    }
  }
  if (vrank != 0) {
    const int parent = ((vrank - 1) / 2 + root) % nranks_;
    send_doubles(ctx, rank, parent, kReduceTag, acc);
    return {};
  }
  return acc;
}

std::vector<double> Communicator::allreduce(sim::Context& ctx, int rank,
                                            const std::vector<double>& data,
                                            ReduceOp op) {
  std::vector<double> total = reduce(ctx, rank, 0, data, op);
  return bcast(ctx, rank, 0, std::move(total));
}

std::vector<double> Communicator::gather(sim::Context& ctx, int rank,
                                         int root,
                                         const std::vector<double>& data) {
  check_rank(rank, "gather");
  check_rank(root, "gather");
  if (rank != root) {
    send_doubles(ctx, rank, root, kGatherTag, data);
    return {};
  }
  std::vector<double> out;
  for (int src = 0; src < nranks_; ++src) {
    if (src == root) {
      out.insert(out.end(), data.begin(), data.end());
    } else {
      const std::vector<double> part =
          recv_doubles(ctx, rank, src, kGatherTag);
      out.insert(out.end(), part.begin(), part.end());
    }
  }
  return out;
}

std::vector<double> Communicator::allgather(sim::Context& ctx, int rank,
                                            const std::vector<double>& data) {
  std::vector<double> all = gather(ctx, rank, 0, data);
  return bcast(ctx, rank, 0, std::move(all));
}

std::vector<double> Communicator::scatter(sim::Context& ctx, int rank,
                                          int root,
                                          const std::vector<double>& data) {
  check_rank(rank, "scatter");
  check_rank(root, "scatter");
  if (rank == root) {
    if (data.size() % static_cast<std::size_t>(nranks_) != 0)
      throw NetError("scatter: buffer not divisible by rank count");
    const std::size_t chunk = data.size() / static_cast<std::size_t>(nranks_);
    std::vector<double> own;
    for (int dst = 0; dst < nranks_; ++dst) {
      std::vector<double> part(
          data.begin() + static_cast<std::ptrdiff_t>(chunk * static_cast<std::size_t>(dst)),
          data.begin() + static_cast<std::ptrdiff_t>(chunk * (static_cast<std::size_t>(dst) + 1)));
      if (dst == root) {
        own = std::move(part);
      } else {
        send_doubles(ctx, rank, dst, kScatterTag, part);
      }
    }
    return own;
  }
  return recv_doubles(ctx, rank, root, kScatterTag);
}

std::vector<double> Communicator::alltoall(sim::Context& ctx, int rank,
                                           const std::vector<double>& data) {
  check_rank(rank, "alltoall");
  if (data.size() % static_cast<std::size_t>(nranks_) != 0)
    throw NetError("alltoall: buffer not divisible by rank count");
  const std::size_t chunk = data.size() / static_cast<std::size_t>(nranks_);
  // Send phase: everything out first (buffered channels make this safe and
  // deadlock-free), then receive in rank order.
  for (int dst = 0; dst < nranks_; ++dst) {
    if (dst == rank) continue;
    std::vector<double> part(
        data.begin() + static_cast<std::ptrdiff_t>(chunk * static_cast<std::size_t>(dst)),
        data.begin() + static_cast<std::ptrdiff_t>(chunk * (static_cast<std::size_t>(dst) + 1)));
    send_doubles(ctx, rank, dst, kAlltoallTag, part);
  }
  std::vector<double> out(data.size());
  for (int src = 0; src < nranks_; ++src) {
    std::vector<double> part;
    if (src == rank) {
      part.assign(
          data.begin() + static_cast<std::ptrdiff_t>(chunk * static_cast<std::size_t>(rank)),
          data.begin() + static_cast<std::ptrdiff_t>(chunk * (static_cast<std::size_t>(rank) + 1)));
    } else {
      part = recv_doubles(ctx, rank, src, kAlltoallTag);
    }
    std::copy(part.begin(), part.end(),
              out.begin() + static_cast<std::ptrdiff_t>(chunk * static_cast<std::size_t>(src)));
  }
  return out;
}

}  // namespace simai::net
