#include "net/socket.hpp"

#include <sys/socket.h>
#include <sys/uio.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <climits>
#include <cstring>
#include <filesystem>

namespace simai::net {

namespace {
[[noreturn]] void raise_errno(const std::string& what) {
  throw SocketError(what + ": " + std::strerror(errno));
}
}  // namespace

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void Socket::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void Socket::send_all(ByteView data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd_, data.data() + sent, data.size() - sent,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      raise_errno("send");
    }
    if (n == 0) throw SocketError("send: connection closed");
    sent += static_cast<std::size_t>(n);
  }
}

void Socket::send_frames(const std::vector<util::Payload>& frames) {
  // Build the iovec list once, then advance a cursor over it after partial
  // writes. IOV_MAX caps a single writev; the outer loop restarts from the
  // cursor, so any frame count works.
  std::vector<iovec> iov;
  iov.reserve(frames.size());
  for (const util::Payload& f : frames) {
    if (f.empty()) continue;
    iovec v;
    v.iov_base = const_cast<std::byte*>(f.data());
    v.iov_len = f.size();
    iov.push_back(v);
  }
  std::size_t first = 0;
  while (first < iov.size()) {
    const auto count = std::min<std::size_t>(iov.size() - first, IOV_MAX);
    const ssize_t n =
        ::writev(fd_, iov.data() + first, static_cast<int>(count));
    if (n < 0) {
      if (errno == EINTR) continue;
      raise_errno("writev");
    }
    if (n == 0) throw SocketError("writev: connection closed");
    // Advance past fully written iovecs; trim the partial one in place.
    auto written = static_cast<std::size_t>(n);
    while (first < iov.size() && written >= iov[first].iov_len) {
      written -= iov[first].iov_len;
      ++first;
    }
    if (first < iov.size() && written > 0) {
      iov[first].iov_base = static_cast<std::byte*>(iov[first].iov_base) +
                            written;
      iov[first].iov_len -= written;
    }
  }
}

Bytes Socket::recv_exact(std::size_t n) {
  Bytes out(n);
  std::size_t got = 0;
  while (got < n) {
    const ssize_t r = ::recv(fd_, out.data() + got, n - got, 0);
    if (r < 0) {
      if (errno == EINTR) continue;
      raise_errno("recv");
    }
    if (r == 0) throw SocketError("recv: connection closed mid-message");
    got += static_cast<std::size_t>(r);
  }
  return out;
}

Bytes Socket::recv_some(std::size_t n) {
  Bytes out(n);
  while (true) {
    const ssize_t r = ::recv(fd_, out.data(), n, 0);
    if (r < 0) {
      if (errno == EINTR) continue;
      raise_errno("recv");
    }
    out.resize(static_cast<std::size_t>(r));
    return out;
  }
}

std::size_t Socket::recv_into(std::span<std::byte> out) {
  while (true) {
    const ssize_t r = ::recv(fd_, out.data(), out.size(), 0);
    if (r < 0) {
      if (errno == EINTR) continue;
      raise_errno("recv");
    }
    return static_cast<std::size_t>(r);
  }
}

UnixListener::UnixListener(const std::string& path, int backlog)
    : path_(path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path))
    throw SocketError("unix socket path too long: " + path);
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);

  std::filesystem::remove(path);  // stale socket from a previous run
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) raise_errno("socket");
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    raise_errno("bind " + path);
  }
  if (::listen(fd, backlog) != 0) {
    ::close(fd);
    raise_errno("listen " + path);
  }
  fd_.store(fd, std::memory_order_release);
}

UnixListener::~UnixListener() {
  shutdown();
  // Safe to close only now: the owner joins acceptor threads before
  // destroying the listener, so nobody is blocked in ::accept on this fd.
  const int fd = fd_.exchange(-1, std::memory_order_acq_rel);
  if (fd >= 0) ::close(fd);
  std::filesystem::remove(path_);
}

std::optional<Socket> UnixListener::accept() {
  while (true) {
    const int fd = fd_.load(std::memory_order_acquire);
    if (fd < 0 || shutdown_.load(std::memory_order_acquire))
      return std::nullopt;
    const int client = ::accept(fd, nullptr, nullptr);
    if (client >= 0) {
      if (shutdown_.load(std::memory_order_acquire)) {
        // Raced with shutdown(): drop the straggler and stop.
        ::close(client);
        return std::nullopt;
      }
      return Socket(client);
    }
    if (errno == EINTR) continue;
    // EINVAL after shutdown(): orderly stop. Anything else is equally
    // final for an acceptor loop.
    return std::nullopt;
  }
}

void UnixListener::shutdown() {
  if (shutdown_.exchange(true, std::memory_order_acq_rel)) return;
  const int fd = fd_.load(std::memory_order_acquire);
  // Half-close unblocks any in-flight ::accept (it fails with EINVAL) and
  // refuses new connections. The fd itself stays open until ~UnixListener —
  // closing it here would race with the blocked accept's dereference and
  // could redirect it to a recycled fd number.
  if (fd >= 0) ::shutdown(fd, SHUT_RDWR);
}

Socket unix_connect(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path))
    throw SocketError("unix socket path too long: " + path);
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) raise_errno("socket");
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    raise_errno("connect " + path);
  }
  return Socket(fd);
}

}  // namespace simai::net
