#include "net/socket.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <filesystem>

namespace simai::net {

namespace {
[[noreturn]] void raise_errno(const std::string& what) {
  throw SocketError(what + ": " + std::strerror(errno));
}
}  // namespace

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void Socket::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void Socket::send_all(ByteView data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd_, data.data() + sent, data.size() - sent,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      raise_errno("send");
    }
    if (n == 0) throw SocketError("send: connection closed");
    sent += static_cast<std::size_t>(n);
  }
}

Bytes Socket::recv_exact(std::size_t n) {
  Bytes out(n);
  std::size_t got = 0;
  while (got < n) {
    const ssize_t r = ::recv(fd_, out.data() + got, n - got, 0);
    if (r < 0) {
      if (errno == EINTR) continue;
      raise_errno("recv");
    }
    if (r == 0) throw SocketError("recv: connection closed mid-message");
    got += static_cast<std::size_t>(r);
  }
  return out;
}

Bytes Socket::recv_some(std::size_t n) {
  Bytes out(n);
  while (true) {
    const ssize_t r = ::recv(fd_, out.data(), n, 0);
    if (r < 0) {
      if (errno == EINTR) continue;
      raise_errno("recv");
    }
    out.resize(static_cast<std::size_t>(r));
    return out;
  }
}

UnixListener::UnixListener(const std::string& path, int backlog)
    : path_(path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path))
    throw SocketError("unix socket path too long: " + path);
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);

  std::filesystem::remove(path);  // stale socket from a previous run
  fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd_ < 0) raise_errno("socket");
  if (::bind(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd_);
    fd_ = -1;
    raise_errno("bind " + path);
  }
  if (::listen(fd_, backlog) != 0) {
    ::close(fd_);
    fd_ = -1;
    raise_errno("listen " + path);
  }
}

UnixListener::~UnixListener() {
  shutdown();
  std::filesystem::remove(path_);
}

std::optional<Socket> UnixListener::accept() {
  while (true) {
    const int client = ::accept(fd_, nullptr, nullptr);
    if (client >= 0) return Socket(client);
    if (errno == EINTR) continue;
    // EBADF / EINVAL after shutdown(): orderly stop.
    return std::nullopt;
  }
}

void UnixListener::shutdown() {
  if (fd_ >= 0) {
    ::shutdown(fd_, SHUT_RDWR);
    ::close(fd_);
    fd_ = -1;
  }
}

Socket unix_connect(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path))
    throw SocketError("unix socket path too long: " + path);
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) raise_errno("socket");
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    raise_errno("connect " + path);
  }
  return Socket(fd);
}

}  // namespace simai::net
