#include "core/datastore.hpp"

#include <algorithm>

#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "util/buffer.hpp"
#include "util/crc32.hpp"

namespace simai::core {

namespace {
/// Top bit of the header's nominal-size field flags a CRC32 in the header.
/// Nominal sizes are far below 2^63, so the bit is free; values written
/// before the integrity feature read back with the flag clear.
constexpr std::uint64_t kCrcFlag = 1ull << 63;
}  // namespace

DataStore::DataStore(std::string client_name, kv::StorePtr store,
                     const platform::TransportModel* model,
                     DataStoreConfig config, sim::TraceRecorder* trace)
    : name_(std::move(client_name)),
      store_(std::move(store)),
      model_(model),
      config_(config),
      trace_(trace),
      retry_rng_(util::mix64(
          (config.faults ? config.faults->spec().seed : 0x5eedull) ^
          util::crc32(std::string_view(name_)))) {
  if (!store_) throw kv::StoreError("datastore: null backend store");
}

SimTime DataStore::charge(sim::Context* ctx, platform::StoreOp op,
                          std::uint64_t nominal_bytes,
                          const platform::TransportContext& op_ctx) {
  if (!model_) return 0.0;
  platform::TransportContext priced = op_ctx;
  if (config_.faults && ctx) {
    // Slow-node windows degrade this client's transport for their duration.
    priced.latency_multiplier *=
        config_.faults->latency_multiplier(config_.node, ctx->now());
  }
  const SimTime t = model_->cost(config_.backend, op, nominal_bytes, priced);
  if (ctx) ctx->delay(t);
  return t;
}

util::Payload DataStore::wrap_payload(ByteView value,
                                      std::uint64_t& nominal) const {
  if (nominal == 0) nominal = value.size();
  const std::size_t stored =
      config_.payload_cap == 0
          ? value.size()
          : std::min<std::size_t>(config_.payload_cap, value.size());
  // Prefixing the header forces one copy of the stored bytes — the single
  // payload-sized copy of a staging round trip. Everything downstream
  // (FaultyStore, MemoryStore, unwrap) shares this buffer by refcount.
  util::ByteWriter w(12 + stored);
  w.u64(nominal | (config_.verify_integrity ? kCrcFlag : 0));
  if (config_.verify_integrity)
    w.u32(util::crc32(value.subspan(0, stored)));
  w.raw(value.subspan(0, stored));
  return w.take_payload();
}

util::Payload DataStore::unwrap_payload(const util::Payload& stored,
                                        std::uint64_t& nominal) {
  util::ByteReader r(stored);
  const std::uint64_t head = r.u64();
  nominal = head & ~kCrcFlag;
  std::uint32_t expected = 0;
  const bool has_crc = (head & kCrcFlag) != 0;
  if (has_crc) expected = r.u32();
  const std::size_t body = r.remaining();
  // CRC runs over the view; the returned value is a header-stripped slice
  // of the stored buffer, not a copy.
  util::Payload rest = r.raw_payload(body);
  if (has_crc && util::crc32(rest.view()) != expected)
    throw fault::IntegrityError("datastore: payload CRC32 mismatch");
  return rest;
}

void DataStore::obs_record(sim::Context* ctx, bool is_write,
                           std::string_view key, std::uint64_t nominal,
                           std::uint64_t retries, SimTime t0) {
  const std::string backend(platform::backend_name(config_.backend));
  const char* op = is_write ? "write" : "read";
  const SimTime now = ctx->now();
  auto& reg = obs::registry();
  // The *_at variants additionally land each observation in the virtual-
  // time window covering `now` (obs/window.hpp) — the per-backend per-
  // window latency/byte/retry series obs::MetricsView serves mid-run.
  reg.histogram(is_write ? "transport_write_seconds" : "transport_read_seconds",
                {{"backend", backend}})
      .observe_at(now - t0, now);
  reg.counter("transport_ops_total", {{"backend", backend}, {"op", op}})
      .inc_at(1.0, now);
  reg.counter("transport_bytes_total", {{"backend", backend}, {"op", op}})
      .inc_at(static_cast<double>(nominal), now);
  if (retries != 0)
    reg.counter("transport_retries_total", {{"backend", backend}})
        .inc_at(static_cast<double>(retries), now);
  if (!trace_) return;

  sim::LabeledSpan span;
  span.track = name_;
  span.category = is_write ? "stage_write" : "stage_read";
  span.start = t0;
  span.end = ctx->now();
  if (obs::TraceContext* oc = obs::context(ctx->obs_id()))
    span.span_id = obs::next_span_id(*oc);
  // Flow hand-off: the writer publishes its span id under (store, key); the
  // reader of the same key on the same backing store picks it up, and the
  // Chrome export draws the producer->consumer arrow.
  if (is_write) {
    if (span.span_id != 0) {
      span.flow_id = span.span_id;
      span.flow_start = true;
      obs::publish_flow(store_.get(), key, span.flow_id);
    }
  } else {
    span.flow_id = obs::find_flow(store_.get(), key);
    span.flow_start = false;
  }
  span.labels = {{"backend", backend},
                 {"key", std::string(key)},
                 {"bytes", std::to_string(nominal)},
                 {"retries", std::to_string(retries)}};
  obs::flight().record(sim::to_flight(span));
  trace_->record_labeled_span(std::move(span));
}

bool DataStore::retry_pause(sim::Context* ctx, int attempt,
                            SimTime retry_after) {
  const fault::RetryPolicy& policy = config_.retry;
  // Detecting the failed attempt burns the client timeout either way.
  SimTime pause = policy.timeout;
  bool retry = attempt < policy.max_attempts;
  if (retry) {
    ++recovery_.retries;
    SimTime backoff = policy.backoff_delay(attempt, retry_rng_);
    if (ctx && retry_after >= 0.0) {
      // The fault advertised when it clears (outage windows): sleeping any
      // less just burns attempts, so wait it out.
      backoff = std::max(backoff, retry_after - (ctx->now() + pause));
    }
    pause += std::max(backoff, 0.0);
  } else {
    ++recovery_.failed_ops;
  }
  if (ctx) ctx->delay(pause);
  recovery_.recovery_time += pause;
  if (trace_ && ctx)
    trace_->record_instant(name_, retry ? "retry" : "fail", ctx->now());
  return retry;
}

bool DataStore::run_resilient(sim::Context* ctx,
                              const std::function<void()>& op) {
  for (int attempt = 1;; ++attempt) {
    try {
      op();
      return true;
    } catch (const fault::IntegrityError&) {
      ++recovery_.corrupt_payloads;
      if (!retry_pause(ctx, attempt, -1.0)) return false;
    } catch (const fault::TransientStoreError& e) {
      if (!retry_pause(ctx, attempt, e.retry_after)) return false;
    }
  }
}

bool DataStore::stage_write(sim::Context* ctx, std::string_view key,
                            ByteView value, std::uint64_t nominal_bytes) {
  return stage_write(ctx, key, value, config_.transport, nominal_bytes);
}

bool DataStore::stage_write(sim::Context* ctx, std::string_view key,
                            ByteView value,
                            const platform::TransportContext& op_ctx,
                            std::uint64_t nominal_bytes) {
  const bool observed = obs::enabled() && ctx != nullptr;
  const SimTime obs_t0 = observed ? ctx->now() : 0.0;
  const std::uint64_t obs_retries0 = observed ? recovery_.retries : 0;
  std::uint64_t nominal = nominal_bytes;
  const util::Payload wrapped = wrap_payload(value, nominal);
  // Each (re)attempt hands the backend a refcount bump on the same buffer.
  if (!run_resilient(ctx, [&] { store_->put(key, wrapped); }))
    return false;
  const SimTime t = charge(ctx, platform::StoreOp::Write, nominal, op_ctx);
  ++transport_events_;
  stats_.write()["write_time"].add(t);
  stats_.write()["write_bytes"].add(static_cast<double>(nominal));
  if (t > 0.0)
    stats_.write()["write_throughput"].add(static_cast<double>(nominal) / t);
  if (trace_ && ctx)
    trace_->record_instant(name_, "write", ctx->now(), nominal);
  if (observed)
    obs_record(ctx, /*is_write=*/true, key, nominal,
               recovery_.retries - obs_retries0, obs_t0);
  return true;
}

bool DataStore::stage_read(sim::Context* ctx, std::string_view key,
                           util::Payload& out) {
  return stage_read(ctx, key, out, config_.transport);
}

bool DataStore::stage_read(sim::Context* ctx, std::string_view key,
                           util::Payload& out,
                           const platform::TransportContext& op_ctx) {
  const bool observed = obs::enabled() && ctx != nullptr;
  const SimTime obs_t0 = observed ? ctx->now() : 0.0;
  const std::uint64_t obs_retries0 = observed ? recovery_.retries : 0;
  bool found = false;
  std::uint64_t nominal = 0;
  util::Payload value;
  // Fetch and integrity-verify as one retryable unit: a corrupted transfer
  // re-reads the intact value at rest.
  const bool ok = run_resilient(ctx, [&] {
    std::optional<util::Payload> stored = store_->get(key);
    found = stored.has_value();
    if (found) value = unwrap_payload(*stored, nominal);
  });
  if (!ok || !found) {
    charge(ctx, platform::StoreOp::Poll, 0, op_ctx);
    stats_.write()["poll_time"].add(0.0);
    return false;
  }
  out = std::move(value);
  const SimTime t = charge(ctx, platform::StoreOp::Read, nominal, op_ctx);
  ++transport_events_;
  stats_.write()["read_time"].add(t);
  stats_.write()["read_bytes"].add(static_cast<double>(nominal));
  if (t > 0.0) stats_.write()["read_throughput"].add(static_cast<double>(nominal) / t);
  if (trace_ && ctx) trace_->record_instant(name_, "read", ctx->now(), nominal);
  if (observed)
    obs_record(ctx, /*is_write=*/false, key, nominal,
               recovery_.retries - obs_retries0, obs_t0);
  return true;
}

bool DataStore::stage_read(sim::Context* ctx, std::string_view key,
                           Bytes& out) {
  return stage_read(ctx, key, out, config_.transport);
}

bool DataStore::stage_read(sim::Context* ctx, std::string_view key,
                           Bytes& out,
                           const platform::TransportContext& op_ctx) {
  util::Payload value;
  if (!stage_read(ctx, key, value, op_ctx)) return false;
  // Deliberate copy-out: legacy callers own a mutable Bytes.
  out = Bytes(value.data(), value.data() + value.size());
  return true;
}

bool DataStore::poll_staged_data(sim::Context* ctx, std::string_view key) {
  bool found = false;
  const bool ok =
      run_resilient(ctx, [&] { found = store_->exists(key); });
  const SimTime t =
      charge(ctx, platform::StoreOp::Poll, 0, config_.transport);
  stats_.write()["poll_time"].add(t);
  return ok && found;
}

void DataStore::clean_staged_data(sim::Context* ctx, std::string_view key) {
  run_resilient(ctx, [&] { store_->erase(key); });
  charge(ctx, platform::StoreOp::Clean, 0, config_.transport);
}

std::vector<std::string> DataStore::list_keys(std::string_view pattern) {
  return store_->keys(pattern);
}

}  // namespace simai::core
