#include "core/datastore.hpp"

#include <algorithm>

#include "util/buffer.hpp"

namespace simai::core {

DataStore::DataStore(std::string client_name, kv::StorePtr store,
                     const platform::TransportModel* model,
                     DataStoreConfig config, sim::TraceRecorder* trace)
    : name_(std::move(client_name)),
      store_(std::move(store)),
      model_(model),
      config_(config),
      trace_(trace) {
  if (!store_) throw kv::StoreError("datastore: null backend store");
}

SimTime DataStore::charge(sim::Context* ctx, platform::StoreOp op,
                          std::uint64_t nominal_bytes,
                          const platform::TransportContext& op_ctx) {
  if (!model_) return 0.0;
  const SimTime t = model_->cost(config_.backend, op, nominal_bytes, op_ctx);
  if (ctx) ctx->delay(t);
  return t;
}

Bytes DataStore::wrap_payload(ByteView value, std::uint64_t& nominal) const {
  if (nominal == 0) nominal = value.size();
  const std::size_t stored =
      config_.payload_cap == 0
          ? value.size()
          : std::min<std::size_t>(config_.payload_cap, value.size());
  util::ByteWriter w(8 + stored);
  w.u64(nominal);
  w.raw(value.subspan(0, stored));
  return w.take();
}

Bytes DataStore::unwrap_payload(ByteView stored, std::uint64_t& nominal) {
  util::ByteReader r(stored);
  nominal = r.u64();
  ByteView rest = r.raw(r.remaining());
  return Bytes(rest.begin(), rest.end());
}

void DataStore::stage_write(sim::Context* ctx, std::string_view key,
                            ByteView value, std::uint64_t nominal_bytes) {
  stage_write(ctx, key, value, config_.transport, nominal_bytes);
}

void DataStore::stage_write(sim::Context* ctx, std::string_view key,
                            ByteView value,
                            const platform::TransportContext& op_ctx,
                            std::uint64_t nominal_bytes) {
  std::uint64_t nominal = nominal_bytes;
  const Bytes wrapped = wrap_payload(value, nominal);
  store_->put(key, ByteView(wrapped));
  const SimTime t = charge(ctx, platform::StoreOp::Write, nominal, op_ctx);
  ++transport_events_;
  stats_["write_time"].add(t);
  stats_["write_bytes"].add(static_cast<double>(nominal));
  if (t > 0.0)
    stats_["write_throughput"].add(static_cast<double>(nominal) / t);
  if (trace_ && ctx)
    trace_->record_instant(name_, "write", ctx->now(), nominal);
}

bool DataStore::stage_read(sim::Context* ctx, std::string_view key,
                           Bytes& out) {
  return stage_read(ctx, key, out, config_.transport);
}

bool DataStore::stage_read(sim::Context* ctx, std::string_view key,
                           Bytes& out,
                           const platform::TransportContext& op_ctx) {
  Bytes stored;
  if (!store_->get(key, stored)) {
    charge(ctx, platform::StoreOp::Poll, 0, op_ctx);
    stats_["poll_time"].add(0.0);
    return false;
  }
  std::uint64_t nominal = 0;
  out = unwrap_payload(ByteView(stored), nominal);
  const SimTime t = charge(ctx, platform::StoreOp::Read, nominal, op_ctx);
  ++transport_events_;
  stats_["read_time"].add(t);
  stats_["read_bytes"].add(static_cast<double>(nominal));
  if (t > 0.0) stats_["read_throughput"].add(static_cast<double>(nominal) / t);
  if (trace_ && ctx) trace_->record_instant(name_, "read", ctx->now(), nominal);
  return true;
}

bool DataStore::poll_staged_data(sim::Context* ctx, std::string_view key) {
  const bool found = store_->exists(key);
  const SimTime t =
      charge(ctx, platform::StoreOp::Poll, 0, config_.transport);
  stats_["poll_time"].add(t);
  return found;
}

void DataStore::clean_staged_data(sim::Context* ctx, std::string_view key) {
  store_->erase(key);
  charge(ctx, platform::StoreOp::Clean, 0, config_.transport);
}

std::vector<std::string> DataStore::list_keys(std::string_view pattern) {
  return store_->keys(pattern);
}

}  // namespace simai::core
