#include "core/simulation.hpp"

#include <cmath>

namespace simai::core {

Simulation::Simulation(std::string name, const util::Json& config,
                       std::uint64_t seed)
    : name_(std::move(name)), rng_(seed) {
  if (config.is_object()) {
    if (const util::Json* kernels = config.find("kernels")) {
      for (const util::Json& spec : kernels->as_array())
        add_entry_from_json(spec);
    }
  } else if (!config.is_null()) {
    throw ConfigError("simulation config must be an object");
  }
}

void Simulation::add_entry_from_json(const util::Json& spec) {
  KernelEntry entry;
  entry.kernel_name = spec.contains("mini_app_kernel")
                          ? spec.at("mini_app_kernel").as_string()
                          : spec.at("name").as_string();
  entry.display_name = spec.get("name", entry.kernel_name);
  entry.config = spec;
  entry.kernel = kernels::make_kernel(entry.kernel_name, spec);
  if (const util::Json* rt = spec.find("run_time"))
    entry.run_time = util::make_distribution(*rt);
  if (const util::Json* rc = spec.find("run_count"))
    entry.run_count = util::make_distribution(*rc);
  entry.device = kernels::DeviceModel::of(
      kernels::parse_device(spec.get("device", "cpu")));
  kernels_.push_back(std::move(entry));
}

void Simulation::add_kernel(const std::string& kernel_name,
                            const util::Json& config) {
  util::Json spec = config.is_null() ? util::Json::object() : config;
  spec["mini_app_kernel"] = kernel_name;
  if (!spec.contains("name")) spec["name"] = kernel_name;
  add_entry_from_json(spec);
}

void Simulation::set_comm(net::Communicator* comm, int rank, int nranks) {
  comm_ = comm;
  rank_ = rank;
  nranks_ = nranks;
}

kernels::KernelContext Simulation::make_kernel_context() {
  kernels::KernelContext kctx;
  kctx.rank = rank_;
  kctx.nranks = nranks_;
  kctx.comm = comm_;
  kctx.sim_ctx = active_ctx_;
  kctx.io_dir = io_dir_;
  kctx.rng = util::Xoshiro256(rng_.next());
  return kctx;
}

SimTime Simulation::execute_entry(sim::Context& ctx, KernelEntry& entry) {
  active_ctx_ = &ctx;
  const SimTime t_start = ctx.now();

  const bool run_real =
      real_compute_ == RealCompute::Always ||
      (real_compute_ == RealCompute::Once && !entry.executed_once);

  SimTime modeled = 0.0;
  if (run_real) {
    kernels::KernelContext kctx = make_kernel_context();
    kctx.device = entry.device;
    const kernels::KernelResult result = entry.kernel->run(kctx);
    modeled = result.modeled_time;
    entry.cached_modeled_time = modeled;
    entry.executed_once = true;
    last_checksum_ = result.checksum;
  } else if (entry.cached_modeled_time) {
    modeled = *entry.cached_modeled_time;
  }

  // Charge the configured duration if given, else the kernel's estimate.
  const SimTime duration =
      entry.run_time ? entry.run_time->sample(rng_) : modeled;
  if (duration < 0.0 || std::isnan(duration))
    throw ConfigError("simulation: kernel '" + entry.display_name +
                      "' produced a negative duration");
  ctx.delay(duration);

  ++iterations_run_;
  stats_[entry.display_name + "_iter_time"].add(duration);
  stats_["iter_time"].add(duration);
  if (trace_)
    trace_->record_span(name_, "iter", t_start, ctx.now());
  active_ctx_ = nullptr;
  return ctx.now() - t_start;
}

SimTime Simulation::run(sim::Context& ctx) {
  const SimTime t0 = ctx.now();
  for (KernelEntry& entry : kernels_) {
    const std::int64_t count =
        entry.run_count
            ? static_cast<std::int64_t>(
                  std::llround(entry.run_count->sample(rng_)))
            : 1;
    for (std::int64_t i = 0; i < count; ++i) execute_entry(ctx, entry);
  }
  return ctx.now() - t0;
}

SimTime Simulation::run_iteration(sim::Context& ctx, std::size_t k) {
  if (k >= kernels_.size())
    throw ConfigError("simulation: kernel index out of range");
  return execute_entry(ctx, kernels_[k]);
}

void Simulation::stage_write(sim::Context& ctx, std::string_view key,
                             ByteView value, std::uint64_t nominal_bytes) {
  if (!datastore_)
    throw kv::StoreError("simulation '" + name_ + "' has no datastore");
  datastore_->stage_write(&ctx, key, value, nominal_bytes);
}

bool Simulation::stage_read(sim::Context& ctx, std::string_view key,
                            util::Payload& out) {
  if (!datastore_)
    throw kv::StoreError("simulation '" + name_ + "' has no datastore");
  return datastore_->stage_read(&ctx, key, out);
}

bool Simulation::stage_read(sim::Context& ctx, std::string_view key,
                            Bytes& out) {
  if (!datastore_)
    throw kv::StoreError("simulation '" + name_ + "' has no datastore");
  return datastore_->stage_read(&ctx, key, out);
}

bool Simulation::poll_staged_data(sim::Context& ctx, std::string_view key) {
  if (!datastore_)
    throw kv::StoreError("simulation '" + name_ + "' has no datastore");
  return datastore_->poll_staged_data(&ctx, key);
}

}  // namespace simai::core
