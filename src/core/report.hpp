// Structured run reports: serialize experiment results (config + per-
// component statistics) to JSON so sweeps and CI can consume them — the
// machine-readable face of deliverable (d)'s benchmark harness.
#pragma once

#include <string>

#include "core/experiment.hpp"

namespace simai::core {

/// {"count", "mean", "std", "min", "max"} for one stat series.
util::Json stats_to_json(const util::RunningStats& s);

/// {"retries", "failed_ops", "corrupt_payloads", "recovery_time_s"} — the
/// resilience cost a component paid under injected faults.
util::Json recovery_to_json(const fault::RecoveryStats& r);

/// Component record: steps, transport events, iteration/read/write stats.
util::Json component_to_json(const ComponentStats& c);

/// Snapshot of the armed obs::Registry: canonical series keys mapped to
/// values (counters/gauges) or histogram objects with p50/p95/p99. Returns
/// an empty object while the obs plane is disarmed or nothing was recorded.
util::Json metrics_to_json();

/// Full Pattern-1 report: {"pattern": 1, "config": ..., "makespan": ...,
/// "sim": {...}, "train": {...}}.
util::Json report_pattern1(const Pattern1Config& config,
                           const Pattern1Result& result);

/// Full Pattern-2 report (adds "train_runtime_per_iter").
util::Json report_pattern2(const Pattern2Config& config,
                           const Pattern2Result& result);

/// Write a report document to `path` (pretty-printed JSON).
void write_report(const util::Json& report, const std::string& path);

}  // namespace simai::core
