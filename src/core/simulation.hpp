// Simulation: emulates the solver component of a coupled workflow (§3.3).
//
// A Simulation is configured as a sequence of kernels (JSON, as in the
// paper's Listing 2): each entry names a Table-1 kernel, its data_size and
// target device, and how long an iteration takes — either a deterministic
// run_time, a stochastic distribution, or (when omitted) the kernel's own
// modelled device time. run_count (also optionally stochastic) repeats a
// kernel within one run() pass.
//
// Real-vs-virtual execution: by default each kernel's real math executes
// once (validating the configuration and producing a checksum) and later
// iterations only charge virtual time — the paper's mini-apps likewise care
// about occupancy, not results. Set RealCompute::Always to run the math
// every iteration, or Never to skip it entirely.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "core/datastore.hpp"
#include "kernels/kernel.hpp"
#include "util/distributions.hpp"
#include "util/stats.hpp"

namespace simai::core {

enum class RealCompute { Never, Once, Always };

class Simulation {
 public:
  /// `config` (optional) follows Listing 2:
  ///   {"kernels": [{"name": ..., "mini_app_kernel": ..., "run_time": ...,
  ///                 "run_count": ..., "data_size": ..., "device": ...}]}
  /// Kernels can also be added programmatically with add_kernel().
  explicit Simulation(std::string name, const util::Json& config = {},
                      std::uint64_t seed = 2024);

  /// Programmatic kernel registration (the Listing 1 style):
  ///   sim.add_kernel("MatMulSimple2D");
  ///   sim.add_kernel("MatMulSimple2D", extra_config_json);
  void add_kernel(const std::string& kernel_name,
                  const util::Json& config = {});

  // Execution environment ---------------------------------------------------
  void set_datastore(DataStore* store) { datastore_ = store; }
  void set_comm(net::Communicator* comm, int rank, int nranks);
  void set_io_dir(std::filesystem::path dir) { io_dir_ = std::move(dir); }
  void set_trace(sim::TraceRecorder* trace) { trace_ = trace; }
  void set_real_compute(RealCompute mode) { real_compute_ = mode; }

  /// Execute one pass over all configured kernels, charging virtual time.
  /// Returns the virtual time consumed by the pass.
  SimTime run(sim::Context& ctx);

  /// Execute exactly one iteration of kernel index `k` (default: the first).
  SimTime run_iteration(sim::Context& ctx, std::size_t k = 0);

  // Staging passthrough (the paper's Simulation client surface) ------------
  /// `nominal_bytes` (nonzero) declares a modelled size larger than the
  /// real buffer — see DataStore::stage_write.
  void stage_write(sim::Context& ctx, std::string_view key, ByteView value,
                   std::uint64_t nominal_bytes = 0);
  /// Zero-copy read: `out` shares the staged buffer (see DataStore).
  bool stage_read(sim::Context& ctx, std::string_view key, util::Payload& out);
  /// Compatibility adapter — copies the payload out.
  bool stage_read(sim::Context& ctx, std::string_view key, Bytes& out);
  bool poll_staged_data(sim::Context& ctx, std::string_view key);

  // Introspection -----------------------------------------------------------
  const std::string& name() const { return name_; }
  std::size_t kernel_count() const { return kernels_.size(); }
  std::uint64_t iterations_run() const { return iterations_run_; }
  /// Stats series: per-kernel "<kernel>_iter_time" plus "iter_time" overall.
  const util::StatSeries& stats() const { return stats_; }
  /// Checksum of the most recent real kernel execution (validation hook).
  double last_checksum() const { return last_checksum_; }

 private:
  struct KernelEntry {
    std::string kernel_name;
    std::string display_name;
    util::Json config;
    kernels::KernelPtr kernel;
    std::unique_ptr<util::Distribution> run_time;   // may be null
    std::unique_ptr<util::Distribution> run_count;  // may be null (=> 1)
    kernels::DeviceModel device;
    bool executed_once = false;
    std::optional<SimTime> cached_modeled_time;
  };

  void add_entry_from_json(const util::Json& spec);
  SimTime execute_entry(sim::Context& ctx, KernelEntry& entry);
  kernels::KernelContext make_kernel_context();

  std::string name_;
  std::vector<KernelEntry> kernels_;
  DataStore* datastore_ = nullptr;
  net::Communicator* comm_ = nullptr;
  int rank_ = 0;
  int nranks_ = 1;
  std::filesystem::path io_dir_;
  sim::TraceRecorder* trace_ = nullptr;
  RealCompute real_compute_ = RealCompute::Once;
  util::Xoshiro256 rng_;
  util::StatSeries stats_;
  std::uint64_t iterations_run_ = 0;
  double last_checksum_ = 0.0;
  sim::Context* active_ctx_ = nullptr;  // set while run() executes
};

}  // namespace simai::core
