// Point-to-point streaming transport — the paper's §5 future-work item
// ("we plan to add support for point-to-point streaming, for instance
// using ADIOS2"), modelled on ADIOS2's SST engine semantics:
//
//  * a named stream connects one writer to one reader;
//  * data moves in *steps*: writer begin_step / put / end_step, reader
//    begin_step (blocking with optional timeout) / get / end_step;
//  * a bounded step queue applies back-pressure to the writer (SST's
//    QueueLimit), so a slow reader throttles the producer instead of
//    unbounded buffering — the key behavioural difference from staging;
//  * close() marks end-of-stream; the reader's begin_step then returns
//    EndOfStream once the queue drains.
//
// Virtual-time pricing uses TransportModel's Stream backend: per-step
// handshake latency plus pipelined bandwidth — no per-key metadata, which
// is exactly why streaming wins the latency-limited exchanges the paper's
// introduction describes.
#pragma once

#include <map>
#include <memory>
#include <optional>

#include "check/shared_cell.hpp"
#include "platform/transport_model.hpp"
#include "sim/channel.hpp"
#include "sim/engine.hpp"
#include "sim/trace.hpp"
#include "util/payload.hpp"
#include "util/stats.hpp"

namespace simai::core {

/// Reader-side step outcomes. NotReady = the producer is alive but slow
/// (timeout elapsed); EndOfStream = clean close, queue drained;
/// ProducerFailed = the writer died without closing (fail()) — the queue is
/// drained and no further step will ever arrive. Distinguishing the last
/// two is what lets consumers react to producer death instead of spinning
/// on timeouts.
enum class StepStatus { Ok, NotReady, EndOfStream, ProducerFailed };

/// One step's payload: named variables -> blobs (nominal sizes may exceed
/// the stored bytes, mirroring DataStore's payload virtualization).
/// Variables are Payloads, so a step moving writer -> queue -> reader is
/// refcount traffic: the bytes are written once by the producer and read
/// in place by the consumer.
struct StreamStep {
  std::map<std::string, util::Payload, std::less<>> variables;
  std::map<std::string, std::uint64_t, std::less<>> nominal;
  std::uint64_t step_index = 0;
  /// Observability: the producer's flow id for this step (0 when the obs
  /// plane is disarmed). Travels with the step so the consumer's span can
  /// close the Perfetto flow arrow started at publish time.
  std::uint64_t flow_id = 0;

  std::uint64_t total_nominal() const;
};

class StreamBroker;

class StreamWriter {
 public:
  /// Start assembling a new step.
  void begin_step(sim::Context& ctx);
  /// Add a variable to the open step. Takes the payload by value: a Payload
  /// argument is a refcount bump (publish the same buffer every step for
  /// free), ByteView/Bytes arguments convert with one copy at the boundary.
  /// `nominal_bytes` declares the modelled size when nonzero (stored bytes
  /// may be capped by the caller).
  void put(std::string_view variable, util::Payload data,
           std::uint64_t nominal_bytes = 0);
  /// Publish the step: charges the stream transfer cost and blocks (in
  /// virtual time) while the step queue is full.
  void end_step(sim::Context& ctx);
  /// Mark end-of-stream (idempotent).
  void close(sim::Context& ctx);

  /// Declare the producer dead without a clean close (idempotent): any
  /// open step is discarded and the reader's begin_step reports
  /// ProducerFailed once the queue drains. Degraded-mode counterpart of
  /// close(), used when a component aborts mid-stream.
  void fail(sim::Context& ctx);

  std::uint64_t steps_written() const { return next_step_; }

 private:
  friend class StreamBroker;
  StreamWriter(StreamBroker& broker, std::string name);
  StreamBroker& broker_;
  std::string name_;
  std::optional<StreamStep> open_step_;
  std::uint64_t next_step_ = 0;
  bool closed_ = false;
};

class StreamReader {
 public:
  /// Block until a step is available (or `timeout` virtual seconds pass,
  /// when timeout >= 0). On Ok the step's variables are readable.
  StepStatus begin_step(sim::Context& ctx, double timeout = -1.0);
  /// Read a variable from the current step; charges the read-side share.
  /// Returns a refcount bump on the published payload — no copy.
  util::Payload get(sim::Context& ctx, std::string_view variable);
  /// Nominal size of a variable in the current step.
  std::uint64_t nominal_of(std::string_view variable) const;
  /// Release the current step.
  void end_step();

  std::uint64_t current_step_index() const;
  std::uint64_t steps_consumed() const { return consumed_; }

 private:
  friend class StreamBroker;
  StreamReader(StreamBroker& broker, std::string name);
  StreamBroker& broker_;
  std::string name_;
  std::optional<StreamStep> current_;
  std::uint64_t consumed_ = 0;
};

/// Per-engine registry of named streams. Configure locality/fan-in through
/// the TransportContext, like DataStore.
class StreamBroker {
 public:
  /// `model` may be null (zero-cost streams, for pure-logic tests).
  /// `queue_limit` is SST's QueueLimit: steps buffered before back-pressure.
  StreamBroker(sim::Engine& engine, const platform::TransportModel* model,
               platform::TransportContext transport = {},
               std::size_t queue_limit = 2);

  /// Each stream supports exactly one writer and one reader.
  StreamWriter open_writer(const std::string& stream_name);
  StreamReader open_reader(const std::string& stream_name);

  /// Aggregate stats: "step_write_time", "step_read_time", "step_bytes".
  /// (Unrecorded access: reading aggregates post-run is not part of any
  /// process schedule.)
  const util::StatSeries& stats() const { return stats_.raw(); }

  /// Observability sink: while the obs plane is armed, publish/consume
  /// spans (with flow events linking each hand-off) land here. Null (the
  /// default) records metrics only.
  void set_trace(sim::TraceRecorder* trace) { trace_ = trace; }

 private:
  friend class StreamWriter;
  friend class StreamReader;

  struct Stream {
    std::unique_ptr<sim::Channel<StreamStep>> queue;
    bool writer_open = false;
    bool reader_open = false;
    bool closed = false;  // writer called close()
    bool failed = false;  // writer called fail() — producer death
    std::unique_ptr<sim::Event> state_change;
    /// Writer-side step counter, read by the reader on every consumed step:
    /// the detector-visible writer/reader pairing. A clean schedule always
    /// has the channel happens-before edge, so any report here means the
    /// stream was bypassed.
    check::SharedCell<std::uint64_t> published{"Stream.published"};
  };

  Stream& stream_of(const std::string& name, bool create);
  SimTime charge_write(sim::Context& ctx, std::uint64_t bytes);
  SimTime charge_read(sim::Context& ctx, std::uint64_t bytes);

  sim::Engine& engine_;
  const platform::TransportModel* model_;
  platform::TransportContext transport_;
  std::size_t queue_limit_;
  sim::TraceRecorder* trace_ = nullptr;
  std::map<std::string, Stream> streams_;
  // Written by writer AND reader processes (step costs land here from both
  // sides), so instrumented: the race detector checks that every pair of
  // same-virtual-time contributions is ordered by a stream edge.
  check::SharedCell<util::StatSeries> stats_{"StreamBroker.stats"};
};

}  // namespace simai::core
