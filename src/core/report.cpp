#include "core/report.hpp"

#include "obs/metrics.hpp"
#include "obs/obs.hpp"

namespace simai::core {

util::Json stats_to_json(const util::RunningStats& s) {
  util::Json j;
  j["count"] = static_cast<std::int64_t>(s.count());
  j["mean"] = s.mean();
  j["std"] = s.stddev();
  j["min"] = s.min();
  j["max"] = s.max();
  return j;
}

util::Json recovery_to_json(const fault::RecoveryStats& r) {
  util::Json j;
  j["retries"] = static_cast<std::int64_t>(r.retries);
  j["failed_ops"] = static_cast<std::int64_t>(r.failed_ops);
  j["corrupt_payloads"] = static_cast<std::int64_t>(r.corrupt_payloads);
  j["recovery_time_s"] = r.recovery_time;
  return j;
}

util::Json component_to_json(const ComponentStats& c) {
  util::Json j;
  j["steps"] = static_cast<std::int64_t>(c.steps);
  j["transport_events"] = static_cast<std::int64_t>(c.transport_events);
  if (c.recovery.any()) j["recovery"] = recovery_to_json(c.recovery);
  j["iter_time"] = stats_to_json(c.iter_time);
  if (c.read_time.count() > 0) j["read_time"] = stats_to_json(c.read_time);
  if (c.write_time.count() > 0)
    j["write_time"] = stats_to_json(c.write_time);
  if (c.read_throughput.count() > 0)
    j["read_throughput"] = stats_to_json(c.read_throughput);
  if (c.write_throughput.count() > 0)
    j["write_throughput"] = stats_to_json(c.write_throughput);
  return j;
}

util::Json metrics_to_json() {
  if (!obs::enabled()) return util::Json::object();
  return obs::registry().to_json();
}

util::Json report_pattern1(const Pattern1Config& config,
                           const Pattern1Result& result) {
  util::Json j;
  j["pattern"] = 1;
  j["config"] = pattern1_to_json(config);
  j["makespan_s"] = result.makespan;
  j["sim"] = component_to_json(result.sim);
  j["train"] = component_to_json(result.train);
  if (obs::enabled() && !obs::registry().empty())
    j["metrics"] = metrics_to_json();
  return j;
}

util::Json report_pattern2(const Pattern2Config& config,
                           const Pattern2Result& result) {
  util::Json j;
  j["pattern"] = 2;
  j["config"] = pattern2_to_json(config);
  j["makespan_s"] = result.makespan;
  j["train_runtime_per_iter_s"] = result.train_runtime_per_iter;
  j["sim"] = component_to_json(result.sim);
  j["train"] = component_to_json(result.train);
  if (obs::enabled() && !obs::registry().empty())
    j["metrics"] = metrics_to_json();
  return j;
}

void write_report(const util::Json& report, const std::string& path) {
  report.dump_file(path);
}

}  // namespace simai::core
