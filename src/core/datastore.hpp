// DataStore: the paper's unified client API for data staging (§3.2) —
// stage_write / stage_read / poll_staged_data / clean_staged_data — layered
// over any kv backend, with additions the benchmarks need:
//
//  * virtual-time pricing: every operation performs the REAL store op and
//    then charges the DES clock with the TransportModel's Aurora-scale cost
//    for the configured backend / locality / concurrency;
//  * instrumentation: per-op timings, byte counts, and event counts flow
//    into RunningStats series and (optionally) the timeline TraceRecorder;
//  * resilience: transient backend faults (fault::TransientStoreError,
//    CRC mismatches) are retried per a RetryPolicy, with every failed
//    attempt's timeout + backoff charged to the virtual clock and the
//    recovery cost surfaced through RecoveryStats.
//
// Payload virtualization: at large simulated scale, staging 32 MB x 6144
// ranks of real bytes cannot fit in one machine. When `payload_cap` is set,
// stage_write stores min(cap, size) real bytes prefixed with a header
// recording the nominal size; pricing and statistics always use the
// nominal size. With cap == 0 (the default) payloads move at full size.
//
// Payload integrity: with `verify_integrity` set, the header additionally
// carries a CRC32 of the stored bytes; stage_read verifies it and treats a
// mismatch as a retryable in-transit corruption. Values written without the
// checksum read back unverified, so the feature is opt-in per writer.
#pragma once

#include <functional>
#include <string>

#include "check/shared_cell.hpp"
#include "fault/fault.hpp"
#include "fault/retry.hpp"
#include "kv/store.hpp"
#include "platform/transport_model.hpp"
#include "sim/engine.hpp"
#include "sim/trace.hpp"
#include "util/stats.hpp"

namespace simai::core {

struct DataStoreConfig {
  platform::BackendKind backend = platform::BackendKind::NodeLocal;
  /// Default operation context (locality / fan-in / concurrent clients);
  /// per-op overrides are available on each call.
  platform::TransportContext transport;
  /// Cap on real stored bytes per value (0 = no cap; see header comment).
  std::size_t payload_cap = 0;

  // -- resilience ----------------------------------------------------------

  /// Fault timeline consulted for per-node latency-spike pricing (must
  /// outlive the DataStore). Faults themselves are injected at the kv layer
  /// (fault::FaultyStore); this pointer only degrades transport pricing.
  const fault::FaultSchedule* faults = nullptr;
  /// Node this client runs on, for per-node latency spikes.
  int node = 0;
  /// Applied when a store op throws a retryable fault (see header).
  fault::RetryPolicy retry;
  /// Stamp a CRC32 into staged payload headers and verify it on read.
  bool verify_integrity = false;
};

class DataStore {
 public:
  /// `store` is the real backend; `model` prices operations (may be null:
  /// operations then cost zero virtual time, for plain-store usage).
  DataStore(std::string client_name, kv::StorePtr store,
            const platform::TransportModel* model, DataStoreConfig config,
            sim::TraceRecorder* trace = nullptr);

  /// Write `value` under `key`. `ctx` may be null outside the DES.
  /// `nominal_bytes` (when nonzero) declares the size this value stands in
  /// for: pricing and statistics use it while only `value` is stored —
  /// lets harnesses model 32 MB x thousands-of-ranks traffic without
  /// materializing the bytes. Returns false when the write exhausted its
  /// retry budget (degraded mode: the op is dropped and recorded in
  /// recovery(), never thrown).
  bool stage_write(sim::Context* ctx, std::string_view key, ByteView value,
                   std::uint64_t nominal_bytes = 0);
  bool stage_write(sim::Context* ctx, std::string_view key, ByteView value,
                   const platform::TransportContext& op_ctx,
                   std::uint64_t nominal_bytes = 0);

  /// Read `key`; false if absent (only the poll cost is charged then) or
  /// if the read exhausted its retry budget (recorded in recovery()).
  /// The payload form is the zero-copy path: `out` is a slice of the
  /// backend's stored buffer (header stripped), shared by refcount.
  bool stage_read(sim::Context* ctx, std::string_view key,
                  util::Payload& out);
  bool stage_read(sim::Context* ctx, std::string_view key, util::Payload& out,
                  const platform::TransportContext& op_ctx);

  /// Compatibility adapters: identical behavior, but copy the payload into
  /// a caller-owned Bytes (the pre-zero-copy cost).
  bool stage_read(sim::Context* ctx, std::string_view key, Bytes& out);
  bool stage_read(sim::Context* ctx, std::string_view key, Bytes& out,
                  const platform::TransportContext& op_ctx);

  /// Non-consuming existence check (a stat/EXISTS — charged as a poll).
  /// False when absent or when the check itself kept failing.
  bool poll_staged_data(sim::Context* ctx, std::string_view key);

  /// Remove staged data (charged as a metadata op).
  void clean_staged_data(sim::Context* ctx, std::string_view key);

  std::vector<std::string> list_keys(std::string_view pattern = "*");

  // -- statistics ----------------------------------------------------------

  /// Series: "write_time", "read_time", "poll_time", "write_bytes",
  /// "read_bytes", "write_throughput", "read_throughput" (B/s, nominal).
  /// The const accessor is unrecorded (post-run harvesting); the mutable
  /// one records a write access with the race detector, like the internal
  /// per-op updates do.
  const util::StatSeries& stats() const { return stats_.raw(); }
  util::StatSeries& stats() { return stats_.write(); }

  /// Transport events so far (successful writes + successful reads +
  /// steering ops — the paper's Table 2 counting).
  std::uint64_t transport_events() const { return transport_events_; }

  /// What resilience cost this client: retries, surrendered ops, detected
  /// corruptions, and the virtual time burned recovering.
  const fault::RecoveryStats& recovery() const { return recovery_; }

  const std::string& name() const { return name_; }
  platform::BackendKind backend() const { return config_.backend; }
  const DataStoreConfig& config() const { return config_; }
  kv::IKeyValueStore& raw_store() { return *store_; }

  /// The exact stored bytes a stage_write of `value` would produce under
  /// this client's config (header + optional CRC + capped body). Used by
  /// the parallel harness (DESIGN.md §4.12) to mirror a staged value into
  /// another LP's store view without charging transport cost twice.
  util::Payload wrap_payload(ByteView value, std::uint64_t& nominal) const;

 private:
  SimTime charge(sim::Context* ctx, platform::StoreOp op,
                 std::uint64_t nominal_bytes,
                 const platform::TransportContext& op_ctx);
  static util::Payload unwrap_payload(const util::Payload& stored,
                                      std::uint64_t& nominal);

  /// Observability plane: record one completed stage op — a labeled span
  /// [t0, now] into trace_ (backend/key/bytes/retries labels, flow ids for
  /// write->read hand-off) plus registry metrics. Only called while
  /// obs::enabled() and inside the DES; never perturbs virtual time.
  void obs_record(sim::Context* ctx, bool is_write, std::string_view key,
                  std::uint64_t nominal, std::uint64_t retries, SimTime t0);

  /// Run `op`, retrying per config_.retry on TransientStoreError /
  /// IntegrityError. False when attempts are exhausted. Charges timeouts
  /// and backoffs to `ctx` and accumulates recovery_.
  bool run_resilient(sim::Context* ctx, const std::function<void()>& op);
  /// Book one failed attempt; false when the op should be surrendered.
  bool retry_pause(sim::Context* ctx, int attempt, SimTime retry_after);

  std::string name_;
  kv::StorePtr store_;
  const platform::TransportModel* model_;
  DataStoreConfig config_;
  sim::TraceRecorder* trace_;
  // Instrumented: per-op timings land here from whichever process runs the
  // op. Clients are usually per-process, but nothing enforces it — sharing
  // a DataStore across processes is exactly what the race detector audits.
  check::SharedCell<util::StatSeries> stats_{"DataStore.stats"};
  std::uint64_t transport_events_ = 0;
  fault::RecoveryStats recovery_;
  util::Xoshiro256 retry_rng_;  // backoff jitter (deterministic per client)
};

}  // namespace simai::core
