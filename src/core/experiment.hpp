// Workflow-pattern experiment harness: the two mini-apps the paper's whole
// evaluation (§4) is built on, implemented on the public API (Workflow +
// Simulation + AiComponent + DataStore + ServerManager).
//
// Pattern 1 (one-to-one, §4.1): a parallel simulation and a distributed
// trainer co-located on the same nodes, 6 sim + 6 AI ranks per node paired
// tile-for-tile. The simulation writes a snapshot (two staged tensors: x
// and y fields) every `write_every` iterations; the trainer polls every
// `read_every` iterations and ingests new snapshots; after `train_iters`
// iterations it steers the simulation to stop through a staged control key.
//
// Pattern 2 (many-to-one, §4.2): an ensemble of simulations, one per node,
// each staging an array every `write_every` iterations to its local
// backend; a single trainer on its own node reads ALL ensemble members'
// arrays non-locally every `read_every` iterations, blocking until the
// round is complete.
//
// Scale handling: at hundreds of nodes Pattern 1's rank pairs are
// statistically identical and independent, so the harness instantiates
// `representative_pairs` of them and sets the TransportContext's
// machine-wide concurrency to the FULL configured scale — the mechanistic
// models (MDS contention, incast) see 512 nodes while the DES runs a
// handful of processes. Pattern 2 instantiates every ensemble member.
#pragma once

#include <cstdint>

#include "core/ai_component.hpp"
#include "core/simulation.hpp"
#include "core/workflow.hpp"
#include "fault/retry.hpp"
#include "kv/server_manager.hpp"
#include "platform/transport_model.hpp"
#include "util/stats.hpp"

namespace simai::core {

/// Aggregated per-component statistics for one experiment run.
struct ComponentStats {
  std::uint64_t steps = 0;             // iterations executed
  std::uint64_t transport_events = 0;  // Table-2 style event count
  util::RunningStats iter_time;        // per-iteration elapsed (virtual s)
  util::RunningStats read_time;        // per successful read
  util::RunningStats write_time;       // per write
  util::RunningStats read_throughput;  // nominal B/s
  util::RunningStats write_throughput;
  fault::RecoveryStats recovery;       // retries / failed ops / recovery time
};

// ---------------------------------------------------------------------------
// Pattern 1: one-to-one, co-located
// ---------------------------------------------------------------------------

struct Pattern1Config {
  platform::BackendKind backend = platform::BackendKind::NodeLocal;
  int nodes = 8;
  int pairs_per_node = 6;       // sim/AI tile pairs per node (Aurora: 6+6)
  int representative_pairs = 2; // instantiated pairs (0 = all of them)

  std::uint64_t payload_bytes = 1258291;  // 1.2 MB/rank, the nekRS-ML load
  std::size_t payload_cap = 64 * KiB;     // real staged bytes cap (0 = off)

  std::int64_t train_iters = 5000;
  std::int64_t max_sim_iters = 0;  // 0 = run until steered to stop

  double sim_iter_time = 0.03147;  // Listing 2 / Table 3
  double sim_iter_std = 0.0;       // > 0: stochastic (clamped normal)
  double train_iter_time = 0.0611;
  double train_iter_std = 0.0;
  double sim_init_time = 3.0;
  double train_init_time = 27.6;

  int write_every = 100;  // sim snapshot period (iterations)
  int read_every = 10;    // trainer poll period (iterations)
  double poll_interval = 0.005;  // virtual s between blocking re-polls

  std::uint64_t seed = 42;
  bool record_trace = false;
  /// Workflow::spawn_order_salt — permutes component spawn order (0 =
  /// registration order). Results must be salt-invariant; see sim_parity_test.
  std::uint64_t spawn_order_salt = 0;

  /// Parallel DES dispatch (sim::Parallel, sim/engine.hpp): worker threads
  /// for the harness engine. 1 (the default) = the sequential code path;
  /// 0 = SIMAI_SIM_WORKERS. With N > 1 each instantiated pair becomes one
  /// logical process (sim + trainer co-located — their staging visibility
  /// is same-instant, so splitting a pair would serialize it anyway); pairs
  /// exchange nothing, so no lookahead edges are needed and every worker
  /// count produces byte-identical results. Ignored by the streaming flavor
  /// (StreamBroker endpoints are intra-LP primitives; see sim/channel.hpp).
  unsigned workers = 1;
  /// Parallel round quantum (sim::Parallel::window); <= 0 = unbounded.
  double window = 0.0;

  /// Total store clients machine-wide (both components), for MDS pricing.
  int concurrent_clients() const { return nodes * pairs_per_node * 2; }
  int instantiated_pairs() const {
    const int total = nodes * pairs_per_node;
    return representative_pairs > 0 ? std::min(representative_pairs, total)
                                    : total;
  }
};

struct Pattern1Result {
  ComponentStats sim;
  ComponentStats train;
  SimTime makespan = 0.0;
  sim::TraceRecorder trace;  // populated when record_trace
};

Pattern1Result run_pattern1(const Pattern1Config& config);

/// The streaming flavor of Pattern 1 (§5 future work, built here): the same
/// co-located one-to-one workflow, but snapshots move through ADIOS2-SST
/// style point-to-point streams (StreamBroker) instead of a staging store.
/// The `backend` field of the config is ignored (always Stream); steering
/// happens via stream close + a final control step. `queue_limit` is the
/// stream's bounded step queue (back-pressure depth).
Pattern1Result run_pattern1_streaming(const Pattern1Config& config,
                                      std::size_t queue_limit = 4);

// ---------------------------------------------------------------------------
// Pattern 2: many-to-one, distributed
// ---------------------------------------------------------------------------

struct Pattern2Config {
  platform::BackendKind backend = platform::BackendKind::Dragon;
  int num_sims = 7;          // ensemble size; node count = num_sims + 1
  int ai_reader_ranks = 12;  // concurrent read streams into the AI node

  std::uint64_t payload_bytes = 1258291;
  std::size_t payload_cap = 64 * KiB;

  std::int64_t train_iters = 200;
  double sim_iter_time = 0.03147;
  double train_iter_time = 0.0611;
  int write_every = 10;
  int read_every = 10;
  double poll_interval = 0.005;

  std::uint64_t seed = 43;
  /// Workflow::spawn_order_salt — permutes component spawn order (0 =
  /// registration order). Results must be salt-invariant; see sim_parity_test.
  std::uint64_t spawn_order_salt = 0;

  /// Parallel DES dispatch (sim::Parallel, sim/engine.hpp): worker threads.
  /// 1 (the default) = the sequential code path; 0 = SIMAI_SIM_WORKERS.
  /// With N > 1 each ensemble member becomes one logical process and the
  /// trainer another; lookahead-0 edges member -> trainer bound the
  /// trainer's dispatch window behind every member's LVT, and staged writes
  /// are mirrored into the trainer's store view at their virtual write time
  /// (Engine::post), so the trainer's polls observe exactly what the
  /// sequential engine would show them.
  unsigned workers = 1;
  /// Parallel round quantum (sim::Parallel::window); <= 0 = unbounded.
  double window = 0.0;

  int nodes() const { return num_sims + 1; }
  /// Store clients: 12 ranks per simulation node + the AI's readers.
  int concurrent_clients() const { return num_sims * 12 + ai_reader_ranks; }
};

struct Pattern2Result {
  ComponentStats sim;    // aggregated over the ensemble (local writes)
  ComponentStats train;  // the single AI component (non-local reads)
  /// Total trainer runtime / train_iters — the Fig 6 metric (includes both
  /// compute and transport).
  double train_runtime_per_iter = 0.0;
  SimTime makespan = 0.0;
};

Pattern2Result run_pattern2(const Pattern2Config& config);

/// Merge a DataStore's stat series into a ComponentStats record.
void absorb_datastore_stats(ComponentStats& into, const DataStore& store);

/// JSON (de)serialization for the pattern configs (every field optional on
/// input, defaults preserved) — the CLI runner's config surface.
Pattern1Config pattern1_from_json(const util::Json& j);
util::Json pattern1_to_json(const Pattern1Config& c);
Pattern2Config pattern2_from_json(const util::Json& j);
util::Json pattern2_to_json(const Pattern2Config& c);

}  // namespace simai::core
