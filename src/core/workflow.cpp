#include "core/workflow.hpp"

#include <algorithm>
#include <set>

#include "obs/flight.hpp"
#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "util/rng.hpp"

namespace simai::core {

Workflow::Workflow(util::Json sys_config)
    : sys_config_(std::move(sys_config)) {}

Workflow& Workflow::component(const std::string& name,
                              const std::string& type, int nranks,
                              std::vector<std::string> dependencies,
                              ComponentFn body) {
  if (by_name_.count(name))
    throw WorkflowError("workflow: duplicate component '" + name + "'");
  if (nranks <= 0)
    throw WorkflowError("workflow: component '" + name +
                        "' needs a positive rank count");
  if (type != "remote" && type != "local")
    throw WorkflowError("workflow: component type must be 'remote' or "
                        "'local', got '" +
                        type + "'");
  auto comp = std::make_unique<Component>();
  comp->name = name;
  comp->type = type;
  comp->nranks = nranks;
  comp->dependencies = std::move(dependencies);
  comp->body = std::move(body);
  by_name_[name] = comp.get();
  components_.push_back(std::move(comp));
  return *this;
}

void Workflow::validate() const {
  // Unknown dependencies.
  for (const auto& comp : components_) {
    for (const std::string& dep : comp->dependencies) {
      if (!by_name_.count(dep))
        throw WorkflowError("workflow: component '" + comp->name +
                            "' depends on unknown component '" + dep + "'");
      if (dep == comp->name)
        throw WorkflowError("workflow: component '" + comp->name +
                            "' depends on itself");
    }
  }
  // Cycle detection via Kahn's algorithm.
  std::map<const Component*, int> indegree;
  for (const auto& comp : components_)
    indegree[comp.get()] = static_cast<int>(comp->dependencies.size());
  std::vector<const Component*> frontier;
  for (const auto& [comp, deg] : indegree)
    if (deg == 0) frontier.push_back(comp);
  std::size_t visited = 0;
  while (!frontier.empty()) {
    const Component* c = frontier.back();
    frontier.pop_back();
    ++visited;
    for (const auto& other : components_) {
      if (std::find(other->dependencies.begin(), other->dependencies.end(),
                    c->name) != other->dependencies.end()) {
        if (--indegree[other.get()] == 0) frontier.push_back(other.get());
      }
    }
  }
  if (visited != components_.size())
    throw WorkflowError("workflow: dependency graph has a cycle");
}

void Workflow::launch() {
  sim::Engine engine;
  launch(engine);
}

void Workflow::launch(sim::Engine& engine) {
  validate();
  for (const auto& [name, lp] : placements_) {
    if (!by_name_.count(name))
      throw WorkflowError("workflow: place() names unknown component '" +
                          name + "'");
    (void)lp;
  }
  completion_order_.clear();
  completions_.clear();

  // Wire launch-time state.
  for (std::size_t i = 0; i < components_.size(); ++i) {
    Component* comp = components_[i].get();
    comp->index = i;
    comp->unfinished_ranks = comp->nranks;
    comp->unsatisfied_deps = static_cast<int>(comp->dependencies.size());
    comp->failed = false;
    comp->ready = std::make_unique<sim::Event>(engine);
    comp->dependents.clear();
    const auto it = placements_.find(comp->name);
    comp->lp = it != placements_.end() ? it->second : 0;
  }
  for (auto& comp : components_) {
    for (const std::string& dep : comp->dependencies)
      by_name_[dep]->dependents.push_back(comp.get());
  }

  // Parallel partitioning: grow the engine to the placed shards and declare
  // the cross-LP Event contract for every dependency pair that spans two
  // shards — the dep -> dependent edge carries the release wake, and the
  // lookahead-0 reverse edge keeps the dep's shard from virtually
  // outrunning the dependent's wait registration (see sim::Event).
  partitioned_ = engine.parallel() && !placements_.empty();
  if (partitioned_) {
    std::uint32_t max_lp = 0;
    for (const auto& comp : components_) max_lp = std::max(max_lp, comp->lp);
    engine.ensure_lps(max_lp + 1);
    for (const auto& comp : components_) {
      for (const std::string& dep : comp->dependencies) {
        const Component* d = by_name_[dep];
        if (d->lp == comp->lp) continue;
        engine.add_lp_edge(d->lp, comp->lp, 0.0);
        engine.add_lp_edge(comp->lp, d->lp, 0.0);
      }
    }
  }

  // Spawn order: registration order, or a salt-keyed deterministic
  // permutation (Fisher-Yates over component indices). Permuting only
  // reshuffles the engine's same-time tie-breaks — any observable
  // difference means the workload depends on spawn order.
  std::vector<std::size_t> order(components_.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  if (spawn_order_salt_ != 0) {
    util::Xoshiro256 rng(spawn_order_salt_);
    for (std::size_t i = order.size(); i > 1; --i)
      std::swap(order[i - 1], order[rng.next() % i]);
  }

  active_engine_ = &engine;
  for (std::size_t i : order) {
    spawn_ranks(engine, components_[i].get());
  }

  if (obs::enabled()) {
    // Snapshot every counter/gauge series at virtual-time intervals; the
    // samples export as Chrome counter events alongside the timeline.
    sim::TraceRecorder* sink = obs_trace_ ? obs_trace_ : &trace_;
    engine.set_metric_sampler(obs::sample_interval(), [sink](SimTime t) {
      for (const auto& [series, value] : obs::registry().scalar_values())
        sink->record_counter_sample(series, t, value);
    });
    // Give the parallel-DES profiler a sink for its per-LP round spans.
    engine.set_trace(sink);
  }

  engine.run();
  engine.set_trace(nullptr);
  active_engine_ = nullptr;
  makespan_ = engine.now();

  // Completion order. Sequentially the record order IS the completion
  // order. Under partitioned dispatch record order is wall-dependent (two
  // shards' last ranks can finish in one round on different workers), so
  // the canonical order sorts by (finish time, registration index) — a pure
  // function of virtual state, identical at every worker count.
  if (partitioned_) {
    std::stable_sort(completions_.begin(), completions_.end(),
                     [](const Completion& a, const Completion& b) {
                       if (a.time != b.time) return a.time < b.time;
                       return a.index < b.index;
                     });
  }
  completion_order_.reserve(completions_.size());
  for (const Completion& c : completions_) completion_order_.push_back(c.name);
}

void Workflow::spawn_ranks(sim::Engine& engine, Component* comp,
                           bool dynamic) {
  const auto body = [this, comp](sim::Context& ctx, int rank) {
    // Gate on dependencies. All ranks of this component wait on the
    // same event; the last finishing dependency notifies it.
    while (comp->unsatisfied_deps > 0) ctx.wait(*comp->ready);

    ComponentInfo info{comp->name, comp->type, rank, comp->nranks};
    const SimTime t_start = ctx.now();
    try {
      comp->body(ctx, info);
    } catch (const ComponentFailure&) {
      // Degraded mode: the rank died, but the workflow survives.
      // Dependents are still released below — they observe the death
      // through component_failed() / missing data, not a teardown.
      comp->failed = true;
      // Post-mortem snapshot: dump the flight ring (the last data-plane
      // spans + window state) once per failed component.
      if (obs::enabled())
        obs::flight().trigger("component_failure:" + comp->name);
    }
    trace_.record_span(comp->name, comp->failed ? "failed" : "run", t_start,
                       ctx.now());

    if (--comp->unfinished_ranks == 0) {
      {
        std::lock_guard<std::mutex> lk(book_mu_);
        completions_.push_back({ctx.now(), comp->index, comp->name});
      }
      for (Component* dependent : comp->dependents) {
        if (--dependent->unsatisfied_deps == 0)
          dependent->ready->notify_all();
      }
    }
  };
  for (int rank = 0; rank < comp->nranks; ++rank) {
    std::string rank_name = comp->name + "/" + std::to_string(rank);
    auto rank_body = [body, rank](sim::Context& ctx) { body(ctx, rank); };
    if (dynamic) {
      // Mid-run spawns must land on the calling process's own LP — a
      // concurrent shard's arena is not shareable (engine.hpp, spawn_on).
      engine.spawn(std::move(rank_name), std::move(rank_body));
    } else {
      engine.spawn_on(comp->lp, std::move(rank_name), std::move(rank_body));
    }
  }
}

std::vector<std::string> Workflow::failed_components() const {
  std::vector<std::string> out;
  for (const auto& comp : components_) {
    if (comp->failed) out.push_back(comp->name);
  }
  return out;
}

bool Workflow::component_failed(const std::string& name) const {
  const auto it = by_name_.find(name);
  return it != by_name_.end() && it->second->failed;
}

std::string Workflow::to_dot() const {
  std::string out = "digraph workflow {\n  rankdir=LR;\n";
  for (const auto& comp : components_) {
    out += "  \"" + comp->name + "\" [shape=box, label=\"" + comp->name +
           "\\n" + comp->type + " x" + std::to_string(comp->nranks) +
           "\"];\n";
  }
  for (const auto& comp : components_) {
    for (const std::string& dep : comp->dependencies) {
      out += "  \"" + dep + "\" -> \"" + comp->name + "\";\n";
    }
  }
  out += "}\n";
  return out;
}

void Workflow::spawn_component(sim::Context& ctx, const std::string& name,
                               const std::string& type, int nranks,
                               ComponentFn body) {
  if (!active_engine_)
    throw WorkflowError(
        "workflow: spawn_component is only valid while launch() is running");
  if (nranks <= 0)
    throw WorkflowError("workflow: component '" + name +
                        "' needs a positive rank count");
  if (type != "remote" && type != "local")
    throw WorkflowError("workflow: component type must be 'remote' or "
                        "'local', got '" +
                        type + "'");
  auto comp = std::make_unique<Component>();
  comp->name = name;
  comp->type = type;
  comp->nranks = nranks;
  comp->body = std::move(body);
  comp->unfinished_ranks = nranks;
  comp->unsatisfied_deps = 0;  // starts immediately
  comp->ready = std::make_unique<sim::Event>(ctx.engine());
  Component* raw = comp.get();
  {
    // Dynamic registration can race between shards under parallel dispatch;
    // the registration index (completion tie-break) is the lock-acquisition
    // order, which for concurrent spawners is legitimately wall-dependent.
    std::lock_guard<std::mutex> lk(book_mu_);
    if (by_name_.count(name))
      throw WorkflowError("workflow: duplicate component '" + name + "'");
    comp->index = components_.size();
    by_name_[name] = raw;
    components_.push_back(std::move(comp));
  }
  spawn_ranks(*active_engine_, raw, /*dynamic=*/true);
}

}  // namespace simai::core
