// Workflow: the high-level orchestration abstraction (§3.5).
//
// Components are registered with a name, a placement type ("remote" =
// dispatched to compute nodes via the launcher, "local" = on the head
// node — both are DES process groups here, the type is recorded placement
// metadata), a rank count, and explicit dependencies. launch() validates
// the DAG (unknown dependencies, cycles), then runs every component: a
// component's ranks start once ALL ranks of ALL its dependencies have
// finished, exactly like the paper's Listing 1 semantics where run_sim2
// waits on run_sim.
//
//   Workflow w;
//   w.component("sim", "remote", 6, {}, run_sim);
//   w.component("train", "remote", 6, {"sim"}, run_train);
//   w.launch();
#pragma once

#include <atomic>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "sim/engine.hpp"
#include "sim/trace.hpp"
#include "util/json.hpp"

namespace simai::core {

class WorkflowError : public Error {
 public:
  using Error::Error;
};

/// Thrown by a component body to declare the component dead (simulated
/// crash, unrecoverable transport failure). Unlike any other exception —
/// which tears the whole engine down — a ComponentFailure is absorbed by
/// the workflow: the rank is marked failed, dependents are still released
/// (degraded mode), and the run continues. Query failed_components() after
/// launch() to see what died.
class ComponentFailure : public WorkflowError {
 public:
  using WorkflowError::WorkflowError;
};

/// Identity handed to a component body.
struct ComponentInfo {
  std::string name;
  std::string type;  // "remote" | "local"
  int rank = 0;
  int nranks = 1;
};

using ComponentFn = std::function<void(sim::Context&, const ComponentInfo&)>;

class Workflow {
 public:
  explicit Workflow(util::Json sys_config = {});

  /// Register a component. Names must be unique; `dependencies` reference
  /// previously or later registered components (resolved at launch).
  Workflow& component(const std::string& name, const std::string& type,
                      int nranks, std::vector<std::string> dependencies,
                      ComponentFn body);

  /// Single-rank convenience.
  Workflow& component(const std::string& name, const std::string& type,
                      std::vector<std::string> dependencies,
                      ComponentFn body) {
    return component(name, type, 1, std::move(dependencies), std::move(body));
  }

  /// Deterministically permute the order components are spawned at
  /// launch() (0, the default, keeps registration order). The DES breaks
  /// same-virtual-time ties by spawn sequence, so a workflow whose results
  /// change under a different salt is relying on tie-break accidents — the
  /// N-way determinism test (sim_parity_test) launches the same workload
  /// under several salts and requires identical canonical timelines.
  Workflow& spawn_order_salt(std::uint64_t salt) {
    spawn_order_salt_ = salt;
    return *this;
  }

  /// Pin a component's ranks onto logical-process shard `lp` when launch()
  /// runs on a parallel engine (Engine(Parallel{N}), engine.hpp). launch()
  /// grows the engine to the highest placed shard and declares lookahead-0
  /// edges BOTH ways between the shards of every dependency pair — the
  /// cross-LP Event contract (the dep's shard carries the release wake; the
  /// reverse edge keeps the dep from virtually outrunning the waiter's
  /// registration). Unplaced components land on LP 0; on a sequential
  /// engine every placement collapses onto LP 0 and this is a no-op. May be
  /// called before the component is registered; names are checked at
  /// launch().
  Workflow& place(const std::string& component, std::uint32_t lp) {
    placements_[component] = lp;
    return *this;
  }

  /// Run the whole DAG to completion on an internal engine.
  /// Throws WorkflowError on graph problems before starting anything.
  void launch();

  /// Run on a caller-provided engine (for composition with other processes).
  void launch(sim::Engine& engine);

  /// Dynamically extend a RUNNING workflow from inside a component body:
  /// the new component starts immediately (its dependencies are whatever
  /// the spawning component has already observed). This is the "dynamic
  /// workflow" motif — adaptive campaigns that decide mid-run which tasks
  /// to launch next.
  void spawn_component(sim::Context& ctx, const std::string& name,
                       const std::string& type, int nranks,
                       ComponentFn body);

  /// Single-rank convenience.
  void spawn_component(sim::Context& ctx, const std::string& name,
                       const std::string& type, ComponentFn body) {
    spawn_component(ctx, name, type, 1, std::move(body));
  }

  /// Virtual makespan of the last launch().
  SimTime makespan() const { return makespan_; }

  /// Execution order of component completion (for tests / reporting).
  const std::vector<std::string>& completion_order() const {
    return completion_order_;
  }

  /// Components with at least one rank that threw ComponentFailure during
  /// the last launch(), in registration order.
  std::vector<std::string> failed_components() const;
  bool component_failed(const std::string& name) const;

  sim::TraceRecorder& trace() { return trace_; }
  std::size_t component_count() const { return components_.size(); }

  /// Observability sink: while the obs plane is armed, launch() installs a
  /// virtual-time engine sampler that snapshots obs::Registry scalar series
  /// into this recorder as counter samples. Defaults to the workflow's own
  /// trace(); harnesses that expose a separate result trace point it there
  /// so counter events land in the exported timeline.
  void set_obs_trace(sim::TraceRecorder* trace) { obs_trace_ = trace; }

  /// GraphViz DOT rendering of the dependency DAG (components as nodes,
  /// dependency edges, rank counts and placement types as labels).
  std::string to_dot() const;

 private:
  struct Component {
    std::string name;
    std::string type;
    int nranks = 1;
    std::vector<std::string> dependencies;
    ComponentFn body;
    std::uint32_t lp = 0;       // placement shard (see place())
    std::size_t index = 0;      // registration order, completion tie-break
    // launch-time state. The counters are atomic because under parallel
    // dispatch the last ranks of two different dependencies can finish in
    // the same round on different worker threads and decrement a shared
    // dependent's unsatisfied_deps concurrently; the atomics make exactly
    // one of them observe zero and fire the release.
    std::atomic<int> unfinished_ranks{0};
    std::atomic<int> unsatisfied_deps{0};
    std::atomic<bool> failed{false};  // some rank threw ComponentFailure
    std::unique_ptr<sim::Event> ready;
    std::vector<Component*> dependents;
  };

  void validate() const;
  /// `dynamic` = mid-run spawn_component registration: ranks spawn onto the
  /// calling process's LP instead of the recorded placement.
  void spawn_ranks(sim::Engine& engine, Component* comp, bool dynamic = false);

  sim::Engine* active_engine_ = nullptr;  // set while launch() runs
  bool partitioned_ = false;  // launch() ran placements on a parallel engine
  util::Json sys_config_;
  std::uint64_t spawn_order_salt_ = 0;
  std::map<std::string, std::uint32_t> placements_;
  std::vector<std::unique_ptr<Component>> components_;
  std::map<std::string, Component*> by_name_;
  sim::TraceRecorder trace_;
  sim::TraceRecorder* obs_trace_ = nullptr;
  SimTime makespan_ = 0.0;
  /// Guards the completion log and dynamic registration (spawn_component)
  /// while ranks run on worker threads.
  std::mutex book_mu_;
  struct Completion {
    SimTime time = 0.0;
    std::size_t index = 0;  // Component::index
    std::string name;
  };
  std::vector<Completion> completions_;
  std::vector<std::string> completion_order_;
};

}  // namespace simai::core
