// AI: emulates the ML component of a coupled workflow (§3.4).
//
// Like the paper's AI class it encapsulates the training loop's compute and
// communication: an iteration either charges a configured run_time
// (emulation mode, matching a profiled production trainer — 0.061 s/iter
// for the nekRS-ML GNN) or actually trains the bundled MLP with DDP over
// the rank communicator (real mode), in which case the charged time is the
// modelled device time for the real FLOPs performed.
//
// Data acquisition follows the online-training pattern: ingest_staged()
// polls the DataStore for newly staged sample tensors and feeds the
// DataLoader; steering (§4.1's "instructing the nekRS component to stop")
// uses a control key through the same store.
#pragma once

#include <memory>
#include <optional>

#include "ai/dataloader.hpp"
#include "ai/ddp.hpp"
#include "core/datastore.hpp"
#include "kernels/device.hpp"
#include "util/distributions.hpp"
#include "util/stats.hpp"

namespace simai::core {

class AiComponent {
 public:
  /// `config`:
  ///   run_time      number|dist — per-iteration duration (emulation mode)
  ///   model         {"layers":[...], "activation":...} — real MLP (needed
  ///                 for real mode and ingest-based training)
  ///   optimizer     {"optimizer":"adam","lr":...}
  ///   batch_size    mini-batch rows (default 32)
  ///   device        "cpu"|"xpu" (modelled time in real mode)
  ///   capacity      data loader sample window (default 4096)
  ///   real_train    true => actually train the MLP each iteration
  ///
  /// A config with a model but neither run_time nor real_train is an
  /// inference-only component (the serving plane's replicas): infer /
  /// infer_batch work, train_iteration throws ConfigError.
  AiComponent(std::string name, const util::Json& config,
              std::uint64_t seed = 7);

  void set_datastore(DataStore* store) { datastore_ = store; }
  void set_comm(net::Communicator* comm, int rank, int nranks);
  void set_trace(sim::TraceRecorder* trace) { trace_ = trace; }

  /// One training iteration: charges time; in real mode also runs a DDP
  /// train step on a batch (no-op if the loader is empty). Returns the
  /// loss when a real step ran.
  std::optional<double> train_iteration(sim::Context& ctx);

  /// One inference pass over `x` (real model required).
  ai::Tensor infer(sim::Context& ctx, const ai::Tensor& x);

  /// Batched inference entry point for the serving plane (simai::serve):
  /// stacks the per-request row blocks into ONE forward pass and charges
  /// the modelled device time once for the whole batch — the continuous-
  /// batching payoff. Inputs must share the model's input width; the result
  /// is the stacked output, rows in input order (callers slice per request).
  ai::Tensor infer_batch(sim::Context& ctx,
                         const std::vector<const ai::Tensor*>& batch);

  /// Replace the model parameters from a flat weight vector (a replica
  /// pulling published weights via the DataStore). Size must match
  /// parameter_count(); no virtual time is charged — the transport that
  /// delivered the bytes already was.
  void load_weights(const std::vector<double>& flat);
  /// Current parameters as one flat vector (what a publisher stages).
  std::vector<double> weights();

  /// Poll `key`; when present, read it, feed the loader, optionally clean.
  /// Returns true if new data was ingested.
  bool ingest_staged(sim::Context& ctx, std::string_view key,
                     bool clean_after = false);

  /// Steering: publish / check a stop-control key.
  void send_stop_signal(sim::Context& ctx, std::string_view key = "stop");
  bool check_stop_signal(sim::Context& ctx, std::string_view key = "stop");

  const std::string& name() const { return name_; }
  std::uint64_t iterations_run() const { return iterations_; }
  ai::DataLoader* loader() { return loader_ ? &*loader_ : nullptr; }
  ai::DdpTrainer* trainer() { return trainer_ ? &*trainer_ : nullptr; }
  /// Stats: "iter_time", "loss" (real mode), "ingest_bytes".
  const util::StatSeries& stats() const { return stats_; }

 private:
  std::string name_;
  DataStore* datastore_ = nullptr;
  net::Communicator* comm_ = nullptr;
  int rank_ = 0;
  int nranks_ = 1;
  sim::TraceRecorder* trace_ = nullptr;
  std::unique_ptr<util::Distribution> run_time_;  // may be null (real mode)
  bool real_train_ = false;
  std::size_t batch_size_ = 32;
  kernels::DeviceModel device_ = kernels::DeviceModel::cpu();
  std::optional<ai::DataLoader> loader_;
  std::optional<ai::Mlp> model_;
  std::optional<ai::DdpTrainer> trainer_;
  std::unique_ptr<net::Communicator> solo_comm_;
  util::Json optimizer_spec_;
  util::StatSeries stats_;
  std::uint64_t iterations_ = 0;
  util::Xoshiro256 rng_;

  void ensure_trainer(sim::Context& ctx);
  SimTime modeled_step_time(std::size_t batch_rows);
};

}  // namespace simai::core
