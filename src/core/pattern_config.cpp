// JSON (de)serialization for the pattern experiment configurations — the
// config surface the CLI runner (tools/simai_run) exposes, mirroring how
// the reference SimAI-Bench drives mini-apps from JSON documents.
#include "core/experiment.hpp"

namespace simai::core {

Pattern1Config pattern1_from_json(const util::Json& j) {
  Pattern1Config c;
  c.backend = platform::parse_backend(
      j.get("backend", std::string(platform::backend_name(c.backend))));
  c.nodes = static_cast<int>(j.get("nodes", c.nodes));
  c.pairs_per_node =
      static_cast<int>(j.get("pairs_per_node", c.pairs_per_node));
  c.representative_pairs = static_cast<int>(
      j.get("representative_pairs", c.representative_pairs));
  c.payload_bytes = static_cast<std::uint64_t>(
      j.get("payload_bytes", static_cast<std::int64_t>(c.payload_bytes)));
  c.payload_cap = static_cast<std::size_t>(
      j.get("payload_cap", static_cast<std::int64_t>(c.payload_cap)));
  c.train_iters = j.get("train_iters", c.train_iters);
  c.max_sim_iters = j.get("max_sim_iters", c.max_sim_iters);
  c.sim_iter_time = j.get("sim_iter_time", c.sim_iter_time);
  c.sim_iter_std = j.get("sim_iter_std", c.sim_iter_std);
  c.train_iter_time = j.get("train_iter_time", c.train_iter_time);
  c.train_iter_std = j.get("train_iter_std", c.train_iter_std);
  c.sim_init_time = j.get("sim_init_time", c.sim_init_time);
  c.train_init_time = j.get("train_init_time", c.train_init_time);
  c.write_every = static_cast<int>(j.get("write_every", c.write_every));
  c.read_every = static_cast<int>(j.get("read_every", c.read_every));
  c.poll_interval = j.get("poll_interval", c.poll_interval);
  c.seed = static_cast<std::uint64_t>(
      j.get("seed", static_cast<std::int64_t>(c.seed)));
  c.record_trace = j.get("record_trace", c.record_trace);
  c.spawn_order_salt = static_cast<std::uint64_t>(
      j.get("spawn_order_salt", static_cast<std::int64_t>(c.spawn_order_salt)));
  c.workers = static_cast<unsigned>(
      j.get("workers", static_cast<std::int64_t>(c.workers)));
  c.window = j.get("window", c.window);
  return c;
}

util::Json pattern1_to_json(const Pattern1Config& c) {
  util::Json j;
  j["backend"] = std::string(platform::backend_name(c.backend));
  j["nodes"] = c.nodes;
  j["pairs_per_node"] = c.pairs_per_node;
  j["representative_pairs"] = c.representative_pairs;
  j["payload_bytes"] = static_cast<std::int64_t>(c.payload_bytes);
  j["payload_cap"] = static_cast<std::int64_t>(c.payload_cap);
  j["train_iters"] = c.train_iters;
  j["max_sim_iters"] = c.max_sim_iters;
  j["sim_iter_time"] = c.sim_iter_time;
  j["sim_iter_std"] = c.sim_iter_std;
  j["train_iter_time"] = c.train_iter_time;
  j["train_iter_std"] = c.train_iter_std;
  j["sim_init_time"] = c.sim_init_time;
  j["train_init_time"] = c.train_init_time;
  j["write_every"] = c.write_every;
  j["read_every"] = c.read_every;
  j["poll_interval"] = c.poll_interval;
  j["seed"] = static_cast<std::int64_t>(c.seed);
  j["record_trace"] = c.record_trace;
  j["spawn_order_salt"] = static_cast<std::int64_t>(c.spawn_order_salt);
  j["workers"] = static_cast<std::int64_t>(c.workers);
  j["window"] = c.window;
  return j;
}

Pattern2Config pattern2_from_json(const util::Json& j) {
  Pattern2Config c;
  c.backend = platform::parse_backend(
      j.get("backend", std::string(platform::backend_name(c.backend))));
  c.num_sims = static_cast<int>(j.get("num_sims", c.num_sims));
  c.ai_reader_ranks =
      static_cast<int>(j.get("ai_reader_ranks", c.ai_reader_ranks));
  c.payload_bytes = static_cast<std::uint64_t>(
      j.get("payload_bytes", static_cast<std::int64_t>(c.payload_bytes)));
  c.payload_cap = static_cast<std::size_t>(
      j.get("payload_cap", static_cast<std::int64_t>(c.payload_cap)));
  c.train_iters = j.get("train_iters", c.train_iters);
  c.sim_iter_time = j.get("sim_iter_time", c.sim_iter_time);
  c.train_iter_time = j.get("train_iter_time", c.train_iter_time);
  c.write_every = static_cast<int>(j.get("write_every", c.write_every));
  c.read_every = static_cast<int>(j.get("read_every", c.read_every));
  c.poll_interval = j.get("poll_interval", c.poll_interval);
  c.seed = static_cast<std::uint64_t>(
      j.get("seed", static_cast<std::int64_t>(c.seed)));
  c.spawn_order_salt = static_cast<std::uint64_t>(
      j.get("spawn_order_salt", static_cast<std::int64_t>(c.spawn_order_salt)));
  c.workers = static_cast<unsigned>(
      j.get("workers", static_cast<std::int64_t>(c.workers)));
  c.window = j.get("window", c.window);
  return c;
}

util::Json pattern2_to_json(const Pattern2Config& c) {
  util::Json j;
  j["backend"] = std::string(platform::backend_name(c.backend));
  j["num_sims"] = c.num_sims;
  j["ai_reader_ranks"] = c.ai_reader_ranks;
  j["payload_bytes"] = static_cast<std::int64_t>(c.payload_bytes);
  j["payload_cap"] = static_cast<std::int64_t>(c.payload_cap);
  j["train_iters"] = c.train_iters;
  j["sim_iter_time"] = c.sim_iter_time;
  j["train_iter_time"] = c.train_iter_time;
  j["write_every"] = c.write_every;
  j["read_every"] = c.read_every;
  j["poll_interval"] = c.poll_interval;
  j["seed"] = static_cast<std::int64_t>(c.seed);
  j["spawn_order_salt"] = static_cast<std::int64_t>(c.spawn_order_salt);
  j["workers"] = static_cast<std::int64_t>(c.workers);
  j["window"] = c.window;
  return j;
}

}  // namespace simai::core
