#include "core/stream.hpp"

#include "obs/metrics.hpp"
#include "obs/obs.hpp"

namespace simai::core {

namespace {

// Observability: one completed stream step on either side. Records a
// labeled span on the acting process's track (publish side starts the flow,
// consume side finishes it) and the per-stream registry metrics. No-ops
// are handled by the callers' obs::enabled() gate.
void obs_record_step(sim::TraceRecorder* trace, sim::Context& ctx,
                     const std::string& stream, bool publish,
                     std::uint64_t step, std::uint64_t bytes,
                     std::uint64_t flow_id, SimTime t0) {
  const char* side = publish ? "publish" : "consume";
  const SimTime now = ctx.now();
  auto& reg = obs::registry();
  // *_at: also land each observation in the virtual-time window covering
  // `now`, feeding the live per-stream series (obs/window.hpp).
  reg.histogram(publish ? "stream_publish_seconds" : "stream_consume_seconds",
                {{"stream", stream}})
      .observe_at(now - t0, now);
  reg.counter("stream_steps_total", {{"stream", stream}, {"side", side}})
      .inc_at(1.0, now);
  if (publish)
    reg.counter("stream_bytes_total", {{"stream", stream}})
        .inc_at(static_cast<double>(bytes), now);
  if (!trace) return;
  sim::LabeledSpan span;
  span.track = ctx.name();
  span.category = publish ? "stream_publish" : "stream_consume";
  span.start = t0;
  span.end = ctx.now();
  if (obs::TraceContext* oc = obs::context(ctx.obs_id()))
    span.span_id = obs::next_span_id(*oc);
  span.flow_id = flow_id;
  span.flow_start = publish;
  span.labels = {{"stream", stream},
                 {"step", std::to_string(step)},
                 {"bytes", std::to_string(bytes)}};
  obs::flight().record(sim::to_flight(span));
  trace->record_labeled_span(std::move(span));
}

}  // namespace

std::uint64_t StreamStep::total_nominal() const {
  std::uint64_t total = 0;
  for (const auto& [name, n] : nominal) total += n;
  return total;
}

// ---------------------------------------------------------------------------
// StreamBroker
// ---------------------------------------------------------------------------

StreamBroker::StreamBroker(sim::Engine& engine,
                           const platform::TransportModel* model,
                           platform::TransportContext transport,
                           std::size_t queue_limit)
    : engine_(engine),
      model_(model),
      transport_(transport),
      queue_limit_(queue_limit) {}

StreamBroker::Stream& StreamBroker::stream_of(const std::string& name,
                                              bool create) {
  auto it = streams_.find(name);
  if (it == streams_.end()) {
    if (!create) throw Error("stream '" + name + "' does not exist");
    Stream s;
    s.queue = std::make_unique<sim::Channel<StreamStep>>(engine_, queue_limit_);
    s.state_change = std::make_unique<sim::Event>(engine_);
    it = streams_.emplace(name, std::move(s)).first;
  }
  return it->second;
}

StreamWriter StreamBroker::open_writer(const std::string& stream_name) {
  Stream& s = stream_of(stream_name, true);
  if (s.writer_open)
    throw Error("stream '" + stream_name + "' already has a writer");
  s.writer_open = true;
  return StreamWriter(*this, stream_name);
}

StreamReader StreamBroker::open_reader(const std::string& stream_name) {
  Stream& s = stream_of(stream_name, true);
  if (s.reader_open)
    throw Error("stream '" + stream_name + "' already has a reader");
  s.reader_open = true;
  return StreamReader(*this, stream_name);
}

SimTime StreamBroker::charge_write(sim::Context& ctx, std::uint64_t bytes) {
  if (!model_) return 0.0;
  const SimTime t = model_->cost(platform::BackendKind::Stream,
                                 platform::StoreOp::Write, bytes, transport_);
  ctx.delay(t);
  util::StatSeries& stats = stats_.write();
  stats["step_write_time"].add(t);
  stats["step_bytes"].add(static_cast<double>(bytes));
  return t;
}

SimTime StreamBroker::charge_read(sim::Context& ctx, std::uint64_t bytes) {
  if (!model_) return 0.0;
  const SimTime t = model_->cost(platform::BackendKind::Stream,
                                 platform::StoreOp::Read, bytes, transport_);
  ctx.delay(t);
  stats_.write()["step_read_time"].add(t);
  return t;
}

// ---------------------------------------------------------------------------
// StreamWriter
// ---------------------------------------------------------------------------

StreamWriter::StreamWriter(StreamBroker& broker, std::string name)
    : broker_(broker), name_(std::move(name)) {}

void StreamWriter::begin_step(sim::Context&) {
  if (closed_) throw Error("stream '" + name_ + "': begin_step after close");
  if (open_step_)
    throw Error("stream '" + name_ + "': begin_step with a step open");
  open_step_.emplace();
  open_step_->step_index = next_step_;
}

void StreamWriter::put(std::string_view variable, util::Payload data,
                       std::uint64_t nominal_bytes) {
  if (!open_step_)
    throw Error("stream '" + name_ + "': put outside begin/end step");
  open_step_->nominal[std::string(variable)] =
      nominal_bytes ? nominal_bytes : data.size();
  open_step_->variables[std::string(variable)] = std::move(data);
}

void StreamWriter::end_step(sim::Context& ctx) {
  if (!open_step_)
    throw Error("stream '" + name_ + "': end_step without begin_step");
  StreamBroker::Stream& s = broker_.stream_of(name_, false);
  const bool observed = obs::enabled();
  const SimTime obs_t0 = observed ? ctx.now() : 0.0;
  const std::uint64_t step = open_step_->step_index;
  const std::uint64_t bytes = open_step_->total_nominal();
  if (observed) {
    // Stamp the producer's flow id into the step before it travels — the
    // consumer's span closes this flow.
    if (obs::TraceContext* oc = obs::context(ctx.obs_id()))
      open_step_->flow_id = obs::next_span_id(*oc);
  }
  const std::uint64_t flow = open_step_->flow_id;
  // Writer-side transfer cost: the data plane is pipelined, so the
  // producer pays the full step cost on publish...
  broker_.charge_write(ctx, bytes);
  // The step counter advances before the step is enqueued, so the channel
  // edge covers it and the reader-side check in begin_step holds.
  ++s.published.write();
  // ...then blocks (virtual time) while the bounded queue is full.
  s.queue->put(ctx, std::move(*open_step_));
  open_step_.reset();
  ++next_step_;
  s.state_change->notify_all();
  if (observed)
    obs_record_step(broker_.trace_, ctx, name_, /*publish=*/true, step, bytes,
                    flow, obs_t0);
}

void StreamWriter::close(sim::Context&) {
  if (closed_) return;
  if (open_step_)
    throw Error("stream '" + name_ + "': close with a step open");
  closed_ = true;
  StreamBroker::Stream& s = broker_.stream_of(name_, false);
  s.closed = true;
  s.state_change->notify_all();
}

void StreamWriter::fail(sim::Context&) {
  if (closed_) return;
  closed_ = true;            // no further writer ops
  open_step_.reset();        // an aborted step never reaches the reader
  StreamBroker::Stream& s = broker_.stream_of(name_, false);
  s.failed = true;
  s.state_change->notify_all();
}

// ---------------------------------------------------------------------------
// StreamReader
// ---------------------------------------------------------------------------

StreamReader::StreamReader(StreamBroker& broker, std::string name)
    : broker_(broker), name_(std::move(name)) {}

StepStatus StreamReader::begin_step(sim::Context& ctx, double timeout) {
  if (current_)
    throw Error("stream '" + name_ + "': begin_step with a step open");
  StreamBroker::Stream& s = broker_.stream_of(name_, false);
  const bool observed = obs::enabled();
  const SimTime obs_t0 = observed ? ctx.now() : 0.0;
  const SimTime deadline = timeout >= 0 ? ctx.now() + timeout : -1.0;
  while (true) {
    if (auto step = s.queue->try_get()) {
      current_ = std::move(*step);
      // Instrumented read of the writer's step counter: the channel edge
      // from try_get orders it, so the race detector stays quiet on every
      // legal schedule — and the invariant itself guards queue integrity.
      if (current_->step_index >= s.published.read())
        throw Error("stream '" + name_ + "': step " +
                    std::to_string(current_->step_index) +
                    " delivered before it was published");
      ++consumed_;
      // The consume span covers the wait: its start is begin_step entry,
      // so queue starvation shows up as span length in the trace.
      if (observed)
        obs_record_step(broker_.trace_, ctx, name_, /*publish=*/false,
                        current_->step_index, current_->total_nominal(),
                        current_->flow_id, obs_t0);
      return StepStatus::Ok;
    }
    // Order matters: already-published steps drain first; then producer
    // death outranks a clean close (fail() after close cannot happen, but
    // a failed stream must never read as EndOfStream).
    if (s.failed) return StepStatus::ProducerFailed;
    if (s.closed) return StepStatus::EndOfStream;
    if (deadline >= 0) {
      const SimTime remaining = deadline - ctx.now();
      if (remaining <= 0) return StepStatus::NotReady;
      if (!ctx.wait_for(*s.state_change, remaining))
        return StepStatus::NotReady;
    } else {
      ctx.wait(*s.state_change);
    }
  }
}

util::Payload StreamReader::get(sim::Context& ctx,
                                std::string_view variable) {
  if (!current_)
    throw Error("stream '" + name_ + "': get outside begin/end step");
  const auto it = current_->variables.find(variable);
  if (it == current_->variables.end())
    throw Error("stream '" + name_ + "': no variable '" +
                std::string(variable) + "' in step");
  broker_.charge_read(ctx, nominal_of(variable));
  return it->second;
}

std::uint64_t StreamReader::nominal_of(std::string_view variable) const {
  if (!current_) return 0;
  const auto it = current_->nominal.find(variable);
  return it == current_->nominal.end() ? 0 : it->second;
}

void StreamReader::end_step() {
  if (!current_)
    throw Error("stream '" + name_ + "': end_step without begin_step");
  current_.reset();
}

std::uint64_t StreamReader::current_step_index() const {
  return current_ ? current_->step_index : 0;
}

}  // namespace simai::core
