#include "core/ai_component.hpp"

#include <optional>

namespace simai::core {

namespace {
// ScopedSpan clock adapter: reads the current virtual time from the
// process's Context.
SimTime ctx_clock(const void* arg) {
  return static_cast<const sim::Context*>(arg)->now();
}
}  // namespace

AiComponent::AiComponent(std::string name, const util::Json& config,
                         std::uint64_t seed)
    : name_(std::move(name)), rng_(seed) {
  if (!config.is_object() && !config.is_null())
    throw ConfigError("ai component config must be an object");
  if (config.is_object()) {
    if (const util::Json* rt = config.find("run_time"))
      run_time_ = util::make_distribution(*rt);
    real_train_ = config.get("real_train", false);
    batch_size_ = static_cast<std::size_t>(config.get("batch_size", 32));
    device_ = kernels::DeviceModel::of(
        kernels::parse_device(config.get("device", "cpu")));
    if (const util::Json* model = config.find("model")) {
      model_.emplace(ai::Mlp::from_json(*model));
      const std::size_t in = model_->layer(0).in_features();
      const std::size_t out =
          model_->layer(model_->num_layers() - 1).out_features();
      loader_.emplace(in, out,
                      static_cast<std::size_t>(config.get("capacity", 4096)),
                      seed);
    }
    if (const util::Json* opt = config.find("optimizer"))
      optimizer_spec_ = *opt;
  }
  if (real_train_ && !model_)
    throw ConfigError("ai component: real_train requires a model spec");
  if (!real_train_ && !run_time_ && !model_)
    throw ConfigError(
        "ai component: emulation mode requires run_time (or set real_train; "
        "a bare model spec makes an inference-only component)");
}

void AiComponent::set_comm(net::Communicator* comm, int rank, int nranks) {
  comm_ = comm;
  rank_ = rank;
  nranks_ = nranks;
}

void AiComponent::ensure_trainer(sim::Context& ctx) {
  if (trainer_ || !model_) return;
  if (!comm_) {
    // Single-replica training: a one-rank communicator on this engine.
    solo_comm_ = std::make_unique<net::Communicator>(ctx.engine(), 1);
    comm_ = solo_comm_.get();
    rank_ = 0;
    nranks_ = 1;
  }
  trainer_.emplace(std::move(*model_), ai::make_optimizer(optimizer_spec_),
                   *comm_, rank_);
  model_.reset();
  trainer_->sync_parameters(ctx);
}

SimTime AiComponent::modeled_step_time(std::size_t batch_rows) {
  if (!trainer_ && !model_) return 0.0;
  // fwd + bwd ~ 6 * params * batch FLOPs (2 fwd + 4 bwd), the standard
  // dense-training estimate.
  const std::size_t params = trainer_
                                 ? trainer_->model().parameter_count()
                                 : model_->parameter_count();
  const double flops = 6.0 * static_cast<double>(params) *
                       static_cast<double>(batch_rows);
  return device_.compute_time(flops, params * sizeof(double) * 3);
}

std::optional<double> AiComponent::train_iteration(sim::Context& ctx) {
  const SimTime t_start = ctx.now();
  // RAII iter span: closed by the ScopedSpan destructor at the then-current
  // clock, so every exit path records the iteration.
  std::optional<sim::ScopedSpan> iter_span;
  if (trace_)
    iter_span.emplace(*trace_, name_, "iter", t_start, &ctx_clock, &ctx);
  std::optional<double> loss;

  if (real_train_) {
    ensure_trainer(ctx);
    if (loader_ && !loader_->empty()) {
      auto [x, y] = loader_->sample_batch(batch_size_);
      loss = trainer_->train_step(ctx, x, y);
      stats_["loss"].add(*loss);
      ctx.delay(modeled_step_time(x.rows()));
    } else {
      // Nothing to train on yet: idle briefly, like a starved data loader.
      ctx.delay(run_time_ ? run_time_->sample(rng_) : 1e-3);
    }
  } else {
    if (!run_time_)
      throw ConfigError(
          "ai component '" + name_ +
          "' is inference-only (no run_time / real_train): cannot train");
    ctx.delay(run_time_->sample(rng_));
    // Optionally run a real step too (model configured, loader non-empty):
    // keeps the emulation honest without changing the charged time.
    if (model_ || trainer_) {
      ensure_trainer(ctx);
      if (loader_ && !loader_->empty()) {
        auto [x, y] = loader_->sample_batch(batch_size_);
        loss = trainer_->train_step(ctx, x, y);
        stats_["loss"].add(*loss);
      }
    }
  }

  ++iterations_;
  const SimTime elapsed = ctx.now() - t_start;
  stats_["iter_time"].add(elapsed);
  return loss;
}

ai::Tensor AiComponent::infer(sim::Context& ctx, const ai::Tensor& x) {
  ensure_trainer(ctx);
  if (!trainer_)
    throw ConfigError("ai component: inference requires a model spec");
  // Forward-only: ~2 * params * batch FLOPs.
  const double flops = 2.0 *
                       static_cast<double>(trainer_->model().parameter_count()) *
                       static_cast<double>(x.rows());
  ctx.delay(device_.compute_time(flops));
  return trainer_->infer(x);
}

ai::Tensor AiComponent::infer_batch(sim::Context& ctx,
                                    const std::vector<const ai::Tensor*>& batch) {
  ensure_trainer(ctx);
  if (!trainer_)
    throw ConfigError("ai component: inference requires a model spec");
  std::size_t total_rows = 0;
  const std::size_t cols = batch.empty() ? 0 : batch.front()->cols();
  for (const ai::Tensor* t : batch) {
    if (t->cols() != cols)
      throw ConfigError("ai component: ragged batch (input widths differ)");
    total_rows += t->rows();
  }
  if (total_rows == 0) return ai::Tensor();
  ai::Tensor stacked(total_rows, cols);
  std::size_t row = 0;
  for (const ai::Tensor* t : batch) {
    for (std::size_t r = 0; r < t->rows(); ++r, ++row)
      for (std::size_t c = 0; c < cols; ++c) stacked.at(row, c) = t->at(r, c);
  }
  // One forward for the whole batch: ~2 * params * rows FLOPs, charged once
  // — per-request cost amortizes with batch size, which is the continuous-
  // batching scheduler's entire reason to exist.
  const double flops = 2.0 *
                       static_cast<double>(trainer_->model().parameter_count()) *
                       static_cast<double>(total_rows);
  ctx.delay(device_.compute_time(flops));
  return trainer_->infer(stacked);
}

void AiComponent::load_weights(const std::vector<double>& flat) {
  if (trainer_)
    trainer_->model().load_parameters(flat);
  else if (model_)
    model_->load_parameters(flat);
  else
    throw ConfigError("ai component: load_weights requires a model spec");
}

std::vector<double> AiComponent::weights() {
  if (trainer_) return trainer_->model().flatten_parameters();
  if (model_) return model_->flatten_parameters();
  throw ConfigError("ai component: weights() requires a model spec");
}

bool AiComponent::ingest_staged(sim::Context& ctx, std::string_view key,
                                bool clean_after) {
  if (!datastore_)
    throw kv::StoreError("ai component '" + name_ + "' has no datastore");
  util::Payload packed;
  if (!datastore_->stage_read(&ctx, key, packed)) return false;
  if (loader_) {
    // Payload capping can truncate staged tensors; only feed intact ones.
    try {
      loader_->add_packed(packed.view());
      stats_["ingest_bytes"].add(static_cast<double>(packed.size()));
    } catch (const Error&) {
      stats_["ingest_truncated"].add(1.0);
    }
  }
  if (clean_after) datastore_->clean_staged_data(&ctx, key);
  return true;
}

void AiComponent::send_stop_signal(sim::Context& ctx, std::string_view key) {
  if (!datastore_)
    throw kv::StoreError("ai component '" + name_ + "' has no datastore");
  datastore_->stage_write(&ctx, key, as_bytes_view("1"));
}

bool AiComponent::check_stop_signal(sim::Context& ctx, std::string_view key) {
  if (!datastore_)
    throw kv::StoreError("ai component '" + name_ + "' has no datastore");
  return datastore_->poll_staged_data(&ctx, key);
}

}  // namespace simai::core
