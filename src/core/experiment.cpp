#include "core/experiment.hpp"

#include <algorithm>
#include <cmath>

#include "core/stream.hpp"
#include "kv/memory_store.hpp"
#include "obs/metrics.hpp"
#include "obs/obs.hpp"

namespace simai::core {

void absorb_datastore_stats(ComponentStats& into, const DataStore& store) {
  const auto& s = store.stats().all();
  const auto merge = [&](const char* key, util::RunningStats& dst) {
    const auto it = s.find(key);
    if (it != s.end()) dst.merge(it->second);
  };
  merge("read_time", into.read_time);
  merge("write_time", into.write_time);
  merge("read_throughput", into.read_throughput);
  merge("write_throughput", into.write_throughput);
  into.transport_events += store.transport_events();
  into.recovery.merge(store.recovery());
}

namespace {

/// Synthetic snapshot payload: deterministic bytes. Only the bytes the
/// store will actually keep are materialized (min(nominal, cap)); the
/// nominal size is declared separately at stage_write time, so a 32 MB x
/// 127-rank experiment does not allocate gigabytes. Built once per rank as
/// an immutable Payload and re-staged every snapshot by refcount.
util::Payload make_payload(std::uint64_t nominal, std::size_t cap,
                           std::uint64_t salt) {
  const std::size_t real =
      cap == 0 ? static_cast<std::size_t>(nominal)
               : std::min<std::size_t>(cap, static_cast<std::size_t>(nominal));
  Bytes p(real);
  for (std::size_t i = 0; i < p.size(); ++i)
    p[i] = static_cast<std::byte>((i * 131 + salt) & 0xFF);
  return util::Payload::from_bytes(std::move(p));
}

util::Json time_dist(double mean, double stddev) {
  if (stddev <= 0.0) return util::Json(mean);
  // Iteration times are positive and right-skewed (occasional stalls), so a
  // clamped normal would bias the mean upward; a lognormal with matched
  // first two moments keeps the configured mean exact.
  const double variance_ratio = (stddev / mean) * (stddev / mean);
  const double sigma2 = std::log(1.0 + variance_ratio);
  util::Json d;
  d["dist"] = "lognormal";
  d["mean"] = std::log(mean) - 0.5 * sigma2;  // mu of ln-space
  d["sigma"] = std::sqrt(sigma2);
  return d;
}

}  // namespace

// ===========================================================================
// Pattern 1
// ===========================================================================

Pattern1Result run_pattern1(const Pattern1Config& config) {
  const int pairs = config.instantiated_pairs();
  if (pairs <= 0) throw ConfigError("pattern1: no pairs to instantiate");
  if (config.train_iters <= 0)
    throw ConfigError("pattern1: train_iters must be positive");

  platform::TransportModel model;

  // Parallel dispatch: one LP per pair, sim + trainer co-located (their
  // staging visibility is same-instant), pairs fully independent — no
  // lookahead edges, so every worker count yields byte-identical results.
  // With workers == 1 this is exactly the sequential engine.
  sim::Engine engine(
      sim::Parallel{.workers = config.workers, .window = config.window});

  // Real backend shared by all pairs (the co-located node store). Pricing —
  // not this in-process store — carries the backend identity, so one
  // MemoryStore faithfully stands in for every backend's data path at
  // bench scale; integration tests exercise the real servers end to end.
  // Under parallel dispatch each pair gets its OWN store: keys are
  // pair-disjoint, so the results are byte-identical, and independent LPs
  // then genuinely share nothing — same-virtual-time writes by different
  // pairs never touch one cell, which keeps the virtual-time race detector
  // silent on a workload that has no cross-LP ordering to certify.
  auto backing = std::make_shared<kv::MemoryStore>();

  DataStoreConfig ds_cfg;
  ds_cfg.backend = config.backend;
  ds_cfg.payload_cap = config.payload_cap;
  ds_cfg.transport.remote = false;  // co-located exchange
  ds_cfg.transport.fanin = 1;
  ds_cfg.transport.concurrent_clients = config.concurrent_clients();

  Pattern1Result result;
  sim::TraceRecorder* trace = config.record_trace ? &result.trace : nullptr;

  // Per-pair client stores and components (created up front so stats can be
  // harvested after launch()).
  std::vector<std::unique_ptr<DataStore>> sim_stores, train_stores;
  std::vector<std::unique_ptr<Simulation>> sims;
  std::vector<std::unique_ptr<AiComponent>> trainers;
  for (int p = 0; p < pairs; ++p) {
    auto pair_backing =
        engine.parallel() ? std::make_shared<kv::MemoryStore>() : backing;
    sim_stores.push_back(std::make_unique<DataStore>(
        "sim" + std::to_string(p), pair_backing, &model, ds_cfg, trace));
    train_stores.push_back(std::make_unique<DataStore>(
        "train" + std::to_string(p), pair_backing, &model, ds_cfg, trace));

    util::Json sim_cfg;
    util::Json kernel;
    kernel["name"] = "nekrs_iter";
    kernel["mini_app_kernel"] = "MatMulSimple2D";
    kernel["data_size"] = util::Json::array({64, 64});
    kernel["device"] = "xpu";
    kernel["run_time"] = time_dist(config.sim_iter_time, config.sim_iter_std);
    sim_cfg["kernels"].push_back(kernel);
    auto sim = std::make_unique<Simulation>("sim" + std::to_string(p),
                                            sim_cfg, config.seed + 1000 + p);
    sim->set_datastore(sim_stores.back().get());
    sim->set_trace(trace);
    sims.push_back(std::move(sim));

    util::Json ai_cfg;
    ai_cfg["run_time"] =
        time_dist(config.train_iter_time, config.train_iter_std);
    auto trainer = std::make_unique<AiComponent>(
        "train" + std::to_string(p), ai_cfg, config.seed + 2000 + p);
    trainer->set_datastore(train_stores.back().get());
    trainer->set_trace(trace);
    trainers.push_back(std::move(trainer));
  }

  Workflow w;
  w.spawn_order_salt(config.spawn_order_salt);
  if (obs::enabled()) {
    obs::registry().set_common_label("pattern", "1");
    w.set_obs_trace(trace);  // counter samples join the exported timeline
  }
  if (engine.parallel()) {
    for (int p = 0; p < pairs; ++p) {
      const std::string tag = std::to_string(p);
      w.place("sim_pair" + tag, static_cast<std::uint32_t>(p));
      w.place("train_pair" + tag, static_cast<std::uint32_t>(p));
    }
  }
  std::vector<std::uint64_t> sim_steps(pairs, 0), train_steps(pairs, 0);

  for (int p = 0; p < pairs; ++p) {
    const std::string tag = std::to_string(p);
    Simulation* sim = sims[static_cast<std::size_t>(p)].get();
    AiComponent* trainer = trainers[static_cast<std::size_t>(p)].get();
    DataStore* sim_store = sim_stores[static_cast<std::size_t>(p)].get();
    DataStore* train_store = train_stores[static_cast<std::size_t>(p)].get();

    // ---- simulation rank -------------------------------------------------
    w.component(
        "sim_pair" + tag, "remote", {},
        [=, &config, &sim_steps](sim::Context& ctx, const ComponentInfo&) {
          if (trace) {
            ctx.delay(config.sim_init_time);
            trace->record_span("sim" + tag, "init", 0.0, ctx.now());
          } else {
            ctx.delay(config.sim_init_time);
          }
          const util::Payload x_payload =
              make_payload(config.payload_bytes, config.payload_cap,
                           11 + static_cast<unsigned>(p));
          const util::Payload y_payload =
              make_payload(config.payload_bytes, config.payload_cap,
                           29 + static_cast<unsigned>(p));
          std::int64_t step = 0;
          while (true) {
            sim->run_iteration(ctx);
            ++step;
            sim_steps[static_cast<std::size_t>(p)] =
                static_cast<std::uint64_t>(step);
            if (step % config.write_every == 0) {
              // A snapshot is two staged fields (e.g. velocity + pressure).
              // y goes first: the trainer polls on x, so once x is visible
              // the whole snapshot is guaranteed complete.
              sim->stage_write(ctx, "y_" + tag + "_" + std::to_string(step),
                               y_payload.view(), config.payload_bytes);
              sim->stage_write(ctx, "x_" + tag + "_" + std::to_string(step),
                               x_payload.view(), config.payload_bytes);
              // Steering check once per snapshot period.
              if (sim->poll_staged_data(ctx, "stop_" + tag)) {
                util::Payload ignored;
                sim_store->stage_read(&ctx, "stop_" + tag, ignored);
                break;
              }
            }
            if (config.max_sim_iters > 0 && step >= config.max_sim_iters)
              break;
          }
        });

    // ---- trainer rank ----------------------------------------------------
    w.component(
        "train_pair" + tag, "remote", {},
        [=, &config, &train_steps](sim::Context& ctx, const ComponentInfo&) {
          if (trace) {
            ctx.delay(config.train_init_time);
            trace->record_span("train" + tag, "init", 0.0, ctx.now());
          } else {
            ctx.delay(config.train_init_time);
          }
          std::int64_t next_snapshot = config.write_every;
          for (std::int64_t i = 1; i <= config.train_iters; ++i) {
            trainer->train_iteration(ctx);
            train_steps[static_cast<std::size_t>(p)] =
                static_cast<std::uint64_t>(i);
            if (i % config.read_every == 0) {
              // Drain every snapshot staged since the last check.
              while (true) {
                const std::string xkey =
                    "x_" + tag + "_" + std::to_string(next_snapshot);
                const std::string ykey =
                    "y_" + tag + "_" + std::to_string(next_snapshot);
                if (!train_store->poll_staged_data(&ctx, xkey)) break;
                util::Payload xb, yb;
                train_store->stage_read(&ctx, xkey, xb);
                train_store->stage_read(&ctx, ykey, yb);
                next_snapshot += config.write_every;
              }
            }
          }
          // Steer the simulation to stop (the paper's §4.1 behavior).
          train_store->stage_write(&ctx, "stop_" + tag,
                                   as_bytes_view("stop"));
        });
  }

  w.launch(engine);
  result.makespan = w.makespan();

  for (int p = 0; p < pairs; ++p) {
    result.sim.steps += sim_steps[static_cast<std::size_t>(p)];
    result.train.steps += train_steps[static_cast<std::size_t>(p)];
    absorb_datastore_stats(result.sim, *sim_stores[static_cast<std::size_t>(p)]);
    absorb_datastore_stats(result.train,
                           *train_stores[static_cast<std::size_t>(p)]);
    result.sim.iter_time.merge(
        sims[static_cast<std::size_t>(p)]->stats().all().at("iter_time"));
    result.train.iter_time.merge(
        trainers[static_cast<std::size_t>(p)]->stats().all().at("iter_time"));
  }
  return result;
}

// ===========================================================================
// Pattern 1, streaming flavor (§5 future work)
// ===========================================================================

Pattern1Result run_pattern1_streaming(const Pattern1Config& config,
                                      std::size_t queue_limit) {
  const int pairs = config.instantiated_pairs();
  if (pairs <= 0) throw ConfigError("pattern1-stream: no pairs");
  if (config.train_iters <= 0)
    throw ConfigError("pattern1-stream: train_iters must be positive");

  platform::TransportModel model;
  platform::TransportContext local;  // co-located exchange
  local.remote = false;
  local.concurrent_clients = config.concurrent_clients();

  sim::Engine engine;
  StreamBroker broker(engine, &model, local, queue_limit);

  Pattern1Result result;
  sim::TraceRecorder* trace = config.record_trace ? &result.trace : nullptr;
  if (obs::enabled()) obs::registry().set_common_label("pattern", "1");
  broker.set_trace(trace);
  std::vector<std::uint64_t> sim_steps(static_cast<std::size_t>(pairs), 0);
  std::vector<std::uint64_t> train_steps(static_cast<std::size_t>(pairs), 0);
  // Per-pair stat accumulators, merged at the end.
  std::vector<ComponentStats> sim_stats(static_cast<std::size_t>(pairs));
  std::vector<ComponentStats> train_stats(static_cast<std::size_t>(pairs));

  std::vector<StreamWriter> data_writers;
  std::vector<StreamReader> data_readers;
  std::vector<StreamWriter> ctl_writers;
  std::vector<StreamReader> ctl_readers;
  for (int p = 0; p < pairs; ++p) {
    const std::string tag = std::to_string(p);
    data_writers.push_back(broker.open_writer("data" + tag));
    data_readers.push_back(broker.open_reader("data" + tag));
    ctl_writers.push_back(broker.open_writer("ctl" + tag));
    ctl_readers.push_back(broker.open_reader("ctl" + tag));
  }

  Workflow w;
  w.spawn_order_salt(config.spawn_order_salt);
  if (obs::enabled()) w.set_obs_trace(trace);
  for (int p = 0; p < pairs; ++p) {
    const auto idx = static_cast<std::size_t>(p);
    // ---- simulation: publish a step every write_every iterations --------
    w.component(
        "sim_pair" + std::to_string(p), "remote", {},
        [&, p, idx](sim::Context& ctx, const ComponentInfo&) {
          ctx.delay(config.sim_init_time);
          const util::Payload payload = make_payload(
              config.payload_bytes, config.payload_cap,
              3 + static_cast<unsigned>(p));
          util::Xoshiro256 rng(config.seed + 50 + static_cast<unsigned>(p));
          util::Distribution* iter_dist = nullptr;
          auto dist = util::make_distribution(
              time_dist(config.sim_iter_time, config.sim_iter_std));
          iter_dist = dist.get();
          std::int64_t step = 0;
          bool stopped = false;
          while (!stopped) {
            const SimTime t0 = ctx.now();
            ctx.delay(iter_dist->sample(rng));
            ++step;
            sim_steps[idx] = static_cast<std::uint64_t>(step);
            sim_stats[idx].iter_time.add(ctx.now() - t0);
            if (step % config.write_every == 0) {
              const SimTime w0 = ctx.now();
              data_writers[idx].begin_step(ctx);
              // Payload by value: publishing the same snapshot buffer every
              // step is a refcount bump, not a copy.
              data_writers[idx].put("x", payload, config.payload_bytes);
              data_writers[idx].put("y", payload, config.payload_bytes);
              data_writers[idx].end_step(ctx);
              const SimTime dt = ctx.now() - w0;
              sim_stats[idx].write_time.add(dt);
              if (dt > 0)
                sim_stats[idx].write_throughput.add(
                    2.0 * static_cast<double>(config.payload_bytes) / dt);
              sim_stats[idx].transport_events += 2;
              // Steering: a control step (or closed control stream) stops.
              const StepStatus st = ctl_readers[idx].begin_step(ctx, 0.0);
              if (st == StepStatus::Ok) {
                ctl_readers[idx].end_step();
                stopped = true;
              } else if (st == StepStatus::EndOfStream) {
                stopped = true;
              }
            }
            if (config.max_sim_iters > 0 && step >= config.max_sim_iters)
              break;
          }
          data_writers[idx].close(ctx);
        });

    // ---- trainer: consume available steps at the read interval ----------
    w.component(
        "train_pair" + std::to_string(p), "remote", {},
        [&, p, idx](sim::Context& ctx, const ComponentInfo&) {
          ctx.delay(config.train_init_time);
          util::Xoshiro256 rng(config.seed + 90 + static_cast<unsigned>(p));
          auto dist = util::make_distribution(
              time_dist(config.train_iter_time, config.train_iter_std));
          for (std::int64_t i = 1; i <= config.train_iters; ++i) {
            const SimTime t0 = ctx.now();
            ctx.delay(dist->sample(rng));
            train_steps[idx] = static_cast<std::uint64_t>(i);
            train_stats[idx].iter_time.add(ctx.now() - t0);
            if (i % config.read_every == 0) {
              // Drain every published step without blocking.
              while (true) {
                const SimTime r0 = ctx.now();
                const StepStatus st = data_readers[idx].begin_step(ctx, 0.0);
                if (st != StepStatus::Ok) break;
                (void)data_readers[idx].get(ctx, "x");
                (void)data_readers[idx].get(ctx, "y");
                data_readers[idx].end_step();
                const SimTime dt = ctx.now() - r0;
                train_stats[idx].read_time.add(dt);
                if (dt > 0)
                  train_stats[idx].read_throughput.add(
                      2.0 * static_cast<double>(config.payload_bytes) / dt);
                train_stats[idx].transport_events += 2;
              }
            }
          }
          // Steer the simulation to stop.
          ctl_writers[idx].begin_step(ctx);
          ctl_writers[idx].put("stop", as_bytes_view("1"));
          ctl_writers[idx].end_step(ctx);
          ctl_writers[idx].close(ctx);
          train_stats[idx].transport_events += 1;
          // Drain any remaining data steps so the producer is never left
          // blocked on a full queue.
          while (data_readers[idx].begin_step(ctx, 0.0) == StepStatus::Ok) {
            data_readers[idx].end_step();
          }
        });
  }

  w.launch(engine);
  result.makespan = w.makespan();
  for (int p = 0; p < pairs; ++p) {
    const auto idx = static_cast<std::size_t>(p);
    result.sim.steps += sim_steps[idx];
    result.train.steps += train_steps[idx];
    result.sim.transport_events += sim_stats[idx].transport_events;
    result.train.transport_events += train_stats[idx].transport_events;
    result.sim.iter_time.merge(sim_stats[idx].iter_time);
    result.train.iter_time.merge(train_stats[idx].iter_time);
    result.sim.write_time.merge(sim_stats[idx].write_time);
    result.train.read_time.merge(train_stats[idx].read_time);
    result.sim.write_throughput.merge(sim_stats[idx].write_throughput);
    result.train.read_throughput.merge(train_stats[idx].read_throughput);
  }
  return result;
}

// ===========================================================================
// Pattern 2
// ===========================================================================

Pattern2Result run_pattern2(const Pattern2Config& config) {
  if (config.num_sims <= 0)
    throw ConfigError("pattern2: need at least one simulation");
  if (config.train_iters <= 0 || config.read_every <= 0)
    throw ConfigError("pattern2: invalid iteration counts");

  platform::TransportModel model;

  // Parallel dispatch: one LP per ensemble member plus one for the trainer.
  // Lookahead-0 edges member -> trainer bound the trainer's window behind
  // every member's LVT; no reverse edges — members never wait on the
  // trainer, so they run freely ahead (mailbox backpressure bounds memory).
  // With workers == 1 this is exactly the sequential engine.
  sim::Engine engine(
      sim::Parallel{.workers = config.workers, .window = config.window});
  const bool par = engine.parallel();
  const auto trainer_lp = static_cast<std::uint32_t>(config.num_sims);
  if (par) {
    engine.ensure_lps(trainer_lp + 1);
    for (int s = 0; s < config.num_sims; ++s)
      engine.add_lp_edge(static_cast<std::uint32_t>(s), trainer_lp, 0.0);
  }

  auto backing = std::make_shared<kv::MemoryStore>();
  // Under parallel dispatch the trainer reads a *mirrored* store view: each
  // staged write is republished into it at the write's dispatch instant via
  // Engine::post over the member -> trainer edge, so a trainer poll at
  // virtual t observes exactly the keys a sequential run would have shown
  // it — never a wall-early write from a member whose LP has run ahead.
  auto ai_backing = par ? std::make_shared<kv::MemoryStore>() : backing;

  // Simulations write LOCALLY to their node's backend...
  DataStoreConfig write_cfg;
  write_cfg.backend = config.backend;
  write_cfg.payload_cap = config.payload_cap;
  write_cfg.transport.remote = false;
  write_cfg.transport.fanin = 1;
  write_cfg.transport.concurrent_clients = config.concurrent_clients();

  // ...and the AI reads them REMOTELY, under many-to-one fan-in.
  DataStoreConfig read_cfg = write_cfg;
  read_cfg.transport.remote = (config.backend != platform::BackendKind::Filesystem);
  read_cfg.transport.fanin = config.num_sims;
  read_cfg.transport.concurrent_streams =
      std::min(config.ai_reader_ranks, config.num_sims);

  std::vector<std::unique_ptr<DataStore>> sim_stores;
  std::vector<std::unique_ptr<Simulation>> sims;
  for (int s = 0; s < config.num_sims; ++s) {
    // Under parallel dispatch each member writes to its OWN node-local
    // store (the trainer reads the mirror, so nothing else touches it):
    // keys are member-disjoint, results byte-identical, and independent
    // member LPs share no cell the race detector would have to order.
    auto member_backing =
        par ? std::make_shared<kv::MemoryStore>() : backing;
    sim_stores.push_back(std::make_unique<DataStore>(
        "sim" + std::to_string(s), member_backing, &model, write_cfg));
    util::Json sim_cfg;
    util::Json kernel;
    kernel["name"] = "ensemble_member";
    kernel["mini_app_kernel"] = "MatMulSimple2D";
    kernel["data_size"] = util::Json::array({64, 64});
    kernel["device"] = "xpu";
    kernel["run_time"] = config.sim_iter_time;
    sim_cfg["kernels"].push_back(kernel);
    auto sim = std::make_unique<Simulation>("sim" + std::to_string(s),
                                            sim_cfg, config.seed + 100 + s);
    sim->set_datastore(sim_stores.back().get());
    sims.push_back(std::move(sim));
  }

  auto ai_store = std::make_unique<DataStore>("train", ai_backing, &model,
                                              read_cfg);
  util::Json ai_cfg;
  ai_cfg["run_time"] = config.train_iter_time;
  AiComponent trainer("train", ai_cfg, config.seed + 999);
  trainer.set_datastore(ai_store.get());

  // Rounds of data the trainer will consume.
  const std::int64_t rounds = config.train_iters / config.read_every;
  // Each simulation must produce at least `rounds` arrays.
  const std::int64_t sim_iters =
      rounds * config.write_every + config.write_every;

  Workflow w;
  w.spawn_order_salt(config.spawn_order_salt);
  if (obs::enabled()) obs::registry().set_common_label("pattern", "2");
  if (par) {
    for (int s = 0; s < config.num_sims; ++s)
      w.place("sim" + std::to_string(s), static_cast<std::uint32_t>(s));
    w.place("train", trainer_lp);
  }
  std::vector<std::uint64_t> sim_steps(
      static_cast<std::size_t>(config.num_sims), 0);
  std::uint64_t train_steps = 0;
  SimTime train_runtime = 0.0;

  for (int s = 0; s < config.num_sims; ++s) {
    const std::string tag = std::to_string(s);
    Simulation* sim = sims[static_cast<std::size_t>(s)].get();
    DataStore* sim_store = sim_stores[static_cast<std::size_t>(s)].get();
    w.component(
        "sim" + tag, "remote", {},
        [=, &config, &sim_steps, &engine](sim::Context& ctx,
                                          const ComponentInfo&) {
          const util::Payload payload =
              make_payload(config.payload_bytes, config.payload_cap,
                           7 + static_cast<unsigned>(s));
          for (std::int64_t step = 1; step <= sim_iters; ++step) {
            sim->run_iteration(ctx);
            sim_steps[static_cast<std::size_t>(s)] =
                static_cast<std::uint64_t>(step);
            if (step % config.write_every == 0) {
              const std::int64_t round = step / config.write_every;
              const std::string key =
                  "data_" + tag + "_" + std::to_string(round);
              if (par) {
                // Mirror BEFORE charging the write cost: stage_write puts
                // first, so sequentially the key is visible from this
                // instant — the mirrored view must agree. The mirrored
                // bytes are wrapped with the writer's own config, exactly
                // what stage_write is about to store.
                std::uint64_t nominal = config.payload_bytes;
                const util::Payload wrapped =
                    sim_store->wrap_payload(payload.view(), nominal);
                engine.post(trainer_lp, ctx.now(),
                            [ai_backing, key, wrapped] {
                              ai_backing->put(key, wrapped);
                            });
              }
              sim->stage_write(ctx, key, payload.view(),
                               config.payload_bytes);
            }
          }
        });
  }

  w.component(
      "train", "remote", {},
      [&](sim::Context& ctx, const ComponentInfo&) {
        const SimTime t0 = ctx.now();
        std::int64_t round = 0;
        for (std::int64_t i = 1; i <= config.train_iters; ++i) {
          trainer.train_iteration(ctx);
          train_steps = static_cast<std::uint64_t>(i);
          if (i % config.read_every == 0) {
            ++round;
            // Block until every ensemble member's array for this round has
            // arrived, then read them all (the §4.2 consistency barrier).
            for (int s = 0; s < config.num_sims; ++s) {
              const std::string key =
                  "data_" + std::to_string(s) + "_" + std::to_string(round);
              while (!ai_store->poll_staged_data(&ctx, key))
                ctx.delay(config.poll_interval);
              util::Payload data;
              ai_store->stage_read(&ctx, key, data);
            }
          }
        }
        train_runtime = ctx.now() - t0;
      });

  w.launch(engine);

  Pattern2Result result;
  result.makespan = w.makespan();
  result.train.steps = train_steps;
  result.train_runtime_per_iter =
      train_runtime / static_cast<double>(config.train_iters);
  absorb_datastore_stats(result.train, *ai_store);
  result.train.iter_time.merge(trainer.stats().all().at("iter_time"));
  for (int s = 0; s < config.num_sims; ++s) {
    result.sim.steps += sim_steps[static_cast<std::size_t>(s)];
    absorb_datastore_stats(result.sim,
                           *sim_stores[static_cast<std::size_t>(s)]);
    result.sim.iter_time.merge(
        sims[static_cast<std::size_t>(s)]->stats().all().at("iter_time"));
  }
  return result;
}

}  // namespace simai::core
