// simai::check — virtual-time race detection for the DES.
//
// The whole reproduction rests on one claim: the simulator is deterministic,
// so a transport-time curve is a property of the *model*, not of scheduling
// luck. The engine guarantees a fixed schedule per program (ties broken by
// spawn/schedule sequence), but nothing proves that programs don't *depend*
// on those tie-breaks: two logical processes that touch shared state at the
// SAME virtual time with no happens-before edge between them are ordered
// only by spawn-order accident — a schedule where the fiber and thread
// substrates (or a future parallel scheduler) could legally diverge.
//
// This layer finds exactly those schedules, dynamically:
//
//  * every sim::Process carries a vector clock, advanced on the engine's
//    synchronization edges — spawn, Event notify/wait, Channel send/recv;
//  * shared state is wrapped in check::SharedCell<T> (adopted by
//    kv::MemoryStore, core::StreamBroker, core::DataStore), which records
//    reader/writer clock snapshots per access;
//  * two accesses to a cell by different processes at the same virtual time
//    whose clocks are incomparable (no happens-before chain) produce a
//    RaceReport carrying both processes' names, timestamps, access kinds,
//    and recent event stacks.
//
// Cost model: detection is OFF by default. Every hook is an inline
// relaxed-atomic load + branch (no call, no lock), so instrumented code is
// indistinguishable from uninstrumented code in benchmarks. Enable with
// Engine::enable_race_detection() (per program, before run()) or the
// SIMAI_CHECK=1 environment variable (whole process, read at startup).
//
// The detector is a process-wide singleton guarded by a mutex: with the
// thread substrate, hooks fire from per-process OS threads (strictly
// alternating, but TSan-visible), and SharedCell state may also be touched
// by real threads outside the DES (MiniRedis connection handlers). Accesses
// from threads that are not running a logical process carry no virtual time
// and are ignored — real-thread interleavings are ThreadSanitizer's job
// (the `tsan` preset), not this detector's. Parallel DES dispatch
// (Engine(Parallel{N}), engine.hpp) adds genuinely concurrent hook calls
// from worker threads; the same singleton mutex covers them, and the
// per-thread current-process binding (set_current_process, thread_local)
// keeps each worker's hooks attributed to the process it is dispatching.
// Vector-clock ordering is untouched: clocks advance on virtual-time
// event edges, which the conservative windows already order.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace simai::check {

/// Detector-assigned logical-process id; 0 means "not a logical process".
using ProcId = std::uint32_t;

/// One same-virtual-time, no-happens-before access pair. `first` is the
/// access that happened earlier in the executed schedule — i.e. the order
/// the tie-break chose; a legal scheduler could have run `second` first.
struct RaceReport {
  std::string cell;          // SharedCell label + instance id, "label#N"
  std::string first_process;
  std::string second_process;
  double time = 0.0;         // the shared virtual time of both accesses
  char first_kind = '?';     // 'R' or 'W'
  char second_kind = '?';
  std::string first_stack;   // recent sync ops of each process, oldest first
  std::string second_stack;

  /// Deterministic human-readable rendering (identical across substrates).
  std::string to_string() const;
};

namespace detail {
extern std::atomic<bool> g_enabled;
ProcId current_process();
void set_current_process(ProcId pid);
void on_spawn_impl(ProcId child);
void on_dispatch_impl(ProcId pid, double now);
void on_event_notify_impl(const void* event);
void on_event_wait_impl(const void* event);
void on_channel_send_impl(const void* channel);
void on_channel_recv_impl(const void* channel);
void on_access_impl(const void* cell, const char* label, bool is_write);
}  // namespace detail

/// Fast global switch — the only cost instrumented code pays when off.
inline bool enabled() {
  return detail::g_enabled.load(std::memory_order_relaxed);
}

/// Turn detection on/off process-wide. SIMAI_CHECK=1 in the environment
/// flips it on at static-initialization time.
void set_enabled(bool on);

/// Register a logical process; returns its detector id. The new process's
/// clock starts at {id: 1}; call on_spawn() from the parent to add the
/// spawn happens-before edge.
ProcId register_process(const std::string& name);

/// Drop the per-process state (clock, name, op stack) of a FINISHED logical
/// process — it emits no further ops, and everything race reports need was
/// snapshotted at access time. Called by the engine when it reclaims the
/// process, so detector memory is bounded by live processes. Ids are never
/// reused; other processes' clocks may still carry this pid's counters.
void release_process(ProcId pid);

// -- engine-side hooks (inline no-ops while disabled) -----------------------

/// Parent (the calling thread's current process, if any) -> child edge.
inline void on_spawn(ProcId child) {
  if (enabled()) detail::on_spawn_impl(child);
}
/// The engine is about to run `pid` at virtual time `now`.
inline void on_dispatch(ProcId pid, double now) {
  if (enabled()) detail::on_dispatch_impl(pid, now);
}
/// The current process released an Event (notify_one/notify_all).
inline void on_event_notify(const void* event) {
  if (enabled()) detail::on_event_notify_impl(event);
}
/// The current process woke from a *notified* wait on an Event.
inline void on_event_wait(const void* event) {
  if (enabled()) detail::on_event_wait_impl(event);
}
/// The current process enqueued a message into a Channel.
inline void on_channel_send(const void* channel) {
  if (enabled()) detail::on_channel_send_impl(channel);
}
/// The current process dequeued a message from a Channel.
inline void on_channel_recv(const void* channel) {
  if (enabled()) detail::on_channel_recv_impl(channel);
}
/// SharedCell accesses (the race check itself).
inline void on_read(const void* cell, const char* label) {
  if (enabled()) detail::on_access_impl(cell, label, false);
}
inline void on_write(const void* cell, const char* label) {
  if (enabled()) detail::on_access_impl(cell, label, true);
}

/// Bind the calling OS thread to a logical process (thread substrate: set
/// once in the process trampoline; the thread runs exactly one process).
inline void set_current_process(ProcId pid) {
  detail::set_current_process(pid);
}

/// RAII current-process scope (fiber substrate: all fibers share the
/// engine thread, so the binding must bracket each dispatch).
class ScopedProcess {
 public:
  explicit ScopedProcess(ProcId pid) : prev_(detail::current_process()) {
    detail::set_current_process(pid);
  }
  ~ScopedProcess() { detail::set_current_process(prev_); }
  ScopedProcess(const ScopedProcess&) = delete;
  ScopedProcess& operator=(const ScopedProcess&) = delete;

 private:
  ProcId prev_;
};

// -- report access ----------------------------------------------------------

/// Races found so far (at most one per SharedCell: the first pair wins, so
/// a single racy counter yields exactly one deterministic report).
std::size_t report_count();

/// Drain the accumulated reports.
std::vector<RaceReport> take_reports();

/// Whether reports are also logged (Warn) the moment they are found.
/// Tests that *provoke* races turn this off so a suite-level
/// "race-report-clean" sweep can grep the logs. Default: on.
void set_log_reports(bool on);

/// Drop all detector state (processes, clocks, cells, reports, id
/// counters). Call between independent engine runs in one process when
/// deterministic instance numbering matters (tests do).
void reset();

}  // namespace simai::check
