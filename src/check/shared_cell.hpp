// check::SharedCell<T> — instrumented wrapper for state shared between
// logical processes.
//
// The DES runs one process at a time, so shared state needs no locking for
// memory safety — but it DOES need happens-before discipline for schedule
// determinism: if two processes touch the same state at the same virtual
// time without a synchronization edge, the access order is a spawn-order
// tie-break and a legal scheduler could flip it. Wrapping the state in a
// SharedCell makes every access visible to the race detector (check.hpp),
// which flags exactly those pairs.
//
// Usage: replace `T state_;` with `check::SharedCell<T> state_{"label"};`
// and route reads through `state_.read()` and writes through
// `state_.write()`. When detection is off, both compile down to the member
// access plus one relaxed load — adopters (MemoryStore, StreamBroker,
// DataStore) measure no difference in benchmarks.
#pragma once

#include <string>
#include <utility>

#include "check/check.hpp"

namespace simai::check {

template <typename T>
class SharedCell {
 public:
  explicit SharedCell(std::string label, T value = T{})
      : label_(std::move(label)), value_(std::move(value)) {}

  // Movable so cells can live in containers; the detector keys cells by
  // address lazily at first access, so moves must happen before the cell
  // is shared (construction/setup time — the adopters all do).
  SharedCell(SharedCell&& other) noexcept
      : label_(std::move(other.label_)), value_(std::move(other.value_)) {}
  SharedCell& operator=(SharedCell&& other) noexcept {
    label_ = std::move(other.label_);
    value_ = std::move(other.value_);
    return *this;
  }
  SharedCell(const SharedCell&) = delete;
  SharedCell& operator=(const SharedCell&) = delete;

  /// Recorded read access.
  const T& read() const {
    on_read(this, label_.c_str());
    return value_;
  }

  /// Recorded write access; the caller may mutate through the reference.
  T& write() {
    on_write(this, label_.c_str());
    return value_;
  }

  /// Unrecorded access, for paths outside any process schedule (post-run
  /// stat harvesting, constructors) where recording would be noise.
  const T& raw() const { return value_; }
  T& raw_mut() { return value_; }

  const std::string& label() const { return label_; }

 private:
  std::string label_;
  T value_;
};

}  // namespace simai::check
