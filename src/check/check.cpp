#include "check/check.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <map>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <utility>

#include "util/logging.hpp"

namespace simai::check {

namespace {

/// Sparse vector clock: ProcId -> logical counter. Small (a handful of
/// processes per race neighborhood) and only touched while detection is on,
/// so an ordered map keeps comparisons and report output deterministic.
using VectorClock = std::map<ProcId, std::uint64_t>;

/// a happens-before b iff every component of a is <= the same component
/// of b (absent components are 0).
bool clock_leq(const VectorClock& a, const VectorClock& b) {
  for (const auto& [pid, n] : a) {
    const auto it = b.find(pid);
    if (it == b.end() || it->second < n) return false;
  }
  return true;
}

void clock_merge(VectorClock& into, const VectorClock& from) {
  for (const auto& [pid, n] : from) {
    auto& slot = into[pid];
    if (slot < n) slot = n;
  }
}

std::string format_time(double t) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.9g", t);
  return buf;
}

constexpr std::size_t kStackDepth = 8;  // recent sync ops kept per process

struct ProcState {
  std::string name;
  VectorClock clock;
  double vtime = 0.0;
  std::deque<std::string> stack;  // recent sync ops, oldest first
};

/// One recorded access: everything a race report needs, snapshotted.
struct AccessSnapshot {
  ProcId pid = 0;
  std::string proc_name;
  VectorClock clock;
  double vtime = 0.0;
  char kind = '?';
  std::string stack;
};

struct CellState {
  std::string label;
  std::uint32_t id = 0;  // first-sight instance number, for report text
  std::optional<AccessSnapshot> last_writer;
  std::vector<AccessSnapshot> readers;  // since the last write, one per pid
  bool reported = false;                // first race per cell wins
};

struct EventState {
  std::uint32_t id = 0;
  VectorClock clock;  // accumulated release clocks of all notifiers
};

struct ChannelState {
  std::uint32_t id = 0;
  std::deque<VectorClock> messages;  // one clock per in-flight message
};

/// Process-wide detector. One mutex around everything: the DES runs one
/// process at a time, so there is no contention to speak of, and the lock
/// makes the thread substrate and real-thread callers (which are ignored,
/// but still walk the fast path) well-defined.
class Detector {
 public:
  static Detector& instance() {
    static Detector d;
    return d;
  }

  ProcId register_process(const std::string& name) {
    std::lock_guard lock(mutex_);
    const ProcId id = ++next_proc_;
    ProcState& p = procs_[id];
    p.name = name;
    p.clock[id] = 1;
    return id;
  }

  void release_process(ProcId pid) {
    std::lock_guard lock(mutex_);
    procs_.erase(pid);
  }

  void on_spawn(ProcId parent, ProcId child) {
    std::lock_guard lock(mutex_);
    ProcState* c = find(child);
    if (!c) return;
    if (ProcState* p = find(parent)) {
      clock_merge(c->clock, p->clock);
      p->clock[parent]++;  // parent's later ops are not ordered with child
      c->vtime = p->vtime;
      push_op(*p, "spawn '" + c->name + "'", p->vtime);
    }
  }

  void on_dispatch(ProcId pid, double now) {
    std::lock_guard lock(mutex_);
    if (ProcState* p = find(pid)) p->vtime = now;
  }

  void on_event_notify(ProcId pid, const void* event) {
    std::lock_guard lock(mutex_);
    ProcState* p = find(pid);
    if (!p) return;
    EventState& ev = event_of(event);
    clock_merge(ev.clock, p->clock);
    p->clock[pid]++;  // release: later ops are not covered by this notify
    push_op(*p, "notify ev#" + std::to_string(ev.id), p->vtime);
  }

  void on_event_wait(ProcId pid, const void* event) {
    std::lock_guard lock(mutex_);
    ProcState* p = find(pid);
    if (!p) return;
    EventState& ev = event_of(event);
    clock_merge(p->clock, ev.clock);
    push_op(*p, "wake ev#" + std::to_string(ev.id), p->vtime);
  }

  void on_channel_send(ProcId pid, const void* channel) {
    std::lock_guard lock(mutex_);
    ChannelState& ch = channel_of(channel);
    ProcState* p = find(pid);
    if (p) {
      ch.messages.push_back(p->clock);
      p->clock[pid]++;
      push_op(*p, "send ch#" + std::to_string(ch.id), p->vtime);
    } else {
      // Not a logical process (setup code): the message still occupies a
      // queue slot so send/recv clocks stay paired, but carries no edge.
      ch.messages.emplace_back();
    }
  }

  void on_channel_recv(ProcId pid, const void* channel) {
    std::lock_guard lock(mutex_);
    ChannelState& ch = channel_of(channel);
    if (ch.messages.empty()) return;  // channel pre-filled before enabling
    VectorClock msg = std::move(ch.messages.front());
    ch.messages.pop_front();
    if (ProcState* p = find(pid)) {
      clock_merge(p->clock, msg);
      push_op(*p, "recv ch#" + std::to_string(ch.id), p->vtime);
    }
  }

  void on_access(ProcId pid, const void* cell, const char* label,
                 bool is_write) {
    std::lock_guard lock(mutex_);
    ProcState* p = find(pid);
    if (!p) return;  // real thread outside the DES: TSan's jurisdiction
    CellState& cs = cell_of(cell, label);

    AccessSnapshot current;
    current.pid = pid;
    current.proc_name = p->name;
    current.clock = p->clock;
    current.vtime = p->vtime;
    current.kind = is_write ? 'W' : 'R';
    current.stack = render_stack(*p);

    // A prior access races with this one iff it came from another process
    // at the SAME virtual time and neither clock dominates: the executed
    // order between them is a tie-break artifact, not a program property.
    const auto races = [&](const AccessSnapshot& other) {
      return other.pid != pid && other.vtime == current.vtime &&
             !clock_leq(other.clock, current.clock);
    };

    if (!cs.reported) {
      // Read-write and write-write conflicts; read-read pairs are benign.
      if (cs.last_writer && races(*cs.last_writer)) {
        report(cs, *cs.last_writer, current);
      } else if (is_write) {
        for (const AccessSnapshot& r : cs.readers) {
          if (races(r)) {
            report(cs, r, current);
            break;
          }
        }
      }
    }

    push_op(*p, std::string(1, current.kind) + " '" + cs.label + "'",
            current.vtime);
    if (is_write) {
      cs.last_writer = std::move(current);
      cs.readers.clear();
    } else {
      for (AccessSnapshot& r : cs.readers) {
        if (r.pid == pid) {
          r = std::move(current);
          return;
        }
      }
      cs.readers.push_back(std::move(current));
    }
  }

  std::size_t report_count() {
    std::lock_guard lock(mutex_);
    return reports_.size();
  }

  std::vector<RaceReport> take_reports() {
    std::lock_guard lock(mutex_);
    return std::exchange(reports_, {});
  }

  void set_log_reports(bool on) {
    std::lock_guard lock(mutex_);
    log_reports_ = on;
  }

  void reset() {
    std::lock_guard lock(mutex_);
    procs_.clear();
    events_.clear();
    channels_.clear();
    cells_.clear();
    reports_.clear();
    next_proc_ = 0;
    next_event_ = 0;
    next_channel_ = 0;
    next_cell_ = 0;
  }

 private:
  ProcState* find(ProcId pid) {
    if (pid == 0) return nullptr;
    const auto it = procs_.find(pid);
    return it == procs_.end() ? nullptr : &it->second;
  }

  EventState& event_of(const void* key) {
    EventState& ev = events_[key];
    if (ev.id == 0) ev.id = ++next_event_;
    return ev;
  }

  ChannelState& channel_of(const void* key) {
    ChannelState& ch = channels_[key];
    if (ch.id == 0) ch.id = ++next_channel_;
    return ch;
  }

  CellState& cell_of(const void* key, const char* label) {
    CellState& cs = cells_[key];
    if (cs.id == 0) {
      cs.id = ++next_cell_;
      cs.label = label;
    }
    return cs;
  }

  static void push_op(ProcState& p, const std::string& op, double t) {
    p.stack.push_back("t=" + format_time(t) + " " + op);
    while (p.stack.size() > kStackDepth) p.stack.pop_front();
  }

  static std::string render_stack(const ProcState& p) {
    std::string out;
    for (const std::string& op : p.stack) {
      if (!out.empty()) out += "; ";
      out += op;
    }
    return out.empty() ? "(no prior sync ops)" : out;
  }

  void report(CellState& cs, const AccessSnapshot& first,
              const AccessSnapshot& second) {
    cs.reported = true;
    RaceReport r;
    r.cell = cs.label + "#" + std::to_string(cs.id);
    r.first_process = first.proc_name;
    r.second_process = second.proc_name;
    r.time = second.vtime;
    r.first_kind = first.kind;
    r.second_kind = second.kind;
    r.first_stack = first.stack;
    r.second_stack = second.stack;
    if (log_reports_) {
      SIMAI_LOG(Warn, "check") << r.to_string();
    }
    reports_.push_back(std::move(r));
  }

  std::mutex mutex_;
  std::unordered_map<ProcId, ProcState> procs_;
  std::unordered_map<const void*, EventState> events_;
  std::unordered_map<const void*, ChannelState> channels_;
  std::unordered_map<const void*, CellState> cells_;
  std::vector<RaceReport> reports_;
  ProcId next_proc_ = 0;
  std::uint32_t next_event_ = 0;
  std::uint32_t next_channel_ = 0;
  std::uint32_t next_cell_ = 0;
  bool log_reports_ = true;
};

thread_local ProcId tls_current_process = 0;

/// SIMAI_CHECK=1 (or any value other than "0"/"") enables detection for the
/// whole process before main() runs.
bool env_enabled() {
  const char* env = std::getenv("SIMAI_CHECK");
  return env && *env != '\0' && std::strcmp(env, "0") != 0;
}

}  // namespace

namespace detail {

std::atomic<bool> g_enabled{env_enabled()};

ProcId current_process() { return tls_current_process; }
void set_current_process(ProcId pid) { tls_current_process = pid; }

void on_spawn_impl(ProcId child) {
  Detector::instance().on_spawn(tls_current_process, child);
}
void on_dispatch_impl(ProcId pid, double now) {
  Detector::instance().on_dispatch(pid, now);
}
void on_event_notify_impl(const void* event) {
  if (tls_current_process == 0) return;
  Detector::instance().on_event_notify(tls_current_process, event);
}
void on_event_wait_impl(const void* event) {
  if (tls_current_process == 0) return;
  Detector::instance().on_event_wait(tls_current_process, event);
}
void on_channel_send_impl(const void* channel) {
  Detector::instance().on_channel_send(tls_current_process, channel);
}
void on_channel_recv_impl(const void* channel) {
  Detector::instance().on_channel_recv(tls_current_process, channel);
}
void on_access_impl(const void* cell, const char* label, bool is_write) {
  if (tls_current_process == 0) return;
  Detector::instance().on_access(tls_current_process, cell, label, is_write);
}

}  // namespace detail

void set_enabled(bool on) {
  detail::g_enabled.store(on, std::memory_order_relaxed);
}

ProcId register_process(const std::string& name) {
  return Detector::instance().register_process(name);
}

void release_process(ProcId pid) {
  if (pid != 0) Detector::instance().release_process(pid);
}

std::size_t report_count() { return Detector::instance().report_count(); }

std::vector<RaceReport> take_reports() {
  return Detector::instance().take_reports();
}

void set_log_reports(bool on) { Detector::instance().set_log_reports(on); }

void reset() { Detector::instance().reset(); }

std::string RaceReport::to_string() const {
  std::string out = "virtual-time race on '" + cell + "' at t=" +
                    format_time(time) + ": " + first_kind + " by '" +
                    first_process + "' vs " + second_kind + " by '" +
                    second_process +
                    "' — no happens-before edge; the executed order is a "
                    "spawn-order tie-break, not a program property\n";
  out += "  " + first_process + " recent: " + first_stack + "\n";
  out += "  " + second_process + " recent: " + second_stack;
  return out;
}

}  // namespace simai::check
