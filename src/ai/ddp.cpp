#include "ai/ddp.hpp"

#include <algorithm>

namespace simai::ai {

DdpTrainer::DdpTrainer(Mlp model, std::unique_ptr<Optimizer> optimizer,
                       net::Communicator& comm, int rank,
                       std::size_t bucket_elems)
    : model_(std::move(model)),
      optimizer_(std::move(optimizer)),
      comm_(comm),
      rank_(rank),
      bucket_elems_(std::max<std::size_t>(1, bucket_elems)) {}

void DdpTrainer::sync_parameters(sim::Context& ctx) {
  std::vector<double> params = model_.flatten_parameters();
  params = comm_.bcast(ctx, rank_, 0, std::move(params));
  model_.load_parameters(params);
}

void DdpTrainer::allreduce_gradients(sim::Context& ctx) {
  std::vector<double> grads = model_.flatten_gradients();
  const double inv_world = 1.0 / static_cast<double>(comm_.size());
  // Bucketed allreduce: smaller messages pipeline through the tree the way
  // DDP overlaps buckets with backward.
  for (std::size_t start = 0; start < grads.size(); start += bucket_elems_) {
    const std::size_t len = std::min(bucket_elems_, grads.size() - start);
    std::vector<double> bucket(
        grads.begin() + static_cast<std::ptrdiff_t>(start),
        grads.begin() + static_cast<std::ptrdiff_t>(start + len));
    bucket = comm_.allreduce(ctx, rank_, bucket, net::ReduceOp::Sum);
    for (std::size_t i = 0; i < len; ++i)
      grads[start + i] = bucket[i] * inv_world;
  }
  model_.load_gradients(grads);
}

double DdpTrainer::train_step(sim::Context& ctx, const Tensor& x,
                              const Tensor& y) {
  model_.zero_grad();
  const Tensor pred = model_.forward(x);
  Tensor dloss;
  const double local_loss = mse_loss(pred, y, dloss);
  model_.backward(dloss);
  if (comm_.size() > 1) allreduce_gradients(ctx);
  optimizer_->step(model_);
  if (comm_.size() == 1) return local_loss;
  const std::vector<double> losses =
      comm_.allreduce(ctx, rank_, {local_loss}, net::ReduceOp::Sum);
  return losses[0] / static_cast<double>(comm_.size());
}

}  // namespace simai::ai
