// Optimizers operating on the MLP's flat parameter/gradient vectors:
// SGD (with momentum) and Adam.
#pragma once

#include <memory>
#include <vector>

#include "ai/mlp.hpp"
#include "util/json.hpp"

namespace simai::ai {

class Optimizer {
 public:
  virtual ~Optimizer() = default;
  /// Apply one update using the model's current gradients, then leave the
  /// gradients untouched (callers decide when to zero_grad).
  virtual void step(Mlp& model) = 0;
};

class Sgd final : public Optimizer {
 public:
  explicit Sgd(double lr, double momentum = 0.0);
  void step(Mlp& model) override;

 private:
  double lr_;
  double momentum_;
  std::vector<double> velocity_;
};

class Adam final : public Optimizer {
 public:
  explicit Adam(double lr, double beta1 = 0.9, double beta2 = 0.999,
                double eps = 1e-8);
  void step(Mlp& model) override;

 private:
  double lr_, beta1_, beta2_, eps_;
  std::vector<double> m_, v_;
  std::int64_t t_ = 0;
};

/// {"optimizer":"adam","lr":1e-3} / {"optimizer":"sgd","lr":0.01,
/// "momentum":0.9}; defaults to Adam(1e-3).
std::unique_ptr<Optimizer> make_optimizer(const util::Json& spec);

}  // namespace simai::ai
