// Dense 2-D tensor (row-major) and the linear-algebra ops the MLP needs.
//
// This is the torch-replacement substrate for the AI component (§3.4): the
// feed-forward network trains with real forward/backward math on these
// tensors, with gradients verified against finite differences in the tests.
#pragma once

#include <cstddef>
#include <vector>

#include "util/buffer.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/types.hpp"

namespace simai::ai {

class TensorError : public Error {
 public:
  using Error::Error;
};

class Tensor {
 public:
  Tensor() = default;
  Tensor(std::size_t rows, std::size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}
  Tensor(std::size_t rows, std::size_t cols, std::vector<double> data);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  double& at(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }
  double at(std::size_t r, std::size_t c) const { return data_[r * cols_ + c]; }
  double& operator[](std::size_t i) { return data_[i]; }
  double operator[](std::size_t i) const { return data_[i]; }

  std::vector<double>& data() { return data_; }
  const std::vector<double>& data() const { return data_; }

  void fill(double v) { std::fill(data_.begin(), data_.end(), v); }
  void zero() { fill(0.0); }

  /// Gaussian init scaled by `stddev` (He/Xavier handled by callers).
  static Tensor randn(std::size_t rows, std::size_t cols,
                      util::Xoshiro256& rng, double stddev = 1.0);

  /// One row as a copy (convenience for batching).
  std::vector<double> row(std::size_t r) const;

  bool same_shape(const Tensor& other) const {
    return rows_ == other.rows_ && cols_ == other.cols_;
  }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

// ---- ops ------------------------------------------------------------------

/// C = A(mxk) * B(kxn)
Tensor matmul(const Tensor& a, const Tensor& b);
/// C = A^T(m->k) * B — used for weight gradients (X^T dY).
Tensor matmul_tn(const Tensor& a, const Tensor& b);
/// C = A * B^T — used for input gradients (dY W^T).
Tensor matmul_nt(const Tensor& a, const Tensor& b);

Tensor transpose(const Tensor& a);

/// Elementwise: a += b (shape-checked).
void add_inplace(Tensor& a, const Tensor& b);
/// a += scale * b
void axpy_inplace(Tensor& a, const Tensor& b, double scale);
/// a *= s
void scale_inplace(Tensor& a, double s);

/// Add a 1 x cols bias row to every row of `a`.
void add_row_inplace(Tensor& a, const Tensor& bias_row);
/// Column-wise sum producing a 1 x cols tensor (bias gradient).
Tensor column_sum(const Tensor& a);

double sum(const Tensor& a);
double max_abs(const Tensor& a);

/// Serialize (rows, cols, raw doubles) for staging through a DataStore.
Bytes pack_tensor(const Tensor& t);
Tensor unpack_tensor(ByteView data);

}  // namespace simai::ai
