#include "ai/optim.hpp"

#include <cmath>

#include "util/string_util.hpp"

namespace simai::ai {

Sgd::Sgd(double lr, double momentum) : lr_(lr), momentum_(momentum) {
  if (lr <= 0.0) throw ConfigError("sgd: learning rate must be positive");
}

void Sgd::step(Mlp& model) {
  std::vector<double> params = model.flatten_parameters();
  const std::vector<double> grads = model.flatten_gradients();
  if (momentum_ != 0.0) {
    if (velocity_.size() != grads.size()) velocity_.assign(grads.size(), 0.0);
    for (std::size_t i = 0; i < params.size(); ++i) {
      velocity_[i] = momentum_ * velocity_[i] + grads[i];
      params[i] -= lr_ * velocity_[i];
    }
  } else {
    for (std::size_t i = 0; i < params.size(); ++i)
      params[i] -= lr_ * grads[i];
  }
  model.load_parameters(params);
}

Adam::Adam(double lr, double beta1, double beta2, double eps)
    : lr_(lr), beta1_(beta1), beta2_(beta2), eps_(eps) {
  if (lr <= 0.0) throw ConfigError("adam: learning rate must be positive");
}

void Adam::step(Mlp& model) {
  std::vector<double> params = model.flatten_parameters();
  const std::vector<double> grads = model.flatten_gradients();
  if (m_.size() != grads.size()) {
    m_.assign(grads.size(), 0.0);
    v_.assign(grads.size(), 0.0);
    t_ = 0;
  }
  ++t_;
  const double bc1 = 1.0 - std::pow(beta1_, static_cast<double>(t_));
  const double bc2 = 1.0 - std::pow(beta2_, static_cast<double>(t_));
  for (std::size_t i = 0; i < params.size(); ++i) {
    m_[i] = beta1_ * m_[i] + (1.0 - beta1_) * grads[i];
    v_[i] = beta2_ * v_[i] + (1.0 - beta2_) * grads[i] * grads[i];
    const double mhat = m_[i] / bc1;
    const double vhat = v_[i] / bc2;
    params[i] -= lr_ * mhat / (std::sqrt(vhat) + eps_);
  }
  model.load_parameters(params);
}

std::unique_ptr<Optimizer> make_optimizer(const util::Json& spec) {
  const std::string kind =
      util::to_lower(spec.get("optimizer", "adam"));
  const double lr = spec.get("lr", 1e-3);
  if (kind == "sgd")
    return std::make_unique<Sgd>(lr, spec.get("momentum", 0.0));
  if (kind == "adam")
    return std::make_unique<Adam>(lr, spec.get("beta1", 0.9),
                                  spec.get("beta2", 0.999),
                                  spec.get("eps", 1e-8));
  throw ConfigError("unknown optimizer '" + kind + "'");
}

}  // namespace simai::ai
