#include "ai/tensor.hpp"

#include <algorithm>
#include <cmath>

namespace simai::ai {

Tensor::Tensor(std::size_t rows, std::size_t cols, std::vector<double> data)
    : rows_(rows), cols_(cols), data_(std::move(data)) {
  if (data_.size() != rows * cols)
    throw TensorError("tensor: data size does not match shape");
}

Tensor Tensor::randn(std::size_t rows, std::size_t cols,
                     util::Xoshiro256& rng, double stddev) {
  Tensor t(rows, cols);
  for (double& v : t.data_) v = rng.normal(0.0, stddev);
  return t;
}

std::vector<double> Tensor::row(std::size_t r) const {
  if (r >= rows_) throw TensorError("tensor: row index out of range");
  return {data_.begin() + static_cast<std::ptrdiff_t>(r * cols_),
          data_.begin() + static_cast<std::ptrdiff_t>((r + 1) * cols_)};
}

namespace {
void check(bool ok, const char* what) {
  if (!ok) throw TensorError(std::string("tensor: ") + what);
}
}  // namespace

Tensor matmul(const Tensor& a, const Tensor& b) {
  check(a.cols() == b.rows(), "matmul shape mismatch");
  Tensor c(a.rows(), b.cols());
  const std::size_t m = a.rows(), k = a.cols(), n = b.cols();
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t p = 0; p < k; ++p) {
      const double aip = a.at(i, p);
      if (aip == 0.0) continue;
      for (std::size_t j = 0; j < n; ++j) {
        c.at(i, j) += aip * b.at(p, j);
      }
    }
  }
  return c;
}

Tensor matmul_tn(const Tensor& a, const Tensor& b) {
  check(a.rows() == b.rows(), "matmul_tn shape mismatch");
  Tensor c(a.cols(), b.cols());
  const std::size_t m = a.cols(), k = a.rows(), n = b.cols();
  for (std::size_t p = 0; p < k; ++p) {
    for (std::size_t i = 0; i < m; ++i) {
      const double api = a.at(p, i);
      if (api == 0.0) continue;
      for (std::size_t j = 0; j < n; ++j) {
        c.at(i, j) += api * b.at(p, j);
      }
    }
  }
  (void)m;
  return c;
}

Tensor matmul_nt(const Tensor& a, const Tensor& b) {
  check(a.cols() == b.cols(), "matmul_nt shape mismatch");
  Tensor c(a.rows(), b.rows());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < b.rows(); ++j) {
      double s = 0.0;
      for (std::size_t p = 0; p < a.cols(); ++p) {
        s += a.at(i, p) * b.at(j, p);
      }
      c.at(i, j) = s;
    }
  }
  return c;
}

Tensor transpose(const Tensor& a) {
  Tensor t(a.cols(), a.rows());
  for (std::size_t i = 0; i < a.rows(); ++i)
    for (std::size_t j = 0; j < a.cols(); ++j) t.at(j, i) = a.at(i, j);
  return t;
}

void add_inplace(Tensor& a, const Tensor& b) {
  check(a.same_shape(b), "add shape mismatch");
  for (std::size_t i = 0; i < a.size(); ++i) a[i] += b[i];
}

void axpy_inplace(Tensor& a, const Tensor& b, double scale) {
  check(a.same_shape(b), "axpy shape mismatch");
  for (std::size_t i = 0; i < a.size(); ++i) a[i] += scale * b[i];
}

void scale_inplace(Tensor& a, double s) {
  for (std::size_t i = 0; i < a.size(); ++i) a[i] *= s;
}

void add_row_inplace(Tensor& a, const Tensor& bias_row) {
  check(bias_row.rows() == 1 && bias_row.cols() == a.cols(),
        "bias row shape mismatch");
  for (std::size_t i = 0; i < a.rows(); ++i)
    for (std::size_t j = 0; j < a.cols(); ++j) a.at(i, j) += bias_row[j];
}

Tensor column_sum(const Tensor& a) {
  Tensor s(1, a.cols());
  for (std::size_t i = 0; i < a.rows(); ++i)
    for (std::size_t j = 0; j < a.cols(); ++j) s[j] += a.at(i, j);
  return s;
}

double sum(const Tensor& a) {
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) s += a[i];
  return s;
}

double max_abs(const Tensor& a) {
  double m = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) m = std::max(m, std::fabs(a[i]));
  return m;
}

Bytes pack_tensor(const Tensor& t) {
  util::ByteWriter w(16 + t.size() * sizeof(double));
  w.u32(static_cast<std::uint32_t>(t.rows()));
  w.u32(static_cast<std::uint32_t>(t.cols()));
  w.raw({reinterpret_cast<const std::byte*>(t.data().data()),
         t.size() * sizeof(double)});
  return w.take();
}

Tensor unpack_tensor(ByteView data) {
  util::ByteReader r(data);
  const std::uint32_t rows = r.u32();
  const std::uint32_t cols = r.u32();
  const std::size_t n = static_cast<std::size_t>(rows) * cols;
  ByteView raw = r.raw(n * sizeof(double));
  std::vector<double> values(n);
  std::memcpy(values.data(), raw.data(), raw.size());
  return Tensor(rows, cols, std::move(values));
}

}  // namespace simai::ai
