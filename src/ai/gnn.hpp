// Graph and convolutional architectures — the §5 future-work model classes
// ("more advanced architectures, such as graph or convolutional neural
// networks"), and the model family behind the paper's Pattern-1 science
// case (the nekRS-ML GNN surrogate).
//
// GcnModel implements Kipf-Welling graph convolutions over a fixed mesh:
//   H^{l+1} = act( Ahat H^l W^l ),   Ahat = D^-1/2 (A + I) D^-1/2
// with exact hand-derived backprop (finite-difference verified in tests).
// Conv1dLayer implements a same-padded 1-D convolution over multi-channel
// signals (batch rows hold channel-major flattened signals).
#pragma once

#include <vector>

#include "ai/mlp.hpp"

namespace simai::ai {

/// Static graph: N nodes + undirected edge list, preprocessed into the
/// dense normalized adjacency Ahat used by every GCN layer.
class Graph {
 public:
  Graph(std::size_t num_nodes,
        const std::vector<std::pair<std::size_t, std::size_t>>& edges);

  std::size_t num_nodes() const { return ahat_.rows(); }
  const Tensor& ahat() const { return ahat_; }

  /// Ring mesh of n nodes (each node linked to its neighbors) — the 1-D
  /// periodic stencil of a spectral-element surface, handy for tests.
  static Graph ring(std::size_t n);
  /// 2-D grid mesh (rows x cols, 4-neighborhood).
  static Graph grid(std::size_t rows, std::size_t cols);

 private:
  Tensor ahat_;
};

/// One graph-convolution layer with cached activations for backprop.
class GraphConvLayer {
 public:
  GraphConvLayer(std::size_t in_features, std::size_t out_features,
                 Activation act, util::Xoshiro256& rng);

  /// H: num_nodes x in_features -> num_nodes x out_features.
  Tensor forward(const Tensor& ahat, const Tensor& h);
  /// dL/dH_out -> dL/dH_in; accumulates weight/bias gradients.
  Tensor backward(const Tensor& ahat, const Tensor& dout);
  void zero_grad();

  Tensor& weight() { return weight_; }
  Tensor& bias() { return bias_; }
  Tensor& weight_grad() { return weight_grad_; }
  Tensor& bias_grad() { return bias_grad_; }
  std::size_t in_features() const { return weight_.rows(); }
  std::size_t out_features() const { return weight_.cols(); }

 private:
  Tensor activation_grad(const Tensor& dout) const;

  Activation act_;
  Tensor weight_;      // in x out
  Tensor bias_;        // 1 x out
  Tensor weight_grad_;
  Tensor bias_grad_;
  Tensor agg_cache_;   // Ahat H from the last forward
  Tensor out_cache_;   // act(Z)
};

/// A stack of graph convolutions (output layer linear), node-level
/// regression head. Same flat parameter/gradient interface as Mlp so the
/// optimizers and DDP wrapper work unchanged.
class GcnModel {
 public:
  GcnModel(const std::vector<std::size_t>& feature_sizes, Activation hidden,
           std::uint64_t seed);

  /// X: num_nodes x in_features -> num_nodes x out_features.
  Tensor forward(const Graph& graph, const Tensor& x);
  void backward(const Graph& graph, const Tensor& dloss);
  void zero_grad();

  std::size_t num_layers() const { return layers_.size(); }
  GraphConvLayer& layer(std::size_t i) { return *layers_[i]; }
  std::size_t parameter_count() const;
  std::vector<double> flatten_parameters() const;
  void load_parameters(const std::vector<double>& flat);
  std::vector<double> flatten_gradients() const;
  void load_gradients(const std::vector<double>& flat);

 private:
  std::vector<std::unique_ptr<GraphConvLayer>> layers_;
};

/// Same-padded 1-D convolution: input rows are batch samples holding
/// channel-major flattened signals (c_in x length), output rows hold
/// (c_out x length).
class Conv1dLayer {
 public:
  Conv1dLayer(std::size_t in_channels, std::size_t out_channels,
              std::size_t kernel_size, std::size_t length, Activation act,
              util::Xoshiro256& rng);

  Tensor forward(const Tensor& x);
  Tensor backward(const Tensor& dout);
  void zero_grad();

  std::size_t parameter_count() const;
  std::vector<double> flatten_parameters() const;
  void load_parameters(const std::vector<double>& flat);
  std::vector<double> flatten_gradients() const;

  std::size_t in_features() const { return in_channels_ * length_; }
  std::size_t out_features() const { return out_channels_ * length_; }

 private:
  double& w(std::size_t co, std::size_t ci, std::size_t k) {
    return weight_[(co * in_channels_ + ci) * kernel_ + k];
  }
  double w(std::size_t co, std::size_t ci, std::size_t k) const {
    return weight_[(co * in_channels_ + ci) * kernel_ + k];
  }

  std::size_t in_channels_, out_channels_, kernel_, length_;
  Activation act_;
  std::vector<double> weight_;  // co x ci x k
  std::vector<double> bias_;    // co
  std::vector<double> weight_grad_;
  std::vector<double> bias_grad_;
  Tensor input_cache_;
  Tensor out_cache_;
};

}  // namespace simai::ai
