// Model checkpointing to H5Lite files.
//
// Online-training workflows checkpoint the surrogate periodically so a
// restarted trainer (or a downstream inference service) can pick up the
// latest weights — the standard coupled-workflow pattern for publishing a
// model across components. Layout:
//
//   /model/kind            attr on /model ("mlp" | "gcn")
//   /model/layer<i>/weight f64 [in, out]
//   /model/layer<i>/bias   f64 [1, out]
//   /model/meta            attrs: layers (json array), activation, step
#pragma once

#include "ai/gnn.hpp"
#include "ai/mlp.hpp"
#include "io/h5lite.hpp"

namespace simai::ai {

/// Write an MLP checkpoint into `file` (overwrites a previous one).
/// `step` tags the training iteration the weights belong to.
void save_checkpoint(io::H5File& file, const Mlp& model,
                     std::int64_t step = 0);
void save_checkpoint(io::H5File& file, const GcnModel& model,
                     std::int64_t step = 0);

/// Restore parameters into an existing, architecture-matched model.
/// Returns the checkpoint's step. Throws io::H5Error / TensorError on
/// mismatch or missing checkpoint.
std::int64_t load_checkpoint(const io::H5File& file, Mlp& model);
std::int64_t load_checkpoint(const io::H5File& file, GcnModel& model);

/// Kind string stored in the file ("mlp"/"gcn"), for dispatching loaders.
std::string checkpoint_kind(const io::H5File& file);

}  // namespace simai::ai
