// Feed-forward fully-connected network with hand-derived backprop — the
// model family the paper's AI class currently supports (§3.4).
//
// Layers: Linear (W, b) and pointwise activations (ReLU / Tanh / Sigmoid /
// Identity). Loss: mean-squared error. The parameter/gradient state of the
// whole network is exposed as flat views so optimizers and the DDP wrapper
// (gradient all-reduce) can treat the model as one parameter vector, like
// torch's parameters().
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "ai/tensor.hpp"
#include "util/json.hpp"

namespace simai::ai {

enum class Activation { Identity, ReLU, Tanh, Sigmoid };
Activation parse_activation(std::string_view name);

/// One dense layer y = act(x W + b).
class DenseLayer {
 public:
  DenseLayer(std::size_t in, std::size_t out, Activation act,
             util::Xoshiro256& rng);

  /// Forward pass for a batch (rows = samples). Caches what backward needs.
  Tensor forward(const Tensor& x);

  /// Given dL/dy, accumulate dW/db and return dL/dx.
  Tensor backward(const Tensor& dy);

  void zero_grad();

  std::size_t in_features() const { return weight_.rows(); }
  std::size_t out_features() const { return weight_.cols(); }

  Tensor& weight() { return weight_; }
  Tensor& bias() { return bias_; }
  Tensor& weight_grad() { return weight_grad_; }
  Tensor& bias_grad() { return bias_grad_; }

 private:
  Tensor apply_activation(const Tensor& z) const;
  Tensor activation_grad(const Tensor& dy) const;

  Activation act_;
  Tensor weight_;       // in x out
  Tensor bias_;         // 1 x out
  Tensor weight_grad_;
  Tensor bias_grad_;
  Tensor input_cache_;  // x from the last forward
  Tensor output_cache_; // act(z) from the last forward
};

class Mlp {
 public:
  /// hidden activation applies between layers; the output layer is linear.
  Mlp(const std::vector<std::size_t>& layer_sizes, Activation hidden,
      std::uint64_t seed);

  /// Build from JSON: {"layers":[64,128,128,64], "activation":"relu",
  /// "seed":1}
  static Mlp from_json(const util::Json& spec);

  Tensor forward(const Tensor& x);
  /// Backprop dL/dy_pred through the network (after a forward).
  void backward(const Tensor& dloss);
  void zero_grad();

  std::size_t num_layers() const { return layers_.size(); }
  DenseLayer& layer(std::size_t i) { return *layers_[i]; }

  std::size_t parameter_count() const;

  /// Copy all parameters into / out of one flat vector (rank-0 broadcast
  /// for DDP initialization, checkpoints, tests).
  std::vector<double> flatten_parameters() const;
  void load_parameters(const std::vector<double>& flat);

  /// Copy all gradients into / out of one flat vector (DDP all-reduce).
  std::vector<double> flatten_gradients() const;
  void load_gradients(const std::vector<double>& flat);

 private:
  std::vector<std::unique_ptr<DenseLayer>> layers_;
};

/// Mean-squared-error loss: returns the scalar loss and fills `dloss` with
/// dL/dy_pred (the 2/(N*C) (y_pred - y_true) gradient).
double mse_loss(const Tensor& pred, const Tensor& target, Tensor& dloss);

}  // namespace simai::ai
