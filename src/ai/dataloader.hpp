// Training-data management for online learning.
//
// The paper's trainer periodically polls the DataStore for new simulation
// snapshots and refreshes its data loader (§4.1: "the GNN trainer reads new
// data at a regular interval ... to update its data loader"). DataLoader
// holds (x, y) sample tensors, ingests staged tensors incrementally, evicts
// the oldest samples beyond a capacity (sliding window over the simulation
// trajectory), and serves shuffled mini-batches.
#pragma once

#include <cstdint>
#include <deque>

#include "ai/tensor.hpp"
#include "kv/store.hpp"
#include "util/rng.hpp"

namespace simai::ai {

class DataLoader {
 public:
  /// `features_in/out`: columns of x and y; `capacity`: max retained samples
  /// (0 = unbounded); `seed`: shuffling RNG seed.
  DataLoader(std::size_t features_in, std::size_t features_out,
             std::size_t capacity = 0, std::uint64_t seed = 7);

  /// Append all rows of a staged sample pair. x and y must have equal row
  /// counts and the configured column counts.
  void add_samples(const Tensor& x, const Tensor& y);

  /// Ingest a packed snapshot as produced by pack_sample(): x and y stacked
  /// in one buffer.
  void add_packed(ByteView packed);

  /// Number of samples currently held.
  std::size_t size() const { return x_rows_.size(); }
  bool empty() const { return x_rows_.empty(); }

  /// Assemble a shuffled mini-batch of up to `batch_size` samples
  /// (sampling without replacement within the batch).
  std::pair<Tensor, Tensor> sample_batch(std::size_t batch_size);

  std::size_t features_in() const { return features_in_; }
  std::size_t features_out() const { return features_out_; }

 private:
  void evict_overflow();

  std::size_t features_in_;
  std::size_t features_out_;
  std::size_t capacity_;
  util::Xoshiro256 rng_;
  std::deque<std::vector<double>> x_rows_;
  std::deque<std::vector<double>> y_rows_;
};

/// Pack an (x, y) sample pair into one staging buffer / unpack it back.
Bytes pack_sample(const Tensor& x, const Tensor& y);
std::pair<Tensor, Tensor> unpack_sample(ByteView data);

}  // namespace simai::ai
