#include "ai/checkpoint.hpp"

namespace simai::ai {

namespace {

void save_flat(io::H5File& file, std::string_view kind,
               const std::vector<double>& params, std::int64_t step) {
  file.create_group("/model");
  file.write("/model/parameters", std::span<const double>(params));
  file.set_attribute("/model", "kind", util::Json(std::string(kind)));
  file.set_attribute("/model", "step", util::Json(step));
  file.set_attribute("/model", "parameter_count",
                     util::Json(static_cast<std::int64_t>(params.size())));
  file.flush();
}

std::int64_t load_flat(const io::H5File& file, std::string_view kind,
                       std::vector<double>& out) {
  const auto stored_kind = file.attribute("/model", "kind");
  if (!stored_kind)
    throw io::H5Error("checkpoint: no /model object in file");
  if (stored_kind->as_string() != kind)
    throw io::H5Error("checkpoint: file holds a '" +
                      stored_kind->as_string() + "' model, expected '" +
                      std::string(kind) + "'");
  out = file.read_f64("/model/parameters");
  const auto step = file.attribute("/model", "step");
  return step ? step->as_int() : 0;
}

}  // namespace

void save_checkpoint(io::H5File& file, const Mlp& model, std::int64_t step) {
  save_flat(file, "mlp", model.flatten_parameters(), step);
}

void save_checkpoint(io::H5File& file, const GcnModel& model,
                     std::int64_t step) {
  save_flat(file, "gcn", model.flatten_parameters(), step);
}

std::int64_t load_checkpoint(const io::H5File& file, Mlp& model) {
  std::vector<double> params;
  const std::int64_t step = load_flat(file, "mlp", params);
  model.load_parameters(params);  // throws on architecture mismatch
  return step;
}

std::int64_t load_checkpoint(const io::H5File& file, GcnModel& model) {
  std::vector<double> params;
  const std::int64_t step = load_flat(file, "gcn", params);
  model.load_parameters(params);
  return step;
}

std::string checkpoint_kind(const io::H5File& file) {
  const auto kind = file.attribute("/model", "kind");
  if (!kind) throw io::H5Error("checkpoint: no /model object in file");
  return kind->as_string();
}

}  // namespace simai::ai
