#include "ai/dataloader.hpp"

#include <algorithm>

namespace simai::ai {

DataLoader::DataLoader(std::size_t features_in, std::size_t features_out,
                       std::size_t capacity, std::uint64_t seed)
    : features_in_(features_in),
      features_out_(features_out),
      capacity_(capacity),
      rng_(seed) {
  if (features_in == 0 || features_out == 0)
    throw TensorError("dataloader: feature counts must be positive");
}

void DataLoader::add_samples(const Tensor& x, const Tensor& y) {
  if (x.cols() != features_in_ || y.cols() != features_out_)
    throw TensorError("dataloader: sample feature mismatch");
  if (x.rows() != y.rows())
    throw TensorError("dataloader: x/y row count mismatch");
  for (std::size_t r = 0; r < x.rows(); ++r) {
    x_rows_.push_back(x.row(r));
    y_rows_.push_back(y.row(r));
  }
  evict_overflow();
}

void DataLoader::add_packed(ByteView packed) {
  auto [x, y] = unpack_sample(packed);
  add_samples(x, y);
}

void DataLoader::evict_overflow() {
  if (capacity_ == 0) return;
  while (x_rows_.size() > capacity_) {
    x_rows_.pop_front();
    y_rows_.pop_front();
  }
}

std::pair<Tensor, Tensor> DataLoader::sample_batch(std::size_t batch_size) {
  if (empty()) throw TensorError("dataloader: no samples available");
  const std::size_t n = std::min(batch_size, x_rows_.size());
  // Partial Fisher-Yates over an index vector: unbiased, no replacement.
  std::vector<std::size_t> idx(x_rows_.size());
  for (std::size_t i = 0; i < idx.size(); ++i) idx[i] = i;
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t j =
        i + static_cast<std::size_t>(rng_.uniform_int(idx.size() - i));
    std::swap(idx[i], idx[j]);
  }
  Tensor x(n, features_in_);
  Tensor y(n, features_out_);
  for (std::size_t i = 0; i < n; ++i) {
    const auto& xr = x_rows_[idx[i]];
    const auto& yr = y_rows_[idx[i]];
    std::copy(xr.begin(), xr.end(), x.data().begin() + static_cast<std::ptrdiff_t>(i * features_in_));
    std::copy(yr.begin(), yr.end(), y.data().begin() + static_cast<std::ptrdiff_t>(i * features_out_));
  }
  return {std::move(x), std::move(y)};
}

Bytes pack_sample(const Tensor& x, const Tensor& y) {
  const Bytes xb = pack_tensor(x);
  const Bytes yb = pack_tensor(y);
  util::ByteWriter w(16 + xb.size() + yb.size());
  w.bytes(ByteView(xb));
  w.bytes(ByteView(yb));
  return w.take();
}

std::pair<Tensor, Tensor> unpack_sample(ByteView data) {
  util::ByteReader r(data);
  // bytes_view() borrows from `data` instead of materializing owned copies
  // of both tensors before decode; unpack_tensor reads in place.
  const ByteView xb = r.bytes_view();
  const ByteView yb = r.bytes_view();
  return {unpack_tensor(xb), unpack_tensor(yb)};
}

}  // namespace simai::ai
