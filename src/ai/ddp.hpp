// Distributed data-parallel training (torch DDP equivalent).
//
// Each rank owns a replica of the model; after local backward, gradients
// are averaged with an allreduce over the in-process communicator (in
// buckets, like DDP's gradient bucketing), then every rank steps its
// optimizer identically — replicas stay bit-identical, which the tests
// assert.
#pragma once

#include <memory>

#include "ai/mlp.hpp"
#include "ai/optim.hpp"
#include "net/communicator.hpp"

namespace simai::ai {

class DdpTrainer {
 public:
  /// `model` is this rank's replica. Rank 0's initial parameters are
  /// broadcast so all replicas start identical (call sync_parameters()).
  DdpTrainer(Mlp model, std::unique_ptr<Optimizer> optimizer,
             net::Communicator& comm, int rank,
             std::size_t bucket_elems = 64 * 1024);

  /// Broadcast rank 0's parameters to every replica.
  void sync_parameters(sim::Context& ctx);

  /// One training step on a local mini-batch: forward, MSE loss, backward,
  /// bucketed gradient allreduce (average), optimizer step.
  /// Returns the *globally averaged* loss.
  double train_step(sim::Context& ctx, const Tensor& x, const Tensor& y);

  /// Forward-only (inference).
  Tensor infer(const Tensor& x) { return model_.forward(x); }

  Mlp& model() { return model_; }
  int rank() const { return rank_; }
  int world_size() const { return comm_.size(); }

 private:
  void allreduce_gradients(sim::Context& ctx);

  Mlp model_;
  std::unique_ptr<Optimizer> optimizer_;
  net::Communicator& comm_;
  int rank_;
  std::size_t bucket_elems_;
};

}  // namespace simai::ai
