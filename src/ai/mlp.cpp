#include "ai/mlp.hpp"

#include <cmath>

#include "util/string_util.hpp"

namespace simai::ai {

Activation parse_activation(std::string_view name) {
  const std::string n = util::to_lower(name);
  if (n == "identity" || n == "linear" || n == "none")
    return Activation::Identity;
  if (n == "relu") return Activation::ReLU;
  if (n == "tanh") return Activation::Tanh;
  if (n == "sigmoid") return Activation::Sigmoid;
  throw ConfigError("unknown activation '" + std::string(name) + "'");
}

DenseLayer::DenseLayer(std::size_t in, std::size_t out, Activation act,
                       util::Xoshiro256& rng)
    : act_(act),
      // He initialization keeps activations well-scaled for ReLU nets.
      weight_(Tensor::randn(in, out, rng,
                            std::sqrt(2.0 / static_cast<double>(in)))),
      bias_(1, out),
      weight_grad_(in, out),
      bias_grad_(1, out) {}

Tensor DenseLayer::apply_activation(const Tensor& z) const {
  Tensor out = z;
  switch (act_) {
    case Activation::Identity:
      break;
    case Activation::ReLU:
      for (std::size_t i = 0; i < out.size(); ++i)
        out[i] = out[i] > 0.0 ? out[i] : 0.0;
      break;
    case Activation::Tanh:
      for (std::size_t i = 0; i < out.size(); ++i) out[i] = std::tanh(out[i]);
      break;
    case Activation::Sigmoid:
      for (std::size_t i = 0; i < out.size(); ++i)
        out[i] = 1.0 / (1.0 + std::exp(-out[i]));
      break;
  }
  return out;
}

Tensor DenseLayer::activation_grad(const Tensor& dy) const {
  // dL/dz from dL/dy using the cached activated output y = act(z):
  // identity: 1; relu: [y>0]; tanh: 1-y^2; sigmoid: y(1-y).
  Tensor dz = dy;
  switch (act_) {
    case Activation::Identity:
      break;
    case Activation::ReLU:
      for (std::size_t i = 0; i < dz.size(); ++i)
        if (output_cache_[i] <= 0.0) dz[i] = 0.0;
      break;
    case Activation::Tanh:
      for (std::size_t i = 0; i < dz.size(); ++i)
        dz[i] *= 1.0 - output_cache_[i] * output_cache_[i];
      break;
    case Activation::Sigmoid:
      for (std::size_t i = 0; i < dz.size(); ++i)
        dz[i] *= output_cache_[i] * (1.0 - output_cache_[i]);
      break;
  }
  return dz;
}

Tensor DenseLayer::forward(const Tensor& x) {
  input_cache_ = x;
  Tensor z = matmul(x, weight_);
  add_row_inplace(z, bias_);
  output_cache_ = apply_activation(z);
  return output_cache_;
}

Tensor DenseLayer::backward(const Tensor& dy) {
  const Tensor dz = activation_grad(dy);
  add_inplace(weight_grad_, matmul_tn(input_cache_, dz));  // X^T dZ
  add_inplace(bias_grad_, column_sum(dz));
  return matmul_nt(dz, weight_);  // dZ W^T
}

void DenseLayer::zero_grad() {
  weight_grad_.zero();
  bias_grad_.zero();
}

Mlp::Mlp(const std::vector<std::size_t>& layer_sizes, Activation hidden,
         std::uint64_t seed) {
  if (layer_sizes.size() < 2)
    throw ConfigError("mlp: need at least input and output sizes");
  util::Xoshiro256 rng(seed);
  for (std::size_t i = 0; i + 1 < layer_sizes.size(); ++i) {
    const bool last = (i + 2 == layer_sizes.size());
    layers_.push_back(std::make_unique<DenseLayer>(
        layer_sizes[i], layer_sizes[i + 1],
        last ? Activation::Identity : hidden, rng));
  }
}

Mlp Mlp::from_json(const util::Json& spec) {
  std::vector<std::size_t> sizes;
  for (const util::Json& s : spec.at("layers").as_array()) {
    const auto v = s.as_int();
    if (v <= 0) throw ConfigError("mlp: layer sizes must be positive");
    sizes.push_back(static_cast<std::size_t>(v));
  }
  const Activation act = parse_activation(spec.get("activation", "relu"));
  const auto seed = static_cast<std::uint64_t>(spec.get("seed", 1));
  return Mlp(sizes, act, seed);
}

Tensor Mlp::forward(const Tensor& x) {
  Tensor h = x;
  for (auto& layer : layers_) h = layer->forward(h);
  return h;
}

void Mlp::backward(const Tensor& dloss) {
  Tensor d = dloss;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) {
    d = (*it)->backward(d);
  }
}

void Mlp::zero_grad() {
  for (auto& layer : layers_) layer->zero_grad();
}

std::size_t Mlp::parameter_count() const {
  std::size_t n = 0;
  for (const auto& layer : layers_) {
    n += layer->weight().size() + layer->bias().size();
  }
  return n;
}

namespace {
template <typename LayerVec, typename Getter>
std::vector<double> flatten(const LayerVec& layers, Getter get) {
  std::vector<double> out;
  for (const auto& layer : layers) {
    const auto& [w, b] = get(*layer);
    out.insert(out.end(), w.data().begin(), w.data().end());
    out.insert(out.end(), b.data().begin(), b.data().end());
  }
  return out;
}

template <typename LayerVec, typename Getter>
void load_flat(LayerVec& layers, const std::vector<double>& flat,
               Getter get) {
  std::size_t pos = 0;
  for (auto& layer : layers) {
    auto [w, b] = get(*layer);
    if (pos + w->size() + b->size() > flat.size())
      throw TensorError("mlp: flat vector too short");
    std::copy(flat.begin() + static_cast<std::ptrdiff_t>(pos),
              flat.begin() + static_cast<std::ptrdiff_t>(pos + w->size()),
              w->data().begin());
    pos += w->size();
    std::copy(flat.begin() + static_cast<std::ptrdiff_t>(pos),
              flat.begin() + static_cast<std::ptrdiff_t>(pos + b->size()),
              b->data().begin());
    pos += b->size();
  }
  if (pos != flat.size()) throw TensorError("mlp: flat vector too long");
}
}  // namespace

std::vector<double> Mlp::flatten_parameters() const {
  return flatten(layers_, [](DenseLayer& l) {
    return std::pair<const Tensor&, const Tensor&>(l.weight(), l.bias());
  });
}

void Mlp::load_parameters(const std::vector<double>& flat) {
  load_flat(layers_, flat, [](DenseLayer& l) {
    return std::pair<Tensor*, Tensor*>(&l.weight(), &l.bias());
  });
}

std::vector<double> Mlp::flatten_gradients() const {
  return flatten(layers_, [](DenseLayer& l) {
    return std::pair<const Tensor&, const Tensor&>(l.weight_grad(),
                                                   l.bias_grad());
  });
}

void Mlp::load_gradients(const std::vector<double>& flat) {
  load_flat(layers_, flat, [](DenseLayer& l) {
    return std::pair<Tensor*, Tensor*>(&l.weight_grad(), &l.bias_grad());
  });
}

double mse_loss(const Tensor& pred, const Tensor& target, Tensor& dloss) {
  if (!pred.same_shape(target))
    throw TensorError("mse: prediction/target shape mismatch");
  dloss = Tensor(pred.rows(), pred.cols());
  double loss = 0.0;
  const double n = static_cast<double>(pred.size());
  for (std::size_t i = 0; i < pred.size(); ++i) {
    const double diff = pred[i] - target[i];
    loss += diff * diff;
    dloss[i] = 2.0 * diff / n;
  }
  return loss / n;
}

}  // namespace simai::ai
