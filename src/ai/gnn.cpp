#include "ai/gnn.hpp"

#include <cmath>

namespace simai::ai {

// ---------------------------------------------------------------------------
// Graph
// ---------------------------------------------------------------------------

Graph::Graph(std::size_t num_nodes,
             const std::vector<std::pair<std::size_t, std::size_t>>& edges) {
  if (num_nodes == 0) throw TensorError("graph: need at least one node");
  // A + I
  Tensor a(num_nodes, num_nodes);
  for (std::size_t i = 0; i < num_nodes; ++i) a.at(i, i) = 1.0;
  for (const auto& [u, v] : edges) {
    if (u >= num_nodes || v >= num_nodes)
      throw TensorError("graph: edge endpoint out of range");
    a.at(u, v) = 1.0;
    a.at(v, u) = 1.0;
  }
  // D^-1/2 (A+I) D^-1/2
  std::vector<double> dinv_sqrt(num_nodes);
  for (std::size_t i = 0; i < num_nodes; ++i) {
    double deg = 0.0;
    for (std::size_t j = 0; j < num_nodes; ++j) deg += a.at(i, j);
    dinv_sqrt[i] = 1.0 / std::sqrt(deg);
  }
  ahat_ = Tensor(num_nodes, num_nodes);
  for (std::size_t i = 0; i < num_nodes; ++i)
    for (std::size_t j = 0; j < num_nodes; ++j)
      ahat_.at(i, j) = dinv_sqrt[i] * a.at(i, j) * dinv_sqrt[j];
}

Graph Graph::ring(std::size_t n) {
  std::vector<std::pair<std::size_t, std::size_t>> edges;
  for (std::size_t i = 0; i < n; ++i) edges.emplace_back(i, (i + 1) % n);
  return Graph(n, edges);
}

Graph Graph::grid(std::size_t rows, std::size_t cols) {
  std::vector<std::pair<std::size_t, std::size_t>> edges;
  auto id = [cols](std::size_t r, std::size_t c) { return r * cols + c; };
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      if (c + 1 < cols) edges.emplace_back(id(r, c), id(r, c + 1));
      if (r + 1 < rows) edges.emplace_back(id(r, c), id(r + 1, c));
    }
  }
  return Graph(rows * cols, edges);
}

// ---------------------------------------------------------------------------
// GraphConvLayer
// ---------------------------------------------------------------------------

namespace {
Tensor apply_act(const Tensor& z, Activation act) {
  Tensor out = z;
  switch (act) {
    case Activation::Identity:
      break;
    case Activation::ReLU:
      for (std::size_t i = 0; i < out.size(); ++i)
        out[i] = out[i] > 0.0 ? out[i] : 0.0;
      break;
    case Activation::Tanh:
      for (std::size_t i = 0; i < out.size(); ++i) out[i] = std::tanh(out[i]);
      break;
    case Activation::Sigmoid:
      for (std::size_t i = 0; i < out.size(); ++i)
        out[i] = 1.0 / (1.0 + std::exp(-out[i]));
      break;
  }
  return out;
}
}  // namespace

GraphConvLayer::GraphConvLayer(std::size_t in_features,
                               std::size_t out_features, Activation act,
                               util::Xoshiro256& rng)
    : act_(act),
      weight_(Tensor::randn(in_features, out_features, rng,
                            std::sqrt(2.0 / static_cast<double>(in_features)))),
      bias_(1, out_features),
      weight_grad_(in_features, out_features),
      bias_grad_(1, out_features) {}

Tensor GraphConvLayer::forward(const Tensor& ahat, const Tensor& h) {
  agg_cache_ = matmul(ahat, h);  // neighborhood aggregation
  Tensor z = matmul(agg_cache_, weight_);
  add_row_inplace(z, bias_);
  out_cache_ = apply_act(z, act_);
  return out_cache_;
}

Tensor GraphConvLayer::activation_grad(const Tensor& dout) const {
  Tensor dz = dout;
  switch (act_) {
    case Activation::Identity:
      break;
    case Activation::ReLU:
      for (std::size_t i = 0; i < dz.size(); ++i)
        if (out_cache_[i] <= 0.0) dz[i] = 0.0;
      break;
    case Activation::Tanh:
      for (std::size_t i = 0; i < dz.size(); ++i)
        dz[i] *= 1.0 - out_cache_[i] * out_cache_[i];
      break;
    case Activation::Sigmoid:
      for (std::size_t i = 0; i < dz.size(); ++i)
        dz[i] *= out_cache_[i] * (1.0 - out_cache_[i]);
      break;
  }
  return dz;
}

Tensor GraphConvLayer::backward(const Tensor& ahat, const Tensor& dout) {
  const Tensor dz = activation_grad(dout);
  add_inplace(weight_grad_, matmul_tn(agg_cache_, dz));  // (Ahat H)^T dZ
  add_inplace(bias_grad_, column_sum(dz));
  // dH = Ahat^T dZ W^T; Ahat is symmetric, so Ahat dZ W^T.
  return matmul(ahat, matmul_nt(dz, weight_));
}

void GraphConvLayer::zero_grad() {
  weight_grad_.zero();
  bias_grad_.zero();
}

// ---------------------------------------------------------------------------
// GcnModel
// ---------------------------------------------------------------------------

GcnModel::GcnModel(const std::vector<std::size_t>& feature_sizes,
                   Activation hidden, std::uint64_t seed) {
  if (feature_sizes.size() < 2)
    throw ConfigError("gcn: need at least input and output feature sizes");
  util::Xoshiro256 rng(seed);
  for (std::size_t i = 0; i + 1 < feature_sizes.size(); ++i) {
    const bool last = (i + 2 == feature_sizes.size());
    layers_.push_back(std::make_unique<GraphConvLayer>(
        feature_sizes[i], feature_sizes[i + 1],
        last ? Activation::Identity : hidden, rng));
  }
}

Tensor GcnModel::forward(const Graph& graph, const Tensor& x) {
  Tensor h = x;
  for (auto& layer : layers_) h = layer->forward(graph.ahat(), h);
  return h;
}

void GcnModel::backward(const Graph& graph, const Tensor& dloss) {
  Tensor d = dloss;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it)
    d = (*it)->backward(graph.ahat(), d);
}

void GcnModel::zero_grad() {
  for (auto& layer : layers_) layer->zero_grad();
}

std::size_t GcnModel::parameter_count() const {
  std::size_t n = 0;
  for (const auto& layer : layers_)
    n += layer->weight().size() + layer->bias().size();
  return n;
}

std::vector<double> GcnModel::flatten_parameters() const {
  std::vector<double> out;
  for (const auto& layer : layers_) {
    out.insert(out.end(), layer->weight().data().begin(),
               layer->weight().data().end());
    out.insert(out.end(), layer->bias().data().begin(),
               layer->bias().data().end());
  }
  return out;
}

namespace {
void load_span(std::vector<double>& dst, const std::vector<double>& flat,
               std::size_t& pos) {
  if (pos + dst.size() > flat.size())
    throw TensorError("gcn: flat vector too short");
  std::copy(flat.begin() + static_cast<std::ptrdiff_t>(pos),
            flat.begin() + static_cast<std::ptrdiff_t>(pos + dst.size()),
            dst.begin());
  pos += dst.size();
}
}  // namespace

void GcnModel::load_parameters(const std::vector<double>& flat) {
  std::size_t pos = 0;
  for (auto& layer : layers_) {
    load_span(layer->weight().data(), flat, pos);
    load_span(layer->bias().data(), flat, pos);
  }
  if (pos != flat.size()) throw TensorError("gcn: flat vector too long");
}

std::vector<double> GcnModel::flatten_gradients() const {
  std::vector<double> out;
  for (const auto& layer : layers_) {
    out.insert(out.end(), layer->weight_grad().data().begin(),
               layer->weight_grad().data().end());
    out.insert(out.end(), layer->bias_grad().data().begin(),
               layer->bias_grad().data().end());
  }
  return out;
}

void GcnModel::load_gradients(const std::vector<double>& flat) {
  std::size_t pos = 0;
  for (auto& layer : layers_) {
    load_span(layer->weight_grad().data(), flat, pos);
    load_span(layer->bias_grad().data(), flat, pos);
  }
  if (pos != flat.size()) throw TensorError("gcn: flat vector too long");
}

// ---------------------------------------------------------------------------
// Conv1dLayer
// ---------------------------------------------------------------------------

Conv1dLayer::Conv1dLayer(std::size_t in_channels, std::size_t out_channels,
                         std::size_t kernel_size, std::size_t length,
                         Activation act, util::Xoshiro256& rng)
    : in_channels_(in_channels),
      out_channels_(out_channels),
      kernel_(kernel_size),
      length_(length),
      act_(act),
      weight_(out_channels * in_channels * kernel_size),
      bias_(out_channels, 0.0),
      weight_grad_(weight_.size(), 0.0),
      bias_grad_(out_channels, 0.0) {
  if (kernel_size % 2 == 0)
    throw ConfigError("conv1d: kernel size must be odd (same padding)");
  const double stddev =
      std::sqrt(2.0 / static_cast<double>(in_channels * kernel_size));
  for (double& v : weight_) v = rng.normal(0.0, stddev);
}

Tensor Conv1dLayer::forward(const Tensor& x) {
  if (x.cols() != in_features())
    throw TensorError("conv1d: input feature size mismatch");
  input_cache_ = x;
  const std::size_t batch = x.rows();
  const std::ptrdiff_t half = static_cast<std::ptrdiff_t>(kernel_ / 2);
  Tensor z(batch, out_features());
  for (std::size_t b = 0; b < batch; ++b) {
    for (std::size_t co = 0; co < out_channels_; ++co) {
      for (std::size_t l = 0; l < length_; ++l) {
        double acc = bias_[co];
        for (std::size_t ci = 0; ci < in_channels_; ++ci) {
          for (std::size_t k = 0; k < kernel_; ++k) {
            const std::ptrdiff_t src =
                static_cast<std::ptrdiff_t>(l) + static_cast<std::ptrdiff_t>(k) - half;
            if (src < 0 || src >= static_cast<std::ptrdiff_t>(length_))
              continue;  // zero padding
            acc += w(co, ci, k) *
                   x.at(b, ci * length_ + static_cast<std::size_t>(src));
          }
        }
        z.at(b, co * length_ + l) = acc;
      }
    }
  }
  out_cache_ = apply_act(z, act_);
  return out_cache_;
}

Tensor Conv1dLayer::backward(const Tensor& dout) {
  // Activation gradient using cached outputs.
  Tensor dz = dout;
  switch (act_) {
    case Activation::Identity:
      break;
    case Activation::ReLU:
      for (std::size_t i = 0; i < dz.size(); ++i)
        if (out_cache_[i] <= 0.0) dz[i] = 0.0;
      break;
    case Activation::Tanh:
      for (std::size_t i = 0; i < dz.size(); ++i)
        dz[i] *= 1.0 - out_cache_[i] * out_cache_[i];
      break;
    case Activation::Sigmoid:
      for (std::size_t i = 0; i < dz.size(); ++i)
        dz[i] *= out_cache_[i] * (1.0 - out_cache_[i]);
      break;
  }

  const std::size_t batch = input_cache_.rows();
  const std::ptrdiff_t half = static_cast<std::ptrdiff_t>(kernel_ / 2);
  Tensor dx(batch, in_features());
  for (std::size_t b = 0; b < batch; ++b) {
    for (std::size_t co = 0; co < out_channels_; ++co) {
      for (std::size_t l = 0; l < length_; ++l) {
        const double g = dz.at(b, co * length_ + l);
        if (g == 0.0) continue;
        bias_grad_[co] += g;
        for (std::size_t ci = 0; ci < in_channels_; ++ci) {
          for (std::size_t k = 0; k < kernel_; ++k) {
            const std::ptrdiff_t src =
                static_cast<std::ptrdiff_t>(l) + static_cast<std::ptrdiff_t>(k) - half;
            if (src < 0 || src >= static_cast<std::ptrdiff_t>(length_))
              continue;
            const std::size_t xi = ci * length_ + static_cast<std::size_t>(src);
            weight_grad_[(co * in_channels_ + ci) * kernel_ + k] +=
                g * input_cache_.at(b, xi);
            dx.at(b, xi) += g * w(co, ci, k);
          }
        }
      }
    }
  }
  return dx;
}

void Conv1dLayer::zero_grad() {
  std::fill(weight_grad_.begin(), weight_grad_.end(), 0.0);
  std::fill(bias_grad_.begin(), bias_grad_.end(), 0.0);
}

std::size_t Conv1dLayer::parameter_count() const {
  return weight_.size() + bias_.size();
}

std::vector<double> Conv1dLayer::flatten_parameters() const {
  std::vector<double> out = weight_;
  out.insert(out.end(), bias_.begin(), bias_.end());
  return out;
}

void Conv1dLayer::load_parameters(const std::vector<double>& flat) {
  if (flat.size() != parameter_count())
    throw TensorError("conv1d: flat vector size mismatch");
  std::copy(flat.begin(),
            flat.begin() + static_cast<std::ptrdiff_t>(weight_.size()),
            weight_.begin());
  std::copy(flat.begin() + static_cast<std::ptrdiff_t>(weight_.size()),
            flat.end(), bias_.begin());
}

std::vector<double> Conv1dLayer::flatten_gradients() const {
  std::vector<double> out = weight_grad_;
  out.insert(out.end(), bias_grad_.begin(), bias_grad_.end());
  return out;
}

}  // namespace simai::ai
