#include "sim/trace.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <sstream>
#include <tuple>

#include "util/json.hpp"

namespace simai::sim {

void TraceRecorder::record_span(std::string track, std::string category,
                                SimTime start, SimTime end) {
  std::lock_guard<std::mutex> lk(mu_);
  spans_.push_back({std::move(track), std::move(category), start, end, false});
}

void TraceRecorder::record_async_span(std::string track, std::string category,
                                      SimTime start, SimTime end) {
  std::lock_guard<std::mutex> lk(mu_);
  spans_.push_back({std::move(track), std::move(category), start, end, true});
}

void TraceRecorder::record_instant(std::string track, std::string category,
                                   SimTime time, std::uint64_t bytes) {
  std::lock_guard<std::mutex> lk(mu_);
  instants_.push_back({std::move(track), std::move(category), time, bytes});
}

void TraceRecorder::record_labeled_span(LabeledSpan span) {
  std::lock_guard<std::mutex> lk(mu_);
  labeled_spans_.push_back(std::move(span));
}

void TraceRecorder::record_counter_sample(std::string series, SimTime time,
                                          double value) {
  std::lock_guard<std::mutex> lk(mu_);
  counter_samples_.push_back({std::move(series), time, value});
}

SimTime TraceRecorder::begin_time() const {
  SimTime t = std::numeric_limits<SimTime>::infinity();
  for (const auto& s : spans_) t = std::min(t, s.start);
  for (const auto& i : instants_) t = std::min(t, i.time);
  return std::isfinite(t) ? t : 0.0;
}

SimTime TraceRecorder::end_time() const {
  SimTime t = 0.0;
  for (const auto& s : spans_) t = std::max(t, s.end);
  for (const auto& i : instants_) t = std::max(t, i.time);
  return t;
}

std::string TraceRecorder::to_csv() const {
  std::ostringstream out;
  out << "track,category,start,end,bytes\n";
  for (const auto& s : spans_) {
    out << s.track << ',' << s.category << ',' << s.start << ',' << s.end
        << ",0\n";
  }
  for (const auto& i : instants_) {
    out << i.track << ',' << i.category << ',' << i.time << ',' << i.time
        << ',' << i.bytes << '\n';
  }
  return out.str();
}

std::string TraceRecorder::to_canonical_csv() const {
  std::vector<TraceSpan> spans = spans_;
  std::sort(spans.begin(), spans.end(),
            [](const TraceSpan& a, const TraceSpan& b) {
              return std::tie(a.track, a.category, a.start, a.end, a.async) <
                     std::tie(b.track, b.category, b.start, b.end, b.async);
            });
  std::vector<TraceInstant> instants = instants_;
  std::sort(instants.begin(), instants.end(),
            [](const TraceInstant& a, const TraceInstant& b) {
              return std::tie(a.track, a.category, a.time, a.bytes) <
                     std::tie(b.track, b.category, b.time, b.bytes);
            });
  std::ostringstream out;
  out << "track,category,start,end,bytes\n";
  for (const auto& s : spans) {
    out << s.track << ',' << s.category << ',' << s.start << ',' << s.end
        << ",0\n";
  }
  for (const auto& i : instants) {
    out << i.track << ',' << i.category << ',' << i.time << ',' << i.time
        << ',' << i.bytes << '\n';
  }
  return out.str();
}

std::string TraceRecorder::render_ascii(int width, SimTime t0,
                                        SimTime t1) const {
  if (width < 10) width = 10;
  if (t0 < 0.0) t0 = begin_time();
  if (t1 < 0.0) t1 = end_time();
  if (t1 <= t0) t1 = t0 + 1.0;
  const double scale = static_cast<double>(width) / (t1 - t0);
  auto column = [&](SimTime t) {
    const int c = static_cast<int>((t - t0) * scale);
    return std::clamp(c, 0, width - 1);
  };

  // Collect tracks in first-seen order for stable output.
  std::vector<std::string> tracks;
  auto track_index = [&](const std::string& name) {
    const auto it = std::find(tracks.begin(), tracks.end(), name);
    if (it != tracks.end()) return static_cast<std::size_t>(it - tracks.begin());
    tracks.push_back(name);
    return tracks.size() - 1;
  };
  for (const auto& s : spans_) track_index(s.track);
  for (const auto& i : instants_) track_index(i.track);

  std::vector<std::string> rows(tracks.size(),
                                std::string(static_cast<std::size_t>(width), ' '));
  for (const auto& s : spans_) {
    auto& row = rows[track_index(s.track)];
    const char c = s.category.empty() ? '#' : s.category[0];
    for (int x = column(s.start); x <= column(s.end); ++x)
      row[static_cast<std::size_t>(x)] = c;
  }
  // Instants paint last so transfer marks stay visible over compute spans.
  for (const auto& i : instants_) {
    rows[track_index(i.track)][static_cast<std::size_t>(column(i.time))] = '|';
  }

  std::ostringstream out;
  std::size_t label_width = 0;
  for (const auto& t : tracks) label_width = std::max(label_width, t.size());
  for (std::size_t r = 0; r < tracks.size(); ++r) {
    out << tracks[r] << std::string(label_width - tracks[r].size(), ' ')
        << " [" << rows[r] << "]\n";
  }
  out << std::string(label_width, ' ') << "  t=" << t0 << " .. " << t1
      << " s  ('|' = data transfer)\n";
  return out.str();
}

std::string TraceRecorder::to_chrome_json() const {
  // Tracks in first-seen order, as in render_ascii.
  std::vector<std::string> tracks;
  auto track_tid = [&](const std::string& name) {
    const auto it = std::find(tracks.begin(), tracks.end(), name);
    if (it != tracks.end())
      return static_cast<std::int64_t>(it - tracks.begin());
    tracks.push_back(name);
    return static_cast<std::int64_t>(tracks.size() - 1);
  };
  for (const auto& s : spans_) track_tid(s.track);
  for (const auto& i : instants_) track_tid(i.track);
  for (const auto& l : labeled_spans_) track_tid(l.track);

  const auto micros = [](SimTime t) { return t * 1e6; };
  util::Json events = util::Json::array();
  for (std::size_t tid = 0; tid < tracks.size(); ++tid) {
    util::Json m;
    m["ph"] = "M";
    m["name"] = "thread_name";
    m["pid"] = 0;
    m["tid"] = static_cast<std::int64_t>(tid);
    m["args"]["name"] = tracks[tid];
    events.push_back(std::move(m));
  }
  std::int64_t next_async_id = 1;
  for (const auto& s : spans_) {
    const std::int64_t tid = track_tid(s.track);
    if (!s.async) {
      util::Json e;
      e["ph"] = "X";
      e["name"] = s.category;
      e["cat"] = s.category;
      e["pid"] = 0;
      e["tid"] = tid;
      e["ts"] = micros(s.start);
      e["dur"] = micros(s.end - s.start);
      events.push_back(std::move(e));
      continue;
    }
    // Async overlay: a begin/end pair sharing an id, scoped by category so
    // Perfetto groups fault windows into their own async lanes.
    const std::int64_t id = next_async_id++;
    for (const char* ph : {"b", "e"}) {
      util::Json e;
      e["ph"] = ph;
      e["name"] = s.category;
      e["cat"] = s.track;
      e["id"] = id;
      e["pid"] = 0;
      e["tid"] = tid;
      e["ts"] = micros(ph[0] == 'b' ? s.start : s.end);
      events.push_back(std::move(e));
    }
  }
  for (const auto& i : instants_) {
    util::Json e;
    e["ph"] = "i";
    e["s"] = "t";  // thread-scoped tick mark
    e["name"] = i.category;
    e["cat"] = i.category;
    e["pid"] = 0;
    e["tid"] = track_tid(i.track);
    e["ts"] = micros(i.time);
    e["args"]["bytes"] = static_cast<std::int64_t>(i.bytes);
    events.push_back(std::move(e));
  }

  // Observability annotations (armed runs only; the vectors are empty
  // otherwise). Each labeled span is an "X" slice carrying its labels as
  // args; spans with a flow id also anchor a flow event at the slice start
  // so Perfetto draws an arrow from producer write to consumer read. Flow
  // events pair by (cat, id); "bp":"e" binds the finish to its enclosing
  // slice instead of the next one.
  for (const auto& l : labeled_spans_) {
    const std::int64_t tid = track_tid(l.track);
    util::Json e;
    e["ph"] = "X";
    e["name"] = l.category;
    e["cat"] = "transport";
    e["pid"] = 0;
    e["tid"] = tid;
    e["ts"] = micros(l.start);
    e["dur"] = micros(l.end - l.start);
    e["args"]["span_id"] = static_cast<std::int64_t>(l.span_id);
    for (const auto& lbl : l.labels) e["args"][lbl.key] = lbl.value;
    events.push_back(std::move(e));
    if (l.flow_id == 0) continue;
    util::Json f;
    f["ph"] = l.flow_start ? "s" : "f";
    if (!l.flow_start) f["bp"] = "e";
    f["name"] = "staged";
    f["cat"] = "dataflow";
    f["id"] = static_cast<std::int64_t>(l.flow_id);
    f["pid"] = 0;
    f["tid"] = tid;
    f["ts"] = micros(l.start);
    events.push_back(std::move(f));
  }
  // Scalar-metric samples as counter events. Counters live on pid 0 with no
  // tid; the series' canonical key (name + labels) is the counter name.
  for (const auto& c : counter_samples_) {
    util::Json e;
    e["ph"] = "C";
    e["name"] = c.series;
    e["pid"] = 0;
    e["ts"] = micros(c.time);
    e["args"]["value"] = c.value;
    events.push_back(std::move(e));
  }

  util::Json doc;
  doc["traceEvents"] = std::move(events);
  doc["displayTimeUnit"] = "ms";
  return doc.dump();
}

void TraceRecorder::clear() {
  std::lock_guard<std::mutex> lk(mu_);
  spans_.clear();
  instants_.clear();
  labeled_spans_.clear();
  counter_samples_.clear();
}

}  // namespace simai::sim
