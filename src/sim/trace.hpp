// Execution-timeline recorder (the data behind the paper's Fig. 2).
//
// Components record *spans* (compute iterations, initialization) and
// *instants* (data-transfer marks) against virtual time. The recorder can
// dump a CSV for plotting and render an ASCII timeline directly in the
// terminal — which is how bench_fig2_timeline reproduces the figure.
#pragma once

#include <mutex>
#include <string>
#include <vector>

#include "obs/flight.hpp"
#include "util/types.hpp"

namespace simai::sim {

struct TraceSpan {
  std::string track;     // e.g. "sim", "train"
  std::string category;  // e.g. "iter", "init"
  SimTime start = 0.0;
  SimTime end = 0.0;
  /// Async spans overlay the track (injected fault windows, outstanding
  /// requests) rather than describing its serial occupancy; the Chrome
  /// export renders them as async ("b"/"e") events.
  bool async = false;
};

struct TraceInstant {
  std::string track;
  std::string category;  // e.g. "write", "read"
  SimTime time = 0.0;
  std::uint64_t bytes = 0;
};

/// One key/value annotation on a labeled span (backend, key, bytes, ...).
struct TraceLabel {
  std::string key;
  std::string value;
};

/// Observability annotation: a child span recorded by the transport layer
/// while the simai::obs plane is armed. Labeled spans live *outside* the
/// canonical timeline — to_csv()/to_canonical_csv() ignore them, so run
/// fingerprints are byte-identical whether or not a run was observed.
/// to_chrome_json() renders them as "X" slices carrying their labels as
/// args; a span with a nonzero flow id additionally anchors a Perfetto flow
/// event ("s" when flow_start, else "f") that visually links a producer's
/// stage_write to the consumer's stage_read of the same key.
struct LabeledSpan {
  std::string track;
  std::string category;  // e.g. "stage_write", "stage_read", "stream_step"
  SimTime start = 0.0;
  SimTime end = 0.0;
  std::uint64_t span_id = 0;  // deterministic (obs::next_span_id)
  std::uint64_t flow_id = 0;  // 0 = not part of a flow
  bool flow_start = false;    // producer side ("s") vs consumer side ("f")
  std::vector<TraceLabel> labels;
};

/// A LabeledSpan reshaped for the flight recorder's ring
/// (obs::flight().record(to_flight(span))) — obs sits below sim, so the
/// conversion lives here instead of a FlightRecorder overload.
inline obs::FlightSpan to_flight(const LabeledSpan& span) {
  obs::FlightSpan fs;
  fs.track = span.track;
  fs.category = span.category;
  fs.start = span.start;
  fs.end = span.end;
  fs.span_id = span.span_id;
  fs.flow_id = span.flow_id;
  fs.labels.reserve(span.labels.size());
  for (const TraceLabel& l : span.labels) fs.labels.emplace_back(l.key, l.value);
  return fs;
}

/// One sample of a scalar metric series, taken by the engine's virtual-time
/// sampler while the obs plane is armed. Exported as Chrome counter ("C")
/// events; excluded from the canonical CSVs like LabeledSpan.
struct CounterSample {
  std::string series;  // canonical series key, e.g. kv_ops_total{op="put",...}
  SimTime time = 0.0;
  double value = 0.0;
};

class TraceRecorder {
 public:
  TraceRecorder() = default;
  // Copy/move transfer the recorded data only; the record-side mutex is
  // per-instance state. Neither runs while workers are still recording —
  // results are harvested after the engine drains.
  TraceRecorder(const TraceRecorder& other)
      : spans_(other.spans_), instants_(other.instants_),
        labeled_spans_(other.labeled_spans_),
        counter_samples_(other.counter_samples_) {}
  TraceRecorder(TraceRecorder&& other) noexcept
      : spans_(std::move(other.spans_)), instants_(std::move(other.instants_)),
        labeled_spans_(std::move(other.labeled_spans_)),
        counter_samples_(std::move(other.counter_samples_)) {}
  TraceRecorder& operator=(const TraceRecorder& other) {
    if (this != &other) {
      spans_ = other.spans_;
      instants_ = other.instants_;
      labeled_spans_ = other.labeled_spans_;
      counter_samples_ = other.counter_samples_;
    }
    return *this;
  }
  TraceRecorder& operator=(TraceRecorder&& other) noexcept {
    if (this != &other) {
      spans_ = std::move(other.spans_);
      instants_ = std::move(other.instants_);
      labeled_spans_ = std::move(other.labeled_spans_);
      counter_samples_ = std::move(other.counter_samples_);
    }
    return *this;
  }

  // The record_* methods are thread-safe (one short lock per record):
  // under parallel DES dispatch several worker threads append to the same
  // recorder. Recording order across workers is wall-dependent, which is
  // exactly why spawn-order-invariant comparisons use to_canonical_csv()
  // (fully sorted) rather than to_csv(). The read-side accessors are
  // unsynchronized — harvest after run() returns.
  void record_span(std::string track, std::string category, SimTime start,
                   SimTime end);
  /// Record an overlay span (see TraceSpan::async) — e.g. a fault window.
  void record_async_span(std::string track, std::string category,
                         SimTime start, SimTime end);
  void record_instant(std::string track, std::string category, SimTime time,
                      std::uint64_t bytes = 0);
  /// Record an observability annotation (see LabeledSpan). Never affects
  /// the canonical CSV outputs.
  void record_labeled_span(LabeledSpan span);
  /// Record one scalar-metric sample (see CounterSample).
  void record_counter_sample(std::string series, SimTime time, double value);

  const std::vector<TraceSpan>& spans() const { return spans_; }
  const std::vector<TraceInstant>& instants() const { return instants_; }
  const std::vector<LabeledSpan>& labeled_spans() const {
    return labeled_spans_;
  }
  const std::vector<CounterSample>& counter_samples() const {
    return counter_samples_;
  }

  /// Earliest/latest time across all records (0 if empty).
  SimTime begin_time() const;
  SimTime end_time() const;

  /// "track,category,start,end,bytes" rows; instants have start==end.
  std::string to_csv() const;

  /// to_csv() with rows sorted (spans then instants, each lexicographically
  /// by track, category, time). Recording order reflects the engine's
  /// dispatch schedule, which legally varies with process-spawn order; the
  /// canonical form is what spawn-order-invariant comparisons (the N-way
  /// determinism test) must use.
  std::string to_canonical_csv() const;

  /// Chrome trace_event JSON ("JSON Object Format"): loadable in
  /// chrome://tracing and Perfetto. Tracks map to thread lanes (named via
  /// thread_name metadata), spans to complete ("X") events, instants to
  /// "i" events carrying byte counts, and async spans — injected fault
  /// windows — to async "b"/"e" pairs so they overlay the timeline.
  /// Timestamps are virtual seconds scaled to microseconds.
  std::string to_chrome_json() const;

  /// Render an ASCII timeline: one row per track, `width` columns between
  /// t0 and t1 (defaults: full range). Span categories paint with their
  /// first letter ('i' for iter...), instants with '|'.
  std::string render_ascii(int width = 100, SimTime t0 = -1.0,
                           SimTime t1 = -1.0) const;

  void clear();

 private:
  mutable std::mutex mu_;  // guards the vectors on the record_* paths only
  std::vector<TraceSpan> spans_;
  std::vector<TraceInstant> instants_;
  std::vector<LabeledSpan> labeled_spans_;
  std::vector<CounterSample> counter_samples_;
};

/// RAII helper: records a span from construction to destruction using the
/// provided clock getter (`clock(arg)` reads the current virtual time — a
/// plain function pointer so the header stays free of sim::Context). An
/// explicit finish(end) first wins; the destructor then records nothing.
class ScopedSpan {
 public:
  using Clock = SimTime (*)(const void*);
  ScopedSpan(TraceRecorder& rec, std::string track, std::string category,
             SimTime start, Clock clock = nullptr, const void* clock_arg = nullptr)
      : rec_(rec), track_(std::move(track)), category_(std::move(category)),
        start_(start), clock_(clock), clock_arg_(clock_arg) {}
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;
  ~ScopedSpan() {
    if (!done_ && clock_ != nullptr) finish(clock_(clock_arg_));
  }
  void finish(SimTime end) {
    if (!done_) {
      rec_.record_span(track_, category_, start_, end);
      done_ = true;
    }
  }

 private:
  TraceRecorder& rec_;
  std::string track_;
  std::string category_;
  SimTime start_;
  Clock clock_ = nullptr;
  const void* clock_arg_ = nullptr;
  bool done_ = false;
};

}  // namespace simai::sim
