// Slab arena with generation-checked handles: backing store for the
// engine's Process records.
//
// The engine used to keep every process in a
// std::vector<std::unique_ptr<Process>> for its whole life — one heap
// allocation per spawn and memory that grows monotonically with TOTAL
// spawns, not live processes. At the million-process scale the engine now
// targets (and for serving-style workloads that churn short-lived
// processes forever) both costs matter.
//
// The arena instead carves objects out of fixed-size chunks (1024 slots
// each, never freed or moved until arena destruction, so T* stays stable
// for an object's lifetime) and recycles destroyed slots through a free
// list — memory is bounded by PEAK live objects. Each slot carries a
// generation counter bumped on destroy; a Handle{slot, gen} therefore
// detects use-after-reclaim in O(1) instead of silently aliasing the
// slot's next tenant.
//
// Not thread-safe; the DES engine mutates it from the scheduler only.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <utility>
#include <vector>

namespace simai::sim {

template <class T>
class SlabArena {
 public:
  static constexpr std::size_t kChunkSlots = 1024;

  struct Handle {
    std::uint32_t slot = 0;
    std::uint32_t gen = 0;  // 0 = null handle (generations start at 1)
  };

  SlabArena() = default;
  SlabArena(const SlabArena&) = delete;
  SlabArena& operator=(const SlabArena&) = delete;

  ~SlabArena() {
    for_each_live([](T& obj) { obj.~T(); });
  }

  /// Construct an object in a fresh-or-recycled slot. `make` receives the
  /// slot's raw storage and must placement-new a T there (this indirection
  /// lets callers invoke private constructors the arena cannot).
  template <class MakeFn>
  std::pair<T*, Handle> create(MakeFn&& make) {
    std::uint32_t slot;
    if (!free_.empty()) {
      slot = free_.back();
      free_.pop_back();
    } else {
      if (slots_used_ == chunks_.size() * kChunkSlots)
        chunks_.push_back(std::make_unique<Slot[]>(kChunkSlots));
      slot = static_cast<std::uint32_t>(slots_used_++);
    }
    Slot& s = slot_at(slot);
    T* obj = make(static_cast<void*>(s.storage));
    s.live = true;
    ++live_;
    return {obj, Handle{slot, s.gen}};
  }

  /// Destroy the object behind `h` and recycle its slot. No-op when the
  /// handle is stale (slot already reclaimed, generation mismatch).
  void destroy(Handle h) {
    Slot* s = resolve(h);
    if (!s) return;
    reinterpret_cast<T*>(s->storage)->~T();
    s->live = false;
    ++s->gen;
    --live_;
    free_.push_back(h.slot);
  }

  /// The object behind `h`, or nullptr if it has been reclaimed.
  T* get(Handle h) {
    Slot* s = resolve(h);
    return s ? reinterpret_cast<T*>(s->storage) : nullptr;
  }

  bool is_live(Handle h) const {
    return const_cast<SlabArena*>(this)->resolve(h) != nullptr;
  }

  /// Live objects right now — maintained counter, O(1).
  std::size_t live() const { return live_; }

  /// Slots ever allocated (peak-live high-water mark; bounds memory).
  std::size_t capacity() const { return slots_used_; }

  /// Visit every live object. Destroying the VISITED object from `fn` is
  /// allowed (liveness is re-checked per slot); creating objects is not.
  template <class Fn>
  void for_each_live(Fn&& fn) {
    for (std::size_t i = 0; i < slots_used_; ++i) {
      Slot& s = slot_at(static_cast<std::uint32_t>(i));
      if (s.live) fn(*reinterpret_cast<T*>(s.storage));
    }
  }

 private:
  struct Slot {
    alignas(T) unsigned char storage[sizeof(T)];
    std::uint32_t gen = 1;
    bool live = false;
  };

  Slot& slot_at(std::uint32_t slot) {
    return chunks_[slot / kChunkSlots][slot % kChunkSlots];
  }

  Slot* resolve(Handle h) {
    if (h.gen == 0 || h.slot >= slots_used_) return nullptr;
    Slot& s = slot_at(h.slot);
    return (s.live && s.gen == h.gen) ? &s : nullptr;
  }

  std::vector<std::unique_ptr<Slot[]>> chunks_;
  std::vector<std::uint32_t> free_;
  std::size_t slots_used_ = 0;  // slots handed out at least once
  std::size_t live_ = 0;
};

}  // namespace simai::sim
