// User-level stackful coroutines (fibers) — the fast execution substrate
// for the DES engine.
//
// A Fiber owns a private mmap'd stack (with a PROT_NONE guard page below
// it) and a ucontext pair: `resume()` switches from the caller's stack onto
// the fiber's, `suspend()` switches back to whoever resumed it. Both are
// plain user-space register swaps — no kernel involvement — which is what
// makes event dispatch ~10-100x cheaper than the semaphore-baton thread
// substrate it replaces (see bench/bench_engine.cpp).
//
// Sanitizer interop: AddressSanitizer tracks shadow memory per stack, so
// every switch is bracketed with __sanitizer_start_switch_fiber /
// __sanitizer_finish_switch_fiber under the asan-ubsan preset. Without
// them ASan would attribute fiber frames to the scheduler's stack and
// report false stack-buffer-overflow / use-after-return errors.
//
// Invariants (enforced by the Engine, asserted here):
//  * resume() is only called off-fiber (from the scheduler), suspend()
//    only on-fiber, strictly alternating.
//  * A finished fiber (entry returned) is never resumed again.
//  * The fiber unwinds (entry returns or throws through a catch in the
//    entry wrapper) before the Fiber is destroyed; destroying a suspended
//    fiber frees the stack without running destructors of objects on it.
#pragma once

#include <cstddef>
#include <functional>
#include <ucontext.h>

namespace simai::sim {

class Fiber {
 public:
  /// `entry` runs on the fiber's own stack at the first resume(). It must
  /// not let exceptions escape (the engine's trampoline catches them);
  /// anything that does terminates the program.
  /// `stack_bytes` == 0 picks default_stack_bytes().
  explicit Fiber(std::function<void()> entry, std::size_t stack_bytes = 0);
  ~Fiber();
  Fiber(const Fiber&) = delete;
  Fiber& operator=(const Fiber&) = delete;

  /// Switch from the caller's context into the fiber. Returns when the
  /// fiber suspends or its entry returns. Must not be called on-fiber or
  /// after finished().
  void resume();

  /// Switch from the fiber back to its resumer. Returns when resumed
  /// again. Must be called on-fiber.
  void suspend();

  bool started() const { return started_; }
  /// True once `entry` has returned; the fiber may not be resumed again.
  bool finished() const { return finished_; }

  /// Default stack size: SIMAI_SIM_STACK_KB env override, else 256 KiB
  /// (1 MiB under ASan — redzones inflate every frame).
  static std::size_t default_stack_bytes();

 private:
  static void trampoline(unsigned int hi, unsigned int lo);
  [[noreturn]] void run();

  std::function<void()> entry_;
  ucontext_t ctx_{};   // the fiber's saved context
  ucontext_t link_{};  // the resumer's saved context
  std::byte* mapping_ = nullptr;  // mmap base: [guard page][stack]
  std::size_t mapping_bytes_ = 0;
  std::byte* stack_bottom_ = nullptr;  // usable low address (above guard)
  std::size_t stack_bytes_ = 0;
  bool started_ = false;
  bool running_ = false;  // control currently on the fiber's stack
  bool finished_ = false;

  // Sanitizer bookkeeping (unused members in non-ASan builds are cheap).
  void* resume_fake_stack_ = nullptr;  // resumer-side fake stack save
  void* fiber_fake_stack_ = nullptr;   // fiber-side fake stack save
  const void* peer_stack_bottom_ = nullptr;  // resumer's stack, for the
  std::size_t peer_stack_size_ = 0;          // switch back
};

}  // namespace simai::sim
