// User-level stackful coroutines (fibers) — the fast execution substrate
// for the DES engine — plus the pooled stack allocator that lets them
// scale to a million live processes.
//
// A Fiber runs on a stack borrowed from a StackPool and a ucontext pair:
// `resume()` switches from the caller's stack onto the fiber's, `suspend()`
// switches back to whoever resumed it. Both are plain user-space register
// swaps — no kernel involvement — which is what makes event dispatch
// ~10-100x cheaper than the semaphore-baton thread substrate it replaces
// (see bench/bench_engine.cpp). The engine runs strictly one fiber at a
// time, so all fibers of an engine share ONE resumer-side ucontext (the
// FiberRuntime's scheduler link) instead of carrying a ~1 KiB link context
// each.
//
// StackPool: one mmap per FIBER does not survive a million processes —
// each mapping (plus its mprotect'd guard page) consumes kernel VMA slots
// against vm.max_map_count (~65k by default), and munmap on every process
// exit throws the faulted-in pages away. The pool instead carves stacks
// out of large MAP_NORESERVE slabs (one VMA each) and keeps released
// stacks in per-size free lists, so a finished process's stack — pages
// already faulted in — is handed whole to the next fiber of that size.
// Pages are first-touch lazy: a slab of 4096 stacks costs address space
// only; RSS grows with pages actually written, one or two per shallow
// process. The first `guard_budget` stacks get a PROT_NONE guard page
// below them (each costs VMA slots, hence the budget — default 8192,
// override with SIMAI_SIM_STACK_GUARDS=<count>); beyond the budget stacks
// are packed guardless, the price of scale.
//
// Sanitizer interop: AddressSanitizer tracks shadow memory per stack, so
// every switch is bracketed with __sanitizer_start_switch_fiber /
// __sanitizer_finish_switch_fiber under the asan-ubsan preset. Without
// them ASan would attribute fiber frames to the scheduler's stack and
// report false stack-buffer-overflow / use-after-return errors.
//
// Invariants (enforced by the Engine, asserted here):
//  * resume() is only called off-fiber (from the scheduler), suspend()
//    only on-fiber, strictly alternating; at most one fiber of a runtime
//    is between resume() and suspend() at any moment (which is what makes
//    the shared scheduler link sound).
//  * A finished fiber (entry returned) is never resumed again.
//  * The fiber unwinds (entry returns or throws through a catch in the
//    entry wrapper) before the Fiber is destroyed; destroying a suspended
//    fiber recycles the stack without running destructors of objects on it.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <ucontext.h>
#include <unordered_map>
#include <vector>

namespace simai::sim {

namespace detail {
/// Strict decimal parse for sim env knobs: the whole string must be pure
/// digits in [lo, hi]. Anything else — empty, whitespace, sign, trailing
/// junk, overflow — throws `Error("<prefix>: invalid <name>='<value>' ...")`
/// naming the variable and offending value. Shared by SIMAI_SIM_STACK_KB /
/// SIMAI_SIM_STACK_GUARDS (prefix "fiber") and SIMAI_SIM_WORKERS
/// (prefix "sim").
std::uint64_t parse_env_u64(const char* name, const char* value,
                            std::uint64_t lo, std::uint64_t hi,
                            const char* prefix = "fiber");
}  // namespace detail

/// Slab allocator for fiber stacks: free lists keyed by stack size over
/// large lazily-faulted mappings. Stacks are recycled, never munmapped,
/// until the pool itself dies (engine teardown).
class StackPool {
 public:
  struct Stack {
    std::byte* base = nullptr;   // usable low address (above any guard)
    std::size_t bytes = 0;       // usable size (page multiple)
  };

  struct Stats {
    std::uint64_t acquires = 0;      // total stack requests
    std::uint64_t pool_hits = 0;     // served from a free list
    std::uint64_t slabs = 0;         // mmap'd slabs
    std::uint64_t mapped_bytes = 0;  // address space reserved (not RSS)
    std::uint64_t guarded = 0;       // stacks with a PROT_NONE guard page
    std::uint64_t pooled = 0;        // stacks currently in free lists
  };

  StackPool();
  ~StackPool();
  StackPool(const StackPool&) = delete;
  StackPool& operator=(const StackPool&) = delete;

  /// A stack of at least `bytes` usable bytes (rounded up to page size):
  /// recycled from the matching free list when possible, else carved from
  /// a slab (mmap'ing a new slab when the current one is full).
  Stack acquire(std::size_t bytes);

  /// Return a stack for reuse. Must have come from this pool's acquire().
  void release(Stack s);

  const Stats& stats() const { return stats_; }

 private:
  struct SizeClass {
    std::vector<std::byte*> free;   // released stack bases, LIFO
    std::byte* bump = nullptr;      // next carve position in current slab
    std::byte* bump_end = nullptr;
    std::size_t slab_slots = 16;    // next slab size, doubles to kMaxSlabSlots
  };

  static constexpr std::size_t kMaxSlabSlots = 4096;

  std::unordered_map<std::size_t, SizeClass> classes_;  // keyed by stack size
  std::vector<std::pair<std::byte*, std::size_t>> slabs_;
  std::size_t guard_budget_ = 0;
  Stats stats_;
};

/// Per-engine fiber machinery: the stack pool plus the single shared
/// scheduler-side ucontext every fiber of the engine swaps against. Owned
/// by the Engine (lazily, first fiber dispatch) behind a unique_ptr so
/// <ucontext.h> stays out of the public engine header.
struct FiberRuntime {
  StackPool pool;
  ucontext_t sched_link{};  // saved scheduler context during a dispatch
};

class Fiber {
 public:
  /// `entry` runs on a pool-acquired stack at the first resume(). It must
  /// not let exceptions escape (the engine's trampoline catches them);
  /// anything that does terminates the program.
  /// `stack_bytes` == 0 picks default_stack_bytes().
  Fiber(std::function<void()> entry, FiberRuntime& runtime,
        std::size_t stack_bytes = 0);
  ~Fiber();  // returns the stack to the pool (the pool owns the mapping)
  Fiber(const Fiber&) = delete;
  Fiber& operator=(const Fiber&) = delete;

  /// Switch from the caller's context into the fiber. Returns when the
  /// fiber suspends or its entry returns. Must not be called on-fiber or
  /// after finished().
  void resume();

  /// Switch from the fiber back to its resumer. Returns when resumed
  /// again. Must be called on-fiber.
  void suspend();

  bool started() const { return started_; }
  /// True once `entry` has returned; the fiber may not be resumed again.
  bool finished() const { return finished_; }

  /// Default stack size: SIMAI_SIM_STACK_KB env override, else 256 KiB
  /// (1 MiB under ASan — redzones inflate every frame). A set-but-invalid
  /// override (non-numeric, zero, below 16 KiB, above 4 GiB, overflow)
  /// throws Error instead of silently misconfiguring every stack.
  static std::size_t default_stack_bytes();

 private:
  static void trampoline(unsigned int hi, unsigned int lo);
  [[noreturn]] void run();

  std::function<void()> entry_;
  FiberRuntime& runtime_;
  ucontext_t ctx_{};              // the fiber's saved context
  StackPool::Stack stack_;        // borrowed from runtime_.pool
  bool started_ = false;
  bool running_ = false;  // control currently on the fiber's stack
  bool finished_ = false;

  // Sanitizer bookkeeping (unused members in non-ASan builds are cheap).
  void* resume_fake_stack_ = nullptr;  // resumer-side fake stack save
  void* fiber_fake_stack_ = nullptr;   // fiber-side fake stack save
  const void* peer_stack_bottom_ = nullptr;  // resumer's stack, for the
  std::size_t peer_stack_size_ = 0;          // switch back
};

}  // namespace simai::sim
