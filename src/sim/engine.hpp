// Deterministic discrete-event simulation (DES) engine.
//
// This is the substrate that stands in for a multi-node HPC machine: every
// workflow component rank (simulation, AI trainer, server poller) is a
// *logical process* with a private virtual clock. The engine runs EXACTLY
// ONE process at a time — the one whose next wake-up has the smallest
// virtual time. Two execution substrates implement that hand-off:
//
//  * Substrate::Fiber (default): each process is a user-level stackful
//    coroutine (sim/fiber.hpp); dispatch is a pair of in-process context
//    swaps, so millions of events/sec cost no kernel transitions. See
//    bench/bench_engine.cpp for the measured gap.
//  * Substrate::Thread: each process is a real OS thread and the engine
//    hands the baton over binary semaphores — the original substrate, kept
//    selectable for debugging (gdb shows one thread per process) via
//    Engine(Substrate::Thread), SIMAI_SIM_THREADS=1, or the `fibers-off`
//    CMake preset.
//
// Both substrates share the scheduler, so programs behave identically:
//
//  * Determinism. Ties are broken by spawn/schedule sequence numbers, so a
//    given program produces the identical event order on every run AND on
//    either substrate (verified by tests/sim_engine_test.cpp, which runs
//    the whole suite under both, and tests/sim_parity_test.cpp).
//  * Real side effects are safe. A process may freely touch shared stores,
//    files, and sockets mid-step; no other process runs concurrently.
//  * Virtual time is decoupled from wall time: a 512-node, 2500-iteration
//    workflow finishes in seconds of wall clock.
//
// Scale (DESIGN.md §4.10): the engine is built to hold ~1M live logical
// processes. The ready structure is an intrusive calendar queue
// (sim/calendar_queue.hpp — O(1) amortized schedule/dispatch, in-place
// reschedule, no stale entries), Process records live in a slab arena
// (sim/process_arena.hpp) whose slots are RECLAIMED the moment a process
// finishes (memory tracks peak-live, not total spawns; generation-checked
// ProcessHandles detect stale references), and fiber stacks come from a
// per-engine pool of lazily-faulted slabs that recycles a finished
// process's stack to the next spawn. bench/bench_scale.cpp measures the
// events/sec-vs-process-count curve this buys.
//
// The design follows the classic "process-interaction" simulation worldview
// (SimPy-style), which is what a workflow mini-app maps onto naturally:
// `delay()` models compute occupancy, `Event`/`Channel` model coordination,
// and polling loops model the paper's asynchronous staging consumers.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <semaphore>
#include <string>
#include <thread>

#include "sim/calendar_queue.hpp"
#include "sim/process_arena.hpp"
#include "util/error.hpp"
#include "util/types.hpp"

namespace simai::sim {

class Engine;
class Context;
class Event;
class Fiber;
struct FiberRuntime;

/// Which execution mechanism backs logical processes (see file comment).
enum class Substrate { Fiber, Thread };

/// Thrown inside a logical process when the engine tears it down early
/// (engine destruction, error in another process). The process trampoline
/// catches it; user code should not.
struct ProcessKilled {};

/// Thrown by Engine::run when no process can make progress but some are
/// still blocked on events — a coordination bug in the workflow.
class DeadlockError : public Error {
 public:
  using Error::Error;
};

/// Generation-checked reference to a logical process. A Process& returned
/// by Engine::spawn is only valid until that process finishes (its arena
/// slot is then reclaimed for future spawns); a handle stays safe forever —
/// Engine::find returns nullptr once the process is gone, even if the slot
/// has a new tenant.
struct ProcessHandle {
  std::uint32_t slot = 0;
  std::uint32_t gen = 0;  // 0 = null handle
  bool null() const { return gen == 0; }
};

/// Internal per-process record. Users interact through Context.
class Process {
 public:
  ~Process();
  const std::string& name() const { return name_; }
  std::uint64_t id() const { return id_; }
  bool finished() const { return state_ == State::Finished; }
  /// Generation-checked handle; outlives the Process safely.
  ProcessHandle handle() const { return self_; }

 private:
  friend class Engine;
  friend class Context;
  friend class Event;
  friend class SlabArena<Process>;

  enum class State { Created, Ready, Running, Blocked, Finished };

  Process(Engine& engine, std::uint64_t id, std::string name,
          std::function<void(Context&)> body);

  Engine& engine_;
  std::uint64_t id_;
  std::string name_;
  std::function<void(Context&)> body_;
  std::unique_ptr<Fiber> fiber_;     // fiber substrate (lazy, first dispatch)
  std::thread thread_;               // thread substrate (lazy, first dispatch)
  std::binary_semaphore resume_{0};  // thread substrate: engine -> process
  CalendarHook<Process> cal_;        // ready-queue linkage (time under cal_.time)
  ProcessHandle self_;               // this process's arena slot + generation
  State state_ = State::Created;
  bool kill_requested_ = false;
  std::uint32_t check_id_ = 0;  // race-detector id (simai::check); 0 = off
  std::uint32_t obs_id_ = 0;    // trace-context id (simai::obs); 0 = off
};

/// Handle passed to a process body; all blocking operations live here.
class Context {
 public:
  /// Current virtual time (same value for every process while it runs).
  SimTime now() const;
  const std::string& name() const { return process_.name(); }
  std::uint64_t pid() const { return process_.id(); }
  Engine& engine() const { return engine_; }

  /// simai::obs trace-context id for this process (0 while the obs plane is
  /// disarmed). The data plane resolves it via obs::context() to derive
  /// deterministic span/flow ids; see obs/obs.hpp.
  std::uint32_t obs_id() const { return process_.obs_id_; }

  /// Advance virtual time by dt (>= 0): models compute/transfer occupancy.
  void delay(SimTime dt);

  /// Reschedule at the current time, after other processes due now.
  void yield() { delay(0.0); }

  /// Block until the event is notified. Returns the notification "token"
  /// count observed (always >= 1).
  void wait(Event& event);

  /// Block until notified or until `timeout` elapses. True if notified.
  bool wait_for(Event& event, SimTime timeout);

  /// Poll `pred` every `poll_interval` of virtual time until it holds.
  /// This is exactly how the paper's consumers poll for staged data.
  void wait_until(const std::function<bool()>& pred, SimTime poll_interval);

 private:
  friend class Engine;
  friend class Event;
  Context(Engine& engine, Process& process)
      : engine_(engine), process_(process) {}

  /// Hand control back to the scheduler; returns when rescheduled.
  void suspend();

  Engine& engine_;
  Process& process_;
};

/// Condition-variable analog in virtual time. notify_all wakes every waiter
/// at the current virtual time (in deterministic FIFO order). Waiters live
/// in a deque so notify_one pops the front in O(1); the (rare) middle
/// erase only happens when a wait_for timeout deregisters.
class Event {
 public:
  explicit Event(Engine& engine) : engine_(engine) {}
  Event(const Event&) = delete;
  Event& operator=(const Event&) = delete;

  void notify_all();
  void notify_one();
  std::size_t waiter_count() const { return waiters_.size(); }

 private:
  friend class Context;
  friend class Engine;
  Engine& engine_;
  std::deque<Process*> waiters_;
};

/// The scheduler. Typical usage:
///
///   sim::Engine engine;
///   engine.spawn("producer", [&](sim::Context& ctx) { ... ctx.delay(0.1); });
///   engine.spawn("consumer", [&](sim::Context& ctx) { ... });
///   engine.run();
class Engine {
 public:
  /// Uses default_substrate().
  Engine();
  /// Pins the execution substrate for this engine instance.
  explicit Engine(Substrate substrate);
  ~Engine();
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Substrate for default-constructed engines: SIMAI_SIM_THREADS=1 forces
  /// Thread, SIMAI_SIM_THREADS=0 forces Fiber; unset falls back to the
  /// compile-time default (Fiber unless built with SIMAI_FIBERS=OFF).
  /// Under the `tsan` preset every engine is coerced onto the Thread
  /// substrate: the fiber context switches are invisible to
  /// ThreadSanitizer, and the whole point of that build is watching real
  /// threads.
  static Substrate default_substrate();
  Substrate substrate() const { return substrate_; }

  /// Turn on simai::check virtual-time race detection (see check/check.hpp)
  /// for this engine's processes: already-spawned and future processes are
  /// registered with the detector and carry vector clocks across spawn,
  /// Event, and Channel edges. The switch is process-wide (it also flips
  /// check::set_enabled), equivalent to running with SIMAI_CHECK=1. Call
  /// before run(). Zero cost for engines that never enable it.
  void enable_race_detection();

  /// Arm the simai::obs observability plane for this engine's processes:
  /// already-spawned and future processes get trace contexts (reachable via
  /// Context::obs_id()), so the data plane records labeled spans, flow
  /// events, and registry metrics. Process-wide (flips obs::set_enabled),
  /// equivalent to running with SIMAI_OBS=1. Call before run(). Zero cost
  /// for engines that never enable it; never perturbs virtual time.
  void enable_observability();

  /// Install a virtual-time metric sampler: `fn(t)` runs from the scheduler
  /// loop (never inside a process) each time the clock reaches a multiple
  /// of `interval`, plus once more when the run drains, with `t` the sample
  /// boundary. One sampler per engine; an interval <= 0 removes it. The
  /// workflow layer uses this to snapshot obs::Registry counters into the
  /// run's TraceRecorder.
  void set_metric_sampler(SimTime interval, std::function<void(SimTime)> fn);

  /// Create a logical process scheduled to start at the current time.
  /// Safe to call both before run() and from inside a running process.
  /// The reference is valid until the process FINISHES — its record is
  /// then reclaimed; keep Process::handle() for anything longer-lived.
  Process& spawn(std::string name, std::function<void(Context&)> body);

  /// The process behind `h`, or nullptr once it has finished and been
  /// reclaimed (generation-checked: a recycled slot does not alias).
  Process* find(ProcessHandle h) { return arena_.get({h.slot, h.gen}); }
  bool is_live(ProcessHandle h) const {
    return arena_.is_live({h.slot, h.gen});
  }

  /// Run until no process is runnable. Throws DeadlockError if processes
  /// remain blocked on events, and rethrows the first exception that
  /// escaped a process body (after which the engine and any Events still
  /// holding its waiters must be discarded).
  void run();

  /// Run until virtual time would exceed `t_end`; blocked/later processes
  /// are left intact and run() may be called again.
  void run_until(SimTime t_end);

  SimTime now() const { return now_; }

  /// Number of processes that have not finished. O(1) — a maintained
  /// counter, not a scan.
  std::size_t live_process_count() const { return arena_.live(); }

  /// Arena slots ever allocated: the peak-live high-water mark. Bounded by
  /// peak concurrency, NOT total spawns — finished processes are recycled.
  std::size_t process_slots() const { return arena_.capacity(); }

  /// Fiber-substrate allocator counters (all zero before the first fiber
  /// dispatch, and forever on the thread substrate). `stack_pool_hits` over
  /// `stacks_acquired` is the recycle rate; `stack_bytes_mapped` is address
  /// space, not RSS (stacks fault in lazily, page by page).
  struct FiberStats {
    std::uint64_t stacks_acquired = 0;
    std::uint64_t stack_pool_hits = 0;
    std::uint64_t stack_slabs = 0;
    std::uint64_t stack_bytes_mapped = 0;
    std::uint64_t stacks_pooled = 0;
    std::uint64_t stacks_guarded = 0;
  };
  FiberStats fiber_stats() const;

 private:
  friend class Context;
  friend class Event;

  void schedule(Process& p, SimTime when);
  void dispatch(Process& p);
  void process_body(Process& p);      // shared trampoline core
  void thread_trampoline(Process& p);
  void reclaim(Process& p);           // finished -> slot back to the arena
  void drain(SimTime t_end);
  void kill_all();

  const Substrate substrate_;
  // Pool before arena: processes (arena) borrow stacks from the pool, so
  // the pool must be destroyed after them.
  std::unique_ptr<FiberRuntime> fiber_rt_;  // lazy, first fiber dispatch
  SlabArena<Process> arena_;
  CalendarQueue<Process, &Process::cal_> ready_;
  SimTime now_ = 0.0;
  std::uint64_t next_pid_ = 0;
  std::uint64_t next_seq_ = 0;
  std::function<void(SimTime)> sampler_;
  SimTime sampler_interval_ = 0.0;
  SimTime sampler_next_ = 0.0;
  std::binary_semaphore engine_turn_{0};  // thread substrate: process -> engine
  std::exception_ptr pending_error_;
  bool running_ = false;
};

}  // namespace simai::sim
