// Deterministic discrete-event simulation (DES) engine.
//
// This is the substrate that stands in for a multi-node HPC machine: every
// workflow component rank (simulation, AI trainer, server poller) is a
// *process* with a private virtual clock. Processes are partitioned into
// LOGICAL PROCESSES (LPs) — one per simulated node, each with its own
// calendar queue, fiber scheduler, and arena shard — and the engine runs
// them either sequentially (the default: exactly one process at a time,
// smallest virtual time first) or, with Engine(Parallel{N}), on a pool of
// N worker threads under conservative lookahead-window synchronization
// (see "Parallel dispatch" below and DESIGN.md §4.12).
//
// Two execution substrates implement the process hand-off:
//
//  * Substrate::Fiber (default): each process is a user-level stackful
//    coroutine (sim/fiber.hpp); dispatch is a pair of in-process context
//    swaps, so millions of events/sec cost no kernel transitions. See
//    bench/bench_engine.cpp for the measured gap.
//  * Substrate::Thread: each process is a real OS thread and the engine
//    hands the baton over binary semaphores — the original substrate, kept
//    selectable for debugging (gdb shows one thread per process) via
//    Engine(Substrate::Thread), SIMAI_SIM_THREADS=1, or the `fibers-off`
//    CMake preset.
//
// Both substrates share the scheduler, so programs behave identically:
//
//  * Determinism. Ties are broken by spawn/schedule sequence numbers, so a
//    given program produces the identical event order on every run AND on
//    either substrate (verified by tests/sim_engine_test.cpp, which runs
//    the whole suite under both, and tests/sim_parity_test.cpp).
//  * Real side effects are safe. Within one LP a process may freely touch
//    that LP's state mid-step; no other process OF THE SAME LP ever runs
//    concurrently. State shared ACROSS LPs must be synchronized (mailboxes,
//    check::SharedCell-wrapped stores with real locks) — the
//    cross-lp-shared-state rule in tools/simai_analyze flags violations.
//  * Virtual time is decoupled from wall time: a 512-node, 2500-iteration
//    workflow finishes in seconds of wall clock.
//
// Parallel dispatch (DESIGN.md §4.12): Engine(Parallel{N}) runs LPs on N
// worker threads in barrier-synchronized rounds. Each round the coordinator
// computes every LP's next-event time n_i, then grants LP i a dispatch
// window ending at min over declared in-edges (j -> i, lookahead L_ji) of
// n_j + L_ji — the conservative (null-message/window) bound: no event that
// neighbor j can still emit lands before it. Cross-LP event sends are
// routed through bounded per-edge mailboxes and applied at the receiver in
// deterministic (timestamp, source LP, emission seq) order. Same-timestamp
// events within an LP keep the sequential seq tie-break; across LPs they
// dispatch in (LP id, per-LP seq) order regardless of worker count, so any
// workload whose cross-LP interaction flows through mailboxes/events yields
// byte-identical canonical fingerprints at every worker count — the parity
// suite holds this for fig2/fig3/fig6 on both substrates. Parallel{1}
// degrades exactly to the sequential code path (all spawns collapse onto
// LP 0).
//
// Scale (DESIGN.md §4.10): the engine is built to hold ~1M live logical
// processes. The ready structure is an intrusive calendar queue
// (sim/calendar_queue.hpp — O(1) amortized schedule/dispatch, in-place
// reschedule, no stale entries), Process records live in a slab arena
// (sim/process_arena.hpp) whose slots are RECLAIMED the moment a process
// finishes (memory tracks peak-live, not total spawns; generation-checked
// ProcessHandles detect stale references), and fiber stacks come from a
// per-LP pool of lazily-faulted slabs that recycles a finished process's
// stack to the next spawn. bench/bench_scale.cpp measures the
// events/sec-vs-process-count curve this buys; bench/bench_parallel.cpp
// the events/sec-vs-worker-count multiplier on top.
//
// The design follows the classic "process-interaction" simulation worldview
// (SimPy-style), which is what a workflow mini-app maps onto naturally:
// `delay()` models compute occupancy, `Event`/`Channel` model coordination,
// and polling loops model the paper's asynchronous staging consumers.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <semaphore>
#include <string>
#include <thread>
#include <vector>

#include "sim/calendar_queue.hpp"
#include "sim/process_arena.hpp"
#include "util/error.hpp"
#include "util/types.hpp"

namespace simai::sim {

class Engine;
class Context;
class Event;
class Fiber;
class TraceRecorder;
struct FiberRuntime;
struct Lp;  // per-LP scheduler shard; definition private to engine.cpp

/// Which execution mechanism backs logical processes (see file comment).
enum class Substrate { Fiber, Thread };

/// Parallel-dispatch configuration for Engine(Parallel{...}).
struct Parallel {
  /// Worker threads. 0 = take SIMAI_SIM_WORKERS (default 1); 1 = the
  /// sequential code path (spawn_on collapses every LP onto LP 0).
  unsigned workers = 0;
  /// Round time-quantum: each round's windows additionally end at
  /// t_min + window, which bounds how far LPs with no (or slack) in-edges
  /// run ahead between barriers. <= 0 = unbounded (windows end only at
  /// lookahead bounds). Purely a wall-clock pacing knob — it never changes
  /// virtual-time results, only how much work each barrier batches.
  SimTime window = 0.0;
  /// Soft bound on per-edge mailbox occupancy: once an LP has queued this
  /// many undelivered cross-LP sends on one edge, its window ends at the
  /// next dispatch boundary (backpressure; nothing is ever dropped).
  std::size_t mailbox_capacity = 65536;
};

/// Thrown inside a logical process when the engine tears it down early
/// (engine destruction, error in another process). The process trampoline
/// catches it; user code should not.
struct ProcessKilled {};

/// Thrown by Engine::run when no process can make progress but some are
/// still blocked on events — a coordination bug in the workflow.
class DeadlockError : public Error {
 public:
  using Error::Error;
};

/// Generation-checked reference to a logical process. A Process& returned
/// by Engine::spawn is only valid until that process finishes (its arena
/// slot is then reclaimed for future spawns); a handle stays safe forever —
/// Engine::find returns nullptr once the process is gone, even if the slot
/// has a new tenant. `lp` names the arena shard the slot lives in.
struct ProcessHandle {
  std::uint32_t slot = 0;
  std::uint32_t gen = 0;  // 0 = null handle
  std::uint32_t lp = 0;   // owning logical process (shard) id
  bool null() const { return gen == 0; }
};

/// Internal per-process record. Users interact through Context.
class Process {
 public:
  ~Process();
  const std::string& name() const { return name_; }
  std::uint64_t id() const { return id_; }
  bool finished() const { return state_ == State::Finished; }
  /// Generation-checked handle; outlives the Process safely.
  ProcessHandle handle() const { return self_; }

 private:
  friend class Engine;
  friend class Context;
  friend class Event;
  friend class SlabArena<Process>;
  friend struct Lp;  // forms the &Process::cal_ member pointer for its queue

  enum class State { Created, Ready, Running, Blocked, Finished };

  Process(Engine& engine, std::uint64_t id, std::string name,
          std::function<void(Context&)> body);

  Engine& engine_;
  std::uint64_t id_;
  std::string name_;
  std::function<void(Context&)> body_;
  std::unique_ptr<Fiber> fiber_;     // fiber substrate (lazy, first dispatch)
  std::thread thread_;               // thread substrate (lazy, first dispatch)
  std::binary_semaphore resume_{0};  // thread substrate: engine -> process
  CalendarHook<Process> cal_;        // ready-queue linkage (time under cal_.time)
  Lp* lp_ = nullptr;                 // owning shard; fixed at spawn
  ProcessHandle self_;               // this process's arena slot + generation
  SimTime wait_time_ = 0.0;          // LVT at Event registration (parallel order)
  SimTime wait_deadline_ = 0.0;      // wait_for deadline (+inf for plain wait)
  State state_ = State::Created;
  bool kill_requested_ = false;
  std::uint32_t check_id_ = 0;  // race-detector id (simai::check); 0 = off
  std::uint32_t obs_id_ = 0;    // trace-context id (simai::obs); 0 = off
};

/// Handle passed to a process body; all blocking operations live here.
class Context {
 public:
  /// Current virtual time — the owning LP's local virtual time (LVT). In
  /// sequential mode this is the single global clock; in parallel mode LPs
  /// advance independently within their conservative windows.
  SimTime now() const;
  const std::string& name() const { return process_.name(); }
  std::uint64_t pid() const { return process_.id(); }
  Engine& engine() const { return engine_; }

  /// simai::obs trace-context id for this process (0 while the obs plane is
  /// disarmed). The data plane resolves it via obs::context() to derive
  /// deterministic span/flow ids; see obs/obs.hpp.
  std::uint32_t obs_id() const { return process_.obs_id_; }

  /// Advance virtual time by dt (>= 0): models compute/transfer occupancy.
  void delay(SimTime dt);

  /// Reschedule at the current time, after other processes due now.
  void yield() { delay(0.0); }

  /// Block until the event is notified. Returns the notification "token"
  /// count observed (always >= 1).
  void wait(Event& event);

  /// Block until notified or until `timeout` elapses. True if notified.
  bool wait_for(Event& event, SimTime timeout);

  /// Poll `pred` every `poll_interval` of virtual time until it holds.
  /// This is exactly how the paper's consumers poll for staged data.
  void wait_until(const std::function<bool()>& pred, SimTime poll_interval);

 private:
  friend class Engine;
  friend class Event;
  Context(Engine& engine, Process& process)
      : engine_(engine), process_(process) {}

  /// Hand control back to the scheduler; returns when rescheduled.
  void suspend();

  Engine& engine_;
  Process& process_;
};

/// Condition-variable analog in virtual time. notify_all wakes every waiter
/// at the current virtual time (in deterministic FIFO order). Waiters live
/// in a deque so notify_one pops the front in O(1); the (rare) middle
/// erase only happens when a wait_for timeout deregisters.
///
/// Cross-LP use under Engine(Parallel{N>1}): the waiter list is mutex-
/// guarded (different LPs run on different worker threads), waiters order
/// by (registration LVT, LP id) instead of wall arrival so notify_one stays
/// deterministic, and a notify whose waiter lives on another LP routes the
/// wake through that edge's mailbox — the edge must have been declared with
/// Engine::add_lp_edge. An Event shared by LPs i (waiter) and j (notifier)
/// needs edges BOTH ways: j -> i carries the wake, and i -> j with
/// lookahead 0 bounds j's window behind i's progress so a registration at
/// virtual time t is always performed before any notify at/after t runs —
/// without the reverse edge, j could virtually outrun the registration and
/// the wake would be lost (the workflow layer declares both directions for
/// every dependency pair). The notifier's vector clock still rides the
/// Event object itself, so check/ happens-before edges are preserved.
class Event {
 public:
  explicit Event(Engine& engine) : engine_(engine) {}
  Event(const Event&) = delete;
  Event& operator=(const Event&) = delete;

  void notify_all();
  void notify_one();
  std::size_t waiter_count() const { return waiters_.size(); }

 private:
  friend class Context;
  friend class Engine;
  Engine& engine_;
  std::deque<Process*> waiters_;
  std::mutex mu_;  // guards waiters_ under parallel dispatch only
};

/// The scheduler. Typical usage:
///
///   sim::Engine engine;
///   engine.spawn("producer", [&](sim::Context& ctx) { ... ctx.delay(0.1); });
///   engine.spawn("consumer", [&](sim::Context& ctx) { ... });
///   engine.run();
///
/// Parallel usage — partition work into LPs, declare lookahead edges for
/// any cross-LP communication, then run as usual:
///
///   sim::Engine engine(sim::Parallel{.workers = 4});
///   engine.ensure_lps(n);
///   engine.add_lp_edge(/*from=*/1, /*to=*/0, /*lookahead=*/0.0);
///   engine.spawn_on(1, "producer", ...);
///   engine.spawn_on(0, "consumer", ...);
///   engine.run();
class Engine {
 public:
  /// Uses default_substrate(); sequential (Parallel{.workers = 1}).
  Engine();
  /// Pins the execution substrate for this engine instance.
  explicit Engine(Substrate substrate);
  /// Parallel dispatch over par.workers worker threads (see Parallel).
  explicit Engine(Parallel par);
  Engine(Substrate substrate, Parallel par);
  ~Engine();
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Substrate for default-constructed engines: SIMAI_SIM_THREADS=1 forces
  /// Thread, SIMAI_SIM_THREADS=0 forces Fiber; unset falls back to the
  /// compile-time default (Fiber unless built with SIMAI_FIBERS=OFF).
  /// Under the `tsan` preset every engine is coerced onto the Thread
  /// substrate: the fiber context switches are invisible to
  /// ThreadSanitizer, and the whole point of that build is watching real
  /// threads.
  static Substrate default_substrate();
  Substrate substrate() const { return substrate_; }

  /// Worker count for Parallel{.workers = 0}: SIMAI_SIM_WORKERS env
  /// override, else 1 (sequential). A set-but-invalid override (non-
  /// numeric, zero, out of [1, 4096]) throws Error naming the variable and
  /// value, same style as SIMAI_SIM_STACK_KB.
  static unsigned default_workers();
  unsigned workers() const { return workers_; }
  /// True when this engine dispatches LPs on worker threads (workers > 1).
  bool parallel() const { return workers_ > 1; }

  /// Number of logical-process shards (always >= 1; LP 0 exists from
  /// construction and is where plain spawn() lands).
  std::uint32_t lp_count() const;
  /// Append one LP shard; returns its id. Sequential engines (workers <= 1)
  /// keep a single shard and return 0. Not callable while running.
  std::uint32_t add_lp();
  /// Grow to at least `count` LP shards (no-op when workers <= 1).
  void ensure_lps(std::uint32_t count);
  /// Declare the conservative-sync edge `from -> to`: LP `from` may send
  /// cross-LP wakes/deliveries to LP `to`, each timestamped at least
  /// `lookahead` past the sender's LVT at send time; `to`'s dispatch window
  /// is bounded by n_from + lookahead. Lookahead derives from the transport
  /// model's minimum inter-node link latency for priced links, and is 0 for
  /// same-instant visibility (staging stores publish at the write's
  /// dispatch instant). Not callable while running.
  void add_lp_edge(std::uint32_t from, std::uint32_t to, SimTime lookahead);

  /// Turn on simai::check virtual-time race detection (see check/check.hpp)
  /// for this engine's processes: already-spawned and future processes are
  /// registered with the detector and carry vector clocks across spawn,
  /// Event, and Channel edges. The switch is process-wide (it also flips
  /// check::set_enabled), equivalent to running with SIMAI_CHECK=1. Call
  /// before run(). Zero cost for engines that never enable it.
  void enable_race_detection();

  /// Arm the simai::obs observability plane for this engine's processes:
  /// already-spawned and future processes get trace contexts (reachable via
  /// Context::obs_id()), so the data plane records labeled spans, flow
  /// events, and registry metrics. Process-wide (flips obs::set_enabled),
  /// equivalent to running with SIMAI_OBS=1. Call before run(). Zero cost
  /// for engines that never enable it; never perturbs virtual time.
  void enable_observability();

  /// Install a virtual-time metric sampler: `fn(t)` runs from the scheduler
  /// loop (never inside a process) each time the clock reaches a multiple
  /// of `interval`, plus once more when the run drains, with `t` the sample
  /// boundary. One sampler per engine; an interval <= 0 removes it. The
  /// workflow layer uses this to snapshot obs::Registry counters into the
  /// run's TraceRecorder. Under parallel dispatch samples are taken at
  /// round barriers against the conservative global clock (min LVT) — still
  /// deterministic for a given workload, at barrier rather than per-event
  /// granularity.
  void set_metric_sampler(SimTime interval, std::function<void(SimTime)> fn);

  /// Attach a trace recorder for the parallel-DES profiler (DESIGN.md
  /// §4.13): while the obs plane is armed, each round of the conservative
  /// dispatcher records per-LP window-execution spans ("lp<N>" tracks) and
  /// per-round scheduler spans as labeled spans on `trace`. Labeled spans
  /// are excluded from canonical CSVs, so attaching a recorder never
  /// changes fingerprints. nullptr detaches; the recorder must outlive the
  /// run. The workflow layer attaches its own recorder at launch.
  void set_trace(TraceRecorder* trace) { trace_ = trace; }

  /// Create a logical process scheduled to start at the current time, on
  /// LP 0 (or, when called from inside a running process, on the caller's
  /// LP). Safe to call both before run() and from inside a running process.
  /// The reference is valid until the process FINISHES — its record is
  /// then reclaimed; keep Process::handle() for anything longer-lived.
  Process& spawn(std::string name, std::function<void(Context&)> body);

  /// spawn() onto an explicit LP shard. With workers <= 1 every spawn_on
  /// collapses onto LP 0 (the sequential degradation). From inside a
  /// running process only the caller's own LP may be targeted — spawning
  /// into a concurrently-executing shard would race on its arena.
  Process& spawn_on(std::uint32_t lp, std::string name,
                    std::function<void(Context&)> body);

  /// Deliver `fn` to LP `lp`'s mailbox, to run from that LP's scheduler
  /// (never inside one of its processes) once its LVT reaches `when`.
  /// From inside a running process this is a cross-LP send over the
  /// declared edge caller -> lp (`when` must be >= caller LVT + edge
  /// lookahead); from outside a run it seeds the inbox directly. This is
  /// how in-transit stores publish data across LP boundaries.
  void post(std::uint32_t lp, SimTime when, std::function<void()> fn);
  /// post() timestamped at the caller's current LVT (edge lookahead 0).
  void post(std::uint32_t lp, std::function<void()> fn);

  /// The process behind `h`, or nullptr once it has finished and been
  /// reclaimed (generation-checked: a recycled slot does not alias).
  Process* find(ProcessHandle h);
  bool is_live(ProcessHandle h) const;

  /// Run until no process is runnable. Throws DeadlockError if processes
  /// remain blocked on events, and rethrows the first exception that
  /// escaped a process body (after which the engine and any Events still
  /// holding its waiters must be discarded). Under parallel dispatch the
  /// first error in (LP id, dispatch) order wins — deterministic, not a
  /// wall-clock race.
  void run();

  /// Run until virtual time would exceed `t_end`; blocked/later processes
  /// are left intact and run() may be called again.
  void run_until(SimTime t_end);

  /// Global virtual time: the sequential clock, or under parallel dispatch
  /// the conservative global minimum (all LPs have reached at least this
  /// time; equals the makespan once a run drains).
  SimTime now() const { return now_; }

  /// Total events dispatched (process resumes; mailbox deliveries not
  /// included), summed over LPs. The events/sec numerator in bench_scale
  /// and bench_parallel.
  std::uint64_t dispatched_events() const;

  /// Number of processes that have not finished. O(#LPs) — maintained
  /// per-shard counters, not a scan.
  std::size_t live_process_count() const;

  /// Arena slots ever allocated: the peak-live high-water mark. Bounded by
  /// peak concurrency, NOT total spawns — finished processes are recycled.
  std::size_t process_slots() const;

  /// Fiber-substrate allocator counters (all zero before the first fiber
  /// dispatch, and forever on the thread substrate), summed over the
  /// per-LP stack pools. `stack_pool_hits` over `stacks_acquired` is the
  /// recycle rate; `stack_bytes_mapped` is address space, not RSS (stacks
  /// fault in lazily, page by page).
  struct FiberStats {
    std::uint64_t stacks_acquired = 0;
    std::uint64_t stack_pool_hits = 0;
    std::uint64_t stack_slabs = 0;
    std::uint64_t stack_bytes_mapped = 0;
    std::uint64_t stacks_pooled = 0;
    std::uint64_t stacks_guarded = 0;
  };
  FiberStats fiber_stats() const;

 private:
  friend class Context;
  friend class Event;

  Lp& shard(std::uint32_t id) { return *lps_[id]; }
  /// The LP owning the calling worker's current window, or LP 0 (callers
  /// outside any dispatch: setup code, the coordinator).
  Lp& current_or_first();
  /// LVT seen by scheduling operations: the current window's LP clock, or
  /// the global clock outside dispatch.
  SimTime local_now() const;

  Process& spawn_impl(Lp& lp, std::string name,
                      std::function<void(Context&)> body);
  void schedule(Process& p, SimTime when);          // routes cross-LP sends
  void schedule_local(Lp& lp, Process& p, SimTime when);
  void route_remote(Lp& from, Lp& to, SimTime when, std::function<void()> fn);
  void dispatch(Lp& lp, Process& p);
  void process_body(Process& p);      // shared trampoline core
  void thread_trampoline(Process& p);
  void reclaim(Lp& lp, Process& p);   // finished -> slot back to the arena
  void drain(SimTime t_end);
  void drain_sequential(SimTime t_end);
  void drain_parallel(SimTime t_end);
  /// One conservative window of one LP (worker-thread body): interleaves
  /// due mailbox deliveries with calendar events up to the LP's bound.
  void run_lp_window(Lp& lp, SimTime t_end);
  void throw_if_deadlocked();
  void kill_all();

  const Substrate substrate_;
  const unsigned workers_;
  const SimTime window_;
  const std::size_t mailbox_capacity_;
  std::vector<std::unique_ptr<Lp>> lps_;  // shard 0 always exists
  SimTime now_ = 0.0;
  std::uint64_t next_pid_ = 0;
  std::function<void(SimTime)> sampler_;
  SimTime sampler_interval_ = 0.0;
  SimTime sampler_next_ = 0.0;
  TraceRecorder* trace_ = nullptr;  // profiler sink (see set_trace)
  bool running_ = false;
  bool tearing_down_ = false;  // kill_all: unwind-time wakes schedule directly

  struct Pool;  // persistent worker threads (lazy, first parallel drain)
  std::unique_ptr<Pool> pool_;
};

}  // namespace simai::sim
