// Bounded FIFO channel between logical processes, in virtual time.
//
// Channels are the coordination primitive the DragonHPC substrate and the
// in-process message layer are built from: `put` blocks while the channel is
// full, `get` blocks while it is empty, and hand-offs happen at well-defined
// virtual times. Because the DES runs one process at a time, no internal
// locking is needed.
//
// Parallel dispatch caveat (engine.hpp, Engine(Parallel{N})): a Channel is
// an *intra-LP* primitive. Its deque is plain mutable state and its Events
// follow the cross-LP Event contract, so putting producer and consumer on
// different LPs requires lookahead-0 edges BOTH ways — at which point the
// two LPs serialize and the split buys nothing. Co-locate both endpoints on
// one LP (spawn_on with the same lp id); cross-LP data motion goes through
// the store/transport layer, whose deliveries ride LP mailboxes.
#pragma once

#include <deque>
#include <optional>
#include <utility>

#include "check/check.hpp"
#include "sim/engine.hpp"

namespace simai::sim {

template <typename T>
class Channel {
 public:
  /// capacity == 0 means unbounded.
  explicit Channel(Engine& engine, std::size_t capacity = 0)
      : capacity_(capacity), not_empty_(engine), not_full_(engine) {}

  /// Blocking send; waits (in virtual time) while the channel is full.
  void put(Context& ctx, T value) {
    while (full()) ctx.wait(not_full_);
    items_.push_back(std::move(value));
    check::on_channel_send(this);  // sender clock rides with the message
    not_empty_.notify_all();
  }

  /// Blocking receive; waits while the channel is empty.
  T get(Context& ctx) {
    while (items_.empty()) ctx.wait(not_empty_);
    T value = std::move(items_.front());
    items_.pop_front();
    check::on_channel_recv(this);  // acquire the paired sender clock
    not_full_.notify_all();
    return value;
  }

  /// Non-blocking receive.
  std::optional<T> try_get() {
    if (items_.empty()) return std::nullopt;
    T value = std::move(items_.front());
    items_.pop_front();
    check::on_channel_recv(this);  // acquire the paired sender clock
    not_full_.notify_all();
    return value;
  }

  /// Non-blocking send; false if the channel is full.
  bool try_put(T value) {
    if (full()) return false;
    items_.push_back(std::move(value));
    check::on_channel_send(this);  // sender clock rides with the message
    not_empty_.notify_all();
    return true;
  }

  std::size_t size() const { return items_.size(); }
  bool empty() const { return items_.empty(); }
  bool full() const { return capacity_ != 0 && items_.size() >= capacity_; }
  std::size_t capacity() const { return capacity_; }

 private:
  std::size_t capacity_;
  std::deque<T> items_;
  Event not_empty_;
  Event not_full_;
};

}  // namespace simai::sim
