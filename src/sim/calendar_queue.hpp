// Two-tier calendar queue: the DES engine's ready structure at million-
// process scale.
//
// The classic binary heap costs O(log n) per schedule and — worse, in this
// engine — accumulates stale entries whenever a process is rescheduled
// before its old entry surfaces (wait_for timeouts, event notifies), so the
// drain loop had to pop-and-skip garbage. A calendar queue (R. Brown, CACM
// 1988) instead hashes events into time buckets of width `w`: bucket i of a
// year of N buckets holds every pending event whose time falls in
// [k*N*w + i*w, k*N*w + (i+1)*w) for some year k. Dequeue walks buckets
// from the current calendar position; enqueue drops the event into its
// bucket, sorted. With N kept within 2x of the event count and `w` sized to
// the mean inter-event gap (both re-estimated on resize), buckets hold O(1)
// events and every operation is O(1) amortized.
//
// This variant is intrusive and supports O(1) in-place reschedule: each
// item embeds a CalendarHook (list links + cached priority), so moving an
// item to a new time is unlink + relink with no allocation and no stale
// entry left behind. That is what lets the engine drop the stale-skip path
// entirely — an item is in the queue at exactly one (time, seq) or not at
// all.
//
// Determinism: pop order is EXACTLY ascending (time, seq) — identical to
// the heap it replaces. Two design points make the order exact rather than
// approximate:
//  * Every event caches `cycle = floor(time / width)`, its absolute bucket
//    number, computed once per insert (and recomputed on resize) with the
//    same width the dequeue walk uses. The walk matches on the integer
//    cycle, never on accumulated floating-point bucket boundaries, so there
//    is no drift between the insert-side and dequeue-side bucket maps.
//  * Same-time events always share a cycle, hence a bucket, where they sit
//    sorted by sequence number — the global tie-break is preserved across
//    bucket boundaries and resizes.
//
// The structure never allocates per event; its only allocation is the
// bucket vector (<= 2x live events, plus a transient pointer array during
// resize).
#pragma once

#include <cassert>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace simai::sim {

/// Intrusive state embedded in each queueable item. All fields are owned by
/// the CalendarQueue while `queued`; callers may read `time`/`seq` freely.
template <class T>
struct CalendarHook {
  double time = 0.0;
  std::uint64_t seq = 0;
  std::uint64_t cycle = 0;  // floor(time / width): absolute bucket number
  T* prev = nullptr;
  T* next = nullptr;
  bool queued = false;
};

/// Min-queue over (time, seq) with O(1) amortized insert / erase / pop.
/// `Hook` names the CalendarHook member of T. An item may be queued in at
/// most one CalendarQueue at a time.
template <class T, CalendarHook<T> T::* Hook>
class CalendarQueue {
 public:
  static constexpr std::size_t kMinBuckets = 16;
  static constexpr std::size_t kMaxBuckets = std::size_t(1) << 22;

  CalendarQueue() : buckets_(kMinBuckets) {}

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  std::size_t bucket_count() const { return buckets_.size(); }
  double bucket_width() const { return width_; }

  static bool queued(const T& x) { return (x.*Hook).queued; }

  /// Add `x` at priority (time, seq). `x` must not currently be queued;
  /// callers reschedule with erase() + insert() (both O(1)).
  void insert(T& x, double time, std::uint64_t seq) {
    CalendarHook<T>& h = x.*Hook;
    assert(!h.queued && "calendar: item already queued");
    h.time = time;
    h.seq = seq;
    h.cycle = cycle_of(time);
    link(x);
    h.queued = true;
    ++size_;
    // An insert behind the calendar position (a spawn between run_until
    // calls, say) rewinds the walk so the event cannot be skipped.
    if (h.cycle < pos_) pos_ = h.cycle;
    if (cached_min_ && less(h, (*cached_min_).*Hook)) cached_min_ = &x;
    if (size_ > buckets_.size() * 2 && buckets_.size() < kMaxBuckets)
      rehash(buckets_.size() * 2);
  }

  /// Remove `x` wherever it is; no-op if not queued.
  void erase(T& x) {
    CalendarHook<T>& h = x.*Hook;
    if (!h.queued) return;
    unlink(x);
    h.queued = false;
    h.prev = h.next = nullptr;
    --size_;
    if (cached_min_ == &x) cached_min_ = nullptr;
    if (buckets_.size() > kMinBuckets && size_ < buckets_.size() / 4)
      rehash(buckets_.size() / 2);
  }

  /// Smallest (time, seq) item without removing it; nullptr when empty.
  T* peek() {
    if (size_ == 0) return nullptr;
    if (!cached_min_) cached_min_ = find_min();
    return cached_min_;
  }

  /// Remove and return the smallest (time, seq) item; nullptr when empty.
  T* pop() {
    T* m = peek();
    if (m) {
      pos_ = ((*m).*Hook).cycle;  // calendar advances to the popped event
      erase(*m);
    }
    return m;
  }

  /// Drop every queued item (hooks reset); used at engine teardown.
  void clear() {
    for (Bucket& b : buckets_) {
      for (T* x = b.head; x != nullptr;) {
        CalendarHook<T>& h = x->*Hook;
        T* next = h.next;
        h.queued = false;
        h.prev = h.next = nullptr;
        x = next;
      }
      b.head = b.tail = nullptr;
    }
    size_ = 0;
    cached_min_ = nullptr;
  }

 private:
  struct Bucket {
    T* head = nullptr;  // bucket min by (time, seq)
    T* tail = nullptr;
  };

  static bool less(const CalendarHook<T>& a, const CalendarHook<T>& b) {
    return a.time != b.time ? a.time < b.time : a.seq < b.seq;
  }

  std::uint64_t cycle_of(double time) const {
    const double c = std::floor(time / width_);
    if (!(c > 0.0)) return 0;  // t <= 0 (engine time is never negative)
    // Far-future clamp: events beyond 2^62 cycles share one bucket, where
    // the sorted list still orders them exactly.
    if (c >= 4.6e18) return std::uint64_t(1) << 62;
    return static_cast<std::uint64_t>(c);
  }

  Bucket& bucket_for(const CalendarHook<T>& h) {
    return buckets_[static_cast<std::size_t>(h.cycle % buckets_.size())];
  }

  // Insert sorted ascending by (time, seq), scanning from the tail: the
  // common case (monotonically growing seq at current-or-later times)
  // appends in O(1).
  void link(T& x) {
    CalendarHook<T>& h = x.*Hook;
    Bucket& b = bucket_for(h);
    T* after = b.tail;
    while (after && less(h, (*after).*Hook)) after = ((*after).*Hook).prev;
    if (!after) {  // new head
      h.next = b.head;
      h.prev = nullptr;
      if (b.head) ((*b.head).*Hook).prev = &x;
      b.head = &x;
      if (!b.tail) b.tail = &x;
    } else {
      h.prev = after;
      h.next = ((*after).*Hook).next;
      ((*after).*Hook).next = &x;
      if (h.next)
        ((*h.next).*Hook).prev = &x;
      else
        b.tail = &x;
    }
  }

  void unlink(T& x) {
    CalendarHook<T>& h = x.*Hook;
    Bucket& b = bucket_for(h);
    if (h.prev)
      ((*h.prev).*Hook).next = h.next;
    else
      b.head = h.next;
    if (h.next)
      ((*h.next).*Hook).prev = h.prev;
    else
      b.tail = h.prev;
  }

  // Walk one calendar year from the current position; the first bucket
  // whose head matches the walk's absolute cycle holds the global min (a
  // head is its bucket's min, and smaller cycles sort first). If the year
  // is dry — every event is far in the future — fall back to a direct
  // search over bucket heads and jump the calendar there.
  T* find_min() {
    const std::size_t nb = buckets_.size();
    std::uint64_t c = pos_;
    for (std::size_t k = 0; k < nb; ++k, ++c) {
      T* head = buckets_[static_cast<std::size_t>(c % nb)].head;
      if (head && ((*head).*Hook).cycle == c) return head;
    }
    T* best = nullptr;
    for (const Bucket& b : buckets_) {
      if (b.head && (!best || less((*b.head).*Hook, (*best).*Hook)))
        best = b.head;
    }
    assert(best && "calendar: size_ > 0 but no event found");
    pos_ = ((*best).*Hook).cycle;
    return best;
  }

  // Re-bucket every event into `nbuckets` buckets, re-estimating the
  // bucket width as the mean inter-event gap so occupancy stays O(1).
  void rehash(std::size_t nbuckets) {
    std::vector<T*> items;
    items.reserve(size_);
    for (Bucket& b : buckets_) {
      for (T* x = b.head; x != nullptr; x = (x->*Hook).next) items.push_back(x);
      b.head = b.tail = nullptr;
    }
    buckets_.assign(nbuckets, Bucket{});

    if (!items.empty()) {
      double lo = ((*items[0]).*Hook).time, hi = lo;
      for (T* x : items) {
        const double t = ((*x).*Hook).time;
        if (t < lo) lo = t;
        if (t > hi) hi = t;
      }
      const double span = hi - lo;
      if (span > 0.0) {
        const double w = 2.0 * span / static_cast<double>(items.size());
        if (w > kMinWidth && std::isfinite(w)) width_ = w;
      }
      // span == 0 (all events simultaneous): any width works; keep it.
    }

    std::uint64_t min_cycle = ~std::uint64_t{0};
    for (T* x : items) {
      CalendarHook<T>& h = (*x).*Hook;
      h.cycle = cycle_of(h.time);
      h.prev = h.next = nullptr;
      if (h.cycle < min_cycle) min_cycle = h.cycle;
      link(*x);
    }
    pos_ = items.empty() ? 0 : min_cycle;
  }

  static constexpr double kMinWidth = 1e-9;

  std::vector<Bucket> buckets_;
  double width_ = 1.0;
  std::uint64_t pos_ = 0;     // absolute cycle the dequeue walk starts from
  std::size_t size_ = 0;
  T* cached_min_ = nullptr;   // memoized peek(); cleared on mutation
};

}  // namespace simai::sim
