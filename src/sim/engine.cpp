#include "sim/engine.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <limits>

#include "check/check.hpp"
#include "obs/obs.hpp"
#include "sim/fiber.hpp"

namespace simai::sim {

// ---------------------------------------------------------------------------
// Process
// ---------------------------------------------------------------------------

Process::Process(Engine& engine, std::uint64_t id, std::string name,
                 std::function<void(Context&)> body)
    : engine_(engine), id_(id), name_(std::move(name)), body_(std::move(body)) {}

// Out of line so the unique_ptr<Fiber> member deletes where Fiber is
// complete (this TU), keeping fiber.hpp out of the public header.
Process::~Process() = default;

// ---------------------------------------------------------------------------
// Context
// ---------------------------------------------------------------------------

SimTime Context::now() const { return engine_.now_; }

void Context::suspend() {
  if (engine_.substrate_ == Substrate::Fiber) {
    process_.fiber_->suspend();  // user-space swap back to the scheduler
  } else {
    engine_.engine_turn_.release();  // hand baton to the scheduler
    process_.resume_.acquire();      // wait to be rescheduled
  }
  if (process_.kill_requested_) throw ProcessKilled{};
}

void Context::delay(SimTime dt) {
  if (dt < 0.0 || std::isnan(dt))
    throw Error("sim: negative or NaN delay in process '" + name() + "'");
  engine_.schedule(process_, engine_.now_ + dt);
  suspend();
}

void Context::wait(Event& event) {
  process_.state_ = Process::State::Blocked;
  event.waiters_.push_back(&process_);
  suspend();
  // Woken by a notify: acquire the notifier's clock (happens-before edge).
  check::on_event_wait(&event);
}

bool Context::wait_for(Event& event, SimTime timeout) {
  // Waiting with a timeout: register on the event AND schedule a wake-up.
  // Whichever fires first wins; we then deregister from the loser.
  process_.state_ = Process::State::Blocked;
  event.waiters_.push_back(&process_);
  const SimTime deadline = engine_.now_ + timeout;
  engine_.schedule(process_, deadline);
  suspend();
  auto& ws = event.waiters_;
  const auto it = std::find(ws.begin(), ws.end(), &process_);
  if (it != ws.end()) {
    // Still registered => the timer fired, not the event.
    ws.erase(it);
    return false;
  }
  check::on_event_wait(&event);  // notified: acquire the notifier's clock
  return true;
}

void Context::wait_until(const std::function<bool()>& pred,
                         SimTime poll_interval) {
  if (poll_interval <= 0.0)
    throw Error("sim: wait_until poll interval must be positive");
  while (!pred()) delay(poll_interval);
}

// ---------------------------------------------------------------------------
// Event
// ---------------------------------------------------------------------------

void Event::notify_all() {
  check::on_event_notify(this);  // release the notifier's clock
  for (Process* p : waiters_) engine_.schedule(*p, engine_.now_);
  waiters_.clear();
}

void Event::notify_one() {
  check::on_event_notify(this);  // release the notifier's clock
  if (waiters_.empty()) return;
  Process* p = waiters_.front();
  waiters_.pop_front();  // O(1), FIFO preserved
  engine_.schedule(*p, engine_.now_);
}

// ---------------------------------------------------------------------------
// Engine
// ---------------------------------------------------------------------------

namespace {

Substrate coerce_substrate(Substrate requested) {
#if defined(SIMAI_BUILD_TSAN)
  // ThreadSanitizer cannot follow ucontext fiber switches (its shadow stack
  // desynchronizes), and the tsan preset exists to watch REAL threads — so
  // every engine, even an explicit Fiber request, runs thread-per-process.
  (void)requested;
  return Substrate::Thread;
#else
  return requested;
#endif
}

}  // namespace

Engine::Engine() : Engine(default_substrate()) {}

Engine::Engine(Substrate substrate) : substrate_(coerce_substrate(substrate)) {}

Engine::~Engine() { kill_all(); }

Substrate Engine::default_substrate() {
  // Read the env on every call: tests flip it to compare substrates.
  if (const char* env = std::getenv("SIMAI_SIM_THREADS")) {
    if (*env != '\0')
      return std::strcmp(env, "0") == 0 ? Substrate::Fiber : Substrate::Thread;
  }
#if defined(SIMAI_SIM_DEFAULT_THREADS)
  return Substrate::Thread;
#else
  return Substrate::Fiber;
#endif
}

Process& Engine::spawn(std::string name, std::function<void(Context&)> body) {
  // Process is immovable (owns semaphores), and its ctor is private: the
  // arena hands us raw slot storage and this friend class placement-news
  // into it. Slots are recycled from finished processes.
  auto [p, h] = arena_.create([&](void* mem) {
    return new (mem)
        Process(*this, next_pid_++, std::move(name), std::move(body));
  });
  p->self_ = ProcessHandle{h.slot, h.gen};
  if (check::enabled()) {
    p->check_id_ = check::register_process(p->name_);
    check::on_spawn(p->check_id_);  // parent = the spawning process, if any
  }
  if (obs::enabled()) p->obs_id_ = obs::register_context(p->name_);
  schedule(*p, now_);
  return *p;
}

void Engine::enable_race_detection() {
  check::set_enabled(true);
  // Processes spawned before the switch get registered retroactively; their
  // mutual spawn edges are lost, which is conservative (more concurrency
  // reported, never less) — enable before spawning for exact edges.
  arena_.for_each_live([](Process& p) {
    if (p.check_id_ == 0) p.check_id_ = check::register_process(p.name_);
  });
}

void Engine::enable_observability() {
  obs::set_enabled(true);
  // Retroactive registration mirrors enable_race_detection: processes
  // spawned before the switch still get deterministic trace contexts
  // (ids derive from names, not registration time).
  arena_.for_each_live([](Process& p) {
    if (p.obs_id_ == 0) p.obs_id_ = obs::register_context(p.name_);
  });
}

void Engine::set_metric_sampler(SimTime interval,
                                std::function<void(SimTime)> fn) {
  if (interval <= 0.0 || !fn) {
    sampler_ = nullptr;
    sampler_interval_ = 0.0;
    return;
  }
  sampler_ = std::move(fn);
  sampler_interval_ = interval;
  sampler_next_ = 0.0;
}

void Engine::schedule(Process& p, SimTime when) {
  p.state_ = Process::State::Ready;
  const std::uint64_t seq = next_seq_++;  // every schedule burns a seq
  if (p.cal_.queued) {
    // Rescheduled at the SAME time: keep the existing (earlier-seq) entry.
    // This reproduces the heap's tie-break exactly — there the older entry
    // surfaced first and the newer one was skipped as stale.
    if (p.cal_.time == when) return;
    ready_.erase(p);
  }
  ready_.insert(p, when, seq);
}

// One step of a process body: run user code, swallow teardown, capture the
// first real error. Shared by both substrates so they cannot drift.
void Engine::process_body(Process& p) {
  if (!p.kill_requested_) {
    Context ctx(*this, p);
    try {
      p.body_(ctx);
    } catch (const ProcessKilled&) {
      // Torn down by the engine; unwind silently.
    } catch (...) {
      if (!pending_error_) pending_error_ = std::current_exception();
    }
  }
  p.state_ = Process::State::Finished;
}

void Engine::thread_trampoline(Process& p) {
  p.resume_.acquire();  // wait for first dispatch
  // This thread IS the logical process for its whole life, so the race
  // detector binding is set once (fibers instead bracket each dispatch).
  if (p.check_id_ != 0) check::set_current_process(p.check_id_);
  process_body(p);
  engine_turn_.release();
}

// A finished process gives everything back: its OS thread is joined, its
// detector/trace registrations dropped, and its arena slot (plus fiber
// stack, via ~Process -> ~Fiber -> StackPool::release) recycled for future
// spawns. After this any ProcessHandle to it resolves to nullptr.
void Engine::reclaim(Process& p) {
  if (p.thread_.joinable()) p.thread_.join();
  if (p.check_id_ != 0) check::release_process(p.check_id_);
  if (p.obs_id_ != 0) obs::release_context(p.obs_id_);
  ready_.erase(p);  // defensive; a finished process holds no queue entry
  arena_.destroy({p.self_.slot, p.self_.gen});
}

void Engine::dispatch(Process& p) {
  p.state_ = Process::State::Running;
  if (p.check_id_ != 0) check::on_dispatch(p.check_id_, now_);
  if (substrate_ == Substrate::Fiber) {
    if (!p.fiber_) {
      // Lazy fiber creation: entry runs process_body and returns, which
      // finishes the fiber and swaps back to this resume() call. The
      // runtime (stack pool + scheduler link) is itself created on the
      // engine's first fiber dispatch.
      if (!fiber_rt_) fiber_rt_ = std::make_unique<FiberRuntime>();
      p.fiber_ =
          std::make_unique<Fiber>([this, &p] { process_body(p); }, *fiber_rt_);
    }
    if (p.check_id_ != 0) {
      // All fibers share the engine thread: bind the detector's notion of
      // "current process" only while this one actually runs.
      check::ScopedProcess guard(p.check_id_);
      p.fiber_->resume();  // returns when p suspends or finishes
    } else {
      p.fiber_->resume();
    }
  } else {
    if (!p.thread_.joinable()) {
      // Lazy thread start: the thread immediately blocks on resume_, so
      // creation order cannot perturb the schedule.
      p.thread_ = std::thread([this, &p] { thread_trampoline(p); });
    }
    p.resume_.release();
    engine_turn_.acquire();  // run exactly one step of p
  }
  if (pending_error_) {
    std::exception_ptr err = pending_error_;
    pending_error_ = nullptr;
    kill_all();  // reclaims every process, including p
    std::rethrow_exception(err);
  }
  if (p.state_ == Process::State::Finished) reclaim(p);
}

void Engine::drain(SimTime t_end) {
  if (running_) throw Error("sim: Engine::run is not reentrant");
  running_ = true;
  struct Guard {
    bool& flag;
    ~Guard() { flag = false; }
  } guard{running_};

  // The calendar queue holds each ready process exactly once (reschedules
  // move the entry in place), so every peek is live — no stale-skip loop.
  while (Process* top = ready_.peek()) {
    const SimTime t = top->cal_.time;
    if (t > t_end) return;  // leave for a future run_until call
    ready_.pop();
    now_ = std::max(now_, t);
    // Metric sampling runs from the scheduler, between dispatches, so it
    // observes a consistent registry and cannot perturb process schedules.
    // At most one sample per clock advance: a jump across several interval
    // boundaries emits the first missed boundary, then realigns.
    if (sampler_ && now_ >= sampler_next_) {
      sampler_(sampler_next_);
      sampler_next_ =
          (std::floor(now_ / sampler_interval_) + 1.0) * sampler_interval_;
    }
    dispatch(*top);  // may reclaim *top; not touched afterwards
  }

  // Final sample at drain time so the last partial interval is covered.
  if (sampler_) sampler_(now_);

  // Nothing runnable. Any live, blocked processes mean deadlock. (Finished
  // processes were reclaimed at dispatch, so the live set is exactly the
  // blocked ones plus, under run_until, not-yet-due ones.)
  std::string blocked;
  arena_.for_each_live([&](Process& p) {
    if (p.state_ == Process::State::Blocked) {
      if (!blocked.empty()) blocked += ", ";
      blocked += p.name_;
    }
  });
  if (!blocked.empty())
    throw DeadlockError("sim: deadlock — processes blocked on events: " +
                        blocked);
}

void Engine::run() { drain(std::numeric_limits<SimTime>::infinity()); }

void Engine::run_until(SimTime t_end) { drain(t_end); }

Engine::FiberStats Engine::fiber_stats() const {
  FiberStats out;
  if (!fiber_rt_) return out;  // no fiber ever dispatched (or Thread substrate)
  const StackPool::Stats& s = fiber_rt_->pool.stats();
  out.stacks_acquired = s.acquires;
  out.stack_pool_hits = s.pool_hits;
  out.stack_slabs = s.slabs;
  out.stack_bytes_mapped = s.mapped_bytes;
  out.stacks_pooled = s.pooled;
  out.stacks_guarded = s.guarded;
  return out;
}

void Engine::kill_all() {
  ready_.clear();
  // Phase 1: unwind every unfinished process. Unwinding runs destructors on
  // the process stack, which may legally notify Events — i.e. schedule other
  // processes — so every record must stay alive until all unwinds are done.
  arena_.for_each_live([&](Process& p) {
    if (p.state_ == Process::State::Finished) return;
    p.kill_requested_ = true;
    if (substrate_ == Substrate::Fiber) {
      if (p.fiber_ && !p.fiber_->finished()) {
        // The fiber is parked in suspend(); resuming lets it observe the
        // kill flag, throw ProcessKilled, unwind its stack, and finish.
        p.fiber_->resume();
      }
    } else if (p.thread_.joinable()) {
      // The thread is parked on resume_; release it so it can observe the
      // kill flag, unwind, and hand the baton back.
      p.resume_.release();
      engine_turn_.acquire();
    }
    p.state_ = Process::State::Finished;
  });
  // Phase 2: reclaim everything (for_each_live tolerates destroy-in-visit).
  arena_.for_each_live([&](Process& p) { reclaim(p); });
}

}  // namespace simai::sim
