#include "sim/engine.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <condition_variable>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <map>
#include <utility>

#include "check/check.hpp"
#include "obs/flight.hpp"
#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "sim/fiber.hpp"
#include "sim/trace.hpp"
#include "util/rng.hpp"

namespace simai::sim {

namespace {

constexpr SimTime kInf = std::numeric_limits<SimTime>::infinity();

/// The LP whose window the calling thread is currently executing:
///  * worker threads set it around run_lp_window;
///  * thread-substrate process threads pin it once (a process never migrates
///    between LPs), so scheduling operations issued from the process's own
///    OS thread route exactly like fiber-substrate ones;
///  * the main thread (setup code, the sequential drain loop, the parallel
///    coordinator) leaves it null.
thread_local Lp* tls_current_lp = nullptr;

}  // namespace

/// One cross-LP message: run `fn` at the destination once its LVT reaches
/// `when`. (src, seq) is the per-edge emission order; together with `when`
/// it gives every inbox a total order independent of wall-clock arrival.
struct Delivery {
  SimTime when = 0.0;
  std::uint32_t src = 0;
  std::uint64_t seq = 0;
  std::function<void()> fn;
};

namespace {

bool delivery_less(const Delivery& a, const Delivery& b) {
  if (a.when != b.when) return a.when < b.when;
  if (a.src != b.src) return a.src < b.src;
  return a.seq < b.seq;
}

}  // namespace

/// Per-LP scheduler shard: its own calendar queue, arena, fiber runtime,
/// local virtual time (LVT), and seq counter — the unit of parallel
/// dispatch. Outside a round the coordinator owns every field; during a
/// round exactly one worker owns each LP in the batch (handed off through
/// the pool's mutex, so cross-round access is release/acquire ordered).
struct Lp {
  explicit Lp(std::uint32_t id_in) : id(id_in) {}

  const std::uint32_t id;
  std::unique_ptr<FiberRuntime> fiber_rt;  // lazy, first fiber dispatch
  SlabArena<Process> arena;
  CalendarQueue<Process, &Process::cal_> ready;
  SimTime now = 0.0;            // LVT: furthest event this LP has dispatched
  std::uint64_t next_seq = 0;   // schedule tie-break counter (per LP)
  std::uint64_t next_local_pid = 0;  // mid-run parallel spawns (see spawn_impl)
  std::uint64_t dispatched = 0;
  std::uint64_t deliveries = 0;
  std::binary_semaphore engine_turn{0};  // thread substrate: process -> engine
  std::exception_ptr pending_error;

  /// Outgoing mailbox for one declared edge (this LP -> key LP).
  struct Outbox {
    SimTime lookahead = 0.0;    // min timestamp increment promised on sends
    std::uint64_t next_seq = 0;
    std::vector<Delivery> items;
  };
  std::map<std::uint32_t, Outbox> out;
  std::vector<std::pair<std::uint32_t, SimTime>> in_edges;  // (src, lookahead)

  /// Incoming deliveries, sorted by (when, src, seq); [0, inbox_pos) is the
  /// applied prefix. Mutated by the coordinator at barriers and by this
  /// LP's owner during its window — never concurrently.
  std::vector<Delivery> inbox;
  std::size_t inbox_pos = 0;
  std::uint64_t inbox_seq = 0;  // emission counter for direct post() inserts
  bool inbox_dirty = false;     // barrier appended; needs one re-sort

  // Set by the coordinator each round, read by the owning worker.
  SimTime next_time = 0.0;      // min(calendar head, earliest inbox delivery)
  SimTime window_end = 0.0;     // conservative dispatch bound (exclusive...)
  bool window_inclusive = false;  // ...except the progress-fallback round
  bool mailbox_full = false;    // backpressure: end the window early
};

// ---------------------------------------------------------------------------
// Worker pool: persistent threads, one barrier-synchronized round at a time.
// ---------------------------------------------------------------------------

struct Engine::Pool {
  Pool(Engine& engine_in, unsigned n) : engine(engine_in) {
    threads.reserve(n);
    for (unsigned i = 0; i < n; ++i) threads.emplace_back([this] { worker(); });
  }

  ~Pool() {
    {
      std::lock_guard<std::mutex> lk(mu);
      stop = true;
    }
    start_cv.notify_all();
    for (std::thread& t : threads) t.join();
  }

  /// Run one round: workers claim LPs from `b` (atomic cursor — dynamic
  /// load balancing; WHICH worker runs an LP never matters, windows depend
  /// only on virtual state) and return once every window finished. The
  /// mutex hand-off gives the coordinator release/acquire visibility of all
  /// LP state the workers touched, and vice versa for the next round.
  void run_round(std::vector<Lp*>& b, SimTime t_end_in) {
    {
      std::lock_guard<std::mutex> lk(mu);
      batch = &b;
      t_end = t_end_in;
      cursor.store(0, std::memory_order_relaxed);
      unfinished = threads.size();
      ++epoch;
    }
    start_cv.notify_all();
    std::unique_lock<std::mutex> lk(mu);
    done_cv.wait(lk, [&] { return unfinished == 0; });
  }

  void worker() {
    std::uint64_t seen = 0;
    for (;;) {
      SimTime te;
      std::vector<Lp*>* b;
      {
        std::unique_lock<std::mutex> lk(mu);
        start_cv.wait(lk, [&] { return stop || epoch != seen; });
        if (stop) return;
        seen = epoch;
        te = t_end;
        b = batch;
      }
      for (;;) {
        const std::size_t i = cursor.fetch_add(1, std::memory_order_relaxed);
        if (i >= b->size()) break;
        Lp* lp = (*b)[i];
        try {
          engine.run_lp_window(*lp, te);
        } catch (...) {
          // Engine-internal failures surface like process errors: recorded
          // per LP, resolved deterministically at the barrier.
          if (!lp->pending_error) lp->pending_error = std::current_exception();
        }
      }
      {
        std::lock_guard<std::mutex> lk(mu);
        if (--unfinished == 0) done_cv.notify_all();
      }
    }
  }

  Engine& engine;
  std::vector<std::thread> threads;
  std::mutex mu;
  std::condition_variable start_cv, done_cv;
  std::vector<Lp*>* batch = nullptr;
  std::atomic<std::size_t> cursor{0};
  SimTime t_end = 0.0;
  std::uint64_t epoch = 0;
  std::size_t unfinished = 0;
  bool stop = false;
};

// ---------------------------------------------------------------------------
// Process
// ---------------------------------------------------------------------------

Process::Process(Engine& engine, std::uint64_t id, std::string name,
                 std::function<void(Context&)> body)
    : engine_(engine), id_(id), name_(std::move(name)), body_(std::move(body)) {}

// Out of line so the unique_ptr<Fiber> member deletes where Fiber is
// complete (this TU), keeping fiber.hpp out of the public header.
Process::~Process() = default;

// ---------------------------------------------------------------------------
// Context
// ---------------------------------------------------------------------------

SimTime Context::now() const { return process_.lp_->now; }

void Context::suspend() {
  if (engine_.substrate_ == Substrate::Fiber) {
    process_.fiber_->suspend();  // user-space swap back to the scheduler
  } else {
    process_.lp_->engine_turn.release();  // hand baton to the LP's scheduler
    process_.resume_.acquire();           // wait to be rescheduled
  }
  if (process_.kill_requested_) throw ProcessKilled{};
}

void Context::delay(SimTime dt) {
  if (dt < 0.0 || std::isnan(dt))
    throw Error("sim: negative or NaN delay in process '" + name() + "'");
  engine_.schedule(process_, process_.lp_->now + dt);
  suspend();
}

void Context::wait(Event& event) {
  process_.state_ = Process::State::Blocked;
  if (engine_.parallel()) {
    // Waiters order by (registration LVT, LP id) — wall-clock arrival of
    // concurrently-registering LPs must not leak into notify_one's FIFO.
    // Same-LP waiters keep FIFO (upper_bound inserts after equal keys).
    process_.wait_time_ = process_.lp_->now;
    process_.wait_deadline_ = kInf;
    std::lock_guard<std::mutex> lk(event.mu_);
    auto it = std::upper_bound(
        event.waiters_.begin(), event.waiters_.end(), &process_,
        [](const Process* a, const Process* b) {
          if (a->wait_time_ != b->wait_time_) return a->wait_time_ < b->wait_time_;
          return a->lp_->id < b->lp_->id;
        });
    event.waiters_.insert(it, &process_);
  } else {
    event.waiters_.push_back(&process_);
  }
  suspend();
  // Woken by a notify: acquire the notifier's clock (happens-before edge).
  check::on_event_wait(&event);
}

bool Context::wait_for(Event& event, SimTime timeout) {
  // Waiting with a timeout: register on the event AND schedule a wake-up.
  // Whichever fires first wins; we then deregister from the loser.
  process_.state_ = Process::State::Blocked;
  const SimTime deadline = process_.lp_->now + timeout;
  if (engine_.parallel()) {
    process_.wait_time_ = process_.lp_->now;
    // The deadline rides on the record: a cross-LP notify at t > deadline
    // must leave this waiter for its timer (sequential order: the timer
    // event dispatched first), not claim it because the wall clock raced.
    process_.wait_deadline_ = deadline;
    std::lock_guard<std::mutex> lk(event.mu_);
    auto it = std::upper_bound(
        event.waiters_.begin(), event.waiters_.end(), &process_,
        [](const Process* a, const Process* b) {
          if (a->wait_time_ != b->wait_time_) return a->wait_time_ < b->wait_time_;
          return a->lp_->id < b->lp_->id;
        });
    event.waiters_.insert(it, &process_);
  } else {
    event.waiters_.push_back(&process_);
  }
  engine_.schedule(process_, deadline);
  suspend();
  bool still_registered;
  if (engine_.parallel()) {
    std::lock_guard<std::mutex> lk(event.mu_);
    auto& ws = event.waiters_;
    const auto it = std::find(ws.begin(), ws.end(), &process_);
    still_registered = it != ws.end();
    if (still_registered) ws.erase(it);
  } else {
    auto& ws = event.waiters_;
    const auto it = std::find(ws.begin(), ws.end(), &process_);
    still_registered = it != ws.end();
    if (still_registered) ws.erase(it);
  }
  if (still_registered) return false;  // the timer fired, not the event
  check::on_event_wait(&event);        // notified: acquire the notifier's clock
  return true;
}

void Context::wait_until(const std::function<bool()>& pred,
                         SimTime poll_interval) {
  if (poll_interval <= 0.0)
    throw Error("sim: wait_until poll interval must be positive");
  while (!pred()) delay(poll_interval);
}

// ---------------------------------------------------------------------------
// Event
// ---------------------------------------------------------------------------

void Event::notify_all() {
  check::on_event_notify(this);  // release the notifier's clock
  if (engine_.parallel()) {
    const SimTime t = engine_.local_now();
    std::vector<Process*> claimed;
    {
      std::lock_guard<std::mutex> lk(mu_);
      for (auto it = waiters_.begin(); it != waiters_.end();) {
        // A waiter whose wait_for deadline already passed in virtual time
        // belongs to its timer (which dispatched first sequentially); its
        // record may still be present only because of wall-clock skew
        // between LP windows. Leave it to deregister itself.
        if ((*it)->wait_deadline_ >= t) {
          claimed.push_back(*it);
          it = waiters_.erase(it);
        } else {
          ++it;
        }
      }
    }
    for (Process* p : claimed) engine_.schedule(*p, t);
    return;
  }
  for (Process* p : waiters_) engine_.schedule(*p, engine_.local_now());
  waiters_.clear();
}

void Event::notify_one() {
  check::on_event_notify(this);  // release the notifier's clock
  if (engine_.parallel()) {
    const SimTime t = engine_.local_now();
    Process* claimed = nullptr;
    {
      std::lock_guard<std::mutex> lk(mu_);
      for (auto it = waiters_.begin(); it != waiters_.end(); ++it) {
        if ((*it)->wait_deadline_ >= t) {  // skip virtually-expired waiters
          claimed = *it;
          waiters_.erase(it);
          break;
        }
      }
    }
    if (claimed) engine_.schedule(*claimed, t);
    return;
  }
  if (waiters_.empty()) return;
  Process* p = waiters_.front();
  waiters_.pop_front();  // O(1), FIFO preserved
  engine_.schedule(*p, engine_.local_now());
}

// ---------------------------------------------------------------------------
// Engine
// ---------------------------------------------------------------------------

namespace {

Substrate coerce_substrate(Substrate requested) {
#if defined(SIMAI_BUILD_TSAN)
  // ThreadSanitizer cannot follow ucontext fiber switches (its shadow stack
  // desynchronizes), and the tsan preset exists to watch REAL threads — so
  // every engine, even an explicit Fiber request, runs thread-per-process.
  (void)requested;
  return Substrate::Thread;
#else
  return requested;
#endif
}

}  // namespace

Engine::Engine() : Engine(default_substrate(), Parallel{.workers = 1}) {}

Engine::Engine(Substrate substrate)
    : Engine(substrate, Parallel{.workers = 1}) {}

Engine::Engine(Parallel par) : Engine(default_substrate(), par) {}

Engine::Engine(Substrate substrate, Parallel par)
    : substrate_(coerce_substrate(substrate)),
      workers_(par.workers == 0 ? default_workers() : par.workers),
      window_(par.window),
      mailbox_capacity_(par.mailbox_capacity == 0 ? 1 : par.mailbox_capacity) {
  lps_.push_back(std::make_unique<Lp>(0));
}

Engine::~Engine() {
  pool_.reset();  // workers idle at the barrier; stop them before teardown
  kill_all();
}

Substrate Engine::default_substrate() {
  // Read the env on every call: tests flip it to compare substrates.
  if (const char* env = std::getenv("SIMAI_SIM_THREADS")) {
    if (*env != '\0')
      return std::strcmp(env, "0") == 0 ? Substrate::Fiber : Substrate::Thread;
  }
#if defined(SIMAI_SIM_DEFAULT_THREADS)
  return Substrate::Thread;
#else
  return Substrate::Fiber;
#endif
}

unsigned Engine::default_workers() {
  // Read the env on every call (benches sweep it). 4096 ceiling: catches
  // "bytes where a count was meant" configuration mistakes.
  if (const char* env = std::getenv("SIMAI_SIM_WORKERS")) {
    if (*env != '\0')
      return static_cast<unsigned>(
          detail::parse_env_u64("SIMAI_SIM_WORKERS", env, 1, 4096, "sim"));
  }
  return 1;
}

std::uint32_t Engine::lp_count() const {
  return static_cast<std::uint32_t>(lps_.size());
}

std::uint32_t Engine::add_lp() {
  if (workers_ <= 1) return 0;  // sequential degradation: one shard
  if (running_) throw Error("sim: add_lp while the engine is running");
  lps_.push_back(std::make_unique<Lp>(static_cast<std::uint32_t>(lps_.size())));
  return lps_.back()->id;
}

void Engine::ensure_lps(std::uint32_t count) {
  while (lps_.size() < count && workers_ > 1) add_lp();
}

void Engine::add_lp_edge(std::uint32_t from, std::uint32_t to,
                         SimTime lookahead) {
  if (workers_ <= 1) return;  // single shard: every send is already local
  if (running_) throw Error("sim: add_lp_edge while the engine is running");
  if (from >= lps_.size() || to >= lps_.size())
    throw Error("sim: add_lp_edge(" + std::to_string(from) + ", " +
                std::to_string(to) + ") references an unknown LP (" +
                std::to_string(lps_.size()) + " exist)");
  if (from == to) throw Error("sim: add_lp_edge cannot declare a self-edge");
  if (lookahead < 0.0 || std::isnan(lookahead))
    throw Error("sim: add_lp_edge lookahead must be >= 0");
  Lp::Outbox& box = lps_[from]->out[to];
  box.lookahead = lookahead;
  for (auto& [src, la] : lps_[to]->in_edges) {
    if (src == from) {
      la = lookahead;  // re-declaration overrides
      return;
    }
  }
  lps_[to]->in_edges.emplace_back(from, lookahead);
}

Lp& Engine::current_or_first() {
  return tls_current_lp != nullptr ? *tls_current_lp : *lps_[0];
}

SimTime Engine::local_now() const {
  return tls_current_lp != nullptr ? tls_current_lp->now : now_;
}

Process& Engine::spawn(std::string name, std::function<void(Context&)> body) {
  return spawn_impl(current_or_first(), std::move(name), std::move(body));
}

Process& Engine::spawn_on(std::uint32_t lp_id, std::string name,
                          std::function<void(Context&)> body) {
  if (workers_ <= 1) lp_id = 0;  // Parallel{1} degrades to the sequential path
  if (lp_id >= lps_.size())
    throw Error("sim: spawn_on(" + std::to_string(lp_id) + ") — only " +
                std::to_string(lps_.size()) + " LPs exist (ensure_lps first)");
  Lp& lp = *lps_[lp_id];
  if (tls_current_lp != nullptr && tls_current_lp != &lp)
    throw Error(
        "sim: spawn_on may only target the calling process's own LP while "
        "running (a concurrent shard's arena is not shareable)");
  return spawn_impl(lp, std::move(name), std::move(body));
}

Process& Engine::spawn_impl(Lp& lp, std::string name,
                            std::function<void(Context&)> body) {
  // Process is immovable (owns semaphores), and its ctor is private: the
  // arena hands us raw slot storage and this friend class placement-news
  // into it. Slots are recycled from finished processes.
  const bool in_process = tls_current_lp != nullptr;
  std::uint64_t pid;
  if (in_process && parallel()) {
    // Mid-run parallel spawns draw from a per-LP pid space (high bits = LP
    // id + 1) — a global counter would hand out wall-clock-ordered ids
    // across concurrently-spawning shards.
    pid = ((static_cast<std::uint64_t>(lp.id) + 1) << 40) | lp.next_local_pid++;
  } else {
    pid = next_pid_++;
  }
  auto [p, h] = lp.arena.create([&](void* mem) {
    return new (mem) Process(*this, pid, std::move(name), std::move(body));
  });
  p->lp_ = &lp;
  p->self_ = ProcessHandle{h.slot, h.gen, lp.id};
  if (check::enabled()) {
    p->check_id_ = check::register_process(p->name_);
    check::on_spawn(p->check_id_);  // parent = the spawning process, if any
  }
  if (obs::enabled()) p->obs_id_ = obs::register_context(p->name_);
  schedule_local(lp, *p, in_process ? lp.now : now_);
  return *p;
}

void Engine::enable_race_detection() {
  check::set_enabled(true);
  // Processes spawned before the switch get registered retroactively; their
  // mutual spawn edges are lost, which is conservative (more concurrency
  // reported, never less) — enable before spawning for exact edges.
  for (auto& lp : lps_) {
    lp->arena.for_each_live([](Process& p) {
      if (p.check_id_ == 0) p.check_id_ = check::register_process(p.name_);
    });
  }
}

void Engine::enable_observability() {
  obs::set_enabled(true);
  // Retroactive registration mirrors enable_race_detection: processes
  // spawned before the switch still get deterministic trace contexts
  // (ids derive from names, not registration time).
  for (auto& lp : lps_) {
    lp->arena.for_each_live([](Process& p) {
      if (p.obs_id_ == 0) p.obs_id_ = obs::register_context(p.name_);
    });
  }
}

void Engine::set_metric_sampler(SimTime interval,
                                std::function<void(SimTime)> fn) {
  if (interval <= 0.0 || !fn) {
    sampler_ = nullptr;
    sampler_interval_ = 0.0;
    return;
  }
  sampler_ = std::move(fn);
  sampler_interval_ = interval;
  sampler_next_ = 0.0;
}

Process* Engine::find(ProcessHandle h) {
  if (h.lp >= lps_.size()) return nullptr;
  return lps_[h.lp]->arena.get({h.slot, h.gen});
}

bool Engine::is_live(ProcessHandle h) const {
  if (h.lp >= lps_.size()) return false;
  return lps_[h.lp]->arena.is_live({h.slot, h.gen});
}

void Engine::schedule(Process& p, SimTime when) {
  Lp* cur = tls_current_lp;
  Lp* dst = p.lp_;
  if (cur != nullptr && dst != cur && !tearing_down_) {
    // Cross-LP wake from inside a running window: the destination shard may
    // be executing concurrently, so the wake travels through the declared
    // edge's mailbox and is applied by the destination's own scheduler.
    // (During kill_all — tearing_down_ — everything is single-threaded and
    // unwind-time notifies schedule directly, like the sequential path.)
    const ProcessHandle h = p.self_;
    route_remote(*cur, *dst, when, [this, h, when] {
      if (Process* q = find(h)) schedule_local(*q->lp_, *q, when);
    });
    return;
  }
  schedule_local(*dst, p, when);
}

void Engine::schedule_local(Lp& lp, Process& p, SimTime when) {
  p.state_ = Process::State::Ready;
  const std::uint64_t seq = lp.next_seq++;  // every schedule burns a seq
  if (p.cal_.queued) {
    // Rescheduled at the SAME time: keep the existing (earlier-seq) entry.
    // This reproduces the heap's tie-break exactly — there the older entry
    // surfaced first and the newer one was skipped as stale.
    if (p.cal_.time == when) return;
    lp.ready.erase(p);
  }
  lp.ready.insert(p, when, seq);
}

void Engine::route_remote(Lp& from, Lp& to, SimTime when,
                          std::function<void()> fn) {
  const auto it = from.out.find(to.id);
  if (it == from.out.end())
    throw Error("sim: cross-LP send " + std::to_string(from.id) + " -> " +
                std::to_string(to.id) +
                " without a declared edge (add_lp_edge)");
  Lp::Outbox& box = it->second;
  if (when < from.now + box.lookahead)
    throw Error("sim: cross-LP send on edge " + std::to_string(from.id) +
                " -> " + std::to_string(to.id) + " at t=" +
                std::to_string(when) + " violates the declared lookahead (" +
                std::to_string(box.lookahead) + " past sender LVT " +
                std::to_string(from.now) + ")");
  box.items.push_back(Delivery{when, from.id, box.next_seq++, std::move(fn)});
  if (box.items.size() >= mailbox_capacity_) {
    from.mailbox_full = true;
    // Backpressure post-mortem: snapshot the flight ring the first time a
    // mailbox fills (rate-limited inside trigger; safe from workers).
    if (obs::enabled()) obs::flight().trigger("mailbox_full");
  }
}

void Engine::post(std::uint32_t lp_id, SimTime when, std::function<void()> fn) {
  if (!fn) throw Error("sim: post with an empty function");
  if (std::isnan(when)) throw Error("sim: post at NaN time");
  if (workers_ <= 1) lp_id = 0;  // sequential degradation: one shard
  if (lp_id >= lps_.size())
    throw Error("sim: post(" + std::to_string(lp_id) + ") — only " +
                std::to_string(lps_.size()) + " LPs exist (ensure_lps first)");
  Lp& dst = *lps_[lp_id];
  Lp* cur = tls_current_lp;
  if (cur != nullptr && cur != &dst) {
    route_remote(*cur, dst, when, std::move(fn));
    return;
  }
  // Direct insert: setup code between runs, sequential engines, and
  // self-posts from the destination's own window — all single-threaded with
  // respect to `dst`. Keep the unapplied suffix sorted.
  if (when < dst.now)
    throw Error("sim: post at t=" + std::to_string(when) +
                " is before LP " + std::to_string(dst.id) + "'s LVT (" +
                std::to_string(dst.now) + ")");
  Delivery d{when, dst.id, dst.inbox_seq++, std::move(fn)};
  const auto at = std::upper_bound(dst.inbox.begin() +
                                       static_cast<std::ptrdiff_t>(dst.inbox_pos),
                                   dst.inbox.end(), d, delivery_less);
  dst.inbox.insert(at, std::move(d));
}

void Engine::post(std::uint32_t lp_id, std::function<void()> fn) {
  post(lp_id, local_now(), std::move(fn));
}

// One step of a process body: run user code, swallow teardown, capture the
// first real error. Shared by both substrates so they cannot drift.
void Engine::process_body(Process& p) {
  if (!p.kill_requested_) {
    Context ctx(*this, p);
    try {
      p.body_(ctx);
    } catch (const ProcessKilled&) {
      // Torn down by the engine; unwind silently.
    } catch (...) {
      if (!p.lp_->pending_error)
        p.lp_->pending_error = std::current_exception();
    }
  }
  p.state_ = Process::State::Finished;
}

void Engine::thread_trampoline(Process& p) {
  p.resume_.acquire();  // wait for first dispatch
  // This thread IS the logical process for its whole life, so both the race
  // detector binding and the LP binding are set once (fibers instead run on
  // whichever worker owns their LP's window, which sets tls_current_lp).
  tls_current_lp = p.lp_;
  if (p.check_id_ != 0) check::set_current_process(p.check_id_);
  process_body(p);
  p.lp_->engine_turn.release();
}

// A finished process gives everything back: its OS thread is joined, its
// detector/trace registrations dropped, and its arena slot (plus fiber
// stack, via ~Process -> ~Fiber -> StackPool::release) recycled for future
// spawns. After this any ProcessHandle to it resolves to nullptr.
void Engine::reclaim(Lp& lp, Process& p) {
  if (p.thread_.joinable()) p.thread_.join();
  if (p.check_id_ != 0) check::release_process(p.check_id_);
  if (p.obs_id_ != 0) obs::release_context(p.obs_id_);
  lp.ready.erase(p);  // defensive; a finished process holds no queue entry
  lp.arena.destroy({p.self_.slot, p.self_.gen});
}

void Engine::dispatch(Lp& lp, Process& p) {
  p.state_ = Process::State::Running;
  if (p.check_id_ != 0) check::on_dispatch(p.check_id_, lp.now);
  if (substrate_ == Substrate::Fiber) {
    if (!p.fiber_) {
      // Lazy fiber creation: entry runs process_body and returns, which
      // finishes the fiber and swaps back to this resume() call. The
      // runtime (stack pool + scheduler link) is itself created on the
      // LP's first fiber dispatch.
      if (!lp.fiber_rt) lp.fiber_rt = std::make_unique<FiberRuntime>();
      p.fiber_ =
          std::make_unique<Fiber>([this, &p] { process_body(p); }, *lp.fiber_rt);
    }
    if (p.check_id_ != 0) {
      // All fibers of an LP share its owning thread: bind the detector's
      // notion of "current process" only while this one actually runs.
      check::ScopedProcess guard(p.check_id_);
      p.fiber_->resume();  // returns when p suspends or finishes
    } else {
      p.fiber_->resume();
    }
  } else {
    if (!p.thread_.joinable()) {
      // Lazy thread start: the thread immediately blocks on resume_, so
      // creation order cannot perturb the schedule.
      p.thread_ = std::thread([this, &p] { thread_trampoline(p); });
    }
    p.resume_.release();
    lp.engine_turn.acquire();  // run exactly one step of p
  }
  // On error the process is left for kill_all (sequential: the drain loop
  // rethrows immediately; parallel: the barrier resolves the first error in
  // LP-id order).
  if (p.state_ == Process::State::Finished && !lp.pending_error)
    reclaim(lp, p);
}

void Engine::drain_sequential(SimTime t_end) {
  Lp& lp = *lps_[0];
  // The calendar queue holds each ready process exactly once (reschedules
  // move the entry in place), so every peek is live — no stale-skip loop.
  // Mailbox deliveries (post) interleave by (time; deliveries first on
  // ties, matching the parallel dispatch rule).
  for (;;) {
    const bool have_d = lp.inbox_pos < lp.inbox.size();
    const SimTime td = have_d ? lp.inbox[lp.inbox_pos].when : kInf;
    Process* top = lp.ready.peek();
    const SimTime tp = top != nullptr ? top->cal_.time : kInf;
    const bool take_delivery = have_d && td <= tp;
    const SimTime t = take_delivery ? td : tp;
    if (t == kInf) break;
    if (t > t_end) return;  // leave for a future run_until call
    now_ = std::max(now_, t);
    lp.now = now_;
    // Metric sampling runs from the scheduler, between dispatches, so it
    // observes a consistent registry and cannot perturb process schedules.
    // At most one sample per clock advance: a jump across several interval
    // boundaries emits the first missed boundary, then realigns.
    if (sampler_ && now_ >= sampler_next_) {
      sampler_(sampler_next_);
      sampler_next_ =
          (std::floor(now_ / sampler_interval_) + 1.0) * sampler_interval_;
    }
    if (take_delivery) {
      auto fn = std::move(lp.inbox[lp.inbox_pos].fn);
      ++lp.inbox_pos;
      ++lp.deliveries;
      try {
        fn();
      } catch (...) {
        if (!lp.pending_error) lp.pending_error = std::current_exception();
      }
    } else {
      lp.ready.pop();
      ++lp.dispatched;
      dispatch(lp, *top);  // may reclaim *top; not touched afterwards
    }
    if (lp.pending_error) {
      std::exception_ptr err = lp.pending_error;
      lp.pending_error = nullptr;
      kill_all();  // reclaims every process
      std::rethrow_exception(err);
    }
  }
  if (lp.inbox_pos == lp.inbox.size()) {
    lp.inbox.clear();
    lp.inbox_pos = 0;
  }

  // Final sample at drain time so the last partial interval is covered.
  if (sampler_) sampler_(now_);
  throw_if_deadlocked();
}

void Engine::run_lp_window(Lp& lp, SimTime t_end) {
  tls_current_lp = &lp;
  struct TlsGuard {
    ~TlsGuard() { tls_current_lp = nullptr; }
  } tls_guard;
  for (;;) {
    if (lp.pending_error) break;
    const bool have_d = lp.inbox_pos < lp.inbox.size();
    const SimTime td = have_d ? lp.inbox[lp.inbox_pos].when : kInf;
    Process* top = lp.ready.peek();
    const SimTime tp = top != nullptr ? top->cal_.time : kInf;
    // Deliveries apply before same-time local events: a staging store's
    // publish lands before a consumer's poll at the same instant.
    const bool take_delivery = have_d && td <= tp;
    const SimTime t = take_delivery ? td : tp;
    if (t == kInf || t > t_end) break;
    if (t > lp.window_end || (t == lp.window_end && !lp.window_inclusive))
      break;  // conservative bound: a neighbor may still emit earlier events
    if (take_delivery) {
      if (td < lp.now) {
        // A correctly-declared edge makes this impossible (the window bound
        // is derived from the same lookahead the sender promised).
        lp.pending_error = std::make_exception_ptr(Error(
            "sim: causality violation — delivery at t=" + std::to_string(td) +
            " behind LP " + std::to_string(lp.id) + "'s LVT (" +
            std::to_string(lp.now) + "); check add_lp_edge lookaheads"));
        break;
      }
      lp.now = std::max(lp.now, td);
      auto fn = std::move(lp.inbox[lp.inbox_pos].fn);
      ++lp.inbox_pos;
      ++lp.deliveries;
      fn();  // throws propagate to the worker wrapper -> lp.pending_error
    } else {
      lp.ready.pop();
      lp.now = std::max(lp.now, tp);
      ++lp.dispatched;
      dispatch(lp, *top);
    }
    if (lp.mailbox_full) {
      // Backpressure: stop at the next dispatch boundary so the barrier can
      // drain this LP's outboxes. Nothing is dropped.
      lp.mailbox_full = false;
      break;
    }
  }
}

void Engine::drain_parallel(SimTime t_end) {
  if (!pool_) pool_ = std::make_unique<Pool>(*this, workers_);
  std::vector<Lp*> batch;
  std::uint64_t rounds = 0;
  std::uint64_t fallback_rounds = 0;
  std::uint64_t deliveries_before = 0;
  for (auto& lp : lps_) deliveries_before += lp->deliveries;
  bool hit_t_end = false;

  // Parallel-DES profiler (DESIGN.md §4.13), armed runs only. Series refs
  // are resolved once — registry nodes are stable — and every observation
  // rides the obs side channels canonical fingerprints exclude, so arming
  // cannot shift results. The series are named sim_* on purpose: round
  // structure legitimately varies with worker count, and the flight
  // recorder's worker-invariant dump skips that prefix.
  const bool profiled = obs::enabled();
  obs::BucketHistogram* prof_lps_per_round = nullptr;
  obs::BucketHistogram* prof_round_events = nullptr;
  obs::BucketHistogram* prof_mailbox_depth = nullptr;
  obs::BucketHistogram* prof_lookahead_idle = nullptr;
  obs::Gauge* prof_depth_max = nullptr;
  obs::Counter* prof_null_rounds = nullptr;
  obs::Counter* prof_lookahead_stalls = nullptr;
  if (profiled) {
    // Count-valued histograms get power-of-two count bounds; the latency
    // default (1 µs base) would waste all its resolution.
    std::vector<double> count_bounds;
    for (double b = 1.0; b <= double(1 << 20); b *= 2.0)
      count_bounds.push_back(b);
    obs::Registry& reg = obs::registry();
    prof_lps_per_round =
        &reg.histogram("sim_parallel_lps_per_round", {}, count_bounds);
    prof_round_events =
        &reg.histogram("sim_parallel_round_events", {}, count_bounds);
    prof_mailbox_depth =
        &reg.histogram("sim_parallel_mailbox_depth", {}, count_bounds);
    prof_lookahead_idle = &reg.histogram("sim_parallel_lookahead_idle_seconds");
    prof_depth_max = &reg.gauge("sim_parallel_mailbox_depth_max");
    prof_null_rounds = &reg.counter("sim_parallel_null_rounds_total");
    prof_lookahead_stalls =
        &reg.counter("sim_parallel_lookahead_stalls_total");
  }
  struct LpBefore {
    SimTime now = 0.0;
    std::uint64_t events = 0;
  };
  std::vector<LpBefore> before;

  for (;;) {
    // Barrier, step 1: move every outbox into its destination's inbox, then
    // restore each dirty inbox's (when, src LP, emission seq) order — a
    // total order independent of which round a delivery arrived in.
    for (auto& src : lps_) {
      for (auto& [dst_id, box] : src->out) {
        if (box.items.empty()) continue;
        Lp& dst = *lps_[dst_id];
        dst.inbox.insert(dst.inbox.end(),
                         std::make_move_iterator(box.items.begin()),
                         std::make_move_iterator(box.items.end()));
        box.items.clear();
        dst.inbox_dirty = true;
      }
    }
    for (auto& lp : lps_) {
      if (lp->inbox_dirty) {
        lp->inbox.erase(lp->inbox.begin(),
                        lp->inbox.begin() +
                            static_cast<std::ptrdiff_t>(lp->inbox_pos));
        lp->inbox_pos = 0;
        std::stable_sort(lp->inbox.begin(), lp->inbox.end(), delivery_less);
        lp->inbox_dirty = false;
      } else if (lp->inbox_pos == lp->inbox.size() && !lp->inbox.empty()) {
        lp->inbox.clear();
        lp->inbox_pos = 0;
      }
    }

    // Step 2: every LP's next-event time; the global minimum is the
    // conservative clock floor.
    SimTime t_min = kInf;
    for (auto& lp : lps_) {
      Process* top = lp->ready.peek();
      SimTime n = top != nullptr ? top->cal_.time : kInf;
      if (lp->inbox_pos < lp->inbox.size())
        n = std::min(n, lp->inbox[lp->inbox_pos].when);
      lp->next_time = n;
      t_min = std::min(t_min, n);
    }
    if (t_min == kInf) break;  // fully drained
    if (t_min > t_end) {
      hit_t_end = true;  // run_until: leave future events queued
      break;
    }
    now_ = std::max(now_, t_min);

    // Step 3: sample at the barrier against the conservative global clock.
    // Counter values reflect exactly the rounds completed so far — a pure
    // function of virtual state, hence worker-count independent.
    if (sampler_ && now_ >= sampler_next_) {
      sampler_(sampler_next_);
      sampler_next_ =
          (std::floor(now_ / sampler_interval_) + 1.0) * sampler_interval_;
    }

    // Step 4: conservative windows. LP i may dispatch strictly below
    // min over in-edges (j -> i) of n_j + lookahead_ji — neighbor j cannot
    // emit anything earlier — further capped by the round time-quantum.
    const SimTime quantum_end = window_ > 0.0 ? t_min + window_ : kInf;
    batch.clear();
    for (auto& lp : lps_) {
      SimTime bound = quantum_end;
      for (const auto& [src, la] : lp->in_edges)
        bound = std::min(bound, lps_[src]->next_time + la);
      lp->window_end = bound;
      lp->window_inclusive = false;
      if (lp->next_time < bound) batch.push_back(lp.get());
    }
    ++rounds;
    if (batch.empty()) {
      // Every minimal LP is bounded at its own next-event time (a
      // 0-lookahead wait cycle at t_min). Null-message progress fallback:
      // the lowest-id LP holding the global minimum runs events at exactly
      // t_min. Deterministic — depends only on virtual state.
      ++fallback_rounds;
      for (auto& lp : lps_) {
        if (lp->next_time == t_min) {
          lp->window_end = t_min;
          lp->window_inclusive = true;
          batch.push_back(lp.get());
          break;
        }
      }
    }

    if (profiled) {
      before.clear();
      for (Lp* lp : batch)
        before.push_back({lp->now, lp->dispatched + lp->deliveries});
      prof_lps_per_round->observe_at(double(batch.size()), t_min);
      std::size_t depth_max = 0;
      for (auto& lp : lps_) {
        const std::size_t depth = lp->inbox.size() - lp->inbox_pos;
        depth_max = std::max(depth_max, depth);
        prof_mailbox_depth->observe_at(double(depth), t_min);
        // Lookahead-limited stall: the LP has pending work it may not run
        // this round because a neighbor's promise caps its window below
        // its own next event. The idle measure is how far beyond the
        // conservative floor that work is forced to wait.
        if (lp->next_time != kInf && lp->next_time >= lp->window_end &&
            !lp->window_inclusive) {
          prof_lookahead_stalls->inc_at(1.0, t_min);
          prof_lookahead_idle->observe_at(lp->next_time - t_min, t_min);
        }
      }
      prof_depth_max->set_at(double(depth_max), t_min);
    }

    // Step 5: execute the round. Single-LP rounds run inline — no reason to
    // pay the pool wake-up.
    if (batch.size() == 1) {
      Lp& only = *batch[0];
      try {
        run_lp_window(only, t_end);
      } catch (...) {
        if (!only.pending_error) only.pending_error = std::current_exception();
      }
    } else {
      pool_->run_round(batch, t_end);
    }

    if (profiled) {
      std::uint64_t round_events = 0;
      for (std::size_t i = 0; i < batch.size(); ++i) {
        Lp* lp = batch[i];
        const std::uint64_t ev =
            lp->dispatched + lp->deliveries - before[i].events;
        round_events += ev;
        // Perfetto LP tracks: one labeled span per LP per round it actually
        // advanced in, with a deterministic id (round x LP, never worker).
        if (trace_ != nullptr && ev != 0) {
          LabeledSpan span;
          span.track = "lp" + std::to_string(lp->id);
          span.category = "lp_window";
          span.start = before[i].now;
          span.end = lp->now;
          span.span_id =
              util::mix64(0x0b5f11e700000000ull ^ (rounds * 8191ull + lp->id));
          span.labels = {{"round", std::to_string(rounds)},
                         {"events", std::to_string(ev)}};
          trace_->record_labeled_span(std::move(span));
        }
      }
      prof_round_events->observe_at(double(round_events), t_min);
      if (round_events == 0) prof_null_rounds->inc_at(1.0, t_min);
    }

    // Step 6: resolve errors deterministically — the lowest-LP-id error
    // wins regardless of which worker hit it first in wall time.
    for (auto& lp : lps_) {
      if (!lp->pending_error) continue;
      std::exception_ptr err = lp->pending_error;
      for (auto& l2 : lps_) l2->pending_error = nullptr;
      kill_all();
      std::rethrow_exception(err);
    }
  }

  // Makespan: the furthest any LP ran (now_ tracked only the conservative
  // floor during the run).
  for (auto& lp : lps_) now_ = std::max(now_, lp->now);

  if (obs::enabled()) {
    std::uint64_t deliveries = 0;
    for (auto& lp : lps_) deliveries += lp->deliveries;
    obs::Registry& reg = obs::registry();
    reg.counter("sim_parallel_rounds_total").inc(static_cast<double>(rounds));
    reg.counter("sim_parallel_fallback_rounds_total")
        .inc(static_cast<double>(fallback_rounds));
    reg.counter("sim_parallel_deliveries_total")
        .inc(static_cast<double>(deliveries - deliveries_before));
    reg.gauge("sim_parallel_lps").set(static_cast<double>(lps_.size()));
    reg.gauge("sim_parallel_workers").set(static_cast<double>(workers_));
  }

  if (hit_t_end) return;
  if (sampler_) sampler_(now_);
  throw_if_deadlocked();
}

void Engine::drain(SimTime t_end) {
  if (running_) throw Error("sim: Engine::run is not reentrant");
  running_ = true;
  struct Guard {
    bool& flag;
    ~Guard() { flag = false; }
  } guard{running_};
  if (parallel() && lps_.size() > 1)
    drain_parallel(t_end);
  else
    drain_sequential(t_end);
}

void Engine::run() { drain(kInf); }

void Engine::run_until(SimTime t_end) { drain(t_end); }

void Engine::throw_if_deadlocked() {
  // Nothing runnable. Any live, blocked processes mean deadlock. (Finished
  // processes were reclaimed at dispatch, so the live set is exactly the
  // blocked ones plus, under run_until, not-yet-due ones.)
  std::string blocked;
  for (auto& lp : lps_) {
    lp->arena.for_each_live([&](Process& p) {
      if (p.state_ == Process::State::Blocked) {
        if (!blocked.empty()) blocked += ", ";
        blocked += p.name_;
      }
    });
  }
  if (!blocked.empty())
    throw DeadlockError("sim: deadlock — processes blocked on events: " +
                        blocked);
}

std::uint64_t Engine::dispatched_events() const {
  std::uint64_t total = 0;
  for (const auto& lp : lps_) total += lp->dispatched;
  return total;
}

std::size_t Engine::live_process_count() const {
  std::size_t total = 0;
  for (const auto& lp : lps_) total += lp->arena.live();
  return total;
}

std::size_t Engine::process_slots() const {
  std::size_t total = 0;
  for (const auto& lp : lps_) total += lp->arena.capacity();
  return total;
}

Engine::FiberStats Engine::fiber_stats() const {
  FiberStats out;
  for (const auto& lp : lps_) {
    if (!lp->fiber_rt) continue;  // no fiber dispatched (or Thread substrate)
    const StackPool::Stats& s = lp->fiber_rt->pool.stats();
    out.stacks_acquired += s.acquires;
    out.stack_pool_hits += s.pool_hits;
    out.stack_slabs += s.slabs;
    out.stack_bytes_mapped += s.mapped_bytes;
    out.stacks_pooled += s.pooled;
    out.stacks_guarded += s.guarded;
  }
  return out;
}

void Engine::kill_all() {
  tearing_down_ = true;
  struct Guard {
    bool& flag;
    ~Guard() { flag = false; }
  } guard{tearing_down_};
  for (auto& lp : lps_) {
    lp->ready.clear();
    lp->inbox.clear();
    lp->inbox_pos = 0;
    for (auto& [dst, box] : lp->out) box.items.clear();
  }
  // Phase 1: unwind every unfinished process. Unwinding runs destructors on
  // the process stack, which may legally notify Events — i.e. schedule other
  // processes, including across LPs (everything is single-threaded here, so
  // those wakes apply directly) — so every record must stay alive until all
  // unwinds are done.
  for (auto& lp : lps_) {
    lp->arena.for_each_live([&](Process& p) {
      if (p.state_ == Process::State::Finished) return;
      p.kill_requested_ = true;
      if (substrate_ == Substrate::Fiber) {
        if (p.fiber_ && !p.fiber_->finished()) {
          // The fiber is parked in suspend(); resuming lets it observe the
          // kill flag, throw ProcessKilled, unwind its stack, and finish.
          p.fiber_->resume();
        }
      } else if (p.thread_.joinable()) {
        // The thread is parked on resume_; release it so it can observe the
        // kill flag, unwind, and hand the baton back.
        p.resume_.release();
        p.lp_->engine_turn.acquire();
      }
      p.state_ = Process::State::Finished;
    });
  }
  // Phase 2: reclaim everything (for_each_live tolerates destroy-in-visit).
  for (auto& lp : lps_) {
    lp->arena.for_each_live([&](Process& p) { reclaim(*lp, p); });
  }
}

}  // namespace simai::sim
