#include "sim/fiber.hpp"

#include <sys/mman.h>
#include <unistd.h>

#include <cassert>
#include <cstdint>
#include <cstdlib>
#include <exception>

#include "util/error.hpp"

// ASan detection across GCC (__SANITIZE_ADDRESS__) and Clang (__has_feature).
#if defined(__SANITIZE_ADDRESS__)
#define SIMAI_FIBER_ASAN 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define SIMAI_FIBER_ASAN 1
#endif
#endif

#if defined(SIMAI_FIBER_ASAN)
#include <sanitizer/common_interface_defs.h>
#endif

namespace simai::sim {

namespace {

// ASan's fiber-switch protocol: announce the destination stack before the
// swap, then report where we came from right after landing. No-ops in
// plain builds so the hot path stays two swapcontext calls.
inline void sanitizer_start_switch(void** fake_stack_save, const void* bottom,
                                   std::size_t size) {
#if defined(SIMAI_FIBER_ASAN)
  __sanitizer_start_switch_fiber(fake_stack_save, bottom, size);
#else
  (void)fake_stack_save;
  (void)bottom;
  (void)size;
#endif
}

inline void sanitizer_finish_switch(void* fake_stack_save,
                                    const void** old_bottom,
                                    std::size_t* old_size) {
#if defined(SIMAI_FIBER_ASAN)
  __sanitizer_finish_switch_fiber(fake_stack_save, old_bottom, old_size);
#else
  (void)fake_stack_save;
  (void)old_bottom;
  (void)old_size;
#endif
}

std::size_t page_size() {
  static const std::size_t page =
      static_cast<std::size_t>(::sysconf(_SC_PAGESIZE));
  return page;
}

std::size_t round_up_to_page(std::size_t bytes) {
  const std::size_t page = page_size();
  return (bytes + page - 1) / page * page;
}

// makecontext only forwards ints, so the Fiber* rides in two halves.
static_assert(sizeof(void*) == 8, "fiber trampoline assumes 64-bit pointers");
Fiber* unsplit(unsigned int hi, unsigned int lo) {
  const std::uintptr_t bits =
      (static_cast<std::uintptr_t>(hi) << 32) | static_cast<std::uintptr_t>(lo);
  return reinterpret_cast<Fiber*>(bits);
}

}  // namespace

Fiber::Fiber(std::function<void()> entry, std::size_t stack_bytes)
    : entry_(std::move(entry)) {
  stack_bytes_ =
      round_up_to_page(stack_bytes ? stack_bytes : default_stack_bytes());
  mapping_bytes_ = stack_bytes_ + page_size();  // +1 guard page below
  void* m = ::mmap(nullptr, mapping_bytes_, PROT_READ | PROT_WRITE,
                   MAP_PRIVATE | MAP_ANONYMOUS | MAP_STACK, -1, 0);
  if (m == MAP_FAILED)
    throw Error("fiber: mmap of " + std::to_string(mapping_bytes_) +
                "-byte stack failed");
  mapping_ = static_cast<std::byte*>(m);
  // Guard page: overflowing the fiber stack faults instead of silently
  // corrupting the adjacent mapping.
  ::mprotect(mapping_, page_size(), PROT_NONE);
  stack_bottom_ = mapping_ + page_size();

  if (::getcontext(&ctx_) != 0) throw Error("fiber: getcontext failed");
  ctx_.uc_stack.ss_sp = stack_bottom_;
  ctx_.uc_stack.ss_size = stack_bytes_;
  ctx_.uc_link = &link_;  // safety net; run() swaps back explicitly
  const auto bits = reinterpret_cast<std::uintptr_t>(this);
  ::makecontext(&ctx_, reinterpret_cast<void (*)()>(&Fiber::trampoline), 2,
                static_cast<unsigned int>(bits >> 32),
                static_cast<unsigned int>(bits & 0xFFFFFFFFu));
}

Fiber::~Fiber() {
  // The engine unwinds every fiber (kill_all) before destruction; a
  // suspended fiber reaching this point just loses its stack contents.
  if (mapping_) ::munmap(mapping_, mapping_bytes_);
}

std::size_t Fiber::default_stack_bytes() {
  if (const char* env = std::getenv("SIMAI_SIM_STACK_KB")) {
    const long kb = std::atol(env);
    if (kb > 0) return static_cast<std::size_t>(kb) * 1024;
  }
#if defined(SIMAI_FIBER_ASAN)
  return 1024 * 1024;
#else
  return 256 * 1024;
#endif
}

void Fiber::trampoline(unsigned int hi, unsigned int lo) {
  unsplit(hi, lo)->run();
}

void Fiber::run() {
  // First moments on the fiber stack: tell ASan the switch landed and
  // learn the resumer's stack bounds for the switch back.
  sanitizer_finish_switch(nullptr, &peer_stack_bottom_, &peer_stack_size_);
  entry_();
  finished_ = true;
  running_ = false;
  // Dying switch: fake_stack_save == nullptr tells ASan to release this
  // fiber's fake stack instead of preserving it for a future resume.
  sanitizer_start_switch(nullptr, peer_stack_bottom_, peer_stack_size_);
  ::swapcontext(&ctx_, &link_);
  assert(false && "finished fiber must not be resumed");
  std::terminate();
}

void Fiber::resume() {
  assert(!running_ && "resume() called on-fiber");
  assert(!finished_ && "resume() called on a finished fiber");
  started_ = true;
  running_ = true;
  sanitizer_start_switch(&resume_fake_stack_, stack_bottom_, stack_bytes_);
  ::swapcontext(&link_, &ctx_);
  sanitizer_finish_switch(resume_fake_stack_, nullptr, nullptr);
}

void Fiber::suspend() {
  assert(running_ && "suspend() called off-fiber");
  running_ = false;
  sanitizer_start_switch(&fiber_fake_stack_, peer_stack_bottom_,
                         peer_stack_size_);
  ::swapcontext(&ctx_, &link_);
  // Resumed again: refresh the resumer's stack bounds (same scheduler
  // stack in practice, but run()/run_until() frames may differ).
  sanitizer_finish_switch(fiber_fake_stack_, &peer_stack_bottom_,
                          &peer_stack_size_);
  running_ = true;
}

}  // namespace simai::sim
