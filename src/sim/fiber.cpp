#include "sim/fiber.hpp"

#include <sys/mman.h>
#include <unistd.h>

#include <cassert>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <string>

#include "util/error.hpp"

// ASan detection across GCC (__SANITIZE_ADDRESS__) and Clang (__has_feature).
#if defined(__SANITIZE_ADDRESS__)
#define SIMAI_FIBER_ASAN 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define SIMAI_FIBER_ASAN 1
#endif
#endif

#if defined(SIMAI_FIBER_ASAN)
#include <sanitizer/common_interface_defs.h>
#endif

namespace simai::sim {

namespace {

// ASan's fiber-switch protocol: announce the destination stack before the
// swap, then report where we came from right after landing. No-ops in
// plain builds so the hot path stays two swapcontext calls.
inline void sanitizer_start_switch(void** fake_stack_save, const void* bottom,
                                   std::size_t size) {
#if defined(SIMAI_FIBER_ASAN)
  __sanitizer_start_switch_fiber(fake_stack_save, bottom, size);
#else
  (void)fake_stack_save;
  (void)bottom;
  (void)size;
#endif
}

inline void sanitizer_finish_switch(void* fake_stack_save,
                                    const void** old_bottom,
                                    std::size_t* old_size) {
#if defined(SIMAI_FIBER_ASAN)
  __sanitizer_finish_switch_fiber(fake_stack_save, old_bottom, old_size);
#else
  (void)fake_stack_save;
  (void)old_bottom;
  (void)old_size;
#endif
}

std::size_t page_size() {
  static const std::size_t page =
      static_cast<std::size_t>(::sysconf(_SC_PAGESIZE));
  return page;
}

std::size_t round_up_to_page(std::size_t bytes) {
  const std::size_t page = page_size();
  return (bytes + page - 1) / page * page;
}

// makecontext only forwards ints, so the Fiber* rides in two halves.
static_assert(sizeof(void*) == 8, "fiber trampoline assumes 64-bit pointers");
Fiber* unsplit(unsigned int hi, unsigned int lo) {
  const std::uintptr_t bits =
      (static_cast<std::uintptr_t>(hi) << 32) | static_cast<std::uintptr_t>(lo);
  return reinterpret_cast<Fiber*>(bits);
}

}  // namespace

namespace detail {

std::uint64_t parse_env_u64(const char* name, const char* value,
                            std::uint64_t lo, std::uint64_t hi,
                            const char* prefix) {
  errno = 0;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(value, &end, 10);
  // strtoull is too lenient for a config knob: it skips leading whitespace,
  // accepts a sign (silently wrapping negatives), and stops at trailing
  // junk. Require pure digits, in range.
  const bool leading_junk = value[0] < '0' || value[0] > '9';
  if (leading_junk || errno == ERANGE || end == value || *end != '\0' ||
      parsed < lo || parsed > hi) {
    throw Error(std::string(prefix) + ": invalid " + name + "='" + value +
                "' (expected an integer in [" + std::to_string(lo) + ", " +
                std::to_string(hi) + "])");
  }
  return parsed;
}

}  // namespace detail

namespace {
using detail::parse_env_u64;
}  // namespace

// ---------------------------------------------------------------------------
// StackPool
// ---------------------------------------------------------------------------

StackPool::StackPool() {
  guard_budget_ = 8192;
  if (const char* env = std::getenv("SIMAI_SIM_STACK_GUARDS")) {
    if (*env != '\0')
      guard_budget_ = static_cast<std::size_t>(
          parse_env_u64("SIMAI_SIM_STACK_GUARDS", env, 0, 1u << 20));
  }
}

StackPool::~StackPool() {
  for (const auto& [base, bytes] : slabs_) ::munmap(base, bytes);
}

StackPool::Stack StackPool::acquire(std::size_t bytes) {
  bytes = round_up_to_page(bytes);
  SizeClass& cls = classes_[bytes];
  ++stats_.acquires;

  if (!cls.free.empty()) {
    std::byte* base = cls.free.back();
    cls.free.pop_back();
    ++stats_.pool_hits;
    --stats_.pooled;
    return Stack{base, bytes};
  }

  // Every slot reserves a leading page so guarded and guardless stacks
  // share one stride (and one free list) per size class.
  const std::size_t stride = bytes + page_size();
  if (static_cast<std::size_t>(cls.bump_end - cls.bump) < stride) {
    const std::size_t slots = cls.slab_slots;
    if (cls.slab_slots < kMaxSlabSlots) cls.slab_slots *= 2;
    const std::size_t slab_bytes = stride * slots;
    void* m = ::mmap(nullptr, slab_bytes, PROT_READ | PROT_WRITE,
                     MAP_PRIVATE | MAP_ANONYMOUS | MAP_STACK | MAP_NORESERVE,
                     -1, 0);
    if (m == MAP_FAILED)
      throw Error("fiber: mmap of " + std::to_string(slab_bytes) +
                  "-byte stack slab failed");
    slabs_.emplace_back(static_cast<std::byte*>(m), slab_bytes);
    ++stats_.slabs;
    stats_.mapped_bytes += slab_bytes;
    cls.bump = static_cast<std::byte*>(m);
    cls.bump_end = cls.bump + slab_bytes;
  }

  std::byte* slot = cls.bump;
  cls.bump += stride;
  if (stats_.guarded < guard_budget_) {
    // Guard page: overflowing this stack faults instead of silently
    // corrupting the neighboring one. Each guard splits the slab mapping,
    // costing kernel VMA slots — hence the budget.
    if (::mprotect(slot, page_size(), PROT_NONE) == 0) ++stats_.guarded;
  }
  return Stack{slot + page_size(), bytes};
}

void StackPool::release(Stack s) {
  if (!s.base) return;
  classes_[s.bytes].free.push_back(s.base);
  ++stats_.pooled;
}

// ---------------------------------------------------------------------------
// Fiber
// ---------------------------------------------------------------------------

Fiber::Fiber(std::function<void()> entry, FiberRuntime& runtime,
             std::size_t stack_bytes)
    : entry_(std::move(entry)), runtime_(runtime) {
  stack_ =
      runtime_.pool.acquire(stack_bytes ? stack_bytes : default_stack_bytes());
  if (::getcontext(&ctx_) != 0) throw Error("fiber: getcontext failed");
  ctx_.uc_stack.ss_sp = stack_.base;
  ctx_.uc_stack.ss_size = stack_.bytes;
  ctx_.uc_link = &runtime_.sched_link;  // safety net; run() swaps explicitly
  const auto bits = reinterpret_cast<std::uintptr_t>(this);
  ::makecontext(&ctx_, reinterpret_cast<void (*)()>(&Fiber::trampoline), 2,
                static_cast<unsigned int>(bits >> 32),
                static_cast<unsigned int>(bits & 0xFFFFFFFFu));
}

Fiber::~Fiber() {
  // The engine unwinds every fiber (kill_all) before destruction; a
  // suspended fiber reaching this point just loses its stack contents.
  // The faulted-in pages go back to the pool for the next fiber.
  runtime_.pool.release(stack_);
}

std::size_t Fiber::default_stack_bytes() {
  if (const char* env = std::getenv("SIMAI_SIM_STACK_KB")) {
    if (*env != '\0') {
      // 16 KiB floor: below that even the entry trampoline may not fit.
      // 4 GiB ceiling: catches "bytes where KiB was meant" typos.
      const std::uint64_t kb =
          parse_env_u64("SIMAI_SIM_STACK_KB", env, 16, 4ull * 1024 * 1024);
      return static_cast<std::size_t>(kb) * 1024;
    }
  }
#if defined(SIMAI_FIBER_ASAN)
  return 1024 * 1024;
#else
  return 256 * 1024;
#endif
}

void Fiber::trampoline(unsigned int hi, unsigned int lo) {
  unsplit(hi, lo)->run();
}

void Fiber::run() {
  // First moments on the fiber stack: tell ASan the switch landed and
  // learn the resumer's stack bounds for the switch back.
  sanitizer_finish_switch(nullptr, &peer_stack_bottom_, &peer_stack_size_);
  entry_();
  finished_ = true;
  running_ = false;
  // Dying switch: fake_stack_save == nullptr tells ASan to release this
  // fiber's fake stack instead of preserving it for a future resume.
  sanitizer_start_switch(nullptr, peer_stack_bottom_, peer_stack_size_);
  ::swapcontext(&ctx_, &runtime_.sched_link);
  assert(false && "finished fiber must not be resumed");
  std::terminate();
}

void Fiber::resume() {
  assert(!running_ && "resume() called on-fiber");
  assert(!finished_ && "resume() called on a finished fiber");
  started_ = true;
  running_ = true;
  sanitizer_start_switch(&resume_fake_stack_, stack_.base, stack_.bytes);
  ::swapcontext(&runtime_.sched_link, &ctx_);
  sanitizer_finish_switch(resume_fake_stack_, nullptr, nullptr);
}

void Fiber::suspend() {
  assert(running_ && "suspend() called off-fiber");
  running_ = false;
  sanitizer_start_switch(&fiber_fake_stack_, peer_stack_bottom_,
                         peer_stack_size_);
  ::swapcontext(&ctx_, &runtime_.sched_link);
  // Resumed again: refresh the resumer's stack bounds (same scheduler
  // stack in practice, but run()/run_until() frames may differ).
  sanitizer_finish_switch(fiber_fake_stack_, &peer_stack_bottom_,
                          &peer_stack_size_);
  running_ = true;
}

}  // namespace simai::sim
