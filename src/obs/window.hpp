// Windowed time-series queries for the observability plane (DESIGN.md
// §4.13): the live half of obs — per-backend transport latencies, retry
// rates, and byte counts aggregated into fixed virtual-time windows that an
// in-run consumer (a transport-steering policy, serve admission control, a
// test) can poll *during* the run.
//
// Model: every metrics hook that knows the virtual clock observes through
// the *_at variants (Counter::inc_at, Gauge::set_at,
// BucketHistogram::observe_at), which additionally land the observation in
// window floor(t / window_width()). Windows are derived purely from the
// observation timestamps — no engine events, no extra processes — so
// windowed mode costs zero virtual time and cannot perturb results:
// canonical fingerprints stay byte-identical with windowing on or off.
//
// Width comes from SIMAI_OBS_WINDOW (virtual seconds, parsed at static
// init like SIMAI_OBS_INTERVAL) or set_window(); 0 disables windowing, and
// disabled accrual is a single double comparison per observation.
//
// MetricsView is the read side: lock-cheap (one registry lock to find a
// series + one series lock to copy its cells — never the engine), safe to
// call from any process mid-run, and deterministic: per-window counts,
// bucket tallies, and maxima are order-independent accumulations, so two
// runs of the same seed agree exactly at any poll point.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.hpp"

namespace simai::obs {

/// Current window width in virtual seconds; 0 = windowing off.
double window_width();
/// Override the width (<= 0 disables). Takes effect for subsequent
/// observations; changing width mid-run splits series across widths, so
/// set it before the run (obs::reset() restores the environment value).
void set_window(double seconds);

/// One aggregated window of one series, resolved for queries.
struct WindowStats {
  std::int64_t index = 0;  // floor(t / width)
  double start = 0.0;      // index * width
  double end = 0.0;        // start + width
  double count = 0.0;
  double sum = 0.0;
  double max = 0.0;
  double p50 = 0.0;  // histogram series only (0 otherwise)
  double p95 = 0.0;
};

/// Live windowed-metrics query API. All methods are static and act on the
/// process-global registry; construction is not needed. Results are copies
/// — hold them as long as convenient.
class MetricsView {
 public:
  /// Windows of the series matching `name` + `labels`, oldest first.
  /// Matching ignores labels stamped by Registry::set_common_label: a
  /// series matches when its canonical key carries every *given* label.
  /// Empty when no such series exists or windowing is off.
  static std::vector<WindowStats> series_windows(std::string_view name,
                                                 const Labels& labels = {});

  /// The single window covering virtual time `t` (zeroed stats with the
  /// right index/bounds when nothing landed in it yet).
  static WindowStats window_at(std::string_view name, const Labels& labels,
                               double t);

  /// Per-window transport view for one backend — the shape the steering
  /// policy consumes. Latency quantiles come from
  /// transport_{write,read}_seconds{backend=...}; ops / bytes / retries are
  /// merged in from the sibling counters' windows of the same backend.
  struct TransportWindow {
    std::int64_t index = 0;
    double start = 0.0;
    double end = 0.0;
    double ops = 0.0;
    double bytes = 0.0;
    double retries = 0.0;
    double p50 = 0.0;
    double p95 = 0.0;
  };
  /// `op` is "write" or "read"; windows ordered oldest first.
  static std::vector<TransportWindow> transport_windows(
      std::string_view backend, std::string_view op);
};

}  // namespace simai::obs
