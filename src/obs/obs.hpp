// simai::obs — the observability plane: causal tracing + labeled metrics.
//
// The paper's whole argument is about *where virtual time goes* — per-backend
// send/receive latencies as functions of message size and node count (Figs.
// 3–6). This layer makes those costs observable per run instead of
// eyeballed from aggregates, with two halves:
//
//  * Causal tracing. Every sim::Process carries a TraceContext (a stable
//    trace id derived from the process name plus a step counter), registered
//    by the engine when the plane is armed. The data plane — DataStore
//    stage_write/stage_read, Stream publish/poll — derives child span and
//    flow ids from that context and records labeled spans into the run's
//    TraceRecorder. A write→read hand-off on the same key shares a flow id
//    (published here, looked up by the reader), which the Chrome export
//    renders as a flow arrow ("s"/"f" events) from the producer's write
//    span to the consumer's read span.
//
//  * Labeled metrics. A process-global Registry (obs/metrics.hpp) of
//    counters / gauges / fixed-bucket histograms keyed by (name, labels),
//    e.g. transport_read_seconds{backend="redis",pattern="1"}. The engine
//    samples scalar series at virtual-time intervals; samples export as
//    Chrome counter ("C") events and the registry snapshot lands in the run
//    report's "metrics" section.
//
// Determinism contract: ids derive from process names and per-process step
// counters — never wall clock or addresses — so an armed run produces the
// byte-identical trace on every execution, and arming the plane never
// touches virtual time: canonical timeline fingerprints are identical with
// observability on and off (tests/obs_test.cpp holds this).
//
// Cost model (mirrors simai::check): everything is OFF by default; every
// hook is an inline relaxed-atomic load + branch. Arm per engine with
// Engine::enable_observability() or process-wide with SIMAI_OBS=1.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>

namespace simai::obs {

/// Per-logical-process trace context, carried in the engine's process state
/// (sim::Process) and reached from operation code via sim::Context::obs_id().
struct TraceContext {
  std::uint64_t trace_id = 0;  // stable hash of the process name
  std::uint64_t next_seq = 0;  // per-process step counter feeding span ids
  std::string process;         // owning process name (the track label)
};

namespace detail {
extern std::atomic<bool> g_enabled;
void count_kv_impl(std::string_view store, std::string_view op,
                   std::uint64_t bytes);
}  // namespace detail

/// Fast global switch — the only cost instrumented code pays when off.
inline bool enabled() {
  return detail::g_enabled.load(std::memory_order_relaxed);
}

/// Arm/disarm process-wide. SIMAI_OBS=1 in the environment arms the plane
/// at static-initialization time (any value other than "" / "0").
void set_enabled(bool on);

/// Register a logical process; returns its context id (0 is "none"). Called
/// by the engine at spawn time while the plane is armed. Ids of released
/// contexts are recycled, so the table is bounded by LIVE processes.
std::uint32_t register_context(const std::string& process_name);

/// Drop the context behind `id` and recycle the id. Called by the engine
/// when a process finishes; no-op for 0 / unknown / already-released ids.
/// Span/flow ids never depend on the numeric id (they derive from the
/// process name), so recycling cannot perturb traces.
void release_context(std::uint32_t id);

/// Context for an id from register_context; nullptr for 0 / unknown ids.
TraceContext* context(std::uint32_t id);

/// Next deterministic span/flow id for a context: a mix of the name-derived
/// trace id and the per-process step counter. Never 0.
std::uint64_t next_span_id(TraceContext& ctx);

// -- flow hand-off table ------------------------------------------------------
//
// A producer's stage_write publishes its flow id under (store, key); the
// consumer's stage_read of the same key on the same backing store looks it
// up and anchors the matching flow-finish event. The store pointer scopes
// keys to one backing store instance, so concurrent experiments in one
// process cannot cross-link.

void publish_flow(const void* store, std::string_view key,
                  std::uint64_t flow_id);
/// 0 when no producer published this key (e.g. the plane was armed late).
std::uint64_t find_flow(const void* store, std::string_view key);

// -- kv backend hook ----------------------------------------------------------

/// Count one backend-level store operation into the registry
/// (kv_ops_total{store,op} / kv_bytes_total{store,op}). Inline no-op while
/// the plane is disarmed; called by all kv backends.
inline void count_kv(std::string_view store, std::string_view op,
                     std::uint64_t bytes = 0) {
  if (enabled()) detail::count_kv_impl(store, op, bytes);
}

// -- sampling -----------------------------------------------------------------

/// Virtual-time spacing of engine counter samples (default 1.0 s; override
/// with SIMAI_OBS_INTERVAL or set_sample_interval).
double sample_interval();
void set_sample_interval(double seconds);

// Windowed time-series live in obs/window.hpp (SIMAI_OBS_WINDOW arms
// them); the flight recorder lives in obs/flight.hpp (SIMAI_OBS_FLIGHT
// sizes its ring). Both are part of this plane and cleared by reset().

/// Drop all plane state (contexts, flow table, metrics registry, interval,
/// flight-recorder ring; the window width reverts to the environment
/// default). Call between independent runs in one process when
/// deterministic ids and a fresh registry matter (tests do).
void reset();

}  // namespace simai::obs
