// Flight recorder (DESIGN.md §4.13): a bounded ring of the most recent
// labeled spans plus current window snapshots, dumped automatically when
// something goes wrong — a fault-plane component failure, mailbox_full
// backpressure in the parallel dispatcher, or a serving-plane SLO breach —
// so a post-mortem has the last moments of the run without re-running with
// full tracing armed.
//
// Determinism contract: "most recent" means most recent in *virtual* time,
// not insertion order. Entries are kept in a canonical order keyed by
// (end, start, track, category, span id), and eviction drops the entry
// with the smallest virtual end time — a pure function of the run's span
// multiset, independent of which worker thread recorded what first. The
// armed span multiset is itself substrate- and worker-count-invariant, so
// the same seed yields a byte-identical dump() at 1, 2, 4, or 8 workers on
// either substrate (tests/obs_flight_test.cpp holds this). For the same
// reason the dump's window section only includes data-plane series: the
// parallel-DES profiler's sim_* series vary with worker count by nature
// and are excluded by name prefix.
//
// Cost: disarmed runs never reach this file (callers gate on
// obs::enabled()); armed recording is one mutex + an ordered insert into a
// bounded set.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace simai::obs {

/// One recorded span, copied at record time. Mirrors sim::LabeledSpan
/// without depending on the sim layer (obs sits below it).
struct FlightSpan {
  std::string track;
  std::string category;
  double start = 0.0;
  double end = 0.0;
  std::uint64_t span_id = 0;
  std::uint64_t flow_id = 0;
  std::vector<std::pair<std::string, std::string>> labels;
};

class FlightRecorder {
 public:
  /// Ring capacity in spans (default 256; SIMAI_OBS_FLIGHT overrides at
  /// static init; 0 disables recording). Shrinking evicts oldest-first.
  void set_capacity(std::size_t n);
  std::size_t capacity() const;
  std::size_t size() const;

  /// Record one completed labeled span into the ring. Thread-safe; no-op
  /// while capacity is 0.
  void record(FlightSpan span);

  /// Render the ring + current data-plane window snapshots as canonical
  /// text. Pure read: two identical recorder states render identically.
  std::string dump(std::string_view reason) const;

  /// Automatic-dump entry point for the trigger sites. Renders dump() and
  /// retains it (last_dump()); rate-limited to one dump per distinct
  /// reason string until clear(), so a persistently full mailbox cannot
  /// dump every round. Returns whether a dump was produced now.
  bool trigger(std::string_view reason);

  /// The most recent trigger()ed dump ("" when none fired).
  std::string last_dump() const;
  std::uint64_t triggers() const;

  /// Drop all spans, retained dumps, and the per-reason rate limit.
  void clear();

 private:
  mutable std::mutex mu_;
  std::size_t capacity_ = 256;
  std::vector<FlightSpan> spans_;  // kept sorted in canonical order
  std::vector<std::string> dumped_reasons_;
  std::string last_dump_;
  std::uint64_t triggers_ = 0;
};

/// The process-global recorder, cleared with the rest of the plane by
/// obs::reset().
FlightRecorder& flight();

}  // namespace simai::obs
