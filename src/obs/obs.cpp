#include "obs/obs.hpp"

#include <cstdlib>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "obs/flight.hpp"
#include "obs/metrics.hpp"
#include "obs/window.hpp"
#include "util/crc32.hpp"
#include "util/rng.hpp"

namespace simai::obs {
namespace detail {

std::atomic<bool> g_enabled{false};

namespace {

// All mutable plane state behind one mutex. The engine runs one logical
// process at a time, so contention is nil; the lock only matters for the
// thread substrate, where the previous and next process briefly overlap in
// real time around a hand-off.
struct PlaneState {
  std::mutex mu;
  std::vector<std::unique_ptr<TraceContext>> contexts;  // id-1 indexed
  std::vector<std::uint32_t> free_ids;  // released slots, recycled LIFO
  // (backing store instance, key) -> flow id published by the writer.
  std::map<const void*, std::map<std::string, std::uint64_t, std::less<>>>
      flows;
  double sample_interval = 1.0;
  // SIMAI_OBS_WINDOW's value, so reset() restores the environment default
  // instead of silently turning windowing off between runs.
  double env_window = 0.0;
};

PlaneState& state() {
  static PlaneState s;
  return s;
}

// Arm from the environment at static-init time, mirroring SIMAI_CHECK: any
// value other than "" / "0" turns the plane on for the whole process.
const bool g_env_armed = [] {
  const char* env = std::getenv("SIMAI_OBS");
  const bool armed = env != nullptr && env[0] != '\0' &&
                     !(env[0] == '0' && env[1] == '\0');
  if (armed) g_enabled.store(true, std::memory_order_relaxed);
  if (const char* iv = std::getenv("SIMAI_OBS_INTERVAL")) {
    const double parsed = std::atof(iv);
    if (parsed > 0.0) state().sample_interval = parsed;
  }
  if (const char* wv = std::getenv("SIMAI_OBS_WINDOW")) {
    const double parsed = std::atof(wv);
    if (parsed > 0.0) {
      set_window(parsed);
      state().env_window = parsed;
    }
  }
  if (const char* fv = std::getenv("SIMAI_OBS_FLIGHT")) {
    const long parsed = std::atol(fv);
    if (parsed >= 0) flight().set_capacity(static_cast<std::size_t>(parsed));
  }
  return armed;
}();

}  // namespace

void count_kv_impl(std::string_view store, std::string_view op,
                   std::uint64_t bytes) {
  Labels labels{{"store", std::string(store)}, {"op", std::string(op)}};
  registry().counter("kv_ops_total", labels).inc();
  if (bytes != 0)
    registry().counter("kv_bytes_total", labels).inc(double(bytes));
}

}  // namespace detail

void set_enabled(bool on) {
  detail::g_enabled.store(on, std::memory_order_relaxed);
}

std::uint32_t register_context(const std::string& process_name) {
  auto ctx = std::make_unique<TraceContext>();
  // mix64 never returns 0 for the values crc32 produces here, but guard
  // anyway: 0 is the "no context" sentinel throughout the plane.
  ctx->trace_id = util::mix64(0x0b5eab1e00000000ull | util::crc32(process_name));
  if (ctx->trace_id == 0) ctx->trace_id = 1;
  ctx->process = process_name;

  auto& st = detail::state();
  std::lock_guard<std::mutex> lock(st.mu);
  if (!st.free_ids.empty()) {
    const std::uint32_t id = st.free_ids.back();
    st.free_ids.pop_back();
    st.contexts[id - 1] = std::move(ctx);
    return id;
  }
  st.contexts.push_back(std::move(ctx));
  return static_cast<std::uint32_t>(st.contexts.size());
}

void release_context(std::uint32_t id) {
  if (id == 0) return;
  auto& st = detail::state();
  std::lock_guard<std::mutex> lock(st.mu);
  if (id > st.contexts.size() || !st.contexts[id - 1]) return;
  st.contexts[id - 1].reset();
  st.free_ids.push_back(id);
}

TraceContext* context(std::uint32_t id) {
  if (id == 0) return nullptr;
  auto& st = detail::state();
  std::lock_guard<std::mutex> lock(st.mu);
  if (id > st.contexts.size()) return nullptr;
  return st.contexts[id - 1].get();
}

std::uint64_t next_span_id(TraceContext& ctx) {
  ++ctx.next_seq;
  std::uint64_t id =
      util::mix64(ctx.trace_id ^ (0x9E3779B97F4A7C15ull * ctx.next_seq));
  return id == 0 ? 1 : id;
}

void publish_flow(const void* store, std::string_view key,
                  std::uint64_t flow_id) {
  auto& st = detail::state();
  std::lock_guard<std::mutex> lock(st.mu);
  st.flows[store].insert_or_assign(std::string(key), flow_id);
}

std::uint64_t find_flow(const void* store, std::string_view key) {
  auto& st = detail::state();
  std::lock_guard<std::mutex> lock(st.mu);
  auto per_store = st.flows.find(store);
  if (per_store == st.flows.end()) return 0;
  auto it = per_store->second.find(key);
  return it == per_store->second.end() ? 0 : it->second;
}

double sample_interval() {
  auto& st = detail::state();
  std::lock_guard<std::mutex> lock(st.mu);
  return st.sample_interval;
}

void set_sample_interval(double seconds) {
  if (seconds <= 0.0) return;
  auto& st = detail::state();
  std::lock_guard<std::mutex> lock(st.mu);
  st.sample_interval = seconds;
}

void reset() {
  auto& st = detail::state();
  double env_window = 0.0;
  {
    std::lock_guard<std::mutex> lock(st.mu);
    st.contexts.clear();
    st.free_ids.clear();
    st.flows.clear();
    st.sample_interval = 1.0;
    env_window = st.env_window;
  }
  registry().clear();
  set_window(env_window);
  flight().clear();
}

}  // namespace simai::obs
