#include "obs/metrics.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

#include "obs/window.hpp"
#include "util/error.hpp"

namespace simai::obs {

namespace {

// Label names become unquoted key structure; anything that could splice the
// canonical form (or an empty name) is a caller bug, not data.
bool valid_label_name(std::string_view k) {
  if (k.empty()) return false;
  for (const char c : k) {
    if (c == '{' || c == '}' || c == '"' || c == '=' || c == ',' ||
        static_cast<unsigned char>(c) < 0x20)
      return false;
  }
  return true;
}

// Label values are quoted; escape the quote, the escape, and newlines so a
// hostile value cannot terminate the quoting and forge a different key.
void append_escaped_value(std::string& key, std::string_view v) {
  for (const char c : v) {
    switch (c) {
      case '"': key += "\\\""; break;
      case '\\': key += "\\\\"; break;
      case '\n': key += "\\n"; break;
      default: key += c; break;
    }
  }
}

}  // namespace

std::string series_key(std::string_view name, const Labels& labels) {
  if (labels.empty()) return std::string(name);
  Labels sorted = labels;
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const auto& a, const auto& b) { return a.first < b.first; });
  std::string key(name);
  key += '{';
  std::string_view prev_label;
  bool first = true;
  for (const auto& [k, v] : sorted) {
    if (!valid_label_name(k))
      throw Error("obs::series_key: invalid label name '" + k + "' on series '" +
                  std::string(name) + "'");
    if (k == prev_label)
      throw Error("obs::series_key: duplicate label name '" + k +
                  "' on series '" + std::string(name) + "'");
    prev_label = k;
    if (!first) key += ',';
    first = false;
    key += k;
    key += "=\"";
    append_escaped_value(key, v);
    key += '"';
  }
  key += '}';
  assert(std::is_sorted(sorted.begin(), sorted.end(),
                        [](const auto& a, const auto& b) {
                          return a.first < b.first;
                        }) &&
         "canonical label order must be sorted by name");
  return key;
}

namespace detail {

double percentile_from_buckets(const std::vector<double>& bounds,
                               const std::vector<std::uint64_t>& buckets,
                               std::uint64_t count, double max_obs, double p) {
  if (count == 0) return 0.0;
  p = std::clamp(p, 0.0, 100.0);
  // Rank of the target observation, 1-based; p=0 maps to the first.
  const double rank = std::max(1.0, std::ceil(p / 100.0 * double(count)));
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    if (buckets[i] == 0) continue;
    cumulative += buckets[i];
    if (double(cumulative) < rank) continue;
    // The overflow bucket's true extent is [last bound, max observation]:
    // interpolating inside it (instead of clamping to the lower edge) keeps
    // p99-style queries honest when the tail spills past the bounds.
    const double hi =
        i == bounds.size() ? std::max(max_obs, bounds.back()) : bounds[i];
    const double lo = i == 0 ? 0.0 : bounds[i - 1];
    const double into = rank - double(cumulative - buckets[i]);
    return lo + (hi - lo) * into / double(buckets[i]);
  }
  return std::max(max_obs, bounds.back());
}

void WindowAccrual::add(double t, double value,
                        const std::vector<double>* bounds) {
  const double width = window_width();
  if (width <= 0.0) return;
  const auto idx = static_cast<std::int64_t>(std::floor(t / width));
  std::lock_guard<std::mutex> lk(mu_);
  WindowCell& cell = wins_[idx];
  if (bounds != nullptr && cell.buckets.empty())
    cell.buckets.assign(bounds->size() + 1, 0);
  cell.count += 1.0;
  cell.sum += value;
  if (cell.count == 1.0 || value > cell.max) cell.max = value;
  if (bounds != nullptr) {
    const auto it = std::lower_bound(bounds->begin(), bounds->end(), value);
    ++cell.buckets[static_cast<std::size_t>(it - bounds->begin())];
  }
}

std::map<std::int64_t, WindowCell> WindowAccrual::windows() const {
  std::lock_guard<std::mutex> lk(mu_);
  return wins_;
}

bool WindowAccrual::empty() const {
  std::lock_guard<std::mutex> lk(mu_);
  return wins_.empty();
}

}  // namespace detail

double HistogramSnapshot::percentile(double p) const {
  return detail::percentile_from_buckets(bounds, buckets, count, max, p);
}

HistogramSnapshot HistogramSnapshot::delta(
    const HistogramSnapshot& earlier) const {
  if (earlier.bounds != bounds)
    throw Error("HistogramSnapshot::delta: mismatched bucket bounds");
  HistogramSnapshot out;
  out.bounds = bounds;
  out.buckets.resize(buckets.size());
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    if (earlier.buckets[i] > buckets[i])
      throw Error(
          "HistogramSnapshot::delta: snapshots out of order (bucket count "
          "would underflow)");
    out.buckets[i] = buckets[i] - earlier.buckets[i];
  }
  out.count = count - earlier.count;
  out.sum = sum - earlier.sum;
  out.max = max;  // upper bound for the interval; see header
  return out;
}

BucketHistogram::BucketHistogram() {
  bounds_.reserve(25);
  double bound = 1e-6;
  for (int k = 0; k <= 24; ++k) {
    bounds_.push_back(bound);
    bound *= 2.0;
  }
  buckets_.assign(bounds_.size() + 1, 0);
}

BucketHistogram::BucketHistogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)) {
  if (bounds_.empty()) throw Error("BucketHistogram: empty bucket bounds");
  for (std::size_t i = 1; i < bounds_.size(); ++i) {
    if (!(bounds_[i] > bounds_[i - 1]))
      throw Error("BucketHistogram: bounds must be strictly increasing");
  }
  buckets_.assign(bounds_.size() + 1, 0);
}

void BucketHistogram::observe(double value) {
  auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  std::lock_guard<std::mutex> lk(mu_);
  ++buckets_[static_cast<std::size_t>(it - bounds_.begin())];
  ++count_;
  sum_ += value;
  if (count_ == 1 || value > max_) max_ = value;
}

double BucketHistogram::percentile(double p) const {
  std::lock_guard<std::mutex> lk(mu_);
  return percentile_locked(p);
}

double BucketHistogram::percentile_locked(double p) const {
  return detail::percentile_from_buckets(bounds_, buckets_, count_, max_, p);
}

HistogramSnapshot BucketHistogram::snapshot() const {
  HistogramSnapshot s;
  s.bounds = bounds_;
  std::lock_guard<std::mutex> lk(mu_);
  s.buckets = buckets_;
  s.count = count_;
  s.sum = sum_;
  s.max = count_ ? max_ : 0.0;
  return s;
}

util::Json BucketHistogram::to_json() const {
  std::lock_guard<std::mutex> lk(mu_);
  util::Json j = util::Json::object();
  j["count"] = count_;
  j["sum"] = sum_;
  j["p50"] = percentile_locked(50.0);
  j["p95"] = percentile_locked(95.0);
  j["p99"] = percentile_locked(99.0);
  util::Json::Array sparse;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    if (buckets_[i] == 0) continue;
    const double bound =
        i == bounds_.size() ? std::numeric_limits<double>::max() : bounds_[i];
    util::Json::Array pair;
    pair.emplace_back(bound);
    pair.emplace_back(buckets_[i]);
    sparse.emplace_back(std::move(pair));
  }
  j["buckets"] = std::move(sparse);
  return j;
}

// Internal: the public accessors hold mu_ across lookup so concurrent
// first-touch creation of the same series cannot double-insert.
Registry::Series& Registry::lookup(std::string_view name, const Labels& labels,
                                   char kind) {
  Labels merged = labels;
  for (const auto& [k, v] : common_) {
    const bool shadowed =
        std::any_of(labels.begin(), labels.end(),
                    [&](const auto& lbl) { return lbl.first == k; });
    if (!shadowed) merged.emplace_back(k, v);
  }
  auto [it, inserted] = series_.try_emplace(series_key(name, merged));
  Series& s = it->second;
  if (inserted) {
    s.kind = kind;
    if (kind == 'h') s.histogram = std::make_unique<BucketHistogram>();
  } else if (s.kind != kind) {
    throw Error("obs::Registry: series '" + it->first +
                "' already registered with a different metric type");
  }
  return s;
}

Counter& Registry::counter(std::string_view name, const Labels& labels) {
  std::lock_guard<std::mutex> lk(mu_);
  return lookup(name, labels, 'c').counter;
}

Gauge& Registry::gauge(std::string_view name, const Labels& labels) {
  std::lock_guard<std::mutex> lk(mu_);
  return lookup(name, labels, 'g').gauge;
}

BucketHistogram& Registry::histogram(std::string_view name,
                                     const Labels& labels) {
  std::lock_guard<std::mutex> lk(mu_);
  return *lookup(name, labels, 'h').histogram;
}

BucketHistogram& Registry::histogram(std::string_view name, const Labels& labels,
                                     std::vector<double> bounds) {
  std::lock_guard<std::mutex> lk(mu_);
  Series& s = lookup(name, labels, 'h');
  if (s.histogram->count() == 0 && !bounds.empty())
    s.histogram = std::make_unique<BucketHistogram>(std::move(bounds));
  return *s.histogram;
}

void Registry::set_common_label(std::string key, std::string value) {
  std::lock_guard<std::mutex> lk(mu_);
  for (auto& [k, v] : common_) {
    if (k == key) {
      v = std::move(value);
      return;
    }
  }
  common_.emplace_back(std::move(key), std::move(value));
}

void Registry::clear_common_labels() {
  std::lock_guard<std::mutex> lk(mu_);
  common_.clear();
}

void Registry::clear() {
  std::lock_guard<std::mutex> lk(mu_);
  series_.clear();
  common_.clear();
}

std::vector<std::pair<std::string, double>> Registry::scalar_values() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::vector<std::pair<std::string, double>> out;
  for (const auto& [key, s] : series_) {
    if (s.kind == 'c')
      out.emplace_back(key, s.counter.value());
    else if (s.kind == 'g')
      out.emplace_back(key, s.gauge.value());
  }
  return out;
}

std::vector<std::string> Registry::keys(std::string_view name) const {
  std::lock_guard<std::mutex> lk(mu_);
  std::vector<std::string> out;
  for (const auto& [key, s] : series_) {
    if (!name.empty()) {
      const std::string_view metric =
          std::string_view(key).substr(0, key.find('{'));
      if (metric != name) continue;
    }
    out.push_back(key);
  }
  return out;
}

std::optional<Registry::SeriesWindows> Registry::windows_of(
    std::string_view key) const {
  // Copy the series pointer out under the registry lock, then read the
  // series' own window cells under its lock — node stability makes the
  // two-phase read safe, and neither lock is held across the other.
  const Series* s = nullptr;
  {
    std::lock_guard<std::mutex> lk(mu_);
    auto it = series_.find(key);
    if (it == series_.end()) return std::nullopt;
    s = &it->second;
  }
  SeriesWindows out;
  out.kind = s->kind;
  switch (s->kind) {
    case 'c': out.wins = s->counter.windows(); break;
    case 'g': out.wins = s->gauge.windows(); break;
    case 'h':
      out.bounds = s->histogram->bounds();
      out.wins = s->histogram->windows();
      break;
    default: break;
  }
  return out;
}

util::Json Registry::to_json() const {
  std::lock_guard<std::mutex> lk(mu_);
  util::Json j = util::Json::object();
  for (const auto& [key, s] : series_) {
    switch (s.kind) {
      case 'c': j[key] = s.counter.value(); break;
      case 'g': j[key] = s.gauge.value(); break;
      case 'h': j[key] = s.histogram->to_json(); break;
      default: break;
    }
  }
  return j;
}

Registry& registry() {
  static Registry r;
  return r;
}

std::vector<double> serve_latency_bounds() {
  std::vector<double> bounds;
  bounds.reserve(20);
  double bound = 50e-6;
  for (int k = 0; k <= 19; ++k) {
    bounds.push_back(bound);
    bound *= 2.0;
  }
  return bounds;
}

}  // namespace simai::obs
