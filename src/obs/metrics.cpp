#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/error.hpp"

namespace simai::obs {

std::string series_key(std::string_view name, const Labels& labels) {
  if (labels.empty()) return std::string(name);
  Labels sorted = labels;
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const auto& a, const auto& b) { return a.first < b.first; });
  std::string key(name);
  key += '{';
  std::string_view prev_label;
  bool first = true;
  for (const auto& [k, v] : sorted) {
    if (k == prev_label) continue;  // duplicate keys: first occurrence wins
    prev_label = k;
    if (!first) key += ',';
    first = false;
    key += k;
    key += "=\"";
    key += v;
    key += '"';
  }
  key += '}';
  return key;
}

BucketHistogram::BucketHistogram() {
  bounds_.reserve(25);
  double bound = 1e-6;
  for (int k = 0; k <= 24; ++k) {
    bounds_.push_back(bound);
    bound *= 2.0;
  }
  buckets_.assign(bounds_.size() + 1, 0);
}

BucketHistogram::BucketHistogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)) {
  if (bounds_.empty()) throw Error("BucketHistogram: empty bucket bounds");
  for (std::size_t i = 1; i < bounds_.size(); ++i) {
    if (!(bounds_[i] > bounds_[i - 1]))
      throw Error("BucketHistogram: bounds must be strictly increasing");
  }
  buckets_.assign(bounds_.size() + 1, 0);
}

void BucketHistogram::observe(double value) {
  auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  std::lock_guard<std::mutex> lk(mu_);
  ++buckets_[static_cast<std::size_t>(it - bounds_.begin())];
  ++count_;
  sum_ += value;
  if (count_ == 1 || value > max_) max_ = value;
}

double BucketHistogram::percentile(double p) const {
  std::lock_guard<std::mutex> lk(mu_);
  return percentile_locked(p);
}

double BucketHistogram::percentile_locked(double p) const {
  if (count_ == 0) return 0.0;
  p = std::clamp(p, 0.0, 100.0);
  // Rank of the target observation, 1-based; p=0 maps to the first.
  const double rank = std::max(1.0, std::ceil(p / 100.0 * double(count_)));
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    if (buckets_[i] == 0) continue;
    cumulative += buckets_[i];
    if (double(cumulative) < rank) continue;
    // The overflow bucket's true extent is [last bound, max observation]:
    // interpolating inside it (instead of clamping to the lower edge) keeps
    // p99-style queries honest when the tail spills past the bounds.
    const double hi =
        i == bounds_.size() ? std::max(max_, bounds_.back()) : bounds_[i];
    const double lo = i == 0 ? 0.0 : bounds_[i - 1];
    const double into = rank - double(cumulative - buckets_[i]);
    return lo + (hi - lo) * into / double(buckets_[i]);
  }
  return std::max(max_, bounds_.back());
}

util::Json BucketHistogram::to_json() const {
  std::lock_guard<std::mutex> lk(mu_);
  util::Json j = util::Json::object();
  j["count"] = count_;
  j["sum"] = sum_;
  j["p50"] = percentile_locked(50.0);
  j["p95"] = percentile_locked(95.0);
  j["p99"] = percentile_locked(99.0);
  util::Json::Array sparse;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    if (buckets_[i] == 0) continue;
    const double bound =
        i == bounds_.size() ? std::numeric_limits<double>::max() : bounds_[i];
    util::Json::Array pair;
    pair.emplace_back(bound);
    pair.emplace_back(buckets_[i]);
    sparse.emplace_back(std::move(pair));
  }
  j["buckets"] = std::move(sparse);
  return j;
}

// Internal: the public accessors hold mu_ across lookup so concurrent
// first-touch creation of the same series cannot double-insert.
Registry::Series& Registry::lookup(std::string_view name, const Labels& labels,
                                   char kind) {
  Labels merged = labels;
  for (const auto& [k, v] : common_) {
    const bool shadowed =
        std::any_of(labels.begin(), labels.end(),
                    [&](const auto& lbl) { return lbl.first == k; });
    if (!shadowed) merged.emplace_back(k, v);
  }
  auto [it, inserted] = series_.try_emplace(series_key(name, merged));
  Series& s = it->second;
  if (inserted) {
    s.kind = kind;
    if (kind == 'h') s.histogram = std::make_unique<BucketHistogram>();
  } else if (s.kind != kind) {
    throw Error("obs::Registry: series '" + it->first +
                "' already registered with a different metric type");
  }
  return s;
}

Counter& Registry::counter(std::string_view name, const Labels& labels) {
  std::lock_guard<std::mutex> lk(mu_);
  return lookup(name, labels, 'c').counter;
}

Gauge& Registry::gauge(std::string_view name, const Labels& labels) {
  std::lock_guard<std::mutex> lk(mu_);
  return lookup(name, labels, 'g').gauge;
}

BucketHistogram& Registry::histogram(std::string_view name,
                                     const Labels& labels) {
  std::lock_guard<std::mutex> lk(mu_);
  return *lookup(name, labels, 'h').histogram;
}

BucketHistogram& Registry::histogram(std::string_view name, const Labels& labels,
                                     std::vector<double> bounds) {
  std::lock_guard<std::mutex> lk(mu_);
  Series& s = lookup(name, labels, 'h');
  if (s.histogram->count() == 0 && !bounds.empty())
    s.histogram = std::make_unique<BucketHistogram>(std::move(bounds));
  return *s.histogram;
}

void Registry::set_common_label(std::string key, std::string value) {
  std::lock_guard<std::mutex> lk(mu_);
  for (auto& [k, v] : common_) {
    if (k == key) {
      v = std::move(value);
      return;
    }
  }
  common_.emplace_back(std::move(key), std::move(value));
}

void Registry::clear_common_labels() {
  std::lock_guard<std::mutex> lk(mu_);
  common_.clear();
}

void Registry::clear() {
  std::lock_guard<std::mutex> lk(mu_);
  series_.clear();
  common_.clear();
}

std::vector<std::pair<std::string, double>> Registry::scalar_values() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::vector<std::pair<std::string, double>> out;
  for (const auto& [key, s] : series_) {
    if (s.kind == 'c')
      out.emplace_back(key, s.counter.value());
    else if (s.kind == 'g')
      out.emplace_back(key, s.gauge.value());
  }
  return out;
}

util::Json Registry::to_json() const {
  std::lock_guard<std::mutex> lk(mu_);
  util::Json j = util::Json::object();
  for (const auto& [key, s] : series_) {
    switch (s.kind) {
      case 'c': j[key] = s.counter.value(); break;
      case 'g': j[key] = s.gauge.value(); break;
      case 'h': j[key] = s.histogram->to_json(); break;
      default: break;
    }
  }
  return j;
}

Registry& registry() {
  static Registry r;
  return r;
}

std::vector<double> serve_latency_bounds() {
  std::vector<double> bounds;
  bounds.reserve(20);
  double bound = 50e-6;
  for (int k = 0; k <= 19; ++k) {
    bounds.push_back(bound);
    bound *= 2.0;
  }
  return bounds;
}

}  // namespace simai::obs
