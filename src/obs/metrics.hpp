// Labeled metrics for the observability plane: a registry of counters,
// gauges, and fixed-bucket histograms keyed by (name, labels), in the
// familiar Prometheus shape — transport_read_seconds{backend="redis"}.
//
// Design points:
//  * Series are stored in a std::map keyed by the canonical series name
//    (labels sorted by key), so snapshots, JSON exports, and counter-sample
//    streams enumerate in one deterministic order on every platform.
//  * Histograms are fixed-bucket (exponential bounds, not raw samples):
//    percentiles come from linear interpolation inside the landing bucket,
//    which keeps memory O(buckets) no matter how many observations land and
//    keeps the export representation stable.
//  * The registry is process-global (obs::registry()) because the plane is
//    process-global; obs::reset() clears it between independent runs.
//
// Everything here is cheap but not free — callers gate on obs::enabled()
// (see obs.hpp) so a disarmed run never reaches this file.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/json.hpp"

namespace simai::obs {

/// Label set for one series: key/value pairs. Order does not matter at the
/// call site — series_key() sorts by key when canonicalizing.
using Labels = std::vector<std::pair<std::string, std::string>>;

/// Canonical series name: `name{k1="v1",k2="v2"}` with labels sorted by
/// key, or bare `name` when the label set is empty. This string is the
/// registry key and the identity used by counter samples and the trace
/// tools, so it is hardened against collisions: duplicate label names and
/// label names containing structural characters (`{}",=` or control bytes)
/// throw simai::Error, and `"` / `\` / newlines inside label *values* are
/// escaped so hostile values cannot forge another series' key.
std::string series_key(std::string_view name, const Labels& labels);

namespace detail {

/// One fixed virtual-time window of one series (see obs/window.hpp for the
/// window width). `count`/`sum`/`max` cover the observations that landed in
/// the window; `buckets` (histogram series only) are per-window bucket
/// counts against the owning histogram's bounds, so in-window percentiles
/// interpolate exactly like whole-run ones.
struct WindowCell {
  double count = 0.0;
  double sum = 0.0;
  double max = 0.0;
  std::vector<std::uint64_t> buckets;
};

/// Per-series windowed accrual: observations stamped with a virtual time
/// land in window floor(t / window_width()). Out-of-order timestamps are
/// fine — parallel DES workers observe at different local times inside one
/// conservative round — because cells are keyed, not appended. No-op (and
/// no memory) while windowing is off.
class WindowAccrual {
 public:
  void add(double t, double value, const std::vector<double>* bounds);
  std::map<std::int64_t, WindowCell> windows() const;
  bool empty() const;

 private:
  mutable std::mutex mu_;
  std::map<std::int64_t, WindowCell> wins_;
};

/// Percentile (p in [0,100]) by linear interpolation inside the bucket
/// containing the target rank; ranks landing in the overflow bucket
/// interpolate between the last finite bound and `max_obs`. Shared by
/// BucketHistogram, HistogramSnapshot, and the per-window query path so all
/// three agree bit-for-bit on the same bucket contents.
double percentile_from_buckets(const std::vector<double>& bounds,
                               const std::vector<std::uint64_t>& buckets,
                               std::uint64_t count, double max_obs, double p);

}  // namespace detail

/// Monotonically increasing sum. Increments are lock-free atomic adds:
/// under parallel DES dispatch (and the real-I/O server threads) series are
/// bumped from several OS threads at once, and a counter must lose no
/// increments. Accumulation order across threads is wall-dependent, so the
/// float sum may differ in final ulps between runs — which is why counter
/// *samples* are excluded from canonical fingerprints (see sim/trace.hpp).
class Counter {
 public:
  void inc(double delta = 1.0) {
    if (delta > 0.0) value_.fetch_add(delta, std::memory_order_relaxed);
  }
  /// inc() plus windowed accrual: the delta also lands in the virtual-time
  /// window covering `t` (obs/window.hpp). Identical to inc() while
  /// windowing is off.
  void inc_at(double delta, double t) {
    inc(delta);
    if (delta > 0.0) windows_.add(t, delta, nullptr);
  }
  double value() const { return value_.load(std::memory_order_relaxed); }
  std::map<std::int64_t, detail::WindowCell> windows() const {
    return windows_.windows();
  }

 private:
  std::atomic<double> value_{0.0};
  detail::WindowAccrual windows_;
};

/// Last-write-wins instantaneous value (atomic, same rationale as Counter).
class Gauge {
 public:
  void set(double value) { value_.store(value, std::memory_order_relaxed); }
  /// set() plus windowed accrual at virtual time `t`: per-window cells keep
  /// the sample count, sum, and max, so depth-style gauges expose their
  /// per-window peak, not just the final value.
  void set_at(double value, double t) {
    set(value);
    windows_.add(t, value, nullptr);
  }
  void add(double delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }
  std::map<std::int64_t, detail::WindowCell> windows() const {
    return windows_.windows();
  }

 private:
  std::atomic<double> value_{0.0};
  detail::WindowAccrual windows_;
};

/// Point-in-time copy of a BucketHistogram's state. Counts, sums, and
/// per-bucket tallies are plain sums, so subtracting an earlier snapshot
/// (delta()) yields the *exact* distribution of the interval between the
/// two snapshots — the correct way to compute per-window percentiles from
/// a cumulative histogram. `max` is the largest observation up to the
/// snapshot; for a delta it is an upper bound on the interval's max (a
/// maximum is not subtractable), which only widens the overflow bucket's
/// interpolation extent, never misplaces a rank.
struct HistogramSnapshot {
  std::vector<double> bounds;
  std::vector<std::uint64_t> buckets;  // bounds.size() + 1, last = overflow
  std::uint64_t count = 0;
  double sum = 0.0;
  double max = 0.0;

  /// Same interpolation as BucketHistogram::percentile, overflow bucket
  /// included. 0.0 when empty.
  double percentile(double p) const;

  /// this - earlier. Throws simai::Error on mismatched bounds or when
  /// `earlier` is not actually earlier (a bucket count would underflow).
  HistogramSnapshot delta(const HistogramSnapshot& earlier) const;
};

/// Fixed-bucket histogram. Default bounds are exponential in seconds —
/// 1 µs · 2^k for k = 0..24 (1 µs up to ~16.8 s) — sized for transport
/// latencies; pass explicit bounds for anything else. Observations above
/// the last bound land in an overflow bucket.
class BucketHistogram {
 public:
  BucketHistogram();
  /// `bounds` must be strictly increasing and non-empty.
  explicit BucketHistogram(std::vector<double> bounds);

  /// Thread-safe (one short lock): multi-bucket updates cannot be atomic
  /// piecewise, and histograms are observed from worker threads under
  /// parallel dispatch. Only armed runs pay the lock.
  void observe(double value);
  /// observe() plus windowed accrual at virtual time `t`: the observation
  /// also lands (with bucket resolution) in the window covering `t`, so
  /// per-window percentiles are queryable mid-run (obs::MetricsView).
  void observe_at(double value, double t) {
    observe(value);
    windows_.add(t, value, &bounds_);
  }

  /// Observations so far / their sum — count()/sum() make mean and rate
  /// computations possible without reading the bucket array.
  std::uint64_t count() const {
    std::lock_guard<std::mutex> lk(mu_);
    return count_;
  }
  double sum() const {
    std::lock_guard<std::mutex> lk(mu_);
    return sum_;
  }
  /// Largest observation so far (0.0 when empty). Bounds the overflow
  /// bucket so top-percentile queries stay finite and meaningful.
  double max() const {
    std::lock_guard<std::mutex> lk(mu_);
    return count_ ? max_ : 0.0;
  }

  /// Approximate percentile (p in [0,100]) by linear interpolation inside
  /// the bucket containing the target rank. Returns 0.0 when empty. Ranks
  /// landing in the overflow bucket interpolate between the last finite
  /// bound and the largest observation (the bucket's true extent) instead
  /// of clamping to the bucket's lower edge.
  double percentile(double p) const;

  const std::vector<double>& bounds() const { return bounds_; }
  /// bounds().size() + 1 entries; the last is the overflow bucket. The
  /// reference is unsynchronized — harvest after the run, like the other
  /// bulk readers.
  const std::vector<std::uint64_t>& buckets() const { return buckets_; }

  /// Consistent point-in-time copy (one lock): subtract two of these for
  /// exact interval distributions — see HistogramSnapshot.
  HistogramSnapshot snapshot() const;

  /// Windowed accrual cells (empty while windowing is off).
  std::map<std::int64_t, detail::WindowCell> windows() const {
    return windows_.windows();
  }

  /// {"count":N,"sum":S,"p50":...,"p95":...,"p99":...,"buckets":[...]}
  /// Buckets export sparsely as [bound, count] pairs for non-empty buckets.
  util::Json to_json() const;

 private:
  double percentile_locked(double p) const;  // mu_ held by the caller

  std::vector<double> bounds_;  // immutable after construction
  mutable std::mutex mu_;       // guards buckets_/count_/sum_/max_
  std::vector<std::uint64_t> buckets_;
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double max_ = 0.0;
  detail::WindowAccrual windows_;  // own lock; never held with mu_
};

/// The (name, labels) -> series registry. Lookup lazily creates a series;
/// asking for an existing series with a different type throws simai::Error
/// (a series' identity includes its kind).
class Registry {
 public:
  Counter& counter(std::string_view name, const Labels& labels = {});
  Gauge& gauge(std::string_view name, const Labels& labels = {});
  BucketHistogram& histogram(std::string_view name, const Labels& labels = {});
  BucketHistogram& histogram(std::string_view name, const Labels& labels,
                             std::vector<double> bounds);

  /// Common labels are stamped onto every series *created* after the call
  /// (explicit labels win on key collision). run_pattern1/2 use this to tag
  /// all series with pattern="1"/"2" without threading a label argument
  /// through the whole data plane.
  void set_common_label(std::string key, std::string value);
  void clear_common_labels();

  bool empty() const {
    std::lock_guard<std::mutex> lk(mu_);
    return series_.empty();
  }
  std::size_t size() const {
    std::lock_guard<std::mutex> lk(mu_);
    return series_.size();
  }
  void clear();

  /// All counter and gauge series as (canonical key, current value), in
  /// deterministic key order — the engine sampler snapshots this.
  std::vector<std::pair<std::string, double>> scalar_values() const;

  /// Canonical keys of every registered series, in deterministic order;
  /// when `name` is non-empty, only series whose metric name (the part
  /// before `{`) equals it. The window-query layer (obs::MetricsView) and
  /// the flight recorder enumerate series through this.
  std::vector<std::string> keys(std::string_view name = {}) const;

  /// Windowed accrual of the series with canonical key `key`: its kind,
  /// histogram bounds ('h' only), and per-window cells. nullopt when the
  /// series does not exist. Lock-cheap: one registry lock to find the
  /// series, one series lock to copy its cells; never touches the engine.
  struct SeriesWindows {
    char kind = 0;  // 'c' | 'g' | 'h'
    std::vector<double> bounds;
    std::map<std::int64_t, detail::WindowCell> wins;
  };
  std::optional<SeriesWindows> windows_of(std::string_view key) const;

  /// Full snapshot for the run report: an object mapping canonical series
  /// keys to either a number (counter/gauge) or a histogram object.
  util::Json to_json() const;

 private:
  struct Series {
    char kind = 0;  // 'c' | 'g' | 'h'
    Counter counter;
    Gauge gauge;
    std::unique_ptr<BucketHistogram> histogram;
  };

  Series& lookup(std::string_view name, const Labels& labels, char kind);

  /// Guards series_/common_. Lookup holds it only across the map access —
  /// returned Counter/Gauge/BucketHistogram references stay valid (std::map
  /// nodes are stable) and are themselves safe to update concurrently, so
  /// worker threads under parallel DES dispatch never serialize on the
  /// registry for the increment itself.
  mutable std::mutex mu_;
  std::map<std::string, Series, std::less<>> series_;
  Labels common_;
};

/// The process-global registry, armed/cleared with the rest of the plane.
Registry& registry();

// -- serving-plane series (simai::serve, DESIGN.md §4.9) ----------------------
//
// Canonical metric names shared between the serving subsystem and the trace
// tools, so keys never drift between producer and consumer. Label keys:
//   serve_requests_total{status}            status = completed | rejected
//   serve_request_latency_seconds{backend}  end-to-end, arrival -> response
//   serve_phase_seconds{phase}              phase = queue | batch | compute
//                                                   | transport
//   serve_batch_rows                        rows per dispatched batch
//   serve_failovers_total                   batches re-queued off a dead
//                                           replica
//   serve_weight_refreshes_total            replica weight re-pulls
//   serve_queue_depth                       gauge, sampled by the engine
namespace keys {
inline constexpr std::string_view kServeRequestsTotal = "serve_requests_total";
inline constexpr std::string_view kServeRequestLatency =
    "serve_request_latency_seconds";
inline constexpr std::string_view kServePhaseSeconds = "serve_phase_seconds";
inline constexpr std::string_view kServeBatchRows = "serve_batch_rows";
inline constexpr std::string_view kServeFailoversTotal = "serve_failovers_total";
inline constexpr std::string_view kServeWeightRefreshesTotal =
    "serve_weight_refreshes_total";
inline constexpr std::string_view kServeQueueDepth = "serve_queue_depth";
}  // namespace keys

/// Histogram bounds sized for request-serving latencies: 50 µs · 2^k for
/// k = 0..19 (50 µs up to ~26 s). The transport default (1 µs base) wastes
/// its resolution below any plausible request latency.
std::vector<double> serve_latency_bounds();

}  // namespace simai::obs
