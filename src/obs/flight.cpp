#include "obs/flight.hpp"

#include <algorithm>
#include <cstdio>
#include <iterator>
#include <tuple>

#include "obs/metrics.hpp"
#include "obs/window.hpp"

namespace simai::obs {

namespace {

// Canonical ring order: oldest (smallest virtual end time) first, with a
// total tie-break so equal-time spans from different workers still sort
// identically on every run.
bool span_less(const FlightSpan& a, const FlightSpan& b) {
  return std::tie(a.end, a.start, a.track, a.category, a.span_id, a.flow_id) <
         std::tie(b.end, b.start, b.track, b.category, b.span_id, b.flow_id);
}

std::string format_time(double t) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.9g", t);
  return buf;
}

}  // namespace

void FlightRecorder::set_capacity(std::size_t n) {
  std::lock_guard<std::mutex> lk(mu_);
  capacity_ = n;
  if (spans_.size() > capacity_)
    spans_.erase(spans_.begin(),
                 spans_.begin() +
                     static_cast<std::ptrdiff_t>(spans_.size() - capacity_));
}

std::size_t FlightRecorder::capacity() const {
  std::lock_guard<std::mutex> lk(mu_);
  return capacity_;
}

std::size_t FlightRecorder::size() const {
  std::lock_guard<std::mutex> lk(mu_);
  return spans_.size();
}

void FlightRecorder::record(FlightSpan span) {
  std::lock_guard<std::mutex> lk(mu_);
  if (capacity_ == 0) return;
  const auto at =
      std::upper_bound(spans_.begin(), spans_.end(), span, span_less);
  spans_.insert(at, std::move(span));
  // Evict by virtual age, never by insertion order: which worker recorded
  // first is wall-clock noise, which span ends earliest is not.
  if (spans_.size() > capacity_) spans_.erase(spans_.begin());
}

std::string FlightRecorder::dump(std::string_view reason) const {
  std::lock_guard<std::mutex> lk(mu_);
  std::string out = "# flight dump reason=";
  out += reason;
  out += " spans=" + std::to_string(spans_.size());
  out += " capacity=" + std::to_string(capacity_);
  out += " window=" + format_time(window_width());
  out += '\n';
  for (const FlightSpan& s : spans_) {
    out += "span track=" + s.track + " cat=" + s.category;
    out += " start=" + format_time(s.start) + " end=" + format_time(s.end);
    char ids[64];
    std::snprintf(ids, sizeof(ids), " span=%016llx flow=%016llx",
                  static_cast<unsigned long long>(s.span_id),
                  static_cast<unsigned long long>(s.flow_id));
    out += ids;
    if (!s.labels.empty()) {
      out += " labels=";
      bool first = true;
      for (const auto& [k, v] : s.labels) {
        if (!first) out += ',';
        first = false;
        out += k + "=\"" + v + "\"";
      }
    }
    out += '\n';
  }
  // Window snapshots: the last two windows of every data-plane series.
  // sim_* (parallel-DES profiler) series are worker-count-dependent by
  // nature and would break the dump's worker invariance — excluded.
  if (window_width() > 0.0) {
    for (const std::string& key : registry().keys()) {
      if (std::string_view(key).substr(0, 4) == "sim_") continue;
      const auto sw = registry().windows_of(key);
      if (!sw || sw->wins.empty()) continue;
      auto it = sw->wins.end();
      const std::size_t take = std::min<std::size_t>(2, sw->wins.size());
      std::advance(it, -static_cast<std::ptrdiff_t>(take));
      for (; it != sw->wins.end(); ++it) {
        const auto& [index, cell] = *it;
        out += "window series=" + key + " idx=" + std::to_string(index);
        out += " count=" + format_time(cell.count);
        out += " max=" + format_time(cell.max);
        if (sw->kind == 'h' && !cell.buckets.empty()) {
          const auto n = static_cast<std::uint64_t>(cell.count);
          out += " p50=" + format_time(detail::percentile_from_buckets(
                               sw->bounds, cell.buckets, n, cell.max, 50.0));
          out += " p95=" + format_time(detail::percentile_from_buckets(
                               sw->bounds, cell.buckets, n, cell.max, 95.0));
        }
        out += '\n';
      }
    }
  }
  return out;
}

bool FlightRecorder::trigger(std::string_view reason) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    for (const std::string& seen : dumped_reasons_) {
      if (seen == reason) return false;
    }
    dumped_reasons_.emplace_back(reason);
    ++triggers_;
  }
  // Render outside mu_ — dump() re-takes it and also walks the registry.
  std::string rendered = dump(reason);
  std::lock_guard<std::mutex> lk(mu_);
  last_dump_ = std::move(rendered);
  return true;
}

std::string FlightRecorder::last_dump() const {
  std::lock_guard<std::mutex> lk(mu_);
  return last_dump_;
}

std::uint64_t FlightRecorder::triggers() const {
  std::lock_guard<std::mutex> lk(mu_);
  return triggers_;
}

void FlightRecorder::clear() {
  std::lock_guard<std::mutex> lk(mu_);
  spans_.clear();
  dumped_reasons_.clear();
  last_dump_.clear();
  triggers_ = 0;
}

FlightRecorder& flight() {
  static FlightRecorder f;
  return f;
}

}  // namespace simai::obs
