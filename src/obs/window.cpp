#include "obs/window.hpp"

#include <atomic>
#include <cmath>
#include <map>

namespace simai::obs {

namespace {

// Width is read on every *_at observation, so it lives in a lone relaxed
// atomic instead of the obs PlaneState mutex. The environment default is
// installed by obs.cpp's static-init hook via set_window().
std::atomic<double> g_window_width{0.0};

// A canonical key matches (name, labels) when its metric-name part equals
// `name` and it carries every given label verbatim. Extra labels (e.g. the
// pattern= common label run_pattern1 stamps) are allowed — the caller
// usually cannot know them.
bool key_matches(std::string_view key, std::string_view name,
                 const Labels& labels) {
  const std::size_t brace = key.find('{');
  if (key.substr(0, brace) != name) return false;
  if (labels.empty()) return true;
  if (brace == std::string_view::npos) return false;
  const std::string_view body = key.substr(brace);
  for (const auto& [k, v] : labels) {
    const std::string needle = k + "=\"" + v + "\"";
    if (body.find(needle) == std::string_view::npos) return false;
  }
  return true;
}

// First registered series matching (name, labels); empty when none.
std::string find_key(std::string_view name, const Labels& labels) {
  for (const std::string& key : registry().keys(name)) {
    if (key_matches(key, name, labels)) return key;
  }
  return {};
}

WindowStats resolve(std::int64_t index, const detail::WindowCell& cell,
                    const std::vector<double>& bounds, double width) {
  WindowStats w;
  w.index = index;
  w.start = double(index) * width;
  w.end = w.start + width;
  w.count = cell.count;
  w.sum = cell.sum;
  w.max = cell.max;
  if (!bounds.empty() && !cell.buckets.empty()) {
    const auto n = static_cast<std::uint64_t>(cell.count);
    w.p50 = detail::percentile_from_buckets(bounds, cell.buckets, n, cell.max,
                                            50.0);
    w.p95 = detail::percentile_from_buckets(bounds, cell.buckets, n, cell.max,
                                            95.0);
  }
  return w;
}

}  // namespace

double window_width() {
  return g_window_width.load(std::memory_order_relaxed);
}

void set_window(double seconds) {
  g_window_width.store(seconds > 0.0 ? seconds : 0.0,
                       std::memory_order_relaxed);
}

std::vector<WindowStats> MetricsView::series_windows(std::string_view name,
                                                     const Labels& labels) {
  const double width = window_width();
  std::vector<WindowStats> out;
  if (width <= 0.0) return out;
  const std::string key = find_key(name, labels);
  if (key.empty()) return out;
  const auto sw = registry().windows_of(key);
  if (!sw) return out;
  out.reserve(sw->wins.size());
  for (const auto& [index, cell] : sw->wins)
    out.push_back(resolve(index, cell, sw->bounds, width));
  return out;
}

WindowStats MetricsView::window_at(std::string_view name, const Labels& labels,
                                   double t) {
  const double width = window_width();
  WindowStats empty;
  if (width <= 0.0) return empty;
  const auto index = static_cast<std::int64_t>(std::floor(t / width));
  empty.index = index;
  empty.start = double(index) * width;
  empty.end = empty.start + width;
  for (const WindowStats& w : series_windows(name, labels)) {
    if (w.index == index) return w;
  }
  return empty;
}

std::vector<MetricsView::TransportWindow> MetricsView::transport_windows(
    std::string_view backend, std::string_view op) {
  const double width = window_width();
  std::vector<TransportWindow> out;
  if (width <= 0.0) return out;
  const Labels backend_only{{"backend", std::string(backend)}};
  const std::string hist_name = op == "write" ? "transport_write_seconds"
                                              : "transport_read_seconds";

  // Merge the latency histogram and the sibling counters on window index.
  std::map<std::int64_t, TransportWindow> merged;
  const auto slot = [&](std::int64_t index) -> TransportWindow& {
    TransportWindow& t = merged[index];
    if (t.end == 0.0) {
      t.index = index;
      t.start = double(index) * width;
      t.end = t.start + width;
    }
    return t;
  };
  for (const WindowStats& w : series_windows(hist_name, backend_only)) {
    TransportWindow& t = slot(w.index);
    t.p50 = w.p50;
    t.p95 = w.p95;
  }
  const Labels with_op{{"backend", std::string(backend)},
                       {"op", std::string(op)}};
  for (const WindowStats& w : series_windows("transport_ops_total", with_op))
    slot(w.index).ops = w.sum;
  for (const WindowStats& w : series_windows("transport_bytes_total", with_op))
    slot(w.index).bytes = w.sum;
  for (const WindowStats& w :
       series_windows("transport_retries_total", backend_only))
    slot(w.index).retries = w.sum;

  out.reserve(merged.size());
  for (auto& [index, t] : merged) out.push_back(t);
  return out;
}

}  // namespace simai::obs
