// Online statistics used by the benchmark harness.
//
// The paper reports per-process averages (Fig 3, Fig 5 throughputs), mean and
// standard deviation of iteration times (Table 3), and timeline events
// (Fig 2). RunningStats provides numerically stable streaming moments
// (Welford), Histogram provides percentiles, and StatSeries groups samples
// by label for the tabular bench output.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <map>
#include <string>
#include <vector>

namespace simai::util {

/// Streaming mean/variance/min/max via Welford's algorithm. O(1) memory;
/// merging two accumulators is supported (parallel reduction of per-rank
/// stats, which is how per-process averages across ranks are formed).
class RunningStats {
 public:
  void add(double x);
  void merge(const RunningStats& other);
  void reset();

  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double sum() const { return mean_ * static_cast<double>(n_); }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Reservoir-free exact histogram: stores samples and sorts lazily for
/// percentile queries. Fine for bench-scale sample counts (≤ millions).
class Histogram {
 public:
  void add(double x);
  std::size_t count() const { return samples_.size(); }
  /// p in [0,100]; linear interpolation between order statistics. An empty
  /// histogram returns 0.0 (documented sentinel, never an out-of-range
  /// index); a single sample is every percentile.
  double percentile(double p) const;
  double median() const { return percentile(50.0); }
  const std::vector<double>& samples() const { return samples_; }

 private:
  mutable std::vector<double> samples_;
  mutable bool sorted_ = false;
};

/// Named collection of RunningStats, e.g. series["read"], series["write"].
class StatSeries {
 public:
  RunningStats& operator[](const std::string& name) { return stats_[name]; }
  const std::map<std::string, RunningStats>& all() const { return stats_; }
  bool contains(const std::string& name) const {
    return stats_.count(name) != 0;
  }

 private:
  std::map<std::string, RunningStats> stats_;
};

/// Format a byte count as a human-readable string ("1.5 MiB").
std::string format_bytes(std::uint64_t bytes);

/// Format seconds adaptively ("12.3 us", "4.56 ms", "1.23 s").
std::string format_seconds(double seconds);

}  // namespace simai::util
