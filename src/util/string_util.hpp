// String helpers shared across modules: splitting, trimming, case folding,
// and the glob matcher used by DataStore key listing ("*" patterns, as in
// Redis KEYS and the paper's poll_staged_data).
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace simai::util {

/// Split on a single-character delimiter; empty fields are preserved.
std::vector<std::string> split(std::string_view s, char delim);

/// Strip ASCII whitespace from both ends.
std::string_view trim(std::string_view s);

std::string to_lower(std::string_view s);

bool starts_with(std::string_view s, std::string_view prefix);
bool ends_with(std::string_view s, std::string_view suffix);

/// Glob match with '*' (any run) and '?' (any single char). Iterative
/// two-pointer algorithm, O(n*m) worst case, no recursion.
bool glob_match(std::string_view pattern, std::string_view text);

/// printf-style formatting into a std::string.
std::string strformat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

}  // namespace simai::util
