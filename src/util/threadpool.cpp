#include "util/threadpool.hpp"

#include <algorithm>

namespace simai::util {

ThreadPool::ThreadPool(std::size_t num_threads) {
  num_threads = std::max<std::size_t>(1, num_threads);
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() { shutdown(); }

void ThreadPool::shutdown() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  // Serialize the join phase instead of short-circuiting on `stopping_`:
  // with the old early-return, a second caller (typically the destructor
  // racing an explicit shutdown()) returned while the first was still
  // joining, and destruction proceeded under live worker threads.
  std::lock_guard join_lock(join_mutex_);
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
}

void ThreadPool::worker_loop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stopping_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

}  // namespace simai::util
