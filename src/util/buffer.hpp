// Byte-buffer serialization primitives.
//
// Values staged through the DataStore, RESP frames, and Dragon channel
// messages are all flat byte sequences; ByteWriter/ByteReader provide
// little-endian primitive encoding with explicit lengths (no implicit
// padding, portable across compilers).
#pragma once

#include <bit>
#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

#include "util/error.hpp"
#include "util/payload.hpp"
#include "util/types.hpp"

namespace simai::util {

class SerializationError : public Error {
 public:
  using Error::Error;
};

/// Appends primitives to an owned Bytes buffer.
class ByteWriter {
 public:
  ByteWriter() = default;
  explicit ByteWriter(std::size_t reserve) { buffer_.reserve(reserve); }

  void u8(std::uint8_t v) { buffer_.push_back(static_cast<std::byte>(v)); }
  void u16(std::uint16_t v) { write_le(v); }
  void u32(std::uint32_t v) { write_le(v); }
  void u64(std::uint64_t v) { write_le(v); }
  void i64(std::int64_t v) { write_le(static_cast<std::uint64_t>(v)); }
  void f64(double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof bits);
    write_le(bits);
  }
  /// Length-prefixed (u32) string.
  void str(std::string_view s);
  /// Length-prefixed (u64) raw bytes.
  void bytes(ByteView b);
  /// Raw bytes without a length prefix (for fixed-layout frames).
  void raw(ByteView b);

  const Bytes& data() const { return buffer_; }
  Bytes take() { return std::move(buffer_); }
  /// Adopt the accumulated buffer as an immutable Payload without copying.
  Payload take_payload() { return Payload::from_bytes(std::move(buffer_)); }
  std::size_t size() const { return buffer_.size(); }

 private:
  template <typename T>
  void write_le(T v) {
    // Grow once and copy the whole word: one bounds check instead of
    // sizeof(T) push_backs (this is the hot path of every staged value,
    // RESP frame, and checkpoint record).
    const std::size_t at = buffer_.size();
    buffer_.resize(at + sizeof(T));
    if constexpr (std::endian::native != std::endian::little) {
      T le = 0;
      for (std::size_t i = 0; i < sizeof(T); ++i) {
        le |= ((v >> (8 * i)) & 0xFF) << (8 * (sizeof(T) - 1 - i));
      }
      v = le;
    }
    std::memcpy(buffer_.data() + at, &v, sizeof(T));
  }
  Bytes buffer_;
};

/// Reads primitives from a byte view; throws SerializationError on underrun.
class ByteReader {
 public:
  explicit ByteReader(ByteView data) : data_(data) {}
  // Exact match for Bytes arguments — without it a Bytes would be ambiguous
  // between the ByteView and Payload converting constructors.
  explicit ByteReader(const Bytes& data) : data_(ByteView(data)) {}
  /// Payload-backed reader: bytes_payload()/raw_payload() return O(1)
  /// slices sharing the payload's owner instead of copies.
  explicit ByteReader(const Payload& data)
      : data_(data.view()), source_(data) {}

  std::uint8_t u8() { return static_cast<std::uint8_t>(take(1)[0]); }
  std::uint16_t u16() { return read_le<std::uint16_t>(); }
  std::uint32_t u32() { return read_le<std::uint32_t>(); }
  std::uint64_t u64() { return read_le<std::uint64_t>(); }
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  double f64() {
    const std::uint64_t bits = u64();
    double v;
    std::memcpy(&v, &bits, sizeof v);
    return v;
  }
  std::string str();
  Bytes bytes();
  /// Like bytes(), but borrows: no copy, valid while the source buffer lives.
  ByteView bytes_view();
  /// Like bytes(), but returns an owner-sharing slice when this reader was
  /// constructed over a Payload (falls back to a copy for plain views).
  Payload bytes_payload();
  /// Read exactly n raw bytes.
  ByteView raw(std::size_t n) { return take(n); }
  /// Owner-sharing slice of the next n bytes (copy for plain-view readers).
  Payload raw_payload(std::size_t n);

  std::size_t remaining() const { return data_.size() - pos_; }
  bool done() const { return remaining() == 0; }

 private:
  ByteView take(std::size_t n) {
    if (remaining() < n)
      throw SerializationError("byte reader underrun: need " +
                               std::to_string(n) + ", have " +
                               std::to_string(remaining()));
    ByteView view = data_.subspan(pos_, n);
    pos_ += n;
    return view;
  }
  template <typename T>
  T read_le() {
    ByteView v = take(sizeof(T));
    T out = 0;
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      out |= static_cast<T>(static_cast<std::uint8_t>(v[i])) << (8 * i);
    }
    return out;
  }
  ByteView data_;
  Payload source_;  // empty unless constructed from a Payload
  std::size_t pos_ = 0;
};

}  // namespace simai::util
