// Filesystem helpers: atomic write-and-rename (the paper's §3.2 staging
// protocol), whole-file read/write, and a RAII temporary directory used by
// stores and tests.
#pragma once

#include <filesystem>
#include <string>

#include "util/error.hpp"
#include "util/types.hpp"

namespace simai::util {

class FsError : public Error {
 public:
  using Error::Error;
};

/// Create `dir` and any missing parents; no-op if it already exists.
void ensure_directory(const std::filesystem::path& dir);

/// Read an entire file into a byte buffer; throws FsError if unreadable.
Bytes read_file(const std::filesystem::path& path);

/// Write an entire file (truncating); throws FsError on failure.
void write_file(const std::filesystem::path& path, ByteView data);

/// The staging write protocol from the paper: write the value to a unique
/// temporary file in the same directory, flush it, then atomically rename it
/// onto `path`. Readers never observe a partially written value.
void atomic_write_file(const std::filesystem::path& path, ByteView data);

/// RAII temporary directory: created unique under the system temp dir (or
/// `base` if given), recursively removed on destruction.
class TempDir {
 public:
  explicit TempDir(const std::string& prefix = "simai",
                   const std::filesystem::path& base = {});
  ~TempDir();
  TempDir(const TempDir&) = delete;
  TempDir& operator=(const TempDir&) = delete;
  TempDir(TempDir&& other) noexcept;
  TempDir& operator=(TempDir&& other) noexcept;

  const std::filesystem::path& path() const { return path_; }

 private:
  std::filesystem::path path_;
};

}  // namespace simai::util
