// Deterministic pseudo-random number generation.
//
// Mini-apps must be reproducible across runs (the DES relies on it for
// schedule invariance tests), so all stochastic behaviour flows through an
// explicitly seeded xoshiro256** generator — never std::rand or a
// nondeterministically seeded std::mt19937.
#pragma once

#include <cstdint>

namespace simai::util {

/// SplitMix64: used to expand a single 64-bit seed into the four words of
/// xoshiro state (the construction recommended by the xoshiro authors).
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}
  std::uint64_t next();

 private:
  std::uint64_t state_;
};

/// xoshiro256**: fast, high-quality, 2^256-1 period. Satisfies
/// UniformRandomBitGenerator so it composes with <random> distributions.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed = 0x9E3779B97F4A7C15ull);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ull; }
  result_type operator()() { return next(); }

  std::uint64_t next();

  /// Uniform double in [0, 1) with 53 bits of randomness.
  double uniform();
  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);
  /// Uniform integer in [0, n); n must be > 0.
  std::uint64_t uniform_int(std::uint64_t n);
  /// Standard normal via Box–Muller (no cached spare: keeps state simple).
  double normal();
  double normal(double mean, double stddev);
  /// Exponential with the given rate (lambda > 0).
  double exponential(double rate);
  /// Seeded exponential interarrival draw — the canonical name for open-loop
  /// Poisson arrival streams (simai::serve request generators, fault window
  /// processes). Identical to exponential(rate); the alias exists so arrival
  /// code reads as what it is and stays grep-able in determinism audits.
  double next_exponential(double rate) { return exponential(rate); }

  /// Jump ahead 2^128 steps: gives independent streams for parallel ranks
  /// derived from a common seed.
  void jump();

 private:
  std::uint64_t s_[4];
};

/// Stateless 64-bit mix (the SplitMix64 finalizer). Combining a seed with a
/// counter through mix64 yields draws that depend only on (seed, counter) —
/// the keyed construction the fault injector uses so the k-th store
/// operation sees the same fault decision regardless of event interleaving.
std::uint64_t mix64(std::uint64_t x);

/// Uniform double in [0, 1) keyed by (seed, index); stateless, so the draw
/// for a given index is independent of every other call.
double keyed_uniform(std::uint64_t seed, std::uint64_t index);

}  // namespace simai::util
