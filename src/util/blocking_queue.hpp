// Bounded MPMC blocking queue (real threads, real time) — the "channel"
// primitive the Dragon substrate's shard managers communicate over.
#pragma once

#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>

namespace simai::util {

template <typename T>
class BlockingQueue {
 public:
  /// capacity == 0 means unbounded.
  explicit BlockingQueue(std::size_t capacity = 0) : capacity_(capacity) {}

  /// Blocking push; returns false if the queue was closed.
  bool push(T value) {
    std::unique_lock lock(mutex_);
    not_full_.wait(lock, [this] { return closed_ || !bounded_full(); });
    if (closed_) return false;
    queue_.push_back(std::move(value));
    not_empty_.notify_one();
    return true;
  }

  /// Blocking pop; nullopt once the queue is closed AND drained.
  std::optional<T> pop() {
    std::unique_lock lock(mutex_);
    not_empty_.wait(lock, [this] { return closed_ || !queue_.empty(); });
    if (queue_.empty()) return std::nullopt;
    T value = std::move(queue_.front());
    queue_.pop_front();
    not_full_.notify_one();
    return value;
  }

  /// Close the queue: pending pops drain remaining items then see nullopt;
  /// subsequent pushes fail.
  void close() {
    std::lock_guard lock(mutex_);
    closed_ = true;
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  std::size_t size() const {
    std::lock_guard lock(mutex_);
    return queue_.size();
  }

 private:
  bool bounded_full() const {
    return capacity_ != 0 && queue_.size() >= capacity_;
  }

  std::size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> queue_;
  bool closed_ = false;
};

}  // namespace simai::util
