// Common exception type for the SimAI-Bench library.
#pragma once

#include <stdexcept>
#include <string>

namespace simai {

/// Base class for all errors thrown by the library. Carries a plain
/// human-readable message; subsystems may subclass to allow selective
/// catching (e.g. kv::StoreError, net::NetError).
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown when a configuration document (JSON or programmatic) is invalid:
/// missing keys, wrong types, out-of-range values.
class ConfigError : public Error {
 public:
  using Error::Error;
};

}  // namespace simai
