#include "util/logging.hpp"

#include <cstdio>
#include <cstdlib>

#include "util/error.hpp"

namespace simai::util {

std::string_view log_level_name(LogLevel level) {
  switch (level) {
    case LogLevel::Trace: return "TRACE";
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO ";
    case LogLevel::Warn: return "WARN ";
    case LogLevel::Error: return "ERROR";
    case LogLevel::Off: return "OFF  ";
  }
  return "?????";
}

LogLevel parse_log_level(std::string_view name) {
  std::string lower;
  lower.reserve(name.size());
  for (char c : name) lower += static_cast<char>(std::tolower(c));
  if (lower == "trace") return LogLevel::Trace;
  if (lower == "debug") return LogLevel::Debug;
  if (lower == "info") return LogLevel::Info;
  if (lower == "warn" || lower == "warning") return LogLevel::Warn;
  if (lower == "error") return LogLevel::Error;
  if (lower == "off" || lower == "none") return LogLevel::Off;
  throw ConfigError("unknown log level '" + std::string(name) + "'");
}

Logger::Logger() {
  sink_ = [](LogLevel level, std::string_view line) {
    std::fprintf(stderr, "[%.*s] %.*s\n",
                 static_cast<int>(log_level_name(level).size()),
                 log_level_name(level).data(), static_cast<int>(line.size()),
                 line.data());
  };
  if (const char* env = std::getenv("SIMAI_LOG_LEVEL")) {
    level_ = parse_log_level(env);
  }
}

Logger& Logger::global() {
  static Logger instance;
  return instance;
}

Logger::Sink Logger::set_sink(Sink sink) {
  std::lock_guard lock(mutex_);
  Sink prev = std::move(sink_);
  sink_ = std::move(sink);
  return prev;
}

void Logger::write(LogLevel level, std::string_view component,
                   std::string_view message) {
  if (!enabled(level)) return;
  std::string line;
  line.reserve(component.size() + message.size() + 2);
  line.append(component);
  line.append(": ");
  line.append(message);
  std::lock_guard lock(mutex_);
  if (sink_) sink_(level, line);
}

}  // namespace simai::util
