#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace simai::util {

void RunningStats::add(double x) {
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void RunningStats::reset() { *this = RunningStats{}; }

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

void Histogram::add(double x) {
  samples_.push_back(x);
  sorted_ = false;
}

double Histogram::percentile(double p) const {
  if (samples_.empty()) return 0.0;
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
  p = std::clamp(p, 0.0, 100.0);
  const double rank = p / 100.0 * static_cast<double>(samples_.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const auto hi = std::min(lo + 1, samples_.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
}

std::string format_bytes(std::uint64_t bytes) {
  static constexpr const char* kUnits[] = {"B", "KiB", "MiB", "GiB", "TiB"};
  double v = static_cast<double>(bytes);
  int unit = 0;
  while (v >= 1024.0 && unit < 4) {
    v /= 1024.0;
    ++unit;
  }
  char buf[32];
  if (unit == 0)
    std::snprintf(buf, sizeof buf, "%llu B",
                  static_cast<unsigned long long>(bytes));
  else
    std::snprintf(buf, sizeof buf, "%.2f %s", v, kUnits[unit]);
  return buf;
}

std::string format_seconds(double seconds) {
  char buf[32];
  const double a = std::fabs(seconds);
  if (a < 1e-6)
    std::snprintf(buf, sizeof buf, "%.1f ns", seconds * 1e9);
  else if (a < 1e-3)
    std::snprintf(buf, sizeof buf, "%.2f us", seconds * 1e6);
  else if (a < 1.0)
    std::snprintf(buf, sizeof buf, "%.2f ms", seconds * 1e3);
  else
    std::snprintf(buf, sizeof buf, "%.3f s", seconds);
  return buf;
}

}  // namespace simai::util
