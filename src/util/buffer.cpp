#include "util/buffer.hpp"

namespace simai::util {

void ByteWriter::str(std::string_view s) {
  u32(static_cast<std::uint32_t>(s.size()));
  raw(as_bytes_view(s));
}

void ByteWriter::bytes(ByteView b) {
  u64(b.size());
  raw(b);
}

void ByteWriter::raw(ByteView b) {
  buffer_.insert(buffer_.end(), b.begin(), b.end());
}

std::string ByteReader::str() {
  const std::uint32_t n = u32();
  ByteView v = take(n);
  return {reinterpret_cast<const char*>(v.data()), v.size()};
}

Bytes ByteReader::bytes() {
  const std::uint64_t n = u64();
  ByteView v = take(static_cast<std::size_t>(n));
  return Bytes(v.begin(), v.end());
}

ByteView ByteReader::bytes_view() {
  const std::uint64_t n = u64();
  return take(static_cast<std::size_t>(n));
}

Payload ByteReader::bytes_payload() {
  const std::uint64_t n = u64();
  return raw_payload(static_cast<std::size_t>(n));
}

Payload ByteReader::raw_payload(std::size_t n) {
  const std::size_t at = pos_;
  ByteView v = take(n);
  if (source_.empty()) return Payload::copy(v);
  return source_.slice(at, n);
}

}  // namespace simai::util
