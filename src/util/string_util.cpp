#include "util/string_util.hpp"

#include <cctype>
#include <cstdarg>
#include <cstdio>

namespace simai::util {

std::vector<std::string> split(std::string_view s, char delim) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = s.find(delim, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      break;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string_view trim(std::string_view s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::string to_lower(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) out += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

bool glob_match(std::string_view pattern, std::string_view text) {
  std::size_t p = 0, t = 0;
  std::size_t star = std::string_view::npos, match = 0;
  while (t < text.size()) {
    if (p < pattern.size() &&
        (pattern[p] == '?' || pattern[p] == text[t])) {
      ++p;
      ++t;
    } else if (p < pattern.size() && pattern[p] == '*') {
      star = p++;
      match = t;
    } else if (star != std::string_view::npos) {
      p = star + 1;
      t = ++match;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '*') ++p;
  return p == pattern.size();
}

std::string strformat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list copy;
  va_copy(copy, args);
  const int n = std::vsnprintf(nullptr, 0, fmt, copy);
  va_end(copy);
  std::string out;
  if (n > 0) {
    out.resize(static_cast<std::size_t>(n));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args);
  }
  va_end(args);
  return out;
}

}  // namespace simai::util
