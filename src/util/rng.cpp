#include "util/rng.hpp"

#include <cmath>
#include <numbers>

namespace simai::util {

std::uint64_t SplitMix64::next() {
  std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Xoshiro256::Xoshiro256(std::uint64_t seed) {
  SplitMix64 sm(seed);
  for (auto& w : s_) w = sm.next();
}

std::uint64_t Xoshiro256::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Xoshiro256::uniform() {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Xoshiro256::uniform(double lo, double hi) {
  return lo + (hi - lo) * uniform();
}

std::uint64_t Xoshiro256::uniform_int(std::uint64_t n) {
  // Lemire's nearly-divisionless bounded generation with rejection to avoid
  // modulo bias.
  std::uint64_t x = next();
  __uint128_t m = static_cast<__uint128_t>(x) * n;
  auto l = static_cast<std::uint64_t>(m);
  if (l < n) {
    const std::uint64_t t = (0 - n) % n;
    while (l < t) {
      x = next();
      m = static_cast<__uint128_t>(x) * n;
      l = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

double Xoshiro256::normal() {
  // Box–Muller; guard against log(0).
  double u1 = uniform();
  while (u1 <= 0.0) u1 = uniform();
  const double u2 = uniform();
  return std::sqrt(-2.0 * std::log(u1)) *
         std::cos(2.0 * std::numbers::pi * u2);
}

double Xoshiro256::normal(double mean, double stddev) {
  return mean + stddev * normal();
}

double Xoshiro256::exponential(double rate) {
  double u = uniform();
  while (u <= 0.0) u = uniform();
  return -std::log(u) / rate;
}

void Xoshiro256::jump() {
  static constexpr std::uint64_t kJump[] = {
      0x180ec6d33cfd0abaull, 0xd5a61266f0c9392cull, 0xa9582618e03fc9aaull,
      0x39abdc4529b1661cull};
  std::uint64_t s0 = 0, s1 = 0, s2 = 0, s3 = 0;
  for (std::uint64_t jump : kJump) {
    for (int b = 0; b < 64; ++b) {
      if (jump & (1ull << b)) {
        s0 ^= s_[0];
        s1 ^= s_[1];
        s2 ^= s_[2];
        s3 ^= s_[3];
      }
      next();
    }
  }
  s_[0] = s0;
  s_[1] = s1;
  s_[2] = s2;
  s_[3] = s3;
}

std::uint64_t mix64(std::uint64_t x) {
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

double keyed_uniform(std::uint64_t seed, std::uint64_t index) {
  // Two mix rounds decorrelate adjacent indices under any seed.
  const std::uint64_t h = mix64(mix64(seed + 0x9E3779B97F4A7C15ull) ^ index);
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

}  // namespace simai::util
