// Fixed-size thread pool used by real-time (non-DES) infrastructure:
// MiniRedis connection handling and parallel test drivers. DES logical
// processes do NOT use this pool — they are dedicated threads scheduled by
// sim::Engine.
#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace simai::util {

class ThreadPool {
 public:
  explicit ThreadPool(std::size_t num_threads);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue a task; returns a future for its result. Tasks submitted after
  /// shutdown() throw std::runtime_error.
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> result = task->get_future();
    {
      std::lock_guard lock(mutex_);
      if (stopping_) throw std::runtime_error("thread pool is shut down");
      queue_.emplace_back([task] { (*task)(); });
    }
    cv_.notify_one();
    return result;
  }

  /// Drain the queue and join all workers. Idempotent; called by the dtor.
  void shutdown();

  std::size_t size() const { return workers_.size(); }

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::mutex join_mutex_;  // serializes concurrent shutdown() calls
  std::condition_variable cv_;
  bool stopping_ = false;
};

}  // namespace simai::util
