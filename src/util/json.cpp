#include "util/json.hpp"

#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

namespace simai::util {

Json::Type Json::type() const {
  switch (value_.index()) {
    case 0: return Type::Null;
    case 1: return Type::Bool;
    case 2: return Type::Int;
    case 3: return Type::Double;
    case 4: return Type::String;
    case 5: return Type::Array;
    default: return Type::Object;
  }
}

namespace {
[[noreturn]] void type_error(const char* want, Json::Type got) {
  static constexpr const char* kNames[] = {"null",   "bool",  "int",
                                           "double", "string", "array",
                                           "object"};
  throw JsonError(std::string("json: expected ") + want + ", got " +
                  kNames[static_cast<int>(got)]);
}
}  // namespace

bool Json::as_bool() const {
  if (auto* b = std::get_if<bool>(&value_)) return *b;
  type_error("bool", type());
}

std::int64_t Json::as_int() const {
  if (auto* i = std::get_if<std::int64_t>(&value_)) return *i;
  if (auto* d = std::get_if<double>(&value_)) {
    if (std::nearbyint(*d) == *d) return static_cast<std::int64_t>(*d);
  }
  type_error("int", type());
}

double Json::as_double() const {
  if (auto* d = std::get_if<double>(&value_)) return *d;
  if (auto* i = std::get_if<std::int64_t>(&value_))
    return static_cast<double>(*i);
  type_error("number", type());
}

const std::string& Json::as_string() const {
  if (auto* s = std::get_if<std::string>(&value_)) return *s;
  type_error("string", type());
}

const Json::Array& Json::as_array() const {
  if (auto* a = std::get_if<Array>(&value_)) return *a;
  type_error("array", type());
}

Json::Array& Json::as_array() {
  if (auto* a = std::get_if<Array>(&value_)) return *a;
  type_error("array", type());
}

const Json::Object& Json::as_object() const {
  if (auto* o = std::get_if<Object>(&value_)) return *o;
  type_error("object", type());
}

Json::Object& Json::as_object() {
  if (auto* o = std::get_if<Object>(&value_)) return *o;
  type_error("object", type());
}

const Json& Json::at(std::size_t i) const {
  const Array& a = as_array();
  if (i >= a.size())
    throw JsonError("json: array index " + std::to_string(i) +
                    " out of range (size " + std::to_string(a.size()) + ")");
  return a[i];
}

std::size_t Json::size() const {
  if (auto* a = std::get_if<Array>(&value_)) return a->size();
  if (auto* o = std::get_if<Object>(&value_)) return o->size();
  return 0;
}

const Json& Json::at(std::string_view key) const {
  if (const Json* p = find(key)) return *p;
  throw JsonError("json: missing key '" + std::string(key) + "'");
}

const Json* Json::find(std::string_view key) const {
  if (auto* o = std::get_if<Object>(&value_)) {
    auto it = o->find(key);
    if (it != o->end()) return &it->second;
  }
  return nullptr;
}

Json& Json::operator[](std::string_view key) {
  if (is_null()) value_ = Object{};
  Object& o = as_object();
  auto it = o.find(key);
  if (it == o.end()) it = o.emplace(std::string(key), Json()).first;
  return it->second;
}

bool Json::get(std::string_view key, bool def) const {
  const Json* p = find(key);
  return p ? p->as_bool() : def;
}
std::int64_t Json::get(std::string_view key, std::int64_t def) const {
  const Json* p = find(key);
  return p ? p->as_int() : def;
}
std::int64_t Json::get(std::string_view key, int def) const {
  return get(key, static_cast<std::int64_t>(def));
}
double Json::get(std::string_view key, double def) const {
  const Json* p = find(key);
  return p ? p->as_double() : def;
}
std::string Json::get(std::string_view key, const std::string& def) const {
  const Json* p = find(key);
  return p ? p->as_string() : def;
}
std::string Json::get(std::string_view key, const char* def) const {
  return get(key, std::string(def));
}

void Json::push_back(Json v) {
  if (is_null()) value_ = Array{};
  as_array().push_back(std::move(v));
}

bool Json::operator==(const Json& other) const {
  // Int/double comparisons are by numeric value so parse("1") == Json(1.0).
  if (is_number() && other.is_number()) return as_double() == other.as_double();
  return value_ == other.value_;
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------
namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Json parse_document() {
    Json v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return v;
  }

 private:
  std::string_view text_;
  std::size_t pos_ = 0;

  [[noreturn]] void fail(const std::string& msg) const {
    // Report a 1-based line/column for usable config error messages.
    std::size_t line = 1, col = 1;
    for (std::size_t i = 0; i < pos_ && i < text_.size(); ++i) {
      if (text_[i] == '\n') {
        ++line;
        col = 1;
      } else {
        ++col;
      }
    }
    throw JsonError("json parse error at line " + std::to_string(line) +
                    ", col " + std::to_string(col) + ": " + msg);
  }

  char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }
  char next() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_++];
  }
  bool consume(char c) {
    if (peek() == c) {
      ++pos_;
      return true;
    }
    return false;
  }
  void expect(char c) {
    if (!consume(c)) fail(std::string("expected '") + c + "'");
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r')
        ++pos_;
      else
        break;
    }
  }

  Json parse_value() {
    skip_ws();
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return Json(parse_string());
      case 't': return parse_literal("true", Json(true));
      case 'f': return parse_literal("false", Json(false));
      case 'n': return parse_literal("null", Json(nullptr));
      default: return parse_number();
    }
  }

  Json parse_literal(std::string_view word, Json value) {
    if (text_.substr(pos_, word.size()) != word) fail("invalid literal");
    pos_ += word.size();
    return value;
  }

  Json parse_object() {
    expect('{');
    Json::Object obj;
    skip_ws();
    if (consume('}')) return Json(std::move(obj));
    while (true) {
      skip_ws();
      if (peek() != '"') fail("expected object key string");
      std::string key = parse_string();
      skip_ws();
      expect(':');
      obj.insert_or_assign(std::move(key), parse_value());
      skip_ws();
      if (consume(',')) continue;
      expect('}');
      break;
    }
    return Json(std::move(obj));
  }

  Json parse_array() {
    expect('[');
    Json::Array arr;
    skip_ws();
    if (consume(']')) return Json(std::move(arr));
    while (true) {
      arr.push_back(parse_value());
      skip_ws();
      if (consume(',')) continue;
      expect(']');
      break;
    }
    return Json(std::move(arr));
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      char c = next();
      if (c == '"') break;
      if (c == '\\') {
        char e = next();
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': append_unicode_escape(out); break;
          default: fail("invalid escape sequence");
        }
      } else if (static_cast<unsigned char>(c) < 0x20) {
        fail("unescaped control character in string");
      } else {
        out += c;
      }
    }
    return out;
  }

  unsigned parse_hex4() {
    unsigned v = 0;
    for (int i = 0; i < 4; ++i) {
      char c = next();
      v <<= 4;
      if (c >= '0' && c <= '9')
        v |= static_cast<unsigned>(c - '0');
      else if (c >= 'a' && c <= 'f')
        v |= static_cast<unsigned>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F')
        v |= static_cast<unsigned>(c - 'A' + 10);
      else
        fail("invalid \\u escape");
    }
    return v;
  }

  void append_unicode_escape(std::string& out) {
    unsigned cp = parse_hex4();
    if (cp >= 0xD800 && cp <= 0xDBFF) {
      // High surrogate: must be followed by \uDC00-\uDFFF.
      if (!(consume('\\') && consume('u'))) fail("unpaired surrogate");
      unsigned lo = parse_hex4();
      if (lo < 0xDC00 || lo > 0xDFFF) fail("invalid low surrogate");
      cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
    } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
      fail("unexpected low surrogate");
    }
    append_utf8(out, cp);
  }

  static void append_utf8(std::string& out, unsigned cp) {
    if (cp < 0x80) {
      out += static_cast<char>(cp);
    } else if (cp < 0x800) {
      out += static_cast<char>(0xC0 | (cp >> 6));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else if (cp < 0x10000) {
      out += static_cast<char>(0xE0 | (cp >> 12));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else {
      out += static_cast<char>(0xF0 | (cp >> 18));
      out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    }
  }

  Json parse_number() {
    std::size_t start = pos_;
    if (consume('-')) {
    }
    if (!std::isdigit(static_cast<unsigned char>(peek()))) fail("invalid number");
    while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    bool integral = true;
    if (consume('.')) {
      integral = false;
      if (!std::isdigit(static_cast<unsigned char>(peek())))
        fail("digit required after decimal point");
      while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    if (peek() == 'e' || peek() == 'E') {
      integral = false;
      ++pos_;
      if (peek() == '+' || peek() == '-') ++pos_;
      if (!std::isdigit(static_cast<unsigned char>(peek())))
        fail("digit required in exponent");
      while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    std::string token(text_.substr(start, pos_ - start));
    if (integral) {
      errno = 0;
      char* end = nullptr;
      long long v = std::strtoll(token.c_str(), &end, 10);
      if (errno == 0 && end == token.c_str() + token.size())
        return Json(static_cast<std::int64_t>(v));
      // Fall through to double on int64 overflow.
    }
    return Json(std::strtod(token.c_str(), nullptr));
  }
};

void dump_string(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void dump_double(std::string& out, double d) {
  if (std::isnan(d) || std::isinf(d)) {
    // JSON has no NaN/Inf; emit null like Python's json with allow_nan=False
    // would reject — we choose null so dumps never produce invalid JSON.
    out += "null";
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", d);
  // Trim to the shortest representation that round-trips.
  for (int prec = 1; prec < 17; ++prec) {
    char shorter[32];
    std::snprintf(shorter, sizeof shorter, "%.*g", prec, d);
    if (std::strtod(shorter, nullptr) == d) {
      std::strcpy(buf, shorter);
      break;
    }
  }
  out += buf;
  // Ensure a double stays a double on re-parse.
  if (!std::strpbrk(buf, ".eE")) out += ".0";
}

}  // namespace

std::string Json::dump(int indent) const {
  std::string out;
  dump_impl(out, indent, 0);
  return out;
}

void Json::dump_impl(std::string& out, int indent, int depth) const {
  const bool pretty = indent >= 0;
  auto newline = [&](int d) {
    if (pretty) {
      out += '\n';
      out.append(static_cast<std::size_t>(indent * d), ' ');
    }
  };
  switch (type()) {
    case Type::Null: out += "null"; break;
    case Type::Bool: out += as_bool() ? "true" : "false"; break;
    case Type::Int: out += std::to_string(std::get<std::int64_t>(value_)); break;
    case Type::Double: dump_double(out, std::get<double>(value_)); break;
    case Type::String: dump_string(out, std::get<std::string>(value_)); break;
    case Type::Array: {
      const Array& a = std::get<Array>(value_);
      if (a.empty()) {
        out += "[]";
        break;
      }
      out += '[';
      for (std::size_t i = 0; i < a.size(); ++i) {
        if (i) out += pretty ? "," : ",";
        newline(depth + 1);
        a[i].dump_impl(out, indent, depth + 1);
      }
      newline(depth);
      out += ']';
      break;
    }
    case Type::Object: {
      const Object& o = std::get<Object>(value_);
      if (o.empty()) {
        out += "{}";
        break;
      }
      out += '{';
      bool first = true;
      for (const auto& [k, v] : o) {
        if (!first) out += ",";
        first = false;
        newline(depth + 1);
        dump_string(out, k);
        out += pretty ? ": " : ":";
        v.dump_impl(out, indent, depth + 1);
      }
      newline(depth);
      out += '}';
      break;
    }
  }
}

Json Json::parse(std::string_view text) { return Parser(text).parse_document(); }

Json Json::parse_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw JsonError("json: cannot open file '" + path + "'");
  std::ostringstream ss;
  ss << in.rdbuf();
  return parse(ss.str());
}

void Json::dump_file(const std::string& path, int indent) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw JsonError("json: cannot write file '" + path + "'");
  out << dump(indent) << '\n';
}

}  // namespace simai::util
