// Minimal leveled logger with printf-free, stream-style formatting.
//
// Workflow components and servers log through a process-global logger; tests
// can capture output by swapping the sink. Logging is cheap when disabled
// (level check before formatting) and thread-safe (single mutex per sink
// write — the DES serializes most callers anyway).
#pragma once

#include <functional>
#include <mutex>
#include <sstream>
#include <string>
#include <string_view>

namespace simai::util {

enum class LogLevel { Trace = 0, Debug, Info, Warn, Error, Off };

/// Convert a level to its fixed-width display name ("INFO ", "WARN ", ...).
std::string_view log_level_name(LogLevel level);

/// Parse "debug", "INFO", etc.; throws ConfigError on unknown names.
LogLevel parse_log_level(std::string_view name);

class Logger {
 public:
  using Sink = std::function<void(LogLevel, std::string_view)>;

  /// Process-global logger used by the SIMAI_LOG macros.
  static Logger& global();

  LogLevel level() const { return level_; }
  void set_level(LogLevel level) { level_ = level; }
  bool enabled(LogLevel level) const { return level >= level_; }

  /// Replace the output sink (default: stderr). Returns the previous sink so
  /// tests can restore it.
  Sink set_sink(Sink sink);

  void write(LogLevel level, std::string_view component,
             std::string_view message);

 private:
  Logger();
  LogLevel level_ = LogLevel::Warn;
  Sink sink_;
  std::mutex mutex_;
};

/// Stream-style log statement builder:
///   SIMAI_LOG(Info, "redis") << "server listening on " << path;
namespace detail {
class LogLine {
 public:
  LogLine(LogLevel level, std::string_view component)
      : level_(level), component_(component) {}
  ~LogLine() { Logger::global().write(level_, component_, stream_.str()); }
  template <typename T>
  LogLine& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::string component_;
  std::ostringstream stream_;
};
}  // namespace detail

}  // namespace simai::util

#define SIMAI_LOG(level, component)                                       \
  if (!::simai::util::Logger::global().enabled(                          \
          ::simai::util::LogLevel::level)) {                             \
  } else                                                                  \
    ::simai::util::detail::LogLine(::simai::util::LogLevel::level,       \
                                   (component))
