// Small shared vocabulary types used across the library.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace simai {

/// Owning byte container used for values moved through data stores.
using Bytes = std::vector<std::byte>;

/// Non-owning view over immutable bytes (the preferred parameter type).
using ByteView = std::span<const std::byte>;

/// Construct a Bytes buffer from a string's characters.
inline Bytes to_bytes(std::string_view s) {
  const auto* p = reinterpret_cast<const std::byte*>(s.data());
  return Bytes(p, p + s.size());
}

/// Construct a Bytes buffer of `n` bytes, each equal to `fill`.
inline Bytes make_bytes(std::size_t n, std::uint8_t fill = 0) {
  return Bytes(n, static_cast<std::byte>(fill));
}

/// View a string as bytes without copying.
inline ByteView as_bytes_view(std::string_view s) {
  return {reinterpret_cast<const std::byte*>(s.data()), s.size()};
}

/// Copy a byte range back into a std::string (for text payloads and tests).
inline std::string to_string(ByteView b) {
  return {reinterpret_cast<const char*>(b.data()), b.size()};
}

/// Virtual simulation time, in seconds.
using SimTime = double;

/// Mebibytes/mebi-based size helpers used throughout benches and configs.
constexpr std::size_t KiB = 1024;
constexpr std::size_t MiB = 1024 * 1024;

}  // namespace simai
