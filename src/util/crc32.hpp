// CRC-32 (IEEE 802.3 polynomial, reflected), the checksum the paper's
// DataStore uses to map keys onto shard directories (§3.2).
#pragma once

#include <cstdint>
#include <string_view>

#include "util/types.hpp"

namespace simai::util {

/// Compute the CRC-32 of a byte range. Matches zlib's crc32() and Python's
/// binascii.crc32 so shard assignments are identical to the reference
/// SimAI-Bench implementation.
std::uint32_t crc32(ByteView data, std::uint32_t seed = 0);

/// Convenience overload for text keys.
std::uint32_t crc32(std::string_view text, std::uint32_t seed = 0);

}  // namespace simai::util
