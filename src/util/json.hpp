// A small self-contained JSON DOM, parser, and writer.
//
// SimAI-Bench configures mini-apps from JSON documents (kernel lists,
// stochastic run_time PDFs, server topologies — see Listing 2 in the paper),
// so the library ships its own parser rather than depending on an external
// one. Supports the full JSON grammar (RFC 8259): null, booleans, numbers,
// strings with escapes (incl. \uXXXX with surrogate pairs), arrays, objects.
// Numbers are stored as double plus an exactness flag for integers.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "util/error.hpp"

namespace simai::util {

class Json;

/// Thrown on malformed documents (parse) or type mismatches (accessors).
class JsonError : public Error {
 public:
  using Error::Error;
};

/// JSON value. Cheap to move; copies deep-copy the subtree.
class Json {
 public:
  using Array = std::vector<Json>;
  // std::map keeps object keys ordered deterministically, which makes dumps
  // reproducible across runs — important for golden-file tests.
  using Object = std::map<std::string, Json, std::less<>>;

  enum class Type { Null, Bool, Int, Double, String, Array, Object };

  /// Constructs null.
  Json() = default;
  Json(std::nullptr_t) {}
  Json(bool b) : value_(b) {}
  Json(int v) : value_(static_cast<std::int64_t>(v)) {}
  Json(unsigned v) : value_(static_cast<std::int64_t>(v)) {}
  Json(std::int64_t v) : value_(v) {}
  Json(std::uint64_t v) : value_(static_cast<std::int64_t>(v)) {}
  Json(double v) : value_(v) {}
  Json(const char* s) : value_(std::string(s)) {}
  Json(std::string s) : value_(std::move(s)) {}
  Json(std::string_view s) : value_(std::string(s)) {}
  Json(Array a) : value_(std::move(a)) {}
  Json(Object o) : value_(std::move(o)) {}

  /// Factory helpers for explicit construction at call sites.
  static Json array() { return Json(Array{}); }
  static Json array(std::initializer_list<Json> items) {
    return Json(Array(items));
  }
  static Json object() { return Json(Object{}); }

  Type type() const;
  bool is_null() const { return type() == Type::Null; }
  bool is_bool() const { return type() == Type::Bool; }
  bool is_int() const { return type() == Type::Int; }
  bool is_double() const { return type() == Type::Double; }
  bool is_number() const { return is_int() || is_double(); }
  bool is_string() const { return type() == Type::String; }
  bool is_array() const { return type() == Type::Array; }
  bool is_object() const { return type() == Type::Object; }

  /// Checked accessors; throw JsonError on type mismatch.
  bool as_bool() const;
  std::int64_t as_int() const;       // accepts integral doubles too
  double as_double() const;          // accepts ints
  const std::string& as_string() const;
  const Array& as_array() const;
  Array& as_array();
  const Object& as_object() const;
  Object& as_object();

  /// Array element access (checked).
  const Json& at(std::size_t i) const;
  std::size_t size() const;  // array/object element count; 0 for scalars

  /// Object member access. `at` throws if the key is absent; `find` returns
  /// nullptr; operator[] inserts null (converting null→object first).
  const Json& at(std::string_view key) const;
  const Json* find(std::string_view key) const;
  bool contains(std::string_view key) const { return find(key) != nullptr; }
  Json& operator[](std::string_view key);

  /// Typed getters-with-default for config reading:
  /// cfg.get("run_count", 1) — returns the default when the key is absent,
  /// throws JsonError when present but the wrong type.
  bool get(std::string_view key, bool def) const;
  std::int64_t get(std::string_view key, std::int64_t def) const;
  std::int64_t get(std::string_view key, int def) const;
  double get(std::string_view key, double def) const;
  std::string get(std::string_view key, const std::string& def) const;
  std::string get(std::string_view key, const char* def) const;

  /// Append to an array value (converting null→array first).
  void push_back(Json v);

  bool operator==(const Json& other) const;

  /// Serialize. `indent` < 0 produces compact output; >= 0 pretty-prints
  /// with that many spaces per level.
  std::string dump(int indent = -1) const;

  /// Parse a complete document; trailing non-whitespace is an error.
  static Json parse(std::string_view text);

  /// Load/store convenience for config files.
  static Json parse_file(const std::string& path);
  void dump_file(const std::string& path, int indent = 2) const;

 private:
  using Value = std::variant<std::nullptr_t, bool, std::int64_t, double,
                             std::string, Array, Object>;
  Value value_ = nullptr;

  void dump_impl(std::string& out, int indent, int depth) const;
};

}  // namespace simai::util
