#include "util/fsutil.hpp"

#include <atomic>
#include <cstdio>
#include <fstream>
#include <system_error>

namespace simai::util {

namespace fs = std::filesystem;

void ensure_directory(const fs::path& dir) {
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec && !fs::is_directory(dir))
    throw FsError("cannot create directory '" + dir.string() +
                  "': " + ec.message());
}

Bytes read_file(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw FsError("cannot open file '" + path.string() + "'");
  in.seekg(0, std::ios::end);
  const std::streamoff size = in.tellg();
  in.seekg(0, std::ios::beg);
  Bytes data(static_cast<std::size_t>(size));
  if (size > 0 &&
      !in.read(reinterpret_cast<char*>(data.data()), size))
    throw FsError("short read from '" + path.string() + "'");
  return data;
}

void write_file(const fs::path& path, ByteView data) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw FsError("cannot open file for write '" + path.string() + "'");
  if (!data.empty() &&
      !out.write(reinterpret_cast<const char*>(data.data()),
                 static_cast<std::streamsize>(data.size())))
    throw FsError("short write to '" + path.string() + "'");
}

void atomic_write_file(const fs::path& path, ByteView data) {
  // Counter makes concurrent writers in one process collide-free; the PID in
  // real SimAI-Bench plays the same role across processes.
  static std::atomic<std::uint64_t> counter{0};
  const fs::path tmp =
      path.parent_path() /
      (path.filename().string() + ".tmp." +
       std::to_string(counter.fetch_add(1, std::memory_order_relaxed)));
  write_file(tmp, data);
  std::error_code ec;
  fs::rename(tmp, path, ec);  // atomic within one filesystem (POSIX rename)
  if (ec) {
    fs::remove(tmp);
    throw FsError("atomic rename to '" + path.string() +
                  "' failed: " + ec.message());
  }
}

TempDir::TempDir(const std::string& prefix, const fs::path& base) {
  static std::atomic<std::uint64_t> counter{0};
  const fs::path root = base.empty() ? fs::temp_directory_path() : base;
  for (int attempt = 0; attempt < 100; ++attempt) {
    fs::path candidate =
        root / (prefix + "-" + std::to_string(::getpid()) + "-" +
                std::to_string(counter.fetch_add(1)));
    std::error_code ec;
    if (fs::create_directories(candidate, ec) && !ec) {
      path_ = std::move(candidate);
      return;
    }
  }
  throw FsError("cannot create temporary directory under '" + root.string() +
                "'");
}

TempDir::~TempDir() {
  if (!path_.empty()) {
    std::error_code ec;
    fs::remove_all(path_, ec);  // best effort; never throw from a dtor
  }
}

TempDir::TempDir(TempDir&& other) noexcept : path_(std::move(other.path_)) {
  other.path_.clear();
}

TempDir& TempDir::operator=(TempDir&& other) noexcept {
  if (this != &other) {
    if (!path_.empty()) {
      std::error_code ec;
      fs::remove_all(path_, ec);
    }
    path_ = std::move(other.path_);
    other.path_.clear();
  }
  return *this;
}

}  // namespace simai::util
