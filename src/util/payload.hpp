// Payload: the zero-copy unit of the data plane.
//
// Every staged value, RESP bulk string, stream variable, and kv map entry
// moves through the transport stack as a Payload: an immutable, refcounted
// byte buffer (shared owner + pointer/length). Copying a Payload bumps a
// refcount; slice() yields an O(1) sub-range sharing the same owner; the
// bytes themselves are `const std::byte` and can never be mutated through
// any Payload, so hand-offs across threads (Dragon managers, MiniRedis
// sessions) and across DES processes are safe without defensive copies.
//
// Ownership rules (DESIGN.md §4.7):
//  * from_bytes(Bytes&&) / PayloadBuilder::finish() / ByteWriter::
//    take_payload() adopt a buffer without copying — the zero-copy entry
//    points producers should use;
//  * the implicit ByteView / Bytes& converting constructors COPY — they are
//    the compatibility shims that let legacy `put(key, ByteView(...))` call
//    sites keep working, at the old cost;
//  * view() / data() are borrows: valid while any Payload referencing the
//    owner lives. to_bytes() is the one explicit copy-out.
#pragma once

#include <cstddef>
#include <memory>

#include "util/types.hpp"

namespace simai::util {

class Payload {
 public:
  /// Empty payload (data() == nullptr, size() == 0).
  Payload() = default;

  // Compatibility shims — implicit on purpose so every pre-zero-copy call
  // site (`put(key, ByteView(buf))`, `put(key, some_bytes)`) still compiles;
  // each takes one full copy, exactly what the old interface cost.
  Payload(ByteView view) : Payload(copy(view)) {}          // NOLINT(runtime/explicit)
  Payload(const Bytes& bytes) : Payload(copy(ByteView(bytes))) {}  // NOLINT
  Payload(Bytes&& bytes) : Payload(from_bytes(std::move(bytes))) {}  // NOLINT

  /// Copy `view` into a freshly owned buffer.
  static Payload copy(ByteView view);
  /// Adopt `bytes` without copying (the buffer is moved into the owner).
  static Payload from_bytes(Bytes&& bytes);
  /// Alias an externally owned range: `owner` keeps [data, data+size) alive.
  static Payload wrap(std::shared_ptr<const void> owner, const std::byte* data,
                      std::size_t size);

  const std::byte* data() const { return data_; }
  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  ByteView view() const { return {data_, size_}; }
  /// Implicit borrow: lets ByteView-taking functions accept a Payload. The
  /// view is valid only while this Payload (or a sharing copy) lives.
  operator ByteView() const { return view(); }  // NOLINT(runtime/explicit)

  /// O(1) sub-range sharing this payload's owner — no bytes move.
  Payload slice(std::size_t offset, std::size_t length) const;
  /// Slice from `offset` to the end.
  Payload slice(std::size_t offset) const;

  /// Explicit copy-out for callers that need a mutable owned buffer.
  Bytes to_bytes() const { return Bytes(data_, data_ + size_); }

  /// Owner refcount (0 for an empty/default payload) — exposed for tests.
  long use_count() const { return owner_.use_count(); }

 private:
  std::shared_ptr<const void> owner_;
  const std::byte* data_ = nullptr;
  std::size_t size_ = 0;
};

/// Content equality (gtest and dedup checks compare stored values).
bool operator==(const Payload& a, const Payload& b);
inline bool operator!=(const Payload& a, const Payload& b) { return !(a == b); }

/// Accumulates bytes and finishes into a Payload without a final copy.
/// Reusable: finish() resets the builder for the next payload.
class PayloadBuilder {
 public:
  PayloadBuilder() = default;
  explicit PayloadBuilder(std::size_t reserve) { buffer_.reserve(reserve); }

  void reserve(std::size_t n) { buffer_.reserve(n); }
  void append(ByteView b) { buffer_.insert(buffer_.end(), b.begin(), b.end()); }
  void append_byte(std::byte b) { buffer_.push_back(b); }
  std::size_t size() const { return buffer_.size(); }

  /// Adopt the accumulated buffer as an immutable Payload (no copy) and
  /// reset the builder. Slices of the result outlive the builder.
  Payload finish() {
    Payload p = Payload::from_bytes(std::move(buffer_));
    buffer_.clear();
    return p;
  }

 private:
  Bytes buffer_;
};

}  // namespace simai::util
