// Configurable probability distributions for stochastic kernel parameters.
//
// SimAI-Bench lets run_time / run_count be sampled from a user-provided
// discrete PDF each iteration (§3.3), which is how the mini-app reproduces
// the variable iteration times of real workflows. A Distribution is built
// from a JSON spec:
//
//   0.03147                                          -> constant
//   {"dist":"discrete","values":[a,b],"probs":[p,q]} -> discrete PDF
//   {"dist":"normal","mean":m,"std":s,"min":0}       -> (clamped) normal
//   {"dist":"lognormal","mean":m,"sigma":s}          -> lognormal of ln-space
//   {"dist":"uniform","low":a,"high":b}              -> uniform
//   {"dist":"exponential","rate":r,"shift":c}        -> shifted exponential
#pragma once

#include <memory>
#include <vector>

#include "util/json.hpp"
#include "util/rng.hpp"

namespace simai::util {

/// A sampleable scalar distribution. Implementations must be pure functions
/// of the generator state so identical seeds replay identical traces.
class Distribution {
 public:
  virtual ~Distribution() = default;
  virtual double sample(Xoshiro256& rng) const = 0;
  /// Expected value (used to report configured means in validation tables).
  virtual double mean() const = 0;
};

/// Always returns the same value; the deterministic run_time case.
class ConstantDist final : public Distribution {
 public:
  explicit ConstantDist(double value) : value_(value) {}
  double sample(Xoshiro256&) const override { return value_; }
  double mean() const override { return value_; }

 private:
  double value_;
};

/// Discrete PDF over explicit support points (the paper's primary mechanism).
class DiscreteDist final : public Distribution {
 public:
  DiscreteDist(std::vector<double> values, std::vector<double> probs);
  double sample(Xoshiro256& rng) const override;
  double mean() const override;

 private:
  std::vector<double> values_;
  std::vector<double> cdf_;  // cumulative, normalized to end at 1.0
};

/// Normal, optionally clamped to [min, max] (iteration times can't be < 0).
class NormalDist final : public Distribution {
 public:
  NormalDist(double mean, double stddev, double min, double max);
  double sample(Xoshiro256& rng) const override;
  double mean() const override { return mean_; }

 private:
  double mean_, stddev_, min_, max_;
};

class LogNormalDist final : public Distribution {
 public:
  LogNormalDist(double mu, double sigma) : mu_(mu), sigma_(sigma) {}
  double sample(Xoshiro256& rng) const override;
  double mean() const override;

 private:
  double mu_, sigma_;
};

class UniformDist final : public Distribution {
 public:
  UniformDist(double low, double high) : low_(low), high_(high) {}
  double sample(Xoshiro256& rng) const override {
    return rng.uniform(low_, high_);
  }
  double mean() const override { return 0.5 * (low_ + high_); }

 private:
  double low_, high_;
};

class ExponentialDist final : public Distribution {
 public:
  ExponentialDist(double rate, double shift) : rate_(rate), shift_(shift) {}
  double sample(Xoshiro256& rng) const override {
    return shift_ + rng.exponential(rate_);
  }
  double mean() const override { return shift_ + 1.0 / rate_; }

 private:
  double rate_, shift_;
};

/// Build a distribution from its JSON spec (see header comment for forms).
/// Throws ConfigError on unknown "dist" names or invalid parameters.
std::unique_ptr<Distribution> make_distribution(const Json& spec);

}  // namespace simai::util
