#include "util/payload.hpp"

#include <algorithm>

namespace simai::util {

Payload Payload::copy(ByteView view) {
  return from_bytes(Bytes(view.begin(), view.end()));
}

Payload Payload::from_bytes(Bytes&& bytes) {
  if (bytes.empty()) return {};
  auto holder = std::make_shared<const Bytes>(std::move(bytes));
  Payload p;
  p.data_ = holder->data();
  p.size_ = holder->size();
  p.owner_ = std::move(holder);
  return p;
}

Payload Payload::wrap(std::shared_ptr<const void> owner, const std::byte* data,
                      std::size_t size) {
  if (size == 0) return {};
  Payload p;
  p.owner_ = std::move(owner);
  p.data_ = data;
  p.size_ = size;
  return p;
}

Payload Payload::slice(std::size_t offset, std::size_t length) const {
  offset = std::min(offset, size_);
  length = std::min(length, size_ - offset);
  if (length == 0) return {};
  Payload p;
  p.owner_ = owner_;
  p.data_ = data_ + offset;
  p.size_ = length;
  return p;
}

Payload Payload::slice(std::size_t offset) const {
  return slice(offset, size_ - std::min(offset, size_));
}

bool operator==(const Payload& a, const Payload& b) {
  if (a.size() != b.size()) return false;
  return std::equal(a.data(), a.data() + a.size(), b.data());
}

}  // namespace simai::util
