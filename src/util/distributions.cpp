#include "util/distributions.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace simai::util {

DiscreteDist::DiscreteDist(std::vector<double> values,
                           std::vector<double> probs)
    : values_(std::move(values)) {
  if (values_.empty() || values_.size() != probs.size())
    throw ConfigError("discrete distribution: values/probs size mismatch");
  double total = 0.0;
  for (double p : probs) {
    if (p < 0.0) throw ConfigError("discrete distribution: negative prob");
    total += p;
  }
  if (total <= 0.0)
    throw ConfigError("discrete distribution: probabilities sum to zero");
  cdf_.reserve(probs.size());
  double acc = 0.0;
  for (double p : probs) {
    acc += p / total;
    cdf_.push_back(acc);
  }
  cdf_.back() = 1.0;  // guard against accumulated round-off
}

double DiscreteDist::sample(Xoshiro256& rng) const {
  const double u = rng.uniform();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  const auto idx = static_cast<std::size_t>(it - cdf_.begin());
  return values_[std::min(idx, values_.size() - 1)];
}

double DiscreteDist::mean() const {
  double m = 0.0;
  double prev = 0.0;
  for (std::size_t i = 0; i < values_.size(); ++i) {
    m += values_[i] * (cdf_[i] - prev);
    prev = cdf_[i];
  }
  return m;
}

NormalDist::NormalDist(double mean, double stddev, double min, double max)
    : mean_(mean), stddev_(stddev), min_(min), max_(max) {
  if (stddev < 0.0) throw ConfigError("normal distribution: negative std");
  if (min > max) throw ConfigError("normal distribution: min > max");
}

double NormalDist::sample(Xoshiro256& rng) const {
  return std::clamp(rng.normal(mean_, stddev_), min_, max_);
}

double LogNormalDist::sample(Xoshiro256& rng) const {
  return std::exp(rng.normal(mu_, sigma_));
}

double LogNormalDist::mean() const {
  return std::exp(mu_ + 0.5 * sigma_ * sigma_);
}

std::unique_ptr<Distribution> make_distribution(const Json& spec) {
  if (spec.is_number()) {
    return std::make_unique<ConstantDist>(spec.as_double());
  }
  if (!spec.is_object())
    throw ConfigError("distribution spec must be a number or an object");
  const std::string kind = spec.get("dist", "constant");
  if (kind == "constant") {
    return std::make_unique<ConstantDist>(spec.at("value").as_double());
  }
  if (kind == "discrete") {
    std::vector<double> values, probs;
    for (const Json& v : spec.at("values").as_array())
      values.push_back(v.as_double());
    for (const Json& p : spec.at("probs").as_array())
      probs.push_back(p.as_double());
    return std::make_unique<DiscreteDist>(std::move(values), std::move(probs));
  }
  if (kind == "normal") {
    return std::make_unique<NormalDist>(
        spec.at("mean").as_double(), spec.at("std").as_double(),
        spec.get("min", -std::numeric_limits<double>::infinity()),
        spec.get("max", std::numeric_limits<double>::infinity()));
  }
  if (kind == "lognormal") {
    return std::make_unique<LogNormalDist>(spec.at("mean").as_double(),
                                           spec.at("sigma").as_double());
  }
  if (kind == "uniform") {
    const double low = spec.at("low").as_double();
    const double high = spec.at("high").as_double();
    if (low > high) throw ConfigError("uniform distribution: low > high");
    return std::make_unique<UniformDist>(low, high);
  }
  if (kind == "exponential") {
    const double rate = spec.at("rate").as_double();
    if (rate <= 0.0) throw ConfigError("exponential distribution: rate <= 0");
    return std::make_unique<ExponentialDist>(rate, spec.get("shift", 0.0));
  }
  throw ConfigError("unknown distribution kind '" + kind + "'");
}

}  // namespace simai::util
