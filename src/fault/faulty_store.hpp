// FaultyStore: a kv decorator that injects a FaultSchedule into any backend.
//
// Wrapping the backend (rather than patching each of the four store
// implementations) gives every transport the identical fault surface:
//
//  * inside a store-outage window, every operation throws
//    TransientStoreError carrying the window's end time;
//  * the op-index-keyed transfer-failure draw drops individual operations;
//  * the corruption draw flips the last byte of a fetched value — which the
//    DataStore's opt-in CRC32 check detects, and silently propagates when
//    the check is off (the satellite's point).
//
// The operation counter increments once per data op, so under the
// deterministic DES the k-th operation of a run always sees the same fate.
#pragma once

#include <cstdint>

#include "fault/fault.hpp"
#include "kv/store.hpp"

namespace simai::sim {
class Engine;
}

namespace simai::fault {

class FaultyStore : public kv::IKeyValueStore {
 public:
  /// `schedule` may be null (transparent pass-through). `engine` provides
  /// the virtual clock for window queries; null pins the clock at 0.
  FaultyStore(kv::StorePtr inner, const FaultSchedule* schedule,
              const sim::Engine* engine);

  using kv::IKeyValueStore::get;
  void put(std::string_view key, util::Payload value) override;
  std::optional<util::Payload> get(std::string_view key) override;
  bool exists(std::string_view key) override;
  std::size_t erase(std::string_view key) override;
  std::vector<std::string> keys(std::string_view pattern = "*") override;
  std::size_t size() override;
  void clear() override;

  /// Data operations attempted so far (the fault draw key).
  std::uint64_t op_count() const { return op_index_; }
  std::uint64_t injected_failures() const { return injected_failures_; }
  std::uint64_t injected_corruptions() const { return injected_corruptions_; }

  kv::IKeyValueStore& inner() { return *inner_; }

 private:
  SimTime now() const;
  /// Throws TransientStoreError for the current op when the schedule says
  /// so; returns this op's draw index otherwise.
  std::uint64_t check_faults(const char* what);

  kv::StorePtr inner_;
  const FaultSchedule* schedule_;
  const sim::Engine* engine_;
  std::uint64_t op_index_ = 0;
  std::uint64_t injected_failures_ = 0;
  std::uint64_t injected_corruptions_ = 0;
};

}  // namespace simai::fault
