#include "fault/faulty_store.hpp"

#include <string>

#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "sim/engine.hpp"

namespace simai::fault {

FaultyStore::FaultyStore(kv::StorePtr inner, const FaultSchedule* schedule,
                         const sim::Engine* engine)
    : inner_(std::move(inner)), schedule_(schedule), engine_(engine) {
  if (!inner_) throw kv::StoreError("faulty store: null inner store");
}

SimTime FaultyStore::now() const { return engine_ ? engine_->now() : 0.0; }

std::uint64_t FaultyStore::check_faults(const char* what) {
  const std::uint64_t op = op_index_++;
  if (!schedule_) return op;
  const SimTime t = now();
  if (schedule_->outage_active(t)) {
    ++injected_failures_;
    if (obs::enabled())
      obs::registry().counter("fault_injections_total", {{"kind", "outage"}}).inc();
    throw TransientStoreError(
        std::string("fault: store outage during ") + what,
        schedule_->outage_end_after(t));
  }
  if (schedule_->transfer_fails(op)) {
    ++injected_failures_;
    if (obs::enabled())
      obs::registry()
          .counter("fault_injections_total", {{"kind", "transfer"}})
          .inc();
    throw TransientStoreError(std::string("fault: transfer failure during ") +
                              what);
  }
  return op;
}

void FaultyStore::put(std::string_view key, util::Payload value) {
  check_faults("put");
  inner_->put(key, std::move(value));
}

std::optional<util::Payload> FaultyStore::get(std::string_view key) {
  const std::uint64_t op = check_faults("get");
  std::optional<util::Payload> fetched = inner_->get(key);
  if (!fetched) return std::nullopt;
  if (schedule_ && !fetched->empty() && schedule_->corrupts(op)) {
    // In-transit corruption: the value at rest is intact, a re-read can
    // succeed. Payloads are immutable, so the flip happens on a
    // copy-on-write clone — the corrupt-op path is the only one that
    // copies, and other holders of the stored payload are untouched. Flip
    // the last byte: inside the payload region, or inside the CRC field
    // itself for empty payloads; either way a checksummed round-trip
    // detects it.
    Bytes clone = fetched->to_bytes();
    clone.back() ^= static_cast<std::byte>(0xFF);
    fetched = util::Payload::from_bytes(std::move(clone));
    ++injected_corruptions_;
    if (obs::enabled())
      obs::registry()
          .counter("fault_injections_total", {{"kind", "corruption"}})
          .inc();
  }
  return fetched;
}

bool FaultyStore::exists(std::string_view key) {
  check_faults("exists");
  return inner_->exists(key);
}

std::size_t FaultyStore::erase(std::string_view key) {
  check_faults("erase");
  return inner_->erase(key);
}

std::vector<std::string> FaultyStore::keys(std::string_view pattern) {
  // Management/introspection ops stay fault-free: harnesses use them to
  // inspect state regardless of injected conditions.
  return inner_->keys(pattern);
}

std::size_t FaultyStore::size() { return inner_->size(); }

void FaultyStore::clear() { inner_->clear(); }

}  // namespace simai::fault
