#include "fault/faulty_store.hpp"

#include <string>

#include "sim/engine.hpp"

namespace simai::fault {

FaultyStore::FaultyStore(kv::StorePtr inner, const FaultSchedule* schedule,
                         const sim::Engine* engine)
    : inner_(std::move(inner)), schedule_(schedule), engine_(engine) {
  if (!inner_) throw kv::StoreError("faulty store: null inner store");
}

SimTime FaultyStore::now() const { return engine_ ? engine_->now() : 0.0; }

std::uint64_t FaultyStore::check_faults(const char* what) {
  const std::uint64_t op = op_index_++;
  if (!schedule_) return op;
  const SimTime t = now();
  if (schedule_->outage_active(t)) {
    ++injected_failures_;
    throw TransientStoreError(
        std::string("fault: store outage during ") + what,
        schedule_->outage_end_after(t));
  }
  if (schedule_->transfer_fails(op)) {
    ++injected_failures_;
    throw TransientStoreError(std::string("fault: transfer failure during ") +
                              what);
  }
  return op;
}

void FaultyStore::put(std::string_view key, ByteView value) {
  check_faults("put");
  inner_->put(key, value);
}

bool FaultyStore::get(std::string_view key, Bytes& out) {
  const std::uint64_t op = check_faults("get");
  Bytes fetched;
  if (!inner_->get(key, fetched)) return false;
  if (schedule_ && !fetched.empty() && schedule_->corrupts(op)) {
    // In-transit corruption: the value at rest is intact, a re-read can
    // succeed. Flip the last byte — inside the payload region, or inside
    // the CRC field itself for empty payloads; either way a checksummed
    // round-trip detects it.
    fetched.back() ^= static_cast<std::byte>(0xFF);
    ++injected_corruptions_;
  }
  out = std::move(fetched);
  return true;
}

bool FaultyStore::exists(std::string_view key) {
  check_faults("exists");
  return inner_->exists(key);
}

std::size_t FaultyStore::erase(std::string_view key) {
  check_faults("erase");
  return inner_->erase(key);
}

std::vector<std::string> FaultyStore::keys(std::string_view pattern) {
  // Management/introspection ops stay fault-free: harnesses use them to
  // inspect state regardless of injected conditions.
  return inner_->keys(pattern);
}

std::size_t FaultyStore::size() { return inner_->size(); }

void FaultyStore::clear() { inner_->clear(); }

}  // namespace simai::fault
