// Deterministic fault injection for the DES workflows.
//
// The paper benchmarks the four transport backends under healthy
// conditions; at 512-node scale real campaigns see store outages, slow
// nodes, and dropped transfers. This subsystem makes those perturbations a
// first-class, *reproducible* part of an experiment:
//
//  * FaultSchedule expands a seeded FaultSpec into a fixed timeline of
//    fault windows (store outages, per-node latency spikes) plus keyed
//    per-operation draws (transfer failures, payload corruption). The same
//    seed always yields the byte-identical schedule, and per-op draws are
//    keyed by operation index — independent of event interleaving — so two
//    runs see the exact same faults.
//  * FaultyStore (faulty_store.hpp) injects the schedule into any kv
//    backend; RetryPolicy (retry.hpp) lets DataStore survive it while
//    charging realistic retry costs to the virtual clock.
//  * install() materializes the windows as DES events and async trace
//    spans, so fault windows are visible in timelines (ASCII, CSV, and
//    chrome://tracing) alongside compute and transfers.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "kv/store.hpp"
#include "util/types.hpp"

namespace simai::sim {
class Engine;
class TraceRecorder;
}  // namespace simai::sim

namespace simai::fault {

/// A backend operation failed for a reason that is expected to clear:
/// store outage window or a dropped transfer. DataStore's RetryPolicy
/// catches exactly this type (and IntegrityError); other StoreErrors
/// propagate as hard failures.
class TransientStoreError : public kv::StoreError {
 public:
  explicit TransientStoreError(const std::string& what,
                               SimTime retry_after = -1.0)
      : kv::StoreError(what), retry_after(retry_after) {}

  /// Virtual time at which the fault is expected to clear (e.g. the end of
  /// the outage window); < 0 when unknown. Retry loops may sleep until it.
  SimTime retry_after;
};

/// A payload failed its CRC32 integrity check on read (see
/// DataStoreConfig::verify_integrity). Retryable: the corruption is in
/// transit, not at rest, so a re-read can succeed.
class IntegrityError : public kv::StoreError {
 public:
  using StoreError::StoreError;
};

enum class FaultKind {
  StoreOutage,       // backend rejects every operation inside the window
  LatencySpike,      // one node's transport costs are multiplied
  TransferFailure,   // a single operation is dropped (per-op draw)
  PayloadCorruption, // a read returns flipped bytes (per-op draw)
  ReplicaOutage      // one inference replica is down (simai::serve failover)
};

std::string_view fault_kind_name(FaultKind kind);

/// Generation parameters. Window processes are Poisson arrivals with
/// exponential durations; per-op faults are Bernoulli draws keyed by the
/// operation index.
struct FaultSpec {
  std::uint64_t seed = 1234;
  /// Windows are generated over [0, horizon) of virtual time.
  SimTime horizon = 600.0;

  /// Store outages (whole backend unavailable).
  double outage_rate = 0.0;  // windows per virtual second
  SimTime outage_mean_duration = 0.25;

  /// Per-node latency spikes (slow-node windows).
  int nodes = 1;
  double spike_rate = 0.0;  // windows per node per virtual second
  SimTime spike_mean_duration = 0.5;
  double spike_multiplier = 8.0;  // transport-cost factor inside a window

  /// Per-operation fault probabilities.
  double transfer_failure_prob = 0.0;
  double corruption_prob = 0.0;

  /// Serving-plane replica outages: independent Poisson window streams per
  /// replica (like spike streams per node), consumed by simai::serve's
  /// scheduler to trigger batch failover. `node` on the generated windows
  /// carries the replica index.
  int replicas = 0;
  double replica_outage_rate = 0.0;  // windows per replica per virtual second
  SimTime replica_outage_mean_duration = 0.5;
};

/// One generated fault window on the virtual timeline.
struct FaultWindow {
  FaultKind kind = FaultKind::StoreOutage;
  int node = -1;  // -1 = store-wide (outages); >= 0 for latency spikes
  SimTime start = 0.0;
  SimTime end = 0.0;
  double multiplier = 1.0;  // latency factor (spikes only)
};

/// The expanded, immutable fault timeline. Default-constructed schedules
/// are empty (no faults), so a null-object pattern needs no branching.
class FaultSchedule {
 public:
  FaultSchedule() = default;
  explicit FaultSchedule(const FaultSpec& spec);

  const FaultSpec& spec() const { return spec_; }
  const std::vector<FaultWindow>& windows() const { return windows_; }

  /// True when a store-wide outage covers virtual time `t`.
  bool outage_active(SimTime t) const;
  /// End of the outage window covering `t` (== `t` when none is active).
  SimTime outage_end_after(SimTime t) const;

  /// Product of the multipliers of all latency-spike windows active for
  /// `node` at time `t` (1.0 when none).
  double latency_multiplier(int node, SimTime t) const;

  /// Keyed Bernoulli draws for the op_index-th store operation. Stateless:
  /// the decision depends only on (seed, op_index).
  bool transfer_fails(std::uint64_t op_index) const;
  bool corrupts(std::uint64_t op_index) const;

  /// Serving-plane hook: true when a ReplicaOutage window for `replica`
  /// covers virtual time `t` — the scheduler skips the replica and the
  /// replica fails any batch in flight across the window's start.
  bool replica_down(int replica, SimTime t) const;
  /// End of the outage window covering (replica, t); == `t` when none is
  /// active, so failover loops can sleep exactly until the replica returns.
  SimTime replica_outage_end_after(int replica, SimTime t) const;
  /// True when any outage window for `replica` intersects [t0, t1) — how a
  /// replica detects that it died while a batch was in flight (including
  /// windows that open and close entirely inside the compute span).
  bool replica_down_within(int replica, SimTime t0, SimTime t1) const;

  /// Canonical textual form of the whole timeline; two schedules are
  /// identical iff their to_string() matches (the determinism tests and
  /// bench_resilience compare exactly this).
  std::string to_string() const;

  /// Materialize the windows on an engine: spawns a "fault-injector"
  /// process that walks the window boundaries in virtual time and records
  /// each window as an async span on `trace` (track "fault"). Purely
  /// observational — behaviour flows through FaultyStore and the pricing
  /// multiplier — but it makes faults first-class events on the timeline.
  /// The process exits once it is the only live process, checking every
  /// `heartbeat` virtual seconds so it cannot stall engine shutdown.
  void install(sim::Engine& engine, sim::TraceRecorder* trace,
               SimTime heartbeat = 1.0) const;

 private:
  FaultSpec spec_;
  std::vector<FaultWindow> windows_;  // sorted by start time
  std::vector<FaultWindow> outages_;  // the StoreOutage subset, sorted
  /// ReplicaOutage windows, one sorted non-overlapping stream per replica.
  std::vector<std::vector<FaultWindow>> replica_outages_;
};

}  // namespace simai::fault
