#include "fault/retry.hpp"

#include <algorithm>
#include <cmath>

namespace simai::fault {

SimTime RetryPolicy::backoff_delay(int attempt, util::Xoshiro256& rng) const {
  if (attempt < 1) attempt = 1;
  double delay = backoff_base *
                 std::pow(backoff_multiplier, static_cast<double>(attempt - 1));
  delay = std::min(delay, static_cast<double>(backoff_max));
  if (jitter > 0.0) delay *= 1.0 + rng.uniform(-jitter, jitter);
  return std::max(delay, 0.0);
}

RetryPolicy RetryPolicy::from_json(const util::Json& spec) {
  RetryPolicy p;
  p.max_attempts =
      static_cast<int>(spec.get("max_attempts",
                                static_cast<std::int64_t>(p.max_attempts)));
  p.timeout = spec.get("timeout_s", p.timeout);
  p.backoff_base = spec.get("backoff_base_s", p.backoff_base);
  p.backoff_multiplier = spec.get("backoff_multiplier", p.backoff_multiplier);
  p.backoff_max = spec.get("backoff_max_s", p.backoff_max);
  p.jitter = spec.get("jitter", p.jitter);
  if (p.max_attempts < 1)
    throw ConfigError("retry policy: max_attempts must be >= 1");
  if (p.timeout < 0.0 || p.backoff_base < 0.0 || p.backoff_max < 0.0)
    throw ConfigError("retry policy: negative timing parameter");
  return p;
}

util::Json RetryPolicy::to_json() const {
  util::Json j;
  j["max_attempts"] = static_cast<std::int64_t>(max_attempts);
  j["timeout_s"] = timeout;
  j["backoff_base_s"] = backoff_base;
  j["backoff_multiplier"] = backoff_multiplier;
  j["backoff_max_s"] = backoff_max;
  j["jitter"] = jitter;
  return j;
}

void RecoveryStats::merge(const RecoveryStats& other) {
  retries += other.retries;
  failed_ops += other.failed_ops;
  corrupt_payloads += other.corrupt_payloads;
  recovery_time += other.recovery_time;
}

}  // namespace simai::fault
