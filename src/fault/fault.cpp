#include "fault/fault.hpp"

#include <algorithm>
#include <cstdio>

#include "sim/engine.hpp"
#include "sim/trace.hpp"
#include "util/rng.hpp"

namespace simai::fault {

std::string_view fault_kind_name(FaultKind kind) {
  switch (kind) {
    case FaultKind::StoreOutage: return "outage";
    case FaultKind::LatencySpike: return "spike";
    case FaultKind::TransferFailure: return "transfer-failure";
    case FaultKind::PayloadCorruption: return "corruption";
    case FaultKind::ReplicaOutage: return "replica-outage";
  }
  return "?";
}

namespace {

// Domain-separation constants so the outage stream, each node's spike
// stream, and the two per-op draw families are independent under one seed.
constexpr std::uint64_t kOutageSalt = 0x07a6eull;
constexpr std::uint64_t kSpikeSalt = 0x5b1ce5ull;
constexpr std::uint64_t kTransferSalt = 0x7a115ull;
constexpr std::uint64_t kCorruptSalt = 0xc0bb1eull;
constexpr std::uint64_t kReplicaSalt = 0x5e7f1ull;

/// Poisson window process: arrivals at rate `rate`, exponential durations
/// with the given mean, clipped to [0, horizon).
void generate_windows(util::Xoshiro256& rng, double rate, SimTime mean_dur,
                      SimTime horizon, FaultKind kind, int node,
                      double multiplier, std::vector<FaultWindow>& out) {
  if (rate <= 0.0 || mean_dur <= 0.0 || horizon <= 0.0) return;
  SimTime t = 0.0;
  while (true) {
    t += rng.exponential(rate);
    if (t >= horizon) return;
    const SimTime dur = rng.exponential(1.0 / mean_dur);
    out.push_back({kind, node, t, std::min(t + dur, horizon), multiplier});
    t += dur;  // windows of one stream never overlap
  }
}

}  // namespace

FaultSchedule::FaultSchedule(const FaultSpec& spec) : spec_(spec) {
  {
    util::Xoshiro256 rng(util::mix64(spec.seed ^ kOutageSalt));
    generate_windows(rng, spec.outage_rate, spec.outage_mean_duration,
                     spec.horizon, FaultKind::StoreOutage, -1, 1.0, outages_);
  }
  windows_ = outages_;
  for (int node = 0; node < spec.nodes; ++node) {
    // One independent stream per node, so changing the node count never
    // perturbs the windows of existing nodes.
    util::Xoshiro256 rng(util::mix64(spec.seed ^ kSpikeSalt) +
                         static_cast<std::uint64_t>(node));
    generate_windows(rng, spec.spike_rate, spec.spike_mean_duration,
                     spec.horizon, FaultKind::LatencySpike, node,
                     spec.spike_multiplier, windows_);
  }
  replica_outages_.resize(static_cast<std::size_t>(std::max(spec.replicas, 0)));
  for (int r = 0; r < spec.replicas; ++r) {
    // One independent stream per replica, mirroring the per-node spike
    // streams: adding replicas never perturbs existing ones.
    util::Xoshiro256 rng(util::mix64(spec.seed ^ kReplicaSalt) +
                         static_cast<std::uint64_t>(r));
    auto& stream = replica_outages_[static_cast<std::size_t>(r)];
    generate_windows(rng, spec.replica_outage_rate,
                     spec.replica_outage_mean_duration, spec.horizon,
                     FaultKind::ReplicaOutage, r, 1.0, stream);
    windows_.insert(windows_.end(), stream.begin(), stream.end());
  }
  std::stable_sort(windows_.begin(), windows_.end(),
                   [](const FaultWindow& a, const FaultWindow& b) {
                     return a.start < b.start;
                   });
}

bool FaultSchedule::outage_active(SimTime t) const {
  return outage_end_after(t) > t;
}

SimTime FaultSchedule::outage_end_after(SimTime t) const {
  // Outages are sorted and non-overlapping: find the last window starting
  // at or before t and check coverage.
  auto it = std::upper_bound(
      outages_.begin(), outages_.end(), t,
      [](SimTime v, const FaultWindow& w) { return v < w.start; });
  if (it == outages_.begin()) return t;
  --it;
  return t < it->end ? it->end : t;
}

double FaultSchedule::latency_multiplier(int node, SimTime t) const {
  double m = 1.0;
  for (const FaultWindow& w : windows_) {
    if (w.start > t) break;
    if (w.kind != FaultKind::LatencySpike) continue;
    if (w.node >= 0 && w.node != node) continue;
    if (t < w.end) m *= w.multiplier;
  }
  return m;
}

bool FaultSchedule::replica_down(int replica, SimTime t) const {
  return replica_outage_end_after(replica, t) > t;
}

SimTime FaultSchedule::replica_outage_end_after(int replica, SimTime t) const {
  if (replica < 0 ||
      static_cast<std::size_t>(replica) >= replica_outages_.size())
    return t;
  const auto& stream = replica_outages_[static_cast<std::size_t>(replica)];
  // Per-replica streams are sorted and non-overlapping, like outages_.
  auto it = std::upper_bound(
      stream.begin(), stream.end(), t,
      [](SimTime v, const FaultWindow& w) { return v < w.start; });
  if (it == stream.begin()) return t;
  --it;
  return t < it->end ? it->end : t;
}

bool FaultSchedule::replica_down_within(int replica, SimTime t0,
                                        SimTime t1) const {
  if (replica < 0 ||
      static_cast<std::size_t>(replica) >= replica_outages_.size())
    return false;
  const auto& stream = replica_outages_[static_cast<std::size_t>(replica)];
  // First window starting at or after t0, minus one to catch a window that
  // opened earlier and is still covering t0.
  auto it = std::upper_bound(
      stream.begin(), stream.end(), t0,
      [](SimTime v, const FaultWindow& w) { return v < w.start; });
  if (it != stream.begin() && std::prev(it)->end > t0) return true;
  return it != stream.end() && it->start < t1;
}

bool FaultSchedule::transfer_fails(std::uint64_t op_index) const {
  if (spec_.transfer_failure_prob <= 0.0) return false;
  return util::keyed_uniform(spec_.seed ^ kTransferSalt, op_index) <
         spec_.transfer_failure_prob;
}

bool FaultSchedule::corrupts(std::uint64_t op_index) const {
  if (spec_.corruption_prob <= 0.0) return false;
  return util::keyed_uniform(spec_.seed ^ kCorruptSalt, op_index) <
         spec_.corruption_prob;
}

std::string FaultSchedule::to_string() const {
  char line[160];
  std::string out;
  std::snprintf(line, sizeof line,
                "fault-schedule seed=%llu horizon=%.9g p_fail=%.9g "
                "p_corrupt=%.9g\n",
                static_cast<unsigned long long>(spec_.seed), spec_.horizon,
                spec_.transfer_failure_prob, spec_.corruption_prob);
  out += line;
  for (const FaultWindow& w : windows_) {
    std::snprintf(line, sizeof line, "%s node=%d [%.9g, %.9g) x%.9g\n",
                  std::string(fault_kind_name(w.kind)).c_str(), w.node,
                  w.start, w.end, w.multiplier);
    out += line;
  }
  return out;
}

void FaultSchedule::install(sim::Engine& engine, sim::TraceRecorder* trace,
                            SimTime heartbeat) const {
  if (windows_.empty()) return;
  // Copy the windows into the closure: the schedule may outlive differently
  // than the engine and this keeps install() safe either way.
  std::vector<FaultWindow> windows = windows_;
  const SimTime beat = heartbeat > 0.0 ? heartbeat : 1.0;
  engine.spawn("fault-injector", [windows = std::move(windows), trace,
                                  beat](sim::Context& ctx) {
    for (const FaultWindow& w : windows) {
      // Walk to the window's start, waking every `beat` so the injector can
      // retire as soon as the workflow is done (it never holds the engine
      // open more than one heartbeat past the last real process). The end
      // is known a priori, so the span is recorded the moment the window
      // opens — windows that begin while the run is live always appear,
      // windows entirely after it never do.
      while (ctx.now() < w.start) {
        if (ctx.engine().live_process_count() <= 1) return;
        ctx.delay(std::min(beat, w.start - ctx.now()));
      }
      if (trace) {
        const std::string label =
            w.node >= 0 ? std::string(fault_kind_name(w.kind)) + "@node" +
                              std::to_string(w.node)
                        : std::string(fault_kind_name(w.kind));
        trace->record_async_span("fault", label, w.start, w.end);
      }
    }
  });
}

}  // namespace simai::fault
