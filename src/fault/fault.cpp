#include "fault/fault.hpp"

#include <algorithm>
#include <cstdio>

#include "sim/engine.hpp"
#include "sim/trace.hpp"
#include "util/rng.hpp"

namespace simai::fault {

std::string_view fault_kind_name(FaultKind kind) {
  switch (kind) {
    case FaultKind::StoreOutage: return "outage";
    case FaultKind::LatencySpike: return "spike";
    case FaultKind::TransferFailure: return "transfer-failure";
    case FaultKind::PayloadCorruption: return "corruption";
  }
  return "?";
}

namespace {

// Domain-separation constants so the outage stream, each node's spike
// stream, and the two per-op draw families are independent under one seed.
constexpr std::uint64_t kOutageSalt = 0x07a6eull;
constexpr std::uint64_t kSpikeSalt = 0x5b1ce5ull;
constexpr std::uint64_t kTransferSalt = 0x7a115ull;
constexpr std::uint64_t kCorruptSalt = 0xc0bb1eull;

/// Poisson window process: arrivals at rate `rate`, exponential durations
/// with the given mean, clipped to [0, horizon).
void generate_windows(util::Xoshiro256& rng, double rate, SimTime mean_dur,
                      SimTime horizon, FaultKind kind, int node,
                      double multiplier, std::vector<FaultWindow>& out) {
  if (rate <= 0.0 || mean_dur <= 0.0 || horizon <= 0.0) return;
  SimTime t = 0.0;
  while (true) {
    t += rng.exponential(rate);
    if (t >= horizon) return;
    const SimTime dur = rng.exponential(1.0 / mean_dur);
    out.push_back({kind, node, t, std::min(t + dur, horizon), multiplier});
    t += dur;  // windows of one stream never overlap
  }
}

}  // namespace

FaultSchedule::FaultSchedule(const FaultSpec& spec) : spec_(spec) {
  {
    util::Xoshiro256 rng(util::mix64(spec.seed ^ kOutageSalt));
    generate_windows(rng, spec.outage_rate, spec.outage_mean_duration,
                     spec.horizon, FaultKind::StoreOutage, -1, 1.0, outages_);
  }
  windows_ = outages_;
  for (int node = 0; node < spec.nodes; ++node) {
    // One independent stream per node, so changing the node count never
    // perturbs the windows of existing nodes.
    util::Xoshiro256 rng(util::mix64(spec.seed ^ kSpikeSalt) +
                         static_cast<std::uint64_t>(node));
    generate_windows(rng, spec.spike_rate, spec.spike_mean_duration,
                     spec.horizon, FaultKind::LatencySpike, node,
                     spec.spike_multiplier, windows_);
  }
  std::stable_sort(windows_.begin(), windows_.end(),
                   [](const FaultWindow& a, const FaultWindow& b) {
                     return a.start < b.start;
                   });
}

bool FaultSchedule::outage_active(SimTime t) const {
  return outage_end_after(t) > t;
}

SimTime FaultSchedule::outage_end_after(SimTime t) const {
  // Outages are sorted and non-overlapping: find the last window starting
  // at or before t and check coverage.
  auto it = std::upper_bound(
      outages_.begin(), outages_.end(), t,
      [](SimTime v, const FaultWindow& w) { return v < w.start; });
  if (it == outages_.begin()) return t;
  --it;
  return t < it->end ? it->end : t;
}

double FaultSchedule::latency_multiplier(int node, SimTime t) const {
  double m = 1.0;
  for (const FaultWindow& w : windows_) {
    if (w.start > t) break;
    if (w.kind != FaultKind::LatencySpike) continue;
    if (w.node >= 0 && w.node != node) continue;
    if (t < w.end) m *= w.multiplier;
  }
  return m;
}

bool FaultSchedule::transfer_fails(std::uint64_t op_index) const {
  if (spec_.transfer_failure_prob <= 0.0) return false;
  return util::keyed_uniform(spec_.seed ^ kTransferSalt, op_index) <
         spec_.transfer_failure_prob;
}

bool FaultSchedule::corrupts(std::uint64_t op_index) const {
  if (spec_.corruption_prob <= 0.0) return false;
  return util::keyed_uniform(spec_.seed ^ kCorruptSalt, op_index) <
         spec_.corruption_prob;
}

std::string FaultSchedule::to_string() const {
  char line[160];
  std::string out;
  std::snprintf(line, sizeof line,
                "fault-schedule seed=%llu horizon=%.9g p_fail=%.9g "
                "p_corrupt=%.9g\n",
                static_cast<unsigned long long>(spec_.seed), spec_.horizon,
                spec_.transfer_failure_prob, spec_.corruption_prob);
  out += line;
  for (const FaultWindow& w : windows_) {
    std::snprintf(line, sizeof line, "%s node=%d [%.9g, %.9g) x%.9g\n",
                  std::string(fault_kind_name(w.kind)).c_str(), w.node,
                  w.start, w.end, w.multiplier);
    out += line;
  }
  return out;
}

void FaultSchedule::install(sim::Engine& engine, sim::TraceRecorder* trace,
                            SimTime heartbeat) const {
  if (windows_.empty()) return;
  // Copy the windows into the closure: the schedule may outlive differently
  // than the engine and this keeps install() safe either way.
  std::vector<FaultWindow> windows = windows_;
  const SimTime beat = heartbeat > 0.0 ? heartbeat : 1.0;
  engine.spawn("fault-injector", [windows = std::move(windows), trace,
                                  beat](sim::Context& ctx) {
    for (const FaultWindow& w : windows) {
      // Walk to the window's start, waking every `beat` so the injector can
      // retire as soon as the workflow is done (it never holds the engine
      // open more than one heartbeat past the last real process). The end
      // is known a priori, so the span is recorded the moment the window
      // opens — windows that begin while the run is live always appear,
      // windows entirely after it never do.
      while (ctx.now() < w.start) {
        if (ctx.engine().live_process_count() <= 1) return;
        ctx.delay(std::min(beat, w.start - ctx.now()));
      }
      if (trace) {
        const std::string label =
            w.node >= 0 ? std::string(fault_kind_name(w.kind)) + "@node" +
                              std::to_string(w.node)
                        : std::string(fault_kind_name(w.kind));
        trace->record_async_span("fault", label, w.start, w.end);
      }
    }
  });
}

}  // namespace simai::fault
