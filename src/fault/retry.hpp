// Retry policy and recovery accounting for resilient transport clients.
//
// A failed store operation costs real time on a real machine: the client
// burns its timeout detecting the failure, then sleeps an (exponentially
// growing, jittered) backoff before the next attempt. RetryPolicy captures
// those parameters; DataStore charges every failed attempt's timeout and
// backoff to the caller's virtual clock, so resilience has a faithful
// performance price. RecoveryStats aggregates what the retries cost.
#pragma once

#include <cstdint>

#include "util/json.hpp"
#include "util/rng.hpp"
#include "util/types.hpp"

namespace simai::fault {

struct RetryPolicy {
  /// Attempts per operation, including the first (>= 1). An operation that
  /// fails `max_attempts` times is recorded as a failed op and surrendered.
  int max_attempts = 6;
  /// Virtual time burned detecting one failed attempt (the client timeout).
  SimTime timeout = 0.05;
  /// Backoff before retry k is base * multiplier^(k-1), capped at `max`.
  SimTime backoff_base = 0.01;
  double backoff_multiplier = 2.0;
  SimTime backoff_max = 2.0;
  /// Uniform jitter as a fraction of the backoff: delay *= 1 + U(-j, +j).
  double jitter = 0.1;

  /// Backoff before the (attempt+1)-th try, `attempt` counting failures so
  /// far (1-based). Draws jitter from `rng` (deterministic under the DES).
  SimTime backoff_delay(int attempt, util::Xoshiro256& rng) const;

  /// Every field optional; unknown keys ignored (config surface of the
  /// resilience benches).
  static RetryPolicy from_json(const util::Json& spec);
  util::Json to_json() const;
};

/// What resilience cost a client: surfaced per component through
/// core::Report alongside throughput statistics.
struct RecoveryStats {
  std::uint64_t retries = 0;           // failed attempts that were retried
  std::uint64_t failed_ops = 0;        // operations that exhausted attempts
  std::uint64_t corrupt_payloads = 0;  // CRC mismatches detected on read
  SimTime recovery_time = 0.0;  // virtual time spent in timeouts + backoff

  void merge(const RecoveryStats& other);
  bool any() const {
    return retries || failed_ops || corrupt_payloads || recovery_time > 0.0;
  }
};

}  // namespace simai::fault
