// IO kernels from Table 1: WriteSingleRank, WriteNonMPI, WriteWithMPI,
// ReadNonMPI, ReadWithMPI.
//
// Non-MPI variants do real per-rank file I/O into ctx.io_dir. The MPI
// variants emulate MPI-IO collectives: ranks gather their blocks to rank 0
// over the in-process communicator, which performs one contiguous write
// (reads scatter the other way) — the data movement pattern of a collective
// buffered write, which is what matters for a transport benchmark.
#include <cstring>
#include <vector>

#include "kernels/kernel.hpp"
#include "util/fsutil.hpp"

namespace simai::kernels {
namespace {

std::vector<double> make_payload(std::size_t n, util::Xoshiro256& rng) {
  std::vector<double> v(n);
  for (double& x : v) x = rng.uniform(-1.0, 1.0);
  return v;
}

double checksum_of(const std::vector<double>& v) {
  double s = 0.0;
  for (double x : v) s += x;
  return s;
}

/// Disk cost model shared by the IO kernels: a seek/open latency plus a
/// bandwidth term (node-local NVMe class by default).
struct DiskModel {
  double latency = 100e-6;
  double bandwidth = 2.0e9;
  SimTime io_time(std::uint64_t bytes) const {
    return latency + static_cast<double>(bytes) / bandwidth;
  }
};

class IoKernelBase : public Kernel {
 public:
  explicit IoKernelBase(const util::Json& config)
      : n_(element_count(parse_data_size(config, 1 << 16))) {}

 protected:
  std::filesystem::path rank_file(const KernelContext& ctx, int rank) const {
    if (ctx.io_dir.empty())
      throw ConfigError(std::string(
          "IO kernel requires KernelContext.io_dir to be set"));
    return ctx.io_dir / ("io_rank" + std::to_string(rank) + ".bin");
  }

  static ByteView as_byte_view(const std::vector<double>& v) {
    return {reinterpret_cast<const std::byte*>(v.data()),
            v.size() * sizeof(double)};
  }

  std::size_t n_;
  DiskModel disk_;
};

// Only the root rank writes; others idle (a common checkpoint pattern).
class WriteSingleRank final : public IoKernelBase {
 public:
  using IoKernelBase::IoKernelBase;
  std::string_view name() const override { return "WriteSingleRank"; }

  KernelResult run(KernelContext& ctx) override {
    KernelResult r;
    if (ctx.rank == 0) {
      const auto payload = make_payload(n_, ctx.rng);
      util::write_file(rank_file(ctx, 0), as_byte_view(payload));
      r.bytes_touched = n_ * sizeof(double);
      r.modeled_time = disk_.io_time(r.bytes_touched);
      r.checksum = checksum_of(payload);
    }
    return r;
  }
};

// Every rank writes its own file (file-per-process).
class WriteNonMPI final : public IoKernelBase {
 public:
  using IoKernelBase::IoKernelBase;
  std::string_view name() const override { return "WriteNonMPI"; }

  KernelResult run(KernelContext& ctx) override {
    const auto payload = make_payload(n_, ctx.rng);
    util::write_file(rank_file(ctx, ctx.rank), as_byte_view(payload));
    KernelResult r;
    r.bytes_touched = n_ * sizeof(double);
    r.modeled_time = disk_.io_time(r.bytes_touched);
    r.checksum = checksum_of(payload);
    return r;
  }
};

// Every rank reads its own file; errors if WriteNonMPI has not run.
class ReadNonMPI final : public IoKernelBase {
 public:
  using IoKernelBase::IoKernelBase;
  std::string_view name() const override { return "ReadNonMPI"; }

  KernelResult run(KernelContext& ctx) override {
    const Bytes data = util::read_file(rank_file(ctx, ctx.rank));
    KernelResult r;
    r.bytes_touched = data.size();
    r.modeled_time = disk_.io_time(r.bytes_touched);
    std::vector<double> v(data.size() / sizeof(double));
    std::memcpy(v.data(), data.data(), v.size() * sizeof(double));
    r.checksum = checksum_of(v);
    return r;
  }
};

// Collective write: ranks gather blocks to rank 0, which writes one file.
class WriteWithMPI final : public IoKernelBase {
 public:
  using IoKernelBase::IoKernelBase;
  std::string_view name() const override { return "WriteWithMPI"; }

  KernelResult run(KernelContext& ctx) override {
    if (!ctx.comm || !ctx.sim_ctx)
      throw ConfigError("WriteWithMPI requires a communicator context");
    const auto payload = make_payload(n_, ctx.rng);
    const std::vector<double> all =
        ctx.comm->gather(*ctx.sim_ctx, ctx.rank, 0, payload);
    KernelResult r;
    r.bytes_touched = n_ * sizeof(double);
    r.checksum = checksum_of(payload);
    if (ctx.rank == 0) {
      util::write_file(ctx.io_dir / "io_collective.bin", as_byte_view(all));
      r.modeled_time = disk_.io_time(all.size() * sizeof(double));
    } else {
      r.modeled_time = disk_.latency;  // participation overhead
    }
    return r;
  }
};

// Collective read: rank 0 reads the shared file and scatters equal blocks.
class ReadWithMPI final : public IoKernelBase {
 public:
  using IoKernelBase::IoKernelBase;
  std::string_view name() const override { return "ReadWithMPI"; }

  KernelResult run(KernelContext& ctx) override {
    if (!ctx.comm || !ctx.sim_ctx)
      throw ConfigError("ReadWithMPI requires a communicator context");
    std::vector<double> all;
    if (ctx.rank == 0) {
      const Bytes data = util::read_file(ctx.io_dir / "io_collective.bin");
      all.resize(data.size() / sizeof(double));
      std::memcpy(all.data(), data.data(), all.size() * sizeof(double));
      // Trim so the buffer scatters evenly.
      all.resize(all.size() - all.size() % static_cast<std::size_t>(ctx.nranks));
    }
    const std::vector<double> mine =
        ctx.comm->scatter(*ctx.sim_ctx, ctx.rank, 0, all);
    KernelResult r;
    r.bytes_touched = mine.size() * sizeof(double);
    r.modeled_time = ctx.rank == 0
                         ? disk_.io_time(all.size() * sizeof(double))
                         : disk_.latency;
    r.checksum = checksum_of(mine);
    return r;
  }
};

}  // namespace

void register_io_kernels() {
  register_kernel("WriteSingleRank", [](const util::Json& c) -> KernelPtr {
    return std::make_unique<WriteSingleRank>(c);
  });
  register_kernel("WriteNonMPI", [](const util::Json& c) -> KernelPtr {
    return std::make_unique<WriteNonMPI>(c);
  });
  register_kernel("ReadNonMPI", [](const util::Json& c) -> KernelPtr {
    return std::make_unique<ReadNonMPI>(c);
  });
  register_kernel("WriteWithMPI", [](const util::Json& c) -> KernelPtr {
    return std::make_unique<WriteWithMPI>(c);
  });
  register_kernel("ReadWithMPI", [](const util::Json& c) -> KernelPtr {
    return std::make_unique<ReadWithMPI>(c);
  });
}

}  // namespace simai::kernels
