#include "kernels/calibrate.hpp"

#include <cmath>

namespace simai::kernels {

namespace {
/// Modelled time of `kernel_name` at linear size n (without executing the
/// real math at large n: a probe run at small size is scaled by the
/// model, but since modeled_time comes from the kernel's own flop/byte
/// accounting we must instantiate at n — cheap because run() is only
/// invoked once per probe with RealCompute semantics handled here by
/// executing the real kernel only at small sizes).
SimTime modeled_time_at(const std::string& kernel_name,
                        const DeviceModel& device, std::size_t n,
                        bool square) {
  util::Json cfg;
  if (square) {
    cfg["data_size"] = util::Json::array(
        {static_cast<std::int64_t>(n), static_cast<std::int64_t>(n)});
  } else {
    cfg["data_size"] = static_cast<std::int64_t>(n);
  }
  KernelPtr kernel = make_kernel(kernel_name, cfg);
  KernelContext ctx;
  ctx.device = device;
  // Execute the real kernel only when the work volume is small; above the
  // threshold, estimate by scaling a smaller probe (all supported kernels
  // have polynomial flop counts, so the model is exact under scaling).
  // 256 keeps square probes compute-bound on every device preset (the
  // n^3 scaling below is exact only in that regime) while keeping the
  // real probe execution cheap.
  constexpr std::size_t kDirectLimit = 256;
  const std::size_t direct_limit = square ? kDirectLimit : (1u << 20);
  if (n <= direct_limit) {
    return kernel->run(ctx).modeled_time;
  }
  // Probe at a smaller size and scale by the kernel's asymptotic order:
  // square kernels (GEMM) are O(n^3); linear kernels are O(n).
  const std::size_t probe = direct_limit;
  util::Json probe_cfg;
  if (square) {
    probe_cfg["data_size"] = util::Json::array(
        {static_cast<std::int64_t>(probe), static_cast<std::int64_t>(probe)});
  } else {
    probe_cfg["data_size"] = static_cast<std::int64_t>(probe);
  }
  KernelPtr probe_kernel = make_kernel(kernel_name, probe_cfg);
  const KernelResult pr = probe_kernel->run(ctx);
  const double ratio = static_cast<double>(n) / static_cast<double>(probe);
  const double scale = square ? ratio * ratio * ratio : ratio;
  // Subtract launch latency before scaling, re-add after.
  const double work = pr.modeled_time - device.launch_latency;
  return device.launch_latency + work * scale;
}
}  // namespace

CalibrationResult calibrate_data_size(const std::string& kernel_name,
                                      const DeviceModel& device,
                                      double target_time, bool square,
                                      std::size_t min_n, std::size_t max_n) {
  if (target_time <= 0.0)
    throw ConfigError("calibrate: target time must be positive");
  std::size_t lo = min_n, hi = max_n;
  // Binary search on the monotone modelled time.
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (modeled_time_at(kernel_name, device, mid, square) < target_time) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  CalibrationResult best;
  best.data_size = lo;
  best.modeled_time = modeled_time_at(kernel_name, device, lo, square);
  // The neighbor below may be closer.
  if (lo > min_n) {
    const SimTime below = modeled_time_at(kernel_name, device, lo - 1, square);
    if (std::abs(below - target_time) <
        std::abs(best.modeled_time - target_time)) {
      best.data_size = lo - 1;
      best.modeled_time = below;
    }
  }
  best.relative_error =
      std::abs(best.modeled_time - target_time) / target_time;
  return best;
}

util::Json make_calibrated_config(const std::string& kernel_name,
                                  const std::string& device_name,
                                  double target_time, bool square) {
  const DeviceModel device = DeviceModel::of(parse_device(device_name));
  const CalibrationResult r =
      calibrate_data_size(kernel_name, device, target_time, square);
  util::Json cfg;
  cfg["name"] = kernel_name + "_calibrated";
  cfg["mini_app_kernel"] = kernel_name;
  if (square) {
    cfg["data_size"] =
        util::Json::array({static_cast<std::int64_t>(r.data_size),
                           static_cast<std::int64_t>(r.data_size)});
  } else {
    cfg["data_size"] = static_cast<std::int64_t>(r.data_size);
  }
  cfg["run_time"] = target_time;
  cfg["device"] = device_name;
  return cfg;
}

}  // namespace simai::kernels
