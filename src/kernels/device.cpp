#include "kernels/device.hpp"

#include <algorithm>

#include "util/string_util.hpp"

namespace simai::kernels {

DeviceType parse_device(std::string_view name) {
  const std::string n = util::to_lower(name);
  if (n == "cpu") return DeviceType::Cpu;
  if (n == "xpu" || n == "gpu") return DeviceType::Xpu;
  throw ConfigError("unknown device '" + std::string(name) + "'");
}

std::string_view device_name(DeviceType type) {
  return type == DeviceType::Cpu ? "cpu" : "xpu";
}

DeviceModel DeviceModel::xpu_tile() {
  DeviceModel d;
  d.type = DeviceType::Xpu;
  d.flops = 8.0e12;   // sustained, not peak
  d.mem_bw = 6.0e11;  // HBM2e per tile
  d.h2d_bw = 3.0e10;  // PCIe/fabric host link
  d.d2h_bw = 2.5e10;
  d.launch_latency = 10e-6;
  return d;
}

DeviceModel DeviceModel::cpu() { return DeviceModel{}; }

DeviceModel DeviceModel::of(DeviceType type) {
  return type == DeviceType::Xpu ? xpu_tile() : cpu();
}

SimTime DeviceModel::compute_time(double flop_count,
                                  std::uint64_t bytes) const {
  // Roofline-style: compute and memory phases overlap imperfectly; take the
  // max plus launch overhead.
  const double t_flops = flop_count / flops;
  const double t_mem = static_cast<double>(bytes) / mem_bw;
  return launch_latency + std::max(t_flops, t_mem);
}

SimTime DeviceModel::h2d_time(std::uint64_t bytes) const {
  return launch_latency + static_cast<double>(bytes) / h2d_bw;
}

SimTime DeviceModel::d2h_time(std::uint64_t bytes) const {
  return launch_latency + static_cast<double>(bytes) / d2h_bw;
}

}  // namespace simai::kernels
