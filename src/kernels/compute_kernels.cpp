// Compute kernels from Table 1: MatMulSimple2D, MatMulGeneral, FFT, AXPY,
// InplaceCompute, GenerateRandomNumber, ScatterAdd.
//
// Each does real floating-point work over buffers sized by "data_size" and
// returns a checksum so results are testable and the work cannot be
// optimized away; the modelled time comes from the device roofline.
#include <cmath>
#include <complex>
#include <numbers>
#include <vector>

#include "kernels/kernel.hpp"

namespace simai::kernels {
namespace {

/// Fill a buffer with reproducible pseudo-random values in [-1, 1).
void fill_random(std::vector<double>& v, util::Xoshiro256& rng) {
  for (double& x : v) x = rng.uniform(-1.0, 1.0);
}

double sum_of(const std::vector<double>& v) {
  double s = 0.0;
  for (double x : v) s += x;
  return s;
}

// --------------------------------------------------------------------------
// MatMulSimple2D: square matrix product, the kernel the paper's nekRS
// emulation uses (Listing 2: data_size [256, 256]).
// --------------------------------------------------------------------------
class MatMulSimple2D final : public Kernel {
 public:
  explicit MatMulSimple2D(const util::Json& config) {
    const auto dims = parse_data_size(config, 256);
    n_ = dims[0];
    if (dims.size() > 1 && dims[1] != dims[0])
      throw ConfigError("MatMulSimple2D requires a square data_size");
  }

  std::string_view name() const override { return "MatMulSimple2D"; }

  KernelResult run(KernelContext& ctx) override {
    const std::size_t n = n_;
    std::vector<double> a(n * n), b(n * n), c(n * n, 0.0);
    fill_random(a, ctx.rng);
    fill_random(b, ctx.rng);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t k = 0; k < n; ++k) {
        const double aik = a[i * n + k];
        for (std::size_t j = 0; j < n; ++j) {
          c[i * n + j] += aik * b[k * n + j];
        }
      }
    }
    KernelResult r;
    r.flops = 2.0 * static_cast<double>(n) * static_cast<double>(n) *
              static_cast<double>(n);
    r.bytes_touched = 3 * n * n * sizeof(double);
    r.modeled_time = ctx.device.compute_time(r.flops, r.bytes_touched);
    r.checksum = sum_of(c);
    return r;
  }

 private:
  std::size_t n_;
};

// --------------------------------------------------------------------------
// MatMulGeneral: rectangular GEMM C[MxN] = A[MxK] * B[KxN], blocked.
// --------------------------------------------------------------------------
class MatMulGeneral final : public Kernel {
 public:
  explicit MatMulGeneral(const util::Json& config) {
    const auto dims = parse_data_size(config, 128);
    m_ = dims[0];
    k_ = dims.size() > 1 ? dims[1] : dims[0];
    n_ = dims.size() > 2 ? dims[2] : dims[0];
  }

  std::string_view name() const override { return "MatMulGeneral"; }

  KernelResult run(KernelContext& ctx) override {
    std::vector<double> a(m_ * k_), b(k_ * n_), c(m_ * n_, 0.0);
    fill_random(a, ctx.rng);
    fill_random(b, ctx.rng);
    constexpr std::size_t kBlock = 64;
    for (std::size_t i0 = 0; i0 < m_; i0 += kBlock) {
      for (std::size_t k0 = 0; k0 < k_; k0 += kBlock) {
        for (std::size_t j0 = 0; j0 < n_; j0 += kBlock) {
          const std::size_t imax = std::min(i0 + kBlock, m_);
          const std::size_t kmax = std::min(k0 + kBlock, k_);
          const std::size_t jmax = std::min(j0 + kBlock, n_);
          for (std::size_t i = i0; i < imax; ++i) {
            for (std::size_t k = k0; k < kmax; ++k) {
              const double aik = a[i * k_ + k];
              for (std::size_t j = j0; j < jmax; ++j) {
                c[i * n_ + j] += aik * b[k * n_ + j];
              }
            }
          }
        }
      }
    }
    KernelResult r;
    r.flops = 2.0 * static_cast<double>(m_) * static_cast<double>(k_) *
              static_cast<double>(n_);
    r.bytes_touched = (m_ * k_ + k_ * n_ + m_ * n_) * sizeof(double);
    r.modeled_time = ctx.device.compute_time(r.flops, r.bytes_touched);
    r.checksum = sum_of(c);
    return r;
  }

 private:
  std::size_t m_, k_, n_;
};

// --------------------------------------------------------------------------
// FFT: iterative radix-2 Cooley-Tukey over a complex signal. data_size is
// rounded up to the next power of two.
// --------------------------------------------------------------------------
class FftKernel final : public Kernel {
 public:
  explicit FftKernel(const util::Json& config) {
    std::size_t n = element_count(parse_data_size(config, 1024));
    std::size_t p = 1;
    while (p < n) p <<= 1;
    n_ = p;
  }

  std::string_view name() const override { return "FFT"; }

  static void fft_inplace(std::vector<std::complex<double>>& x) {
    const std::size_t n = x.size();
    // Bit-reversal permutation.
    for (std::size_t i = 1, j = 0; i < n; ++i) {
      std::size_t bit = n >> 1;
      for (; j & bit; bit >>= 1) j ^= bit;
      j ^= bit;
      if (i < j) std::swap(x[i], x[j]);
    }
    for (std::size_t len = 2; len <= n; len <<= 1) {
      const double angle =
          -2.0 * std::numbers::pi / static_cast<double>(len);
      const std::complex<double> wlen(std::cos(angle), std::sin(angle));
      for (std::size_t i = 0; i < n; i += len) {
        std::complex<double> w(1.0);
        for (std::size_t k = 0; k < len / 2; ++k) {
          const std::complex<double> u = x[i + k];
          const std::complex<double> v = x[i + k + len / 2] * w;
          x[i + k] = u + v;
          x[i + k + len / 2] = u - v;
          w *= wlen;
        }
      }
    }
  }

  KernelResult run(KernelContext& ctx) override {
    std::vector<std::complex<double>> x(n_);
    for (auto& c : x) c = {ctx.rng.uniform(-1.0, 1.0), 0.0};
    fft_inplace(x);
    KernelResult r;
    const double n = static_cast<double>(n_);
    r.flops = 5.0 * n * std::log2(n);
    r.bytes_touched = n_ * sizeof(std::complex<double>) * 2;
    r.modeled_time = ctx.device.compute_time(r.flops, r.bytes_touched);
    double s = 0.0;
    for (const auto& c : x) s += std::abs(c);
    r.checksum = s;
    return r;
  }

 private:
  std::size_t n_;
};

// --------------------------------------------------------------------------
// AXPY: y = a*x + y.
// --------------------------------------------------------------------------
class AxpyKernel final : public Kernel {
 public:
  explicit AxpyKernel(const util::Json& config)
      : n_(element_count(parse_data_size(config, 1 << 20))),
        alpha_(config.get("alpha", 2.5)) {}

  std::string_view name() const override { return "AXPY"; }

  KernelResult run(KernelContext& ctx) override {
    std::vector<double> x(n_), y(n_);
    fill_random(x, ctx.rng);
    fill_random(y, ctx.rng);
    for (std::size_t i = 0; i < n_; ++i) y[i] += alpha_ * x[i];
    KernelResult r;
    r.flops = 2.0 * static_cast<double>(n_);
    r.bytes_touched = 3 * n_ * sizeof(double);
    r.modeled_time = ctx.device.compute_time(r.flops, r.bytes_touched);
    r.checksum = sum_of(y);
    return r;
  }

 private:
  std::size_t n_;
  double alpha_;
};

// --------------------------------------------------------------------------
// InplaceCompute: x = f(x) applied in place (transcendental per element).
// --------------------------------------------------------------------------
class InplaceCompute final : public Kernel {
 public:
  explicit InplaceCompute(const util::Json& config)
      : n_(element_count(parse_data_size(config, 1 << 18))) {}

  std::string_view name() const override { return "InplaceCompute"; }

  KernelResult run(KernelContext& ctx) override {
    std::vector<double> x(n_);
    fill_random(x, ctx.rng);
    for (double& v : x) v = std::sin(v) * std::exp(-v * v);
    KernelResult r;
    r.flops = 20.0 * static_cast<double>(n_);  // transcendental cost proxy
    r.bytes_touched = 2 * n_ * sizeof(double);
    r.modeled_time = ctx.device.compute_time(r.flops, r.bytes_touched);
    r.checksum = sum_of(x);
    return r;
  }

 private:
  std::size_t n_;
};

// --------------------------------------------------------------------------
// GenerateRandomNumber: fill an array from the device RNG.
// --------------------------------------------------------------------------
class GenerateRandomNumber final : public Kernel {
 public:
  explicit GenerateRandomNumber(const util::Json& config)
      : n_(element_count(parse_data_size(config, 1 << 20))) {}

  std::string_view name() const override { return "GenerateRandomNumber"; }

  KernelResult run(KernelContext& ctx) override {
    std::vector<double> x(n_);
    fill_random(x, ctx.rng);
    KernelResult r;
    r.flops = 2.0 * static_cast<double>(n_);
    r.bytes_touched = n_ * sizeof(double);
    r.modeled_time = ctx.device.compute_time(r.flops, r.bytes_touched);
    r.checksum = sum_of(x);
    return r;
  }

 private:
  std::size_t n_;
};

// --------------------------------------------------------------------------
// ScatterAdd: out[idx[i]] += src[i] with random indices.
// --------------------------------------------------------------------------
class ScatterAdd final : public Kernel {
 public:
  explicit ScatterAdd(const util::Json& config) {
    const auto dims = parse_data_size(config, 1 << 18);
    n_src_ = dims[0];
    n_dst_ = dims.size() > 1 ? dims[1] : dims[0];
  }

  std::string_view name() const override { return "ScatterAdd"; }

  KernelResult run(KernelContext& ctx) override {
    std::vector<double> src(n_src_), dst(n_dst_, 0.0);
    fill_random(src, ctx.rng);
    for (std::size_t i = 0; i < n_src_; ++i) {
      dst[ctx.rng.uniform_int(n_dst_)] += src[i];
    }
    KernelResult r;
    r.flops = static_cast<double>(n_src_);
    r.bytes_touched = (n_src_ + 2 * n_src_) * sizeof(double);
    r.modeled_time = ctx.device.compute_time(r.flops, r.bytes_touched);
    // Scatter order doesn't change the sum: checksum is exact.
    r.checksum = sum_of(dst);
    return r;
  }

 private:
  std::size_t n_src_, n_dst_;
};

}  // namespace

void register_compute_kernels() {
  register_kernel("MatMulSimple2D", [](const util::Json& c) -> KernelPtr {
    return std::make_unique<MatMulSimple2D>(c);
  });
  register_kernel("MatMulGeneral", [](const util::Json& c) -> KernelPtr {
    return std::make_unique<MatMulGeneral>(c);
  });
  register_kernel("FFT", [](const util::Json& c) -> KernelPtr {
    return std::make_unique<FftKernel>(c);
  });
  register_kernel("AXPY", [](const util::Json& c) -> KernelPtr {
    return std::make_unique<AxpyKernel>(c);
  });
  register_kernel("InplaceCompute", [](const util::Json& c) -> KernelPtr {
    return std::make_unique<InplaceCompute>(c);
  });
  register_kernel("GenerateRandomNumber",
                  [](const util::Json& c) -> KernelPtr {
                    return std::make_unique<GenerateRandomNumber>(c);
                  });
  register_kernel("ScatterAdd", [](const util::Json& c) -> KernelPtr {
    return std::make_unique<ScatterAdd>(c);
  });
}

}  // namespace simai::kernels
