// Device abstraction for kernel placement and data movement.
//
// The paper's kernels target Aurora's Intel Max 1550 GPU tiles through dpnp.
// Here a Device is a modelled execution space: kernels execute their real
// math on the CPU (so results are verifiable), while the *modelled* cost of
// an iteration comes from the device's rates — which is all the mini-app
// needs, since SimAI-Bench pins kernel duration to a configured run_time and
// uses the device only for placement and transfer pricing.
#pragma once

#include <cstdint>
#include <string_view>

#include "util/error.hpp"
#include "util/types.hpp"

namespace simai::kernels {

enum class DeviceType { Cpu, Xpu };

/// Parse "cpu" / "xpu" (also "gpu" as an alias for xpu).
DeviceType parse_device(std::string_view name);
std::string_view device_name(DeviceType type);

/// Modelled execution rates for one device.
struct DeviceModel {
  DeviceType type = DeviceType::Cpu;
  double flops = 1.0e11;      // sustained FLOP/s for kernel math
  double mem_bw = 2.0e10;     // B/s streaming through device memory
  double h2d_bw = 3.0e10;     // host->device copy bandwidth
  double d2h_bw = 2.5e10;     // device->host copy bandwidth
  double launch_latency = 5e-6;  // per-kernel-invocation overhead

  /// One Aurora Max 1550 tile (half a GPU): ~26 TF/s FP32 per tile class
  /// hardware; conservative sustained figures.
  static DeviceModel xpu_tile();
  /// One CPU core class device.
  static DeviceModel cpu();
  static DeviceModel of(DeviceType type);

  /// Modelled time to execute `flop_count` FLOPs + stream `bytes`.
  SimTime compute_time(double flop_count, std::uint64_t bytes = 0) const;
  SimTime h2d_time(std::uint64_t bytes) const;
  SimTime d2h_time(std::uint64_t bytes) const;
};

}  // namespace simai::kernels
