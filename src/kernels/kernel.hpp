// Kernel primitives (the paper's Table 1) and their registry.
//
// A Kernel is one configurable operation — compute, I/O, collective, or
// copy — that a Simulation component strings into iterations. Kernels do
// REAL work sized by their configuration (real GEMMs, real FFTs, real file
// writes, real all-reduces over the in-process communicator) and report a
// MODELLED cost from the device/topology models; the Simulation layer
// decides whether to charge that estimate or a configured run_time,
// mirroring SimAI-Bench's run_time/run_count semantics.
//
// The registry is open: register_kernel() accepts custom factories, which
// is the extensibility hook §3.1 describes.
#pragma once

#include <filesystem>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "kernels/device.hpp"
#include "net/communicator.hpp"
#include "sim/engine.hpp"
#include "util/json.hpp"
#include "util/rng.hpp"

namespace simai::kernels {

/// Execution environment handed to kernels. Collective and MPI-IO kernels
/// require `comm` + `sim_ctx`; the rest run standalone.
struct KernelContext {
  int rank = 0;
  int nranks = 1;
  net::Communicator* comm = nullptr;  // required by collectives / MPI-IO
  sim::Context* sim_ctx = nullptr;    // required when comm is used
  std::filesystem::path io_dir;       // scratch directory for IO kernels
  util::Xoshiro256 rng{12345};
  DeviceModel device = DeviceModel::cpu();
};

/// Outcome of one kernel invocation.
struct KernelResult {
  SimTime modeled_time = 0.0;  // estimated duration on the target device
  double checksum = 0.0;       // value derived from the real computation
  std::uint64_t bytes_touched = 0;
  double flops = 0.0;
};

class Kernel {
 public:
  virtual ~Kernel() = default;
  virtual std::string_view name() const = 0;
  /// Execute one iteration of real work and return its modelled cost.
  virtual KernelResult run(KernelContext& ctx) = 0;
};

using KernelPtr = std::unique_ptr<Kernel>;

/// Factory signature: builds a kernel from its JSON config. Recognized
/// config fields are kernel-specific; all honor "data_size" (scalar or
/// [rows, cols] array, in elements).
using KernelFactory = std::function<KernelPtr(const util::Json& config)>;

/// Register a kernel type; throws ConfigError on duplicate names.
void register_kernel(const std::string& name, KernelFactory factory);

/// Instantiate by name; throws ConfigError for unknown kernels.
KernelPtr make_kernel(const std::string& name, const util::Json& config);

bool kernel_registered(const std::string& name);

/// Names of all registered kernels, sorted (Table 1 set + custom ones).
std::vector<std::string> registered_kernels();

/// Helpers shared by kernel implementations -------------------------------

/// Parse "data_size": scalar n -> {n}, [a,b,...] -> {a,b,...}.
std::vector<std::size_t> parse_data_size(const util::Json& config,
                                         std::size_t default_n = 256);

/// Elements in a data_size vector (product).
std::size_t element_count(const std::vector<std::size_t>& dims);

}  // namespace simai::kernels
