// Kernel calibration: pick a data_size whose modelled execution time on a
// target device matches a profiled iteration time.
//
// This is the §4.1.1 construction step, automated: the paper profiles a
// production run ("we first profiled a production run ... to determine the
// average iteration time"), then configures the mini-app kernel to match.
// calibrate_data_size() inverts the kernel's device-time model so the
// mini-app author can go straight from a measured 0.03147 s to a kernel
// configuration.
#pragma once

#include <string>

#include "kernels/kernel.hpp"

namespace simai::kernels {

struct CalibrationResult {
  std::size_t data_size = 0;   // linear size n (square kernels use n x n)
  SimTime modeled_time = 0.0;  // achieved modelled time at that size
  double relative_error = 0.0; // |modeled - target| / target
};

/// Binary-search the kernel's data_size so its modelled time on `device`
/// approximates `target_time` seconds. Works for any registered kernel
/// whose modelled time grows monotonically with data_size (all the
/// compute/copy kernels). `square` treats data_size as [n, n].
CalibrationResult calibrate_data_size(const std::string& kernel_name,
                                      const DeviceModel& device,
                                      double target_time,
                                      bool square = false,
                                      std::size_t min_n = 2,
                                      std::size_t max_n = 1 << 22);

/// Build the Listing-2 style kernel config for a calibrated kernel:
/// {"name", "mini_app_kernel", "data_size", "run_time", "device"} — the
/// run_time is pinned to the target (the mini-app charges it exactly) and
/// the data_size documents the matched computational volume.
util::Json make_calibrated_config(const std::string& kernel_name,
                                  const std::string& device_name,
                                  double target_time, bool square = false);

}  // namespace simai::kernels
