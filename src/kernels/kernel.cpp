#include "kernels/kernel.hpp"

#include <algorithm>
#include <map>
#include <mutex>

namespace simai::kernels {

namespace {
struct Registry {
  std::mutex mutex;
  std::map<std::string, KernelFactory> factories;

  static Registry& instance() {
    static Registry r;
    return r;
  }
};

// Defined in the per-family translation units.
void ensure_builtins_registered();
}  // namespace

void register_kernel(const std::string& name, KernelFactory factory) {
  auto& reg = Registry::instance();
  std::lock_guard lock(reg.mutex);
  const auto [it, inserted] = reg.factories.emplace(name, std::move(factory));
  if (!inserted)
    throw ConfigError("kernel '" + name + "' is already registered");
}

// Builtin registration: each family file exposes a registrar invoked here.
void register_compute_kernels();
void register_io_kernels();
void register_collective_kernels();
void register_copy_kernels();
void register_hdf5_kernels();

namespace {
void ensure_builtins_registered() {
  static const bool once = [] {
    register_compute_kernels();
    register_io_kernels();
    register_collective_kernels();
    register_copy_kernels();
    register_hdf5_kernels();
    return true;
  }();
  (void)once;
}
}  // namespace

KernelPtr make_kernel(const std::string& name, const util::Json& config) {
  ensure_builtins_registered();
  auto& reg = Registry::instance();
  KernelFactory factory;
  {
    std::lock_guard lock(reg.mutex);
    const auto it = reg.factories.find(name);
    if (it == reg.factories.end())
      throw ConfigError("unknown kernel '" + name + "'");
    factory = it->second;
  }
  return factory(config);
}

bool kernel_registered(const std::string& name) {
  ensure_builtins_registered();
  auto& reg = Registry::instance();
  std::lock_guard lock(reg.mutex);
  return reg.factories.count(name) != 0;
}

std::vector<std::string> registered_kernels() {
  ensure_builtins_registered();
  auto& reg = Registry::instance();
  std::lock_guard lock(reg.mutex);
  std::vector<std::string> names;
  names.reserve(reg.factories.size());
  for (const auto& [name, factory] : reg.factories) names.push_back(name);
  return names;
}

std::vector<std::size_t> parse_data_size(const util::Json& config,
                                         std::size_t default_n) {
  const util::Json* ds = config.find("data_size");
  if (!ds) return {default_n};
  if (ds->is_number()) {
    const auto n = ds->as_int();
    if (n <= 0) throw ConfigError("data_size must be positive");
    return {static_cast<std::size_t>(n)};
  }
  std::vector<std::size_t> dims;
  for (const util::Json& d : ds->as_array()) {
    const auto n = d.as_int();
    if (n <= 0) throw ConfigError("data_size entries must be positive");
    dims.push_back(static_cast<std::size_t>(n));
  }
  if (dims.empty()) throw ConfigError("data_size must not be empty");
  return dims;
}

std::size_t element_count(const std::vector<std::size_t>& dims) {
  std::size_t n = 1;
  for (std::size_t d : dims) n *= d;
  return n;
}

}  // namespace simai::kernels
