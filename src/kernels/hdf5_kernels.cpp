// HDF5-style IO kernels: WriteHDF5 / ReadHDF5 write and read hierarchical
// snapshot files through the H5Lite substrate (the paper's Kernels module
// performs its I/O with HDF5; §3.1 Table 1's IO row).
//
// WriteHDF5 produces a file-per-rank snapshot with the canonical coupled-
// workflow layout:
//   /fields/velocity   f64 [n]
//   /fields/pressure   f64 [n]
//   /meta/step         i64 [1]       (+ "rank" attribute on /fields)
// ReadHDF5 reads it back and checksums the field data.
#include <vector>

#include "io/h5lite.hpp"
#include "kernels/kernel.hpp"

namespace simai::kernels {
namespace {

std::vector<double> make_field(std::size_t n, util::Xoshiro256& rng) {
  std::vector<double> v(n);
  for (double& x : v) x = rng.uniform(-1.0, 1.0);
  return v;
}

double sum_of(const std::vector<double>& v) {
  double s = 0.0;
  for (double x : v) s += x;
  return s;
}

struct DiskModel {
  double latency = 150e-6;  // open + tree metadata
  double bandwidth = 1.8e9;
  SimTime io_time(std::uint64_t bytes) const {
    return latency + static_cast<double>(bytes) / bandwidth;
  }
};

class Hdf5KernelBase : public Kernel {
 public:
  explicit Hdf5KernelBase(const util::Json& config)
      : n_(element_count(parse_data_size(config, 1 << 14))) {}

 protected:
  std::filesystem::path rank_file(const KernelContext& ctx) const {
    if (ctx.io_dir.empty())
      throw ConfigError("HDF5 kernel requires KernelContext.io_dir");
    return ctx.io_dir /
           ("snapshot_rank" + std::to_string(ctx.rank) + ".h5");
  }

  std::size_t n_;
  DiskModel disk_;
};

class WriteHdf5 final : public Hdf5KernelBase {
 public:
  using Hdf5KernelBase::Hdf5KernelBase;
  std::string_view name() const override { return "WriteHDF5"; }

  KernelResult run(KernelContext& ctx) override {
    const std::vector<double> velocity = make_field(n_, ctx.rng);
    const std::vector<double> pressure = make_field(n_, ctx.rng);

    io::H5File file(rank_file(ctx), io::H5File::Mode::Create);
    file.create_group("/fields");
    file.write("/fields/velocity", std::span<const double>(velocity));
    file.write("/fields/pressure", std::span<const double>(pressure));
    const std::vector<std::int64_t> step{static_cast<std::int64_t>(
        ctx.rng.uniform_int(1 << 20))};
    file.write("/meta/step", std::span<const std::int64_t>(step));
    file.set_attribute("/fields", "rank", util::Json(ctx.rank));
    file.set_attribute("/fields/velocity", "units", util::Json("m/s"));
    file.close();

    KernelResult r;
    r.bytes_touched = 2 * n_ * sizeof(double) + sizeof(std::int64_t);
    r.modeled_time = disk_.io_time(r.bytes_touched);
    r.checksum = sum_of(velocity) + sum_of(pressure);
    return r;
  }
};

class ReadHdf5 final : public Hdf5KernelBase {
 public:
  using Hdf5KernelBase::Hdf5KernelBase;
  std::string_view name() const override { return "ReadHDF5"; }

  KernelResult run(KernelContext& ctx) override {
    io::H5File file(rank_file(ctx), io::H5File::Mode::ReadOnly);
    const std::vector<double> velocity = file.read_f64("/fields/velocity");
    const std::vector<double> pressure = file.read_f64("/fields/pressure");
    KernelResult r;
    r.bytes_touched = (velocity.size() + pressure.size()) * sizeof(double);
    r.modeled_time = disk_.io_time(r.bytes_touched);
    r.checksum = sum_of(velocity) + sum_of(pressure);
    return r;
  }
};

}  // namespace

void register_hdf5_kernels() {
  register_kernel("WriteHDF5", [](const util::Json& c) -> KernelPtr {
    return std::make_unique<WriteHdf5>(c);
  });
  register_kernel("ReadHDF5", [](const util::Json& c) -> KernelPtr {
    return std::make_unique<ReadHdf5>(c);
  });
}

}  // namespace simai::kernels
