// Collective kernels from Table 1: AllReduce and AllGather, plus the copy
// kernels CopyHostToDevice / CopyDeviceToHost.
//
// Collectives run real reductions over the in-process communicator (so
// their results are verifiable against a serial reference); the modelled
// time additionally accounts for the tree depth over the interconnect.
#include <cstring>
#include <vector>

#include "kernels/kernel.hpp"

namespace simai::kernels {
namespace {

std::vector<double> make_payload(std::size_t n, util::Xoshiro256& rng) {
  std::vector<double> v(n);
  for (double& x : v) x = rng.uniform(-1.0, 1.0);
  return v;
}

class AllReduceKernel final : public Kernel {
 public:
  explicit AllReduceKernel(const util::Json& config)
      : n_(element_count(parse_data_size(config, 1 << 16))) {}

  std::string_view name() const override { return "AllReduce"; }

  KernelResult run(KernelContext& ctx) override {
    if (!ctx.comm || !ctx.sim_ctx)
      throw ConfigError("AllReduce requires a communicator context");
    const auto payload = make_payload(n_, ctx.rng);
    const std::vector<double> total =
        ctx.comm->allreduce(*ctx.sim_ctx, ctx.rank, payload,
                            net::ReduceOp::Sum);
    KernelResult r;
    r.bytes_touched = n_ * sizeof(double);
    r.flops = static_cast<double>(n_) * 2.0;
    // log2(P) tree hops; the communicator's LinkCost (if set) already
    // charged wire time, so this models only the local reduce math.
    r.modeled_time = ctx.device.compute_time(r.flops, r.bytes_touched);
    double s = 0.0;
    for (double x : total) s += x;
    r.checksum = s;
    return r;
  }

 private:
  std::size_t n_;
};

class AllGatherKernel final : public Kernel {
 public:
  explicit AllGatherKernel(const util::Json& config)
      : n_(element_count(parse_data_size(config, 1 << 14))) {}

  std::string_view name() const override { return "AllGather"; }

  KernelResult run(KernelContext& ctx) override {
    if (!ctx.comm || !ctx.sim_ctx)
      throw ConfigError("AllGather requires a communicator context");
    const auto payload = make_payload(n_, ctx.rng);
    const std::vector<double> all =
        ctx.comm->allgather(*ctx.sim_ctx, ctx.rank, payload);
    KernelResult r;
    r.bytes_touched = all.size() * sizeof(double);
    r.modeled_time = ctx.device.compute_time(0.0, r.bytes_touched);
    double s = 0.0;
    for (double x : all) s += x;
    r.checksum = s;
    return r;
  }

 private:
  std::size_t n_;
};

}  // namespace

void register_collective_kernels() {
  register_kernel("AllReduce", [](const util::Json& c) -> KernelPtr {
    return std::make_unique<AllReduceKernel>(c);
  });
  register_kernel("AllGather", [](const util::Json& c) -> KernelPtr {
    return std::make_unique<AllGatherKernel>(c);
  });
}

namespace {

/// Simulated device buffer pool: H2D/D2H kernels copy real bytes between a
/// host vector and a "device" vector, charging the link bandwidth from the
/// device model.
class CopyKernelBase : public Kernel {
 public:
  explicit CopyKernelBase(const util::Json& config)
      : n_(element_count(parse_data_size(config, 1 << 20))) {}

 protected:
  std::size_t n_;
};

class CopyHostToDevice final : public CopyKernelBase {
 public:
  using CopyKernelBase::CopyKernelBase;
  std::string_view name() const override { return "CopyHostToDevice"; }

  KernelResult run(KernelContext& ctx) override {
    std::vector<double> host = make_payload(n_, ctx.rng);
    std::vector<double> device(n_);
    std::memcpy(device.data(), host.data(), n_ * sizeof(double));
    KernelResult r;
    r.bytes_touched = n_ * sizeof(double);
    r.modeled_time = ctx.device.h2d_time(r.bytes_touched);
    double s = 0.0;
    for (double x : device) s += x;
    r.checksum = s;
    return r;
  }
};

class CopyDeviceToHost final : public CopyKernelBase {
 public:
  using CopyKernelBase::CopyKernelBase;
  std::string_view name() const override { return "CopyDeviceToHost"; }

  KernelResult run(KernelContext& ctx) override {
    std::vector<double> device = make_payload(n_, ctx.rng);
    std::vector<double> host(n_);
    std::memcpy(host.data(), device.data(), n_ * sizeof(double));
    KernelResult r;
    r.bytes_touched = n_ * sizeof(double);
    r.modeled_time = ctx.device.d2h_time(r.bytes_touched);
    double s = 0.0;
    for (double x : host) s += x;
    r.checksum = s;
    return r;
  }
};

}  // namespace

void register_copy_kernels() {
  register_kernel("CopyHostToDevice", [](const util::Json& c) -> KernelPtr {
    return std::make_unique<CopyHostToDevice>(c);
  });
  register_kernel("CopyDeviceToHost", [](const util::Json& c) -> KernelPtr {
    return std::make_unique<CopyDeviceToHost>(c);
  });
}

}  // namespace simai::kernels
