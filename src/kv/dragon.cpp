#include "kv/dragon.hpp"

#include <algorithm>

#include "obs/obs.hpp"
#include "util/crc32.hpp"

namespace simai::kv {

DragonDictionary::DragonDictionary(int num_managers,
                                   std::size_t channel_depth) {
  if (num_managers <= 0)
    throw StoreError("dragon: manager count must be positive");
  managers_.reserve(static_cast<std::size_t>(num_managers));
  for (int i = 0; i < num_managers; ++i) {
    managers_.push_back(std::make_unique<Manager>(channel_depth));
  }
  // Workers start after all managers exist so cross-references are safe.
  for (auto& m : managers_) {
    m->worker = std::thread([this, mp = m.get()] { manager_loop(*mp); });
  }
}

DragonDictionary::~DragonDictionary() { stop(); }

void DragonDictionary::stop() {
  if (stopped_) return;
  stopped_ = true;
  for (auto& m : managers_) m->channel.close();
  for (auto& m : managers_) {
    if (m->worker.joinable()) m->worker.join();
  }
}

int DragonDictionary::manager_of(std::string_view key) const {
  return static_cast<int>(util::crc32(key) % managers_.size());
}

void DragonDictionary::manager_loop(Manager& m) {
  while (auto req = m.channel.pop()) {
    Response resp;
    switch (req->op) {
      case OpType::Put:
        m.store.put(req->key, std::move(req->value));
        resp.found = true;
        break;
      case OpType::Get:
        if (std::optional<util::Payload> p = m.store.get(req->key)) {
          resp.found = true;
          resp.value = std::move(*p);
        }
        break;
      case OpType::Exists:
        resp.found = m.store.exists(req->key);
        break;
      case OpType::Erase:
        resp.count = m.store.erase(req->key);
        break;
      case OpType::Keys:
        resp.keys = m.store.keys(req->pattern);
        break;
      case OpType::Size:
        resp.count = m.store.size();
        break;
      case OpType::Clear:
        m.store.clear();
        break;
    }
    m.processed.fetch_add(1, std::memory_order_relaxed);
    req->reply.set_value(std::move(resp));
  }
}

DragonDictionary::Response DragonDictionary::call(int manager, Request req) {
  std::future<Response> future = req.reply.get_future();
  if (!managers_[static_cast<std::size_t>(manager)]->channel.push(
          std::move(req)))
    throw StoreError("dragon: dictionary is stopped");
  return future.get();
}

void DragonDictionary::put(std::string_view key, util::Payload value) {
  obs::count_kv("dragon", "put", value.size());
  Request req;
  req.op = OpType::Put;
  req.key = std::string(key);
  req.value = std::move(value);
  call(manager_of(key), std::move(req));
}

std::optional<util::Payload> DragonDictionary::get(std::string_view key) {
  Request req;
  req.op = OpType::Get;
  req.key = std::string(key);
  Response resp = call(manager_of(key), std::move(req));
  if (!resp.found) return std::nullopt;
  obs::count_kv("dragon", "get", resp.value.size());
  return std::move(resp.value);
}

bool DragonDictionary::exists(std::string_view key) {
  Request req;
  req.op = OpType::Exists;
  req.key = std::string(key);
  return call(manager_of(key), std::move(req)).found;
}

std::size_t DragonDictionary::erase(std::string_view key) {
  Request req;
  req.op = OpType::Erase;
  req.key = std::string(key);
  return call(manager_of(key), std::move(req)).count;
}

std::vector<std::string> DragonDictionary::keys(std::string_view pattern) {
  std::vector<std::string> out;
  for (std::size_t i = 0; i < managers_.size(); ++i) {
    Request req;
    req.op = OpType::Keys;
    req.pattern = std::string(pattern);
    std::vector<std::string> part =
        call(static_cast<int>(i), std::move(req)).keys;
    out.insert(out.end(), part.begin(), part.end());
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::size_t DragonDictionary::size() {
  std::size_t total = 0;
  for (std::size_t i = 0; i < managers_.size(); ++i) {
    Request req;
    req.op = OpType::Size;
    total += call(static_cast<int>(i), std::move(req)).count;
  }
  return total;
}

void DragonDictionary::clear() {
  for (std::size_t i = 0; i < managers_.size(); ++i) {
    Request req;
    req.op = OpType::Clear;
    call(static_cast<int>(i), std::move(req));
  }
}

std::vector<std::uint64_t> DragonDictionary::requests_per_manager() const {
  std::vector<std::uint64_t> out;
  out.reserve(managers_.size());
  for (const auto& m : managers_)
    out.push_back(m->processed.load(std::memory_order_relaxed));
  return out;
}

}  // namespace simai::kv
