// RESP2 (REdis Serialization Protocol) encoder/decoder.
//
// The MiniRedis backend speaks the real Redis wire protocol so the data path
// includes genuine request serialization, bulk-string framing, and reply
// parsing — the costs the paper attributes to Redis come from exactly this
// machinery plus socket hops.
//
// Supported value kinds: simple strings (+OK), errors (-ERR ...), integers
// (:N), bulk strings ($N\r\n...), nil ($-1), and arrays (*N ...), which is
// the complete RESP2 surface a key-value workload touches.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "util/error.hpp"
#include "util/types.hpp"

namespace simai::kv::resp {

class RespError : public Error {
 public:
  using Error::Error;
};

enum class Kind { Simple, Error, Integer, Bulk, Nil, Array };

/// One RESP value (tree for arrays).
struct Value {
  Kind kind = Kind::Nil;
  std::string text;          // Simple / Error payload
  std::int64_t integer = 0;  // Integer payload
  Bytes bulk;                // Bulk payload
  std::vector<Value> array;  // Array payload

  static Value simple(std::string s);
  static Value error(std::string s);
  static Value integer_of(std::int64_t v);
  static Value bulk_of(ByteView b);
  static Value bulk_of(std::string_view s) { return bulk_of(as_bytes_view(s)); }
  static Value nil();
  static Value array_of(std::vector<Value> items);

  bool is_error() const { return kind == Kind::Error; }
  /// Bulk payload as text (throws on non-bulk).
  std::string bulk_text() const;
};

/// Serialize a value to wire bytes.
Bytes encode(const Value& value);

/// Encode a client command (array of bulk strings): e.g. {"SET", key, value}.
Bytes encode_command(const std::vector<Bytes>& parts);
Bytes encode_command(const std::vector<std::string>& parts);

/// Incremental decoder: feed() bytes as they arrive, next() yields complete
/// values. Handles values split across arbitrary packet boundaries.
class Decoder {
 public:
  void feed(ByteView data);

  /// Parse one complete value if available; nullopt if more bytes needed.
  /// Throws RespError on protocol violations.
  std::optional<Value> next();

  std::size_t buffered() const { return buffer_.size() - consumed_; }

 private:
  // Try to parse a value at offset `pos`; on success advance pos past it.
  std::optional<Value> parse(std::size_t& pos);
  std::optional<std::string> read_line(std::size_t& pos);
  void compact();

  Bytes buffer_;
  std::size_t consumed_ = 0;
};

}  // namespace simai::kv::resp
