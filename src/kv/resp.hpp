// RESP2 (REdis Serialization Protocol) encoder/decoder.
//
// The MiniRedis backend speaks the real Redis wire protocol so the data path
// includes genuine request serialization, bulk-string framing, and reply
// parsing — the costs the paper attributes to Redis come from exactly this
// machinery plus socket hops.
//
// Supported value kinds: simple strings (+OK), errors (-ERR ...), integers
// (:N), bulk strings ($N\r\n...), nil ($-1), and arrays (*N ...), which is
// the complete RESP2 surface a key-value workload touches.
//
// Zero-copy framing: bulk payloads are util::Payload. encode_frames()
// produces a scatter-gather frame list where large bulks appear as
// refcount-bumped slices of the caller's payload (writev sends them without
// ever concatenating), and the Decoder returns large bulks as slices of its
// receive buffer instead of re-materializing them.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "util/error.hpp"
#include "util/payload.hpp"
#include "util/types.hpp"

namespace simai::kv::resp {

class RespError : public Error {
 public:
  using Error::Error;
};

enum class Kind { Simple, Error, Integer, Bulk, Nil, Array };

/// Bulks at or above this size are passed as buffer slices (scatter-gather
/// on encode, receive-buffer slices on decode). Smaller bulks are copied:
/// inlining them into the control frame beats an extra iovec entry, and on
/// decode a detached copy avoids pinning a 64 KiB receive chunk for a
/// 10-byte value.
inline constexpr std::size_t kBulkSliceThreshold = 1024;

/// One RESP value (tree for arrays).
struct Value {
  Kind kind = Kind::Nil;
  std::string text;           // Simple / Error payload
  std::int64_t integer = 0;   // Integer payload
  util::Payload bulk;         // Bulk payload (immutable, refcounted)
  std::vector<Value> array;   // Array payload

  static Value simple(std::string s);
  static Value error(std::string s);
  static Value integer_of(std::int64_t v);
  /// Takes the payload by value: passing a Payload is a refcount bump,
  /// passing Bytes/ByteView converts (one copy) at the boundary.
  static Value bulk_of(util::Payload b);
  static Value bulk_of(std::string_view s) { return bulk_of(util::Payload(as_bytes_view(s))); }
  static Value nil();
  static Value array_of(std::vector<Value> items);

  bool is_error() const { return kind == Kind::Error; }
  /// Bulk payload as text (throws on non-bulk).
  std::string bulk_text() const;
};

/// Serialize a value to one contiguous wire buffer (copies bulks; kept for
/// tests and small control messages — the data path uses encode_frames).
Bytes encode(const Value& value);

/// Serialize a value as a scatter-gather frame list: control bytes and
/// small bulks are gathered into builder-backed frames, bulks of at least
/// kBulkSliceThreshold appear as slices of the original payload. The
/// concatenation of all frames is byte-identical to encode().
std::vector<util::Payload> encode_frames(const Value& value);

/// Encode a client command (array of bulk strings): e.g. {"SET", key, value}.
Bytes encode_command(const std::vector<Bytes>& parts);
Bytes encode_command(const std::vector<std::string>& parts);

/// Incremental decoder: feed() bytes as they arrive, next() yields complete
/// values. Handles values split across arbitrary packet boundaries.
///
/// The receive buffer is shared (shared_ptr<Bytes>): large decoded bulks
/// are slices that pin it, and the next feed()/prepare() copies only the
/// unconsumed tail into a fresh buffer (copy-on-write) so outstanding
/// slices stay valid. The consumed prefix is tracked as an offset and the
/// buffer is recycled only when fully drained — no quadratic front-erase.
class Decoder {
 public:
  void feed(ByteView data);

  /// Zero-copy receive path: prepare(n) exposes a writable tail of the
  /// receive buffer for recv(2) to fill, commit(used) records how many
  /// bytes actually arrived. Pairs with Socket::recv_into.
  std::span<std::byte> prepare(std::size_t n);
  void commit(std::size_t used);

  /// Parse one complete value if available; nullopt if more bytes needed.
  /// Throws RespError on protocol violations.
  std::optional<Value> next();

  std::size_t buffered() const {
    return buffer_ ? buffer_->size() - consumed_ : 0;
  }

 private:
  // Try to parse a value at offset `pos`; on success advance pos past it.
  std::optional<Value> parse(std::size_t& pos);
  std::optional<std::string> read_line(std::size_t& pos);
  /// Make buffer_ safe to mutate: allocate it on first use; if decoded
  /// slices still reference it, move the unconsumed tail into a fresh
  /// buffer (the copy-on-write step).
  void ensure_writable();

  std::shared_ptr<Bytes> buffer_;
  std::size_t consumed_ = 0;
  std::size_t prepared_base_ = 0;
  // When a partial bulk header has been seen, the total buffer size needed
  // to complete it — lets ensure_writable() reserve once instead of letting
  // a 64 MiB bulk grow the buffer through repeated reallocation.
  std::size_t reserve_hint_ = 0;
};

}  // namespace simai::kv::resp
