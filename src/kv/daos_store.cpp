#include "kv/daos_store.hpp"

#include <algorithm>

#include "obs/obs.hpp"
#include "util/buffer.hpp"
#include "util/crc32.hpp"
#include "util/string_util.hpp"

namespace simai::kv {

namespace {
// The \x01 byte is concatenated separately: a joined literal like
// "\x01data:" would greedily parse the escape as the (out-of-range) hex
// sequence 0x1da.
constexpr std::string_view kDescPrefix = "\x01" "meta:";
constexpr std::string_view kStripePrefix = "\x01" "data:";
}  // namespace

DaosStore::DaosStore(int targets, std::size_t stripe_bytes)
    : stripe_bytes_(stripe_bytes) {
  if (targets <= 0) throw StoreError("daos: target count must be positive");
  if (stripe_bytes == 0) throw StoreError("daos: stripe size must be positive");
  targets_.reserve(static_cast<std::size_t>(targets));
  for (int t = 0; t < targets; ++t)
    targets_.push_back(std::make_unique<MemoryStore>());
}

int DaosStore::home_target(std::string_view key) const {
  return static_cast<int>(util::crc32(key) % targets_.size());
}

std::size_t DaosStore::stripe_count(std::size_t bytes) const {
  return bytes == 0 ? 1 : (bytes + stripe_bytes_ - 1) / stripe_bytes_;
}

std::string DaosStore::descriptor_key(std::string_view key) const {
  return std::string(kDescPrefix) + std::string(key);
}

std::string DaosStore::stripe_key(std::string_view key,
                                  std::size_t stripe) const {
  return std::string(kStripePrefix) + std::string(key) + ":" +
         std::to_string(stripe);
}

void DaosStore::put(std::string_view key, util::Payload value) {
  obs::count_kv("daos", "put", value.size());
  const int home = home_target(key);
  const std::size_t stripes = stripe_count(value.size());
  // Write stripes round-robin from the home target, then commit the
  // descriptor last so readers never see a half-written object. Each stripe
  // is an O(1) slice sharing the object's buffer — striping costs zero
  // copies regardless of object size.
  for (std::size_t s = 0; s < stripes; ++s) {
    const std::size_t begin = s * stripe_bytes_;
    const std::size_t len = std::min(stripe_bytes_, value.size() - begin);
    const auto target = static_cast<std::size_t>(
        (static_cast<std::size_t>(home) + s) % targets_.size());
    targets_[target]->put(stripe_key(key, s), value.slice(begin, len));
  }
  util::ByteWriter desc;
  desc.u64(value.size());
  desc.u32(static_cast<std::uint32_t>(stripes));
  targets_[static_cast<std::size_t>(home)]->put(descriptor_key(key),
                                                desc.take_payload());
}

std::optional<util::Payload> DaosStore::get(std::string_view key) {
  const int home = home_target(key);
  const std::optional<util::Payload> desc_bytes =
      targets_[static_cast<std::size_t>(home)]->get(descriptor_key(key));
  if (!desc_bytes) return std::nullopt;
  util::ByteReader desc(*desc_bytes);
  const std::uint64_t total = desc.u64();
  const std::uint32_t stripes = desc.u32();
  std::vector<util::Payload> parts;
  parts.reserve(stripes);
  std::size_t assembled_size = 0;
  for (std::uint32_t s = 0; s < stripes; ++s) {
    const auto target = static_cast<std::size_t>(
        (static_cast<std::size_t>(home) + s) % targets_.size());
    std::optional<util::Payload> stripe =
        targets_[target]->get(stripe_key(key, s));
    if (!stripe)
      throw StoreError("daos: missing stripe " + std::to_string(s) +
                       " of object '" + std::string(key) + "'");
    assembled_size += stripe->size();
    parts.push_back(std::move(*stripe));
  }
  if (assembled_size != total)
    throw StoreError("daos: reassembled size mismatch for '" +
                     std::string(key) + "'");
  obs::count_kv("daos", "get", total);
  // Single-stripe objects (the common case below stripe_bytes) hand the
  // stored stripe straight back — zero copies. Multi-stripe objects must
  // gather into one contiguous buffer.
  if (parts.size() == 1) return std::move(parts.front());
  util::PayloadBuilder gathered(assembled_size);
  for (const util::Payload& part : parts) gathered.append(part.view());
  return gathered.finish();
}

bool DaosStore::exists(std::string_view key) {
  return targets_[static_cast<std::size_t>(home_target(key))]->exists(
      descriptor_key(key));
}

std::size_t DaosStore::erase(std::string_view key) {
  const int home = home_target(key);
  const std::optional<util::Payload> desc_bytes =
      targets_[static_cast<std::size_t>(home)]->get(descriptor_key(key));
  if (!desc_bytes) return 0;
  util::ByteReader desc(*desc_bytes);
  desc.u64();  // total size, unused here
  const std::uint32_t stripes = desc.u32();
  for (std::uint32_t s = 0; s < stripes; ++s) {
    const auto target = static_cast<std::size_t>(
        (static_cast<std::size_t>(home) + s) % targets_.size());
    targets_[target]->erase(stripe_key(key, s));
  }
  targets_[static_cast<std::size_t>(home)]->erase(descriptor_key(key));
  return 1;
}

std::vector<std::string> DaosStore::keys(std::string_view pattern) {
  std::vector<std::string> out;
  for (auto& target : targets_) {
    for (const std::string& k :
         target->keys(std::string(kDescPrefix) + "*")) {
      const std::string object = k.substr(kDescPrefix.size());
      if (util::glob_match(pattern, object)) out.push_back(object);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::size_t DaosStore::size() { return keys("*").size(); }

void DaosStore::clear() {
  for (auto& target : targets_) target->clear();
}

}  // namespace simai::kv
