// Directory-backed sharded key-value store — the paper's §3.2 design,
// verbatim: keys are hashed with CRC32 to pick a shard directory, values are
// written to a temporary file and atomically renamed into place
// (key file <mangled-key>.bin), so concurrent readers never observe a torn
// value and a failed writer leaves only an orphan temp file.
//
// This one implementation backs two of the paper's four backends:
//   * filesystem  — rooted on the (simulated Lustre) shared directory
//   * node-local  — rooted on a per-node tmpfs-like directory
// The paper scales the shard count linearly with node count; ServerManager
// does the same here.
#pragma once

#include <filesystem>
#include <mutex>

#include "kv/store.hpp"

namespace simai::kv {

class DirStore final : public IKeyValueStore {
 public:
  /// Creates `shards` shard subdirectories under `root` (which is created
  /// if missing). Existing contents are preserved, so multiple clients can
  /// open the same root — exactly how distributed ranks share a staging
  /// directory.
  explicit DirStore(std::filesystem::path root, int shards = 16);

  using IKeyValueStore::get;
  void put(std::string_view key, util::Payload value) override;
  std::optional<util::Payload> get(std::string_view key) override;
  bool exists(std::string_view key) override;
  std::size_t erase(std::string_view key) override;
  std::vector<std::string> keys(std::string_view pattern = "*") override;
  std::size_t size() override;
  void clear() override;

  const std::filesystem::path& root() const { return root_; }
  int shards() const { return shards_; }

  /// Shard index a key hashes to (CRC32 % shards) — exposed for tests and
  /// for the shard-count ablation bench.
  int shard_of(std::string_view key) const;

 private:
  std::filesystem::path shard_dir(int shard) const;
  std::filesystem::path path_of(std::string_view key) const;

  /// Keys are used as filenames; escape path-hostile characters ('/', NUL,
  /// leading '.') reversibly.
  static std::string encode_key(std::string_view key);
  static std::string decode_key(std::string_view filename);

  std::filesystem::path root_;
  int shards_;
};

}  // namespace simai::kv
