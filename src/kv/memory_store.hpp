// In-memory key-value store: the RAM variant of the node-local backend
// (Aurora's tmpfs is DRAM-backed, so a hash map with value copies is the
// faithful single-process equivalent) and the building block the Dragon
// shard managers own.
//
// Thread-safe via a shared_mutex: reads run concurrently, writes exclusively
// — needed because the MiniRedis server and Dragon managers touch stores
// from real threads outside the DES.
//
// Storage is an unordered_map (O(1) get/put on the hot path) with
// heterogeneous string_view lookup; keys() sorts its result so listing
// order — and therefore DES schedule determinism for anything that
// iterates keys — is identical to the old std::map behavior.
#pragma once

#include <shared_mutex>
#include <string>
#include <string_view>
#include <unordered_map>

#include "check/shared_cell.hpp"
#include "kv/store.hpp"

namespace simai::kv {

/// Transparent hash so string_view keys probe without a std::string copy.
struct StringViewHash {
  using is_transparent = void;
  std::size_t operator()(std::string_view s) const noexcept {
    return std::hash<std::string_view>{}(s);
  }
};

class MemoryStore final : public IKeyValueStore {
 public:
  MemoryStore() = default;

  using IKeyValueStore::get;
  void put(std::string_view key, util::Payload value) override;
  std::optional<util::Payload> get(std::string_view key) override;
  bool exists(std::string_view key) override;
  std::size_t erase(std::string_view key) override;
  std::vector<std::string> keys(std::string_view pattern = "*") override;
  std::size_t size() override;
  void clear() override;

  /// Sum of value sizes (bytes) — used by capacity accounting and tests.
  std::size_t total_bytes() const;

 private:
  // Values are Payloads: put() moves the caller's refcount in, get() hands
  // one back — neither side copies bytes, and immutability makes the
  // sharing safe across MiniRedis/Dragon threads.
  using Map = std::unordered_map<std::string, util::Payload, StringViewHash,
                                 std::equal_to<>>;

  mutable std::shared_mutex mutex_;
  // The keyspace is the canonical cross-process shared state of a staging
  // workload, so it is a check::SharedCell: with SIMAI_CHECK=1 the race
  // detector flags same-virtual-time get/put pairs between logical
  // processes that have no happens-before edge. Real threads (MiniRedis
  // handlers) are invisible to the detector and covered by mutex_ + TSan.
  check::SharedCell<Map> data_{"MemoryStore.data"};
};

}  // namespace simai::kv
