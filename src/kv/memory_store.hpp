// In-memory key-value store: the RAM variant of the node-local backend
// (Aurora's tmpfs is DRAM-backed, so a hash map with value copies is the
// faithful single-process equivalent) and the building block the Dragon
// shard managers own.
//
// Thread-safe via a shared_mutex: reads run concurrently, writes exclusively
// — needed because the MiniRedis server and Dragon managers touch stores
// from real threads outside the DES.
#pragma once

#include <map>
#include <shared_mutex>
#include <string>

#include "kv/store.hpp"

namespace simai::kv {

class MemoryStore final : public IKeyValueStore {
 public:
  MemoryStore() = default;

  void put(std::string_view key, ByteView value) override;
  bool get(std::string_view key, Bytes& out) override;
  bool exists(std::string_view key) override;
  std::size_t erase(std::string_view key) override;
  std::vector<std::string> keys(std::string_view pattern = "*") override;
  std::size_t size() override;
  void clear() override;

  /// Sum of value sizes (bytes) — used by capacity accounting and tests.
  std::size_t total_bytes() const;

 private:
  mutable std::shared_mutex mutex_;
  std::map<std::string, Bytes, std::less<>> data_;
};

}  // namespace simai::kv
