// DAOS-style distributed object store (the paper's §5 future-work backend:
// "staging through DAOS on Aurora").
//
// Architectural properties mirrored from DAOS:
//  * client-direct access — clients compute object placement themselves and
//    talk straight to storage targets; there is NO central metadata server
//    (the property that changes the Fig-3b scaling story);
//  * striping — values above `stripe_bytes` are split round-robin across
//    targets starting at the object's home target, so large-object
//    bandwidth aggregates across targets;
//  * per-target concurrency — each target is independently lockable, so
//    operations on different targets proceed in parallel.
//
// A small per-object descriptor (value length, stripe count) lives on the
// home target, playing the role of DAOS's distributed object metadata.
#pragma once

#include <memory>
#include <shared_mutex>

#include "kv/memory_store.hpp"

namespace simai::kv {

class DaosStore final : public IKeyValueStore {
 public:
  explicit DaosStore(int targets = 8, std::size_t stripe_bytes = 1 * MiB);

  using IKeyValueStore::get;
  void put(std::string_view key, util::Payload value) override;
  std::optional<util::Payload> get(std::string_view key) override;
  bool exists(std::string_view key) override;
  std::size_t erase(std::string_view key) override;
  std::vector<std::string> keys(std::string_view pattern = "*") override;
  std::size_t size() override;
  void clear() override;

  int target_count() const { return static_cast<int>(targets_.size()); }
  std::size_t stripe_bytes() const { return stripe_bytes_; }
  /// Home target for an object (descriptor + first stripe) — for tests.
  int home_target(std::string_view key) const;
  /// Number of stripes a value of `bytes` splits into.
  std::size_t stripe_count(std::size_t bytes) const;

 private:
  std::string descriptor_key(std::string_view key) const;
  std::string stripe_key(std::string_view key, std::size_t stripe) const;

  std::vector<std::unique_ptr<MemoryStore>> targets_;
  std::size_t stripe_bytes_;
};

}  // namespace simai::kv
