#include "kv/memory_store.hpp"

#include <algorithm>
#include <mutex>

#include "obs/obs.hpp"
#include "util/string_util.hpp"

namespace simai::kv {

void MemoryStore::put(std::string_view key, util::Payload value) {
  obs::count_kv("memory", "put", value.size());
  std::unique_lock lock(mutex_);
  data_.write().insert_or_assign(std::string(key), std::move(value));
}

std::optional<util::Payload> MemoryStore::get(std::string_view key) {
  std::shared_lock lock(mutex_);
  const Map& data = data_.read();
  const auto it = data.find(key);
  if (it == data.end()) return std::nullopt;
  obs::count_kv("memory", "get", it->second.size());
  return it->second;  // refcount bump, no byte copy
}

bool MemoryStore::exists(std::string_view key) {
  std::shared_lock lock(mutex_);
  const Map& data = data_.read();
  return data.find(key) != data.end();
}

std::size_t MemoryStore::erase(std::string_view key) {
  std::unique_lock lock(mutex_);
  Map& data = data_.write();
  const auto it = data.find(key);
  if (it == data.end()) return 0;
  data.erase(it);
  return 1;
}

std::vector<std::string> MemoryStore::keys(std::string_view pattern) {
  std::shared_lock lock(mutex_);
  std::vector<std::string> out;
  for (const auto& [key, value] : data_.read()) {
    if (util::glob_match(pattern, key)) out.push_back(key);
  }
  // The map is unordered; sort so listings stay deterministic (callers and
  // the DES schedule depend on the old std::map ordering).
  std::sort(out.begin(), out.end());
  return out;
}

std::size_t MemoryStore::size() {
  std::shared_lock lock(mutex_);
  return data_.read().size();
}

void MemoryStore::clear() {
  std::unique_lock lock(mutex_);
  data_.write().clear();
}

std::size_t MemoryStore::total_bytes() const {
  std::shared_lock lock(mutex_);
  std::size_t total = 0;
  for (const auto& [key, value] : data_.read()) total += value.size();
  return total;
}

}  // namespace simai::kv
