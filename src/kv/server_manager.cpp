#include "kv/server_manager.hpp"

#include <atomic>
#include <map>
#include <mutex>

#include "kv/daos_store.hpp"
#include "kv/dir_store.hpp"
#include "kv/dragon.hpp"
#include "kv/memory_store.hpp"
#include "kv/redis_client.hpp"
#include "kv/redis_server.hpp"
#include "util/logging.hpp"
#include "util/string_util.hpp"

namespace simai::kv {

namespace {

/// Process-global registry mapping opaque handles to live in-memory stores.
/// Stands in for "an address on the machine's fabric" — clients created
/// from a server-info document resolve their store here.
class HandleRegistry {
 public:
  static HandleRegistry& instance() {
    static HandleRegistry r;
    return r;
  }

  std::uint64_t register_stores(std::vector<StorePtr> stores) {
    std::lock_guard lock(mutex_);
    const std::uint64_t h = next_++;
    entries_[h] = std::move(stores);
    return h;
  }

  std::vector<StorePtr> lookup(std::uint64_t handle) {
    std::lock_guard lock(mutex_);
    const auto it = entries_.find(handle);
    if (it == entries_.end())
      throw StoreError("server handle " + std::to_string(handle) +
                       " is not registered (server stopped?)");
    return it->second;
  }

  void unregister(std::uint64_t handle) {
    std::lock_guard lock(mutex_);
    entries_.erase(handle);
  }

 private:
  std::mutex mutex_;
  std::map<std::uint64_t, std::vector<StorePtr>> entries_;
  std::uint64_t next_ = 1;
};

}  // namespace

ServerManager::ServerManager(std::string name, util::Json config)
    : name_(std::move(name)), config_(std::move(config)) {
  backend_ = util::to_lower(config_.at("backend").as_string());
  if (backend_ != "redis" && backend_ != "dragon" &&
      backend_ != "node-local" && backend_ != "node-local-dir" &&
      backend_ != "filesystem" && backend_ != "daos")
    throw ConfigError("server manager: unknown backend '" + backend_ + "'");
}

ServerManager::~ServerManager() {
  try {
    stop_server();
  } catch (...) {
    // Never throw from a destructor.
  }
}

void ServerManager::start_server() {
  if (started_) return;
  const int nodes = static_cast<int>(config_.get("nodes", 1));
  if (nodes <= 0) throw ConfigError("server manager: nodes must be positive");

  base_dir_ = config_.get("base_dir", "");
  if (base_dir_.empty() &&
      (backend_ == "redis" || backend_ == "filesystem" ||
       backend_ == "node-local-dir")) {
    owned_dir_ = std::make_unique<util::TempDir>("simai-" + backend_);
    base_dir_ = owned_dir_->path().string();
  }

  if (backend_ == "redis") {
    const int instances = static_cast<int>(config_.get("instances", 1));
    if (instances <= 0)
      throw ConfigError("server manager: instances must be positive");
    for (int i = 0; i < instances; ++i) {
      redis_servers_.push_back(std::make_unique<RedisServer>(
          base_dir_ + "/" + name_ + "-redis-" + std::to_string(i) + ".sock"));
    }
  } else if (backend_ == "dragon") {
    const int managers = static_cast<int>(config_.get("managers", 4));
    const auto depth =
        static_cast<std::size_t>(config_.get("channel_depth", 64));
    dragon_ = std::make_shared<DragonDictionary>(managers, depth);
    registry_handle_ = HandleRegistry::instance().register_stores({dragon_});
  } else if (backend_ == "node-local") {
    for (int n = 0; n < nodes; ++n)
      node_stores_.push_back(std::make_shared<MemoryStore>());
    registry_handle_ =
        HandleRegistry::instance().register_stores(node_stores_);
  } else if (backend_ == "node-local-dir") {
    // tmpfs-directory flavor: one staging tree per node.
    for (int n = 0; n < nodes; ++n) {
      node_stores_.push_back(std::make_shared<DirStore>(
          base_dir_ + "/node" + std::to_string(n),
          static_cast<int>(config_.get("shards", 4))));
    }
    registry_handle_ =
        HandleRegistry::instance().register_stores(node_stores_);
  } else if (backend_ == "daos") {
    const int targets = static_cast<int>(config_.get("targets", 8));
    const auto stripe = static_cast<std::size_t>(
        config_.get("stripe_kb", static_cast<std::int64_t>(1024)) * 1024);
    node_stores_.push_back(std::make_shared<DaosStore>(targets, stripe));
    registry_handle_ =
        HandleRegistry::instance().register_stores(node_stores_);
  } else {  // filesystem
    // The paper scales shard directories linearly with node count.
    const int shards = static_cast<int>(
        config_.get("shards", static_cast<std::int64_t>(std::max(16, nodes))));
    node_stores_.push_back(
        std::make_shared<DirStore>(base_dir_ + "/staging", shards));
    registry_handle_ =
        HandleRegistry::instance().register_stores(node_stores_);
  }
  started_ = true;
  SIMAI_LOG(Info, "server-manager")
      << name_ << ": started backend '" << backend_ << "'";
}

util::Json ServerManager::get_server_info() const {
  if (!started_)
    throw StoreError("server manager '" + name_ + "' is not started");
  util::Json info;
  info["backend"] = backend_;
  info["name"] = name_;
  if (backend_ == "redis") {
    util::Json sockets = util::Json::array();
    for (const auto& srv : redis_servers_)
      sockets.push_back(srv->socket_path());
    info["sockets"] = sockets;
  } else {
    info["handle"] = static_cast<std::int64_t>(registry_handle_);
    info["nodes"] = static_cast<std::int64_t>(node_stores_.size());
    if (backend_ == "filesystem" && !node_stores_.empty()) {
      info["root"] =
          static_cast<DirStore*>(node_stores_[0].get())->root().string();
    }
  }
  return info;
}

void ServerManager::stop_server() {
  if (!started_) return;
  for (auto& srv : redis_servers_) srv->stop();
  redis_servers_.clear();
  if (dragon_) {
    dragon_->stop();
    dragon_.reset();
  }
  if (registry_handle_ != 0) {
    HandleRegistry::instance().unregister(registry_handle_);
    registry_handle_ = 0;
  }
  node_stores_.clear();
  owned_dir_.reset();
  started_ = false;
  SIMAI_LOG(Info, "server-manager") << name_ << ": stopped";
}

StorePtr ServerManager::connect(const util::Json& info, int node) {
  const std::string backend = info.at("backend").as_string();
  if (backend == "redis") {
    std::vector<std::string> paths;
    for (const util::Json& s : info.at("sockets").as_array())
      paths.push_back(s.as_string());
    if (paths.empty()) throw StoreError("redis info lists no sockets");
    if (paths.size() == 1) return std::make_shared<RedisClient>(paths[0]);
    return std::make_shared<RedisClusterClient>(paths);
  }
  const auto handle = static_cast<std::uint64_t>(info.at("handle").as_int());
  std::vector<StorePtr> stores = HandleRegistry::instance().lookup(handle);
  if (backend == "dragon" || backend == "filesystem" || backend == "daos")
    return stores.at(0);
  // node-local flavors: pick the caller's node.
  if (node < 0 || static_cast<std::size_t>(node) >= stores.size())
    throw StoreError("connect: node " + std::to_string(node) +
                     " out of range for backend '" + backend + "'");
  return stores[static_cast<std::size_t>(node)];
}

}  // namespace simai::kv
