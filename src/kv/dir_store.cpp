#include "kv/dir_store.hpp"

#include <cctype>

#include "obs/obs.hpp"
#include "util/crc32.hpp"
#include "util/fsutil.hpp"
#include "util/string_util.hpp"

namespace simai::kv {

namespace fs = std::filesystem;

namespace {
constexpr std::string_view kSuffix = ".bin";
constexpr std::string_view kTmpMarker = ".tmp.";

bool is_safe(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '-' || c == '_';
}
}  // namespace

std::string DirStore::encode_key(std::string_view key) {
  std::string out;
  out.reserve(key.size());
  for (char c : key) {
    if (is_safe(c)) {
      out += c;
    } else {
      static constexpr char kHex[] = "0123456789abcdef";
      out += '%';
      out += kHex[(static_cast<unsigned char>(c) >> 4) & 0xF];
      out += kHex[static_cast<unsigned char>(c) & 0xF];
    }
  }
  return out;
}

std::string DirStore::decode_key(std::string_view filename) {
  std::string out;
  out.reserve(filename.size());
  for (std::size_t i = 0; i < filename.size(); ++i) {
    if (filename[i] == '%' && i + 2 < filename.size()) {
      const auto hex = [](char c) -> int {
        if (c >= '0' && c <= '9') return c - '0';
        if (c >= 'a' && c <= 'f') return c - 'a' + 10;
        return -1;
      };
      const int hi = hex(filename[i + 1]);
      const int lo = hex(filename[i + 2]);
      if (hi >= 0 && lo >= 0) {
        out += static_cast<char>((hi << 4) | lo);
        i += 2;
        continue;
      }
    }
    out += filename[i];
  }
  return out;
}

DirStore::DirStore(fs::path root, int shards)
    : root_(std::move(root)), shards_(shards) {
  if (shards_ <= 0) throw StoreError("dir store: shard count must be positive");
  for (int s = 0; s < shards_; ++s) util::ensure_directory(shard_dir(s));
}

int DirStore::shard_of(std::string_view key) const {
  return static_cast<int>(util::crc32(key) % static_cast<std::uint32_t>(shards_));
}

fs::path DirStore::shard_dir(int shard) const {
  return root_ / ("shard" + std::to_string(shard));
}

fs::path DirStore::path_of(std::string_view key) const {
  return shard_dir(shard_of(key)) / (encode_key(key) + std::string(kSuffix));
}

void DirStore::put(std::string_view key, util::Payload value) {
  obs::count_kv("filesystem", "put", value.size());
  // Temp-write + atomic rename: the §3.2 protocol (os.replace in Python).
  // Written straight from the payload's view — no staging copy.
  util::atomic_write_file(path_of(key), value.view());
}

std::optional<util::Payload> DirStore::get(std::string_view key) {
  const fs::path p = path_of(key);
  std::error_code ec;
  if (!fs::exists(p, ec) || ec) return std::nullopt;
  try {
    // read_file's buffer is adopted wholesale — the one unavoidable copy
    // on this backend is disk → memory.
    util::Payload loaded = util::Payload::from_bytes(util::read_file(p));
    obs::count_kv("filesystem", "get", loaded.size());
    return loaded;
  } catch (const util::FsError&) {
    // Raced with a concurrent erase between exists() and read.
    return std::nullopt;
  }
}

bool DirStore::exists(std::string_view key) {
  std::error_code ec;
  return fs::exists(path_of(key), ec) && !ec;
}

std::size_t DirStore::erase(std::string_view key) {
  std::error_code ec;
  return fs::remove(path_of(key), ec) && !ec ? 1 : 0;
}

std::vector<std::string> DirStore::keys(std::string_view pattern) {
  std::vector<std::string> out;
  for (int s = 0; s < shards_; ++s) {
    std::error_code ec;
    for (fs::directory_iterator it(shard_dir(s), ec), end; !ec && it != end;
         it.increment(ec)) {
      const std::string name = it->path().filename().string();
      if (!util::ends_with(name, kSuffix)) continue;
      if (name.find(kTmpMarker) != std::string::npos) continue;
      const std::string key =
          decode_key(name.substr(0, name.size() - kSuffix.size()));
      if (util::glob_match(pattern, key)) out.push_back(key);
    }
  }
  return out;
}

std::size_t DirStore::size() { return keys("*").size(); }

void DirStore::clear() {
  for (int s = 0; s < shards_; ++s) {
    std::error_code ec;
    for (fs::directory_iterator it(shard_dir(s), ec), end; !ec && it != end;
         it.increment(ec)) {
      std::error_code rm;
      fs::remove(it->path(), rm);
    }
  }
}

}  // namespace simai::kv
