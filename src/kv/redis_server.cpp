#include "kv/redis_server.hpp"

#include <sys/socket.h>

#include <algorithm>

#include "util/logging.hpp"
#include "util/string_util.hpp"

namespace simai::kv {

RedisServer::RedisServer(std::string socket_path)
    : socket_path_(std::move(socket_path)) {
  listener_ = std::make_unique<net::UnixListener>(socket_path_);
  accept_thread_ = std::thread([this] { accept_loop(); });
  SIMAI_LOG(Info, "redis") << "server listening on " << socket_path_;
}

RedisServer::~RedisServer() { stop(); }

void RedisServer::begin_stop() {
  if (stopping_.exchange(true)) return;
  listener_->shutdown();
  std::lock_guard lock(conn_mutex_);
  // Entries are -1 once their connection closed its socket; only live fds
  // may be poked (a closed fd's number can already belong to someone else).
  for (int fd : conn_fds_) {
    if (fd >= 0) ::shutdown(fd, SHUT_RDWR);
  }
}

void RedisServer::stop() {
  begin_stop();
  if (accept_thread_.joinable()) accept_thread_.join();
  std::vector<std::thread> threads;
  {
    std::lock_guard lock(conn_mutex_);
    threads.swap(conn_threads_);
  }
  for (auto& t : threads) {
    if (t.joinable()) t.join();
  }
  SIMAI_LOG(Info, "redis") << "server on " << socket_path_ << " stopped";
}

void RedisServer::accept_loop() {
  while (!stopping_.load()) {
    auto client = listener_->accept();
    if (!client) break;  // listener shut down
    std::lock_guard lock(conn_mutex_);
    if (stopping_.load()) break;
    const std::size_t slot = conn_fds_.size();
    conn_fds_.push_back(client->fd());
    conn_threads_.emplace_back(
        [this, slot, sock = std::move(*client)]() mutable {
          serve_connection(std::move(sock), slot);
        });
  }
}

void RedisServer::serve_connection(net::Socket client, std::size_t slot) {
  serve_session(client);
  // Unpublish the fd, then close it, atomically w.r.t. begin_stop(): once
  // the slot reads -1 nobody will shutdown this fd, and the number cannot
  // be recycled before that because the close happens under the same lock.
  std::lock_guard lock(conn_mutex_);
  conn_fds_[slot] = -1;
  client.close();
}

void RedisServer::serve_session(net::Socket& client) {
  resp::Decoder decoder;
  try {
    while (!stopping_.load()) {
      auto value = decoder.next();
      if (!value) {
        // Receive straight into the decoder's buffer (no per-chunk copy);
        // large command payloads then surface as slices of it.
        const std::span<std::byte> room = decoder.prepare(64 * 1024);
        const std::size_t n = client.recv_into(room);
        decoder.commit(n);
        if (n == 0) return;  // client hung up
        continue;
      }
      if (value->kind != resp::Kind::Array || value->array.empty()) {
        client.send_all(
            resp::encode(resp::Value::error("ERR protocol: expected command array")));
        continue;
      }
      bool shutdown_requested = false;
      const resp::Value reply = execute(value->array, shutdown_requested);
      // Scatter-gather reply: a GET of a 64 MiB value writev's the stored
      // payload directly — the server never builds a contiguous wire image.
      client.send_frames(resp::encode_frames(reply));
      if (shutdown_requested) {
        begin_stop();
        return;
      }
    }
  } catch (const net::SocketError&) {
    // Connection reset — normal teardown path.
  } catch (const resp::RespError& e) {
    try {
      client.send_all(
          resp::encode(resp::Value::error(std::string("ERR ") + e.what())));
    } catch (...) {
    }
  }
}

resp::Value RedisServer::execute(const std::vector<resp::Value>& argv,
                                 bool& shutdown_requested) {
  using resp::Value;
  commands_.fetch_add(1, std::memory_order_relaxed);

  const std::string cmd = util::to_lower(argv[0].bulk_text());
  auto arity_error = [&] {
    return Value::error("ERR wrong number of arguments for '" + cmd +
                        "' command");
  };

  std::lock_guard lock(exec_mutex_);

  if (cmd == "ping") {
    if (argv.size() == 1) return Value::simple("PONG");
    if (argv.size() == 2) return argv[1];
    return arity_error();
  }
  if (cmd == "echo") {
    if (argv.size() != 2) return arity_error();
    return argv[1];
  }
  if (cmd == "set") {
    if (argv.size() != 3) return arity_error();
    // Refcount hand-off: the stored value shares the decoded payload (for
    // large values, a slice of the receive buffer) — no server-side copy.
    store_.put(argv[1].bulk_text(), argv[2].bulk);
    return Value::simple("OK");
  }
  if (cmd == "get") {
    if (argv.size() != 2) return arity_error();
    if (std::optional<util::Payload> p = store_.get(argv[1].bulk_text()))
      return Value::bulk_of(std::move(*p));
    return Value::nil();
  }
  if (cmd == "del") {
    if (argv.size() < 2) return arity_error();
    std::int64_t removed = 0;
    for (std::size_t i = 1; i < argv.size(); ++i)
      removed += static_cast<std::int64_t>(store_.erase(argv[i].bulk_text()));
    return Value::integer_of(removed);
  }
  if (cmd == "exists") {
    if (argv.size() < 2) return arity_error();
    std::int64_t found = 0;
    for (std::size_t i = 1; i < argv.size(); ++i)
      found += store_.exists(argv[i].bulk_text()) ? 1 : 0;
    return Value::integer_of(found);
  }
  if (cmd == "keys") {
    if (argv.size() != 2) return arity_error();
    std::vector<std::string> keys = store_.keys(argv[1].bulk_text());
    std::sort(keys.begin(), keys.end());
    std::vector<Value> items;
    items.reserve(keys.size());
    for (const std::string& k : keys) items.push_back(Value::bulk_of(k));
    return Value::array_of(std::move(items));
  }
  if (cmd == "dbsize") {
    if (argv.size() != 1) return arity_error();
    return Value::integer_of(static_cast<std::int64_t>(store_.size()));
  }
  if (cmd == "flushdb") {
    if (argv.size() != 1) return arity_error();
    store_.clear();
    return Value::simple("OK");
  }
  if (cmd == "incr") {
    if (argv.size() != 2) return arity_error();
    const std::string key = argv[1].bulk_text();
    Bytes current;
    std::int64_t n = 0;
    if (store_.get(key, current)) {
      try {
        n = std::stoll(to_string(ByteView(current)));
      } catch (...) {
        return Value::error("ERR value is not an integer or out of range");
      }
    }
    ++n;
    store_.put_string(key, std::to_string(n));
    return Value::integer_of(n);
  }
  if (cmd == "append") {
    if (argv.size() != 3) return arity_error();
    const std::string key = argv[1].bulk_text();
    util::PayloadBuilder combined;
    if (std::optional<util::Payload> current = store_.get(key))
      combined.append(current->view());
    combined.append(argv[2].bulk.view());
    const std::size_t len = combined.size();
    store_.put(key, combined.finish());
    return Value::integer_of(static_cast<std::int64_t>(len));
  }
  if (cmd == "strlen") {
    if (argv.size() != 2) return arity_error();
    if (std::optional<util::Payload> p = store_.get(argv[1].bulk_text()))
      return Value::integer_of(static_cast<std::int64_t>(p->size()));
    return Value::integer_of(0);
  }
  if (cmd == "info") {
    return Value::bulk_of(util::strformat(
        "# Server\r\nmini_redis_version:1.0\r\nsocket:%s\r\n"
        "# Stats\r\ntotal_commands_processed:%llu\r\nkeys:%zu\r\n",
        socket_path_.c_str(),
        static_cast<unsigned long long>(commands_.load()), store_.size()));
  }
  if (cmd == "shutdown") {
    shutdown_requested = true;  // connection loop replies, then tears down
    return Value::simple("OK");
  }
  return Value::error("ERR unknown command '" + cmd + "'");
}

}  // namespace simai::kv
