#include "kv/resp.hpp"

#include <charconv>

namespace simai::kv::resp {

Value Value::simple(std::string s) {
  Value v;
  v.kind = Kind::Simple;
  v.text = std::move(s);
  return v;
}

Value Value::error(std::string s) {
  Value v;
  v.kind = Kind::Error;
  v.text = std::move(s);
  return v;
}

Value Value::integer_of(std::int64_t i) {
  Value v;
  v.kind = Kind::Integer;
  v.integer = i;
  return v;
}

Value Value::bulk_of(ByteView b) {
  Value v;
  v.kind = Kind::Bulk;
  v.bulk.assign(b.begin(), b.end());
  return v;
}

Value Value::nil() { return Value{}; }

Value Value::array_of(std::vector<Value> items) {
  Value v;
  v.kind = Kind::Array;
  v.array = std::move(items);
  return v;
}

std::string Value::bulk_text() const {
  if (kind != Kind::Bulk) throw RespError("resp: value is not a bulk string");
  return to_string(ByteView(bulk));
}

namespace {
void append_text(Bytes& out, std::string_view s) {
  const auto* p = reinterpret_cast<const std::byte*>(s.data());
  out.insert(out.end(), p, p + s.size());
}

void append_crlf(Bytes& out) { append_text(out, "\r\n"); }

void encode_into(Bytes& out, const Value& v) {
  switch (v.kind) {
    case Kind::Simple:
      append_text(out, "+");
      append_text(out, v.text);
      append_crlf(out);
      break;
    case Kind::Error:
      append_text(out, "-");
      append_text(out, v.text);
      append_crlf(out);
      break;
    case Kind::Integer:
      append_text(out, ":");
      append_text(out, std::to_string(v.integer));
      append_crlf(out);
      break;
    case Kind::Bulk:
      append_text(out, "$");
      append_text(out, std::to_string(v.bulk.size()));
      append_crlf(out);
      out.insert(out.end(), v.bulk.begin(), v.bulk.end());
      append_crlf(out);
      break;
    case Kind::Nil:
      append_text(out, "$-1");
      append_crlf(out);
      break;
    case Kind::Array:
      append_text(out, "*");
      append_text(out, std::to_string(v.array.size()));
      append_crlf(out);
      for (const Value& item : v.array) encode_into(out, item);
      break;
  }
}
}  // namespace

Bytes encode(const Value& value) {
  Bytes out;
  encode_into(out, value);
  return out;
}

Bytes encode_command(const std::vector<Bytes>& parts) {
  std::vector<Value> items;
  items.reserve(parts.size());
  for (const Bytes& p : parts) items.push_back(Value::bulk_of(ByteView(p)));
  return encode(Value::array_of(std::move(items)));
}

Bytes encode_command(const std::vector<std::string>& parts) {
  std::vector<Value> items;
  items.reserve(parts.size());
  for (const std::string& p : parts) items.push_back(Value::bulk_of(p));
  return encode(Value::array_of(std::move(items)));
}

// ---------------------------------------------------------------------------
// Decoder
// ---------------------------------------------------------------------------

void Decoder::feed(ByteView data) {
  buffer_.insert(buffer_.end(), data.begin(), data.end());
}

void Decoder::compact() {
  // Reclaim consumed prefix once it dominates the buffer.
  if (consumed_ > 4096 && consumed_ * 2 > buffer_.size()) {
    buffer_.erase(buffer_.begin(),
                  buffer_.begin() + static_cast<std::ptrdiff_t>(consumed_));
    consumed_ = 0;
  }
}

std::optional<std::string> Decoder::read_line(std::size_t& pos) {
  for (std::size_t i = pos; i + 1 < buffer_.size(); ++i) {
    if (buffer_[i] == std::byte{'\r'} && buffer_[i + 1] == std::byte{'\n'}) {
      std::string line(reinterpret_cast<const char*>(buffer_.data() + pos),
                       i - pos);
      pos = i + 2;
      return line;
    }
  }
  return std::nullopt;
}

std::optional<Value> Decoder::parse(std::size_t& pos) {
  if (pos >= buffer_.size()) return std::nullopt;
  const char type = static_cast<char>(buffer_[pos]);
  std::size_t cursor = pos + 1;
  auto line = read_line(cursor);
  if (!line) return std::nullopt;

  auto parse_int = [&](const std::string& s) -> std::int64_t {
    std::int64_t v = 0;
    const auto [p, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
    if (ec != std::errc{} || p != s.data() + s.size())
      throw RespError("resp: invalid integer '" + s + "'");
    return v;
  };

  switch (type) {
    case '+': {
      pos = cursor;
      return Value::simple(*line);
    }
    case '-': {
      pos = cursor;
      return Value::error(*line);
    }
    case ':': {
      const std::int64_t v = parse_int(*line);
      pos = cursor;
      return Value::integer_of(v);
    }
    case '$': {
      const std::int64_t len = parse_int(*line);
      if (len == -1) {
        pos = cursor;
        return Value::nil();
      }
      if (len < 0) throw RespError("resp: negative bulk length");
      const auto n = static_cast<std::size_t>(len);
      if (buffer_.size() - cursor < n + 2) return std::nullopt;  // need more
      Value v = Value::bulk_of(ByteView(buffer_.data() + cursor, n));
      if (buffer_[cursor + n] != std::byte{'\r'} ||
          buffer_[cursor + n + 1] != std::byte{'\n'})
        throw RespError("resp: bulk string missing CRLF terminator");
      pos = cursor + n + 2;
      return v;
    }
    case '*': {
      const std::int64_t count = parse_int(*line);
      if (count < 0) {
        pos = cursor;
        return Value::nil();  // nil array
      }
      std::vector<Value> items;
      items.reserve(static_cast<std::size_t>(count));
      std::size_t scan = cursor;
      for (std::int64_t i = 0; i < count; ++i) {
        auto item = parse(scan);
        if (!item) return std::nullopt;
        items.push_back(std::move(*item));
      }
      pos = scan;
      return Value::array_of(std::move(items));
    }
    default:
      throw RespError(std::string("resp: unknown type byte '") + type + "'");
  }
}

std::optional<Value> Decoder::next() {
  std::size_t pos = consumed_;
  auto v = parse(pos);
  if (v) {
    consumed_ = pos;
    compact();
  }
  return v;
}

}  // namespace simai::kv::resp
