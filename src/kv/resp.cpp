#include "kv/resp.hpp"

#include <algorithm>
#include <charconv>

namespace simai::kv::resp {

Value Value::simple(std::string s) {
  Value v;
  v.kind = Kind::Simple;
  v.text = std::move(s);
  return v;
}

Value Value::error(std::string s) {
  Value v;
  v.kind = Kind::Error;
  v.text = std::move(s);
  return v;
}

Value Value::integer_of(std::int64_t i) {
  Value v;
  v.kind = Kind::Integer;
  v.integer = i;
  return v;
}

Value Value::bulk_of(util::Payload b) {
  Value v;
  v.kind = Kind::Bulk;
  v.bulk = std::move(b);
  return v;
}

Value Value::nil() { return Value{}; }

Value Value::array_of(std::vector<Value> items) {
  Value v;
  v.kind = Kind::Array;
  v.array = std::move(items);
  return v;
}

std::string Value::bulk_text() const {
  if (kind != Kind::Bulk) throw RespError("resp: value is not a bulk string");
  return to_string(bulk.view());
}

namespace {
void append_text(Bytes& out, std::string_view s) {
  const auto* p = reinterpret_cast<const std::byte*>(s.data());
  out.insert(out.end(), p, p + s.size());
}

void append_crlf(Bytes& out) { append_text(out, "\r\n"); }

void encode_into(Bytes& out, const Value& v) {
  switch (v.kind) {
    case Kind::Simple:
      append_text(out, "+");
      append_text(out, v.text);
      append_crlf(out);
      break;
    case Kind::Error:
      append_text(out, "-");
      append_text(out, v.text);
      append_crlf(out);
      break;
    case Kind::Integer:
      append_text(out, ":");
      append_text(out, std::to_string(v.integer));
      append_crlf(out);
      break;
    case Kind::Bulk:
      append_text(out, "$");
      append_text(out, std::to_string(v.bulk.size()));
      append_crlf(out);
      out.insert(out.end(), v.bulk.data(), v.bulk.data() + v.bulk.size());
      append_crlf(out);
      break;
    case Kind::Nil:
      append_text(out, "$-1");
      append_crlf(out);
      break;
    case Kind::Array:
      append_text(out, "*");
      append_text(out, std::to_string(v.array.size()));
      append_crlf(out);
      for (const Value& item : v.array) encode_into(out, item);
      break;
  }
}

void frames_into(std::vector<util::Payload>& frames,
                 util::PayloadBuilder& control, const Value& v) {
  const auto text = [&control](std::string_view s) {
    control.append(as_bytes_view(s));
  };
  switch (v.kind) {
    case Kind::Simple:
      text("+");
      text(v.text);
      text("\r\n");
      break;
    case Kind::Error:
      text("-");
      text(v.text);
      text("\r\n");
      break;
    case Kind::Integer:
      text(":");
      text(std::to_string(v.integer));
      text("\r\n");
      break;
    case Kind::Bulk:
      text("$");
      text(std::to_string(v.bulk.size()));
      text("\r\n");
      if (v.bulk.size() >= kBulkSliceThreshold) {
        // Flush the control bytes gathered so far, then emit the bulk as a
        // refcount bump on the caller's payload — the bytes never move.
        if (control.size() > 0) frames.push_back(control.finish());
        frames.push_back(v.bulk);
      } else {
        control.append(v.bulk.view());
      }
      text("\r\n");
      break;
    case Kind::Nil:
      text("$-1\r\n");
      break;
    case Kind::Array:
      text("*");
      text(std::to_string(v.array.size()));
      text("\r\n");
      for (const Value& item : v.array) frames_into(frames, control, item);
      break;
  }
}
}  // namespace

Bytes encode(const Value& value) {
  Bytes out;
  encode_into(out, value);
  return out;
}

std::vector<util::Payload> encode_frames(const Value& value) {
  std::vector<util::Payload> frames;
  util::PayloadBuilder control;
  frames_into(frames, control, value);
  if (control.size() > 0) frames.push_back(control.finish());
  return frames;
}

Bytes encode_command(const std::vector<Bytes>& parts) {
  std::vector<Value> items;
  items.reserve(parts.size());
  for (const Bytes& p : parts) items.push_back(Value::bulk_of(ByteView(p)));
  return encode(Value::array_of(std::move(items)));
}

Bytes encode_command(const std::vector<std::string>& parts) {
  std::vector<Value> items;
  items.reserve(parts.size());
  for (const std::string& p : parts) items.push_back(Value::bulk_of(p));
  return encode(Value::array_of(std::move(items)));
}

// ---------------------------------------------------------------------------
// Decoder
// ---------------------------------------------------------------------------

void Decoder::ensure_writable() {
  if (!buffer_) {
    buffer_ = std::make_shared<Bytes>();
    if (reserve_hint_ > 0) buffer_->reserve(reserve_hint_);
    return;
  }
  if (buffer_.use_count() > 1) {
    // Decoded slices still pin the old buffer. Copy-on-write: move only the
    // unconsumed tail into a fresh buffer; the slices keep the old one
    // alive until their payloads drop.
    auto fresh = std::make_shared<Bytes>();
    const std::size_t tail = buffer_->size() - consumed_;
    fresh->reserve(std::max(reserve_hint_, tail));
    fresh->insert(fresh->end(), buffer_->begin() +
                                    static_cast<std::ptrdiff_t>(consumed_),
                  buffer_->end());
    buffer_ = std::move(fresh);
    consumed_ = 0;
  } else if (reserve_hint_ > buffer_->capacity()) {
    buffer_->reserve(reserve_hint_);
  }
}

void Decoder::feed(ByteView data) {
  ensure_writable();
  buffer_->insert(buffer_->end(), data.begin(), data.end());
}

std::span<std::byte> Decoder::prepare(std::size_t n) {
  ensure_writable();
  prepared_base_ = buffer_->size();
  buffer_->resize(prepared_base_ + n);
  return {buffer_->data() + prepared_base_, n};
}

void Decoder::commit(std::size_t used) {
  buffer_->resize(prepared_base_ + used);
}

std::optional<std::string> Decoder::read_line(std::size_t& pos) {
  const Bytes& buf = *buffer_;
  for (std::size_t i = pos; i + 1 < buf.size(); ++i) {
    if (buf[i] == std::byte{'\r'} && buf[i + 1] == std::byte{'\n'}) {
      std::string line(reinterpret_cast<const char*>(buf.data() + pos),
                       i - pos);
      pos = i + 2;
      return line;
    }
  }
  return std::nullopt;
}

std::optional<Value> Decoder::parse(std::size_t& pos) {
  if (!buffer_ || pos >= buffer_->size()) return std::nullopt;
  const char type = static_cast<char>((*buffer_)[pos]);
  std::size_t cursor = pos + 1;
  auto line = read_line(cursor);
  if (!line) return std::nullopt;

  auto parse_int = [&](const std::string& s) -> std::int64_t {
    std::int64_t v = 0;
    const auto [p, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
    if (ec != std::errc{} || p != s.data() + s.size())
      throw RespError("resp: invalid integer '" + s + "'");
    return v;
  };

  switch (type) {
    case '+': {
      pos = cursor;
      return Value::simple(*line);
    }
    case '-': {
      pos = cursor;
      return Value::error(*line);
    }
    case ':': {
      const std::int64_t v = parse_int(*line);
      pos = cursor;
      return Value::integer_of(v);
    }
    case '$': {
      const std::int64_t len = parse_int(*line);
      if (len == -1) {
        pos = cursor;
        return Value::nil();
      }
      if (len < 0) throw RespError("resp: negative bulk length");
      const auto n = static_cast<std::size_t>(len);
      if (buffer_->size() - cursor < n + 2) {
        // Incomplete bulk: remember how big the buffer must grow so the
        // next receive reserves once instead of reallocating repeatedly.
        reserve_hint_ = std::max(reserve_hint_, cursor + n + 2);
        return std::nullopt;  // need more
      }
      const ByteView body(buffer_->data() + cursor, n);
      // Large bulks become slices of the shared receive buffer (zero
      // copy); small ones are detached so they don't pin a whole receive
      // chunk. See kBulkSliceThreshold.
      Value v = Value::bulk_of(
          n >= kBulkSliceThreshold
              ? util::Payload::wrap(buffer_, body.data(), body.size())
              : util::Payload::copy(body));
      if ((*buffer_)[cursor + n] != std::byte{'\r'} ||
          (*buffer_)[cursor + n + 1] != std::byte{'\n'})
        throw RespError("resp: bulk string missing CRLF terminator");
      pos = cursor + n + 2;
      return v;
    }
    case '*': {
      const std::int64_t count = parse_int(*line);
      if (count < 0) {
        pos = cursor;
        return Value::nil();  // nil array
      }
      std::vector<Value> items;
      items.reserve(static_cast<std::size_t>(count));
      std::size_t scan = cursor;
      for (std::int64_t i = 0; i < count; ++i) {
        auto item = parse(scan);
        if (!item) return std::nullopt;
        items.push_back(std::move(*item));
      }
      pos = scan;
      return Value::array_of(std::move(items));
    }
    default:
      throw RespError(std::string("resp: unknown type byte '") + type + "'");
  }
}

std::optional<Value> Decoder::next() {
  std::size_t pos = consumed_;
  auto v = parse(pos);
  if (v) {
    consumed_ = pos;
    reserve_hint_ = 0;
    // Recycle only when fully drained: an offset bump per value, one
    // O(1) reset per burst — never the old quadratic front-erase. If
    // decoded slices still pin the buffer, drop our reference instead;
    // the next receive starts a fresh buffer.
    if (consumed_ == buffer_->size()) {
      if (buffer_.use_count() == 1) {
        buffer_->clear();
      } else {
        buffer_.reset();
      }
      consumed_ = 0;
    }
  }
  return v;
}

}  // namespace simai::kv::resp
