#include "kv/store.hpp"

namespace simai::kv {

util::Payload IKeyValueStore::get_or_throw(std::string_view key) {
  std::optional<util::Payload> p = get(key);
  if (!p) throw StoreError("key not found: '" + std::string(key) + "'");
  return std::move(*p);
}

}  // namespace simai::kv
