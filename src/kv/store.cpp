#include "kv/store.hpp"

namespace simai::kv {

Bytes IKeyValueStore::get_or_throw(std::string_view key) {
  Bytes out;
  if (!get(key, out))
    throw StoreError("key not found: '" + std::string(key) + "'");
  return out;
}

}  // namespace simai::kv
