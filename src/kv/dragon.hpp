// DragonHPC-style distributed in-memory dictionary.
//
// Mirrors the architecture DragonHPC documents for its DDict: a set of
// *shard managers*, each owning a hash range of the keyspace and served by
// its own worker, reached over bounded channels; clients hash keys
// client-side and exchange request/response messages with the owning
// manager. Here managers are real threads and channels are real bounded
// blocking queues, so the concurrency structure (queueing at a hot shard,
// per-manager serialization) is genuine.
#pragma once

#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "kv/memory_store.hpp"
#include "util/blocking_queue.hpp"

namespace simai::kv {

class DragonDictionary final : public IKeyValueStore {
 public:
  /// Start `num_managers` shard managers, each with a request channel of
  /// depth `channel_depth` (0 = unbounded).
  explicit DragonDictionary(int num_managers = 4,
                            std::size_t channel_depth = 64);
  ~DragonDictionary();
  DragonDictionary(const DragonDictionary&) = delete;
  DragonDictionary& operator=(const DragonDictionary&) = delete;

  using IKeyValueStore::get;
  void put(std::string_view key, util::Payload value) override;
  std::optional<util::Payload> get(std::string_view key) override;
  bool exists(std::string_view key) override;
  std::size_t erase(std::string_view key) override;
  std::vector<std::string> keys(std::string_view pattern = "*") override;
  std::size_t size() override;
  void clear() override;

  int manager_count() const { return static_cast<int>(managers_.size()); }
  /// Manager a key routes to — exposed for tests and the ablation bench.
  int manager_of(std::string_view key) const;

  /// Requests processed per manager (queue pressure diagnostics).
  std::vector<std::uint64_t> requests_per_manager() const;

  /// Stop all managers and join their threads (idempotent; dtor calls it).
  void stop();

 private:
  enum class OpType { Put, Get, Exists, Erase, Keys, Size, Clear };

  // Values cross the client→manager channel as Payloads: the refcount is
  // atomic, so the hand-off between the client thread and the shard
  // manager thread moves no bytes in either direction.
  struct Response {
    bool found = false;
    util::Payload value;
    std::vector<std::string> keys;
    std::size_t count = 0;
  };

  struct Request {
    OpType op;
    std::string key;
    util::Payload value;
    std::string pattern;
    std::promise<Response> reply;
  };

  struct Manager {
    util::BlockingQueue<Request> channel;
    MemoryStore store;
    std::thread worker;
    std::atomic<std::uint64_t> processed{0};

    explicit Manager(std::size_t depth) : channel(depth) {}
  };

  Response call(int manager, Request req);
  void manager_loop(Manager& m);

  std::vector<std::unique_ptr<Manager>> managers_;
  bool stopped_ = false;
};

}  // namespace simai::kv
