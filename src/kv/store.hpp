// Uniform key-value store interface implemented by all four data-transport
// backends (node-local, filesystem, Redis, Dragon).
//
// This is the layer below the paper's DataStore client API: DataStore's
// stage_write/stage_read/poll_staged_data/clean_staged_data map directly
// onto put/get/exists/erase here, with instrumentation and virtual-time
// pricing added by the core layer.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "util/error.hpp"
#include "util/payload.hpp"
#include "util/types.hpp"

namespace simai::kv {

class StoreError : public Error {
 public:
  using Error::Error;
};

class IKeyValueStore {
 public:
  virtual ~IKeyValueStore() = default;

  /// Insert or replace `key`. The payload is taken by value: callers that
  /// hold a Payload hand over a refcount bump, legacy ByteView/Bytes call
  /// sites convert (one copy) at the boundary. Implementations must make
  /// the new value visible atomically: a concurrent get() sees either the
  /// old or the new value, never a torn one.
  virtual void put(std::string_view key, util::Payload value) = 0;

  /// Fetch `key`; nullopt if absent. In-memory backends return the stored
  /// payload itself (a refcount bump, no byte copy).
  virtual std::optional<util::Payload> get(std::string_view key) = 0;

  /// Compatibility adapter: fetch `key` into `out`; false if absent (out
  /// untouched). Copies the payload out — legacy callers keep the old cost.
  bool get(std::string_view key, Bytes& out) {
    std::optional<util::Payload> p = get(key);
    if (!p) return false;
    out = Bytes(p->data(), p->data() + p->size());
    return true;
  }

  virtual bool exists(std::string_view key) = 0;

  /// Remove `key`; returns the number of keys removed (0 or 1).
  virtual std::size_t erase(std::string_view key) = 0;

  /// All keys matching a glob pattern ('*' / '?'), in unspecified order.
  virtual std::vector<std::string> keys(std::string_view pattern = "*") = 0;

  /// Total number of keys.
  virtual std::size_t size() = 0;

  /// Remove every key.
  virtual void clear() = 0;

  /// Convenience: get() that throws StoreError when the key is missing.
  util::Payload get_or_throw(std::string_view key);

  /// Convenience overloads for text values.
  void put_string(std::string_view key, std::string_view value) {
    put(key, as_bytes_view(value));
  }
  std::string get_string(std::string_view key) {
    return to_string(get_or_throw(key));
  }
};

using StorePtr = std::shared_ptr<IKeyValueStore>;

}  // namespace simai::kv
