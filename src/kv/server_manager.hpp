// ServerManager: deploys and configures data-transport servers, exposing a
// serializable "server info" document that clients use to connect — the
// §3.2 component of the paper, with the same lifecycle
// (start_server / get_server_info / stop_server).
//
// Backend-specific setup, as in the paper:
//   redis       — one or more MiniRedis instances on Unix sockets (distinct
//                 instances or a client-sharded cluster)
//   dragon      — a DragonDictionary with N shard managers
//   node-local  — one in-memory (or tmpfs-directory) store per node
//   filesystem  — a shared DirStore staging tree (shards scale with nodes)
//
// Because the whole simulated machine lives in one OS process, in-memory
// backends publish an opaque handle into a process-global registry instead
// of a TCP address; everything else about the flow (info documents, late
// client connection, per-node stores) matches the distributed original.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "kv/store.hpp"
#include "util/fsutil.hpp"
#include "util/json.hpp"

namespace simai::kv {

class RedisServer;
class DragonDictionary;

class ServerManager {
 public:
  /// `config` fields (all optional unless noted):
  ///   backend    (required) "redis" | "dragon" | "node-local" |
  ///              "node-local-dir" | "filesystem"
  ///   nodes      node count served (default 1)
  ///   instances  redis server instances (default 1)
  ///   managers   dragon shard managers (default 4)
  ///   channel_depth  dragon channel depth (default 64)
  ///   shards     filesystem shards (default: max(16, nodes))
  ///   base_dir   directory for sockets / staging trees (default: a fresh
  ///              temporary directory owned by the manager)
  ServerManager(std::string name, util::Json config);
  ~ServerManager();
  ServerManager(const ServerManager&) = delete;
  ServerManager& operator=(const ServerManager&) = delete;

  /// Launch the servers / create the staging directories.
  void start_server();

  /// Connection document for clients; throws if the server is not started.
  util::Json get_server_info() const;

  /// Tear down servers and unregister handles (idempotent).
  void stop_server();

  bool started() const { return started_; }
  const std::string& name() const { return name_; }
  const std::string& backend() const { return backend_; }

  /// Create a client store from a server-info document. `node` selects the
  /// local store for per-node backends (node-local) and is ignored by the
  /// shared ones.
  static StorePtr connect(const util::Json& info, int node = 0);

 private:
  std::string name_;
  util::Json config_;
  std::string backend_;
  bool started_ = false;

  std::unique_ptr<util::TempDir> owned_dir_;
  std::string base_dir_;

  std::vector<std::unique_ptr<RedisServer>> redis_servers_;
  std::shared_ptr<DragonDictionary> dragon_;
  std::vector<StorePtr> node_stores_;  // node-local variants
  std::uint64_t registry_handle_ = 0;
};

}  // namespace simai::kv
