// MiniRedis: a real miniature Redis server.
//
// Listens on a Unix-domain socket, accepts concurrent connections, and
// serves the RESP2 command set a staging workload uses: PING, ECHO, SET,
// GET, DEL, EXISTS, KEYS, DBSIZE, FLUSHDB, INCR, APPEND, STRLEN, INFO,
// SHUTDOWN. Command dispatch mirrors real Redis semantics (wrong-arity
// errors, type-agnostic binary-safe values, glob KEYS patterns).
//
// Like real Redis, command execution against the keyspace is effectively
// single-threaded (one mutex around the store) — this is the architectural
// property behind the throughput ceiling the paper measures; connection
// handling uses one thread per client, which is plenty at mini-app scale.
#pragma once

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "kv/memory_store.hpp"
#include "kv/resp.hpp"
#include "net/socket.hpp"

namespace simai::kv {

class RedisServer {
 public:
  /// Bind and start serving on `socket_path` immediately.
  explicit RedisServer(std::string socket_path);
  ~RedisServer();
  RedisServer(const RedisServer&) = delete;
  RedisServer& operator=(const RedisServer&) = delete;

  const std::string& socket_path() const { return socket_path_; }

  /// Orderly shutdown: stop accepting, unblock clients, join all threads.
  /// Must not be called from a connection thread (SHUTDOWN uses
  /// begin_stop() instead and the joins happen in the destructor).
  void stop();

  /// Signal shutdown without joining (safe from any thread).
  void begin_stop();

  bool running() const { return !stopping_.load(); }

  /// Commands served since startup (for tests / INFO).
  std::uint64_t commands_processed() const { return commands_.load(); }

  /// Direct keyspace access for tests (server must be treated as paused).
  MemoryStore& store() { return store_; }

 private:
  void accept_loop();
  /// Owns the client socket for the connection's lifetime. `slot` indexes
  /// conn_fds_; the entry is cleared (under conn_mutex_) before the socket
  /// closes, so begin_stop() can never shutdown a recycled fd number.
  void serve_connection(net::Socket client, std::size_t slot);
  void serve_session(net::Socket& client);
  /// Executes one command; sets `shutdown_requested` for SHUTDOWN so the
  /// connection loop can reply before tearing the server down.
  resp::Value execute(const std::vector<resp::Value>& argv,
                      bool& shutdown_requested);

  std::string socket_path_;
  std::unique_ptr<net::UnixListener> listener_;
  MemoryStore store_;
  std::mutex exec_mutex_;  // the "single-threaded Redis core"
  std::thread accept_thread_;
  std::mutex conn_mutex_;
  std::vector<std::thread> conn_threads_;
  std::vector<int> conn_fds_;
  std::atomic<bool> stopping_{false};
  std::atomic<std::uint64_t> commands_{0};
};

}  // namespace simai::kv
