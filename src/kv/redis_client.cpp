#include "kv/redis_client.hpp"

#include <algorithm>

#include "obs/obs.hpp"
#include "util/crc32.hpp"

namespace simai::kv {

RedisClient::RedisClient(const std::string& socket_path)
    : socket_(net::unix_connect(socket_path)) {}

void RedisClient::recv_chunk(const char* context) {
  // Receive straight into the decoder's buffer: prepare() exposes a
  // writable tail, commit() trims it to what actually arrived — no
  // intermediate chunk allocation per recv.
  const std::span<std::byte> room = decoder_.prepare(64 * 1024);
  const std::size_t n = socket_.recv_into(room);
  decoder_.commit(n);
  if (n == 0) throw StoreError(std::string("redis: ") + context);
}

resp::Value RedisClient::round_trip(const resp::Value& request) {
  socket_.send_frames(resp::encode_frames(request));
  while (true) {
    if (auto reply = decoder_.next()) return *reply;
    recv_chunk("server closed the connection");
  }
}

resp::Value RedisClient::command(const std::vector<Bytes>& argv) {
  std::vector<resp::Value> items;
  items.reserve(argv.size());
  for (const Bytes& p : argv)
    items.push_back(resp::Value::bulk_of(ByteView(p)));
  return round_trip(resp::Value::array_of(std::move(items)));
}

resp::Value RedisClient::command(const std::vector<std::string>& argv) {
  std::vector<resp::Value> items;
  items.reserve(argv.size());
  for (const std::string& p : argv)
    items.push_back(resp::Value::bulk_of(p));
  return round_trip(resp::Value::array_of(std::move(items)));
}

std::vector<resp::Value> RedisClient::pipeline(
    const std::vector<std::vector<std::string>>& commands) {
  // Gather every command's frames into one scatter list: N commands, one
  // writev, one kernel round-trip (the classic Redis batching win).
  std::vector<util::Payload> wire;
  for (const auto& argv : commands) {
    std::vector<resp::Value> items;
    items.reserve(argv.size());
    for (const std::string& p : argv)
      items.push_back(resp::Value::bulk_of(p));
    std::vector<util::Payload> frames =
        resp::encode_frames(resp::Value::array_of(std::move(items)));
    wire.insert(wire.end(), std::make_move_iterator(frames.begin()),
                std::make_move_iterator(frames.end()));
  }
  socket_.send_frames(wire);
  std::vector<resp::Value> replies;
  replies.reserve(commands.size());
  while (replies.size() < commands.size()) {
    if (auto reply = decoder_.next()) {
      replies.push_back(std::move(*reply));
      continue;
    }
    recv_chunk("server closed the connection mid-pipeline");
  }
  return replies;
}

void RedisClient::raise_if_error(const resp::Value& v) {
  if (v.is_error()) throw StoreError("redis: " + v.text);
}

void RedisClient::put(std::string_view key, util::Payload value) {
  obs::count_kv("redis", "put", value.size());
  // The value rides as a bulk payload: encode_frames hands large values to
  // writev as a slice of the caller's buffer — no wire-image concatenation.
  std::vector<resp::Value> argv;
  argv.push_back(resp::Value::bulk_of("SET"));
  argv.push_back(resp::Value::bulk_of(key));
  argv.push_back(resp::Value::bulk_of(std::move(value)));
  raise_if_error(round_trip(resp::Value::array_of(std::move(argv))));
}

std::optional<util::Payload> RedisClient::get(std::string_view key) {
  resp::Value v = command(std::vector<std::string>{"GET", std::string(key)});
  raise_if_error(v);
  if (v.kind == resp::Kind::Nil) return std::nullopt;
  obs::count_kv("redis", "get", v.bulk.size());
  // Large replies are slices of the receive buffer — handed through intact.
  return std::move(v.bulk);
}

bool RedisClient::exists(std::string_view key) {
  const resp::Value v =
      command(std::vector<std::string>{"EXISTS", std::string(key)});
  raise_if_error(v);
  return v.integer > 0;
}

std::size_t RedisClient::erase(std::string_view key) {
  const resp::Value v =
      command(std::vector<std::string>{"DEL", std::string(key)});
  raise_if_error(v);
  return static_cast<std::size_t>(v.integer);
}

std::vector<std::string> RedisClient::keys(std::string_view pattern) {
  const resp::Value v =
      command(std::vector<std::string>{"KEYS", std::string(pattern)});
  raise_if_error(v);
  std::vector<std::string> out;
  out.reserve(v.array.size());
  for (const resp::Value& item : v.array) out.push_back(item.bulk_text());
  return out;
}

std::size_t RedisClient::size() {
  const resp::Value v = command(std::vector<std::string>{"DBSIZE"});
  raise_if_error(v);
  return static_cast<std::size_t>(v.integer);
}

void RedisClient::clear() {
  raise_if_error(command(std::vector<std::string>{"FLUSHDB"}));
}

std::string RedisClient::ping() {
  const resp::Value v = command(std::vector<std::string>{"PING"});
  raise_if_error(v);
  return v.text;
}

std::int64_t RedisClient::incr(std::string_view key) {
  const resp::Value v =
      command(std::vector<std::string>{"INCR", std::string(key)});
  raise_if_error(v);
  return v.integer;
}

std::string RedisClient::info() {
  const resp::Value v = command(std::vector<std::string>{"INFO"});
  raise_if_error(v);
  return v.bulk_text();
}

void RedisClient::shutdown_server() {
  raise_if_error(command(std::vector<std::string>{"SHUTDOWN"}));
}

// ---------------------------------------------------------------------------
// RedisClusterClient
// ---------------------------------------------------------------------------

RedisClusterClient::RedisClusterClient(
    const std::vector<std::string>& socket_paths) {
  if (socket_paths.empty())
    throw StoreError("redis cluster: need at least one server");
  shards_.reserve(socket_paths.size());
  for (const std::string& path : socket_paths)
    shards_.push_back(std::make_unique<RedisClient>(path));
}

std::size_t RedisClusterClient::shard_of(std::string_view key) const {
  return util::crc32(key) % shards_.size();
}

RedisClient& RedisClusterClient::route(std::string_view key) {
  return *shards_[shard_of(key)];
}

void RedisClusterClient::put(std::string_view key, util::Payload value) {
  route(key).put(key, std::move(value));
}

std::optional<util::Payload> RedisClusterClient::get(std::string_view key) {
  return route(key).get(key);
}

bool RedisClusterClient::exists(std::string_view key) {
  return route(key).exists(key);
}

std::size_t RedisClusterClient::erase(std::string_view key) {
  return route(key).erase(key);
}

std::vector<std::string> RedisClusterClient::keys(std::string_view pattern) {
  std::vector<std::string> out;
  for (auto& shard : shards_) {
    std::vector<std::string> part = shard->keys(pattern);
    out.insert(out.end(), part.begin(), part.end());
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::size_t RedisClusterClient::size() {
  std::size_t total = 0;
  for (auto& shard : shards_) total += shard->size();
  return total;
}

void RedisClusterClient::clear() {
  for (auto& shard : shards_) shard->clear();
}

}  // namespace simai::kv
