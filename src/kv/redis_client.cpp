#include "kv/redis_client.hpp"

#include <algorithm>

#include "util/crc32.hpp"

namespace simai::kv {

RedisClient::RedisClient(const std::string& socket_path)
    : socket_(net::unix_connect(socket_path)) {}

resp::Value RedisClient::round_trip(Bytes request) {
  socket_.send_all(ByteView(request));
  while (true) {
    if (auto reply = decoder_.next()) return *reply;
    Bytes chunk = socket_.recv_some(64 * 1024);
    if (chunk.empty())
      throw StoreError("redis: server closed the connection");
    decoder_.feed(chunk);
  }
}

resp::Value RedisClient::command(const std::vector<Bytes>& argv) {
  return round_trip(resp::encode_command(argv));
}

resp::Value RedisClient::command(const std::vector<std::string>& argv) {
  return round_trip(resp::encode_command(argv));
}

std::vector<resp::Value> RedisClient::pipeline(
    const std::vector<std::vector<std::string>>& commands) {
  Bytes wire;
  for (const auto& argv : commands) {
    const Bytes one = resp::encode_command(argv);
    wire.insert(wire.end(), one.begin(), one.end());
  }
  socket_.send_all(ByteView(wire));
  std::vector<resp::Value> replies;
  replies.reserve(commands.size());
  while (replies.size() < commands.size()) {
    if (auto reply = decoder_.next()) {
      replies.push_back(std::move(*reply));
      continue;
    }
    Bytes chunk = socket_.recv_some(64 * 1024);
    if (chunk.empty())
      throw StoreError("redis: server closed the connection mid-pipeline");
    decoder_.feed(chunk);
  }
  return replies;
}

void RedisClient::raise_if_error(const resp::Value& v) {
  if (v.is_error()) throw StoreError("redis: " + v.text);
}

void RedisClient::put(std::string_view key, ByteView value) {
  std::vector<Bytes> argv;
  argv.push_back(to_bytes("SET"));
  argv.push_back(to_bytes(key));
  argv.emplace_back(value.begin(), value.end());
  raise_if_error(command(argv));
}

bool RedisClient::get(std::string_view key, Bytes& out) {
  const resp::Value v = command(
      std::vector<std::string>{"GET", std::string(key)});
  raise_if_error(v);
  if (v.kind == resp::Kind::Nil) return false;
  out = v.bulk;
  return true;
}

bool RedisClient::exists(std::string_view key) {
  const resp::Value v =
      command(std::vector<std::string>{"EXISTS", std::string(key)});
  raise_if_error(v);
  return v.integer > 0;
}

std::size_t RedisClient::erase(std::string_view key) {
  const resp::Value v =
      command(std::vector<std::string>{"DEL", std::string(key)});
  raise_if_error(v);
  return static_cast<std::size_t>(v.integer);
}

std::vector<std::string> RedisClient::keys(std::string_view pattern) {
  const resp::Value v =
      command(std::vector<std::string>{"KEYS", std::string(pattern)});
  raise_if_error(v);
  std::vector<std::string> out;
  out.reserve(v.array.size());
  for (const resp::Value& item : v.array) out.push_back(item.bulk_text());
  return out;
}

std::size_t RedisClient::size() {
  const resp::Value v = command(std::vector<std::string>{"DBSIZE"});
  raise_if_error(v);
  return static_cast<std::size_t>(v.integer);
}

void RedisClient::clear() {
  raise_if_error(command(std::vector<std::string>{"FLUSHDB"}));
}

std::string RedisClient::ping() {
  const resp::Value v = command(std::vector<std::string>{"PING"});
  raise_if_error(v);
  return v.text;
}

std::int64_t RedisClient::incr(std::string_view key) {
  const resp::Value v =
      command(std::vector<std::string>{"INCR", std::string(key)});
  raise_if_error(v);
  return v.integer;
}

std::string RedisClient::info() {
  const resp::Value v = command(std::vector<std::string>{"INFO"});
  raise_if_error(v);
  return v.bulk_text();
}

void RedisClient::shutdown_server() {
  raise_if_error(command(std::vector<std::string>{"SHUTDOWN"}));
}

// ---------------------------------------------------------------------------
// RedisClusterClient
// ---------------------------------------------------------------------------

RedisClusterClient::RedisClusterClient(
    const std::vector<std::string>& socket_paths) {
  if (socket_paths.empty())
    throw StoreError("redis cluster: need at least one server");
  shards_.reserve(socket_paths.size());
  for (const std::string& path : socket_paths)
    shards_.push_back(std::make_unique<RedisClient>(path));
}

std::size_t RedisClusterClient::shard_of(std::string_view key) const {
  return util::crc32(key) % shards_.size();
}

RedisClient& RedisClusterClient::route(std::string_view key) {
  return *shards_[shard_of(key)];
}

void RedisClusterClient::put(std::string_view key, ByteView value) {
  route(key).put(key, value);
}

bool RedisClusterClient::get(std::string_view key, Bytes& out) {
  return route(key).get(key, out);
}

bool RedisClusterClient::exists(std::string_view key) {
  return route(key).exists(key);
}

std::size_t RedisClusterClient::erase(std::string_view key) {
  return route(key).erase(key);
}

std::vector<std::string> RedisClusterClient::keys(std::string_view pattern) {
  std::vector<std::string> out;
  for (auto& shard : shards_) {
    std::vector<std::string> part = shard->keys(pattern);
    out.insert(out.end(), part.begin(), part.end());
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::size_t RedisClusterClient::size() {
  std::size_t total = 0;
  for (auto& shard : shards_) total += shard->size();
  return total;
}

void RedisClusterClient::clear() {
  for (auto& shard : shards_) shard->clear();
}

}  // namespace simai::kv
