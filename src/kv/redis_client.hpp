// MiniRedis client: blocking request/response over a Unix-domain socket,
// plus a cluster wrapper that shards keys across several server instances
// with CRC-based slot hashing (how SmartSim deploys Redis across nodes).
//
// RedisClient implements IKeyValueStore so the DataStore layer can treat it
// like any other backend; typed command helpers (ping, incr, info, ...) are
// exposed for direct use and tests.
#pragma once

#include <memory>
#include <vector>

#include "kv/resp.hpp"
#include "kv/store.hpp"
#include "net/socket.hpp"

namespace simai::kv {

class RedisClient final : public IKeyValueStore {
 public:
  /// Connect to a MiniRedis server at `socket_path`.
  explicit RedisClient(const std::string& socket_path);

  // IKeyValueStore
  using IKeyValueStore::get;
  void put(std::string_view key, util::Payload value) override;
  std::optional<util::Payload> get(std::string_view key) override;
  bool exists(std::string_view key) override;
  std::size_t erase(std::string_view key) override;
  std::vector<std::string> keys(std::string_view pattern = "*") override;
  std::size_t size() override;
  void clear() override;

  // Typed extras
  std::string ping();
  std::int64_t incr(std::string_view key);
  std::string info();
  /// Ask the server to shut down (returns once the server acknowledged).
  void shutdown_server();

  /// Raw command round-trip (public for protocol tests).
  resp::Value command(const std::vector<Bytes>& argv);
  resp::Value command(const std::vector<std::string>& argv);

  /// Pipelining: send every command back to back, then collect all replies
  /// — one kernel round-trip for N commands instead of N (the classic
  /// Redis batching optimization; measured by bench_ablation).
  std::vector<resp::Value> pipeline(
      const std::vector<std::vector<std::string>>& commands);

 private:
  /// Send one request as scatter-gather frames (payload args go to the
  /// kernel straight from their owning buffers) and block for the reply.
  resp::Value round_trip(const resp::Value& request);
  /// Grow the decoder's receive buffer by one recv(2) directly into it.
  void recv_chunk(const char* context);
  static void raise_if_error(const resp::Value& v);

  net::Socket socket_;
  resp::Decoder decoder_;
};

/// Client-side sharded "cluster": key -> CRC32 % N -> server. Matches the
/// deployment mode where ServerManager launches one Redis instance per
/// node and clients route by hash.
class RedisClusterClient final : public IKeyValueStore {
 public:
  explicit RedisClusterClient(const std::vector<std::string>& socket_paths);

  using IKeyValueStore::get;
  void put(std::string_view key, util::Payload value) override;
  std::optional<util::Payload> get(std::string_view key) override;
  bool exists(std::string_view key) override;
  std::size_t erase(std::string_view key) override;
  std::vector<std::string> keys(std::string_view pattern = "*") override;
  std::size_t size() override;
  void clear() override;

  std::size_t shard_count() const { return shards_.size(); }
  /// Shard a key routes to — exposed for tests.
  std::size_t shard_of(std::string_view key) const;

 private:
  RedisClient& route(std::string_view key);
  std::vector<std::unique_ptr<RedisClient>> shards_;
};

}  // namespace simai::kv
