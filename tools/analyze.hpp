// simai_analyze: a whole-program static analyzer for the simulator sources.
//
// simai_lint (lint.hpp) checks one translation unit at a time; everything it
// can prove is local. The properties that actually gate the parallel-DES
// roadmap item are *global*: whether a blocking syscall is reachable from a
// fiber body three calls away, whether a namespace-scope mutable escapes
// into several logical processes, whether the subsystem include graph still
// forms the layering that makes per-LP partitioning safe. simai_analyze
// indexes every file under src/ at once (sharing the lint lexer), builds a
// cross-file symbol/call graph plus the include graph, and checks those
// whole-program properties statically — at compile-graph level, not at
// flaky-test level.
//
// Rules (ids are stable; the allowlist references them):
//   fiber-blocking     a real blocking primitive (mutex acquisition,
//                      condition_variable wait, thread join, semaphore
//                      acquire, sleep*, ::read/::write/poll/select/accept/
//                      connect/recv/send on real fds) is reachable through
//                      the call graph from a process body — a function (or
//                      lambda) taking sim::Context&. One blocked fiber
//                      stalls the entire engine: every finding carries the
//                      full call chain from a process body to the primitive.
//   shared-state       a non-const namespace-scope / static / thread_local
//                      mutable variable. Logical processes all see it; once
//                      LPs run on different worker threads it is a data
//                      race, and even single-threaded it is cross-LP state
//                      invisible to the virtual-time race detector unless it
//                      goes through check::SharedCell. Synchronization
//                      primitives themselves (mutex, once_flag, …) are
//                      exempt here — fiber-blocking owns them.
//   spawn-ref-capture  a lambda passed to Engine::spawn captures by
//                      reference ([&], [&x]). The capture crosses the spawn
//                      boundary into another logical process: the static
//                      counterpart of the dynamic race detector, and the
//                      precondition for partitioning LPs across threads.
//   cross-lp-shared-state  the same identifier is captured by reference
//                      into Engine::spawn_on bodies whose first arguments
//                      (the target LP expressions) differ textually. Those
//                      shards dispatch on different worker threads, so the
//                      shared object is mutable cross-LP state bypassing
//                      both the LP mailbox (Engine::post) and
//                      check::SharedCell; identifiers declared through
//                      SharedCell are exempt.
//   layer-upward       an #include edge from a lower-layer subsystem to a
//                      higher-layer one, per the declared layer map
//                      (tools/simai_layers.txt). Upward edges are what make
//                      subsystems unpartitionable.
//   layer-cycle        a cycle in the file-level include graph.
//   layer-unmapped     (warning) a src/ subsystem missing from the layer
//                      map — the layering pass cannot vouch for it.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "lint.hpp"

namespace simai::analyze {

enum class Severity { Note, Warning, Error };
std::string_view severity_name(Severity s);

struct Finding {
  std::string file;
  int line = 0;
  std::string rule;  // stable rule id (see header comment)
  Severity severity = Severity::Error;
  std::string message;
  std::string fix_hint;  // how findings of this rule graduate to fixes
  std::string excerpt;   // offending source line (allowlist anchor target)
  // fiber-blocking only: the call chain, process body first, each frame
  // formatted "qualified_name (file:line)".
  std::vector<std::string> chain;

  std::string to_string() const;
};

struct SourceFile {
  std::string path;
  std::string text;
};

/// Declared subsystem layering, bottom (rank 0) to top. File format — one
/// layer per line, lowest first:
///
///   <rank> <subsystem> [<subsystem>...]   # comment
///
/// Subsystems on the same line may include each other; an include edge from
/// rank a to rank b is an error when b > a. Subsystem = the directory
/// component after src/ (util, sim, kv, ...).
class LayerMap {
 public:
  static LayerMap parse(std::string_view text, std::vector<std::string>* errors = nullptr);
  /// Load from a file; returns builtin() when the file is absent.
  static LayerMap load(const std::string& path, std::vector<std::string>* errors = nullptr);
  /// The shipped map (tools/simai_layers.txt mirrors it; see DESIGN.md
  /// §4.11 for the rationale).
  static LayerMap builtin();

  void set(std::string subsystem, int rank);
  std::optional<int> rank(std::string_view subsystem) const;
  bool empty() const { return ranks_.empty(); }

 private:
  std::vector<std::pair<std::string, int>> ranks_;  // sorted by name
};

// ---------------------------------------------------------------------------
// Individual passes — exposed for tests; no allowlist filtering. Findings
// are deterministically ordered (file, line, rule, message).
// ---------------------------------------------------------------------------

/// Cross-file call-graph pass: flags blocking primitives reachable from
/// sim::Context-taking functions/lambdas, with the full call chain.
std::vector<Finding> check_blocking_reachability(const std::vector<SourceFile>& files);

/// Shared-state escape pass: bare mutable globals/statics and by-reference
/// lambda captures crossing Engine::spawn.
std::vector<Finding> check_shared_state(const std::vector<SourceFile>& files);

/// Cross-LP escape pass: one identifier captured by reference into
/// spawn_on bodies targeting two textually different LPs (SharedCell-held
/// identifiers exempt).
std::vector<Finding> check_cross_lp_state(const std::vector<SourceFile>& files);

/// Include-graph layering pass: upward edges and cycles per the layer map.
std::vector<Finding> check_layering(const std::vector<SourceFile>& files,
                                    const LayerMap& layers);

// ---------------------------------------------------------------------------
// Driver
// ---------------------------------------------------------------------------

class Analyzer {
 public:
  void add_file(std::string path, std::string text);
  /// Add a file or recursively a directory of .cpp/.cc/.hpp/.h files, in
  /// sorted order. Throws simai::Error on read failure.
  void add_path(const std::string& path);
  void set_layer_map(LayerMap m) { layers_ = std::move(m); }
  const std::vector<SourceFile>& files() const { return files_; }

  /// Run every pass over the indexed files. The allowlist (if any) filters
  /// findings; anchors match against the offending line and the message.
  std::vector<Finding> run(const lint::Allowlist* allow = nullptr) const;

 private:
  std::vector<SourceFile> files_;
  LayerMap layers_ = LayerMap::builtin();
};

/// Machine-readable output. to_json emits
///   {"tool":"simai_analyze","findings":[{file,line,rule,severity,message,
///    fix_hint,chain[]}...],"counts":{"error":N,"warning":N,"note":N}}
/// and to_sarif a minimal SARIF 2.1.0 document (one run, one result per
/// finding, chains rendered as related locations).
std::string to_json(const std::vector<Finding>& findings);
std::string to_sarif(const std::vector<Finding>& findings);

}  // namespace simai::analyze
