#!/usr/bin/env bash
# Pre-PR verification gate: determinism lint + the full test suite across
# every build preset, plus a race-report-clean sweep with the virtual-time
# race detector armed (SIMAI_CHECK=1).
#
#   tools/check.sh              # everything (default, asan-ubsan, tsan,
#                               #   fibers-off + lint + SIMAI_CHECK sweep)
#   tools/check.sh default tsan # just these presets
#   SIMAI_CHECK_JOBS=4 tools/check.sh   # cap build/test parallelism
#
# Each preset builds into its own tree (build/, build-asan/, build-tsan/,
# build-fibers-off/), so incremental reruns are cheap. The script fails on
# the first broken stage. See DESIGN.md §4.6 for what each layer certifies.
set -euo pipefail

cd "$(dirname "$0")/.."

PRESETS=("$@")
if [ ${#PRESETS[@]} -eq 0 ]; then
  PRESETS=(default asan-ubsan tsan fibers-off)
fi
JOBS="${SIMAI_CHECK_JOBS:-$(nproc)}"

banner() { printf '\n==== %s ====\n' "$*"; }

for preset in "${PRESETS[@]}"; do
  banner "preset: $preset — configure + build"
  cmake --preset "$preset" >/dev/null
  cmake --build --preset "$preset" -j "$JOBS"

  banner "preset: $preset — ctest"
  ctest --preset "$preset" -j "$JOBS"
done

# Lint runs as the ctest target simai_lint_src in every preset above; run it
# once more standalone so a lint regression is named explicitly even when
# someone trims the preset list. --prune fails on allowlist entries that no
# longer match anything (dead suppressions).
if [ -x build/tools/simai_lint ]; then
  banner "determinism lint (standalone, --prune)"
  build/tools/simai_lint --allow tools/simai_lint_allow.txt --prune src
fi

# Whole-program static analysis (DESIGN.md §4.11): fiber-blocking
# reachability, shared-state escapes, include layering. Runs as the ctest
# target simai_analyze_src too; this standalone stage emits --format json
# and exits nonzero on any error-severity finding or stale allowlist entry,
# so the machine-readable output path is exercised on every gate run.
if [ -x build/tools/simai_analyze ]; then
  banner "whole-program static analysis (--format json, --prune)"
  analyze_out=$(mktemp)
  if ! build/tools/simai_analyze \
      --allow tools/simai_analyze_allow.txt \
      --layers tools/simai_layers.txt \
      --format json --prune src >"$analyze_out"; then
    cat "$analyze_out"
    rm -f "$analyze_out"
    echo 'FAIL: simai_analyze reported error-severity findings' >&2
    exit 1
  fi
  rm -f "$analyze_out"
fi

# Parallel scheduler under ThreadSanitizer: ctest above already runs every
# test in the tsan preset, but the parallel dispatch paths deserve a named
# stage — these are the only tests where worker THREADS (not fibers) mutate
# engine state concurrently, so a silent tsan-preset trim would otherwise
# lose exactly the coverage the conservative-window protocol depends on.
# SIMAI_BUILD_TSAN coerces the substrate to Thread; the explicit filter
# reruns the cross-LP scheduler suite and the worker-count parity suite.
if [ -x build-tsan/tests/sim_parallel_test ]; then
  banner "tsan: parallel scheduler (sim_parallel_test)"
  build-tsan/tests/sim_parallel_test
fi
if [ -x build-tsan/tests/sim_parity_test ]; then
  banner "tsan: worker-count parity (ParallelDispatchParity.*)"
  build-tsan/tests/sim_parity_test --gtest_filter='ParallelDispatchParity.*'
fi

# Payload-plane bench smoke: rerun the copies-per-hop measurement and fail
# if a data-plane change regressed copies per round trip by more than 25%
# versus the committed BENCH_payload.json (throughput is machine-dependent
# and not gated; copy counts are structural and are).
if [ -x build/bench/bench_payload ] && [ -f BENCH_payload.json ]; then
  banner "payload-plane bench smoke (copies-per-hop gate)"
  build/bench/bench_payload --smoke --check BENCH_payload.json
fi

# Engine-scale bench smoke: rerun the two-point fiber dispatch curve and
# fail if events/sec at 4,096 processes dropped more than 20% versus the
# committed BENCH_scale.json baseline — the calendar queue / stack pool /
# process arena are all on this path, so a structural regression shows up
# here before the full curve would.
if [ -x build/bench/bench_scale ] && [ -f BENCH_scale.json ]; then
  banner "engine-scale bench smoke (events/sec gate)"
  build/bench/bench_scale --smoke --check BENCH_scale.json
fi

# Parallel-dispatch bench smoke: reduced-scale fig3/fig6 replays at 1, 2,
# 4, and 8 workers. The fingerprint-parity gate (byte-identical canonical
# results at every worker count) always runs; the events/sec comparison
# fails on a >50% regression of the 1-worker replay versus the committed
# BENCH_parallel.json (min-of-5 both sides — the smoke replay is ~10ms, so
# the tolerance is generous by design). Wall-clock speedup is never gated
# here — it is core-count-bound (see host_cpus in the committed file).
if [ -x build/bench/bench_parallel ] && [ -f BENCH_parallel.json ]; then
  banner "parallel dispatch bench smoke (fingerprint-parity gate)"
  build/bench/bench_parallel --smoke --check BENCH_parallel.json
fi

# Serving-plane smoke: determinism/failover contract tests, then the serve
# bench in smoke mode gated against the committed offered-load/latency
# curves (outage-scenario keys only — the smoke sweep is reduced, the
# outage cell is not; see bench_serve.cpp).
if [ -x build/tests/serve_test ]; then
  banner "serving plane: serve_test"
  build/tests/serve_test
fi
if [ -x build/bench/bench_serve ] && [ -f BENCH_serve.json ]; then
  banner "serving plane: bench smoke (goodput/latency gate)"
  build/bench/bench_serve --smoke --check BENCH_serve.json
fi

# Observability plane smoke: verify the trace exporter/analyzer round-trip
# (simai_trace --self-check), then run the fig2 timeline bench with the obs
# plane armed (SIMAI_OBS=1) and summarize the emitted Chrome trace. The
# summary must show at least one matched write->read flow and counter
# series — the causal-tracing contract of DESIGN.md §4.8.
if [ -x build/tools/simai_trace ]; then
  banner "obs plane: simai_trace self-checks"
  build/tools/simai_trace --self-check
  build/tools/simai_trace critical-path --self-check

  if [ -x build/bench/bench_fig2_timeline ]; then
    banner "obs plane: SIMAI_OBS=1 fig2 smoke + trace summary + critical path"
    obs_dir=$(mktemp -d)
    SIMAI_OBS=1 SIMAI_FIG2_DIR="$obs_dir" build/bench/bench_fig2_timeline >/dev/null
    build/tools/simai_trace summary "$obs_dir/fig2_original.trace.json" \
      | tee "$obs_dir/summary.txt"
    if ! grep -Eq 'flows: [1-9][0-9]* start' "$obs_dir/summary.txt"; then
      echo 'FAIL: armed fig2 trace contains no flow events' >&2
      rm -rf "$obs_dir"
      exit 1
    fi
    # Critical-path walk over the same armed trace: the blame table must
    # attribute at least some path time to transport (the workload moves
    # every snapshot through a priced backend).
    build/tools/simai_trace critical-path "$obs_dir/fig2_original.trace.json" \
      | tee "$obs_dir/critical.txt"
    if ! grep -q 'transport:' "$obs_dir/critical.txt"; then
      echo 'FAIL: fig2 critical path attributes no transport time' >&2
      rm -rf "$obs_dir"
      exit 1
    fi
    rm -rf "$obs_dir"
  fi
fi

# Observability bench smoke: the full parity matrix (fig2/fig3/fig6-style
# replays x both substrates x workers 1/2/4/8 x armed/disarmed) plus the
# <1% disarmed-cost gate, compared against the committed BENCH_obs.json.
if [ -x build/bench/bench_obs ] && [ -f BENCH_obs.json ]; then
  banner "obs plane: bench smoke (parity + disarmed-cost gate)"
  build/bench/bench_obs --smoke --check BENCH_obs.json
fi

# Race-report-clean sweep: rerun the default suite with the virtual-time
# race detector armed. Reports print as 'virtual-time race' warnings; any
# occurrence outside the detector's own provoked-race tests fails the gate.
# check_test and the parity suite mute logging for the races they provoke,
# so a clean tree greps clean.
if [ -d build ]; then
  banner "SIMAI_CHECK=1 race-report sweep (default preset)"
  sweep_log=$(mktemp)
  trap 'rm -f "$sweep_log"' EXIT
  (cd build && SIMAI_CHECK=1 ctest -j "$JOBS" --output-on-failure) | tee "$sweep_log"
  if grep -q 'virtual-time race' "$sweep_log"; then
    echo 'FAIL: race reports surfaced during the SIMAI_CHECK=1 sweep' >&2
    exit 1
  fi
fi

banner "all checks passed"
