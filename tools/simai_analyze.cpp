// simai_analyze CLI: whole-program static analysis over simulator sources.
//
//   simai_analyze [--allow FILE] [--layers FILE] [--format text|json|sarif]
//                 [--prune] [--quiet] PATH...
//
// Each PATH is a file or a directory (walked recursively for
// .cpp/.cc/.hpp/.h, sorted). All files are indexed together — that is the
// point: the passes (fiber-blocking reachability, shared-state escapes,
// include-graph layering; see tools/analyze.hpp) are whole-program.
//
//   --allow FILE    reviewed suppressions, same format as simai_lint's
//                   (rule path[:anchor]); anchors match the offending line,
//                   the message, or a call-chain frame.
//   --layers FILE   layer map (tools/simai_layers.txt format); defaults to
//                   the builtin map when absent.
//   --format        text (default, human), json (stable schema for the
//                   check.sh gate), sarif (SARIF 2.1.0 for code scanners).
//   --prune         also report allowlist entries that matched nothing;
//                   each counts as a finding.
//   --quiet         suppress per-finding output; summary + exit code only.
//
// Exit codes (shared convention with simai_lint):
//   0  clean (no error-severity findings, no stale entries under --prune)
//   1  error-severity findings present (warnings alone stay 0)
//   2  usage or I/O error
#include <cstdio>
#include <string>
#include <vector>

#include "analyze.hpp"

int main(int argc, char** argv) {
  std::string allow_path;
  std::string layers_path;
  std::string format = "text";
  std::vector<std::string> roots;
  bool quiet = false;
  bool prune = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--allow" && i + 1 < argc) {
      allow_path = argv[++i];
    } else if (arg == "--layers" && i + 1 < argc) {
      layers_path = argv[++i];
    } else if (arg == "--format" && i + 1 < argc) {
      format = argv[++i];
      if (format != "text" && format != "json" && format != "sarif") {
        std::fprintf(stderr, "simai_analyze: unknown format '%s'\n",
                     format.c_str());
        return 2;
      }
    } else if (arg == "--quiet" || arg == "-q") {
      quiet = true;
    } else if (arg == "--prune") {
      prune = true;
    } else if (arg == "--help" || arg == "-h") {
      std::puts(
          "usage: simai_analyze [--allow FILE] [--layers FILE]\n"
          "                     [--format text|json|sarif] [--prune]\n"
          "                     [--quiet] PATH...");
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "simai_analyze: unknown option '%s' (try --help)\n",
                   arg.c_str());
      return 2;
    } else {
      roots.push_back(arg);
    }
  }
  if (roots.empty()) {
    std::fputs("simai_analyze: no paths given (try --help)\n", stderr);
    return 2;
  }
  if (prune && allow_path.empty()) {
    std::fputs("simai_analyze: --prune needs --allow FILE\n", stderr);
    return 2;
  }

  std::vector<std::string> cfg_errors;
  simai::lint::Allowlist allow =
      simai::lint::Allowlist::load(allow_path, &cfg_errors);
  simai::analyze::LayerMap layers =
      layers_path.empty()
          ? simai::analyze::LayerMap::builtin()
          : simai::analyze::LayerMap::load(layers_path, &cfg_errors);
  for (const std::string& err : cfg_errors)
    std::fprintf(stderr, "simai_analyze: %s\n", err.c_str());
  if (!cfg_errors.empty()) return 2;

  simai::analyze::Analyzer analyzer;
  analyzer.set_layer_map(std::move(layers));
  try {
    for (const std::string& root : roots) analyzer.add_path(root);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "simai_analyze: %s\n", e.what());
    return 2;
  }

  const std::vector<simai::analyze::Finding> findings =
      analyzer.run(allow_path.empty() ? nullptr : &allow);

  int errors = 0, warnings = 0;
  for (const simai::analyze::Finding& f : findings) {
    if (f.severity == simai::analyze::Severity::Error) ++errors;
    if (f.severity == simai::analyze::Severity::Warning) ++warnings;
  }

  if (format == "json") {
    std::fputs(simai::analyze::to_json(findings).c_str(), stdout);
  } else if (format == "sarif") {
    std::fputs(simai::analyze::to_sarif(findings).c_str(), stdout);
  } else if (!quiet) {
    for (const simai::analyze::Finding& f : findings)
      std::printf("%s\n", f.to_string().c_str());
  }

  int stale = 0;
  if (prune) {
    for (const std::string& entry : allow.stale_entries()) {
      ++stale;
      if (!quiet && format == "text")
        std::printf("allowlist: stale entry (matched nothing): %s\n",
                    entry.c_str());
    }
  }

  std::fprintf(stderr,
               "simai_analyze: %zu file(s), %d error(s), %d warning(s)%s\n",
               analyzer.files().size(), errors, warnings,
               prune ? (", " + std::to_string(stale) + " stale allowlist entr" +
                        (stale == 1 ? "y" : "ies"))
                          .c_str()
                     : "");
  return errors + stale > 0 ? 1 : 0;
}
