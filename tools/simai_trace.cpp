// simai_trace: triage CLI for Chrome/Perfetto traces exported by
// sim::TraceRecorder::to_chrome_json (bench_fig2_timeline, simai_run).
//
//   simai_trace summary <trace.json>    per-track occupancy, per-backend
//                                       latency percentiles, flow/counter
//                                       inventory
//   simai_trace diff <a.json> <b.json>  side-by-side latency + counter
//                                       comparison for regression triage
//   simai_trace critical-path <trace.json> [--json]
//                                       longest causal chain through the
//                                       span/flow graph with a blame table
//                                       {compute, queue, transport-by-
//                                       backend, stall}; --json emits the
//                                       path machine-readably
//   simai_trace --self-check            round-trip a synthetic recorder
//                                       through the exporter and verify the
//                                       analyzer reads it back correctly
//   simai_trace critical-path --self-check
//                                       same, for the critical-path walk
//
// Exit codes: 0 ok, 1 self-check failure, 2 usage, 3 unreadable/invalid
// trace JSON.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <iostream>
#include <limits>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "sim/trace.hpp"
#include "util/error.hpp"
#include "util/json.hpp"
#include "util/stats.hpp"

namespace {

using simai::util::Json;

struct TrackStats {
  double busy_s = 0.0;
  std::uint64_t spans = 0;
};

struct Analysis {
  std::map<std::string, TrackStats> tracks;
  /// Keyed "category backend=<b>" (labeled transport spans) — the
  /// per-backend latency distributions the paper's figures are built from.
  std::map<std::string, simai::util::Histogram> latencies;
  /// Counter series -> (sample count, last value).
  std::map<std::string, std::pair<std::uint64_t, double>> counters;
  std::set<std::int64_t> flow_starts;
  std::set<std::int64_t> flow_finishes;
  std::uint64_t events = 0;
  double t_min = std::numeric_limits<double>::infinity();
  double t_max = 0.0;
};

Analysis analyze(const Json& doc) {
  Analysis a;
  const Json& events = doc.at("traceEvents");
  // Pass 1: thread_name metadata names the track lanes.
  std::map<std::int64_t, std::string> track_of;
  for (const Json& e : events.as_array()) {
    if (e.get("ph", "") == "M" && e.get("name", "") == "thread_name")
      track_of[e.at("tid").as_int()] = e.at("args").at("name").as_string();
  }
  for (const Json& e : events.as_array()) {
    ++a.events;
    const std::string ph = e.get("ph", "");
    if (ph == "M") continue;
    if (const Json* ts = e.find("ts")) {
      const double t = ts->as_double() / 1e6;
      a.t_min = std::min(a.t_min, t);
      a.t_max = std::max(a.t_max, t);
    }
    if (ph == "X") {
      const double dur = e.get("dur", 0.0) / 1e6;
      a.t_max = std::max(a.t_max, e.at("ts").as_double() / 1e6 + dur);
      const auto it = track_of.find(e.at("tid").as_int());
      const std::string track =
          it != track_of.end() ? it->second
                               : "tid" + std::to_string(e.at("tid").as_int());
      TrackStats& ts = a.tracks[track];
      ts.busy_s += dur;
      ts.spans += 1;
      // Labeled transport spans carry their backend as an arg.
      if (const Json* args = e.find("args")) {
        if (const Json* backend = args->find("backend")) {
          a.latencies[e.get("name", "?") + " backend=" + backend->as_string()]
              .add(dur);
        } else if (args->find("stream") != nullptr) {
          a.latencies[e.get("name", "?") +
                      " stream=" + args->at("stream").as_string()]
              .add(dur);
        }
      }
    } else if (ph == "s") {
      a.flow_starts.insert(e.at("id").as_int());
    } else if (ph == "f") {
      a.flow_finishes.insert(e.at("id").as_int());
    } else if (ph == "C") {
      auto& [n, last] = a.counters[e.get("name", "?")];
      ++n;
      last = e.at("args").at("value").as_double();
    }
  }
  if (!std::isfinite(a.t_min)) a.t_min = 0.0;
  return a;
}

Analysis load(const std::string& path) {
  return analyze(Json::parse_file(path));
}

std::string fmt_s(double seconds) {
  return simai::util::format_seconds(seconds);
}

void print_latencies(const Analysis& a) {
  if (a.latencies.empty()) {
    std::cout << "  (no labeled transport spans — run with SIMAI_OBS=1)\n";
    return;
  }
  for (const auto& [key, hist] : a.latencies) {
    std::printf("  %-42s n=%-6zu p50=%-10s p95=%-10s p99=%s\n", key.c_str(),
                hist.count(), fmt_s(hist.percentile(50)).c_str(),
                fmt_s(hist.percentile(95)).c_str(),
                fmt_s(hist.percentile(99)).c_str());
  }
}

int cmd_summary(const std::string& path) {
  const Analysis a = load(path);
  const double wall = std::max(a.t_max - a.t_min, 1e-12);
  std::cout << "trace: " << path << "\n";
  std::cout << "events: " << a.events << ", virtual span " << fmt_s(a.t_min)
            << " .. " << fmt_s(a.t_max) << "\n\n";
  std::cout << "tracks (occupancy over " << fmt_s(wall) << "):\n";
  for (const auto& [name, ts] : a.tracks) {
    std::printf("  %-16s spans=%-8llu busy=%-12s occupancy=%5.1f%%\n",
                name.c_str(), static_cast<unsigned long long>(ts.spans),
                fmt_s(ts.busy_s).c_str(), 100.0 * ts.busy_s / wall);
  }
  std::cout << "\nper-backend transport latency:\n";
  print_latencies(a);
  std::size_t matched = 0;
  for (const std::int64_t id : a.flow_starts)
    matched += a.flow_finishes.count(id);
  std::cout << "\nflows: " << a.flow_starts.size() << " start, "
            << a.flow_finishes.size() << " finish, " << matched
            << " matched\n";
  std::cout << "counters: " << a.counters.size() << " series\n";
  for (const auto& [series, cv] : a.counters) {
    std::printf("  %-60s samples=%-6llu last=%.6g\n", series.c_str(),
                static_cast<unsigned long long>(cv.first), cv.second);
  }
  return 0;
}

int cmd_diff(const std::string& path_a, const std::string& path_b) {
  const Analysis a = load(path_a);
  const Analysis b = load(path_b);
  std::cout << "A: " << path_a << "\nB: " << path_b << "\n\n";
  std::cout << "per-backend latency p95 (A -> B):\n";
  std::set<std::string> keys;
  for (const auto& [k, h] : a.latencies) keys.insert(k);
  for (const auto& [k, h] : b.latencies) keys.insert(k);
  if (keys.empty()) std::cout << "  (no labeled transport spans)\n";
  for (const std::string& k : keys) {
    const auto ia = a.latencies.find(k);
    const auto ib = b.latencies.find(k);
    const double pa = ia == a.latencies.end() ? 0.0 : ia->second.percentile(95);
    const double pb = ib == b.latencies.end() ? 0.0 : ib->second.percentile(95);
    std::string delta = "n/a";
    if (pa > 0.0) {
      char buf[32];
      std::snprintf(buf, sizeof buf, "%+.1f%%", 100.0 * (pb - pa) / pa);
      delta = buf;
    }
    std::printf("  %-42s %-10s -> %-10s (%s)\n", k.c_str(), fmt_s(pa).c_str(),
                fmt_s(pb).c_str(), delta.c_str());
  }
  std::cout << "\ncounters (last value, A -> B):\n";
  std::set<std::string> series;
  for (const auto& [k, v] : a.counters) series.insert(k);
  for (const auto& [k, v] : b.counters) series.insert(k);
  if (series.empty()) std::cout << "  (no counter events)\n";
  for (const std::string& k : series) {
    const auto ia = a.counters.find(k);
    const auto ib = b.counters.find(k);
    const double va = ia == a.counters.end() ? 0.0 : ia->second.second;
    const double vb = ib == b.counters.end() ? 0.0 : ib->second.second;
    if (va == vb) continue;  // only differences matter in a diff
    std::printf("  %-60s %.6g -> %.6g\n", k.c_str(), va, vb);
  }
  return 0;
}

// ---------------------------------------------------------------------------
// critical-path: walk the span/flow graph for the longest causal chain.
//
// Nodes are "X" spans. Edges are (a) program order — consecutive spans on
// the same track, gap blamed on "stall" (the process existed but ran
// nothing) — and (b) flow arrows — producer stage_write to consumer
// stage_read, gap blamed on "queue" (data at rest in the staging area).
// Span durations are blamed on "compute", or "transport:<backend>" /
// "transport:stream" for labeled transport spans. Because every edge
// satisfies succ.start >= pred.end, the longest-path DP over spans sorted
// by start time is a plain forward relaxation.

struct CpSpan {
  std::string track;
  std::string cat;
  double start = 0.0;
  double end = 0.0;
  std::string blame;  // "compute", "transport:<backend>", "transport:stream"
};

struct CpEdge {
  std::size_t from;
  std::size_t to;
  bool flow;  // true: dataflow arrow (queue); false: program order (stall)
};

struct CriticalPath {
  double total = 0.0;                  // end of last span - start of first
  std::vector<std::size_t> path;       // span indices, causal order
  std::vector<CpSpan> spans;           // all spans (path indexes into this)
  std::map<std::string, double> blame; // bucket -> seconds on the path
};

CriticalPath critical_path(const Json& doc) {
  CriticalPath cp;
  const Json& events = doc.at("traceEvents");
  std::map<std::int64_t, std::string> track_of;
  for (const Json& e : events.as_array()) {
    if (e.get("ph", "") == "M" && e.get("name", "") == "thread_name")
      track_of[e.at("tid").as_int()] = e.at("args").at("name").as_string();
  }
  // Pass 1: spans. Flow events carry ts == their span's start (the exporter
  // emits both ends of the arrow at the slice start with bp="e"), so spans
  // are keyed by (tid, start) at nanosecond quantization for flow binding.
  std::map<std::pair<std::int64_t, std::int64_t>, std::size_t> at;
  std::vector<std::int64_t> tid_of_span;
  for (const Json& e : events.as_array()) {
    if (e.get("ph", "") != "X") continue;
    const std::int64_t tid = e.at("tid").as_int();
    const double ts = e.at("ts").as_double();
    CpSpan s;
    const auto it = track_of.find(tid);
    s.track = it != track_of.end() ? it->second : "tid" + std::to_string(tid);
    s.cat = e.get("name", "?");
    s.start = ts / 1e6;
    s.end = s.start + e.get("dur", 0.0) / 1e6;
    s.blame = "compute";
    if (const Json* args = e.find("args")) {
      if (const Json* backend = args->find("backend"))
        s.blame = "transport:" + backend->as_string();
      else if (args->find("stream") != nullptr)
        s.blame = "transport:stream";
    }
    at[{tid, std::llround(ts * 1e3)}] = cp.spans.size();
    tid_of_span.push_back(tid);
    cp.spans.push_back(std::move(s));
  }
  if (cp.spans.empty()) return cp;

  // Pass 2: edges. Flow arrows pair "s" -> "f" by id; each binds to the
  // span at (tid, ts).
  std::vector<CpEdge> edges;
  std::map<std::int64_t, std::size_t> flow_producer;
  for (const Json& e : events.as_array()) {
    const std::string ph = e.get("ph", "");
    if (ph != "s" && ph != "f") continue;
    const auto it = at.find(
        {e.at("tid").as_int(), std::llround(e.at("ts").as_double() * 1e3)});
    if (it == at.end()) continue;  // arrow without a slice: skip
    if (ph == "s") {
      flow_producer[e.at("id").as_int()] = it->second;
    } else {
      const auto p = flow_producer.find(e.at("id").as_int());
      if (p != flow_producer.end())
        edges.push_back({p->second, it->second, /*flow=*/true});
    }
  }
  // Program order: chain consecutive spans per track. Longer hops are
  // reachable through the chain, so one edge per neighbor suffices.
  std::vector<std::size_t> order(cp.spans.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (cp.spans[a].start != cp.spans[b].start)
      return cp.spans[a].start < cp.spans[b].start;
    return cp.spans[a].end < cp.spans[b].end;
  });
  std::map<std::int64_t, std::size_t> prev_on_track;
  for (const std::size_t i : order) {
    const auto it = prev_on_track.find(tid_of_span[i]);
    if (it != prev_on_track.end()) edges.push_back({it->second, i, false});
    prev_on_track[tid_of_span[i]] = i;
  }

  // Longest-path DP in start order. dist[i] = span-start-to-i-end length of
  // the best chain; ties prefer the smaller gap (blame real work over
  // stall), then flow edges (queue beats stall as an explanation).
  constexpr double kEps = 1e-9;
  std::vector<std::vector<CpEdge>> out(cp.spans.size());
  for (const CpEdge& e : edges) {
    if (cp.spans[e.to].start >= cp.spans[e.from].end - kEps)
      out[e.from].push_back(e);
  }
  std::vector<double> dist(cp.spans.size());
  std::vector<double> gap_in(cp.spans.size(), 0.0);
  std::vector<std::ptrdiff_t> pred(cp.spans.size(), -1);
  std::vector<bool> pred_flow(cp.spans.size(), false);
  for (std::size_t i = 0; i < cp.spans.size(); ++i)
    dist[i] = cp.spans[i].end - cp.spans[i].start;
  for (const std::size_t i : order) {
    for (const CpEdge& e : out[i]) {
      const double gap =
          std::max(0.0, cp.spans[e.to].start - cp.spans[e.from].end);
      const double cand =
          dist[i] + gap + (cp.spans[e.to].end - cp.spans[e.to].start);
      const bool better =
          cand > dist[e.to] + kEps ||
          (cand > dist[e.to] - kEps &&
           (gap < gap_in[e.to] - kEps ||
            (gap < gap_in[e.to] + kEps && e.flow && !pred_flow[e.to])));
      if (better) {
        dist[e.to] = cand;
        gap_in[e.to] = gap;
        pred[e.to] = static_cast<std::ptrdiff_t>(i);
        pred_flow[e.to] = e.flow;
      }
    }
  }
  std::size_t best = 0;
  for (std::size_t i = 1; i < cp.spans.size(); ++i)
    if (dist[i] > dist[best]) best = i;
  cp.total = dist[best];

  for (std::ptrdiff_t i = static_cast<std::ptrdiff_t>(best); i != -1;
       i = pred[static_cast<std::size_t>(i)])
    cp.path.push_back(static_cast<std::size_t>(i));
  std::reverse(cp.path.begin(), cp.path.end());
  for (std::size_t k = 0; k < cp.path.size(); ++k) {
    const CpSpan& s = cp.spans[cp.path[k]];
    cp.blame[s.blame] += s.end - s.start;
    if (k > 0) {
      const double gap = gap_in[cp.path[k]];
      if (gap > 0.0)
        cp.blame[pred_flow[cp.path[k]] ? "queue" : "stall"] += gap;
    }
  }
  return cp;
}

int cmd_critical_path(const std::string& path, bool json) {
  const CriticalPath cp = critical_path(Json::parse_file(path));
  if (cp.spans.empty()) {
    if (json) {
      std::cout << "{\"total_s\": 0, \"spans\": 0, \"blame\": {}, \"path\": "
                   "[]}\n";
    } else {
      std::cout << "critical path: empty trace (no spans)\n";
    }
    return 0;
  }
  if (json) {
    Json doc = Json::object();
    doc["total_s"] = cp.total;
    doc["spans"] = static_cast<std::int64_t>(cp.path.size());
    Json blame = Json::object();
    for (const auto& [bucket, secs] : cp.blame) blame[bucket] = secs;
    doc["blame"] = std::move(blame);
    Json steps = Json::array();
    for (const std::size_t i : cp.path) {
      const CpSpan& s = cp.spans[i];
      Json step = Json::object();
      step["track"] = s.track;
      step["cat"] = s.cat;
      step["start"] = s.start;
      step["end"] = s.end;
      step["blame"] = s.blame;
      steps.push_back(std::move(step));
    }
    doc["path"] = std::move(steps);
    std::cout << doc.dump(2) << "\n";
    return 0;
  }
  const CpSpan& first = cp.spans[cp.path.front()];
  const CpSpan& last = cp.spans[cp.path.back()];
  std::cout << "critical path: " << fmt_s(cp.total) << " over "
            << cp.path.size() << " spans (" << fmt_s(first.start) << " .. "
            << fmt_s(last.end) << ")\n\nblame:\n";
  for (const auto& [bucket, secs] : cp.blame) {
    std::printf("  %-24s %-12s %5.1f%%\n", bucket.c_str(),
                fmt_s(secs).c_str(), 100.0 * secs / std::max(cp.total, 1e-12));
  }
  std::cout << "\npath:\n";
  const std::size_t n = cp.path.size();
  for (std::size_t k = 0; k < n; ++k) {
    if (n > 24 && k == 12) {
      std::cout << "  ... (" << n - 24 << " spans elided; --json for all)\n";
      k = n - 13;
      continue;
    }
    const CpSpan& s = cp.spans[cp.path[k]];
    std::printf("  %-16s %-16s %s .. %s (%s)\n", s.track.c_str(),
                s.cat.c_str(), fmt_s(s.start).c_str(), fmt_s(s.end).c_str(),
                s.blame.c_str());
  }
  return 0;
}

int critical_path_self_check() {
  // A two-track staging handoff with known geometry:
  //   sim0:   iter [0,1]  stage_write [1,1.25] --flow 7-->
  //   train0:             stage_read [1.5,1.75]  iter [1.75,2.5]
  // Critical path = 2.5 s: compute 1.75, transport:redis 0.5, queue 0.25.
  simai::sim::TraceRecorder rec;
  rec.record_span("sim0", "iter", 0.0, 1.0);
  rec.record_span("train0", "iter", 1.75, 2.5);
  // A decoy track that is long but causally disconnected from the end.
  rec.record_span("idle0", "iter", 0.0, 0.5);
  simai::sim::LabeledSpan w;
  w.track = "sim0";
  w.category = "stage_write";
  w.start = 1.0;
  w.end = 1.25;
  w.span_id = 7;
  w.flow_id = 7;
  w.flow_start = true;
  w.labels = {{"backend", "redis"}, {"key", "x_0_0"}};
  rec.record_labeled_span(w);
  simai::sim::LabeledSpan r = w;
  r.track = "train0";
  r.category = "stage_read";
  r.start = 1.5;
  r.end = 1.75;
  r.span_id = 9;
  r.flow_start = false;
  rec.record_labeled_span(r);

  const CriticalPath cp = critical_path(Json::parse(rec.to_chrome_json()));
  auto fail = [](const char* what) {
    std::cerr << "critical-path self-check FAILED: " << what << "\n";
    return 1;
  };
  auto near = [](double a, double b) { return std::abs(a - b) < 1e-9; };
  if (cp.path.size() != 4) return fail("expected a 4-span path");
  if (!near(cp.total, 2.5)) return fail("total mismatch");
  const auto bucket = [&](const char* k) {
    const auto it = cp.blame.find(k);
    return it == cp.blame.end() ? 0.0 : it->second;
  };
  if (!near(bucket("compute"), 1.75)) return fail("compute blame");
  if (!near(bucket("transport:redis"), 0.5)) return fail("transport blame");
  if (!near(bucket("queue"), 0.25)) return fail("queue blame");
  if (!near(bucket("stall"), 0.0)) return fail("stall blame");
  if (cp.spans[cp.path.front()].track != "sim0")
    return fail("path should start on sim0");
  if (cp.spans[cp.path.back()].track != "train0")
    return fail("path should end on train0");
  std::cout << "simai_trace critical-path self-check OK\n";
  return 0;
}

int self_check() {
  // Synthesize a recorder the way an armed run would fill it, export, and
  // verify the analyzer reads back exactly what went in.
  simai::sim::TraceRecorder rec;
  rec.record_span("sim0", "iter", 0.0, 1.0);
  rec.record_span("train0", "iter", 1.0, 1.5);
  simai::sim::LabeledSpan w;
  w.track = "sim0";
  w.category = "stage_write";
  w.start = 1.0;
  w.end = 1.25;
  w.span_id = 7;
  w.flow_id = 7;
  w.flow_start = true;
  w.labels = {{"backend", "redis"}, {"key", "x_0_0"}, {"bytes", "1024"}};
  rec.record_labeled_span(w);
  simai::sim::LabeledSpan r = w;
  r.track = "train0";
  r.category = "stage_read";
  r.start = 1.5;
  r.end = 1.75;
  r.span_id = 9;
  r.flow_start = false;
  rec.record_labeled_span(r);
  rec.record_counter_sample("kv_ops_total{op=\"put\"}", 0.0, 0.0);
  rec.record_counter_sample("kv_ops_total{op=\"put\"}", 2.0, 5.0);

  const Analysis a = analyze(Json::parse(rec.to_chrome_json()));
  auto fail = [](const char* what) {
    std::cerr << "self-check FAILED: " << what << "\n";
    return 1;
  };
  if (a.tracks.size() != 2) return fail("expected 2 tracks");
  if (a.tracks.at("sim0").spans != 2) return fail("sim0 span count");
  const auto wkey = a.latencies.find("stage_write backend=redis");
  if (wkey == a.latencies.end()) return fail("missing write latency series");
  if (std::abs(wkey->second.percentile(50) - 0.25) > 1e-9)
    return fail("write p50 mismatch");
  if (a.flow_starts != std::set<std::int64_t>{7}) return fail("flow start id");
  if (a.flow_finishes != std::set<std::int64_t>{7})
    return fail("flow finish id");
  const auto counter = a.counters.find("kv_ops_total{op=\"put\"}");
  if (counter == a.counters.end() || counter->second.first != 2 ||
      counter->second.second != 5.0)
    return fail("counter samples");
  std::cout << "simai_trace self-check OK\n";
  return 0;
}

int usage() {
  std::cerr << "usage: simai_trace summary <trace.json>\n"
               "       simai_trace diff <a.json> <b.json>\n"
               "       simai_trace critical-path <trace.json> [--json]\n"
               "       simai_trace critical-path --self-check\n"
               "       simai_trace --self-check\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  const std::vector<std::string> args(argv + 1, argv + argc);
  try {
    if (args.size() == 1 && args[0] == "--self-check") return self_check();
    if (args.size() == 2 && args[0] == "summary") return cmd_summary(args[1]);
    if (args.size() == 3 && args[0] == "diff")
      return cmd_diff(args[1], args[2]);
    if (args.size() >= 2 && args[0] == "critical-path") {
      if (args[1] == "--self-check" && args.size() == 2)
        return critical_path_self_check();
      const bool json = args.size() == 3 && args[2] == "--json";
      if (args.size() == 2 || json) return cmd_critical_path(args[1], json);
    }
    return usage();
  } catch (const simai::Error& e) {
    std::cerr << "simai_trace: " << e.what() << "\n";
    return 3;
  }
}
