// simai_trace: triage CLI for Chrome/Perfetto traces exported by
// sim::TraceRecorder::to_chrome_json (bench_fig2_timeline, simai_run).
//
//   simai_trace summary <trace.json>    per-track occupancy, per-backend
//                                       latency percentiles, flow/counter
//                                       inventory
//   simai_trace diff <a.json> <b.json>  side-by-side latency + counter
//                                       comparison for regression triage
//   simai_trace --self-check            round-trip a synthetic recorder
//                                       through the exporter and verify the
//                                       analyzer reads it back correctly
//
// Exit codes: 0 ok, 1 self-check failure, 2 usage, 3 unreadable/invalid
// trace JSON.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <iostream>
#include <limits>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "sim/trace.hpp"
#include "util/error.hpp"
#include "util/json.hpp"
#include "util/stats.hpp"

namespace {

using simai::util::Json;

struct TrackStats {
  double busy_s = 0.0;
  std::uint64_t spans = 0;
};

struct Analysis {
  std::map<std::string, TrackStats> tracks;
  /// Keyed "category backend=<b>" (labeled transport spans) — the
  /// per-backend latency distributions the paper's figures are built from.
  std::map<std::string, simai::util::Histogram> latencies;
  /// Counter series -> (sample count, last value).
  std::map<std::string, std::pair<std::uint64_t, double>> counters;
  std::set<std::int64_t> flow_starts;
  std::set<std::int64_t> flow_finishes;
  std::uint64_t events = 0;
  double t_min = std::numeric_limits<double>::infinity();
  double t_max = 0.0;
};

Analysis analyze(const Json& doc) {
  Analysis a;
  const Json& events = doc.at("traceEvents");
  // Pass 1: thread_name metadata names the track lanes.
  std::map<std::int64_t, std::string> track_of;
  for (const Json& e : events.as_array()) {
    if (e.get("ph", "") == "M" && e.get("name", "") == "thread_name")
      track_of[e.at("tid").as_int()] = e.at("args").at("name").as_string();
  }
  for (const Json& e : events.as_array()) {
    ++a.events;
    const std::string ph = e.get("ph", "");
    if (ph == "M") continue;
    if (const Json* ts = e.find("ts")) {
      const double t = ts->as_double() / 1e6;
      a.t_min = std::min(a.t_min, t);
      a.t_max = std::max(a.t_max, t);
    }
    if (ph == "X") {
      const double dur = e.get("dur", 0.0) / 1e6;
      a.t_max = std::max(a.t_max, e.at("ts").as_double() / 1e6 + dur);
      const auto it = track_of.find(e.at("tid").as_int());
      const std::string track =
          it != track_of.end() ? it->second
                               : "tid" + std::to_string(e.at("tid").as_int());
      TrackStats& ts = a.tracks[track];
      ts.busy_s += dur;
      ts.spans += 1;
      // Labeled transport spans carry their backend as an arg.
      if (const Json* args = e.find("args")) {
        if (const Json* backend = args->find("backend")) {
          a.latencies[e.get("name", "?") + " backend=" + backend->as_string()]
              .add(dur);
        } else if (args->find("stream") != nullptr) {
          a.latencies[e.get("name", "?") +
                      " stream=" + args->at("stream").as_string()]
              .add(dur);
        }
      }
    } else if (ph == "s") {
      a.flow_starts.insert(e.at("id").as_int());
    } else if (ph == "f") {
      a.flow_finishes.insert(e.at("id").as_int());
    } else if (ph == "C") {
      auto& [n, last] = a.counters[e.get("name", "?")];
      ++n;
      last = e.at("args").at("value").as_double();
    }
  }
  if (!std::isfinite(a.t_min)) a.t_min = 0.0;
  return a;
}

Analysis load(const std::string& path) {
  return analyze(Json::parse_file(path));
}

std::string fmt_s(double seconds) {
  return simai::util::format_seconds(seconds);
}

void print_latencies(const Analysis& a) {
  if (a.latencies.empty()) {
    std::cout << "  (no labeled transport spans — run with SIMAI_OBS=1)\n";
    return;
  }
  for (const auto& [key, hist] : a.latencies) {
    std::printf("  %-42s n=%-6zu p50=%-10s p95=%-10s p99=%s\n", key.c_str(),
                hist.count(), fmt_s(hist.percentile(50)).c_str(),
                fmt_s(hist.percentile(95)).c_str(),
                fmt_s(hist.percentile(99)).c_str());
  }
}

int cmd_summary(const std::string& path) {
  const Analysis a = load(path);
  const double wall = std::max(a.t_max - a.t_min, 1e-12);
  std::cout << "trace: " << path << "\n";
  std::cout << "events: " << a.events << ", virtual span " << fmt_s(a.t_min)
            << " .. " << fmt_s(a.t_max) << "\n\n";
  std::cout << "tracks (occupancy over " << fmt_s(wall) << "):\n";
  for (const auto& [name, ts] : a.tracks) {
    std::printf("  %-16s spans=%-8llu busy=%-12s occupancy=%5.1f%%\n",
                name.c_str(), static_cast<unsigned long long>(ts.spans),
                fmt_s(ts.busy_s).c_str(), 100.0 * ts.busy_s / wall);
  }
  std::cout << "\nper-backend transport latency:\n";
  print_latencies(a);
  std::size_t matched = 0;
  for (const std::int64_t id : a.flow_starts)
    matched += a.flow_finishes.count(id);
  std::cout << "\nflows: " << a.flow_starts.size() << " start, "
            << a.flow_finishes.size() << " finish, " << matched
            << " matched\n";
  std::cout << "counters: " << a.counters.size() << " series\n";
  for (const auto& [series, cv] : a.counters) {
    std::printf("  %-60s samples=%-6llu last=%.6g\n", series.c_str(),
                static_cast<unsigned long long>(cv.first), cv.second);
  }
  return 0;
}

int cmd_diff(const std::string& path_a, const std::string& path_b) {
  const Analysis a = load(path_a);
  const Analysis b = load(path_b);
  std::cout << "A: " << path_a << "\nB: " << path_b << "\n\n";
  std::cout << "per-backend latency p95 (A -> B):\n";
  std::set<std::string> keys;
  for (const auto& [k, h] : a.latencies) keys.insert(k);
  for (const auto& [k, h] : b.latencies) keys.insert(k);
  if (keys.empty()) std::cout << "  (no labeled transport spans)\n";
  for (const std::string& k : keys) {
    const auto ia = a.latencies.find(k);
    const auto ib = b.latencies.find(k);
    const double pa = ia == a.latencies.end() ? 0.0 : ia->second.percentile(95);
    const double pb = ib == b.latencies.end() ? 0.0 : ib->second.percentile(95);
    std::string delta = "n/a";
    if (pa > 0.0) {
      char buf[32];
      std::snprintf(buf, sizeof buf, "%+.1f%%", 100.0 * (pb - pa) / pa);
      delta = buf;
    }
    std::printf("  %-42s %-10s -> %-10s (%s)\n", k.c_str(), fmt_s(pa).c_str(),
                fmt_s(pb).c_str(), delta.c_str());
  }
  std::cout << "\ncounters (last value, A -> B):\n";
  std::set<std::string> series;
  for (const auto& [k, v] : a.counters) series.insert(k);
  for (const auto& [k, v] : b.counters) series.insert(k);
  if (series.empty()) std::cout << "  (no counter events)\n";
  for (const std::string& k : series) {
    const auto ia = a.counters.find(k);
    const auto ib = b.counters.find(k);
    const double va = ia == a.counters.end() ? 0.0 : ia->second.second;
    const double vb = ib == b.counters.end() ? 0.0 : ib->second.second;
    if (va == vb) continue;  // only differences matter in a diff
    std::printf("  %-60s %.6g -> %.6g\n", k.c_str(), va, vb);
  }
  return 0;
}

int self_check() {
  // Synthesize a recorder the way an armed run would fill it, export, and
  // verify the analyzer reads back exactly what went in.
  simai::sim::TraceRecorder rec;
  rec.record_span("sim0", "iter", 0.0, 1.0);
  rec.record_span("train0", "iter", 1.0, 1.5);
  simai::sim::LabeledSpan w;
  w.track = "sim0";
  w.category = "stage_write";
  w.start = 1.0;
  w.end = 1.25;
  w.span_id = 7;
  w.flow_id = 7;
  w.flow_start = true;
  w.labels = {{"backend", "redis"}, {"key", "x_0_0"}, {"bytes", "1024"}};
  rec.record_labeled_span(w);
  simai::sim::LabeledSpan r = w;
  r.track = "train0";
  r.category = "stage_read";
  r.start = 1.5;
  r.end = 1.75;
  r.span_id = 9;
  r.flow_start = false;
  rec.record_labeled_span(r);
  rec.record_counter_sample("kv_ops_total{op=\"put\"}", 0.0, 0.0);
  rec.record_counter_sample("kv_ops_total{op=\"put\"}", 2.0, 5.0);

  const Analysis a = analyze(Json::parse(rec.to_chrome_json()));
  auto fail = [](const char* what) {
    std::cerr << "self-check FAILED: " << what << "\n";
    return 1;
  };
  if (a.tracks.size() != 2) return fail("expected 2 tracks");
  if (a.tracks.at("sim0").spans != 2) return fail("sim0 span count");
  const auto wkey = a.latencies.find("stage_write backend=redis");
  if (wkey == a.latencies.end()) return fail("missing write latency series");
  if (std::abs(wkey->second.percentile(50) - 0.25) > 1e-9)
    return fail("write p50 mismatch");
  if (a.flow_starts != std::set<std::int64_t>{7}) return fail("flow start id");
  if (a.flow_finishes != std::set<std::int64_t>{7})
    return fail("flow finish id");
  const auto counter = a.counters.find("kv_ops_total{op=\"put\"}");
  if (counter == a.counters.end() || counter->second.first != 2 ||
      counter->second.second != 5.0)
    return fail("counter samples");
  std::cout << "simai_trace self-check OK\n";
  return 0;
}

int usage() {
  std::cerr << "usage: simai_trace summary <trace.json>\n"
               "       simai_trace diff <a.json> <b.json>\n"
               "       simai_trace --self-check\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  const std::vector<std::string> args(argv + 1, argv + argc);
  try {
    if (args.size() == 1 && args[0] == "--self-check") return self_check();
    if (args.size() == 2 && args[0] == "summary") return cmd_summary(args[1]);
    if (args.size() == 3 && args[0] == "diff")
      return cmd_diff(args[1], args[2]);
    return usage();
  } catch (const simai::Error& e) {
    std::cerr << "simai_trace: " << e.what() << "\n";
    return 3;
  }
}
